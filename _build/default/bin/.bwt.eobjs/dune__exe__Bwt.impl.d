bin/bwt.ml: Algo_bwt Arg Ascii Cmd Cmdliner Fmt Gatecount Printer Qcl_baseline Quipper Term
