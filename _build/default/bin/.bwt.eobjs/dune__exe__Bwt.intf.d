bin/bwt.mli:
