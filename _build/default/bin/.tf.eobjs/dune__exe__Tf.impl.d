bin/tf.ml: Algo_tf Arg Ascii Cmd Cmdliner Decompose Depth Fmt Gatecount List Printer Quipper Term
