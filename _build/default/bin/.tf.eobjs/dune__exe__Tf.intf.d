bin/tf.mli:
