examples/arithmetic.ml: Ascii Circ Circuit Fmt Gatecount List Qdata Quipper Quipper_arith Quipper_sim Stdlib
