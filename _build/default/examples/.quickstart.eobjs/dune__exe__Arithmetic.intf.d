examples/arithmetic.mli:
