examples/bwt_demo.ml: Algo_bwt Array Ascii Circ Circuit Fmt Fun Gatecount List Qcl_baseline Qdata Quipper Quipper_arith Quipper_math Quipper_sim Wire
