examples/bwt_demo.mli:
