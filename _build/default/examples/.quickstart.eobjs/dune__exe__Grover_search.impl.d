examples/grover_search.ml: Bool Circ Fmt Fun Gatecount List Qdata Quipper Quipper_primitives Quipper_sim Quipper_template Wire
