examples/gse_h2.ml: Algo_gse Float Fmt Gatecount List Qdata Quipper Quipper_arith Quipper_sim
