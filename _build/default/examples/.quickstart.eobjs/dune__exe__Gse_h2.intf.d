examples/gse_h2.mli:
