examples/parity_oracle.ml: Ascii Circ Circuit Fmt Gatecount List Qdata Quipper Quipper_sim Quipper_template
