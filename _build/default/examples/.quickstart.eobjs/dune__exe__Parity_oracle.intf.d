examples/parity_oracle.mli:
