examples/period_finding.ml: Algo_cl Array Fmt Gatecount Hashtbl List Option Qdata Quipper Quipper_sim Wire
