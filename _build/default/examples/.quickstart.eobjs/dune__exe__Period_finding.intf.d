examples/period_finding.mli:
