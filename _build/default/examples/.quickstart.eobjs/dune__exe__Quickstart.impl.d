examples/quickstart.ml: Ascii Circ Circuit Decompose Fmt Qdata Quipper Quipper_sim
