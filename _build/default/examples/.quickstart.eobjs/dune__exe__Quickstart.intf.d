examples/quickstart.mli:
