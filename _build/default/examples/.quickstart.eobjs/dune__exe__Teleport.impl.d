examples/teleport.ml: Circ Errors Fmt List Qdata Quipper Quipper_sim Wire
