examples/teleport.mli:
