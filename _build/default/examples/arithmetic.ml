(* Quantum arithmetic (paper §4.5's QDInt / QIntTF / FPReal libraries):
   build adders, multipliers and the Triangle-Finding modular arithmetic,
   print small instances, and validate them with the classical simulator.

   Run with:  dune exec examples/arithmetic.exe *)

open Quipper
open Circ
module Qdint = Quipper_arith.Qdint
module Qinttf = Quipper_arith.Qinttf
module Fpreal = Quipper_arith.Fpreal
module Classical = Quipper_sim.Classical

let () =
  (* a 3-bit Cuccaro adder, drawn *)
  Fmt.pr "=== 3-bit in-place adder (y += x), Cuccaro ripple-carry ===@.";
  let w2 = Qdata.pair (Qdint.shape 3) (Qdint.shape 3) in
  let add (x, y) =
    let* () = Qdint.add_in_place ~x ~y () in
    return (x, y)
  in
  let b, _ = Circ.generate ~in_:w2 add in
  print_string (Ascii.render b.Circuit.main);

  (* exhaustive validation on 6-bit operands *)
  let w6 = Qdata.pair (Qdint.shape 6) (Qdint.shape 6) in
  let errors = ref 0 in
  for x = 0 to 63 do
    for y = 0 to 63 do
      let _, y' =
        Classical.run_oracle ~in_:w6 ~out:w6 (x, y) (fun (x, y) ->
            let* () = Qdint.add_in_place ~x ~y () in
            return (x, y))
      in
      if y' <> (x + y) land 63 then incr errors
    done
  done;
  Fmt.pr "6-bit adder checked on all 4096 operand pairs: %d errors@.@." !errors;

  (* multiplication *)
  let wmul = Qdata.pair w6 (Qdint.shape 6) in
  let errors = ref 0 in
  for t = 0 to 99 do
    let x = (t * 7) land 63 and y = (t * 13 + 5) land 63 in
    let _, p =
      Classical.run_oracle ~in_:w6 ~out:wmul (x, y) (fun (x, y) ->
          let* p = Qdint.mult ~x ~y () in
          return ((x, y), p))
    in
    if p <> x * y land 63 then incr errors
  done;
  Fmt.pr "6-bit multiplier checked on 100 operand pairs: %d errors@.@." !errors;

  (* QIntTF: the Triangle Finding oracle's arithmetic mod 2^l - 1 *)
  Fmt.pr "=== QIntTF: arithmetic modulo 2^l - 1 (paper 5.3.1) ===@.";
  let l = 5 in
  let wtf = Qdata.pair (Qinttf.shape l) (Qinttf.shape l) in
  let errors = ref 0 in
  for x = 0 to 31 do
    for y = 0 to 31 do
      let _, s =
        Classical.run_oracle ~in_:wtf ~out:(Qdata.pair wtf (Qinttf.shape l)) (x, y)
          (fun (x, y) ->
            let* s = Qinttf.add ~x ~y () in
            return ((x, y), s))
      in
      if s <> Qinttf.add_sem ~l x y then incr errors
    done
  done;
  Fmt.pr "5-bit mod-(2^5 - 1) adder checked exhaustively: %d errors@." !errors;
  Fmt.pr "doubling mod 2^l - 1 emits no gates at all (a wire rotation):@.";
  let b, _ =
    Circ.generate ~in_:(Qinttf.shape l) (fun x ->
        let x2 = Qinttf.double x in
        return x2)
  in
  Fmt.pr "  gates in double: %d@.@."
    (Gatecount.total (Gatecount.aggregate b));

  (* fixed-point sin(x) *)
  Fmt.pr "=== FPReal sin(x) (paper 4.6.1's Linear-Systems oracle) ===@.";
  let wfp = Fpreal.shape ~int_bits:3 ~frac_bits:12 in
  List.iter
    (fun xf ->
      let _, s =
        Classical.run_oracle ~in_:wfp ~out:(Qdata.pair wfp wfp) xf (fun x ->
            let* s = Fpreal.sin x in
            return (x, s))
      in
      Fmt.pr "  sin(%.4f) = %.5f   (float: %.5f)@." xf s (Stdlib.sin xf))
    [ 0.0; 0.375; 0.75; 1.125; 1.5 ];
  let b =
    let shape = Fpreal.shape ~int_bits:8 ~frac_bits:8 in
    let b, _ = Circ.generate ~in_:shape (fun x -> Fpreal.sin x) in
    b
  in
  let s = Gatecount.summarize b in
  Fmt.pr "sin over 8+8 bits: %d gates, %d qubits (paper: 3273010 gates at 32+32)@."
    s.Gatecount.total s.Gatecount.qubits
