(* Binary Welded Tree demo (paper §6 + §3.3): generate the three circuit
   versions compared in the paper (hand-coded oracle, template oracle,
   QCL-style baseline), print the Figure-1 diffusion timestep, and run a
   small matching-colour walk on the statevector simulator to watch the
   label register spread — scoped-ancilla assertions checked throughout.

   Run with:  dune exec examples/bwt_demo.exe *)

open Quipper
open Circ
module Qureg = Quipper_arith.Qureg
module Statevector = Quipper_sim.Statevector

let () =
  (* Figure 1: the diffusion timestep *)
  Fmt.pr "=== the Figure-1 timestep (n = 2) ===@.";
  let m = 2 in
  let shape =
    Qdata.triple (Qureg.shape m) (Qureg.shape m) Qdata.qubit
  in
  let b, _ =
    Circ.generate ~in_:shape (fun (a, b, r) ->
        let* () = Algo_bwt.timestep ~dt:0.3 a b r in
        return (a, b, r))
  in
  print_string (Ascii.render b.Circuit.main);

  (* the three implementations of the full algorithm *)
  Fmt.pr "@.=== gate counts, n=3, s=1 (the paper's section-6 experiment) ===@.";
  let report name b =
    let s = Gatecount.summarize b in
    Fmt.pr "%-10s: %6d logical gates, %3d qubits@." name s.Gatecount.total_logical
      s.Gatecount.qubits
  in
  report "QCL" (Qcl_baseline.Bwt_qcl.generate ());
  report "orthodox" (Algo_bwt.generate ~which:`Orthodox ());
  report "template" (Algo_bwt.generate ~which:`Template ());

  (* a small runnable walk: one matching colour (an XOR involution), so
     the oracle's assertive uncomputation is exactly valid, and the
     paper's scoped-ancilla machinery is exercised under real quantum
     evolution *)
  Fmt.pr "@.=== simulated walk along a matching colour (4-bit labels) ===@.";
  let m = 4 in
  let mask = 0b0110 in
  let walk steps =
    let* a = Qureg.init ~width:m 1 in
    let* () =
      iterm
        (fun _ ->
          (* oracle: b := a XOR mask (an involution => a true matching) *)
          let* b = Qureg.init_zero ~width:m in
          let* () = Qureg.xor_into ~source:a ~target:b in
          let* () = Qureg.xor_const mask b in
          (* the Figure-1 rotation fires on r = 0: "edge is valid" *)
          let* r = qinit_bit false in
          let* () = Algo_bwt.timestep ~dt:0.7 a b r in
          let* () = qterm_bit false r in
          (* uncompute the oracle *)
          let* () = Qureg.xor_const mask b in
          let* () = Qureg.xor_into ~source:a ~target:b in
          Qureg.term 0 b)
        (List.init steps Fun.id)
    in
    return a
  in
  List.iter
    (fun steps ->
      let st, a = Statevector.run_fun ~seed:steps ~in_:Qdata.unit () (fun () -> walk steps) in
      let p_start =
        Quipper_math.Cplx.norm2
          (Statevector.amplitude st
             (Array.to_list a |> List.map Wire.qubit_wire)
             (List.init m (fun i -> i = 0)))
      in
      Fmt.pr "after %d timesteps: P(label = start) = %.3f@." steps p_start)
    [ 0; 1; 2; 3 ];

  (* the real thing: a full welded-tree instance with a proper matching
     edge-colouring, walked from entrance to exit under exact simulation —
     every oracle uncompute assertion checked in every branch *)
  Fmt.pr "@.=== the full welded-tree walk (depth 2, 14 nodes, 6 colours) ===@.";
  let g = Algo_bwt.Exact.build ~depth:2 in
  let mb = g.Algo_bwt.Exact.label_bits in
  List.iter
    (fun steps ->
      let st, a =
        Statevector.run_fun ~seed:1 ~in_:Qdata.unit () (fun () ->
            Algo_bwt.Exact.walk g ~steps ~dt:0.9)
      in
      let wires = Array.to_list a |> List.map Wire.qubit_wire in
      let p_of label =
        Quipper_math.Cplx.norm2
          (Statevector.amplitude st wires
             (List.init mb (fun i -> (label lsr i) land 1 = 1)))
      in
      Fmt.pr "steps=%d   P(entrance)=%.3f   P(EXIT)=%.3f@." steps
        (p_of g.Algo_bwt.Exact.entrance)
        (p_of g.Algo_bwt.Exact.exit))
    [ 0; 1; 2; 3; 4 ];
  Fmt.pr "The walk finds the exit of the welded trees — the algorithm's@.";
  Fmt.pr "exponential-speedup setting (Childs et al.) — while the scoped@.";
  Fmt.pr "ancillas of every oracle call assert clean uncomputation.@." 
