(* Grover search with an automatically generated oracle (paper §3.1 +
   §4.6): search a 5-qubit space for a marked element, the phase oracle
   synthesised from a lifted classical predicate, the whole thing executed
   on the statevector simulator.

   Run with:  dune exec examples/grover_search.exe *)

open Quipper
open Circ
module Grover = Quipper_primitives.Grover
module Build = Quipper_template.Build
module Oracle = Quipper_template.Oracle
module Statevector = Quipper_sim.Statevector

let n = 5
let marked = 0b10110

(* The classical predicate "x = marked", lifted: a chain of equality
   tests, exactly what build_circuit would produce from
   [fun x -> x = marked]. *)
let predicate (qs : Wire.qubit list) : Wire.qubit Circ.t =
  let* bit_tests =
    mapm
      (fun (i, q) ->
        if (marked lsr i) land 1 = 1 then
          let* t = qinit_bit false in
          let* () = cnot ~control:q ~target:t in
          return t
        else Build.bnot q)
      (List.mapi (fun i q -> (i, q)) qs)
  in
  match bit_tests with
  | [] -> Build.bconst true
  | t :: rest -> foldm Build.band t rest

let phase_oracle (qs : Wire.qubit list) : unit Circ.t =
  let* _ = Oracle.classical_to_phase predicate qs in
  return ()

let search : Wire.qubit list Circ.t =
  let* qs = mapm (fun _ -> qinit_bit false) (List.init n Fun.id) in
  let iters = Grover.iterations ~n ~marked:1 in
  let* () = Grover.search ~iterations:iters phase_oracle qs in
  return qs

let () =
  let iters = Grover.iterations ~n ~marked:1 in
  Fmt.pr "Searching %d-qubit space for %d with %d Grover iterations.@." n marked iters;
  (* resource report *)
  let b, _ = Circ.generate_unit search in
  let s = Gatecount.summarize b in
  Fmt.pr "Circuit: %d gates, %d qubits.@." s.Gatecount.total s.Gatecount.qubits;
  (* run it many times *)
  let hits = ref 0 in
  let shots = 100 in
  for seed = 1 to shots do
    let st, qs = Statevector.run_fun ~seed ~in_:Qdata.unit () (fun () -> search) in
    let bits = Statevector.measure_and_read st (Qdata.list_of n Qdata.qubit) qs in
    let v =
      List.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 (List.rev bits)
    in
    if v = marked then incr hits
  done;
  Fmt.pr "Found the marked element in %d/%d runs (uniform guessing: ~%d).@."
    !hits shots (shots / (1 lsl n))
