(* Ground State Estimation on molecular hydrogen (paper §1's GSE
   algorithm, Whitfield et al.): phase-estimate the Trotterized electronic
   Hamiltonian of H2 in a minimal basis, end to end on the statevector
   simulator, and compare against exact diagonalisation.

   Run with:  dune exec examples/gse_h2.exe *)

open Quipper
module Gse = Algo_gse
module Statevector = Quipper_sim.Statevector
module Qureg = Quipper_arith.Qureg

let () =
  let p = Gse.default_params in
  let exact = Gse.exact_ground_energy p.Gse.hamiltonian in
  Fmt.pr "H2 (minimal basis, 2 qubits after symmetry reduction)@.";
  Fmt.pr "exact ground-state energy:   %+.4f Hartree@." exact;
  (* resource estimate *)
  let b = Gse.generate ~p () in
  let s = Gatecount.summarize b in
  Fmt.pr "GSE circuit: %d gates, %d qubits (%d-bit phase register)@."
    s.Gatecount.total s.Gatecount.qubits p.Gse.precision_bits;
  (* run shots *)
  let shots = 21 in
  let estimates =
    List.init shots (fun seed ->
        let st, counting =
          Statevector.run_fun ~seed:(seed + 1) ~in_:Qdata.unit () (fun () ->
              Gse.gse ~p)
        in
        let v =
          Statevector.measure_and_read st (Qureg.shape p.Gse.precision_bits)
            counting
        in
        Gse.energy_of_counting ~p v)
  in
  let sorted = List.sort compare estimates in
  let median = List.nth sorted (shots / 2) in
  Fmt.pr "median of %d phase-estimation shots: %+.4f Hartree@." shots median;
  Fmt.pr "error: %.4f Hartree (resolution %.4f, plus Trotter error)@."
    (Float.abs (median -. exact))
    (2.0 *. Float.pi /. Float.of_int (1 lsl p.Gse.precision_bits) /. p.Gse.time);
  List.iteri
    (fun i e -> if i < 7 then Fmt.pr "  shot %d: %+.4f@." (i + 1) e)
    estimates
