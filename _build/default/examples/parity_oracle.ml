(* The parity oracle of paper §4.6.1: a classical function lifted to a
   circuit, then made reversible with classical_to_reversible.

   Run with:  dune exec examples/parity_oracle.exe

   The paper's classical source:

     build_circuit
     f :: [Bool] -> Bool
     f as = case as of
       []  -> False
       [h] -> h
       h:t -> h `bool_xor` f t

   Our lifted rendering is [Quipper_template.Build.parity]: the same
   recursion, with the xor operating on qubits and allocating scratch. On
   four inputs the template produces the paper's circuit — 4 inputs, 1
   output, 2 scratch wires (7 qubits) — and classical_to_reversible wraps
   it into (x, y) |-> (x, y XOR parity x) with all scratch uncomputed. *)

open Quipper
module Build = Quipper_template.Build
module Oracle = Quipper_template.Oracle
module Classical = Quipper_sim.Classical

let n = 4
let list_shape = Qdata.list_of n Qdata.qubit

let () =
  (* the lifted template circuit *)
  Fmt.pr "=== template_f on %d qubits (paper 4.6.1, first figure) ===@." n;
  let b, _ = Circ.generate ~in_:list_shape Build.parity in
  print_string (Ascii.render b.Circuit.main);
  let s = Gatecount.summarize b in
  Fmt.pr "Wires used: %d (inputs %d, output 1, scratch %d)@." s.Gatecount.qubits
    s.Gatecount.inputs
    (s.Gatecount.qubits - s.Gatecount.inputs - 1);

  (* the reversible version *)
  Fmt.pr "@.=== classical_to_reversible (unpack template_f) (second figure) ===@.";
  let shape = Qdata.pair list_shape Qdata.qubit in
  let rev = Oracle.classical_to_reversible ~out:Qdata.qubit Build.parity in
  let b2, _ = Circ.generate ~in_:shape rev in
  print_string (Ascii.render b2.Circuit.main);
  let s2 = Gatecount.summarize b2 in
  Fmt.pr "Persistent wires: %d (all ancillas uncomputed)@." s2.Gatecount.outputs;

  (* validate on all 2^n inputs with the classical simulator — "especially
     useful in testing oracles" (paper 4.4.5) *)
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let bits = List.init n (fun i -> (v lsr i) land 1 = 1) in
    let expected = List.fold_left ( <> ) false bits in
    List.iter
      (fun y0 ->
        let _, y = Classical.run_oracle ~in_:shape ~out:shape (bits, y0) rev in
        if y <> (y0 <> expected) then ok := false)
      [ false; true ]
  done;
  Fmt.pr "@.Oracle validated against classical parity on all %d inputs: %s@."
    (2 * (1 lsl n))
    (if !ok then "OK" else "FAILED")
