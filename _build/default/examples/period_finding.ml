(* Period finding with classical post-processing (paper §3.5): the quantum
   kernel of the Class Number algorithm — superpose, compute the periodic
   function reversibly, measure it, inverse-QFT the argument register,
   measure, and recover the period classically by continued fractions,
   repeating until a consistent answer emerges ("the probabilistic
   measurement result can then be classically checked to see if a useful
   answer has been found, and if not, the whole procedure is repeated").

   Run with:  dune exec examples/period_finding.exe *)

open Quipper
module Cl = Algo_cl
module Sv = Quipper_sim.Statevector

let () =
  let p = { Cl.arg_bits = 5; period = 3 } in
  Fmt.pr "Hidden period: %d (argument register: %d qubits)@." p.Cl.period
    p.Cl.arg_bits;
  (* show the circuit's resources *)
  let b = Cl.generate ~p () in
  let s = Gatecount.summarize b in
  Fmt.pr "Kernel circuit: %d gates, %d qubits@.@." s.Gatecount.total
    s.Gatecount.qubits;
  (* the classical repetition loop of §3.5 *)
  let candidates = Hashtbl.create 8 in
  let shots = 20 in
  for seed = 1 to shots do
    let st, (x_bits, f_bits) =
      Sv.run_fun ~seed ~in_:Qdata.unit () (fun () -> Cl.period_find_circuit ~p)
    in
    let value bits =
      Array.to_list bits
      |> List.mapi (fun i b -> (i, Sv.read_bit st (Wire.bit_wire b)))
      |> List.fold_left (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc) 0
    in
    let x = value x_bits and f = value f_bits in
    let recovered = Cl.recover_period ~p x in
    Fmt.pr "shot %2d: f(x)=%d, measured %2d -> %s@." seed f x
      (match recovered with
      | Some s -> Fmt.str "candidate period %d" s
      | None -> "no information");
    match recovered with
    | Some s ->
        Hashtbl.replace candidates s
          (1 + Option.value ~default:0 (Hashtbl.find_opt candidates s))
    | None -> ()
  done;
  (* classically check candidates: the true period divides consistent
     observations; pick the most frequent *)
  let best =
    Hashtbl.fold
      (fun s n acc ->
        match acc with Some (_, m) when m >= n -> acc | _ -> Some (s, n))
      candidates None
  in
  match best with
  | Some (s, n) ->
      Fmt.pr "@.Most frequent candidate: %d (seen %d/%d shots) — %s@." s n shots
        (if s = p.Cl.period then "correct!" else "incorrect")
  | None -> Fmt.pr "@.No candidate found.@."
