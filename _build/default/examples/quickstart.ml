(* Quickstart: the paper's introductory examples (§4.4), gate for gate.

   Run with:  dune exec examples/quickstart.exe

   Each function below is the OCaml rendering of the corresponding Haskell
   snippet from the paper; the generated circuits are printed as ASCII
   diagrams (the paper renders the same circuits to PDF). *)

open Quipper
open Circ

(* §4.4.1: a quantum function that inputs a pair of qubits, applies two
   Hadamards and a controlled not, and outputs the modified pair. *)
let mycirc (a, b) =
  let* a = hadamard a in
  let* b = hadamard b in
  let* () = cnot ~control:a ~target:b in
  return (a, b)

(* §4.4.2: block structure — an entire block of gates controlled by a
   qubit, built from the [mycirc] subroutine. *)
let mycirc2 (a, b, c) =
  let* _ = mycirc (a, b) in
  let* () =
    with_controls [ ctl c ]
      (let* _ = mycirc (a, b) in
       let* _ = mycirc (b, a) in
       return ())
  in
  let* _ = mycirc (a, c) in
  return (a, b, c)

(* §4.4.2: an ancilla provided to a block of gates, with the infix-style
   [controlled] operator. *)
let mycirc3 (a, b, c) =
  let* () =
    with_ancilla (fun x ->
        let* () = qnot_ x |> controlled [ ctl a; ctl b ] in
        let* () = hadamard_ c |> controlled [ ctl x ] in
        qnot_ x |> controlled [ ctl a; ctl b ])
  in
  return (a, b, c)

(* §4.4.3: reversing — many quantum algorithms require a circuit to be
   reversed in the middle of a computation. *)
let pair_shape = Qdata.pair Qdata.qubit Qdata.qubit
let triple_shape = Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit

let timestep (a, b, c) =
  let* _ = mycirc (a, b) in
  let* () = qnot_ c |> controlled [ ctl a; ctl b ] in
  let* _ = reverse_simple pair_shape mycirc (a, b) in
  return (a, b, c)

let show title f shape =
  Fmt.pr "=== %s ===@." title;
  let b, _ = Circ.generate ~in_:shape f in
  print_string (Ascii.render b.Circuit.main)

let () =
  show "mycirc (paper 4.4.1)" mycirc pair_shape;
  show "mycirc2 (paper 4.4.2: with_controls block)" mycirc2 triple_shape;
  show "mycirc3 (paper 4.4.2: with_ancilla)" mycirc3 triple_shape;
  show "timestep (paper 4.4.3: mid-circuit reverse)" timestep triple_shape;
  (* §4.4.3: decompose_generic Binary — the Toffoli splits into
     controlled-V / V* gates *)
  Fmt.pr "=== timestep2 = decompose_generic Binary timestep ===@.";
  let b, _ = Circ.generate ~in_:triple_shape timestep in
  let b2 = Decompose.decompose_generic Decompose.Binary b in
  print_string (Ascii.render b2.Circuit.main);
  (* §4.5: generic operations over shape witnesses *)
  Fmt.pr "=== qinit / measure over a structured shape (paper 4.5) ===@.";
  let b, _ =
    Circ.generate_unit
      (let* p, q = qinit (Qdata.pair Qdata.qubit Qdata.qubit) (false, false) in
       let* _ = hadamard p in
       let* () = cnot ~control:p ~target:q in
       let* _ = measure (Qdata.pair Qdata.qubit Qdata.qubit) (p, q) in
       return ())
  in
  print_string (Ascii.render b.Circuit.main);
  (* and the same circuit executed on the statevector simulator *)
  let agree = ref 0 in
  for seed = 1 to 100 do
    let st, (p, q) =
      Quipper_sim.Statevector.run_fun ~seed ~in_:Qdata.unit () (fun () ->
          let* p, q = qinit (Qdata.pair Qdata.qubit Qdata.qubit) (false, false) in
          let* _ = hadamard p in
          let* () = cnot ~control:p ~target:q in
          return (p, q))
    in
    let vp, vq =
      Quipper_sim.Statevector.measure_and_read st
        (Qdata.pair Qdata.qubit Qdata.qubit) (p, q)
    in
    if vp = vq then incr agree
  done;
  Fmt.pr "Bell pair measured 100 times: outcomes agreed %d/100 times.@." !agree
