(* Quantum teleportation with dynamic lifting (paper §4.3.1): the two
   measurement outcomes are lifted back into circuit generation and decide
   *classically* which correction gates to generate — the QRAM model's
   interleaving of circuit generation and circuit execution.

   Run with:  dune exec examples/teleport.exe *)

open Quipper
open Circ
module Statevector = Quipper_sim.Statevector

(* Teleport the state of [src] onto a fresh qubit. *)
let teleport (src : Wire.qubit) : Wire.qubit Circ.t =
  (* entangled pair *)
  let* a = qinit_bit false in
  let* b = qinit_bit false in
  let* _ = hadamard a in
  let* () = cnot ~control:a ~target:b in
  (* Bell measurement of (src, a) *)
  let* () = cnot ~control:src ~target:a in
  let* _ = hadamard src in
  let* m1 = measure_qubit src in
  let* m2 = measure_qubit a in
  (* dynamic lifting: the corrections are generated only when needed *)
  let* z_needed = dynamic_lift m1 in
  let* x_needed = dynamic_lift m2 in
  let* () = cdiscard m1 in
  let* () = cdiscard m2 in
  let* () = if x_needed then qnot_ b else return () in
  let* b = if z_needed then gate_Z b else return b in
  return b

let () =
  (* teleport qubits prepared in various states and verify the payload
     arrives: prepare, teleport, undo the preparation, assertively
     terminate — the assertion is checked by the simulator. *)
  let preparations =
    [
      ("|0>", return, fun q -> return q);
      ("|1>", (fun q -> gate_X q), fun q -> gate_X q);
      ("|+>", (fun q -> hadamard q), fun q -> hadamard q);
      ( "|+i>",
        (fun q -> hadamard q >>= gate_S),
        fun q -> gate_S_inv q >> hadamard q );
    ]
  in
  List.iter
    (fun (name, prepare, unprepare) ->
      let ok = ref true in
      for seed = 1 to 25 do
        try
          let _st, () =
            Statevector.run_fun ~seed ~in_:Qdata.unit () (fun () ->
                let* q = qinit_bit false in
                let* q = prepare q in
                let* q' = teleport q in
                let* q' = unprepare q' in
                qterm_bit false q')
          in
          ()
        with Errors.Error (Errors.Termination_assertion _) -> ok := false
      done;
      Fmt.pr "teleporting %-4s : %s@." name
        (if !ok then "state arrived intact (25/25 seeds)" else "FAILED"))
    preparations;
  Fmt.pr
    "@.Each run generated a *different* circuit: the X/Z corrections are@.\
     emitted only when the lifted measurement outcomes require them.@."
