(** The Boolean Formula algorithm (Ambainis et al. [2]; paper §1, §4.6.1):
    evaluating a NAND formula by quantum walk, instantiated — as in the
    paper — to computing a winning strategy for the game of Hex.

    Two components are reproduced:

    - {b The Hex winner oracle}: "It uses a flood-fill algorithm, which we
      implemented as a functional program and converted to a circuit using
      the circuit lifting operation. The resulting oracle consists of 2.8
      million gates" (§4.6.1). We write the same flood fill against the
      lifted boolean operators of {!Quipper_template.Build}: blue wins a
      completed Hex game iff its stones connect the left edge to the right
      edge; reachability is computed by [cells] rounds of neighbour
      expansion, every intermediate round being fresh scratch qubits that
      [classical_to_reversible] uncomputes.

    - {b The NAND-tree walk}: the skeleton of the formula-evaluation walk —
      a phase-estimation-style iteration of diffusion steps against the
      leaf oracle — parameterised by formula depth, for resource
      estimation.

    Board geometry: Hex cells are hexagonally adjacent: (x,y) touches
    (x±1,y), (x,y±1), (x+1,y-1), (x-1,y+1). *)

open Quipper
open Circ
module Build = Quipper_template.Build
module Qureg = Quipper_arith.Qureg

type board = { width : int; height : int }

(** The QCS problem size used by the paper's implementation. *)
let qcs_board = { width = 9; height = 7 }

let cells b = b.width * b.height
let cell_index b ~x ~y = (y * b.width) + x

let neighbours b ~x ~y =
  List.filter
    (fun (x, y) -> x >= 0 && x < b.width && y >= 0 && y < b.height)
    [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1); (x + 1, y - 1); (x - 1, y + 1) ]

(* ------------------------------------------------------------------ *)
(* The flood-fill winner oracle, lifted                                *)

(** [blue_wins blue]: lifted flood fill. [blue] is one qubit per cell
    (true = blue stone; the game is complete, so false = red). Returns a
    fresh qubit: true iff blue connects the left edge (x=0) to the right
    edge (x=width-1). All scratch is left for the caller's
    [with_computed] to collect — exactly what the paper's [build_circuit]
    produces. *)
let blue_wins (b : board) (blue : Wire.qubit array) : Wire.qubit Circ.t =
  (* reached_0: blue stones on the left edge *)
  let* reached0 =
    mapm
      (fun idx ->
        let y = idx / b.width and x = idx mod b.width in
        if x = 0 then
          (* copy of blue.(cell) *)
          let* q = qinit_bit false in
          let* () = cnot ~control:blue.(cell_index b ~x ~y) ~target:q in
          return q
        else Build.bconst false)
      (List.init (cells b) Fun.id)
  in
  (* worst-case path length = number of cells *)
  let rounds = cells b in
  let* reached_final =
    foldm
      (fun reached _round ->
        mapm
          (fun idx ->
            let y = idx / b.width and x = idx mod b.width in
            let nbr_cells =
              List.map (fun (x, y) -> List.nth reached (cell_index b ~x ~y)) (neighbours b ~x ~y)
            in
            (* binary-chained ors: the lifted form of the classical
               [List.fold_left (||)] the flood fill is written with *)
            let* any_nbr =
              match nbr_cells with
              | [] -> Build.bconst false
              | c :: rest -> foldm Build.bor c rest
            in
            let* expand = Build.band blue.(idx) any_nbr in
            Build.bor (List.nth reached idx) expand)
          (List.init (cells b) Fun.id))
      reached0
      (List.init rounds Fun.id)
  in
  (* win: any reached cell on the right edge (chained ors again) *)
  match
    List.map
      (fun y -> List.nth reached_final (cell_index b ~x:(b.width - 1) ~y))
      (List.init b.height Fun.id)
  with
  | [] -> Build.bconst false
  | c :: rest -> foldm Build.bor c rest

(* ------------------------------------------------------------------ *)
(* Move-record decoding                                                *)

(** The QCS problem hands the oracle a *game record* — a sequence of moves
    (cell indices), blue playing the even-numbered moves — not a board.
    The oracle's front half decodes the record into the blue-stone board:
    for each blue move and each cell, a lifted equality test. *)
let move_bits (b : board) =
  let rec go w = if 1 lsl w >= cells b then w else go (w + 1) in
  go 1

(** [decode_blue b moves]: fresh board of blue-stone qubits from the move
    record (an array of [cells b] move registers of [move_bits b] qubits;
    blue plays moves 0, 2, 4, ...). *)
let decode_blue (b : board) (moves : Qureg.t array) : Wire.qubit array Circ.t =
  let* board_bits =
    mapm
      (fun cell ->
        let* stone = Build.bconst false in
        (* stone ^= OR over blue moves m of (moves_m == cell) *)
        foldm
          (fun stone m ->
            if m mod 2 <> 0 then return stone (* red move *)
            else
              let* eq_bits =
                mapm
                  (fun bitpos ->
                    if (cell lsr bitpos) land 1 = 1 then
                      let* q = qinit_bit false in
                      let* () = cnot ~control:moves.(m).(bitpos) ~target:q in
                      return q
                    else Build.bnot moves.(m).(bitpos))
                  (List.init (move_bits b) Fun.id)
              in
              let* eq =
                match eq_bits with
                | [] -> Build.bconst true
                | c :: rest -> foldm Build.band c rest
              in
              Build.bor stone eq)
          stone
          (List.init (Array.length moves) Fun.id))
      (List.init (cells b) Fun.id)
  in
  return (Array.of_list board_bits)

(** [cell_blue b moves cell]: fresh qubit = "cell holds a blue stone",
    recomputed from the whole move record. Boxed per cell (the cell index
    is a generation-time parameter, so each cell gets its own subroutine),
    and internally uncomputed so each use leaves exactly one fresh wire.

    Purely functional flood-fill code tests the colour of a cell by
    *calling* this function; Template Haskell lifting re-expands the call
    at every use site with no common-subexpression sharing — which is why
    the paper's 9x7 oracle runs to millions of gates. We reproduce that
    cost structure faithfully. *)
let cell_blue (b : board) (moves : Qureg.t array) (cell : int) :
    Wire.qubit Circ.t =
  let nmoves = Array.length moves in
  let mb = move_bits b in
  let in_shape = Qdata.array_of nmoves (Qureg.shape mb) in
  let out_shape = Qdata.pair in_shape Qdata.qubit in
  let* _, q =
    box
      (Printf.sprintf "isblue_%d" cell)
      ~in_:in_shape ~out:out_shape
      (fun moves ->
        let* q =
          Quipper_template.Oracle.compute_copy_uncompute ~out:Qdata.qubit
            (fun moves ->
              let* stone = Build.bconst false in
              foldm
                (fun stone m ->
                  if m mod 2 <> 0 then return stone
                  else
                    let* eq_bits =
                      mapm
                        (fun bitpos ->
                          if (cell lsr bitpos) land 1 = 1 then
                            let* q = qinit_bit false in
                            let* () = cnot ~control:moves.(m).(bitpos) ~target:q in
                            return q
                          else Build.bnot moves.(m).(bitpos))
                        (List.init mb Fun.id)
                    in
                    let* eq =
                      match eq_bits with
                      | [] -> Build.bconst true
                      | c :: rest -> foldm Build.band c rest
                    in
                    Build.bor stone eq)
                stone
                (List.init nmoves Fun.id))
            moves
        in
        return (moves, q))
      moves
  in
  return q

(** Flood fill over the move record, recomputing cell colours per use. *)
let blue_wins_record (b : board) (moves : Qureg.t array) : Wire.qubit Circ.t =
  let* reached0 =
    mapm
      (fun idx ->
        let x = idx mod b.width in
        if x = 0 then cell_blue b moves idx else Build.bconst false)
      (List.init (cells b) Fun.id)
  in
  let rounds = cells b in
  let* reached_final =
    foldm
      (fun reached _round ->
        mapm
          (fun idx ->
            let y = idx / b.width and x = idx mod b.width in
            let nbr_cells =
              List.map (fun (x, y) -> List.nth reached (cell_index b ~x ~y)) (neighbours b ~x ~y)
            in
            let* any_nbr =
              match nbr_cells with
              | [] -> Build.bconst false
              | c :: rest -> foldm Build.bor c rest
            in
            let* here = cell_blue b moves idx in
            let* expand = Build.band here any_nbr in
            Build.bor (List.nth reached idx) expand)
          (List.init (cells b) Fun.id))
      reached0
      (List.init rounds Fun.id)
  in
  match
    List.map
      (fun y -> List.nth reached_final (cell_index b ~x:(b.width - 1) ~y))
      (List.init b.height Fun.id)
  with
  | [] -> Build.bconst false
  | c :: rest -> foldm Build.bor c rest

(** The full QCS-style oracle: game record in, winner bit xored out. *)
let winner_oracle_moves (b : board)
    ((moves, out) : Qureg.t array * Wire.qubit) :
    (Qureg.t array * Wire.qubit) Circ.t =
  let* () =
    with_computed (blue_wins_record b moves) (fun w -> cnot ~control:w ~target:out)
  in
  return (moves, out)

(** Generate the full record-decoding oracle circuit (E7). *)
let generate_oracle_moves ?(board = qcs_board) () : Circuit.b =
  let shape =
    Qdata.pair
      (Qdata.array_of (cells board) (Qureg.shape (move_bits board)))
      Qdata.qubit
  in
  let b, _ = Circ.generate ~in_:shape (winner_oracle_moves board) in
  b

(** The reversible oracle (blue, out) |-> (blue, out XOR wins): flood fill,
    copy, uncompute. *)
let winner_oracle (b : board) ((blue, out) : Wire.qubit array * Wire.qubit) :
    (Wire.qubit array * Wire.qubit) Circ.t =
  let* () =
    with_computed (blue_wins b blue) (fun w -> cnot ~control:w ~target:out)
  in
  return (blue, out)

(** Classical reference flood fill, for oracle validation. *)
let blue_wins_sem (b : board) (blue : bool array) : bool =
  let reached = Array.make (cells b) false in
  for y = 0 to b.height - 1 do
    if blue.(cell_index b ~x:0 ~y) then reached.(cell_index b ~x:0 ~y) <- true
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for y = 0 to b.height - 1 do
      for x = 0 to b.width - 1 do
        let idx = cell_index b ~x ~y in
        if
          (not reached.(idx)) && blue.(idx)
          && List.exists (fun (x, y) -> reached.(cell_index b ~x ~y)) (neighbours b ~x ~y)
        then begin
          reached.(idx) <- true;
          changed := true
        end
      done
    done
  done;
  List.exists
    (fun y -> reached.(cell_index b ~x:(b.width - 1) ~y))
    (List.init b.height Fun.id)

(** Generate the oracle circuit for gate counting (E7). *)
let generate_oracle ?(board = qcs_board) () : Circuit.b =
  let shape = Qdata.pair (Qdata.array_of (cells board) Qdata.qubit) Qdata.qubit in
  let b, _ = Circ.generate ~in_:shape (winner_oracle board) in
  b

(* ------------------------------------------------------------------ *)
(* The NAND-tree walk skeleton                                         *)

(** Resource skeleton of the formula-evaluation walk: a quantum walk on
    the game tree, [sqrt(size)]-ish diffusion steps, each consulting the
    leaf oracle (the Hex winner on a completed position). The tree is
    parameterised by depth d (formula size 2^d). *)
let nand_walk ~(depth : int) (board : board) : unit Circ.t =
  let pos_bits = depth in
  let* pos = Qureg.init_zero ~width:pos_bits in
  let* () = Qureg.hadamard_all pos in
  let* coin = qinit_bit false in
  let* leaf_in = mapm (fun _ -> qinit_bit false) (List.init (cells board) Fun.id) in
  let leaf = Array.of_list leaf_in in
  let* out = qinit_bit false in
  let steps =
    max 1 (int_of_float (ceil (sqrt (Float.of_int (1 lsl depth)))))
  in
  let* () =
    iterm
      (fun _ ->
        (* one walk step: coin toss, conditional move, leaf oracle at the
           deepest level *)
        let* _ = hadamard coin in
        let* () = Quipper_arith.Qdint.increment pos |> controlled [ ctl coin ] in
        let* () = Quipper_arith.Qdint.decrement pos |> controlled [ ctl_neg coin ] in
        let* _ = winner_oracle board (leaf, out) in
        let* _ = gate_Z out |> controlled [ ctl coin ] in
        return ())
      (List.init steps Fun.id)
  in
  let* _ = measure (Qureg.shape pos_bits) pos in
  let* _ = measure_qubit out in
  let* () = iterm (fun q -> qdiscard q) (Array.to_list leaf) in
  qdiscard coin

let generate_walk ?(depth = 4) ?(board = { width = 3; height = 3 }) () : Circuit.b =
  let b, _ = Circ.generate_unit (nand_walk ~depth board) in
  b
