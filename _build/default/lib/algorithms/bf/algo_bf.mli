(** The Boolean Formula algorithm (Ambainis et al.; paper §1, §4.6.1),
    instantiated to computing the winner of completed Hex games: the
    flood-fill oracle the paper lifted to 2.8 million gates (experiment
    E7), in two sharing disciplines, plus the NAND-tree walk skeleton. *)

open Quipper
module Qureg = Quipper_arith.Qureg

type board = { width : int; height : int }

val qcs_board : board
(** 9x7 — the QCS problem size used by the paper. *)

val cells : board -> int
val cell_index : board -> x:int -> y:int -> int
val neighbours : board -> x:int -> y:int -> (int * int) list

val blue_wins : board -> Wire.qubit array -> Wire.qubit Circ.t
(** Lifted flood fill over a board of stone qubits: scratch left for the
    enclosing [with_computed]. *)

val winner_oracle :
  board -> Wire.qubit array * Wire.qubit -> (Wire.qubit array * Wire.qubit) Circ.t
(** (board, out) -> (board, out XOR blue-wins): compute / copy / uncompute. *)

val blue_wins_sem : board -> bool array -> bool
(** Classical reference flood fill. *)

val generate_oracle : ?board:board -> unit -> Circuit.b

val move_bits : board -> int

val decode_blue : board -> Qureg.t array -> Wire.qubit array Circ.t
(** Decode a game record (blue plays even moves) into a stone board. *)

val cell_blue : board -> Qureg.t array -> int -> Wire.qubit Circ.t
(** One cell's colour recomputed from the whole record — boxed per cell,
    internally uncomputed; re-expanded at every use like sharing-free
    lifted code. *)

val blue_wins_record : board -> Qureg.t array -> Wire.qubit Circ.t

val winner_oracle_moves :
  board -> Qureg.t array * Wire.qubit -> (Qureg.t array * Wire.qubit) Circ.t
(** The full QCS-style oracle: game record in, winner bit xored out. *)

val generate_oracle_moves : ?board:board -> unit -> Circuit.b

val nand_walk : depth:int -> board -> unit Circ.t
(** Resource skeleton of the formula-evaluation walk. *)

val generate_walk : ?depth:int -> ?board:board -> unit -> Circuit.b
