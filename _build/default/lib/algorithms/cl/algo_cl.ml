(** Class Number (Hallgren [8]; paper §1): approximating the class group
    of a real quadratic number field. The quantum kernel of Hallgren's
    algorithm is *period finding* — for the class-number problem, over the
    (irrational) period of the regulator pseudo-function.

    The full number-theoretic pipeline (reduced ideals, infrastructure
    distance, continued fractions over quadratic irrationals) is classical
    pre/post-processing; the quantum content is the Shor-style period
    finder. We implement that kernel completely and runnably: an oracle
    register computation f(x) = x mod s built from quantum comparators and
    subtractors, measurement of the function register, inverse QFT on the
    argument register, measurement, and the classical continued-fraction
    recovery of the period — exercising exactly the structures (modular
    arithmetic oracle + QFT + classical post-processing loop) that
    Hallgren's algorithm consumes at scale. The irrational-period
    refinements are documented as out of scope in DESIGN.md. *)

open Quipper
open Circ
module Qureg = Quipper_arith.Qureg
module Qdint = Quipper_arith.Qdint

type params = {
  arg_bits : int; (* width of the argument register *)
  period : int; (* the hidden period s *)
}

let default_params = { arg_bits = 5; period = 3 }

let bits_for v =
  let rec go w = if 1 lsl w > v then w else go (w + 1) in
  go 1

(** [flip_if_less_const k r target]: target ^= (r < k), via a temporarily
    materialised constant register (assertively terminated). *)
let flip_if_less_const (k : int) (r : Qureg.t) (target : Wire.qubit) :
    unit Circ.t =
  let* kreg = Qdint.init ~width:(Qureg.width r) k in
  let* () = Qdint.less_than ~x:r ~y:kreg ~target in
  Qureg.term k kreg

(** [modadd_const ~s c out]: out := (out + c) mod s, maintaining the
    invariant out < s. The standard reversible modular constant adder
    (Vedral et al.): add c, compare with s, conditionally subtract s, and
    uncompute the overflow flag by the wraparound test out < c — which is
    exactly equivalent to "the subtraction happened" when both operands
    are below s. The register is one bit wider than s to hold the
    pre-reduction sum. *)
let modadd_const ~(s : int) (c : int) (out : Qureg.t) : unit Circ.t =
  let c = c mod s in
  if c = 0 then return ()
  else
    let* flag = qinit_bit false in
    let* () = Qdint.add_const c out in
    (* flag ^= (out >= s): out < s is the complement *)
    let* () = flip_if_less_const s out flag in
    let* () = qnot_ flag in
    let* () = Qdint.sub_const s out |> controlled [ ctl flag ] in
    (* uncompute: wrapped <=> result < c *)
    let* () = flip_if_less_const c out flag in
    qterm_bit false flag

(** Reversible f(x) = x mod s for the classical constant s: modular
    accumulation of the constants 2^i mod s, each addition controlled on
    the corresponding bit of x. Every comparison flag is exactly
    uncomputed, so the function register is entangled with nothing but
    x's residue — which the period-finding interference requires. *)
let mod_oracle ~(p : params) (x : Qureg.t) : Qureg.t Circ.t =
  let s = p.period in
  let ow = bits_for (2 * s - 1) in
  let* out = Qureg.init_zero ~width:ow in
  let* () =
    iterm
      (fun i ->
        let c = (1 lsl i) mod s in
        modadd_const ~s c out |> controlled [ ctl x.(i) ])
      (List.init p.arg_bits Fun.id)
  in
  return out

(** The period-finding circuit: superpose x, compute f(x), measure the
    function register, inverse-QFT the argument register, measure. The
    measured value is (close to) a multiple of 2^w / s. *)
let period_find_circuit ~(p : params) :
    (Wire.bit array * Wire.bit array) Circ.t =
  let w = p.arg_bits in
  let* x = Qureg.init_zero ~width:w in
  let* () = Qureg.hadamard_all x in
  let* fx = mod_oracle ~p x in
  let* f_bits = measure (Qureg.shape (Qureg.width fx)) fx in
  let* () = Quipper_primitives.Qft.qft_inverse x in
  let* x_bits = measure (Qureg.shape w) x in
  return (x_bits, f_bits)

(** Continued-fraction post-processing (§3.5's classical step): recover
    the period from a measured value ~ k * 2^w / s. *)
let recover_period ~(p : params) (measured : int) : int option =
  if measured = 0 then None
  else
    let n = 1 lsl p.arg_bits in
    (* continued fraction expansion of measured / n; return the first
       denominator q <= some bound with |measured/n - k/q| < 1/(2n) *)
    let rec cf a b (h1, h2) (k1, k2) acc =
      if b = 0 then List.rev acc
      else
        let q = a / b in
        let h = (q * h1) + h2 and k = (q * k1) + k2 in
        cf b (a mod b) (h, h1) (k, k1) ((h, k) :: acc)
    in
    let convergents = cf measured n (1, 0) (0, 1) [] in
    List.find_map
      (fun (_h, k) ->
        if k > 0 && k < n
           && (let frac = Float.of_int measured /. Float.of_int n in
               List.exists
                 (fun j ->
                   Float.abs (frac -. (Float.of_int j /. Float.of_int k))
                   < 1.0 /. (2.0 *. Float.of_int n))
                 (List.init (k + 1) Fun.id))
        then Some k
        else None)
      convergents

let generate ?(p = default_params) () : Circuit.b =
  let b, _ = Circ.generate_unit (period_find_circuit ~p) in
  b
