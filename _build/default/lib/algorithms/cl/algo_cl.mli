(** Class Number (Hallgren; paper §1): the quantum kernel of the
    class-group algorithm is period finding; we implement it completely
    and runnably over a reversible x mod s oracle, with the
    continued-fraction classical post-processing of §3.5. Substitution
    note (irrational periods) in DESIGN.md. *)

open Quipper
module Qureg = Quipper_arith.Qureg

type params = { arg_bits : int; period : int }

val default_params : params

val bits_for : int -> int

val flip_if_less_const : int -> Qureg.t -> Wire.qubit -> unit Circ.t

val modadd_const : s:int -> int -> Qureg.t -> unit Circ.t
(** out := (out + c) mod s, the standard reversible modular constant
    adder with exactly-uncomputed overflow flag. *)

val mod_oracle : p:params -> Qureg.t -> Qureg.t Circ.t
(** Fresh f(x) = x mod s; entangled with nothing but the residue — which
    the period-finding interference requires. *)

val period_find_circuit : p:params -> (Wire.bit array * Wire.bit array) Circ.t

val recover_period : p:params -> int -> int option
(** Continued-fraction recovery from a measured value ~ k 2^w / s. *)

val generate : ?p:params -> unit -> Circuit.b
