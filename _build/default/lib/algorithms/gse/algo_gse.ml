(** Ground State Estimation (Whitfield–Biamonte–Aspuru-Guzik [23];
    paper §1): estimate the ground-state energy of a molecular electronic
    Hamiltonian by quantum phase estimation over Trotterized evolution.

    The Hamiltonian is given as a sum of Pauli terms (the second-quantised
    electronic Hamiltonian after a Jordan–Wigner transformation). We ship
    the standard minimal-basis H2 molecule at equilibrium bond length
    (coefficients from the literature, reduced to two qubits by symmetry),
    which is small enough that the whole algorithm runs end-to-end on the
    statevector simulator: preparing the Hartree–Fock reference state,
    phase-estimating exp(-iHt), and reading the energy off the counting
    register. Larger molecules are supported for resource estimation. *)

open Quipper
open Circ
module Trotter = Quipper_primitives.Trotter
module Qureg = Quipper_arith.Qureg

(** Minimal-basis H2 at R = 0.7414 Angstrom, reduced to 2 qubits
    (Bravyi-Kitaev / symmetry-reduced form; coefficients in Hartree). *)
let h2_hamiltonian : Trotter.hamiltonian =
  {
    Trotter.nqubits = 2;
    terms =
      [
        { Trotter.coeff = -1.052373; paulis = [] };
        { Trotter.coeff = 0.395937; paulis = [ (0, Trotter.Z) ] };
        { Trotter.coeff = -0.397937; paulis = [ (1, Trotter.Z) ] };
        { Trotter.coeff = 0.011280; paulis = [ (0, Trotter.Z); (1, Trotter.Z) ] };
        { Trotter.coeff = 0.180931; paulis = [ (0, Trotter.X); (1, Trotter.X) ] };
      ];
  }

type params = {
  hamiltonian : Trotter.hamiltonian;
  precision_bits : int;
  trotter_steps : int;
  time : float; (* evolution time scaling: phase = -E * time / 2pi turns *)
  reference : bool list; (* computational-basis reference state *)
}

let default_params =
  {
    hamiltonian = h2_hamiltonian;
    precision_bits = 7;
    trotter_steps = 4;
    time = 1.0;
    (* the Hartree-Fock determinant |10> (qubit 0 occupied), which carries
       ~99% overlap with the true ground state of this Hamiltonian *)
    reference = [ true; false ];
  }

(** The GSE circuit: prepare the reference determinant, phase-estimate
    exp(-i H t), return the counting register (measure to read the
    energy: E = -2*pi*phase / time, with phase = counting / 2^bits). *)
let gse ~(p : params) : Qureg.t Circ.t =
  let n = p.hamiltonian.Trotter.nqubits in
  let* sys =
    mapm qinit_bit (if List.length p.reference = n then p.reference else List.init n (fun _ -> false))
  in
  let sys = Array.of_list sys in
  let u ~power =
    Trotter.evolve p.hamiltonian sys
      ~time:(p.time *. Float.of_int power)
      ~steps:(p.trotter_steps * power)
  in
  let* counting = Quipper_primitives.Phase_estimation.estimate ~bits:p.precision_bits ~u in
  let* () = discard (Qureg.shape n) sys in
  return counting

(** Convert a measured counting value to an energy estimate. The phase
    register estimates exp(-i E t) = exp(2*pi*i * phase); phases above 1/2
    represent negative energies' complements. *)
let energy_of_counting ~(p : params) (counting : int) : float =
  let bits = p.precision_bits in
  let phase = Float.of_int counting /. Float.of_int (1 lsl bits) in
  let phase = if phase > 0.5 then phase -. 1.0 else phase in
  -.(2.0 *. Float.pi *. phase) /. p.time

(** Classical reference: exact ground energy by diagonalising the (tiny)
    Hamiltonian — used by tests to check the estimate. Only supports
    Hamiltonians of up to [Statevector.max_qubits] qubits; here we just
    need 2x2/4x4 dense eigenvalues via power iteration on (cI - H). *)
let exact_ground_energy (h : Trotter.hamiltonian) : float =
  let n = h.Trotter.nqubits in
  let dim = 1 lsl n in
  let open Quipper_math in
  (* dense H *)
  let pauli_entry (p : Trotter.pauli) (r : int) (c : int) : Cplx.t =
    match p with
    | Trotter.I -> if r = c then Cplx.one else Cplx.zero
    | Trotter.X -> if r <> c then Cplx.one else Cplx.zero
    | Trotter.Y ->
        if r = 0 && c = 1 then Cplx.neg Cplx.i
        else if r = 1 && c = 0 then Cplx.i
        else Cplx.zero
    | Trotter.Z ->
        if r <> c then Cplx.zero else if r = 0 then Cplx.one else Cplx.neg Cplx.one
  in
  let hmat = Array.make_matrix dim dim Cplx.zero in
  List.iter
    (fun (t : Trotter.term) ->
      for r = 0 to dim - 1 do
        for c = 0 to dim - 1 do
          let entry = ref (Cplx.of_float t.Trotter.coeff) in
          for q = 0 to n - 1 do
            let p =
              match List.assoc_opt q t.Trotter.paulis with Some p -> p | None -> Trotter.I
            in
            let rb = (r lsr q) land 1 and cb = (c lsr q) land 1 in
            entry := Cplx.mul !entry (pauli_entry p rb cb)
          done;
          hmat.(r).(c) <- Cplx.add hmat.(r).(c) !entry
        done
      done)
    h.Trotter.terms;
  (* power iteration on (shift*I - H) to find the lowest eigenvalue *)
  let shift = 100.0 in
  let v = Array.make dim Cplx.one in
  let normalize v =
    let norm = sqrt (Array.fold_left (fun a x -> a +. Cplx.norm2 x) 0.0 v) in
    Array.map (fun x -> Cplx.smul (1.0 /. norm) x) v
  in
  let v = ref (normalize v) in
  for _ = 1 to 3000 do
    let w =
      Array.init dim (fun r ->
          let acc = ref Cplx.zero in
          for c = 0 to dim - 1 do
            let m =
              if r = c then Cplx.sub (Cplx.of_float shift) hmat.(r).(c)
              else Cplx.neg hmat.(r).(c)
            in
            acc := Cplx.add !acc (Cplx.mul m !v.(c))
          done;
          !acc)
    in
    v := normalize w
  done;
  (* Rayleigh quotient *)
  let hv =
    Array.init dim (fun r ->
        let acc = ref Cplx.zero in
        for c = 0 to dim - 1 do
          acc := Cplx.add !acc (Cplx.mul hmat.(r).(c) !v.(c))
        done;
        !acc)
  in
  Array.fold_left ( +. ) 0.0
    (Array.mapi (fun i x -> Cplx.re (Cplx.mul (Cplx.conj !v.(i)) x)) hv)

let generate ?(p = default_params) () : Circuit.b =
  let b, _ = Circ.generate_unit (gse ~p) in
  b
