(** Ground State Estimation (Whitfield et al.; paper §1): phase
    estimation over Trotterized evolution of a molecular electronic
    Hamiltonian. Ships minimal-basis H2, small enough to run end to end
    on the statevector simulator (see [examples/gse_h2.exe]). *)

open Quipper
module Trotter = Quipper_primitives.Trotter

val h2_hamiltonian : Trotter.hamiltonian
(** Minimal-basis H2 at equilibrium bond length, reduced to 2 qubits. *)

type params = {
  hamiltonian : Trotter.hamiltonian;
  precision_bits : int;
  trotter_steps : int;
  time : float;
  reference : bool list;  (** the Hartree-Fock reference determinant *)
}

val default_params : params

val gse : p:params -> Quipper_arith.Qureg.t Circ.t
(** Prepare the reference, phase-estimate exp(-iHt); returns the counting
    register. *)

val energy_of_counting : p:params -> int -> float

val exact_ground_energy : Trotter.hamiltonian -> float
(** Dense diagonalisation (power iteration), for validating estimates. *)

val generate : ?p:params -> unit -> Circuit.b
