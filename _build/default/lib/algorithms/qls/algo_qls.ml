(** The Quantum Linear Systems algorithm (Harrow–Hassidim–Lloyd [9];
    paper §1, §4.6.1).

    HHL solves A x = b by phase-estimating the eigenvalues of A on |b>,
    rotating an ancilla by an angle inversely proportional to the
    estimated eigenvalue, and uncomputing. The paper highlights one
    concrete artefact of its implementation: "our implementation of the
    Linear Systems algorithm makes liberal use of arithmetic and analytic
    functions, such as sin(x) and cos(x), which were implemented using
    the circuit lifting feature. The circuit created for sin(x), over a
    32+32 qubit fixed-point argument, uses 3273010 gates" (§4.6.1). That
    artefact is experiment E6: {!generate_sin} regenerates the circuit
    from {!Quipper_arith.Fpreal.sin} at the same 32+32 format.

    The algorithm skeleton itself ({!hhl}) is included for resource
    estimation and small-instance simulation: phase estimation over a
    Trotterized band Hamiltonian, the eigenvalue-inversion rotation, and
    the uncompute. *)

open Quipper
open Circ
module Fpreal = Quipper_arith.Fpreal
module Qureg = Quipper_arith.Qureg
module Trotter = Quipper_primitives.Trotter

(** E6: the sin(x) oracle circuit at a given fixed-point format. *)
let generate_sin ?(int_bits = 32) ?(frac_bits = 32) () : Circuit.b =
  let shape = Fpreal.shape ~int_bits ~frac_bits in
  let b, _ =
    Circ.generate ~in_:shape (fun x ->
        let* s = Fpreal.sin x in
        return (x, s))
  in
  b

let generate_cos ?(int_bits = 32) ?(frac_bits = 32) () : Circuit.b =
  let shape = Fpreal.shape ~int_bits ~frac_bits in
  let b, _ =
    Circ.generate ~in_:shape (fun x ->
        let* s = Fpreal.cos x in
        return (x, s))
  in
  b

(* ------------------------------------------------------------------ *)
(* The HHL skeleton                                                    *)

type params = {
  system_qubits : int; (* log2 of the linear system's dimension *)
  precision_bits : int; (* phase-estimation register width *)
  trotter_steps : int;
}

let default_params = { system_qubits = 2; precision_bits = 4; trotter_steps = 2 }

(** A fixed tridiagonal test Hamiltonian on [n] qubits: nearest-neighbour
    XX + local Z terms — a band matrix, the class HHL targets. *)
let band_hamiltonian n : Trotter.hamiltonian =
  let terms =
    List.concat
      [
        List.init n (fun i -> { Trotter.coeff = 0.5; paulis = [ (i, Trotter.Z) ] });
        List.init (n - 1) (fun i ->
            { Trotter.coeff = 0.25; paulis = [ (i, Trotter.X); (i + 1, Trotter.X) ] });
      ]
  in
  { Trotter.nqubits = n; terms }

(** The HHL circuit on a state register [b_reg] (holding |b>): phase
    estimation, conditioned eigenvalue-inversion rotations on a fresh
    ancilla, inverse phase estimation, and a measurement of the ancilla
    flagging success. Returns (solution register, success bit). *)
let hhl ~(p : params) (b_reg : Qureg.t) : (Qureg.t * Wire.bit) Circ.t =
  let h = band_hamiltonian p.system_qubits in
  let u ~power =
    Trotter.evolve h b_reg ~time:(Float.of_int power *. 0.5) ~steps:(p.trotter_steps * power)
  in
  let* anc = qinit_bit false in
  let* () =
    with_computed
      (Quipper_primitives.Phase_estimation.estimate ~bits:p.precision_bits ~u)
      (fun lambda ->
        (* eigenvalue-inversion: for each estimate value e, rotate the
           ancilla by ~ C/e — one multi-controlled rotation per value,
           the "quantum test" style *)
        iterm
          (fun e ->
            if e = 0 then return ()
            else
              let theta = 2.0 *. Stdlib.asin (min 1.0 (1.0 /. Float.of_int e)) in
              rot_Z theta anc
              |> controlled (Qureg.const_controls e lambda))
          (List.init (1 lsl p.precision_bits) Fun.id))
  in
  let* ok = measure_qubit anc in
  return (b_reg, ok)

let generate ?(p = default_params) () : Circuit.b =
  let b, _ =
    Circ.generate ~in_:(Qureg.shape p.system_qubits) (fun b_reg -> hhl ~p b_reg)
  in
  b
