(** Quantum Linear Systems (Harrow-Hassidim-Lloyd; paper §1, §4.6.1).
    {!generate_sin} regenerates experiment E6 — the paper's 3,273,010-gate
    sin(x) oracle over 32+32-bit fixed point; {!hhl} is the algorithm
    skeleton (phase estimation over a Trotterized band Hamiltonian,
    eigenvalue-inversion rotation, uncompute). *)

open Quipper
module Qureg = Quipper_arith.Qureg

val generate_sin : ?int_bits:int -> ?frac_bits:int -> unit -> Circuit.b
val generate_cos : ?int_bits:int -> ?frac_bits:int -> unit -> Circuit.b

type params = { system_qubits : int; precision_bits : int; trotter_steps : int }

val default_params : params

val band_hamiltonian : int -> Quipper_primitives.Trotter.hamiltonian

val hhl : p:params -> Qureg.t -> (Qureg.t * Wire.bit) Circ.t
(** Returns (solution register, success flag). *)

val generate : ?p:params -> unit -> Circuit.b
