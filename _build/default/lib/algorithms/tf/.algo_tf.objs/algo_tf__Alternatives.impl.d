lib/algorithms/tf/alternatives.ml: Array Circ Fun List Oracle Qdata Quipper Quipper_arith Qwtfp
