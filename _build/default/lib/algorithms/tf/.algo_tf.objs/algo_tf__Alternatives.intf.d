lib/algorithms/tf/alternatives.mli: Circ Oracle Quipper Quipper_arith Qwtfp
