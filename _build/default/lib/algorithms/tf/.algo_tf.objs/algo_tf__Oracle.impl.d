lib/algorithms/tf/oracle.ml: Array Circ Fun List Qdata Quipper Quipper_arith Wire
