lib/algorithms/tf/oracle.mli: Circ Quipper Quipper_arith Wire
