lib/algorithms/tf/qwtfp.ml: Array Circ Circuit Float Fun List Oracle Qdata Quipper Quipper_arith Quipper_primitives Wire
