lib/algorithms/tf/qwtfp.mli: Circ Circuit Oracle Qdata Quipper Quipper_arith Wire
