lib/algorithms/tf/simulate.ml: Float Fmt Oracle Qdata Quipper Quipper_arith Quipper_sim
