lib/algorithms/tf/simulate.mli: Format Oracle
