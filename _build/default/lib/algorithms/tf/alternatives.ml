(** Alternatives and generalisations of certain subroutines — the paper's
    §5.2 lists an [Alternatives] module among the six modules of the
    Triangle Finding implementation. These are drop-in replacements with
    identical semantics but different cost profiles, compared in the
    bench harness and proven equivalent by the test suite.

    - {!qram_fetch_swap}: a select-swap qRAM. The direct qRAM of
      {!Qwtfp.qram_fetch} uses one (r+1)-controlled copy per address; the
      select-swap variant routes the addressed entry to a fixed position
      through a binary tree of singly-controlled swaps, copies it with
      plain CNOTs, and unroutes — trading multi-controlled gates for many
      cheap ones, the better choice once a gate base without wide controls
      is targeted.
    - {!o4_POW17_naive}: the 17th power by sixteen successive
      multiplications instead of the square-chain of Figure 2 — the
      obvious-but-expensive formulation, kept as a cost yardstick.
    - {!a5_test_accumulate}: the triangle phase test with an explicit
      accumulator ancilla (compute OR of all triangle indicators, apply
      one Z, uncompute) instead of one doubly-controlled Z per triple. *)

open Quipper
open Circ
module Qureg = Quipper_arith.Qureg
module Qinttf = Quipper_arith.Qinttf

type params = Oracle.params = { l : int; n : int; r : int }

(* ------------------------------------------------------------------ *)
(* Select-swap qRAM                                                    *)

(** Route entry [i] of [tt] to index 0 by a tree of controlled register
    swaps: at level k (from the top address bit down), swap block pairs
    controlled on address bit k. After routing, tt[0] holds entry i. *)
let route ~(p : params) (i : Qureg.t) (tt : Qureg.t array) : unit Circ.t =
  let rec level k : unit Circ.t =
    if k < 0 then return ()
    else
      let stride = 1 lsl k in
      let* () =
        iterm
          (fun blk ->
            (* swap block [blk] with block [blk + stride] when bit k set *)
            let a = blk and b = blk + stride in
            if b < Array.length tt then
              Qureg.swap_registers tt.(a) tt.(b) |> controlled [ ctl i.(k) ]
            else return ())
          (List.filter
             (fun blk -> blk land stride = 0)
             (List.init (Array.length tt) Fun.id))
      in
      level (k - 1)
  in
  level (p.r - 1)

let unroute ~(p : params) (i : Qureg.t) (tt : Qureg.t array) : unit Circ.t =
  let rec level k : unit Circ.t =
    if k > p.r - 1 then return ()
    else
      let stride = 1 lsl k in
      let* () =
        iterm
          (fun blk ->
            let a = blk and b = blk + stride in
            if b < Array.length tt then
              Qureg.swap_registers tt.(a) tt.(b) |> controlled [ ctl i.(k) ]
            else return ())
          (List.filter
             (fun blk -> blk land stride = 0)
             (List.init (Array.length tt) Fun.id))
      in
      level (k + 1)
  in
  level 0

(** ttd ^= tt[i], by route / copy / unroute. *)
let qram_fetch_swap ~(p : params) (i : Qureg.t) (tt : Qureg.t array)
    (ttd : Qureg.t) : unit Circ.t =
  let* () = route ~p i tt in
  let* () = Qureg.xor_into ~source:tt.(0) ~target:ttd in
  unroute ~p i tt

(* ------------------------------------------------------------------ *)
(* Naive 17th power                                                    *)

(** x^17 by sixteen successive multiplications — same interface as
    {!Oracle.o4_POW17}, vastly more expensive (the yardstick the
    square-chain is measured against). *)
let o4_POW17_naive ~l (x : Qureg.t) : (Qureg.t * Qureg.t) Circ.t =
  box "o4_naive" ~in_:(Qureg.shape l)
    ~out:(Qdata.pair (Qureg.shape l) (Qureg.shape l))
    (fun x ->
      let* x, x17 =
        with_computed_fun x
          (fun x ->
            (* x^2 .. x^16 as a chain of multiplications by x *)
            let rec go k acc powers =
              if k = 16 then return (List.rev powers, acc)
              else
                let* (_, _, nxt) = Oracle.o8_MUL ~l (x, acc) in
                go (k + 1) nxt (acc :: powers)
            in
            let* x2 = Qinttf.square x in
            let* garbage, x16 = go 2 x2 [] in
            return (x, garbage, x16))
          (fun (x, garbage, x16) ->
            let* (_, _, x17) = Oracle.o8_MUL ~l (x, x16) in
            return ((x, garbage, x16), x17))
      in
      return (x, x17))
    x

(* ------------------------------------------------------------------ *)
(* Accumulator-style triangle test                                     *)

(** Phase-flip when the cached edge table contains a triangle, via an
    explicit indicator: t := OR over triples of (three edge bits); Z on
    t; uncompute. One multi-controlled write per triple, but a single
    phase gate. *)
let a5_test_accumulate ~(p : params) (regs : Qwtfp.registers) :
    Qwtfp.registers Circ.t =
  let ts = Qwtfp.tuple_size p in
  let triples =
    List.concat_map
      (fun j ->
        List.concat_map
          (fun k -> List.map (fun m -> (j, k, m)) (List.init k Fun.id))
          (List.init j Fun.id))
      (List.init ts Fun.id)
  in
  let* () =
    with_computed
      (let* t = qinit_bit false in
       let* () =
         iterm
           (fun (j, k, m) ->
             qnot_ t
             |> controlled
                  [ ctl regs.Qwtfp.ee.(Qwtfp.ee_index j k);
                    ctl regs.Qwtfp.ee.(Qwtfp.ee_index j m);
                    ctl regs.Qwtfp.ee.(Qwtfp.ee_index k m) ])
           triples
       in
       return t)
      (fun t ->
        let* _ = gate_Z t in
        return ())
  in
  return regs
