(** Alternatives and generalisations of certain subroutines — the paper's
    §5.2 lists an [Alternatives] module among the six modules of the
    Triangle Finding implementation. Drop-in replacements with identical
    semantics but different cost profiles; compared in the bench harness,
    proven equivalent in the test suite. *)

open Quipper
module Qureg = Quipper_arith.Qureg

type params = Oracle.params = { l : int; n : int; r : int }

val route : p:params -> Qureg.t -> Qureg.t array -> unit Circ.t
val unroute : p:params -> Qureg.t -> Qureg.t array -> unit Circ.t

val qram_fetch_swap : p:params -> Qureg.t -> Qureg.t array -> Qureg.t -> unit Circ.t
(** A select-swap qRAM: route the addressed entry to position 0 through a
    butterfly of singly-controlled register swaps, copy, unroute — no
    control ever wider than one, unlike the direct qRAM's (r+1)-wide
    quantum tests. *)

val o4_POW17_naive : l:int -> Qureg.t -> (Qureg.t * Qureg.t) Circ.t
(** x^17 by sixteen successive multiplications — the yardstick the
    square-chain of Figure 2 is measured against (~3.4x more gates). *)

val a5_test_accumulate : p:params -> Qwtfp.registers -> Qwtfp.registers Circ.t
(** The triangle phase test via an explicit OR-accumulator ancilla and a
    single Z, instead of one doubly-controlled Z per triple. *)
