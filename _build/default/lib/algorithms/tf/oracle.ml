(** The Triangle Finding oracle (paper §5.1, §5.3.1): the edge predicate of
    the input graph, defined by modular arithmetic over l-bit QIntTF
    integers — "each oracle call requires the extensive use of modular
    arithmetic" taken modulo 2^l - 1.

    The oracle injects the 2^n graph nodes into the space of l-bit
    integers and tests a symmetric arithmetic predicate:

        edge(u, w)  <=>  the top bit of (u'^17 ⊞ w'^17) is set

    (u', w' are the l-bit injections of u and w; ⊞ is addition mod
    2^l - 1). Being a symmetric function of two pseudo-randomly scrambled
    labels, the predicate has the edge-density and no-structure properties
    the algorithm's analysis needs; the QCS problem specification's
    predicate differs in details the paper does not print, so we document
    this as our concrete choice (DESIGN.md).

    Subroutine naming follows §5.2/§5.3: [o8_MUL] multiplication,
    [o7_ADD] controlled addition, [o4_POW17] the seventeenth power
    (Figure 2's [with_computed_fun] chain of squarings), [o1_ORACLE] the
    top-level edge test. Each is a boxed subcircuit; the inverses
    appearing in the generated circuit are the starred boxes of Figures 2
    and 3. *)

open Quipper
open Circ
module Qureg = Quipper_arith.Qureg
module Qinttf = Quipper_arith.Qinttf

type params = { l : int; n : int; r : int }

let default_params = { l = 4; n = 3; r = 2 }

let reg_shape l = Qureg.shape l

(* ------------------------------------------------------------------ *)
(* o7_ADD: boxed controlled adder                                      *)

let o7_shape_in l = Qdata.triple Qdata.qubit (reg_shape l) (reg_shape l)
let o7_shape_out l =
  Qdata.quad Qdata.qubit (reg_shape l) (reg_shape l) (reg_shape l)

(** [o7_ADD ~l (ctl, x, y)]: boxed fresh s := y ⊞ (ctl ? x : 0). *)
let o7_ADD ~l (ctl, x, y) : (Wire.qubit * Qureg.t * Qureg.t * Qureg.t) Circ.t =
  box "o7_ADD_controlled" ~in_:(o7_shape_in l) ~out:(o7_shape_out l)
    (fun (ctl, x, y) ->
      let* () =
        comment_with_labels "ENTER: o7_ADD_controlled"
          [ lab Qdata.qubit ctl "ctrl"; lab (reg_shape l) x "x"; lab (reg_shape l) y "y" ]
      in
      let* s = Qinttf.add ~ctl ~x ~y () in
      let* () =
        comment_with_labels "EXIT: o7_ADD_controlled" [ lab (reg_shape l) s "s" ]
      in
      return (ctl, x, y, s))
    (ctl, x, y)

(* ------------------------------------------------------------------ *)
(* o8_MUL: boxed multiplication (Figure 3)                             *)

let pair_shape l = Qdata.pair (reg_shape l) (reg_shape l)

(** [o8_MUL ~l (x, y)]: boxed fresh p := x*y mod 2^l - 1, the shift-add /
    rotation-doubling ladder of Figure 3: controlled adds interleaved with
    [double_TF] wire rotations, intermediate sums uncomputed in the
    mirrored second half. *)
let o8_MUL ~l (x, y) : (Qureg.t * Qureg.t * Qureg.t) Circ.t =
  box "o8" ~in_:(pair_shape l)
    ~out:(Qdata.triple (reg_shape l) (reg_shape l) (reg_shape l))
    (fun (x, y) ->
      let* () =
        comment_with_labels "ENTER: o8_MUL"
          [ lab (reg_shape l) x "x"; lab (reg_shape l) y "y" ]
      in
      let* p =
        with_computed
          (let* s0 = Qinttf.init_zero ~width:l in
           let rec go i xr s =
             if i = l then return s
             else
               let* () =
                 comment_with_labels "ENTER: double_TF" [ lab (reg_shape l) xr "x" ]
               in
               let* (_, _, _, s') = o7_ADD ~l (y.(i), xr, s) in
               let xr' = Qinttf.double xr in
               let* () =
                 comment_with_labels "EXIT: double_TF" [ lab (reg_shape l) xr' "x" ]
               in
               go (i + 1) xr' s'
           in
           go 0 x s0)
          (fun p ->
            let* out = Qinttf.init_zero ~width:l in
            let* () = Qinttf.xor_into ~source:p ~target:out in
            return out)
      in
      let* () = comment_with_labels "EXIT: o8_MUL" [ lab (reg_shape l) p "p" ] in
      return (x, y, p))
    (x, y)

(* ------------------------------------------------------------------ *)
(* o4_POW17 (Figure 2)                                                 *)

(** Squaring via copy / multiply / uncopy, using the boxed multiplier. *)
let square_boxed ~l (x : Qureg.t) : Qureg.t Circ.t =
  with_computed (Qinttf.copy x)
    (fun x' ->
      let* (_, _, p) = o8_MUL ~l (x, x') in
      return p)

(** [o4_POW17 ~l x]: boxed (x, x^17): raise to the 16th power by four
    squarings, multiply by x, uncompute the squarings — the paper's
    Figure 2, verbatim structure including the comments. *)
let o4_POW17 ~l (x : Qureg.t) : (Qureg.t * Qureg.t) Circ.t =
  box "o4" ~in_:(reg_shape l) ~out:(pair_shape l)
    (fun x ->
      let* () = comment_with_label "ENTER: o4_POW17" (reg_shape l) x "x" in
      let* x, x17 =
        with_computed_fun x
          (fun x ->
            let* x2 = square_boxed ~l x in
            let* x4 = square_boxed ~l x2 in
            let* x8 = square_boxed ~l x4 in
            let* x16 = square_boxed ~l x8 in
            return (x, x2, x4, x8, x16))
          (fun (x, x2, x4, x8, x16) ->
            let* (_, _, x17) = o8_MUL ~l (x, x16) in
            return ((x, x2, x4, x8, x16), x17))
      in
      let* () =
        comment_with_labels "EXIT: o4_POW17"
          [ lab (reg_shape l) x "x"; lab (reg_shape l) x17 "x17" ]
      in
      return (x, x17))
    x

(* ------------------------------------------------------------------ *)
(* o1_ORACLE: the edge test                                            *)

(** Inject an n-bit node register into a fresh l-bit QIntTF register
    (CNOT copies of the low bits). *)
let inject ~l (v : Qureg.t) : Qureg.t Circ.t =
  let* x = Qinttf.init_zero ~width:l in
  let* () =
    iterm
      (fun i -> cnot ~control:v.(i) ~target:x.(i))
      (List.init (min l (Array.length v)) Fun.id)
  in
  return x

(** [o1_ORACLE ~p (u, w, out)]: out ^= edge(u, w) for n-bit node registers
    u, w. Boxed; cost is dominated by two POW17s and their uncomputation. *)
let o1_ORACLE ~(p : params) ((u, w, out) : Qureg.t * Qureg.t * Wire.qubit) :
    (Qureg.t * Qureg.t * Wire.qubit) Circ.t =
  let l = p.l and n = p.n in
  let node = reg_shape n in
  box "o1" ~in_:(Qdata.triple node node Qdata.qubit)
    ~out:(Qdata.triple node node Qdata.qubit)
    (fun (u, w, out) ->
      let* () =
        comment_with_labels "ENTER: o1_ORACLE"
          [ lab node u "u"; lab node w "w"; lab Qdata.qubit out "e" ]
      in
      let* () =
        with_computed
          (let* uu = inject ~l u in
           let* ww = inject ~l w in
           let* _, u17 = o4_POW17 ~l uu in
           let* _, w17 = o4_POW17 ~l ww in
           let* one = qinit_bit true in
           let* (_, _, _, s) = o7_ADD ~l (one, u17, w17) in
           return s)
          (fun s -> cnot ~control:s.(l - 1) ~target:out)
      in
      let* () = comment_with_labels "EXIT: o1_ORACLE" [ lab Qdata.qubit out "e" ] in
      return (u, w, out))
    (u, w, out)

(** Classical reference implementation of the edge predicate, for tests
    and for the classical post-processing step (§3.5). *)
let edge_sem ~(p : params) (u : int) (w : int) : bool =
  let l = p.l in
  let m = (1 lsl l) - 1 in
  let pow17 x =
    let x = x land m in
    let rec go k acc = if k = 0 then acc else go (k - 1) (acc * (x mod m) mod m) in
    if x mod m = 0 && x <> 0 then x (* all-ones fixed point *) else go 17 1 mod m
  in
  ignore pow17;
  (* bit-exact reference: mirror the circuit's operations on raw
     representations *)
  let add = Qinttf.add_sem ~l in
  let mul x y =
    (* shift-add with rotation doubling, matching the circuit *)
    let rec go i xr acc =
      if i = l then acc
      else
        let acc = if (y lsr i) land 1 = 1 then add xr acc else acc in
        go (i + 1) (Qinttf.double_sem ~l xr) acc
    in
    go 0 x 0
  in
  let square x = mul x x in
  let pow17_raw x =
    let x2 = square x in
    let x4 = square x2 in
    let x8 = square x4 in
    let x16 = square x8 in
    mul x x16
  in
  let s = add (pow17_raw u) (pow17_raw w) in
  s land (1 lsl (l - 1)) <> 0
