(** The Triangle Finding oracle (paper §5.1, §5.3.1): the graph's edge
    predicate, defined by modular arithmetic over l-bit QIntTF integers —
    edge(u, w) iff the top bit of (u'^17 ⊞ w'^17) is set (see DESIGN.md
    for the substitution note on the exact predicate). Subroutine naming
    follows the paper: each of these is a boxed subcircuit whose inverse
    appears as the starred boxes of Figures 2 and 3. *)

open Quipper
module Qureg = Quipper_arith.Qureg

type params = { l : int; n : int; r : int }
(** l: oracle integer width; the graph has 2^n nodes; Hamming tuples have
    size 2^r. *)

val default_params : params

val o7_ADD :
  l:int ->
  Wire.qubit * Qureg.t * Qureg.t ->
  (Wire.qubit * Qureg.t * Qureg.t * Qureg.t) Circ.t
(** Boxed fresh s := y ⊞ (ctl ? x : 0) — o7_ADD_controlled of Figure 3. *)

val o8_MUL : l:int -> Qureg.t * Qureg.t -> (Qureg.t * Qureg.t * Qureg.t) Circ.t
(** Boxed fresh p := x*y mod 2^l - 1 — the shift-add / double_TF ladder of
    Figure 3, intermediate sums uncomputed in the mirrored half. *)

val square_boxed : l:int -> Qureg.t -> Qureg.t Circ.t

val o4_POW17 : l:int -> Qureg.t -> (Qureg.t * Qureg.t) Circ.t
(** Boxed (x, x^17): four squarings, one multiplication, squarings
    uncomputed — Figure 2 verbatim, comments included. *)

val inject : l:int -> Qureg.t -> Qureg.t Circ.t
(** Widen an n-bit node register into a fresh l-bit QIntTF register. *)

val o1_ORACLE :
  p:params ->
  Qureg.t * Qureg.t * Wire.qubit ->
  (Qureg.t * Qureg.t * Wire.qubit) Circ.t
(** Boxed out ^= edge(u, w) on n-bit node registers; two POW17s, an add,
    a bit test, everything uncomputed. *)

val edge_sem : p:params -> int -> int -> bool
(** Bit-exact classical reference of the edge predicate. *)
