(** Simulate: "a test suite for the oracle" — the fifth of the six modules
    the paper lists for the Triangle Finding implementation (§5.2).

    Runs the oracle circuits through the classical simulator against their
    bit-exact reference semantics and reports the results; [bin/tf
    --simulate] drives it, and the alcotest suite calls the same checks.
    Returns the number of mismatches (0 = pass). *)

open Quipper
module Qureg = Quipper_arith.Qureg
module Qinttf = Quipper_arith.Qinttf
module Cs = Quipper_sim.Classical

type report = {
  checks : int;
  failures : int;
  edge_density : float; (* fraction of node pairs that are edges *)
}

let pp_report ppf r =
  Fmt.pf ppf "oracle simulation: %d checks, %d failures; edge density %.2f"
    r.checks r.failures r.edge_density

(** Exhaustively check o4_POW17 against the reference on all inputs of
    width [l] (keep l small). *)
let check_pow17 ~(l : int) : int * int =
  let shape = Qureg.shape l in
  let mul a b =
    let rec go i xr acc =
      if i = l then acc
      else
        let acc = if (b lsr i) land 1 = 1 then Qinttf.add_sem ~l xr acc else acc in
        go (i + 1) (Qinttf.double_sem ~l xr) acc
    in
    go 0 a 0
  in
  let sq a = mul a a in
  let failures = ref 0 in
  for x = 0 to (1 lsl l) - 1 do
    let _, x17 =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape shape) x (fun x ->
          Oracle.o4_POW17 ~l x)
    in
    if x17 <> mul x (sq (sq (sq (sq x)))) then incr failures
  done;
  (1 lsl l, !failures)

(** Check the edge oracle on all node pairs; also reports edge density
    (a sanity property: the pseudo-random predicate should be reasonably
    balanced, not constant). *)
let check_oracle ~(p : Oracle.params) : report =
  let node = Qureg.shape p.Oracle.n in
  let shape = Qdata.triple node node Qdata.qubit in
  let nn = 1 lsl p.Oracle.n in
  let checks = ref 0 and failures = ref 0 and edges = ref 0 in
  for u = 0 to nn - 1 do
    for w = 0 to nn - 1 do
      incr checks;
      let u', w', e =
        Cs.run_oracle ~in_:shape ~out:shape (u, w, false) (fun t ->
            Oracle.o1_ORACLE ~p t)
      in
      let expect = Oracle.edge_sem ~p u w in
      if e then incr edges;
      if u' <> u || w' <> w || e <> expect then incr failures
    done
  done;
  {
    checks = !checks;
    failures = !failures;
    edge_density = Float.of_int !edges /. Float.of_int !checks;
  }

(** The full suite, as run by [bin/tf --simulate]. *)
let run ~(p : Oracle.params) : bool =
  let pow_checks, pow_failures = check_pow17 ~l:(min p.Oracle.l 4) in
  Fmt.pr "POW17 (l=%d): %d checks, %d failures@." (min p.Oracle.l 4) pow_checks
    pow_failures;
  let r = check_oracle ~p:{ p with Oracle.l = min p.Oracle.l 5; n = min p.Oracle.n 4 } in
  Fmt.pr "%a@." pp_report r;
  pow_failures = 0 && r.failures = 0
