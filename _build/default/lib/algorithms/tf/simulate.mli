(** Simulate: "a test suite for the oracle" — the fifth of the six modules
    the paper lists for the Triangle Finding implementation (§5.2).
    Driven by [bin/tf --simulate]. *)

type report = {
  checks : int;
  failures : int;
  edge_density : float;  (** fraction of node pairs that are edges *)
}

val pp_report : Format.formatter -> report -> unit

val check_pow17 : l:int -> int * int
(** (checks, failures) of o4_POW17 against the bit-exact reference,
    exhaustively over all l-bit inputs. *)

val check_oracle : p:Oracle.params -> report

val run : p:Oracle.params -> bool
(** The full suite; true iff everything passed. *)
