(** Unique Shortest Vector (Regev [17]; paper §1, §3.5).

    The paper singles USV out as the algorithm class that "requires a more
    subtle interleaving of quantum and classical operations, whereby only
    a subset of the qubits are measured, and the quantum memory cannot be
    reset between each quantum circuit invocation ... the circuit is
    constructed on-the-fly, where later pieces depend on the value of
    former intermediate measurements" (§3.5) — i.e. *dynamic lifting*
    (§4.3.1).

    Regev's reduction runs on dihedral coset states; its quantum kernel is
    an iterative phase estimation in which each measured bit steers the
    correction rotations of the next round. We implement that kernel
    honestly — semiclassical (Kitaev-style) iterative phase estimation
    with measurement-dependent corrections via [dynamic_lift] — over a
    hidden-shift phase unitary standing in for the lattice oracle (the
    paper's own evaluation never runs a full lattice instance either; see
    DESIGN.md for the substitution note). The classical post-processing
    recovers the hidden value from the lifted bits. *)

open Quipper
open Circ

type params = {
  bits : int; (* phase bits to extract, one measurement each *)
  hidden : int; (* the hidden phase numerator: phase = hidden / 2^bits *)
}

let default_params = { bits = 6; hidden = 0b101101 land 0b111111 }

(** The phase oracle: a controlled-U^power where U |1> = e^{2 pi i
    hidden/2^bits} |1> on a target qubit held in |1> — the stand-in for
    Regev's lattice-point phase kernel. *)
let controlled_phase_power ~(p : params) ~(power : int) ~(control : Wire.qubit)
    (target : Wire.qubit) : unit Circ.t =
  let theta =
    2.0 *. Float.pi *. Float.of_int (p.hidden * power mod (1 lsl p.bits))
    /. Float.of_int (1 lsl p.bits)
  in
  rot_Z theta target |> controlled [ ctl control ]
  (* rot_Z theta = diag(e^{-i theta/2}, e^{i theta/2}): on a |1> target the
     control picks up e^{i theta/2}; double the angle to get theta. *)
  >> (rot_Z theta target |> controlled [ ctl control ])

(** One round of semiclassical phase estimation: extract bit [k] (from the
    least significant upward), applying the correction rotation determined
    by the *already-measured* lower bits — the measurements are lifted
    back into circuit generation, which is the whole point. Returns the
    measured bit. *)
let round ~(p : params) ~(target : Wire.qubit) ~(k : int) (lower_bits : bool list) :
    bool Circ.t =
  let* c = qinit_bit false in
  let* _ = hadamard c in
  (* controlled-U^(2^(bits-1-k)) *)
  let* () = controlled_phase_power ~p ~power:(1 lsl (p.bits - 1 - k)) ~control:c target in
  (* correction from previously measured bits: the semiclassical inverse
     QFT rotation, a *classically computed* angle — no quantum controls *)
  let correction =
    List.fold_left
      (fun acc (j, b) ->
        if b then acc -. (Float.pi /. Float.of_int (1 lsl (k - j))) else acc)
      0.0
      (List.mapi (fun j b -> (j, b)) lower_bits)
  in
  let* () =
    (* a single rot_Z(theta) puts relative phase theta on the free qubit c
       (unlike the controlled case above, where the fixed |1> target halves
       the effective angle) *)
    if correction <> 0.0 then rot_Z correction c else return ()
  in
  let* _ = hadamard c in
  let* m = measure_qubit c in
  let* b = dynamic_lift m in
  let* () = cdiscard m in
  return b

(** The full kernel: prepare the eigenstate, run [bits] rounds, each using
    dynamic lifting, return the recovered hidden value (round k extracts
    bit k, least significant first, in Kitaev's ordering). *)
let kernel ~(p : params) : int Circ.t =
  let* target = qinit_bit true in
  let* bits_lsb_first =
    foldm
      (fun acc k ->
        let* b = round ~p ~target ~k acc in
        return (acc @ [ b ]))
      []
      (List.init p.bits Fun.id)
  in
  let* () = qterm_bit true target in
  (* round k extracts bit k of the hidden value, least significant first *)
  let value =
    List.fold_left
      (fun acc (k, b) -> if b then acc lor (1 lsl k) else acc)
      0
      (List.mapi (fun k b -> (k, b)) bits_lsb_first)
  in
  return value

(** Resource-estimation variant that does not need an executing run
    function: same circuit shape with all corrections applied under
    classical control wires instead of lifted values. *)
let kernel_circuit ~(p : params) : unit Circ.t =
  let* target = qinit_bit true in
  let* _ =
    foldm
      (fun (lower : Wire.bit list) k ->
        let* c = qinit_bit false in
        let* _ = hadamard c in
        let* () =
          controlled_phase_power ~p ~power:(1 lsl (p.bits - 1 - k)) ~control:c target
        in
        let* () =
          iterm
            (fun (j, b) ->
              let theta = -.Float.pi /. Float.of_int (1 lsl (k - j)) in
              rot_Z theta c |> controlled [ ctl_bit b ])
            (List.mapi (fun j b -> (j, b)) lower)
        in
        let* _ = hadamard c in
        let* m = measure_qubit c in
        return (lower @ [ m ]))
      []
      (List.init p.bits Fun.id)
  in
  qterm_bit true target

let generate ?(p = default_params) () : Circuit.b =
  let b, _ = Circ.generate_unit (kernel_circuit ~p) in
  b
