(** Unique Shortest Vector (Regev; paper §1, §3.5): the algorithm class
    that requires *dynamic lifting* — "the circuit is constructed
    on-the-fly, where later pieces depend on the value of former
    intermediate measurements". The quantum kernel is semiclassical
    (Kitaev) iterative phase estimation with measurement-dependent
    correction rotations; the test suite shows it recovers hidden values
    bit-exactly. Substitution note in DESIGN.md. *)

open Quipper

type params = { bits : int; hidden : int }

val default_params : params

val controlled_phase_power :
  p:params -> power:int -> control:Wire.qubit -> Wire.qubit -> unit Circ.t

val round : p:params -> target:Wire.qubit -> k:int -> bool list -> bool Circ.t
(** One lifted round: extract bit k (least significant first), correcting
    with the already-measured lower bits. *)

val kernel : p:params -> int Circ.t
(** The full kernel under a lifting-capable run function: returns the
    recovered hidden value. *)

val kernel_circuit : p:params -> unit Circ.t
(** Resource-estimation variant: corrections under classical control
    wires instead of lifted values. *)

val generate : ?p:params -> unit -> Circuit.b
