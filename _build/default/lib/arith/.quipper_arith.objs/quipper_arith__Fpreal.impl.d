lib/arith/fpreal.ml: Array Circ Errors Float Fun Qdata Qdint Quipper Qureg Wire
