lib/arith/fpreal.mli: Circ Qdata Quipper Qureg Wire
