lib/arith/qdint.ml: Array Circ Errors Fun List Qdata Quipper Qureg Wire
