lib/arith/qdint.mli: Circ Qdata Quipper Qureg Wire
