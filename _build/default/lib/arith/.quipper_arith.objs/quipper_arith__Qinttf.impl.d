lib/arith/qinttf.ml: Array Circ Errors Fun List Quipper Qureg Wire
