lib/arith/qinttf.mli: Circ Qdata Quipper Qureg Wire
