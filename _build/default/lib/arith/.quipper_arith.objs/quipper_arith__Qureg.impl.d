lib/arith/qureg.ml: Array Circ Errors Gate List Qdata Quipper Quipper_math Wire
