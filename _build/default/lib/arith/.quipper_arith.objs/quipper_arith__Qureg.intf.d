lib/arith/qureg.mli: Circ Gate Qdata Quipper Wire
