(** FPReal: fixed-size, fixed-point quantum real numbers (paper §4.5).

    A value is an [int_bits + frac_bits]-wide register interpreted as
    raw / 2^frac_bits (unsigned; the algorithms use arguments reduced to a
    non-negative range, and subtraction wraps modulo 2^width like the
    two's-complement arithmetic it is built from). The headline operation
    is [sin] (and [cos]): the paper reports that the circuit generated for
    sin(x) over a 32+32-bit fixed-point argument has 3,273,010 gates
    (§4.6.1); we generate it the same way — polynomial evaluation built
    from quantum multipliers and constant multiplication, with every
    intermediate power uncomputed by [with_computed]. *)

open Quipper
open Circ

type t = { reg : Qureg.t; int_bits : int; frac_bits : int }

let width t = t.int_bits + t.frac_bits

let create ~int_bits ~frac_bits reg : t =
  if Qureg.width reg <> int_bits + frac_bits then
    Errors.raise_ (Shape_mismatch "Fpreal.create: width mismatch");
  { reg; int_bits; frac_bits }

let shape ~int_bits ~frac_bits :
    (float, t, Wire.bit array) Qdata.t =
  let n = int_bits + frac_bits in
  let scale = Float.of_int (1 lsl frac_bits) in
  Qdata.iso
    ~bto:(fun k -> Float.of_int k /. scale)
    ~bof:(fun f ->
      let raw = Float.to_int (Float.round (f *. scale)) in
      if n <= 62 then raw land ((1 lsl n) - 1) else max raw 0)
    ~qto:(fun reg -> { reg; int_bits; frac_bits })
    ~qof:(fun t -> t.reg)
    ~cto:Fun.id ~cof:Fun.id
    (Qureg.shape n)

let raw_of_float ~frac_bits ~w f =
  if frac_bits > 61 then Errors.invalidf "Fpreal: frac_bits beyond 61";
  let raw = Float.to_int (Float.round (f *. Float.of_int (1 lsl frac_bits))) in
  if raw < 0 then Errors.invalidf "Fpreal: negative constant %g" f;
  if w <= 62 then raw land ((1 lsl w) - 1) else raw

let to_float ~frac_bits raw = Float.of_int raw /. Float.of_int (1 lsl frac_bits)

(** Fresh register holding the constant [f] (rounded). *)
let init ~int_bits ~frac_bits (f : float) : t Circ.t =
  let n = int_bits + frac_bits in
  let+ reg = Qureg.init ~width:n (raw_of_float ~frac_bits ~w:n f) in
  { reg; int_bits; frac_bits }

let init_zero ~int_bits ~frac_bits : t Circ.t = init ~int_bits ~frac_bits 0.0

let check_same_format a b =
  if a.int_bits <> b.int_bits || a.frac_bits <> b.frac_bits then
    Errors.raise_ (Shape_mismatch "Fpreal: format mismatch")

(** y := y + x (wrapping). *)
let add_in_place ~(x : t) ~(y : t) : unit Circ.t =
  check_same_format x y;
  Qdint.add_in_place ~x:x.reg ~y:y.reg ()

let sub_in_place ~(x : t) ~(y : t) : unit Circ.t =
  check_same_format x y;
  Qdint.sub_in_place ~x:x.reg ~y:y.reg

let copy (x : t) : t Circ.t =
  let+ reg = Qureg.copy x.reg in
  { x with reg }

(** Fresh z := x * y, same format: the double-width integer product,
    shifted down by [frac_bits], intermediate product uncomputed. *)
let mult ~(x : t) ~(y : t) : t Circ.t =
  check_same_format x y;
  let n = width x in
  with_computed
    (Qdint.mult ~out_width:(2 * n) ~x:x.reg ~y:y.reg ())
    (fun p ->
      let* out = Qureg.init_zero ~width:n in
      let window = Array.sub p x.frac_bits n in
      let* () = Qureg.xor_into ~source:window ~target:out in
      return { x with reg = out })

let square (x : t) : t Circ.t =
  with_computed (copy x) (fun x' -> mult ~x ~y:x')

(** y := y + k*x for a classical constant k >= 0: shifted adds for every
    set bit of k's fixed-point representation (taken to [frac_bits]
    positions below the point and [int_bits] above). *)
let add_scaled ~(k : float) ~(x : t) ~(y : t) : unit Circ.t =
  check_same_format x y;
  if k < 0.0 then Errors.raise_ (Invalid "add_scaled: negative k; use sub_scaled");
  let n = width x in
  let kraw = raw_of_float ~frac_bits:x.frac_bits ~w:(2 * n) k in
  (* bit j of kraw represents weight 2^(j - frac_bits) *)
  let rec go j acc =
    if j >= 2 * n then acc
    else
      let acc =
        if kraw land (1 lsl j) <> 0 then
          let shift = j - x.frac_bits in
          let step =
            if shift >= 0 then Qdint.add_shifted ~shift ~x:x.reg ~y:y.reg
            else begin
              (* negative shift: add x's high slice into y, zero-extended
                 so the carry propagates into y's high bits *)
              let drop = -shift in
              if drop >= n then return ()
              else
                let xs = Array.sub x.reg drop (n - drop) in
                Qdint.add_widened ~x:xs ~y:y.reg
            end
          in
          acc >> step
        else acc
      in
      go (j + 1) acc
  in
  go 0 (return ())

(** y := y - k*x for k >= 0: the reversed [add_scaled]. *)
let sub_scaled ~(k : float) ~(x : t) ~(y : t) : unit Circ.t =
  let w = Qdata.pair (Qureg.shape (width x)) (Qureg.shape (width y)) in
  let* _ =
    reverse_simple w
      (fun (xr, yr) ->
        let* () =
          add_scaled ~k ~x:{ x with reg = xr } ~y:{ y with reg = yr }
        in
        return (xr, yr))
      (x.reg, y.reg)
  in
  return ()

(** Fresh y := sin(x), by the degree-7 Taylor polynomial
    x - x^3/6 + x^5/120 - x^7/5040 (adequate on the reduced range
    [0, pi/2] to ~1e-4): compute x^2, x^3, x^5, x^7 with quantum
    multipliers, combine with constant-scaled adds, uncompute the powers.
    This is the shape of the oracle the paper generated with
    [build_circuit] for the Linear Systems algorithm. *)
let sin (x : t) : t Circ.t =
  with_computed
    (let* x2 = square x in
     let* x3 = mult ~x:x2 ~y:x in
     let* x5 = mult ~x:x3 ~y:x2 in
     let* x7 = mult ~x:x5 ~y:x2 in
     return (x3, x5, x7))
    (fun (x3, x5, x7) ->
      let* out = init_zero ~int_bits:x.int_bits ~frac_bits:x.frac_bits in
      let* () = add_in_place ~x ~y:out in
      let* () = sub_scaled ~k:(1.0 /. 6.0) ~x:x3 ~y:out in
      let* () = add_scaled ~k:(1.0 /. 120.0) ~x:x5 ~y:out in
      let* () = sub_scaled ~k:(1.0 /. 5040.0) ~x:x7 ~y:out in
      return out)

(** Fresh y := cos(x): 1 - x^2/2 + x^4/24 - x^6/720. *)
let cos (x : t) : t Circ.t =
  with_computed
    (let* x2 = square x in
     let* x4 = square x2 in
     let* x6 = mult ~x:x4 ~y:x2 in
     return (x2, x4, x6))
    (fun (x2, x4, x6) ->
      let* out = init ~int_bits:x.int_bits ~frac_bits:x.frac_bits 1.0 in
      let* () = sub_scaled ~k:0.5 ~x:x2 ~y:out in
      let* () = add_scaled ~k:(1.0 /. 24.0) ~x:x4 ~y:out in
      let* () = sub_scaled ~k:(1.0 /. 720.0) ~x:x6 ~y:out in
      return out)
