(** QDInt: fixed-size quantum integers (paper §4.5), little-endian, with
    arithmetic modulo 2^n.

    The in-place adder is the Cuccaro–Draper–Kutin–Moulton (CDKM) ripple
    adder: one ancilla, 2n MAJ/UMA blocks, optional carry-out. On top of it
    we build subtraction (the reversed adder — reversal is free in this
    circuit model), constant addition (borrowing a temporarily-initialised
    register, assertively terminated afterwards: a nice exercise of §4.2.2),
    comparison (borrow chain, uncomputed with [with_computed]), and
    shift-add multiplication. Every operation is validated against plain
    integer arithmetic by the classical simulator in the test suite. *)

open Quipper
open Circ

type t = Qureg.t

let width = Qureg.width
let shape = Qureg.shape
let init = Qureg.init
let init_zero = Qureg.init_zero
let copy = Qureg.copy
let xor_into = Qureg.xor_into

(* MAJ and UMA of the CDKM adder *)
let maj x y z : unit Circ.t =
  let* () = cnot ~control:z ~target:y in
  let* () = cnot ~control:z ~target:x in
  toffoli ~c1:x ~c2:y ~target:z

let uma x y z : unit Circ.t =
  let* () = toffoli ~c1:x ~c2:y ~target:z in
  let* () = cnot ~control:z ~target:x in
  cnot ~control:x ~target:y

(** [add_in_place ?carry_out ~x ~y]: y := x + y (mod 2^n), x unchanged.
    If [carry_out] is given, it is XORed with the carry out of the top bit
    (so on a |0> ancilla it ends up holding the overflow). *)
let add_in_place ?carry_out ~(x : t) ~(y : t) () : unit Circ.t =
  let n = width x in
  if width y <> n then Errors.raise_ (Shape_mismatch "add: width mismatch");
  if n = 0 then return ()
  else
    with_ancilla (fun c ->
        (* carry holder before bit i: c, then x.(0), x.(1), ... *)
        let holder i = if i = 0 then c else x.(i - 1) in
        let* () =
          iterm (fun i -> maj (holder i) y.(i) x.(i)) (List.init n Fun.id)
        in
        let* () =
          match carry_out with
          | Some z -> cnot ~control:x.(n - 1) ~target:z
          | None -> return ()
        in
        iterm
          (fun i -> uma (holder i) y.(i) x.(i))
          (List.rev (List.init n Fun.id)))

(** [sub_in_place ~x ~y]: y := y - x (mod 2^n) — the reversed adder. *)
let sub_in_place ~(x : t) ~(y : t) : unit Circ.t =
  let w = Qdata.pair (shape (width x)) (shape (width y)) in
  let* _ =
    reverse_simple w
      (fun (x, y) ->
        let* () = add_in_place ~x ~y () in
        return (x, y))
      (x, y)
  in
  return ()

(** [add_const k y]: y := y + k (mod 2^n). Implements the paper's trick of
    materialising the constant in an assertively-scoped register. *)
let add_const (k : int) (y : t) : unit Circ.t =
  let n = width y in
  let k = if n <= 62 then k land ((1 lsl n) - 1) else k in
  if k = 0 then return ()
  else
    let* t = init ~width:n k in
    let* () = add_in_place ~x:t ~y () in
    Qureg.term k t

(** y := y - k: the reversed constant adder (width-safe; no complement
    arithmetic in native ints). *)
let sub_const (k : int) (y : t) : unit Circ.t =
  let n = width y in
  let* _ =
    reverse_simple (shape n)
      (fun y ->
        let* () = add_const k y in
        return y)
      y
  in
  return ()

let increment (y : t) : unit Circ.t = add_const 1 y
let decrement (y : t) : unit Circ.t = sub_const 1 y

(** [add_shifted ~shift ~x ~y]: y := y + x * 2^shift (mod 2^width-y).
    Adds x's low bits into y's high slice — the partial-product step of the
    multiplier. *)
let rec add_shifted ~shift ~(x : t) ~(y : t) : unit Circ.t =
  let ny = width y in
  if shift >= ny then return ()
  else
    let xs = Array.sub x 0 (min (width x) (ny - shift)) in
    let ys = Array.sub y shift (ny - shift) in
    add_widened ~x:xs ~y:ys

(** [add_widened ~x ~y]: y := y + x where x may be narrower than y — x is
    zero-extended through temporarily-initialised (and assertively
    terminated) high bits, so carries propagate into all of y. *)
and add_widened ~(x : t) ~(y : t) : unit Circ.t =
  let nx = width x and ny = width y in
  if nx > ny then Errors.raise_ (Shape_mismatch "add_widened: x wider than y")
  else if nx = ny then add_in_place ~x ~y ()
  else
    with_ancilla_init
      (List.init (ny - nx) (fun _ -> false))
      (fun pad ->
        let xe = Array.append x (Array.of_list pad) in
        add_in_place ~x:xe ~y ())

(** [mult ~x ~y]: fresh register p := x * y (mod 2^width), by controlled
    shifted adds — width is [width y] unless [out_width] is given (use
    [2*n] for an exact product). *)
let mult ?out_width ~(x : t) ~(y : t) () : t Circ.t =
  let n = width y in
  let ow = match out_width with Some w -> w | None -> n in
  let* p = init_zero ~width:ow in
  let* () =
    iterm
      (fun i ->
        add_shifted ~shift:i ~x ~y:p |> controlled [ ctl y.(i) ])
      (List.init n Fun.id)
  in
  return p

(** [square x]: fresh register x*x (mod 2^width) — copy, multiply,
    uncompute the copy (no-cloning forbids [mult x x] directly). *)
let square ?out_width (x : t) : t Circ.t =
  with_computed (copy x) (fun x' -> mult ?out_width ~x ~y:x' ())

(** [less_than ~x ~y ~target]: target ^= (x < y), unsigned. Borrow chain
    b(i+1) = MAJ(not x_i, y_i, b_i), computed into fresh ancillas and
    uncomputed by [with_computed]. *)
let less_than ~(x : t) ~(y : t) ~(target : Wire.qubit) : unit Circ.t =
  let n = width x in
  if width y <> n then Errors.raise_ (Shape_mismatch "less_than: width mismatch");
  let borrow_step b i =
    (* fresh b' = majority(not x_i, y_i, b) *)
    let* b' = qinit_bit false in
    let* () = qnot_ b' |> controlled [ ctl_neg x.(i); ctl y.(i) ] in
    let* () = qnot_ b' |> controlled [ ctl_neg x.(i); ctl b ] in
    let* () = qnot_ b' |> controlled [ ctl y.(i); ctl b ] in
    return b'
  in
  with_computed
    (let* b0 = qinit_bit false in
     foldm borrow_step b0 (List.init n Fun.id))
    (fun bn -> cnot ~control:bn ~target)

(** [equals ~x ~y ~target]: target ^= (x = y). *)
let equals ~(x : t) ~(y : t) ~(target : Wire.qubit) : unit Circ.t =
  let n = width x in
  if width y <> n then Errors.raise_ (Shape_mismatch "equals: width mismatch");
  with_computed
    (mapm
       (fun i ->
         let* e = qinit_bit true in
         let* () = cnot ~control:x.(i) ~target:e in
         let* () = cnot ~control:y.(i) ~target:e in
         return e)
       (List.init n Fun.id))
    (fun es -> qnot_ target |> controlled (List.map ctl es))

(** [equals_const k ~x ~target]: target ^= (x = k) — one multi-controlled
    not with a sign pattern (§3.2's "quantum test"). *)
let equals_const (k : int) ~(x : t) ~(target : Wire.qubit) : unit Circ.t =
  qnot_ target |> controlled (Qureg.const_controls k x)
