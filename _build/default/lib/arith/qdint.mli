(** QDInt: fixed-size quantum integers (paper §4.5), little-endian,
    arithmetic modulo 2^n. Every operation is validated against integer
    arithmetic by the classical simulator in the test suite. *)

open Quipper

type t = Qureg.t

val width : t -> int
val shape : int -> (int, t, Wire.bit array) Qdata.t
val init : width:int -> int -> t Circ.t
val init_zero : width:int -> t Circ.t
val copy : t -> t Circ.t
val xor_into : source:t -> target:t -> unit Circ.t

val add_in_place : ?carry_out:Wire.qubit -> x:t -> y:t -> unit -> unit Circ.t
(** y := x + y (CDKM ripple adder, one ancilla); [carry_out] receives the
    overflow XORed in. *)

val sub_in_place : x:t -> y:t -> unit Circ.t
(** y := y - x: the reversed adder — reversal is free in this model. *)

val add_const : int -> t -> unit Circ.t
(** The paper's trick: materialise the constant in an assertively-scoped
    register (§4.2.2). *)

val sub_const : int -> t -> unit Circ.t
val increment : t -> unit Circ.t
val decrement : t -> unit Circ.t

val add_shifted : shift:int -> x:t -> y:t -> unit Circ.t
(** y := y + x * 2^shift — the partial-product step. *)

val add_widened : x:t -> y:t -> unit Circ.t
(** y := y + x with x narrower than y, zero-extended through scoped
    ancillas so carries propagate. *)

val mult : ?out_width:int -> x:t -> y:t -> unit -> t Circ.t
(** Fresh p := x*y by controlled shifted adds; [out_width] defaults to
    [width y] (use 2n for the exact product). *)

val square : ?out_width:int -> t -> t Circ.t
(** Copy, multiply, uncompute the copy (no-cloning forbids [mult x x]). *)

val less_than : x:t -> y:t -> target:Wire.qubit -> unit Circ.t
(** target ^= (x < y): borrow chain under [with_computed]. *)

val equals : x:t -> y:t -> target:Wire.qubit -> unit Circ.t
val equals_const : int -> x:t -> target:Wire.qubit -> unit Circ.t
