(** QIntTF: the Triangle Finding oracle's integer type — l-bit registers
    "with arithmetic taken modulo 2^l - 1 (not 2^l)" (paper §5.3.1).

    Working modulo 2^l - 1 has two structural consequences that shape the
    whole oracle, both visible in the paper's figures:

    - Doubling is a *cyclic bit rotation* (2^l = 1 mod 2^l - 1), i.e. a
      pure relabelling of wires with no gates — the [double_TF] boxes of
      Figure 3, whose ENTER/EXIT labels show permuted wire names.
    - Addition is performed *out of place* with an end-around carry
      ([o7_ADD] produces a fresh register s and keeps x and y), because the
      in-place map y -> x ⊞ y is not injective on raw bit patterns (zero
      has two representations: 0...0 and 1...1). Keeping the inputs makes
      every internal ancilla — carry chain, end-around flag, increment
      prefix chain — locally recomputable, so each adder block cleans up
      after itself exactly as in Figure 3; the chain of intermediate sums a
      multiplication produces is uncomputed by the enclosing
      [with_computed] (the mirrored second half of Figure 3).

    The controlled adder threads its control only through the gates that
    write the output, never through the carry bookkeeping (which is
    self-inverse around them) — this is why gate counts show at most 2
    controls, matching the paper's E1 breakdown. *)

open Quipper
open Circ

type t = Qureg.t

let width = Qureg.width
let shape = Qureg.shape
let init = Qureg.init
let init_zero = Qureg.init_zero
let copy = Qureg.copy
let xor_into = Qureg.xor_into

(** Classical reference semantics: x ⊞ y modulo 2^l - 1 on raw
    representations (end-around carry; all-ones is the second zero). *)
let add_sem ~l x y =
  let s = x + y in
  if s >= 1 lsl l then s - (1 lsl l) + 1 else s

let double_sem ~l x =
  (* rotate-left semantics: all-ones is a fixed point *)
  let m = (1 lsl l) - 1 in
  if x = m then m else ((x lsl 1) lor (x lsr (l - 1))) land m

let to_residue ~l x = x mod ((1 lsl l) - 1)

(** [double x]: multiply by two modulo 2^l - 1 — a rotation of the wire
    assignment; emits no gates. *)
let double (x : t) : t = Qureg.rotate_left x 1

(* majority of three qubits into a fresh ancilla: 3 Toffolis *)
let maj_into a b c : Wire.qubit Circ.t =
  let* m = qinit_bit false in
  let* () = qnot_ m |> controlled [ ctl a; ctl b ] in
  let* () = qnot_ m |> controlled [ ctl a; ctl c ] in
  let* () = qnot_ m |> controlled [ ctl b; ctl c ] in
  return m

let unmaj m a b c : unit Circ.t =
  let* () = qnot_ m |> controlled [ ctl a; ctl b ] in
  let* () = qnot_ m |> controlled [ ctl a; ctl c ] in
  let* () = qnot_ m |> controlled [ ctl b; ctl c ] in
  qterm_bit false m

(** [add ?ctl ~x ~y]: fresh register s := y ⊞ (x if ctl else 0); x and y
    are unchanged, every ancilla is terminated inside the block. This is
    the o7_ADD / o7_ADD_controlled circuit of Figure 3. *)
let add ?ctl ~(x : t) ~(y : t) () : t Circ.t =
  let l = width x in
  if width y <> l then Errors.raise_ (Shape_mismatch "Qinttf.add: width mismatch");
  let controlled_writes (m : unit Circ.t) =
    match ctl with None -> m | Some c -> with_controls [ Circ.ctl c ] m
  in
  (* 1. carry chain: carries.(i) = carry into bit i+1 of x + y *)
  let* carries =
    let rec go i prev acc =
      if i = l then return (List.rev acc)
      else
        let* c =
          match prev with
          | None ->
              (* carry out of bit 0: x_0 AND y_0 *)
              let* c = qinit_bit false in
              let* () = qnot_ c |> controlled [ Circ.ctl x.(0); Circ.ctl y.(0) ] in
              return c
          | Some p -> maj_into x.(i) y.(i) p
        in
        go (i + 1) (Some c) (c :: acc)
    in
    go 0 None []
  in
  let carries = Array.of_list carries in
  (* 2. output register: s_i = y_i XOR ctl*(x_i XOR carry_in_i) *)
  let* s = init_zero ~width:l in
  let* () =
    iterm
      (fun i ->
        let* () = cnot ~control:y.(i) ~target:s.(i) in
        let* () = controlled_writes (cnot ~control:x.(i) ~target:s.(i)) in
        if i > 0 then
          controlled_writes (cnot ~control:carries.(i - 1) ~target:s.(i))
        else return ())
      (List.init l Fun.id)
  in
  (* 3. end-around carry: d = ctl AND carry-out; s := s + d *)
  let* d = qinit_bit false in
  let set_d =
    match ctl with
    | None -> cnot ~control:carries.(l - 1) ~target:d
    | Some c -> qnot_ d |> controlled [ Circ.ctl c; Circ.ctl carries.(l - 1) ]
  in
  let* () = set_d in
  (* controlled increment of s by d: prefix-AND chain over the (current)
     bits of s, flipped top-down with interleaved uncomputation *)
  let* () =
    if l = 1 then cnot ~control:d ~target:s.(0)
    else begin
      (* a.(i) = s_0 AND ... AND s_i, for i = 0..l-2 *)
      let* prefixes =
        let rec go i prev acc =
          if i > l - 2 then return (List.rev acc)
          else
            let* a = qinit_bit false in
            let* () =
              match prev with
              | None -> cnot ~control:s.(0) ~target:a
              | Some p -> qnot_ a |> controlled [ Circ.ctl p; Circ.ctl s.(i) ]
            in
            go (i + 1) (Some a) (a :: acc)
        in
        go 0 None []
      in
      let prefixes = Array.of_list prefixes in
      (* flip s from the top down, uncomputing each prefix right after its
         use (lower bits of s are still unflipped at that point) *)
      let rec down i =
        if i < 1 then return ()
        else
          let a = prefixes.(i - 1) in
          let* () = qnot_ s.(i) |> controlled [ Circ.ctl d; Circ.ctl a ] in
          let* () =
            if i - 1 = 0 then cnot ~control:s.(0) ~target:a
            else qnot_ a |> controlled [ Circ.ctl prefixes.(i - 2); Circ.ctl s.(i - 1) ]
          in
          let* () = qterm_bit false a in
          down (i - 1)
      in
      let* () = down (l - 1) in
      cnot ~control:d ~target:s.(0)
    end
  in
  (* 4. uncompute d (carries are untouched by the increment) *)
  let* () = set_d in
  let* () = qterm_bit false d in
  (* 5. uncompute the carry chain in reverse, from x and y *)
  let* () =
    let rec back i =
      if i < 0 then return ()
      else
        let* () =
          if i = 0 then
            let* () = qnot_ carries.(0) |> controlled [ Circ.ctl x.(0); Circ.ctl y.(0) ] in
            qterm_bit false carries.(0)
          else unmaj carries.(i) x.(i) y.(i) carries.(i - 1)
        in
        back (i - 1)
    in
    back (l - 1)
  in
  return s

(** [mul ~x ~y]: fresh register p := x * y (mod 2^l - 1) by shift-and-add:
    the chain s_{i+1} = s_i ⊞ (y_i ? x*2^i : 0) with rotation doubling,
    its intermediate sums kept and then uncomputed by [with_computed] —
    the exact structure of Figure 3 (o8_MUL). After l doublings the
    rotation has come full circle, so x's wires end in their original
    order. *)
let mul ~(x : t) ~(y : t) () : t Circ.t =
  let l = width x in
  if width y <> l then Errors.raise_ (Shape_mismatch "Qinttf.mul: width mismatch");
  with_computed
    (let* s0 = init_zero ~width:l in
     let rec go i xr s =
       if i = l then return s
       else
         let* s' = add ~ctl:y.(i) ~x:xr ~y:s () in
         go (i + 1) (double xr) s'
     in
     go 0 x s0)
    (fun p ->
      let* out = init_zero ~width:l in
      let* () = xor_into ~source:p ~target:out in
      return out)

(** [square x]: x^2 mod 2^l - 1: copy, multiply, uncompute the copy. *)
let square (x : t) : t Circ.t =
  with_computed (copy x) (fun x' -> mul ~x ~y:x' ())

(** [equals_zero ~x ~target]: target ^= (x represents zero), accounting for
    both representations (all zeros and all ones). *)
let equals_zero ~(x : t) ~(target : Wire.qubit) : unit Circ.t =
  let* () = qnot_ target |> controlled (List.map ctl_neg (Qureg.to_list x)) in
  qnot_ target |> controlled (List.map ctl (Qureg.to_list x))

(** [equals ~x ~y ~target]: target ^= (x = y as residues mod 2^l - 1):
    bitwise equality or difference representing zero. For oracle use we
    test bitwise equality of x ⊞ (-y)... here: bitwise equal, or one is
    all-zeros and the other all-ones. *)
let equals ~(x : t) ~(y : t) ~(target : Wire.qubit) : unit Circ.t =
  let l = width x in
  with_computed
    (mapm
       (fun i ->
         let* e = qinit_bit true in
         let* () = cnot ~control:x.(i) ~target:e in
         let* () = cnot ~control:y.(i) ~target:e in
         return e)
       (List.init l Fun.id))
    (fun es ->
      let* () = qnot_ target |> controlled (List.map ctl es) in
      (* the two-zeros case: x all zero and y all ones *)
      let* () =
        qnot_ target
        |> controlled
             (List.map ctl_neg (Qureg.to_list x) @ List.map ctl (Qureg.to_list y))
      in
      qnot_ target
      |> controlled
           (List.map ctl (Qureg.to_list x) @ List.map ctl_neg (Qureg.to_list y)))
