(** QIntTF: the Triangle Finding oracle's integer type — l-bit registers
    "with arithmetic taken modulo 2^l - 1 (not 2^l)" (paper §5.3.1).

    Doubling is a cyclic wire rotation (no gates — Figure 3's [double_TF]
    boxes); addition is performed out of place with an end-around carry
    ([o7_ADD] produces a fresh register), because the in-place map is not
    injective on raw bit patterns: zero has two representations (all-0 and
    all-1). Each adder block cleans its own ancillas, exactly as in
    Figure 3; the intermediate sums of a multiplication are uncomputed by
    the enclosing [with_computed] (the figure's mirrored second half). *)

open Quipper

type t = Qureg.t

val width : t -> int
val shape : int -> (int, t, Wire.bit array) Qdata.t
val init : width:int -> int -> t Circ.t
val init_zero : width:int -> t Circ.t
val copy : t -> t Circ.t
val xor_into : source:t -> target:t -> unit Circ.t

val add_sem : l:int -> int -> int -> int
(** Classical reference semantics of x ⊞ y on raw representations. *)

val double_sem : l:int -> int -> int
val to_residue : l:int -> int -> int

val double : t -> t
(** Multiply by two modulo 2^l - 1: a rotation of the wire assignment,
    emitting no gates. *)

val add : ?ctl:Wire.qubit -> x:t -> y:t -> unit -> t Circ.t
(** Fresh s := y ⊞ (x if ctl else 0); x and y unchanged, every ancilla
    terminated inside the block. The control threads only through the
    output writes, never the carry bookkeeping — which is why gate counts
    show at most 2 controls (the paper's E1 breakdown). *)

val mul : x:t -> y:t -> unit -> t Circ.t
(** Fresh p := x*y mod 2^l - 1: the shift-add / rotation-doubling ladder
    of Figure 3. *)

val square : t -> t Circ.t

val equals_zero : x:t -> target:Wire.qubit -> unit Circ.t
(** Accounts for both representations of zero. *)

val equals : x:t -> y:t -> target:Wire.qubit -> unit Circ.t
