(** Quantum registers: little-endian arrays of qubits.

    The common substrate of the arithmetic types ([Qdint], [Qinttf],
    [Fpreal]): allocation, copying, bitwise operations, and the shape
    witness connecting a register to its parameter version (an [int]) and
    its classical version (an array of bits) — the [QShape IntM QDInt CInt]
    instance of the paper (§4.5). *)

open Quipper
open Circ

type t = Wire.qubit array (* index 0 = least significant bit *)

let width (r : t) = Array.length r

let to_list (r : t) = Array.to_list r
let of_list l : t = Array.of_list l

(** Shape witness for a [width]-bit register, relating [int] parameters,
    qubit registers, and classical bit registers. *)
let shape width : (int, t, Wire.bit array) Qdata.t =
  Qdata.iso
    ~bto:(fun bools -> Quipper_math.Bitvec.to_int (Quipper_math.Bitvec.of_list bools))
    ~bof:(fun n -> Quipper_math.Bitvec.to_list (Quipper_math.Bitvec.of_int ~width n))
    ~qto:Array.of_list ~qof:Array.to_list ~cto:Array.of_list ~cof:Array.to_list
    (Qdata.list_of width Qdata.qubit)

(** Initialise a fresh register holding the constant [v]. *)
let init ~width (v : int) : t Circ.t =
  let+ qs =
    mapm qinit_bit (Quipper_math.Bitvec.to_list (Quipper_math.Bitvec.of_int ~width v))
  in
  Array.of_list qs

let init_zero ~width : t Circ.t = init ~width 0

(** Assertively terminate a register holding the constant [v]. *)
let term (v : int) (r : t) : unit Circ.t =
  iterm
    (fun (b, q) -> qterm_bit b q)
    (List.combine
       (Quipper_math.Bitvec.to_list (Quipper_math.Bitvec.of_int ~width:(width r) v))
       (to_list r))

(** [xor_into ~source ~target]: target ^= source, bitwise CNOTs. *)
let xor_into ~(source : t) ~(target : t) : unit Circ.t =
  if width source <> width target then
    Errors.raise_ (Shape_mismatch "xor_into: width mismatch");
  iterm
    (fun (s, d) -> cnot ~control:s ~target:d)
    (List.combine (to_list source) (to_list target))

(** Fresh CNOT-copy of a register (valid for computational-basis data, the
    standard idiom inside classical oracles). *)
let copy (r : t) : t Circ.t =
  let* c = init_zero ~width:(width r) in
  let* () = xor_into ~source:r ~target:c in
  return c

(** [xor_const k r]: r ^= k for a classical constant k (X gates on the
    1-bits). *)
let xor_const (k : int) (r : t) : unit Circ.t =
  iterm
    (fun (b, q) -> if b then qnot_ q else return ())
    (List.combine
       (Quipper_math.Bitvec.to_list (Quipper_math.Bitvec.of_int ~width:(width r) k))
       (to_list r))

(** Controls asserting that register [r] holds the constant [k]: positive
    control on 1-bits, negative on 0-bits (the "quantum test" pattern used
    by qRAM addressing). *)
let const_controls (k : int) (r : t) : Gate.control list =
  List.map2
    (fun b q -> if b then ctl q else ctl_neg q)
    (Quipper_math.Bitvec.to_list (Quipper_math.Bitvec.of_int ~width:(width r) k))
    (to_list r)

(** Swap two registers wire-by-wire (the a14_SWAP of §5.3.2). *)
let swap_registers (a : t) (b : t) : unit Circ.t =
  if width a <> width b then Errors.raise_ (Shape_mismatch "swap: width mismatch");
  iterm (fun (x, y) -> swap x y) (List.combine (to_list a) (to_list b))

(** Rotate the register's bit assignment left by [k] positions: a pure
    relabelling, no gates — multiplying by 2^k when arithmetic is taken
    modulo 2^l - 1 (see {!Qinttf.double}). *)
let rotate_left (r : t) k : t =
  let l = width r in
  if l = 0 then r
  else
    let k = ((k mod l) + l) mod l in
    Array.init l (fun i -> r.(((i - k) mod l + l) mod l))

(** Apply [hadamard] to every qubit: uniform superposition over all values. *)
let hadamard_all (r : t) : unit Circ.t = iterm hadamard_ (to_list r)
