(** Quantum registers: little-endian arrays of qubits — the common
    substrate of the arithmetic types ({!Qdint}, {!Qinttf}, {!Fpreal}). *)

open Quipper

type t = Wire.qubit array
(** Index 0 is the least-significant bit. *)

val width : t -> int
val to_list : t -> Wire.qubit list
val of_list : Wire.qubit list -> t

val shape : int -> (int, t, Wire.bit array) Qdata.t
(** The witness relating [int] parameters, qubit registers and classical
    registers — the paper's [QShape IntM QDInt CInt] instance (§4.5). *)

val init : width:int -> int -> t Circ.t
val init_zero : width:int -> t Circ.t

val term : int -> t -> unit Circ.t
(** Assertively terminate a register holding a known constant. *)

val xor_into : source:t -> target:t -> unit Circ.t
val copy : t -> t Circ.t
val xor_const : int -> t -> unit Circ.t

val const_controls : int -> t -> Gate.control list
(** Signed controls asserting the register holds a constant — the
    "quantum test" of §3.2 and the addressing primitive of the qRAM. *)

val swap_registers : t -> t -> unit Circ.t

val rotate_left : t -> int -> t
(** Pure relabelling, no gates: multiplication by 2^k modulo
    2^width - 1 (see {!Qinttf.double}). *)

val hadamard_all : t -> unit Circ.t
