lib/core/allocate.ml: Array Circuit Errors Gate Gatecount Hashtbl Int List Set Wire
