lib/core/allocate.mli: Circuit
