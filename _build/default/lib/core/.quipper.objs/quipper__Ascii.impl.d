lib/core/ascii.ml: Array Bool Buffer Circuit Gate Hashtbl List Printf String Wire
