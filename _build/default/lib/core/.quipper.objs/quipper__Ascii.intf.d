lib/core/ascii.mli: Circuit
