lib/core/circ.ml: Array Circuit Errors Float Fmt Fun Gate Hashtbl List Qdata Vec Wire
