lib/core/circ.mli: Circuit Gate Qdata Wire
