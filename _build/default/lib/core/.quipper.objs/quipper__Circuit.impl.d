lib/core/circuit.ml: Array Errors Fmt Gate Hashtbl List Map String Vec Wire
