lib/core/circuit.mli: Gate Map Wire
