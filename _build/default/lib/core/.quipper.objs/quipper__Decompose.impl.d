lib/core/decompose.ml: Circuit Gate List Transform Wire
