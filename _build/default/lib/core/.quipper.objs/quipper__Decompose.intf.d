lib/core/decompose.mli: Circuit Transform
