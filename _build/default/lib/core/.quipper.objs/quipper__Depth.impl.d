lib/core/depth.ml: Array Circuit Gate Gatecount Hashtbl List Wire
