lib/core/depth.mli: Circuit
