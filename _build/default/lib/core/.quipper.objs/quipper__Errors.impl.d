lib/core/errors.ml: Fmt Printexc Wire
