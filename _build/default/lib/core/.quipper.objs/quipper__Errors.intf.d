lib/core/errors.mli: Format Wire
