lib/core/gate.ml: Bool Errors Fmt List Wire
