lib/core/gate.mli: Format Wire
