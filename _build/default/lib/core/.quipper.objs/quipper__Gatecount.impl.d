lib/core/gatecount.ml: Array Circuit Fmt Gate Hashtbl List Map Wire
