lib/core/gatecount.mli: Circuit Format Gate Map
