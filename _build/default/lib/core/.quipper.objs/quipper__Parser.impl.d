lib/core/parser.ml: Array Buffer Circuit Errors Fmt Fun Gate List String Wire
