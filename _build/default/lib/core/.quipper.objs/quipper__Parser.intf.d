lib/core/parser.mli: Circuit Gate Wire
