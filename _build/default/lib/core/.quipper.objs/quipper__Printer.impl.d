lib/core/printer.ml: Array Circuit Fmt Gate List Wire
