lib/core/printer.mli: Circuit Format Wire
