lib/core/qdata.ml: Array Errors Fmt List Wire
