lib/core/qdata.mli: Wire
