lib/core/reverse.ml: Array Circuit Gate
