lib/core/reverse.mli: Circuit
