lib/core/transform.ml: Array Circuit Gate List Vec Wire
