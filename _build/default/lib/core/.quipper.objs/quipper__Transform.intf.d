lib/core/transform.mli: Circuit Gate Wire
