lib/core/wire.ml: Fmt
