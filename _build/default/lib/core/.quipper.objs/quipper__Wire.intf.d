lib/core/wire.mli: Format
