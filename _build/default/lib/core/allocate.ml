(** Ancilla-pool wire allocation.

    Paper §4.2.1: "The problem of which particular ancillas to use from a
    'pool' of ancillas is analogous to the classical problem of register
    allocation, and is best left to a late compiler phase that is aware of
    the layout of physical qubits." This module is that late phase, for
    the abstract layout where any freed wire may be reused: it renumbers
    the wires of a circuit so that ids freed by (assertive) terminations
    and discards are handed back out to later initialisations — the lowest
    free id first, deterministically.

    After compaction, a flat circuit's largest wire id + 1 equals its peak
    concurrent width ({!Gatecount.peak_wires}), i.e. the id space {e is}
    the qubit register file. Arities keep their order, so compaction
    preserves circuit semantics positionally (verified by the test
    suite). *)

module Ints = Set.Make (Int)

type pool = {
  mutable map : (Wire.t * Wire.t) list; (* old -> new, assoc *)
  tbl : (Wire.t, Wire.t) Hashtbl.t;
  mutable free : Ints.t;
  mutable next : int;
  mutable peak : int;
}

let new_pool () =
  { map = []; tbl = Hashtbl.create 64; free = Ints.empty; next = 0; peak = 0 }

let lookup p w =
  match Hashtbl.find_opt p.tbl w with
  | Some w' -> w'
  | None -> Errors.raise_ (Dead_wire w)

let allocate p w =
  let w' =
    match Ints.min_elt_opt p.free with
    | Some f ->
        p.free <- Ints.remove f p.free;
        f
    | None ->
        let f = p.next in
        p.next <- p.next + 1;
        if p.next > p.peak then p.peak <- p.next;
        f
  in
  Hashtbl.replace p.tbl w w';
  w'

let release p w =
  let w' = lookup p w in
  Hashtbl.remove p.tbl w;
  p.free <- Ints.add w' p.free

(** Compact one circuit. Requires well-formedness ([Circuit.validate]). *)
let compact_circuit ?(subs : Circuit.subroutine Circuit.Namespace.t = Circuit.Namespace.empty)
    (c : Circuit.t) : Circuit.t =
  let p = new_pool () in
  let inputs =
    List.map
      (fun (e : Wire.endpoint) -> { e with Wire.wire = allocate p e.Wire.wire })
      c.Circuit.inputs
  in
  let rename w = lookup p w in
  let gates =
    Array.map
      (fun g ->
        match g with
        | Gate.Init i ->
            Gate.Init { i with wire = allocate p i.wire }
        | Gate.Cgate cg ->
            let ins = List.map rename cg.ins in
            Gate.Cgate { cg with ins; out = allocate p cg.out }
        | Gate.Term t ->
            let w' = lookup p t.wire in
            release p t.wire;
            Gate.Term { t with wire = w' }
        | Gate.Discard d ->
            let w' = lookup p d.wire in
            release p d.wire;
            Gate.Discard { d with wire = w' }
        | Gate.Subroutine s ->
            let inputs = List.map rename s.inputs in
            (* inputs not among outputs die; outputs not among inputs are
               born at the call *)
            List.iter
              (fun w -> if not (List.mem w s.outputs) then release p w)
              s.inputs;
            let outputs =
              List.map
                (fun w ->
                  if List.mem w s.inputs then lookup p w else allocate p w)
                s.outputs
            in
            (* account for the callee's internal peak *)
            (match Circuit.Namespace.find_opt s.name subs with
            | Some sub ->
                let extra =
                  Gatecount.peak_wires
                    { Circuit.main = sub.Circuit.circ;
                      subs; sub_order = [] }
                  - List.length s.inputs
                in
                let live = Hashtbl.length p.tbl in
                if live + extra > p.peak then p.peak <- live + extra
            | None -> ());
            Gate.Subroutine { s with inputs; outputs;
                              controls = List.map (Gate.rename_control rename) s.controls }
        | g -> Gate.rename rename g)
      c.Circuit.gates
  in
  let outputs =
    List.map
      (fun (e : Wire.endpoint) -> { e with Wire.wire = rename e.Wire.wire })
      c.Circuit.outputs
  in
  { Circuit.inputs; gates; outputs }

(** Compact a boxed circuit: main and every subroutine body. Call gates
    bind positionally, so renaming a body's internal wires is safe. *)
let compact (b : Circuit.b) : Circuit.b =
  {
    b with
    Circuit.main = compact_circuit ~subs:b.Circuit.subs b.Circuit.main;
    subs =
      Circuit.Namespace.map
        (fun (s : Circuit.subroutine) ->
          { s with Circuit.circ = compact_circuit ~subs:b.Circuit.subs s.Circuit.circ })
        b.Circuit.subs;
  }

(** Largest wire id + 1 after compaction — the physical register count a
    flat circuit needs. *)
let width_of (c : Circuit.t) : int =
  let m = ref 0 in
  let bump w = if w + 1 > !m then m := w + 1 in
  List.iter (fun (e : Wire.endpoint) -> bump e.Wire.wire) c.Circuit.inputs;
  Array.iter
    (fun g -> List.iter (fun (e : Wire.endpoint) -> bump e.Wire.wire) (Gate.wires g))
    c.Circuit.gates;
  !m
