(** Ancilla-pool wire allocation — the "late compiler phase" of paper
    §4.2.1, which likens picking ancillas from a pool to register
    allocation: renumber wires so ids freed by terminations and discards
    are reused by later initialisations (lowest-free-first,
    deterministic). Arities keep their order, so compaction preserves
    semantics positionally. After compaction, a flat circuit's largest
    wire id + 1 equals its peak concurrent width. *)

val compact_circuit :
  ?subs:Circuit.subroutine Circuit.Namespace.t -> Circuit.t -> Circuit.t

val compact : Circuit.b -> Circuit.b

val width_of : Circuit.t -> int
(** Largest wire id + 1. *)
