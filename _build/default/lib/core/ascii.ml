(** ASCII-art circuit rendering.

    The paper renders circuits to PostScript/PDF; in a terminal-only world
    we draw the same diagrams in ASCII: one row per wire (quantum wires are
    [---], classical wires [===]), one column per gate, [x] for a not
    target, [*] for a positive control, [o] for a negative control, boxed
    labels for named gates, [0|-] / [-|0] for initialisation and assertive
    termination so ancilla scopes (§4.2.1) are visible at a glance. Used by
    the examples and the figure-reproduction section of the bench harness. *)

type cell = {
  mutable text : string;
  mutable connect_up : bool;
  mutable connect_down : bool;
}

let render ?(max_columns = 10000) (c : Circuit.t) : string =
  (* collect wires in order of appearance *)
  let order : (Wire.t, int) Hashtbl.t = Hashtbl.create 32 in
  let wires = ref [] in
  let note w =
    if not (Hashtbl.mem order w) then begin
      Hashtbl.add order w (Hashtbl.length order);
      wires := w :: !wires
    end
  in
  List.iter (fun (e : Wire.endpoint) -> note e.Wire.wire) c.Circuit.inputs;
  Array.iter
    (fun g -> List.iter (fun (e : Wire.endpoint) -> note e.Wire.wire) (Gate.wires g))
    c.Circuit.gates;
  List.iter (fun (e : Wire.endpoint) -> note e.Wire.wire) c.Circuit.outputs;
  let wires = List.rev !wires in
  let nrows = List.length wires in
  let row w = Hashtbl.find order w in
  let ngates = min max_columns (Array.length c.Circuit.gates) in
  (* liveness/type per column: live.(r) is the wire state entering column j *)
  let state = Array.make nrows `Dead in
  List.iter
    (fun (e : Wire.endpoint) ->
      state.(row e.Wire.wire) <- (match e.Wire.ty with Wire.Q -> `Q | Wire.C -> `C))
    c.Circuit.inputs;
  let buf = Buffer.create 1024 in
  let columns = ref ([] : (cell array * [ `Q | `C | `Dead | `Dying ] array) list) in
  let fresh_col () =
    Array.init nrows (fun _ -> { text = ""; connect_up = false; connect_down = false })
  in
  let mark_span col rs =
    match rs with
    | [] -> ()
    | rs ->
        let lo = List.fold_left min (List.hd rs) rs
        and hi = List.fold_left max (List.hd rs) rs in
        for r = lo to hi do
          if r > lo then col.(r).connect_up <- true;
          if r < hi then col.(r).connect_down <- true
        done
  in
  let ctl_cells col controls =
    List.iter
      (fun (k : Gate.control) ->
        col.(row k.cwire).text <- (if k.positive then "*" else "o"))
      controls
  in
  for j = 0 to ngates - 1 do
    let g = c.Circuit.gates.(j) in
    let col = fresh_col () in
    let rows_of ws = List.map row ws in
    (match g with
    | Gate.Gate { name; inv; targets; controls } ->
        let label =
          match name with
          | "not" -> "x"
          | n -> Printf.sprintf "[%s%s]" n (if inv then "*" else "")
        in
        List.iter (fun w -> col.(row w).text <- label) targets;
        ctl_cells col controls;
        mark_span col (rows_of (targets @ List.map (fun (k : Gate.control) -> k.cwire) controls))
    | Gate.Rot { name; inv; targets; controls; _ } ->
        let label = Printf.sprintf "[%s%s]" name (if inv then "*" else "") in
        List.iter (fun w -> col.(row w).text <- label) targets;
        ctl_cells col controls;
        mark_span col (rows_of (targets @ List.map (fun (k : Gate.control) -> k.cwire) controls))
    | Gate.Phase { angle; controls } ->
        (match controls with
        | [] -> ()
        | k :: _ -> col.(row k.cwire).text <- Printf.sprintf "[Ph %.2g]" angle);
        ctl_cells col (match controls with [] -> [] | _ :: tl -> tl);
        mark_span col (rows_of (List.map (fun (k : Gate.control) -> k.cwire) controls))
    | Gate.Init { ty; value; wire } ->
        col.(row wire).text <- Printf.sprintf "%d|-" (Bool.to_int value);
        state.(row wire) <- (match ty with Wire.Q -> `Q | Wire.C -> `C)
    | Gate.Term { value; wire; _ } ->
        col.(row wire).text <- Printf.sprintf "-|%d" (Bool.to_int value);
        state.(row wire) <- `Dying
    | Gate.Discard { wire; _ } ->
        col.(row wire).text <- "-/";
        state.(row wire) <- `Dying
    | Gate.Measure { wire } ->
        col.(row wire).text <- "[M]";
        state.(row wire) <- `C
    | Gate.Cgate { name; out; ins } ->
        col.(row out).text <- Printf.sprintf "[%s]" name;
        List.iter (fun w -> col.(row w).text <- "*") ins;
        state.(row out) <- `C;
        mark_span col (rows_of (out :: ins))
    | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
        let label = Printf.sprintf "[%s%s]" name (if inv then "*" else "") in
        List.iter (fun w -> col.(row w).text <- label) inputs;
        List.iter
          (fun w -> if not (List.mem w inputs) then begin
              col.(row w).text <- label;
              state.(row w) <- `Q
            end)
          outputs;
        List.iter (fun w -> if not (List.mem w outputs) then state.(row w) <- `Dying) inputs;
        ctl_cells col controls;
        mark_span col
          (rows_of (inputs @ outputs @ List.map (fun (k : Gate.control) -> k.cwire) controls))
    | Gate.Comment { text; _ } ->
        (* comments become a full-height marker column *)
        for r = 0 to nrows - 1 do
          if col.(r).text = "" && state.(r) <> `Dead && state.(r) <> `Dying then
            col.(r).text <- ":"
        done;
        ignore text);
    (* snapshot liveness into the column for drawing, then age Dying->Dead *)
    let live_here = Array.map (fun s -> s) state in
    for r = 0 to nrows - 1 do
      if state.(r) = `Dying then state.(r) <- `Dead
    done;
    columns := (col, live_here) :: !columns
  done;
  let columns = List.rev !columns in
  (* width of each column *)
  let widths =
    List.map
      (fun ((col : cell array), _) ->
        Array.fold_left (fun w c -> max w (String.length c.text)) 1 col)
      columns
  in
  (* draw: for each wire row, a gate line, then a connector line *)
  let line_for_row r =
    let b = Buffer.create 128 in
    List.iter2
      (fun ((col : cell array), live) w ->
        let cell = col.(r) in
        let fill =
          match live.(r) with
          | `Q | `Dying -> '-'
          | `C -> '='
          | `Dead -> ' '
        in
        let pad = w - String.length cell.text in
        let lpad = pad / 2 and rpad = pad - (pad / 2) in
        let fill_or_space n =
          String.make n (if live.(r) = `Dead && cell.text = "" then ' ' else fill)
        in
        Buffer.add_string b (fill_or_space (lpad + 1));
        Buffer.add_string b cell.text;
        Buffer.add_string b (fill_or_space (rpad + 1)))
      columns widths;
    Buffer.contents b
  in
  let connector_for_row r =
    (* the line *below* row r: '|' where a column connects r to r+1 *)
    let b = Buffer.create 128 in
    List.iter2
      (fun ((col : cell array), _) w ->
        let has = col.(r).connect_down in
        let pad = w - 1 in
        let lpad = pad / 2 and rpad = pad - (pad / 2) in
        Buffer.add_string b (String.make (lpad + 1) ' ');
        Buffer.add_char b (if has then '|' else ' ');
        Buffer.add_string b (String.make (rpad + 1) ' '))
      columns widths;
    Buffer.contents b
  in
  List.iteri
    (fun idx w ->
      ignore w;
      Buffer.add_string buf (Printf.sprintf "%4d: " (List.nth wires idx));
      Buffer.add_string buf (line_for_row idx);
      Buffer.add_char buf '\n';
      if idx < nrows - 1 then begin
        let conn = connector_for_row idx in
        if String.exists (fun c -> c = '|') conn then begin
          Buffer.add_string buf "      ";
          Buffer.add_string buf conn;
          Buffer.add_char buf '\n'
        end
      end)
    wires;
  if Array.length c.Circuit.gates > ngates then
    Buffer.add_string buf
      (Printf.sprintf "... (%d more gates)\n" (Array.length c.Circuit.gates - ngates));
  Buffer.contents buf

let render_b ?max_columns (b : Circuit.b) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render ?max_columns b.Circuit.main);
  List.iter
    (fun name ->
      let sub = Circuit.find_sub b name in
      Buffer.add_string buf (Printf.sprintf "\nSubroutine %s:\n" name);
      Buffer.add_string buf (render ?max_columns sub.Circuit.circ))
    b.Circuit.sub_order;
  Buffer.contents buf

let print ?max_columns (b : Circuit.b) = print_string (render_b ?max_columns b)
