(** ASCII-art circuit rendering.

    The paper renders circuits to PostScript/PDF; we draw the same
    diagrams in text: one row per wire (quantum [---], classical [===]),
    one column per gate, [x] not targets, [*] positive and [o] negative
    controls, boxed labels for named gates, and [0|-] / [-|0] for
    initialisation and assertive termination, so ancilla scopes (§4.2.1)
    are visible at a glance. *)

val render : ?max_columns:int -> Circuit.t -> string
val render_b : ?max_columns:int -> Circuit.b -> string
(** Main circuit followed by each subroutine body. *)

val print : ?max_columns:int -> Circuit.b -> unit
