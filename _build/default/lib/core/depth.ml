(** Circuit depth estimation.

    A companion to {!Gatecount} for the other axis of resource estimation:
    the *depth* (parallel time) of a circuit, assuming any set of gates on
    disjoint wires can fire simultaneously. Like the gate counter it works
    hierarchically: a call to a boxed subcircuit advances every touched
    wire by the callee's (memoized) depth. For calls this is an upper
    bound — it serialises the callee against all of its wires as a block —
    which is the standard conservative convention for hierarchical
    resource estimates; [depth (Circuit.inline b)] gives the exact figure
    when inlining is feasible, and the test suite checks the bound.

    Initialisations, terminations and measurements each count as one time
    step on their wire; comments are free. *)

type profile = {
  depth : int;  (** longest wire timeline *)
  t_gates : int;  (** sequential T-count, a common cost proxy *)
}

let depth_of_circuit ~(sub_depth : string -> int) (c : Circuit.t) : int =
  let time : (Wire.t, int) Hashtbl.t = Hashtbl.create 64 in
  let get w = match Hashtbl.find_opt time w with Some t -> t | None -> 0 in
  let overall = ref 0 in
  let advance wires dt =
    let t = List.fold_left (fun acc w -> max acc (get w)) 0 wires + dt in
    List.iter (fun w -> Hashtbl.replace time w t) wires;
    if t > !overall then overall := t
  in
  List.iter (fun (e : Wire.endpoint) -> Hashtbl.replace time e.Wire.wire 0) c.Circuit.inputs;
  Array.iter
    (fun g ->
      match g with
      | Gate.Comment _ -> ()
      | Gate.Subroutine { name; inputs; outputs; controls; _ } ->
          let wires =
            inputs @ outputs
            @ List.map (fun (k : Gate.control) -> k.Gate.cwire) controls
          in
          advance (List.sort_uniq compare wires) (sub_depth name)
      | g ->
          let wires = List.map (fun (e : Wire.endpoint) -> e.Wire.wire) (Gate.wires g) in
          advance wires 1)
    c.Circuit.gates;
  !overall

(** Hierarchical depth of a boxed circuit. *)
let depth (b : Circuit.b) : int =
  let memo : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec sub_depth name =
    match Hashtbl.find_opt memo name with
    | Some d -> d
    | None ->
        let sub = Circuit.find_sub b name in
        let d = depth_of_circuit ~sub_depth sub.Circuit.circ in
        Hashtbl.replace memo name d;
        d
  in
  depth_of_circuit ~sub_depth b.Circuit.main

(** Sequential T-gate count along the critical path is approximated by the
    total T count; the exact T-depth needs scheduling, so we expose the
    simple aggregate and document it as such. *)
let profile (b : Circuit.b) : profile =
  let counts = Gatecount.aggregate b in
  let t_gates =
    Gatecount.Counts.fold
      (fun k n acc -> if k.Gatecount.kind = "T" then acc + n else acc)
      counts 0
  in
  { depth = depth b; t_gates }
