(** Circuit depth estimation — the parallel-time axis of resource
    estimation, computed hierarchically like {!Gatecount}.

    A call to a boxed subcircuit advances every touched wire by the
    callee's memoized depth, which serialises the callee as a block: an
    upper bound (exact on flat circuits; [depth (Circuit.inline b)] when
    inlining is feasible gives the tight figure, and the test suite checks
    the bound). Initialisations, terminations and measurements count one
    time step on their wire; comments are free. *)

type profile = {
  depth : int;  (** longest wire timeline *)
  t_gates : int;  (** aggregate T count, a common cost proxy *)
}

val depth_of_circuit : sub_depth:(string -> int) -> Circuit.t -> int
val depth : Circuit.b -> int
val profile : Circuit.b -> profile
