(** Errors raised by the circuit builder and the whole-circuit operators.

    Quipper, lacking linear types in its host language, checks the physical
    well-formedness of circuit-building programs at run time (paper §4.1);
    we do the same. All checks raise [Error] with a structured reason so
    tests can assert on the precise failure. *)

type reason =
  | Dead_wire of int
      (** a gate addressed a wire that was never allocated or was already
          terminated, discarded or measured away *)
  | Wire_type of { wire : int; expected : Wire.ty; got : Wire.ty }
  | No_cloning of int
      (** the same wire appeared twice among the targets and controls of one
          gate — physically meaningless (paper §2.2) *)
  | Not_controllable of string
      (** a gate that cannot be controlled (measurement, discard, classical
          output) was emitted inside a [with_controls] block *)
  | Not_reversible of string
      (** [reverse] met a gate with no inverse (measurement, discard,
          classical gate) *)
  | Shape_mismatch of string
  | Subroutine_redefined of string
  | Unknown_subroutine of string
  | Dynamic_lifting_unavailable
      (** [dynamic_lift] was used under a run function that cannot execute
          measurements (e.g. plain circuit generation or gate counting) *)
  | Termination_assertion of { wire : int; expected : bool }
      (** a simulator found an assertive termination to be false — the
          programmer's uncomputation claim did not hold *)
  | Simulation of string
  | Invalid of string

exception Error of reason

let pp_reason ppf = function
  | Dead_wire w -> Fmt.pf ppf "use of dead or unallocated wire %d" w
  | Wire_type { wire; expected; got } ->
      Fmt.pf ppf "wire %d has type %s but %s was expected" wire
        (Wire.ty_name got) (Wire.ty_name expected)
  | No_cloning w -> Fmt.pf ppf "wire %d used twice in one gate (no-cloning)" w
  | Not_controllable g -> Fmt.pf ppf "gate %s cannot be controlled" g
  | Not_reversible g -> Fmt.pf ppf "gate %s cannot be reversed" g
  | Shape_mismatch s -> Fmt.pf ppf "shape mismatch: %s" s
  | Subroutine_redefined s ->
      Fmt.pf ppf "subroutine %S redefined with a different body shape" s
  | Unknown_subroutine s -> Fmt.pf ppf "unknown subroutine %S" s
  | Dynamic_lifting_unavailable ->
      Fmt.pf ppf "dynamic lifting is not available under this run function"
  | Termination_assertion { wire; expected } ->
      Fmt.pf ppf
        "assertive termination failed: wire %d was not |%d> as asserted" wire
        (if expected then 1 else 0)
  | Simulation s -> Fmt.pf ppf "simulation error: %s" s
  | Invalid s -> Fmt.pf ppf "%s" s

let to_string r = Fmt.to_to_string pp_reason r

let raise_ r = raise (Error r)

let invalidf fmt = Fmt.kstr (fun s -> raise_ (Invalid s)) fmt

let () =
  Printexc.register_printer (function
    | Error r -> Some (Fmt.str "Quipper.Errors.Error: %a" pp_reason r)
    | _ -> None)
