(** Errors raised by the circuit builder, the whole-circuit operators and
    the simulators.

    Quipper, lacking linear types in its host language, checks the physical
    well-formedness of circuit-building programs at run time (paper §4.1);
    so do we. All checks raise {!Error} with a structured {!reason} so
    callers and tests can match on the precise failure. *)

type reason =
  | Dead_wire of int
      (** A gate addressed a wire that was never allocated or was already
          terminated, discarded or measured away. *)
  | Wire_type of { wire : int; expected : Wire.ty; got : Wire.ty }
      (** A quantum gate touched a classical wire or vice versa. *)
  | No_cloning of int
      (** The same wire appeared twice among the targets and controls of
          one gate — physically meaningless (paper §2.2). *)
  | Not_controllable of string
      (** A gate with no controlled version (measurement, discard,
          classical output) was emitted inside a [with_controls] block. *)
  | Not_reversible of string
      (** Reversal met a gate with no inverse. *)
  | Shape_mismatch of string
      (** Structured data did not match its shape witness. *)
  | Subroutine_redefined of string
      (** The same box name was used with a different body shape. *)
  | Unknown_subroutine of string
  | Dynamic_lifting_unavailable
      (** [dynamic_lift] was used under a run function that does not
          execute measurements (e.g. plain circuit generation). *)
  | Termination_assertion of { wire : int; expected : bool }
      (** A simulator found an assertive termination (§4.2.2) to be false:
          the programmer's uncomputation claim did not hold. *)
  | Simulation of string
  | Invalid of string

exception Error of reason

val pp_reason : Format.formatter -> reason -> unit
val to_string : reason -> string

val raise_ : reason -> 'a
(** Raise {!Error}. *)

val invalidf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with an [Invalid] reason built from a format string. *)
