(** Parser for the text circuit format emitted by {!Printer} — the other
    half of circuit (de)serialisation, letting generated circuits be
    stored, exchanged and reloaded (Quipper's textual format served the
    same role). [parse] is the left inverse of [Printer.to_string]:
    [print (parse (print b)) = print b], a property the test suite checks
    on random circuits. *)

let fail fmt = Fmt.kstr (fun s -> Errors.raise_ (Invalid ("parse: " ^ s))) fmt

(* ------------------------------------------------------------------ *)
(* Lexical helpers                                                     *)

let is_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let drop_prefix ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

(** Split [s] at the first occurrence of [sep] (a single char). *)
let split1 sep s =
  match String.index_opt s sep with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> fail "expected an integer, got %S" s

let parse_float s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> fail "expected a float, got %S" s

(** Parse a quoted string starting at index [i] of [s]; returns the
    content and the index after the closing quote. (The printer uses
    OCaml's [%S]; we handle the standard escapes.) *)
let parse_quoted s i =
  if i >= String.length s || s.[i] <> '"' then fail "expected '\"' in %S" s;
  let buf = Buffer.create 16 in
  let rec go j =
    if j >= String.length s then fail "unterminated string in %S" s
    else
      match s.[j] with
      | '"' -> (Buffer.contents buf, j + 1)
      | '\\' ->
          if j + 1 >= String.length s then fail "bad escape in %S" s;
          let c =
            match s.[j + 1] with
            | 'n' -> '\n'
            | 't' -> '\t'
            | 'r' -> '\r'
            | '\\' -> '\\'
            | '"' -> '"'
            | c -> c
          in
          Buffer.add_char buf c;
          go (j + 2)
      | c ->
          Buffer.add_char buf c;
          go (j + 1)
  in
  go (i + 1)

let parse_wire_list s =
  let s = String.trim s in
  if s = "" then []
  else List.map parse_int (String.split_on_char ',' s)

(* controls: [+0,-2c,+5] *)
let parse_controls s =
  let s = String.trim s in
  if s = "" then []
  else
    List.map
      (fun item ->
        let item = String.trim item in
        if String.length item < 2 then fail "bad control %S" item;
        let positive =
          match item.[0] with
          | '+' -> true
          | '-' -> false
          | _ -> fail "bad control sign in %S" item
        in
        let rest = String.sub item 1 (String.length item - 1) in
        let cty, numstr =
          if String.length rest > 0 && rest.[String.length rest - 1] = 'c' then
            (Wire.C, String.sub rest 0 (String.length rest - 1))
          else (Wire.Q, rest)
        in
        { Gate.cwire = parse_int numstr; cty; positive })
      (String.split_on_char ',' s)

(** Split a gate line into (head, args-in-parens, controls) where the line
    looks like [HEAD(args)] or [HEAD(args) with controls=[ctls]]. *)
let split_gate_line line =
  let body, controls =
    let marker = " with controls=[" in
    let rec find i =
      if i + String.length marker > String.length line then None
      else if String.sub line i (String.length marker) = marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> (line, [])
    | Some i ->
        let ctl_part =
          String.sub line
            (i + String.length marker)
            (String.length line - i - String.length marker)
        in
        let ctl_part =
          match String.rindex_opt ctl_part ']' with
          | Some j -> String.sub ctl_part 0 j
          | None -> fail "missing ']' in %S" line
        in
        (String.sub line 0 i, parse_controls ctl_part)
  in
  (* find the first '(' that is not inside a quoted string (gate names
     like "exp(-i%Z)" contain parentheses) *)
  let paren =
    let rec go i in_quote =
      if i >= String.length body then None
      else
        match body.[i] with
        | '"' -> go (i + 1) (not in_quote)
        | '\\' when in_quote -> go (i + 2) in_quote
        | '(' when not in_quote -> Some i
        | _ -> go (i + 1) in_quote
    in
    go 0 false
  in
  match paren with
  | None -> (body, "", controls)
  | Some i -> (
      let head = String.sub body 0 i in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      match String.rindex_opt rest ')' with
      | Some j -> (head, String.sub rest 0 j, controls)
      | None -> fail "missing ')' in %S" line)

(* ------------------------------------------------------------------ *)
(* Gate lines                                                          *)

let parse_arity s : Wire.endpoint list =
  let s = String.trim s in
  if s = "none" || s = "" then []
  else
    List.map
      (fun item ->
        match split1 ':' (String.trim item) with
        | Some (w, "Qubit") -> Wire.qw (parse_int w)
        | Some (w, "Cbit") -> Wire.cw (parse_int w)
        | _ -> fail "bad arity item %S" item)
      (String.split_on_char ',' s)

let parse_comment_line line =
  let rest = drop_prefix ~prefix:"Comment" line in
  let text, j = parse_quoted rest 1 in
  ignore j;
  (* labels: after the first ']' of the original line: 0:"x" 1:"y" *)
  let labels =
    match String.index_opt line ']' with
    | None -> []
    | Some k ->
        let rec scan i acc =
          if i >= String.length line then List.rev acc
          else if line.[i] = ' ' then scan (i + 1) acc
          else
            match String.index_from_opt line i ':' with
            | None -> List.rev acc
            | Some c ->
                let w = parse_int (String.sub line i (c - i)) in
                let label, j = parse_quoted line (c + 1) in
                scan j ((w, label) :: acc)
        in
        scan (k + 1) []
  in
  Gate.Comment { text; labels }

let parse_gate_line (line : string) : Gate.t =
  if is_prefix ~prefix:"Comment[" line then parse_comment_line line
  else
  let head, args, controls = split_gate_line line in
  let named prefix =
    (* HEAD is like QGate["name"] or QGate["name"]* *)
    let rest = drop_prefix ~prefix head in
    if String.length rest < 1 || rest.[0] <> '[' then fail "bad head %S" head;
    let name, j = parse_quoted rest 1 in
    let tail = String.sub rest j (String.length rest - j) in
    (name, tail)
  in
  if is_prefix ~prefix:"QGate[" head then begin
    let name, tail = named "QGate" in
    let inv = String.length tail > 0 && String.contains tail '*' in
    Gate.Gate { name; inv; targets = parse_wire_list args; controls }
  end
  else if is_prefix ~prefix:"QRot[" head then begin
    let rest = drop_prefix ~prefix:"QRot" head in
    let name, j = parse_quoted rest 1 in
    let tail = String.sub rest j (String.length rest - j) in
    (* tail looks like ,angle] or ,angle]* *)
    let angle_str =
      match split1 ',' tail with
      | Some (_, rest) -> (
          match String.index_opt rest ']' with
          | Some k -> String.sub rest 0 k
          | None -> fail "bad QRot %S" head)
      | None -> fail "bad QRot %S" head
    in
    let inv = tail.[String.length tail - 1] = '*' in
    Gate.Rot
      { name; angle = parse_float angle_str; inv;
        targets = parse_wire_list args; controls }
  end
  else if is_prefix ~prefix:"GPhase[" head then begin
    let inner = drop_prefix ~prefix:"GPhase[" head in
    let angle_str =
      match String.index_opt inner ']' with
      | Some k -> String.sub inner 0 k
      | None -> fail "bad GPhase %S" head
    in
    Gate.Phase { angle = parse_float angle_str; controls }
  end
  else if is_prefix ~prefix:"QInit" head then
    Gate.Init
      { ty = Wire.Q; value = drop_prefix ~prefix:"QInit" head = "1";
        wire = parse_int args }
  else if is_prefix ~prefix:"CInit" head then
    Gate.Init
      { ty = Wire.C; value = drop_prefix ~prefix:"CInit" head = "1";
        wire = parse_int args }
  else if is_prefix ~prefix:"QTerm" head then
    Gate.Term
      { ty = Wire.Q; value = drop_prefix ~prefix:"QTerm" head = "1";
        wire = parse_int args }
  else if is_prefix ~prefix:"CTerm" head then
    Gate.Term
      { ty = Wire.C; value = drop_prefix ~prefix:"CTerm" head = "1";
        wire = parse_int args }
  else if head = "QDiscard" then Gate.Discard { ty = Wire.Q; wire = parse_int args }
  else if head = "CDiscard" then Gate.Discard { ty = Wire.C; wire = parse_int args }
  else if head = "QMeas" then Gate.Measure { wire = parse_int args }
  else if is_prefix ~prefix:"CGate[" head then begin
    let name, _ = named "CGate" in
    match split1 ';' args with
    | Some (out, ins) ->
        Gate.Cgate { name; out = parse_int out; ins = parse_wire_list ins }
    | None -> fail "bad CGate args %S" args
  end
  else if is_prefix ~prefix:"Subroutine[" head then begin
    let name, tail = named "Subroutine" in
    let inv = String.contains tail '*' in
    (* args look like "ins) -> (outs" after split_gate_line took the first
       '(' and last ')' *)
    let ins_str, outs_str =
      let marker = ") -> (" in
      let rec find i =
        if i + String.length marker > String.length args then
          fail "bad subroutine args %S" args
        else if String.sub args i (String.length marker) = marker then i
        else find (i + 1)
      in
      let i = find 0 in
      ( String.sub args 0 i,
        String.sub args
          (i + String.length marker)
          (String.length args - i - String.length marker) )
    in
    Gate.Subroutine
      { name; inv; inputs = parse_wire_list ins_str;
        outputs = parse_wire_list outs_str; controls }
  end
  else fail "unrecognised gate line %S" line

(* ------------------------------------------------------------------ *)
(* Whole documents                                                     *)

let parse_circuit_lines (lines : string list) : Circuit.t * string list =
  match lines with
  | inputs_line :: rest when is_prefix ~prefix:"Inputs:" inputs_line ->
      let inputs = parse_arity (drop_prefix ~prefix:"Inputs:" inputs_line) in
      let rec gates acc = function
        | out_line :: rest when is_prefix ~prefix:"Outputs:" out_line ->
            let outputs = parse_arity (drop_prefix ~prefix:"Outputs:" out_line) in
            ( { Circuit.inputs; gates = Array.of_list (List.rev acc); outputs },
              rest )
        | line :: rest -> gates (parse_gate_line line :: acc) rest
        | [] -> fail "missing Outputs: line"
      in
      gates [] rest
  | l :: _ -> fail "expected Inputs: line, got %S" l
  | [] -> fail "empty circuit"

(** Parse a whole document in {!Printer}'s format. *)
let parse (text : string) : Circuit.b =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let main, rest = parse_circuit_lines lines in
  let rec subs acc order = function
    | [] ->
        {
          Circuit.main;
          subs = acc;
          sub_order = List.rev order;
        }
    | line :: rest when is_prefix ~prefix:"Subroutine:" line ->
        let name, _ = parse_quoted line (String.index line '"') in
        let controllable, rest =
          match rest with
          | c :: rest when is_prefix ~prefix:"Controllable:" c ->
              (String.trim (drop_prefix ~prefix:"Controllable:" c) = "true", rest)
          | _ -> fail "expected Controllable: after Subroutine:"
        in
        let circ, rest = parse_circuit_lines rest in
        subs
          (Circuit.Namespace.add name { Circuit.circ; controllable } acc)
          (name :: order) rest
    | l :: _ -> fail "unexpected line %S" l
  in
  subs Circuit.Namespace.empty [] rest

(** Parse from a file. *)
let parse_file (path : string) : Circuit.b =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      parse s)
