(** Parser for the text circuit format emitted by {!Printer} — circuit
    (de)serialisation. [parse] is a left inverse of [Printer.to_string]
    up to float formatting: [print (parse (print b)) = print b], a
    property the test suite checks on random circuits. *)

val parse : string -> Circuit.b
(** Raises {!Errors.Error} [(Invalid _)] on malformed input. *)

val parse_file : string -> Circuit.b

val parse_gate_line : string -> Gate.t

val parse_arity : string -> Wire.endpoint list
