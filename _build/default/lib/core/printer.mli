(** The text output format: one gate per line, Quipper's [.txt] style
    (paper §4.4.5, [print_generic]). Subroutine definitions follow the
    main circuit in definition order, so hierarchical circuits stay
    hierarchical on disk. *)

val pp_arity : Format.formatter -> Wire.endpoint list -> unit
val pp_circuit : Format.formatter -> Circuit.t -> unit
val pp_bcircuit : Format.formatter -> Circuit.b -> unit
val to_string : Circuit.b -> string
val print : Circuit.b -> unit
