(** Shape witnesses: Quipper's [QCData] / [QShape] type classes, in OCaml.

    The paper (§4.3.2, §4.5) relates three versions of every data type: a
    *parameter* version [.'b] made of [Bool]s (known at circuit generation
    time), a *quantum* version ['q] made of [Qubit]s, and a *classical
    input* version ['c] made of [Bit]s. Haskell derives the relationship by
    type-class induction on the structure of types; OCaml has no type
    classes, so we pass the induction explicitly as a first-class record of
    conversion functions — a "shape witness". Witnesses are built with the
    combinators below ([qubit], [pair], [list_of n], …); note that
    [list_of] takes the length as a value, which is exactly the paper's
    point that the length of a list is a *parameter* (the "shape" of the
    data).

    Generic operations ([Circ.qinit], [Circ.measure], [Circ.box], …) take a
    witness where the Haskell original would take a [QShape] constraint. *)

type ('b, 'q, 'c) t = {
  tys : Wire.ty list;  (** wire types of the leaves of the ['q] version *)
  qleaves : 'q -> Wire.endpoint list;
  qbuild : Wire.endpoint list -> 'q;
      (** rebuild from exactly [List.length tys] endpoints *)
  cleaves : 'c -> Wire.endpoint list;
  cbuild : Wire.endpoint list -> 'c;
  bleaves : 'b -> bool list;
  bbuild : bool list -> 'b;
}

let size w = List.length w.tys

(* ------------------------------------------------------------------ *)
(* Leaf witnesses                                                      *)

let qubit : (bool, Wire.qubit, Wire.bit) t =
  {
    tys = [ Wire.Q ];
    qleaves = (fun (Wire.Qubit w) -> [ Wire.qw w ]);
    qbuild =
      (function
      | [ e ] when e.Wire.ty = Wire.Q -> Wire.Qubit e.Wire.wire
      | _ -> Errors.raise_ (Shape_mismatch "qubit leaf"));
    cleaves = (fun (Wire.Bit w) -> [ Wire.cw w ]);
    cbuild =
      (function
      | [ e ] -> Wire.Bit e.Wire.wire
      | _ -> Errors.raise_ (Shape_mismatch "bit leaf"));
    bleaves = (fun b -> [ b ]);
    bbuild =
      (function [ b ] -> b | _ -> Errors.raise_ (Shape_mismatch "bool leaf"));
  }

(** A classical wire *as quantum data*: its circuit-execution version is a
    [bit] (classical wires participate in Quipper's mixed circuits). *)
let bit : (bool, Wire.bit, Wire.bit) t =
  {
    tys = [ Wire.C ];
    qleaves = (fun (Wire.Bit w) -> [ Wire.cw w ]);
    qbuild =
      (function
      | [ e ] when e.Wire.ty = Wire.C -> Wire.Bit e.Wire.wire
      | _ -> Errors.raise_ (Shape_mismatch "bit leaf"));
    cleaves = (fun (Wire.Bit w) -> [ Wire.cw w ]);
    cbuild =
      (function
      | [ e ] -> Wire.Bit e.Wire.wire
      | _ -> Errors.raise_ (Shape_mismatch "bit leaf"));
    bleaves = (fun b -> [ b ]);
    bbuild =
      (function [ b ] -> b | _ -> Errors.raise_ (Shape_mismatch "bool leaf"));
  }

let unit : (unit, unit, unit) t =
  {
    tys = [];
    qleaves = (fun () -> []);
    qbuild = (fun _ -> ());
    cleaves = (fun () -> []);
    cbuild = (fun _ -> ());
    bleaves = (fun () -> []);
    bbuild = (fun _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Structural combinators                                              *)

let split_at n l =
  let rec go n acc l =
    if n = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> Errors.raise_ (Shape_mismatch "not enough leaves")
      | x :: tl -> go (n - 1) (x :: acc) tl
  in
  go n [] l

let pair (a : ('b1, 'q1, 'c1) t) (b : ('b2, 'q2, 'c2) t) :
    ('b1 * 'b2, 'q1 * 'q2, 'c1 * 'c2) t =
  let na = size a in
  {
    tys = a.tys @ b.tys;
    qleaves = (fun (x, y) -> a.qleaves x @ b.qleaves y);
    qbuild =
      (fun es ->
        let ea, eb = split_at na es in
        (a.qbuild ea, b.qbuild eb));
    cleaves = (fun (x, y) -> a.cleaves x @ b.cleaves y);
    cbuild =
      (fun es ->
        let ea, eb = split_at na es in
        (a.cbuild ea, b.cbuild eb));
    bleaves = (fun (x, y) -> a.bleaves x @ b.bleaves y);
    bbuild =
      (fun bs ->
        let ba, bb = split_at na bs in
        (a.bbuild ba, b.bbuild bb));
  }

let triple a b c =
  let w = pair a (pair b c) in
  {
    tys = w.tys;
    qleaves = (fun (x, y, z) -> w.qleaves (x, (y, z)));
    qbuild =
      (fun es ->
        let x, (y, z) = w.qbuild es in
        (x, y, z));
    cleaves = (fun (x, y, z) -> w.cleaves (x, (y, z)));
    cbuild =
      (fun es ->
        let x, (y, z) = w.cbuild es in
        (x, y, z));
    bleaves = (fun (x, y, z) -> w.bleaves (x, (y, z)));
    bbuild =
      (fun bs ->
        let x, (y, z) = w.bbuild bs in
        (x, y, z));
  }

let quad a b c d =
  let w = pair (pair a b) (pair c d) in
  {
    tys = w.tys;
    qleaves = (fun (x, y, z, u) -> w.qleaves ((x, y), (z, u)));
    qbuild =
      (fun es ->
        let (x, y), (z, u) = w.qbuild es in
        (x, y, z, u));
    cleaves = (fun (x, y, z, u) -> w.cleaves ((x, y), (z, u)));
    cbuild =
      (fun es ->
        let (x, y), (z, u) = w.cbuild es in
        (x, y, z, u));
    bleaves = (fun (x, y, z, u) -> w.bleaves ((x, y), (z, u)));
    bbuild =
      (fun bs ->
        let (x, y), (z, u) = w.bbuild bs in
        (x, y, z, u));
  }

(** [list_of n w]: lists of exactly [n] elements of shape [w]. The length
    is a generation-time parameter, not an input. *)
let list_of n (w : ('b, 'q, 'c) t) : ('b list, 'q list, 'c list) t =
  let k = size w in
  let tys = List.concat (List.init n (fun _ -> w.tys)) in
  let leaves leaf_of l =
    if List.length l <> n then
      Errors.raise_
        (Shape_mismatch (Fmt.str "list length %d, expected %d" (List.length l) n));
    List.concat_map leaf_of l
  in
  let build build_of es =
    let rec go i es acc =
      if i = n then List.rev acc
      else
        let mine, rest = split_at k es in
        go (i + 1) rest (build_of mine :: acc)
    in
    go 0 es []
  in
  {
    tys;
    qleaves = leaves w.qleaves;
    qbuild = build w.qbuild;
    cleaves = leaves w.cleaves;
    cbuild = build w.cbuild;
    bleaves = leaves w.bleaves;
    bbuild = build w.bbuild;
  }

(** [array_of n w]: arrays of exactly [n] elements of shape [w]. *)
let array_of n (w : ('b, 'q, 'c) t) : ('b array, 'q array, 'c array) t =
  let l = list_of n w in
  {
    tys = l.tys;
    qleaves = (fun a -> l.qleaves (Array.to_list a));
    qbuild = (fun es -> Array.of_list (l.qbuild es));
    cleaves = (fun a -> l.cleaves (Array.to_list a));
    cbuild = (fun es -> Array.of_list (l.cbuild es));
    bleaves = (fun a -> l.bleaves (Array.to_list a));
    bbuild = (fun bs -> Array.of_list (l.bbuild bs));
  }

(** Change the surface types of a witness by (iso)morphisms — how library
    types like [Qdint.t] wrap a raw qubit list into an abstract register. *)
let iso ~(bto : 'b1 -> 'b2) ~(bof : 'b2 -> 'b1) ~(qto : 'q1 -> 'q2)
    ~(qof : 'q2 -> 'q1) ~(cto : 'c1 -> 'c2) ~(cof : 'c2 -> 'c1)
    (w : ('b1, 'q1, 'c1) t) : ('b2, 'q2, 'c2) t =
  {
    tys = w.tys;
    qleaves = (fun q -> w.qleaves (qof q));
    qbuild = (fun es -> qto (w.qbuild es));
    cleaves = (fun c -> w.cleaves (cof c));
    cbuild = (fun es -> cto (w.cbuild es));
    bleaves = (fun b -> w.bleaves (bof b));
    bbuild = (fun bs -> bto (w.bbuild bs));
  }

(** List of qubit wire ids of a purely-quantum structure; raises on
    classical leaves. *)
let qubit_wires (w : ('b, 'q, 'c) t) (q : 'q) : Wire.t list =
  List.map
    (fun (e : Wire.endpoint) ->
      match e.ty with
      | Wire.Q -> e.wire
      | Wire.C ->
          Errors.raise_ (Shape_mismatch "expected all-quantum data"))
    (w.qleaves q)
