(** Shape witnesses: Quipper's [QCData] / [QShape] type classes, in OCaml
    (paper §4.3.2, §4.5).

    A witness [('b, 'q, 'c) t] relates the three versions of a data type:
    the {e parameter} version ['b] (booleans, known at circuit generation
    time), the {e quantum} version ['q] (qubits — possibly mixed with
    classical wires), and the {e classical input} version ['c] (bits).
    Haskell derives the relation by type-class induction on types; OCaml
    passes the induction explicitly as a first-class record built with the
    combinators below. Note that {!list_of} takes the length as a value:
    the length of a list is a parameter — the "shape" of the data — which
    is exactly the paper's point.

    Generic operations ([Circ.qinit], [Circ.measure], [Circ.box], ...)
    take a witness where the Haskell original takes a [QShape]
    constraint. *)

type ('b, 'q, 'c) t = {
  tys : Wire.ty list;  (** wire types of the leaves of the ['q] version *)
  qleaves : 'q -> Wire.endpoint list;
  qbuild : Wire.endpoint list -> 'q;
  cleaves : 'c -> Wire.endpoint list;
  cbuild : Wire.endpoint list -> 'c;
  bleaves : 'b -> bool list;
  bbuild : bool list -> 'b;
}

val size : ('b, 'q, 'c) t -> int
(** Number of leaves. *)

val qubit : (bool, Wire.qubit, Wire.bit) t
val bit : (bool, Wire.bit, Wire.bit) t
val unit : (unit, unit, unit) t

val pair :
  ('b1, 'q1, 'c1) t -> ('b2, 'q2, 'c2) t -> ('b1 * 'b2, 'q1 * 'q2, 'c1 * 'c2) t

val triple :
  ('b1, 'q1, 'c1) t ->
  ('b2, 'q2, 'c2) t ->
  ('b3, 'q3, 'c3) t ->
  ('b1 * 'b2 * 'b3, 'q1 * 'q2 * 'q3, 'c1 * 'c2 * 'c3) t

val quad :
  ('b1, 'q1, 'c1) t ->
  ('b2, 'q2, 'c2) t ->
  ('b3, 'q3, 'c3) t ->
  ('b4, 'q4, 'c4) t ->
  ( 'b1 * 'b2 * 'b3 * 'b4,
    'q1 * 'q2 * 'q3 * 'q4,
    'c1 * 'c2 * 'c3 * 'c4 )
  t

val list_of : int -> ('b, 'q, 'c) t -> ('b list, 'q list, 'c list) t
(** Lists of exactly [n] elements; the length is a generation-time
    parameter, not an input. *)

val array_of : int -> ('b, 'q, 'c) t -> ('b array, 'q array, 'c array) t

val iso :
  bto:('b1 -> 'b2) ->
  bof:('b2 -> 'b1) ->
  qto:('q1 -> 'q2) ->
  qof:('q2 -> 'q1) ->
  cto:('c1 -> 'c2) ->
  cof:('c2 -> 'c1) ->
  ('b1, 'q1, 'c1) t ->
  ('b2, 'q2, 'c2) t
(** Re-skin a witness through isomorphisms — how library types like
    [Qdint.t] wrap a raw qubit array into an abstract register whose
    parameter version is an [int]. *)

val qubit_wires : ('b, 'q, 'c) t -> 'q -> Wire.t list
(** Qubit wire ids of a purely-quantum structure; raises
    [Shape_mismatch] on classical leaves. *)
