(** Circuit-level reversal.

    [Circ.reverse_fun] reverses a circuit-producing *function*; this module
    reverses materialised circuits, including hierarchical ones. Per §4.2.2
    of the paper, circuits containing qubit initialisations and assertive
    terminations are unitary between the asserted subspaces, so they reverse
    without complaint: [Init] and [Term] swap roles. Measurements, discards
    and classical gates have no inverse and raise [Errors.Error
    (Not_reversible _)]. *)

let circuit (c : Circuit.t) : Circuit.t =
  let gates =
    Array.of_list
      (Array.fold_left
         (fun acc g -> if Gate.is_comment g then acc else Gate.inverse g :: acc)
         [] c.Circuit.gates)
  in
  { Circuit.inputs = c.Circuit.outputs; gates; outputs = c.Circuit.inputs }

(** Reverse a boxed circuit. Subroutine definitions are kept as-is — calls
    in the reversed main circuit carry the [inv] flag, so the namespace is
    shared between a circuit and its reverse, preserving hierarchy. *)
let bcircuit (b : Circuit.b) : Circuit.b = { b with main = circuit b.main }

(** Is this circuit reversible at all? *)
let is_reversible (c : Circuit.t) =
  Array.for_all
    (fun g ->
      match g with
      | Gate.Measure _ | Gate.Discard _ | Gate.Cgate _ -> false
      | _ -> true)
    c.Circuit.gates
