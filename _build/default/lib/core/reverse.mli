(** Circuit-level reversal (paper §4.2.2, §4.4.3).

    [Circ.reverse_fun] reverses a circuit-producing {e function}; this
    module reverses materialised circuits, including hierarchical ones.
    Circuits containing qubit initialisations and assertive terminations
    reverse without complaint — [Init] and [Term] swap roles. Measurements,
    discards and classical gates raise [Not_reversible]. *)

val circuit : Circuit.t -> Circuit.t
(** Reverse a flat circuit (comments are dropped). *)

val bcircuit : Circuit.b -> Circuit.b
(** Reverse a boxed circuit. Subroutine definitions are kept as-is: calls
    in the reversed main circuit carry the inverse flag, so the namespace
    is shared between a circuit and its reverse. *)

val is_reversible : Circuit.t -> bool
