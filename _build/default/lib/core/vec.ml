(** Growable vectors.

    The gate buffer of the circuit builder. OCaml 5.1's standard library
    predates [Dynarray], so we carry a minimal amortised-doubling vector with
    exactly the operations the builder needs. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * Array.length t.data) in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

(** Truncate to the first [n] elements. *)
let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  t.len <- n

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(** [slice t lo hi] is elements [lo..hi-1] as a fresh array. *)
let slice t lo hi =
  if lo < 0 || hi < lo || hi > t.len then invalid_arg "Vec.slice";
  Array.sub t.data lo (hi - lo)

let clear t = t.len <- 0
