(** Wires: the horizontal lines of a circuit diagram.

    A wire is identified by an integer and carries either quantum or
    classical data (paper §4.2.3: Quipper's extended circuit model freely
    mixes the two). Wire identities are stable across the lifetime of a
    circuit-building run: a [Measure] gate keeps the wire id but flips its
    type from [Q] to [C], matching Quipper's picture of a qubit wire turning
    into a classical wire.

    The [qubit] and [bit] wrappers are the handles user programs hold; they
    exist so that the type checker separates quantum from classical wires at
    the API level (the paper's [Qubit] vs [Bit] distinction, §4.3.2). *)

type t = int

type ty = Q | C

let ty_name = function Q -> "qubit" | C -> "bit"

(** A typed wire endpoint, as occurring in circuit aritys and shape
    witnesses. *)
type endpoint = { wire : t; ty : ty }

let qw wire = { wire; ty = Q }
let cw wire = { wire; ty = C }

type qubit = Qubit of t
type bit = Bit of t

let qubit_wire (Qubit w) = w
let bit_wire (Bit w) = w

let pp_endpoint ppf e =
  Fmt.pf ppf "%s %d" (match e.ty with Q -> "Q" | C -> "C") e.wire

let pp_qubit ppf (Qubit w) = Fmt.pf ppf "q%d" w
let pp_bit ppf (Bit w) = Fmt.pf ppf "c%d" w
