(** Wires: the horizontal lines of a circuit diagram.

    A wire is identified by an integer and carries either quantum or
    classical data — Quipper's extended circuit model freely mixes the two
    (paper §4.2.3). Wire identities are stable for the lifetime of a
    circuit-building run: a measurement keeps the wire id but flips its
    type from {!Q} to {!C}.

    {!qubit} and {!bit} are the typed handles user programs hold,
    separating quantum from classical wires in the host type system (the
    paper's [Qubit] vs [Bit], §4.3.2). Their constructors are exposed so
    that run functions and tests can relate handles to raw wires; user
    code should treat them as abstract and never forge them. *)

type t = int
(** A wire identifier. *)

(** The two kinds of data a wire can carry. *)
type ty = Q | C

val ty_name : ty -> string

type endpoint = { wire : t; ty : ty }
(** A typed wire occurrence, as used in circuit aritys and shape
    witnesses. *)

val qw : t -> endpoint
(** Quantum endpoint on the given wire. *)

val cw : t -> endpoint
(** Classical endpoint on the given wire. *)

type qubit = Qubit of t
(** A handle to a quantum wire. *)

type bit = Bit of t
(** A handle to a classical wire. *)

val qubit_wire : qubit -> t
val bit_wire : bit -> t

val pp_endpoint : Format.formatter -> endpoint -> unit
val pp_qubit : Format.formatter -> qubit -> unit
val pp_bit : Format.formatter -> bit -> unit
