lib/math/bitvec.ml: Array Fmt List
