lib/math/bitvec.mli: Format
