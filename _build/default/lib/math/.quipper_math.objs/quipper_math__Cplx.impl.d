lib/math/cplx.ml: Float Fmt
