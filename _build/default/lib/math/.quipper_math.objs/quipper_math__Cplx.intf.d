lib/math/cplx.mli: Format
