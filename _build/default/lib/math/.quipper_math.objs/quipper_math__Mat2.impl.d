lib/math/mat2.ml: Array Cplx Float Fmt
