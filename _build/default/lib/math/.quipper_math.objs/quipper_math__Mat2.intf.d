lib/math/mat2.mli: Cplx Format
