lib/math/rng.ml: Int64
