lib/math/rng.mli:
