(** Fixed-width bit vectors.

    Classical values flowing through the library — oracle inputs, integer
    parameters of quantum registers, basis-state labels — are fixed-width
    little-endian bit vectors. Index 0 is the least-significant bit. Widths
    up to 62 bits round-trip through native [int]s; the vector itself may be
    arbitrarily wide. *)

type t = { width : int; bits : bool array }

let width t = t.width

let create width value =
  if width < 0 then invalid_arg "Bitvec.create: negative width";
  { width; bits = Array.make width value }

let zeros width = create width false
let ones width = create width true

let of_list l = { width = List.length l; bits = Array.of_list l }
let to_list t = Array.to_list t.bits

let of_array a = { width = Array.length a; bits = Array.copy a }
let to_array t = Array.copy t.bits

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Bitvec.get: index out of bounds";
  t.bits.(i)

let set t i v =
  if i < 0 || i >= t.width then invalid_arg "Bitvec.set: index out of bounds";
  let bits = Array.copy t.bits in
  bits.(i) <- v;
  { t with bits }

(** [of_int ~width n]: little-endian binary encoding of the non-negative
    [n] (reduced mod 2^width when [width <= 62]; wider vectors are
    zero-extended above bit 61). *)
let of_int ~width n =
  if width < 0 then invalid_arg "Bitvec.of_int: width";
  if n < 0 then invalid_arg "Bitvec.of_int: negative value";
  { width; bits = Array.init width (fun i -> i <= 61 && (n lsr i) land 1 = 1) }

(** [to_int t]: the integer whose little-endian encoding is [t]. Fails if
    a set bit lies above position 61 (unrepresentable in a native int). *)
let to_int t =
  let v = ref 0 in
  for i = t.width - 1 downto 0 do
    if t.bits.(i) then
      if i > 61 then invalid_arg "Bitvec.to_int: too wide"
      else v := !v lor (1 lsl i)
  done;
  !v

let equal a b = a.width = b.width && a.bits = b.bits

let lognot t = { t with bits = Array.map not t.bits }

let map2 op a b =
  if a.width <> b.width then invalid_arg "Bitvec: width mismatch";
  { width = a.width; bits = Array.init a.width (fun i -> op a.bits.(i) b.bits.(i)) }

let logxor = map2 (fun x y -> x <> y)
let logand = map2 (fun x y -> x && y)
let logor = map2 (fun x y -> x || y)

(** Parity (xor-fold) of all bits. *)
let parity t = Array.fold_left (fun acc b -> acc <> b) false t.bits

let popcount t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.bits

let append a b =
  { width = a.width + b.width; bits = Array.append a.bits b.bits }

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.width then
    invalid_arg "Bitvec.sub";
  { width = len; bits = Array.sub t.bits pos len }

(** Rotate left by [k] (towards higher indices), as used by the mod-(2^l - 1)
    doubling trick in the Triangle Finding oracle. *)
let rotate_left t k =
  let w = t.width in
  if w = 0 then t
  else
    let k = ((k mod w) + w) mod w in
    { width = w; bits = Array.init w (fun i -> t.bits.(((i - k) mod w + w) mod w)) }

let pp ppf t =
  (* print MSB first, as humans read binary *)
  for i = t.width - 1 downto 0 do
    Fmt.pf ppf "%c" (if t.bits.(i) then '1' else '0')
  done

let to_string = Fmt.to_to_string pp
