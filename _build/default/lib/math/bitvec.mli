(** Fixed-width little-endian bit vectors: the classical values flowing
    through the library — oracle inputs, integer parameters of quantum
    registers, basis-state labels. Index 0 is the least-significant bit. *)

type t

val width : t -> int
val create : int -> bool -> t
val zeros : int -> t
val ones : int -> t
val of_list : bool list -> t
val to_list : t -> bool list
val of_array : bool array -> t
val to_array : t -> bool array
val get : t -> int -> bool
val set : t -> int -> bool -> t

val of_int : width:int -> int -> t
(** Little-endian encoding of a non-negative integer (reduced mod 2^width
    when [width <= 62]; zero-extended above bit 61 otherwise). *)

val to_int : t -> int
(** Fails if a set bit lies above position 61. *)

val equal : t -> t -> bool
val lognot : t -> t
val logxor : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val parity : t -> bool
val popcount : t -> int
val append : t -> t -> t
val sub : t -> int -> int -> t

val rotate_left : t -> int -> t
(** Rotate towards higher indices — doubling when arithmetic is taken
    modulo 2^width - 1 (the Triangle Finding oracle's trick). *)

val pp : Format.formatter -> t -> unit
(** Most-significant bit first. *)

val to_string : t -> string
