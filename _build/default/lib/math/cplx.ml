(** Complex numbers, specialised for quantum amplitudes.

    A tiny unboxed-record complex arithmetic kernel. [Stdlib.Complex] exists
    but lacks the handful of helpers the simulators want ([norm2] without a
    square root, approximate equality with a tolerance, phase factors), so we
    keep our own minimal module with the exact operations the statevector
    simulator performs in its inner loops. *)

type t = { re : float; im : float }

let make re im = { re; im }
let zero = { re = 0.0; im = 0.0 }
let one = { re = 1.0; im = 0.0 }
let i = { re = 0.0; im = 1.0 }
let re t = t.re
let im t = t.im
let of_float re = { re; im = 0.0 }

let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }
let neg a = { re = -.a.re; im = -.a.im }
let conj a = { re = a.re; im = -.a.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im);
    im = (a.re *. b.im) +. (a.im *. b.re) }

let smul s a = { re = s *. a.re; im = s *. a.im }

(** [norm2 a] is |a|^2, the Born-rule probability weight of amplitude [a]. *)
let norm2 a = (a.re *. a.re) +. (a.im *. a.im)

let norm a = sqrt (norm2 a)

let div a b =
  let d = norm2 b in
  { re = ((a.re *. b.re) +. (a.im *. b.im)) /. d;
    im = ((a.im *. b.re) -. (a.re *. b.im)) /. d }

(** [polar r theta] is [r * exp(i*theta)]. *)
let polar r theta = { re = r *. cos theta; im = r *. sin theta }

(** [cis theta] is the unit phase [exp(i*theta)]. *)
let cis theta = polar 1.0 theta

let is_zero ?(eps = 1e-12) a = norm2 a < eps *. eps

let equal ?(eps = 1e-9) a b =
  Float.abs (a.re -. b.re) <= eps && Float.abs (a.im -. b.im) <= eps

let pp ppf a =
  if Float.abs a.im < 1e-12 then Fmt.pf ppf "%g" a.re
  else if Float.abs a.re < 1e-12 then Fmt.pf ppf "%gi" a.im
  else Fmt.pf ppf "%g%+gi" a.re a.im

let to_string = Fmt.to_to_string pp
