(** Complex numbers, specialised for quantum amplitudes: a minimal kernel
    with the operations the simulators use in their inner loops. *)

type t = { re : float; im : float }

val make : float -> float -> t
val zero : t
val one : t
val i : t
val re : t -> float
val im : t -> float
val of_float : float -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val conj : t -> t
val mul : t -> t -> t
val smul : float -> t -> t

val norm2 : t -> float
(** |a|^2: the Born-rule probability weight. *)

val norm : t -> float
val div : t -> t -> t

val polar : float -> float -> t
(** [polar r theta] = r e^{i theta}. *)

val cis : float -> t
(** The unit phase e^{i theta}. *)

val is_zero : ?eps:float -> t -> bool
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
