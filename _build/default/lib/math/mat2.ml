(** 2x2 and 4x4 complex matrices: the unitary semantics of primitive gates.

    The statevector simulator applies gates directly with specialised loops,
    but tests, the decomposition passes, and gate-semantics checks need the
    actual matrices (e.g. to verify that the Binary decomposition of a Toffoli
    into controlled-V gates multiplies out to the original unitary). *)

type t = Cplx.t array array (* row-major, square *)

let dim (m : t) = Array.length m

let make n f : t = Array.init n (fun r -> Array.init n (fun c -> f r c))

let identity n = make n (fun r c -> if r = c then Cplx.one else Cplx.zero)

let of_rows rows : t =
  let n = Array.length rows in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Mat2.of_rows") rows;
  Array.map Array.copy rows

let get (m : t) r c = m.(r).(c)

let mul (a : t) (b : t) : t =
  let n = dim a in
  if dim b <> n then invalid_arg "Mat2.mul: dimension mismatch";
  make n (fun r c ->
      let acc = ref Cplx.zero in
      for k = 0 to n - 1 do
        acc := Cplx.add !acc (Cplx.mul a.(r).(k) b.(k).(c))
      done;
      !acc)

let adjoint (m : t) : t =
  let n = dim m in
  make n (fun r c -> Cplx.conj m.(c).(r))

(** Kronecker product; [kron a b] acts on the tensor of a's space (high bits)
    with b's space (low bits). *)
let kron (a : t) (b : t) : t =
  let na = dim a and nb = dim b in
  make (na * nb) (fun r c ->
      Cplx.mul a.(r / nb).(c / nb) b.(r mod nb).(c mod nb))

let smul s (m : t) : t = Array.map (Array.map (Cplx.mul s)) m

let equal ?(eps = 1e-9) (a : t) (b : t) =
  dim a = dim b
  && (let ok = ref true in
      Array.iteri
        (fun r row ->
          Array.iteri (fun c x -> if not (Cplx.equal ~eps x b.(r).(c)) then ok := false) row)
        a;
      !ok)

(** Equality up to a global phase, the physically meaningful notion. *)
let equal_up_to_phase ?(eps = 1e-9) (a : t) (b : t) =
  dim a = dim b
  &&
  (* find the first non-negligible entry of [a] and derive the phase *)
  let n = dim a in
  let phase = ref None in
  (try
     for r = 0 to n - 1 do
       for c = 0 to n - 1 do
         if !phase = None && not (Cplx.is_zero ~eps:1e-6 a.(r).(c)) then begin
           if Cplx.is_zero ~eps:1e-6 b.(r).(c) then raise Exit;
           phase := Some (Cplx.div b.(r).(c) a.(r).(c))
         end
       done
     done
   with Exit -> ());
  match !phase with
  | None -> equal ~eps a b
  | Some p ->
      Float.abs (Cplx.norm p -. 1.0) <= 1e-6 && equal ~eps (smul p a) b

(* Standard gate matrices *)

let sqrt2inv = 1.0 /. sqrt 2.0

let pauli_x : t =
  of_rows [| [| Cplx.zero; Cplx.one |]; [| Cplx.one; Cplx.zero |] |]

let pauli_y : t =
  of_rows [| [| Cplx.zero; Cplx.neg Cplx.i |]; [| Cplx.i; Cplx.zero |] |]

let pauli_z : t =
  of_rows [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.neg Cplx.one |] |]

let hadamard : t =
  of_rows
    [| [| Cplx.of_float sqrt2inv; Cplx.of_float sqrt2inv |];
       [| Cplx.of_float sqrt2inv; Cplx.of_float (-.sqrt2inv) |] |]

let phase_s : t =
  of_rows [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.i |] |]

let phase_t : t =
  of_rows
    [| [| Cplx.one; Cplx.zero |];
       [| Cplx.zero; Cplx.cis (Float.pi /. 4.0) |] |]

(** V = sqrt(X), the square root of NOT; the paper's Binary decomposition of
    Toffoli gates uses controlled-V and controlled-V*. *)
let sqrt_not : t =
  let h = Cplx.make 0.5 0.5 and hc = Cplx.make 0.5 (-0.5) in
  of_rows [| [| h; hc |]; [| hc; h |] |]

(** e^{-iZt}: the diffusion phase gate of the Binary Welded Tree timestep. *)
let exp_minus_izt t : t =
  of_rows
    [| [| Cplx.cis (-.t); Cplx.zero |]; [| Cplx.zero; Cplx.cis t |] |]

let rot_x theta : t =
  let c = Cplx.of_float (cos (theta /. 2.0)) in
  let s = Cplx.make 0.0 (-.sin (theta /. 2.0)) in
  of_rows [| [| c; s |]; [| s; c |] |]

let rot_z theta : t =
  of_rows
    [| [| Cplx.cis (-.theta /. 2.0); Cplx.zero |];
       [| Cplx.zero; Cplx.cis (theta /. 2.0) |] |]

(** The W gate of the Binary Welded Tree algorithm: a two-qubit gate that maps
    |01> -> (|01>+|10>)/sqrt 2, |10> -> (|01>-|10>)/sqrt 2 and fixes |00>,
    |11>. Basis order |ab> with a the first wire (high bit). *)
let w_gate : t =
  let s = Cplx.of_float sqrt2inv in
  of_rows
    [| [| Cplx.one; Cplx.zero; Cplx.zero; Cplx.zero |];
       [| Cplx.zero; s; s; Cplx.zero |];
       [| Cplx.zero; s; Cplx.neg s; Cplx.zero |];
       [| Cplx.zero; Cplx.zero; Cplx.zero; Cplx.one |] |]

let pp ppf (m : t) =
  let n = dim m in
  for r = 0 to n - 1 do
    Fmt.pf ppf "[";
    for c = 0 to n - 1 do
      if c > 0 then Fmt.pf ppf ", ";
      Cplx.pp ppf m.(r).(c)
    done;
    Fmt.pf ppf "]@\n"
  done
