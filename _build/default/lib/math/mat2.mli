(** Small dense complex matrices: the unitary semantics of primitive
    gates, used by the simulators, decomposition tests and gate-algebra
    checks. *)

type t = Cplx.t array array

val dim : t -> int
val make : int -> (int -> int -> Cplx.t) -> t
val identity : int -> t
val of_rows : Cplx.t array array -> t
val get : t -> int -> int -> Cplx.t
val mul : t -> t -> t
val adjoint : t -> t

val kron : t -> t -> t
(** [kron a b]: [a] on the high bits, [b] on the low bits. *)

val smul : Cplx.t -> t -> t
val equal : ?eps:float -> t -> t -> bool

val equal_up_to_phase : ?eps:float -> t -> t -> bool
(** The physically meaningful equality. *)

(** {1 Standard gate matrices} *)

val pauli_x : t
val pauli_y : t
val pauli_z : t
val hadamard : t
val phase_s : t
val phase_t : t

val sqrt_not : t
(** V = sqrt(X): the paper's Binary decomposition of Toffoli uses
    controlled-V / V*. *)

val exp_minus_izt : float -> t
(** The diffusion phase gate of the Binary Welded Tree timestep. *)

val rot_x : float -> t
val rot_z : float -> t

val w_gate : t
(** The W gate of the BWT algorithm: H on the odd-parity two-qubit
    subspace, identity on |00> and |11>. *)

val pp : Format.formatter -> t -> unit
