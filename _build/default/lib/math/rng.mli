(** Deterministic pseudo-random numbers (splitmix64).

    Quantum measurement is probabilistic, but tests and benchmarks must be
    reproducible, so every measurement in the simulators draws from an
    explicitly-seeded generator. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound); rejection-sampled, no modulo bias. *)

val bool : t -> bool
