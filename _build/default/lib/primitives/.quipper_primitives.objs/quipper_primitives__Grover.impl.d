lib/primitives/grover.ml: Circ Float Fun List Quipper Wire
