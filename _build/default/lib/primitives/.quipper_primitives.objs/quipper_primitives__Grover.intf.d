lib/primitives/grover.mli: Circ Quipper Wire
