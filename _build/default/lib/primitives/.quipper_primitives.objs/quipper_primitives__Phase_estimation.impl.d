lib/primitives/phase_estimation.ml: Array Circ Fun List Qft Quipper Quipper_arith
