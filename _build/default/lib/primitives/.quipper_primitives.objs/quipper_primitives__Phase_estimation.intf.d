lib/primitives/phase_estimation.mli: Circ Quipper Quipper_arith
