lib/primitives/qft.ml: Array Circ Fun List Quipper Quipper_arith
