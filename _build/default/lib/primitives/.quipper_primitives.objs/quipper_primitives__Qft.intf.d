lib/primitives/qft.mli: Circ Quipper Quipper_arith
