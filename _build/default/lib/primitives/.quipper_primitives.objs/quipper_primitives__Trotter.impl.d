lib/primitives/trotter.ml: Array Circ Float Fun List Quipper Wire
