lib/primitives/trotter.mli: Circ Quipper Wire
