lib/primitives/walk.ml: Circ Grover Quipper Quipper_arith Wire
