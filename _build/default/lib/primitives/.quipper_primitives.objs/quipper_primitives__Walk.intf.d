lib/primitives/walk.mli: Circ Quipper Quipper_arith Wire
