(** Amplitude amplification / Grover search (§3.1).

    The generic machinery behind several of the seven algorithms: given a
    phase oracle (flip the sign of the marked states), iterate
    (oracle; diffusion) about pi/4 * sqrt(N/M) times. The diffusion
    operator is implemented in the standard H / X / multi-controlled-Z / X
    / H sandwich, with the multi-controlled Z realised as a
    multi-controlled not conjugated by a Hadamard on the last qubit. *)

open Quipper
open Circ

(** Phase-flip the |11...1> state of [qs]: a Z on the last qubit controlled
    by all the others. *)
let phase_flip_all_ones (qs : Wire.qubit list) : unit Circ.t =
  match List.rev qs with
  | [] -> global_phase Float.pi
  | last :: rest ->
      let* _ = gate_Z last |> controlled (List.map ctl rest) in
      return ()

(** The Grover diffusion operator ("inversion about the mean") on a
    register, in place. *)
let diffusion (qs : Wire.qubit list) : unit Circ.t =
  let* () = iterm hadamard_ qs in
  let* () = iterm qnot_ qs in
  let* () = phase_flip_all_ones qs in
  let* () = iterm qnot_ qs in
  iterm hadamard_ qs

(** Number of Grover iterations for [n] qubits with [marked] solutions. *)
let iterations ~n ~marked =
  if marked <= 0 then 0
  else
    let nn = Float.of_int (1 lsl n) and m = Float.of_int marked in
    max 1 (int_of_float (Float.round (Float.pi /. 4.0 *. sqrt (nn /. m))))

(** Full Grover search: prepare the uniform superposition, iterate the
    phase [oracle] and the diffusion. The oracle receives the register and
    must flip the phase of marked basis states (e.g. via
    [Quipper_template.Oracle.classical_to_phase]). *)
let search ~(iterations : int) (oracle : Wire.qubit list -> unit Circ.t)
    (qs : Wire.qubit list) : unit Circ.t =
  let* () = iterm hadamard_ qs in
  iterm
    (fun _ ->
      let* () = oracle qs in
      diffusion qs)
    (List.init iterations Fun.id)
