(** Amplitude amplification / Grover search (paper §3.1). *)

open Quipper

val phase_flip_all_ones : Wire.qubit list -> unit Circ.t
(** Phase-flip the |1...1> component. *)

val diffusion : Wire.qubit list -> unit Circ.t
(** Inversion about the mean, in place. *)

val iterations : n:int -> marked:int -> int
(** ~ pi/4 sqrt(2^n / marked). *)

val search :
  iterations:int ->
  (Wire.qubit list -> unit Circ.t) ->
  Wire.qubit list ->
  unit Circ.t
(** Prepare the uniform superposition, iterate the phase oracle and
    diffusion. *)
