(** Quantum phase estimation (§3.1).

    Estimates the eigenphase of a unitary U on an eigenvector |u>: prepare
    a t-qubit counting register in uniform superposition, apply
    controlled-U^(2^k) for each counting qubit k, then the inverse QFT on
    the counting register. The caller supplies U as a circuit-producing
    function and (for efficiency) may supply a fast power; by default
    U^(2^k) is 2^k sequential applications, which is what generic quantum
    simulation of Hamiltonians does anyway (Trotterized time slices). *)

open Quipper
open Circ

(** [estimate ~bits ~u target]: returns the counting register (to be
    measured by the caller; little-endian, the estimated phase is
    [value / 2^bits] of a turn). [u ~power target] must apply U^power to
    the target, and will be called with powers 1, 2, 4, ..., each wrapped
    in a control on one counting qubit. *)
let estimate ~(bits : int) ~(u : power:int -> unit Circ.t) :
    Quipper_arith.Qureg.t Circ.t =
  let* counting = Quipper_arith.Qureg.init_zero ~width:bits in
  let* () = Quipper_arith.Qureg.hadamard_all counting in
  let* () =
    iterm
      (fun k ->
        u ~power:(1 lsl k) |> controlled [ ctl counting.(k) ])
      (List.init bits Fun.id)
  in
  let* () = Qft.qft_inverse counting in
  return counting
