(** Quantum phase estimation (paper §3.1): uniform counting register,
    controlled-U^{2^k} ladder, inverse QFT. *)

open Quipper

val estimate :
  bits:int -> u:(power:int -> unit Circ.t) -> Quipper_arith.Qureg.t Circ.t
(** Returns the counting register (measure it; the estimated phase is
    value / 2^bits of a turn). [u ~power] must apply U^power to its
    target and is called with powers 1, 2, 4, ..., each under one control. *)
