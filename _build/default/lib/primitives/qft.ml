(** The quantum Fourier transform (§3.1).

    Standard textbook construction: for each qubit, a Hadamard followed by
    controlled phase rotations R_k against the lower-order qubits, then a
    wire-order reversal. The register convention is little-endian,
    matching {!Quipper_arith.Qureg}. *)

open Quipper
open Circ

(** Apply the QFT to a little-endian register, in place. If [swaps] is
    false the final order-reversing swaps are skipped (callers that consume
    the output in reversed order, like phase estimation, save n/2 swap
    gates). *)
let qft ?(swaps = true) (r : Quipper_arith.Qureg.t) : unit Circ.t =
  let n = Array.length r in
  let rotate j : unit Circ.t =
    (* Hadamard on the j-th most significant, then controlled R_k's *)
    let tgt = r.(n - 1 - j) in
    let* () = hadamard_ tgt in
    iterm
      (fun k ->
        (* control: qubit k+1 positions below tgt *)
        let src = r.(n - 1 - j - k) in
        gate_R (k + 1) tgt |> controlled [ ctl src ])
      (List.init (n - 1 - j) (fun i -> i + 1))
  in
  let* () = iterm rotate (List.init n Fun.id) in
  if swaps then
    iterm (fun i -> swap r.(i) r.(n - 1 - i)) (List.init (n / 2) Fun.id)
  else return ()

(** Inverse QFT, in place. *)
let qft_inverse ?(swaps = true) (r : Quipper_arith.Qureg.t) : unit Circ.t =
  let w = Quipper_arith.Qureg.shape (Array.length r) in
  let* _ =
    reverse_simple w
      (fun r ->
        let* () = qft ~swaps r in
        return r)
      r
  in
  return ()
