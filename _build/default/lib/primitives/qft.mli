(** The quantum Fourier transform (paper §3.1): the textbook H +
    controlled-R_k construction on little-endian registers, verified
    against the DFT matrix by the test suite. *)

open Quipper

val qft : ?swaps:bool -> Quipper_arith.Qureg.t -> unit Circ.t
(** In place; [swaps:false] skips the final order-reversing swaps. *)

val qft_inverse : ?swaps:bool -> Quipper_arith.Qureg.t -> unit Circ.t
