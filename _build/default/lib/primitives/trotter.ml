(** Trotterized Hamiltonian simulation (§3.1, "quantum simulation"; §3.4
    "iteration (e.g., Trotterization)").

    A Hamiltonian is given as a sum of Pauli terms, H = sum_j c_j P_j with
    each P_j a tensor product of Pauli operators on a few qubits. One
    first-order Trotter step of duration dt applies exp(-i c_j P_j dt) for
    each term; the standard circuit conjugates an exp(-i Z t) rotation on
    the last involved qubit by basis changes (H for X, S†-H for Y) and a
    CNOT parity ladder. This is the workhorse of the Ground State
    Estimation algorithm. *)

open Quipper
open Circ

type pauli = I | X | Y | Z

type term = { coeff : float; paulis : (int * pauli) list }
(** [paulis]: (qubit index, operator), identity positions omitted. *)

type hamiltonian = { nqubits : int; terms : term list }

let basis_in (q : Wire.qubit) = function
  | X -> hadamard_ q
  | Y ->
      (* rotate Y eigenbasis to Z: apply S† then H *)
      let* () = gate_S_inv q in
      hadamard_ q
  | Z | I -> return ()

let basis_out (q : Wire.qubit) = function
  | X -> hadamard_ q
  | Y ->
      let* () = hadamard_ q in
      let* _ = gate_S q in
      return ()
  | Z | I -> return ()

(** Apply exp(-i * coeff * P * dt) for one Pauli term. *)
let exp_pauli_term (qs : Wire.qubit array) (t : term) ~(dt : float) : unit Circ.t =
  let involved = List.filter (fun (_, p) -> p <> I) t.paulis in
  match involved with
  | [] -> global_phase (-.(t.coeff *. dt))
  | _ ->
      let wires = List.map (fun (i, p) -> (qs.(i), p)) involved in
      let* () = iterm (fun (q, p) -> basis_in q p) wires in
      (* parity ladder onto the last wire *)
      let rec ladder = function
        | [ (last, _) ] -> return last
        | (q, _) :: tl ->
            let* target = ladder tl in
            let* () = cnot ~control:q ~target in
            return target
        | [] -> assert false
      in
      let* last = ladder wires in
      let* () = rot_expZt (t.coeff *. dt) last in
      (* undo ladder *)
      let rec unladder = function
        | [ _ ] -> return ()
        | (q, _) :: tl ->
            let target, _ = List.nth tl (List.length tl - 1) in
            let* () = unladder tl in
            cnot ~control:q ~target
        | [] -> assert false
      in
      let* () = unladder wires in
      iterm (fun (q, p) -> basis_out q p) wires

(** One first-order Trotter step exp(-i H dt) ~ prod_j exp(-i c_j P_j dt). *)
let step (h : hamiltonian) (qs : Wire.qubit array) ~(dt : float) : unit Circ.t =
  iterm (fun t -> exp_pauli_term qs t ~dt) h.terms

(** [evolve h qs ~time ~steps]: exp(-i H time) via [steps] Trotter slices. *)
let evolve (h : hamiltonian) (qs : Wire.qubit array) ~(time : float)
    ~(steps : int) : unit Circ.t =
  let dt = time /. Float.of_int steps in
  iterm (fun _ -> step h qs ~dt) (List.init steps Fun.id)
