(** Trotterized Hamiltonian simulation (paper §3.1, §3.4): Hamiltonians
    as sums of Pauli terms; exp(-i c P dt) by the standard basis-change /
    CNOT-ladder / exp(-iZt) construction. The workhorse of Ground State
    Estimation. *)

open Quipper

type pauli = I | X | Y | Z

type term = { coeff : float; paulis : (int * pauli) list }
(** Identity positions omitted. *)

type hamiltonian = { nqubits : int; terms : term list }

val exp_pauli_term : Wire.qubit array -> term -> dt:float -> unit Circ.t
val step : hamiltonian -> Wire.qubit array -> dt:float -> unit Circ.t

val evolve :
  hamiltonian -> Wire.qubit array -> time:float -> steps:int -> unit Circ.t
(** exp(-i H time) by first-order Trotter slices. *)
