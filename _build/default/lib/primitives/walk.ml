(** Quantum walk building blocks (§3.1).

    Two styles appear in the paper's algorithm suite: continuous-time walks
    simulated by Trotterizing the graph Hamiltonian (Binary Welded Tree),
    and discrete Grover-based walks over a product state space (Triangle
    Finding's walk on the Hamming graph). The pieces shared by both live
    here; the algorithm-specific steps live with their algorithms. *)

open Quipper
open Circ

(** Diffusion of a choice register: Hadamard everything — the a7_DIFFUSE
    step of §5.3.2, which "arbitrarily chooses" an index and a node by
    placing the registers in uniform superposition. *)
let diffuse (r : Quipper_arith.Qureg.t) : unit Circ.t =
  Quipper_arith.Qureg.hadamard_all r

(** A coined discrete-time walk step on a cycle of 2^n nodes: one Hadamard
    coin, then a controlled increment / decrement of the position register.
    Small enough to simulate, rich enough to exercise arithmetic under
    quantum control — used by tests and an example. *)
let cycle_step ~(coin : Wire.qubit) ~(pos : Quipper_arith.Qureg.t) : unit Circ.t =
  let* _ = hadamard coin in
  let* () = Quipper_arith.Qdint.increment pos |> controlled [ ctl coin ] in
  Quipper_arith.Qdint.decrement pos |> controlled [ ctl_neg coin ]

(** Reflection about the uniform superposition of a register — the
    "inversion about the mean" reflection used between walk segments. *)
let reflect_uniform (r : Quipper_arith.Qureg.t) : unit Circ.t =
  Grover.diffusion (Quipper_arith.Qureg.to_list r)
