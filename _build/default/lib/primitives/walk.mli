(** Quantum walk building blocks (paper §3.1) shared by the
    algorithm-specific walks. *)

open Quipper

val diffuse : Quipper_arith.Qureg.t -> unit Circ.t
(** Hadamard a choice register into uniform superposition — the
    a7_DIFFUSE step of §5.3.2. *)

val cycle_step : coin:Wire.qubit -> pos:Quipper_arith.Qureg.t -> unit Circ.t
(** One coined discrete-time walk step on a cycle: Hadamard coin,
    controlled increment/decrement. *)

val reflect_uniform : Quipper_arith.Qureg.t -> unit Circ.t
