lib/qcl/bwt_qcl.ml: Algo_bwt Array Circ Circuit Fun List Qcl Quipper Quipper_arith Wire
