lib/qcl/bwt_qcl.mli: Algo_bwt Circ Circuit Qcl Quipper Quipper_arith Wire
