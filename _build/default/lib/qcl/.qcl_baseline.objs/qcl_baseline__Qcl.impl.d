lib/qcl/qcl.ml: Array Circ Fun Gate List Quipper Quipper_arith Wire
