lib/qcl/qcl.mli: Circ Gate Quipper Quipper_arith Wire
