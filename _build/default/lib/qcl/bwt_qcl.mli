(** The Binary Welded Tree algorithm generated QCL-style — the "QCL
    direct" column of the paper's §6 table. Same algorithm as
    {!Algo_bwt}, same parameters, same Figure-1 diffusion; an order of
    magnitude more gates, which is the experiment's point. *)

open Quipper

type params = Algo_bwt.params = { n : int; s : int; dt : float }

val default_params : params

val oracle_forward :
  Qcl.heap ->
  p:params ->
  color:int ->
  Quipper_arith.Qureg.t ->
  Quipper_arith.Qureg.t ->
  Wire.qubit ->
  unit Circ.t

val oracle_backward :
  Qcl.heap ->
  p:params ->
  color:int ->
  Quipper_arith.Qureg.t ->
  Quipper_arith.Qureg.t ->
  Wire.qubit ->
  unit Circ.t
(** QCL obtains the inverse by running the self-inverse computation
    again, at full cost. *)

val timestep :
  Qcl.heap -> dt:float -> Quipper_arith.Qureg.t -> Quipper_arith.Qureg.t ->
  Wire.qubit -> unit Circ.t

val whole : p:params -> Wire.bit array Circ.t
val generate : ?p:params -> unit -> Circuit.b
