lib/sim/classical.ml: Array Circ Circuit Errors Fmt Fun Gate Hashtbl List Qdata Quipper Wire
