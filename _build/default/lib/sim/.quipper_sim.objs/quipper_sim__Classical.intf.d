lib/sim/classical.mli: Circ Circuit Gate Qdata Quipper Wire
