lib/sim/clifford.ml: Array Bytes Circ Circuit Errors Fmt Fun Gate Hashtbl List Qdata Quipper Quipper_math Wire
