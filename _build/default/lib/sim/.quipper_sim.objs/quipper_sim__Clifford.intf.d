lib/sim/clifford.mli: Circ Circuit Gate Qdata Quipper Wire
