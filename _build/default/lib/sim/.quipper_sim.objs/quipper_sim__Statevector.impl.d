lib/sim/statevector.ml: Array Circ Circuit Cplx Errors Fmt Fun Gate Hashtbl List Mat2 Qdata Quipper Quipper_math Wire
