lib/sim/statevector.mli: Circ Circuit Gate Qdata Quipper Quipper_math Wire
