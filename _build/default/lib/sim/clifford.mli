(** Stabilizer (Clifford) simulation after Aaronson–Gottesman's CHP: the
    paper's [run_clifford_generic] (§4.4.5). Circuits from H, S, CNOT,
    the Paulis, swap and V simulate in polynomial time; qubits allocate
    dynamically, assertive terminations verify determinism of the
    asserted outcome. *)

open Quipper

type state

val create : ?seed:int -> unit -> state
val read_bit : state -> Wire.t -> bool

val apply_gate : state -> Gate.t -> unit
(** Raises [Simulation _] on non-Clifford gates (T, rotations,
    multiply-controlled gates) and subroutine calls. *)

val run_fun :
  ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r

val measure_and_read : state -> ('b, 'q, 'c) Qdata.t -> 'q -> 'b
val run_circuit : ?seed:int -> Circuit.b -> bool list -> state
