lib/template/build.ml: Circ List Quipper Wire
