lib/template/build.mli: Circ Quipper Wire
