lib/template/oracle.ml: Circ List Qdata Quipper Wire
