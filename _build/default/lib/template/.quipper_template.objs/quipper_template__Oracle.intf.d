lib/template/oracle.mli: Circ Qdata Quipper Wire
