(** The circuit-lifting DSL: our substitute for [build_circuit] (§4.6.1).

    The paper lifts classical Haskell programs into circuit-generating
    functions with Template Haskell: every boolean operation of the source
    becomes a gate on fresh "scratch space" qubits. OCaml has no Template
    Haskell, so we expose the *target* of that translation directly: a
    library of lifted boolean operations on qubits. A classical program
    written against these operators (plain OCaml control flow over values
    of type [Wire.qubit]) *is* its own template — steps 2 and 3 of the
    paper's four-step oracle recipe (classical program → classical circuit
    → quantum circuit with scratch ancillas) happen as the program runs,
    and step 4 is [Oracle.classical_to_reversible].

    Every operation allocates fresh output qubits and never mutates its
    arguments, so lifted code is referentially transparent exactly like the
    classical program it mirrors; all intermediate qubits are collected by
    the enclosing [with_computed]/[classical_to_reversible]. *)

open Quipper
open Circ

type bool_q = Wire.qubit

(** A lifted boolean constant. *)
let bconst (v : bool) : bool_q t = qinit_bit v

(** Logical not: fresh q = 1 XOR a. *)
let bnot (a : bool_q) : bool_q t =
  let* q = qinit_bit true in
  let* () = cnot ~control:a ~target:q in
  return q

(** Exclusive or: fresh q = a XOR b (the paper's [bool_xor]). *)
let bxor (a : bool_q) (b : bool_q) : bool_q t =
  let* q = qinit_bit false in
  let* () = cnot ~control:a ~target:q in
  let* () = cnot ~control:b ~target:q in
  return q

(** Conjunction: fresh q = a AND b, one Toffoli. *)
let band (a : bool_q) (b : bool_q) : bool_q t =
  let* q = qinit_bit false in
  let* () = toffoli ~c1:a ~c2:b ~target:q in
  return q

(** Disjunction via De Morgan: q = NOT (NOT a AND NOT b) — one
    negatively-controlled Toffoli on a |1>-initialised ancilla. *)
let bor (a : bool_q) (b : bool_q) : bool_q t =
  let* q = qinit_bit true in
  let* () = qnot_ q |> controlled [ ctl_neg a; ctl_neg b ] in
  return q

(** Equivalence: q = NOT (a XOR b). *)
let beq (a : bool_q) (b : bool_q) : bool_q t =
  let* q = qinit_bit true in
  let* () = cnot ~control:a ~target:q in
  let* () = cnot ~control:b ~target:q in
  return q

(** Multiplexer: q = if c then t else e. *)
let bif (c : bool_q) ~(then_ : bool_q) ~(else_ : bool_q) : bool_q t =
  let* q = qinit_bit false in
  let* () = toffoli ~c1:c ~c2:then_ ~target:q in
  let* () = qnot_ q |> controlled [ ctl_neg c; ctl else_ ] in
  return q

(** n-ary conjunction: one multiply-controlled not. *)
let band_list (l : bool_q list) : bool_q t =
  match l with
  | [] -> bconst true
  | l ->
      let* q = qinit_bit false in
      let* () = qnot_ q |> controlled (List.map ctl l) in
      return q

(** n-ary disjunction. *)
let bor_list (l : bool_q list) : bool_q t =
  match l with
  | [] -> bconst false
  | l ->
      let* q = qinit_bit true in
      let* () = qnot_ q |> controlled (List.map ctl_neg l) in
      return q

(** n-ary xor: CNOT cascade into one fresh qubit. *)
let bxor_list (l : bool_q list) : bool_q t =
  let* q = qinit_bit false in
  let* () = iterm (fun a -> cnot ~control:a ~target:q) l in
  return q

(** The parity function of §4.6.1, lifted: the recursion is ordinary OCaml
    recursion, the xor is the lifted [bxor]. Applied to a list of [n]
    qubits it produces the circuit of the paper's figure: n-1 fresh wires
    of which the last is the output and the rest are scratch. *)
let rec parity (as_ : bool_q list) : bool_q t =
  match as_ with
  | [] -> bconst false
  | [ h ] -> return h (* as in the paper: [f [h] = h], no fresh wire *)
  | h :: t ->
      let* rest = parity t in
      bxor h rest
