(** The circuit-lifting DSL: our substitute for the paper's
    [build_circuit] (§4.6.1).

    The paper lifts classical Haskell programs into circuit-generating
    functions with Template Haskell; we expose the {e target} of that
    translation directly — lifted boolean operations on qubits. A
    classical program written against these operators (ordinary OCaml
    control flow over [Wire.qubit] values) {e is} its own template: steps
    2 and 3 of the paper's oracle recipe happen as it runs, and step 4 is
    {!Oracle.classical_to_reversible}.

    Every operation allocates fresh output qubits and never mutates its
    arguments — lifted code is referentially transparent like the
    classical program it mirrors; intermediate qubits are collected by the
    enclosing [with_computed]. *)

open Quipper

type bool_q = Wire.qubit

val bconst : bool -> bool_q Circ.t
val bnot : bool_q -> bool_q Circ.t

val bxor : bool_q -> bool_q -> bool_q Circ.t
(** The paper's [bool_xor]. *)

val band : bool_q -> bool_q -> bool_q Circ.t
val bor : bool_q -> bool_q -> bool_q Circ.t
val beq : bool_q -> bool_q -> bool_q Circ.t

val bif : bool_q -> then_:bool_q -> else_:bool_q -> bool_q Circ.t
(** Multiplexer. *)

val band_list : bool_q list -> bool_q Circ.t
val bor_list : bool_q list -> bool_q Circ.t
val bxor_list : bool_q list -> bool_q Circ.t

val parity : bool_q list -> bool_q Circ.t
(** The paper's worked example: the parity recursion of §4.6.1, lifted.
    On [n] inputs it produces the paper's circuit exactly: n-1 fresh
    wires, the last one the output. *)
