(** Reversible oracle synthesis: step 4 of the paper's recipe (§4.6.1).

    [classical_to_reversible f] turns a circuit-generating function
    [f : a -> Circ b] (typically produced with the lifted operators of
    {!Build}) into the reversible (x, y) |-> (x, y XOR f(x)): compute
    [f x] with all its scratch space, CNOT the result into [y], and
    uncompute — every intermediate ancilla is returned to |0> and
    assertively terminated, which the simulators verify. *)

open Quipper
open Circ

(** The paper's
    [classical_to_reversible :: (Datable a, QCData b) => (a -> Circ b) -> (a,b) -> Circ (a,b)].
    [out] is the shape witness of [f]'s result (needed for the generic
    controlled-not). *)
let classical_to_reversible ~(out : ('b2, 'q2, 'c2) Qdata.t)
    (f : 'qa -> 'q2 t) ((x, y) : 'qa * 'q2) : ('qa * 'q2) t =
  let* () =
    with_computed (f x) (fun fx -> controlled_not out ~target:y ~source:fx)
  in
  return (x, y)

(** Phase-oracle form: flip the global phase (Z-style) when [f x] is true —
    the shape needed by Grover-type algorithms. Implemented as
    compute/Z/uncompute. *)
let classical_to_phase (f : 'qa -> Wire.qubit t) (x : 'qa) : 'qa t =
  let* () =
    with_computed (f x) (fun fx ->
        let* _ = gate_Z fx in
        return ())
  in
  return x

(** Compute [f], copy its result into fresh wires, uncompute: an
    out-of-place oracle whose output is freshly allocated (and hence
    independent of the input register). *)
let compute_copy_uncompute ~(out : ('b2, 'q2, 'c2) Qdata.t) (f : 'qa -> 'q2 t)
    (x : 'qa) : 'q2 t =
  with_computed (f x) (fun fx ->
      let* y = qinit out (out.Qdata.bbuild (List.map (fun _ -> false) out.Qdata.tys)) in
      let* () = controlled_not out ~target:y ~source:fx in
      return y)
