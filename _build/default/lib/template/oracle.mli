(** Reversible oracle synthesis: step 4 of the paper's recipe (§4.6.1). *)

open Quipper

val classical_to_reversible :
  out:('b2, 'q2, 'c2) Qdata.t ->
  ('qa -> 'q2 Circ.t) ->
  'qa * 'q2 ->
  ('qa * 'q2) Circ.t
(** The paper's [classical_to_reversible f : (a, b) -> (a, b XOR f a)]:
    compute [f] with all its scratch, CNOT the result into the target,
    uncompute — every ancilla returns to |0> and is assertively
    terminated (simulator-verified). *)

val classical_to_phase : ('qa -> Wire.qubit Circ.t) -> 'qa -> 'qa Circ.t
(** Phase-oracle form: flip the sign of marked basis states — the shape
    Grover-type algorithms need. *)

val compute_copy_uncompute :
  out:('b2, 'q2, 'c2) Qdata.t -> ('qa -> 'q2 Circ.t) -> 'qa -> 'q2 Circ.t
(** Compute, copy the result into fresh wires, uncompute: an out-of-place
    oracle whose output register is independent of the input. *)
