test/gen.ml: Array Circ Circuit List QCheck2 Qdata Quipper Wire
