test/test_allocate.ml: Alcotest Algo_tf Allocate Array Circ Circuit Gatecount Gen List QCheck2 QCheck_alcotest Qdata Quipper Quipper_math Quipper_sim
