test/test_alternatives.ml: Alcotest Algo_tf Array Circ Circuit Fmt Gatecount List Qdata Quipper Quipper_arith Quipper_math Quipper_sim
