test/test_arith.ml: Alcotest Algo_tf Circ Circuit Float Fmt Gatecount List QCheck2 QCheck_alcotest Qdata Quipper Quipper_arith Quipper_sim Stdlib
