test/test_core.ml: Alcotest Array Ascii Astring_contains Circ Circuit Errors Fun Gate Gatecount Gen List Printer QCheck2 QCheck_alcotest Qdata Quipper Quipper_sim Reverse Seq Transform Wire
