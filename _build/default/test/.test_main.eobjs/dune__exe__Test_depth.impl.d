test/test_depth.ml: Alcotest Algo_tf Array Circ Circuit Depth Fun Gatecount Gen List QCheck2 QCheck_alcotest Qdata Quipper
