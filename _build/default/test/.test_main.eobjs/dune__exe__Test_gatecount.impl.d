test/test_gatecount.ml: Alcotest Astring_contains Circ Circuit Fmt Gatecount Gen List QCheck2 QCheck_alcotest Qdata Quipper Sys
