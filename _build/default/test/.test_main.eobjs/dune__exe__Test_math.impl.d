test/test_math.ml: Alcotest Bitvec Cplx Float List Mat2 QCheck2 QCheck_alcotest Quipper_math Rng
