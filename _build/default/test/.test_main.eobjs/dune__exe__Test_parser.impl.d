test/test_parser.ml: Alcotest Algo_tf Array Circ Circuit Errors Filename Fun Gatecount Gen Parser Printer QCheck2 QCheck_alcotest Qdata Quipper Sys
