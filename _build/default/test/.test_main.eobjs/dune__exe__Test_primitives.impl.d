test/test_primitives.ml: Alcotest Array Bool Circ Float Fmt Gate List Qdata Quipper Quipper_arith Quipper_math Quipper_primitives Quipper_sim Stdlib Wire
