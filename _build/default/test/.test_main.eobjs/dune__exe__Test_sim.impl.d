test/test_sim.ml: Alcotest Array Circ Errors Float Gate List QCheck2 QCheck_alcotest Qdata Quipper Quipper_sim Wire
