test/test_template.ml: Alcotest Circ Circuit Fmt Fun Gatecount Gen List QCheck2 QCheck_alcotest Qdata Quipper Quipper_sim Quipper_template Test Wire
