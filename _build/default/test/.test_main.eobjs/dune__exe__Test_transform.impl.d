test/test_transform.ml: Alcotest Array Circ Circuit Decompose Fun Gatecount Gen List QCheck2 QCheck_alcotest Qdata Quipper Quipper_math Quipper_sim Transform Wire
