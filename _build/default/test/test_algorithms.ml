(* Integration tests across the seven algorithm implementations: circuit
   validity, oracle semantics against classical references, end-to-end
   simulation where the instance fits, and the structural properties the
   paper's evaluation relies on. *)

open Quipper
open Circ
module Sv = Quipper_sim.Statevector
module Cs = Quipper_sim.Classical
module Qureg = Quipper_arith.Qureg

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Triangle Finding                                                    *)

let tf_small = { Algo_tf.Oracle.l = 3; n = 2; r = 1 }

let test_tf_oracle_matches_reference () =
  let p = tf_small in
  let node = Qureg.shape p.Algo_tf.Oracle.n in
  let shape = Qdata.triple node node Qdata.qubit in
  for u = 0 to 3 do
    for w = 0 to 3 do
      let u', w', e =
        Cs.run_oracle ~in_:shape ~out:shape (u, w, false) (fun t ->
            Algo_tf.Oracle.o1_ORACLE ~p t)
      in
      check "inputs preserved" true (u' = u && w' = w);
      check
        (Fmt.str "edge(%d,%d)" u w)
        true
        (e = Algo_tf.Oracle.edge_sem ~p u w)
    done
  done

let test_tf_oracle_symmetric () =
  let p = { Algo_tf.Oracle.l = 5; n = 4; r = 1 } in
  for u = 0 to 15 do
    for w = 0 to 15 do
      check "edge predicate symmetric" true
        (Algo_tf.Oracle.edge_sem ~p u w = Algo_tf.Oracle.edge_sem ~p w u)
    done
  done

let test_tf_oracle_xor_involution () =
  (* applying the reversible oracle twice must restore the edge bit *)
  let p = tf_small in
  let node = Qureg.shape p.Algo_tf.Oracle.n in
  let shape = Qdata.triple node node Qdata.qubit in
  for u = 0 to 3 do
    let w = (u + 1) land 3 in
    let _, _, e =
      Cs.run_oracle ~in_:shape ~out:shape (u, w, false) (fun t ->
          let* t = Algo_tf.Oracle.o1_ORACLE ~p t in
          Algo_tf.Oracle.o1_ORACLE ~p t)
    in
    check "double oracle = identity on target" true (e = false)
  done

let test_tf_circuits_validate () =
  List.iter
    (fun p ->
      Circuit.validate_b (Algo_tf.Qwtfp.generate_pow17 ~p ());
      Circuit.validate_b (Algo_tf.Qwtfp.generate_oracle ~p ());
      Circuit.validate_b (Algo_tf.Qwtfp.generate_qwsh ~p ()))
    [ tf_small; { Algo_tf.Oracle.l = 4; n = 3; r = 2 } ]

let test_tf_full_structure () =
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 1 } in
  let b = Algo_tf.Qwtfp.generate ~p () in
  Circuit.validate_b b;
  let s = Gatecount.summarize b in
  check "nontrivial" true (s.Gatecount.total > 1000);
  (* subroutine hierarchy present *)
  check "hierarchical" true
    (List.for_all
       (fun name -> Circuit.Namespace.mem name b.Circuit.subs)
       [ "o1"; "o4"; "o8"; "o7_ADD_controlled"; "a5"; "a6"; "a4" ])

let test_tf_qram () =
  (* fetch from a 4-entry qram at every address *)
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 2 } in
  let entries = [ 1; 3; 0; 2 ] in
  let shape =
    Qdata.triple
      (Qdata.list_of 4 (Qureg.shape 2))
      (Qureg.shape 2) (Qureg.shape 2)
  in
  List.iteri
    (fun addr expect ->
      let _, _, fetched =
        Cs.run_oracle ~in_:shape ~out:shape (entries, addr, 0)
          (fun (tt, i, ttd) ->
            let* () = Algo_tf.Qwtfp.qram_fetch ~p i (Array.of_list tt) ttd in
            return (tt, i, ttd))
      in
      checki (Fmt.str "fetch tt[%d]" addr) expect fetched)
    entries

let test_tf_gatecounts_scale () =
  (* oracle cost grows superlinearly in l (quadratic-ish multiplier) *)
  let total l =
    let p = { Algo_tf.Oracle.l; n = 3; r = 2 } in
    Gatecount.total (Gatecount.aggregate (Algo_tf.Qwtfp.generate_oracle ~p ()))
  in
  let t4 = total 4 and t8 = total 8 in
  check "superlinear growth" true (t8 > 3 * t4)

(* ------------------------------------------------------------------ *)
(* BWT                                                                 *)

let test_bwt_circuits_validate () =
  Circuit.validate_b (Algo_bwt.generate ~which:`Orthodox ());
  Circuit.validate_b (Algo_bwt.generate ~which:`Template ());
  Circuit.validate_b (Qcl_baseline.Bwt_qcl.generate ())

let test_bwt_comparison_shape () =
  (* the section-6 ordering: QCL >> template > orthodox on gates;
     orthodox < template and orthodox < qcl on qubits *)
  let count b = (Gatecount.summarize b).Gatecount.total_logical in
  let qubits b = (Gatecount.summarize b).Gatecount.qubits in
  let qcl = Qcl_baseline.Bwt_qcl.generate () in
  let orth = Algo_bwt.generate ~which:`Orthodox () in
  let tmpl = Algo_bwt.generate ~which:`Template () in
  check "QCL produces far more gates than orthodox" true (count qcl > 3 * count orth);
  check "QCL uses more qubits than orthodox" true (qubits qcl > 2 * qubits orth);
  check "template uses more qubits than orthodox" true (qubits tmpl > qubits orth);
  check "template total below QCL" true (count tmpl < count qcl)

let test_bwt_w_gate_count () =
  (* the W count of the section-6 table: 2 per label pair per colour *)
  let p = Algo_bwt.default_params in
  let b = Algo_bwt.generate ~p ~which:`Orthodox () in
  let counts = Gatecount.aggregate b in
  let expected = 2 * Algo_bwt.label_width p * 4 * p.Algo_bwt.s in
  checki "W gates" expected
    (Gatecount.find_kind counts "W" + Gatecount.find_kind counts "W*");
  checki "one e^-iZt per colour per step" (4 * p.Algo_bwt.s)
    (Gatecount.find_kind counts "exp(-i%Z)")

let test_bwt_timestep_unitary () =
  (* timestep then reversed timestep = identity (statevector check) *)
  let m = 2 in
  let shape = Qdata.triple (Qureg.shape m) (Qureg.shape m) Qdata.qubit in
  let f (a, b, r) =
    let* () = Algo_bwt.timestep ~dt:0.51 a b r in
    return (a, b, r)
  in
  let st, regs =
    Sv.run_fun ~seed:4 ~in_:shape (1, 2, false) (fun regs ->
        let* regs = f regs in
        reverse_simple shape f regs)
  in
  let va, vb, vr = Sv.measure_and_read st shape regs in
  check "roundtrip restores basis state" true (va = 1 && vb = 2 && vr = false)

(* ------------------------------------------------------------------ *)
(* Boolean Formula / Hex                                               *)

let test_hex_flood_fill_reference () =
  let b = { Algo_bf.width = 3; height = 3 } in
  (* full blue board: wins; empty: loses *)
  check "full board wins" true (Algo_bf.blue_wins_sem b (Array.make 9 true));
  check "empty board loses" false (Algo_bf.blue_wins_sem b (Array.make 9 false));
  (* a winding path *)
  let board = Array.make 9 false in
  List.iter (fun (x, y) -> board.((y * 3) + x) <- true) [ (0, 0); (1, 0); (1, 1); (2, 1) ];
  check "path connects" true (Algo_bf.blue_wins_sem b board);
  let board2 = Array.make 9 false in
  List.iter (fun (x, y) -> board2.((y * 3) + x) <- true) [ (0, 0); (2, 0) ];
  check "gap does not connect" false (Algo_bf.blue_wins_sem b board2)

let test_hex_oracle_matches_reference () =
  let bd = { Algo_bf.width = 3; height = 2 } in
  let cells = Algo_bf.cells bd in
  let shape = Qdata.pair (Qdata.array_of cells Qdata.qubit) Qdata.qubit in
  for v = 0 to (1 lsl cells) - 1 do
    let board = Array.init cells (fun i -> (v lsr i) land 1 = 1) in
    let _, won =
      Cs.run_oracle ~in_:shape ~out:shape (board, false)
        (Algo_bf.winner_oracle bd)
    in
    check (Fmt.str "hex oracle on %d" v) true (won = Algo_bf.blue_wins_sem bd board)
  done

let test_hex_oracle_validates () =
  Circuit.validate_b (Algo_bf.generate_oracle ~board:{ Algo_bf.width = 4; height = 3 } ())

let test_hex_record_oracle () =
  (* decode + flood fill from a move record on a 2x2 board: moves fill all
     cells, blue = even moves *)
  let bd = { Algo_bf.width = 2; height = 2 } in
  let mb = Algo_bf.move_bits bd in
  let shape =
    Qdata.pair (Qdata.array_of 4 (Qureg.shape mb)) Qdata.qubit
  in
  (* moves: blue plays cells 0 and 1 (a left-right path on row 0 requires
     cells 0,1: cell 0 = (0,0), cell 1 = (1,0)) *)
  let moves = [| 0; 2; 1; 3 |] in
  let _, won =
    Cs.run_oracle ~in_:shape ~out:shape (moves, false)
      (Algo_bf.winner_oracle_moves bd)
  in
  check "blue wins with top row" true won;
  let moves2 = [| 0; 1; 2; 3 |] in
  (* blue holds cells 0 and 2 = left column only: no left-right path *)
  let _, won2 =
    Cs.run_oracle ~in_:shape ~out:shape (moves2, false)
      (Algo_bf.winner_oracle_moves bd)
  in
  check "left column does not win" false won2

(* ------------------------------------------------------------------ *)
(* QLS / GSE / USV / CL                                                *)

let test_qls_sin_circuit_counts () =
  let b = Algo_qls.generate_sin ~int_bits:8 ~frac_bits:8 () in
  Circuit.validate_b b;
  let s = Gatecount.summarize b in
  check "tens of thousands of gates at 8+8" true (s.Gatecount.total > 10_000)

let test_qls_hhl_validates () =
  let b = Algo_qls.generate () in
  Circuit.validate_b b

let test_gse_energy_estimate () =
  let p = Algo_gse.default_params in
  let exact = Algo_gse.exact_ground_energy p.Algo_gse.hamiltonian in
  let estimates =
    List.init 9 (fun seed ->
        let st, counting =
          Sv.run_fun ~seed:(seed + 1) ~in_:Qdata.unit () (fun () -> Algo_gse.gse ~p)
        in
        let v =
          Sv.measure_and_read st (Qureg.shape p.Algo_gse.precision_bits) counting
        in
        Algo_gse.energy_of_counting ~p v)
  in
  let median = List.nth (List.sort compare estimates) 4 in
  check "median within 2 resolution steps of exact" true
    (Float.abs (median -. exact) < 0.1)

let test_usv_dynamic_lifting_recovers_hidden () =
  List.iter
    (fun hidden ->
      let p = { Algo_usv.bits = 5; hidden } in
      let _, v =
        Sv.run_fun ~seed:(hidden + 1) ~in_:Qdata.unit () (fun () ->
            Algo_usv.kernel ~p)
      in
      checki (Fmt.str "hidden %d" hidden) hidden v)
    [ 0; 1; 7; 12; 21; 31 ]

let test_usv_circuit_validates () =
  Circuit.validate_b (Algo_usv.generate ())

let test_cl_mod_oracle () =
  let p = { Algo_cl.arg_bits = 5; period = 3 } in
  let shape = Qureg.shape p.Algo_cl.arg_bits in
  for x = 0 to 31 do
    let _, fx =
      Cs.run_oracle ~in_:shape
        ~out:(Qdata.pair shape (Qureg.shape 3))
        x
        (fun xq ->
          let* f = Algo_cl.mod_oracle ~p xq in
          return (xq, f))
    in
    checki (Fmt.str "%d mod 3" x) (x mod 3) fx
  done

let test_cl_period_recovery () =
  let p = Algo_cl.default_params in
  let found = ref false in
  for seed = 1 to 15 do
    let st, (x_bits, _) =
      Sv.run_fun ~seed ~in_:Qdata.unit () (fun () -> Algo_cl.period_find_circuit ~p)
    in
    let v =
      Array.to_list x_bits
      |> List.mapi (fun i b -> (i, Sv.read_bit st (Wire.bit_wire b)))
      |> List.fold_left (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc) 0
    in
    match Algo_cl.recover_period ~p v with
    | Some s when s = p.Algo_cl.period -> found := true
    | _ -> ()
  done;
  check "period recovered in some shot" true !found

let test_cl_continued_fractions () =
  let p = { Algo_cl.arg_bits = 6; period = 5 } in
  (* measured = round(k * 64 / 5): the CF machinery must find 5 *)
  check "cf finds 5 from 13" true (Algo_cl.recover_period ~p 13 = Some 5);
  check "cf nothing from 0" true (Algo_cl.recover_period ~p 0 = None)

let suite =
  [
    Alcotest.test_case "TF oracle vs reference" `Quick test_tf_oracle_matches_reference;
    Alcotest.test_case "TF edge symmetric" `Quick test_tf_oracle_symmetric;
    Alcotest.test_case "TF oracle involution" `Quick test_tf_oracle_xor_involution;
    Alcotest.test_case "TF circuits validate" `Quick test_tf_circuits_validate;
    Alcotest.test_case "TF full structure" `Quick test_tf_full_structure;
    Alcotest.test_case "TF qram fetch" `Quick test_tf_qram;
    Alcotest.test_case "TF oracle scaling" `Quick test_tf_gatecounts_scale;
    Alcotest.test_case "BWT circuits validate" `Quick test_bwt_circuits_validate;
    Alcotest.test_case "BWT section-6 ordering" `Quick test_bwt_comparison_shape;
    Alcotest.test_case "BWT W-gate count" `Quick test_bwt_w_gate_count;
    Alcotest.test_case "BWT timestep unitary" `Quick test_bwt_timestep_unitary;
    Alcotest.test_case "Hex flood fill reference" `Quick test_hex_flood_fill_reference;
    Alcotest.test_case "Hex oracle vs reference" `Slow test_hex_oracle_matches_reference;
    Alcotest.test_case "Hex oracle validates" `Quick test_hex_oracle_validates;
    Alcotest.test_case "Hex record oracle" `Quick test_hex_record_oracle;
    Alcotest.test_case "QLS sin circuit" `Quick test_qls_sin_circuit_counts;
    Alcotest.test_case "QLS HHL validates" `Quick test_qls_hhl_validates;
    Alcotest.test_case "GSE energy estimate" `Slow test_gse_energy_estimate;
    Alcotest.test_case "USV recovers hidden value" `Quick test_usv_dynamic_lifting_recovers_hidden;
    Alcotest.test_case "USV circuit validates" `Quick test_usv_circuit_validates;
    Alcotest.test_case "CL mod oracle" `Quick test_cl_mod_oracle;
    Alcotest.test_case "CL period recovery" `Slow test_cl_period_recovery;
    Alcotest.test_case "CL continued fractions" `Quick test_cl_continued_fractions;
  ]

(* ------------------------------------------------------------------ *)
(* The exact welded-tree instance                                      *)

let test_bwt_exact_matchings () =
  List.iter
    (fun d ->
      let g = Algo_bwt.Exact.build ~depth:d in
      (* every colour class is a matching: neighbour is an involution *)
      for c = 0 to Algo_bwt.Exact.colours - 1 do
        for u = 0 to (1 lsl g.Algo_bwt.Exact.label_bits) - 1 do
          match Algo_bwt.Exact.neighbour_sem g ~colour:c u with
          | Some v ->
              check "involution" true
                (Algo_bwt.Exact.neighbour_sem g ~colour:c v = Some u)
          | None -> ()
        done
      done;
      (* 3-regularity away from the roots *)
      let deg u =
        List.length
          (List.filter (fun (a, b, _) -> a = u || b = u) g.Algo_bwt.Exact.edges)
      in
      checki "entrance degree 2" 2 (deg g.Algo_bwt.Exact.entrance);
      checki "exit degree 2" 2 (deg g.Algo_bwt.Exact.exit);
      checki "leaf degree 3" 3 (deg (1 lsl d)))
    [ 1; 2; 3 ]

let test_bwt_exact_oracle_table () =
  let g = Algo_bwt.Exact.build ~depth:2 in
  let m = g.Algo_bwt.Exact.label_bits in
  let shape = Qureg.shape m in
  for u = 0 to (1 lsl m) - 1 do
    for c = 0 to Algo_bwt.Exact.colours - 1 do
      let _, (b, r) =
        Cs.run_oracle ~in_:shape
          ~out:(Qdata.pair shape (Qdata.pair shape Qdata.qubit))
          u
          (fun a ->
            let* br = Algo_bwt.Exact.neighbour g ~colour:c a in
            return (a, br))
      in
      match Algo_bwt.Exact.neighbour_sem g ~colour:c u with
      | Some v -> check "edge found" true (b = v && not r)
      | None -> check "no edge" true (b = 0 && r)
    done
  done

let test_bwt_exact_walk_reaches_exit () =
  let g = Algo_bwt.Exact.build ~depth:2 in
  let m = g.Algo_bwt.Exact.label_bits in
  let st, a =
    Sv.run_fun ~seed:1 ~in_:Qdata.unit () (fun () ->
        Algo_bwt.Exact.walk g ~steps:3 ~dt:0.9)
  in
  let wires = Array.to_list a |> List.map Wire.qubit_wire in
  let p_exit =
    Quipper_math.Cplx.norm2
      (Sv.amplitude st wires
         (List.init m (fun i -> (g.Algo_bwt.Exact.exit lsr i) land 1 = 1)))
  in
  check "walk reaches the exit with substantial probability" true (p_exit > 0.2)

let exact_suite =
  [
    Alcotest.test_case "exact BWT: matchings" `Quick test_bwt_exact_matchings;
    Alcotest.test_case "exact BWT: oracle table" `Quick test_bwt_exact_oracle_table;
    Alcotest.test_case "exact BWT: walk reaches exit" `Slow test_bwt_exact_walk_reaches_exit;
  ]

let suite = suite @ exact_suite

(* ------------------------------------------------------------------ *)
(* The QCL-style generator's building blocks: each must be semantically
   identical to the direct gate it replaces (statevector-verified), so
   the whole QCL circuit implements the same algorithm at inflated cost.
   (The full-circuit comparison needs the Exact matching oracle — the
   count-oriented oracles are not involutions, and exact simulation
   rightly rejects their uncompute assertions.) *)

let same_semantics a b =
  let n = List.length a.Circuit.main.Circuit.inputs in
  List.for_all
    (fun v ->
      let ins = List.init n (fun i -> (v lsr i) land 1 = 1) in
      let va = Sv.output_vector a ins and vb = Sv.output_vector b ins in
      Array.for_all2 (fun x y -> Quipper_math.Cplx.equal ~eps:1e-9 x y) va vb)
    (List.init (1 lsl n) Fun.id)

let test_qcl_blocks_semantics () =
  let shape3 = Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit in
  (* assign_xor == multi-controlled not *)
  let qcl_assign =
    fst
      (Circ.generate ~in_:shape3 (fun (a, b, t) ->
           let h = Qcl_baseline.Qcl.new_heap () in
           let* () = Qcl_baseline.Qcl.assign_xor h t [ ctl a; ctl_neg b ] in
           (* retire the (clean) heap scratch so aritys match *)
           let* () = iterm (qterm_bit false) h.Qcl_baseline.Qcl.free in
           return (a, b, t)))
  in
  let direct =
    fst
      (Circ.generate ~in_:shape3 (fun (a, b, t) ->
           let* () = qnot_ t |> controlled [ ctl a; ctl_neg b ] in
           return (a, b, t)))
  in
  check "assign_xor == signed toffoli" true (same_semantics qcl_assign direct);
  (* quantum_if == with_controls *)
  let qcl_if =
    fst
      (Circ.generate ~in_:shape3 (fun (a, b, t) ->
           let h = Qcl_baseline.Qcl.new_heap () in
           let* () =
             Qcl_baseline.Qcl.quantum_if h [ ctl a ]
               (hadamard_ t >> cnot ~control:t ~target:b)
           in
           let* () = iterm (qterm_bit false) h.Qcl_baseline.Qcl.free in
           return (a, b, t)))
  in
  let direct_if =
    fst
      (Circ.generate ~in_:shape3 (fun (a, b, t) ->
           let* () =
             with_controls [ ctl a ] (hadamard_ t >> cnot ~control:t ~target:b)
           in
           return (a, b, t)))
  in
  check "quantum_if == with_controls" true (same_semantics qcl_if direct_if)

let test_qcl_mcnot_semantics () =
  let shape = Qdata.list_of 5 Qdata.qubit in
  let qcl =
    fst
      (Circ.generate ~in_:shape (fun qs ->
           let qs = Array.of_list qs in
           let h = Qcl_baseline.Qcl.new_heap () in
           let* () =
             Qcl_baseline.Qcl.mcnot h qs.(4)
               [ ctl qs.(0); ctl_neg qs.(1); ctl qs.(2); ctl_neg qs.(3) ]
           in
           let* () = iterm (qterm_bit false) h.Qcl_baseline.Qcl.free in
           return (Array.to_list qs)))
  in
  let direct =
    fst
      (Circ.generate ~in_:shape (fun qs ->
           let qs = Array.of_list qs in
           let* () =
             qnot_ qs.(4)
             |> controlled
                  [ ctl qs.(0); ctl_neg qs.(1); ctl qs.(2); ctl_neg qs.(3) ]
           in
           return (Array.to_list qs)))
  in
  check "mcnot cascade == 4-controlled not" true (same_semantics qcl direct)

let qcl_suite =
  [
    Alcotest.test_case "QCL building blocks: assign_xor / quantum_if" `Quick
      test_qcl_blocks_semantics;
    Alcotest.test_case "QCL building blocks: mcnot cascade" `Slow
      test_qcl_mcnot_semantics;
  ]

let suite = suite @ qcl_suite
