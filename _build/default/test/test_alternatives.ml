(* Tests that the Alternatives module's drop-in replacements (paper 5.2)
   agree with the primary implementations. *)

open Quipper
open Circ
module Cs = Quipper_sim.Classical
module Sv = Quipper_sim.Statevector
module Qureg = Quipper_arith.Qureg
module Alt = Algo_tf.Alternatives

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_select_swap_qram () =
  (* both qrams fetch the same entries for every address, and leave the
     table untouched *)
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 2 } in
  let entries = [ 1; 3; 0; 2 ] in
  let shape =
    Qdata.triple (Qdata.list_of 4 (Qureg.shape 2)) (Qureg.shape 2) (Qureg.shape 2)
  in
  List.iteri
    (fun addr expect ->
      let tt', _, fetched =
        Cs.run_oracle ~in_:shape ~out:shape (entries, addr, 0)
          (fun (tt, i, ttd) ->
            let* () = Alt.qram_fetch_swap ~p i (Array.of_list tt) ttd in
            return (tt, i, ttd))
      in
      checki (Fmt.str "select-swap fetch tt[%d]" addr) expect fetched;
      check "table restored" true (tt' = entries))
    entries

let test_select_swap_gate_profile () =
  (* the point of the alternative: no control wider than 1 *)
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 3 } in
  let shape =
    Qdata.triple (Qdata.list_of 8 (Qureg.shape 2)) (Qureg.shape 3) (Qureg.shape 2)
  in
  let b, _ =
    Circ.generate ~in_:shape (fun (tt, i, ttd) ->
        let* () = Alt.qram_fetch_swap ~p i (Array.of_list tt) ttd in
        return (tt, i, ttd))
  in
  let counts = Gatecount.aggregate b in
  check "only single controls" true
    (Gatecount.Counts.for_all
       (fun k _ -> k.Gatecount.pos_controls + k.Gatecount.neg_controls <= 1)
       counts);
  (* the direct qram needs r+1-wide controls *)
  let b2, _ =
    Circ.generate ~in_:shape (fun (tt, i, ttd) ->
        let* () = Algo_tf.Qwtfp.qram_fetch ~p i (Array.of_list tt) ttd in
        return (tt, i, ttd))
  in
  let counts2 = Gatecount.aggregate b2 in
  check "direct qram uses wide controls" true
    (Gatecount.Counts.exists
       (fun k _ -> k.Gatecount.pos_controls + k.Gatecount.neg_controls >= 3)
       counts2)

let test_pow17_naive_agrees () =
  let l = 3 in
  let shape = Qureg.shape l in
  for x = 0 to 7 do
    let _, a =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape shape) x (fun x ->
          Algo_tf.Oracle.o4_POW17 ~l x)
    in
    let _, b =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape shape) x (fun x ->
          Alt.o4_POW17_naive ~l x)
    in
    checki (Fmt.str "pow17 variants agree on %d" x) a b
  done

let test_pow17_naive_costs_more () =
  let l = 4 in
  let total f =
    let b, _ = Circ.generate ~in_:(Qureg.shape l) f in
    Gatecount.total (Gatecount.aggregate b)
  in
  let chain = total (fun x -> Algo_tf.Oracle.o4_POW17 ~l x) in
  let naive = total (fun x -> Alt.o4_POW17_naive ~l x) in
  check "square chain beats naive powering" true (naive > chain)

let test_a5_variants_agree () =
  (* both triangle tests are diagonal +-1 operators; compare their output
     vectors on basis inputs with and without a triangle *)
  let p = { Algo_tf.Oracle.l = 2; n = 1; r = 2 } in
  let shape = Algo_tf.Qwtfp.regs_shape p in
  let circ_of f =
    let b, _ = Circ.generate ~in_:shape f in
    b
  in
  let b1 = circ_of (fun regs -> Algo_tf.Qwtfp.a5_TestTriangleEdges ~p regs) in
  let b2 = circ_of (fun regs -> Alt.a5_test_accumulate ~p regs) in
  let n_in = List.length b1.Circuit.main.Circuit.inputs in
  checki "same arity" n_in (List.length b2.Circuit.main.Circuit.inputs);
  (* ee wires are the last 6 inputs (tuple of 4 nodes -> C(4,2) = 6) *)
  let test_ee ee_bits =
    let ins =
      List.init n_in (fun i ->
          if i >= n_in - 6 then List.nth ee_bits (i - (n_in - 6)) else false)
    in
    let v1 = Sv.output_vector b1 ins and v2 = Sv.output_vector b2 ins in
    Array.for_all2 (fun a b -> Quipper_math.Cplx.equal ~eps:1e-9 a b) v1 v2
  in
  (* a triangle among nodes 0,1,2: edges (1,0), (2,0), (2,1) = indices 0,1,2 *)
  check "triangle case" true
    (test_ee [ true; true; true; false; false; false ]);
  check "no-triangle case" true
    (test_ee [ true; true; false; false; false; false ]);
  check "different triangle" true
    (test_ee [ false; false; false; true; true; true ])

let suite =
  [
    Alcotest.test_case "select-swap qram fetches" `Quick test_select_swap_qram;
    Alcotest.test_case "select-swap gate profile" `Quick test_select_swap_gate_profile;
    Alcotest.test_case "pow17 variants agree" `Quick test_pow17_naive_agrees;
    Alcotest.test_case "naive pow17 costs more" `Quick test_pow17_naive_costs_more;
    Alcotest.test_case "a5 variants agree" `Quick test_a5_variants_agree;
  ]
