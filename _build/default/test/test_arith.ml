(* Tests for quantum arithmetic: QDInt (mod 2^n), QIntTF (mod 2^l - 1) and
   FPReal, all validated against integer / float reference semantics via
   the classical simulator, exhaustively at small widths and by qcheck at
   larger widths. *)

open Quipper
open Circ
module Qdint = Quipper_arith.Qdint
module Qinttf = Quipper_arith.Qinttf
module Qureg = Quipper_arith.Qureg
module Fpreal = Quipper_arith.Fpreal
module Cs = Quipper_sim.Classical

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let w2 n = Qdata.pair (Qdint.shape n) (Qdint.shape n)

let run_add n (x, y) =
  Cs.run_oracle ~in_:(w2 n) ~out:(w2 n) (x, y) (fun (x, y) ->
      let* () = Qdint.add_in_place ~x ~y () in
      return (x, y))

(* ------------------------------------------------------------------ *)
(* QDInt *)

let test_add_exhaustive_4bit () =
  for x = 0 to 15 do
    for y = 0 to 15 do
      let x', y' = run_add 4 (x, y) in
      checki "x preserved" x x';
      checki "sum" ((x + y) land 15) y'
    done
  done

let test_add_carry_out () =
  let shape = Qdata.pair (w2 4) Qdata.qubit in
  List.iter
    (fun (x, y) ->
      let (_, _), c =
        Cs.run_oracle ~in_:shape ~out:shape ((x, y), false) (fun ((x, y), c) ->
            let* () = Qdint.add_in_place ~carry_out:c ~x ~y () in
            return ((x, y), c))
      in
      check "overflow bit" true (c = (x + y >= 16)))
    [ (15, 1); (8, 8); (7, 8); (0, 0); (15, 15) ]

let prop_add_10bit =
  QCheck2.Test.make ~name:"10-bit adder matches integer addition" ~count:200
    QCheck2.Gen.(pair (int_range 0 1023) (int_range 0 1023))
    (fun (x, y) ->
      let x', y' = run_add 10 (x, y) in
      x' = x && y' = (x + y) land 1023)

let prop_sub_then_add_identity =
  QCheck2.Test.make ~name:"subtract then add is identity" ~count:100
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (x, y) ->
      let _, y' =
        Cs.run_oracle ~in_:(w2 8) ~out:(w2 8) (x, y) (fun (x, y) ->
            let* () = Qdint.sub_in_place ~x ~y in
            let* () = Qdint.add_in_place ~x ~y () in
            return (x, y))
      in
      y' = y)

let prop_add_const =
  QCheck2.Test.make ~name:"constant adder" ~count:200
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 511))
    (fun (x, k) ->
      let x' =
        Cs.run_oracle ~in_:(Qdint.shape 8) ~out:(Qdint.shape 8) x (fun r ->
            let* () = Qdint.add_const k r in
            return r)
      in
      x' = (x + k) land 255)

let test_increment_decrement () =
  for x = 0 to 31 do
    let x' =
      Cs.run_oracle ~in_:(Qdint.shape 5) ~out:(Qdint.shape 5) x (fun r ->
          let* () = Qdint.increment r in
          let* () = Qdint.increment r in
          let* () = Qdint.decrement r in
          return r)
    in
    checki "inc inc dec" ((x + 1) land 31) x'
  done

let prop_mult =
  QCheck2.Test.make ~name:"multiplier matches integer multiplication" ~count:100
    QCheck2.Gen.(pair (int_range 0 127) (int_range 0 127))
    (fun (x, y) ->
      let out_shape = Qdata.pair (w2 7) (Qdint.shape 7) in
      let (x', y'), p =
        Cs.run_oracle ~in_:(w2 7) ~out:out_shape (x, y) (fun (x, y) ->
            let* p = Qdint.mult ~x ~y () in
            return ((x, y), p))
      in
      x' = x && y' = y && p = x * y land 127)

let prop_mult_full_width =
  QCheck2.Test.make ~name:"double-width multiplier is exact" ~count:100
    QCheck2.Gen.(pair (int_range 0 63) (int_range 0 63))
    (fun (x, y) ->
      let out_shape = Qdata.pair (w2 6) (Qdint.shape 12) in
      let _, p =
        Cs.run_oracle ~in_:(w2 6) ~out:out_shape (x, y) (fun (x, y) ->
            let* p = Qdint.mult ~out_width:12 ~x ~y () in
            return ((x, y), p))
      in
      p = x * y)

let prop_square =
  QCheck2.Test.make ~name:"squarer (copy-mult-uncopy)" ~count:100
    QCheck2.Gen.(int_range 0 63)
    (fun x ->
      let out_shape = Qdata.pair (Qdint.shape 6) (Qdint.shape 12) in
      let _, p =
        Cs.run_oracle ~in_:(Qdint.shape 6) ~out:out_shape x (fun x ->
            let* p = Qdint.square ~out_width:12 x in
            return (x, p))
      in
      p = x * x)

let prop_less_than =
  QCheck2.Test.make ~name:"comparator" ~count:200
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (x, y) ->
      let shape = Qdata.pair (w2 8) Qdata.qubit in
      let _, b =
        Cs.run_oracle ~in_:shape ~out:shape ((x, y), false) (fun ((x, y), b) ->
            let* () = Qdint.less_than ~x ~y ~target:b in
            return ((x, y), b))
      in
      b = (x < y))

let prop_equals =
  QCheck2.Test.make ~name:"equality test" ~count:200
    QCheck2.Gen.(pair (int_range 0 63) (int_range 0 63))
    (fun (x, y) ->
      let shape = Qdata.pair (w2 6) Qdata.qubit in
      let _, b =
        Cs.run_oracle ~in_:shape ~out:shape ((x, y), false) (fun ((x, y), b) ->
            let* () = Qdint.equals ~x ~y ~target:b in
            return ((x, y), b))
      in
      b = (x = y))

let prop_equals_const =
  QCheck2.Test.make ~name:"constant equality (quantum test)" ~count:200
    QCheck2.Gen.(pair (int_range 0 63) (int_range 0 63))
    (fun (x, k) ->
      let shape = Qdata.pair (Qdint.shape 6) Qdata.qubit in
      let _, b =
        Cs.run_oracle ~in_:shape ~out:shape (x, false) (fun (x, b) ->
            let* () = Qdint.equals_const k ~x ~target:b in
            return (x, b))
      in
      b = (x = k))

let test_controlled_adder () =
  (* additions under quantum control: fires only when the control is set *)
  let shape = Qdata.pair (w2 5) Qdata.qubit in
  List.iter
    (fun c ->
      let (x', y'), _ =
        Cs.run_oracle ~in_:shape ~out:shape ((11, 7), c) (fun ((x, y), cq) ->
            let* () = Qdint.add_in_place ~x ~y () |> controlled [ ctl cq ] in
            return ((x, y), cq))
      in
      checki "x kept" 11 x';
      checki "controlled sum" (if c then 18 else 7) y')
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* QIntTF *)

let tf2 l = Qdata.pair (Qinttf.shape l) (Qinttf.shape l)

let test_tf_add_exhaustive () =
  let l = 4 in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let (x', y'), s =
        Cs.run_oracle ~in_:(tf2 l) ~out:(Qdata.pair (tf2 l) (Qinttf.shape l)) (x, y)
          (fun (x, y) ->
            let* s = Qinttf.add ~x ~y () in
            return ((x, y), s))
      in
      check "inputs preserved" true (x' = x && y' = y);
      checki "end-around-carry sum" (Qinttf.add_sem ~l x y) s
    done
  done

let test_tf_add_controlled () =
  let l = 4 in
  let shape = Qdata.pair (tf2 l) Qdata.qubit in
  for x = 0 to 15 do
    List.iter
      (fun c ->
        let y = (x * 7 + 3) mod 16 in
        let _, s =
          Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape (Qinttf.shape l)) ((x, y), c)
            (fun ((x, y), cq) ->
              let* s = Qinttf.add ~ctl:cq ~x ~y () in
              return (((x, y), cq), s))
        in
        checki "controlled tf add" (if c then Qinttf.add_sem ~l x y else y) s)
      [ false; true ]
  done

let test_tf_double_is_rotation () =
  let l = 5 in
  let b, _ =
    Circ.generate ~in_:(Qinttf.shape l) (fun x -> return (Qinttf.double x))
  in
  checki "double emits no gates" 0 (Gatecount.total (Gatecount.aggregate b))

let prop_tf_double_sem =
  QCheck2.Test.make ~name:"double_TF semantics: 2x mod 2^l-1" ~count:100
    QCheck2.Gen.(int_range 0 31)
    (fun x ->
      let l = 5 in
      let m = (1 lsl l) - 1 in
      let d = Qinttf.double_sem ~l x in
      if x = m then d = m else d mod m = 2 * x mod m)

let prop_tf_mul =
  QCheck2.Test.make ~name:"TF multiplier mod 2^l-1" ~count:60
    QCheck2.Gen.(pair (int_range 0 31) (int_range 0 31))
    (fun (x, y) ->
      let l = 5 in
      let m = (1 lsl l) - 1 in
      let _, p =
        Cs.run_oracle ~in_:(tf2 l) ~out:(Qdata.pair (tf2 l) (Qinttf.shape l)) (x, y)
          (fun (x, y) ->
            let* p = Qinttf.mul ~x ~y () in
            return ((x, y), p))
      in
      let expect = x mod m * (y mod m) mod m in
      p mod m = expect || (p = m && expect = 0))

let test_tf_equals_zero () =
  let l = 4 in
  let shape = Qdata.pair (Qinttf.shape l) Qdata.qubit in
  for x = 0 to 15 do
    let _, b =
      Cs.run_oracle ~in_:shape ~out:shape (x, false) (fun (x, b) ->
          let* () = Qinttf.equals_zero ~x ~target:b in
          return (x, b))
    in
    check "two zero representations" true (b = (x = 0 || x = 15))
  done

let test_pow17_semantics () =
  (* the boxed POW17 against the bit-exact reference, small width *)
  let l = 4 in
  let p = { Algo_tf.Oracle.l; n = 3; r = 2 } in
  ignore p;
  for x = 0 to 15 do
    let _, x17 =
      Cs.run_oracle ~in_:(Qinttf.shape l)
        ~out:(Qdata.pair (Qinttf.shape l) (Qinttf.shape l))
        x
        (fun x -> Algo_tf.Oracle.o4_POW17 ~l x)
    in
    (* reference via the same shift-add semantics *)
    let mul a b =
      let rec go i xr acc =
        if i = l then acc
        else
          let acc = if (b lsr i) land 1 = 1 then Qinttf.add_sem ~l xr acc else acc in
          go (i + 1) (Qinttf.double_sem ~l xr) acc
      in
      go 0 a 0
    in
    let sq a = mul a a in
    let expect = mul x (sq (sq (sq (sq x)))) in
    checki (Fmt.str "pow17(%d)" x) expect x17
  done

(* ------------------------------------------------------------------ *)
(* FPReal *)

let fp ~ib ~fb = Fpreal.shape ~int_bits:ib ~frac_bits:fb

let test_fp_add () =
  let shape = Qdata.pair (fp ~ib:4 ~fb:8) (fp ~ib:4 ~fb:8) in
  List.iter
    (fun (x, y) ->
      let _, y' =
        Cs.run_oracle ~in_:shape ~out:shape (x, y) (fun (x, y) ->
            let* () = Fpreal.add_in_place ~x ~y in
            return (x, y))
      in
      check "fp add" true (Float.abs (y' -. (x +. y)) < 0.01))
    [ (1.5, 2.25); (0.125, 0.0625); (3.0, 4.5) ]

let prop_fp_mult =
  QCheck2.Test.make ~name:"fixed-point multiplier" ~count:50
    QCheck2.Gen.(pair (float_range 0.0 3.0) (float_range 0.0 3.0))
    (fun (x, y) ->
      let shape = fp ~ib:4 ~fb:8 in
      let _, p =
        Cs.run_oracle ~in_:(Qdata.pair shape shape)
          ~out:(Qdata.pair (Qdata.pair shape shape) shape)
          (x, y)
          (fun (x, y) ->
            let* p = Fpreal.mult ~x ~y in
            return ((x, y), p))
      in
      (* quantisation: inputs rounded to 1/256, product truncated *)
      Float.abs (p -. (x *. y)) < 0.05)

let test_fp_sin_cos_accuracy () =
  let shape = fp ~ib:3 ~fb:12 in
  List.iter
    (fun x ->
      let _, s =
        Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape shape) x (fun xq ->
            let* s = Fpreal.sin xq in
            return (xq, s))
      in
      check (Fmt.str "sin %.3f" x) true (Float.abs (s -. Stdlib.sin x) < 0.01);
      let _, c =
        Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape shape) x (fun xq ->
            let* c = Fpreal.cos xq in
            return (xq, c))
      in
      check (Fmt.str "cos %.3f" x) true (Float.abs (c -. Stdlib.cos x) < 0.02))
    [ 0.0; 0.2; 0.5; 0.8; 1.1; 1.4 ]

let test_fp_circuits_validate () =
  let shape = fp ~ib:3 ~fb:5 in
  let b, _ =
    Circ.generate ~in_:shape (fun x ->
        let* s = Fpreal.sin x in
        return (x, s))
  in
  Circuit.validate_b b

let suite =
  [
    Alcotest.test_case "4-bit adder exhaustive" `Quick test_add_exhaustive_4bit;
    Alcotest.test_case "carry out" `Quick test_add_carry_out;
    QCheck_alcotest.to_alcotest prop_add_10bit;
    QCheck_alcotest.to_alcotest prop_sub_then_add_identity;
    QCheck_alcotest.to_alcotest prop_add_const;
    Alcotest.test_case "increment/decrement" `Quick test_increment_decrement;
    QCheck_alcotest.to_alcotest prop_mult;
    QCheck_alcotest.to_alcotest prop_mult_full_width;
    QCheck_alcotest.to_alcotest prop_square;
    QCheck_alcotest.to_alcotest prop_less_than;
    QCheck_alcotest.to_alcotest prop_equals;
    QCheck_alcotest.to_alcotest prop_equals_const;
    Alcotest.test_case "controlled adder" `Quick test_controlled_adder;
    Alcotest.test_case "TF adder exhaustive" `Quick test_tf_add_exhaustive;
    Alcotest.test_case "TF controlled adder" `Quick test_tf_add_controlled;
    Alcotest.test_case "double_TF is gate-free" `Quick test_tf_double_is_rotation;
    QCheck_alcotest.to_alcotest prop_tf_double_sem;
    QCheck_alcotest.to_alcotest prop_tf_mul;
    Alcotest.test_case "TF zero representations" `Quick test_tf_equals_zero;
    Alcotest.test_case "POW17 against reference" `Slow test_pow17_semantics;
    Alcotest.test_case "fp add" `Quick test_fp_add;
    QCheck_alcotest.to_alcotest prop_fp_mult;
    Alcotest.test_case "fp sin/cos accuracy" `Quick test_fp_sin_cos_accuracy;
    Alcotest.test_case "fp circuits validate" `Quick test_fp_circuits_validate;
  ]
