(* Tests for the quantum primitives: QFT against the discrete Fourier
   transform, Grover search success probabilities, phase estimation on
   known eigenphases, and Trotterized evolution against exact
   exponentials. *)

open Quipper
open Circ
module Sv = Quipper_sim.Statevector
module Qureg = Quipper_arith.Qureg
module Qft = Quipper_primitives.Qft
module Grover = Quipper_primitives.Grover
module Pe = Quipper_primitives.Phase_estimation
module Trotter = Quipper_primitives.Trotter
module Cplx = Quipper_math.Cplx

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* QFT *)

let qft_circuit n =
  fst
    (Circ.generate ~in_:(Qureg.shape n) (fun r ->
         let* () = Qft.qft r in
         return r))

let test_qft_matches_dft () =
  (* column k of the QFT must be the DFT vector (1/sqrt N) e^{2 pi i jk/N} *)
  let n = 3 in
  let nn = 1 lsl n in
  let b = qft_circuit n in
  for k = 0 to nn - 1 do
    let ins = List.init n (fun i -> (k lsr i) land 1 = 1) in
    let v = Sv.output_vector b ins in
    for j = 0 to nn - 1 do
      let expect =
        Cplx.polar (1.0 /. sqrt (Float.of_int nn))
          (2.0 *. Float.pi *. Float.of_int (j * k) /. Float.of_int nn)
      in
      check (Fmt.str "QFT[%d][%d]" j k) true (Cplx.equal ~eps:1e-9 v.(j) expect)
    done
  done

let test_qft_inverse_roundtrip () =
  let n = 4 in
  let b =
    fst
      (Circ.generate ~in_:(Qureg.shape n) (fun r ->
           let* () = Qft.qft r in
           let* () = Qft.qft_inverse r in
           return r))
  in
  for k = 0 to (1 lsl n) - 1 do
    let ins = List.init n (fun i -> (k lsr i) land 1 = 1) in
    let v = Sv.output_vector b ins in
    Array.iteri
      (fun j a ->
        let expect = if j = k then Cplx.one else Cplx.zero in
        check "inverse roundtrip" true (Cplx.equal ~eps:1e-9 a expect))
      v
  done

(* ------------------------------------------------------------------ *)
(* Grover *)

let test_grover_marked_element () =
  let n = 4 in
  let marked = 0b1010 in
  let oracle qs =
    (* phase flip on the marked element: Z with sign pattern *)
    let qs = Array.of_list qs in
    let last = qs.(n - 1) in
    let ctls =
      List.init (n - 1) (fun i ->
          if (marked lsr i) land 1 = 1 then ctl qs.(i) else ctl_neg qs.(i))
    in
    let* _ =
      (if (marked lsr (n - 1)) land 1 = 1 then gate_Z last
       else
         let* () = qnot_ last in
         let* q = gate_Z last in
         let* () = qnot_ last in
         return q)
      |> controlled ctls
    in
    return ()
  in
  let iters = Grover.iterations ~n ~marked:1 in
  let hits = ref 0 in
  for seed = 1 to 50 do
    let st, qs =
      Sv.run_fun ~seed ~in_:(Qdata.list_of n Qdata.qubit)
        (List.init n (fun _ -> false))
        (fun qs ->
          let* () = Grover.search ~iterations:iters oracle qs in
          return qs)
    in
    let bits = Sv.measure_and_read st (Qdata.list_of n Qdata.qubit) qs in
    let v = List.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 (List.rev bits) in
    if v = marked then incr hits
  done;
  check "Grover finds the marked element >80% of runs" true (!hits > 40)

let test_grover_iterations_formula () =
  Alcotest.(check int) "16 elements, 1 marked" 3 (Grover.iterations ~n:4 ~marked:1);
  Alcotest.(check int) "no marked elements" 0 (Grover.iterations ~n:4 ~marked:0)

let test_diffusion_preserves_uniform () =
  (* the diffusion operator fixes the uniform superposition (up to phase) *)
  let n = 3 in
  let st, qs =
    Sv.run_fun ~seed:1 ~in_:(Qdata.list_of n Qdata.qubit)
      (List.init n (fun _ -> false))
      (fun qs ->
        let* () = iterm hadamard_ qs in
        let* () = Grover.diffusion qs in
        return qs)
  in
  List.iter
    (fun q ->
      check "still uniform" true
        (Float.abs (Sv.prob_one st (Wire.qubit_wire q) -. 0.5) < 1e-9))
    qs

(* ------------------------------------------------------------------ *)
(* Phase estimation *)

let test_phase_estimation_exact () =
  (* U = R(2 pi * 5/16) on |1>: 4-bit PE must read exactly 5 *)
  let bits = 4 in
  let phase_num = 5 in
  let st, counting =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit true (fun target ->
        Pe.estimate ~bits ~u:(fun ~power ->
            let theta =
              2.0 *. Float.pi
              *. Float.of_int (phase_num * power mod (1 lsl bits))
              /. Float.of_int (1 lsl bits)
            in
            (* relative phase theta on the |1> eigenstate: an R gate *)
            fun c ->
              Circ.emit c
                (Gate.Rot
                   { name = "R"; angle = theta; inv = false;
                     targets = [ Wire.qubit_wire target ]; controls = [] })))
  in
  let v = Sv.measure_and_read st (Qureg.shape bits) counting in
  Alcotest.(check int) "exact eigenphase" phase_num v

let test_phase_estimation_statistics () =
  (* a non-representable phase: estimates concentrate on the two
     neighbouring grid points *)
  let bits = 3 in
  let phase = 0.3 in
  let near = ref 0 in
  for seed = 1 to 40 do
    let st, counting =
      Sv.run_fun ~seed ~in_:Qdata.qubit true (fun target ->
          Pe.estimate ~bits ~u:(fun ~power ->
              let theta = 2.0 *. Float.pi *. phase *. Float.of_int power in
              fun c ->
                Circ.emit c
                  (Gate.Rot
                     { name = "R"; angle = theta; inv = false;
                       targets = [ Wire.qubit_wire target ]; controls = [] })))
    in
    let v = Sv.measure_and_read st (Qureg.shape bits) counting in
    let est = Float.of_int v /. 8.0 in
    if Float.abs (est -. phase) <= 0.125 +. 1e-9 then incr near
  done;
  check "estimates near the true phase" true (!near > 30)

(* ------------------------------------------------------------------ *)
(* Trotter *)

let test_trotter_single_z () =
  (* exp(-i Z t) on |+>: <X> = cos 2t; measure in X basis statistics *)
  let t = 0.4 in
  let h = { Trotter.nqubits = 1; terms = [ { Trotter.coeff = 1.0; paulis = [ (0, Trotter.Z) ] } ] } in
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* q = hadamard q in
        let* () = Trotter.evolve h [| q |] ~time:t ~steps:1 in
        hadamard q)
  in
  (* P(0) = (1 + cos 2t)/2 *)
  let p0 = 1.0 -. Sv.prob_one st (Wire.qubit_wire q) in
  check "single-Z evolution" true
    (Float.abs (p0 -. ((1.0 +. Stdlib.cos (2.0 *. t)) /. 2.0)) < 1e-9)

let test_trotter_xx_agrees_small_dt () =
  (* XX evolution for small t: compare against exact 2-qubit amplitudes *)
  let t = 0.3 in
  let h =
    { Trotter.nqubits = 2;
      terms = [ { Trotter.coeff = 1.0; paulis = [ (0, Trotter.X); (1, Trotter.X) ] } ] }
  in
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 2 Qdata.qubit) (fun qs ->
        let* () = Trotter.evolve h (Array.of_list qs) ~time:t ~steps:1 in
        return qs)
  in
  let v = Sv.output_vector b [ false; false ] in
  (* exp(-i XX t)|00> = cos t |00> - i sin t |11> *)
  check "cos component" true
    (Cplx.equal ~eps:1e-9 v.(0) (Cplx.of_float (Stdlib.cos t)));
  check "sin component" true
    (Cplx.equal ~eps:1e-9 v.(3) (Cplx.make 0.0 (-.Stdlib.sin t)))

let test_trotter_commuting_terms_exact () =
  (* Z0 and Z1 commute: one Trotter step is exact; evolve and undo must
     give identity on arbitrary product states *)
  let h =
    { Trotter.nqubits = 2;
      terms =
        [ { Trotter.coeff = 0.7; paulis = [ (0, Trotter.Z) ] };
          { Trotter.coeff = -0.4; paulis = [ (1, Trotter.Z) ] } ] }
  in
  let st, qs =
    Sv.run_fun ~seed:1 ~in_:(Qdata.list_of 2 Qdata.qubit) [ false; false ]
      (fun qs ->
        let* () = iterm hadamard_ qs in
        let arr = Array.of_list qs in
        let* () = Trotter.evolve h arr ~time:0.9 ~steps:1 in
        let* () = Trotter.evolve h arr ~time:(-0.9) ~steps:1 in
        let* () = iterm hadamard_ qs in
        return qs)
  in
  List.iter
    (fun q -> check "identity" true (Sv.prob_one st (Wire.qubit_wire q) < 1e-9))
    qs

let suite =
  [
    Alcotest.test_case "QFT = DFT matrix" `Quick test_qft_matches_dft;
    Alcotest.test_case "QFT inverse roundtrip" `Quick test_qft_inverse_roundtrip;
    Alcotest.test_case "Grover finds marked element" `Slow test_grover_marked_element;
    Alcotest.test_case "Grover iteration formula" `Quick test_grover_iterations_formula;
    Alcotest.test_case "diffusion fixes uniform state" `Quick test_diffusion_preserves_uniform;
    Alcotest.test_case "phase estimation, exact phase" `Quick test_phase_estimation_exact;
    Alcotest.test_case "phase estimation, statistics" `Slow test_phase_estimation_statistics;
    Alcotest.test_case "Trotter: single Z" `Quick test_trotter_single_z;
    Alcotest.test_case "Trotter: XX exact" `Quick test_trotter_xx_agrees_small_dt;
    Alcotest.test_case "Trotter: commuting terms" `Quick test_trotter_commuting_terms_exact;
  ]
