(* Tests for the circuit-lifting DSL and reversible oracle synthesis
   (paper 4.6): every lifted operator against its truth table, the parity
   example's exact wire budget, and classical_to_reversible's uncompute
   guarantees — checked under both the classical and the statevector
   simulators (the latter verifies the ancilla assertions on
   superposition inputs). *)

open Quipper
open Circ
module Build = Quipper_template.Build
module Oracle = Quipper_template.Oracle
module Cs = Quipper_sim.Classical
module Sv = Quipper_sim.Statevector

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let pair2 = Qdata.pair Qdata.qubit Qdata.qubit

let run2 f (a, b) =
  Cs.run_oracle ~in_:pair2 ~out:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
    (a, b)
    (fun (a, b) ->
      let* r = f a b in
      return (a, b, r))

let table2 name f spec =
  List.iter
    (fun (a, b) ->
      let a', b', r = run2 f (a, b) in
      check (Fmt.str "%s(%b,%b) preserves inputs" name a b) true (a' = a && b' = b);
      check (Fmt.str "%s(%b,%b)" name a b) true (r = spec a b))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_bxor () = table2 "bxor" Build.bxor ( <> )
let test_band () = table2 "band" Build.band ( && )
let test_bor () = table2 "bor" Build.bor ( || )
let test_beq () = table2 "beq" Build.beq ( = )

let test_bnot () =
  List.iter
    (fun a ->
      let _, r =
        Cs.run_oracle ~in_:Qdata.qubit ~out:pair2 a (fun a ->
            let* r = Build.bnot a in
            return (a, r))
      in
      check "bnot" true (r = not a))
    [ false; true ]

let test_bif () =
  let shape = Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit in
  for v = 0 to 7 do
    let c = v land 1 = 1 and t = v land 2 = 2 and e = v land 4 = 4 in
    let _, r =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape Qdata.qubit) (c, t, e)
        (fun (c, t, e) ->
          let* r = Build.bif c ~then_:t ~else_:e in
          return ((c, t, e), r))
    in
    check "bif" true (r = if c then t else e)
  done

let test_list_ops () =
  let n = 5 in
  let shape = Qdata.list_of n Qdata.qubit in
  for v = 0 to (1 lsl n) - 1 do
    let bits = List.init n (fun i -> (v lsr i) land 1 = 1) in
    let band_r =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape Qdata.qubit) bits (fun qs ->
          let* r = Build.band_list qs in
          return (qs, r))
      |> snd
    in
    check "band_list" true (band_r = List.for_all Fun.id bits);
    let bor_r =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape Qdata.qubit) bits (fun qs ->
          let* r = Build.bor_list qs in
          return (qs, r))
      |> snd
    in
    check "bor_list" true (bor_r = List.exists Fun.id bits);
    let bxor_r =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape Qdata.qubit) bits (fun qs ->
          let* r = Build.bxor_list qs in
          return (qs, r))
      |> snd
    in
    check "bxor_list" true (bxor_r = List.fold_left ( <> ) false bits)
  done

(* ------------------------------------------------------------------ *)
(* The parity example (paper 4.6.1)                                    *)

let test_parity_wire_budget () =
  (* paper: 4 inputs, 1 output, 2 scratch = 7 wires *)
  let b, _ = Circ.generate ~in_:(Qdata.list_of 4 Qdata.qubit) Build.parity in
  let s = Gatecount.summarize b in
  checki "7 wires" 7 s.Gatecount.qubits;
  checki "4 inputs" 4 s.Gatecount.inputs;
  checki "7 outputs (nothing terminated)" 7 s.Gatecount.outputs

let test_parity_semantics () =
  let n = 6 in
  let shape = Qdata.list_of n Qdata.qubit in
  for v = 0 to (1 lsl n) - 1 do
    let bits = List.init n (fun i -> (v lsr i) land 1 = 1) in
    let r =
      Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape Qdata.qubit) bits (fun qs ->
          let* r = Build.parity qs in
          return (qs, r))
      |> snd
    in
    check "parity" true (r = List.fold_left ( <> ) false bits)
  done

let test_classical_to_reversible_parity () =
  (* (x, y) |-> (x, y xor parity x), all scratch uncomputed: exactly 5
     persistent wires *)
  let n = 4 in
  let shape = Qdata.pair (Qdata.list_of n Qdata.qubit) Qdata.qubit in
  let rev = Oracle.classical_to_reversible ~out:Qdata.qubit Build.parity in
  let b, _ = Circ.generate ~in_:shape rev in
  Circuit.validate_b b;
  let s = Gatecount.summarize b in
  checki "5 persistent wires" 5 s.Gatecount.outputs;
  checki "inits = terms" (Gatecount.find_kind s.Gatecount.counts "Init0")
    (Gatecount.find_kind s.Gatecount.counts "Term0")

let test_reversible_oracle_on_superpositions () =
  (* run the reversible parity oracle on a uniform superposition: every
     scratch assertion must hold in every branch *)
  let n = 3 in
  let shape = Qdata.pair (Qdata.list_of n Qdata.qubit) Qdata.qubit in
  let rev = Oracle.classical_to_reversible ~out:Qdata.qubit Build.parity in
  let st, (xs, y) =
    Sv.run_fun ~seed:2 ~in_:shape
      (List.init n (fun _ -> false), false)
      (fun (xs, y) ->
        let* () = iterm hadamard_ xs in
        rev (xs, y))
  in
  (* measure: y must equal parity of xs in every collapsed branch *)
  let bits, yv = Sv.measure_and_read st shape (xs, y) in
  check "oracle consistent on superposition" true
    (yv = List.fold_left ( <> ) false bits)

let test_phase_oracle () =
  (* classical_to_phase flips sign exactly on marked states: check via
     interference — (phase-oracle of "always false") is identity *)
  let st, q =
    Sv.run_fun ~seed:1 ~in_:Qdata.qubit false (fun q ->
        let* q = hadamard q in
        let* _ = Oracle.classical_to_phase (fun q -> Build.bconst false >>= fun f -> ignore q; return f) q in
        hadamard q)
  in
  check "trivial phase oracle = identity" true (Sv.prob_one st (Wire.qubit_wire q) < 1e-9)

let test_compute_copy_uncompute () =
  let n = 4 in
  let shape = Qdata.list_of n Qdata.qubit in
  let b, _ =
    Circ.generate ~in_:shape
      (Oracle.compute_copy_uncompute ~out:Qdata.qubit Build.parity)
  in
  Circuit.validate_b b;
  let s = Gatecount.summarize b in
  checki "n inputs + 1 fresh output" (n + 1) s.Gatecount.outputs

let prop_random_boolean_formula =
  (* random lifted formulas agree with their classical evaluation *)
  let open QCheck2 in
  let rec formula_gen depth =
    let open Gen in
    if depth = 0 then map (fun i -> `Var i) (int_range 0 3)
    else
      frequency
        [
          (2, map (fun i -> `Var i) (int_range 0 3));
          (1, map (fun b -> `Const b) bool);
          (2, map2 (fun a b -> `And (a, b)) (formula_gen (depth - 1)) (formula_gen (depth - 1)));
          (2, map2 (fun a b -> `Or (a, b)) (formula_gen (depth - 1)) (formula_gen (depth - 1)));
          (2, map2 (fun a b -> `Xor (a, b)) (formula_gen (depth - 1)) (formula_gen (depth - 1)));
          (1, map (fun a -> `Not a) (formula_gen (depth - 1)));
        ]
  in
  let rec eval env = function
    | `Var i -> List.nth env i
    | `Const b -> b
    | `And (a, b) -> eval env a && eval env b
    | `Or (a, b) -> eval env a || eval env b
    | `Xor (a, b) -> eval env a <> eval env b
    | `Not a -> not (eval env a)
  in
  let rec lift qs = function
    | `Var i -> let* q = qinit_bit false in
        let* () = cnot ~control:(List.nth qs i) ~target:q in
        return q
    | `Const b -> Build.bconst b
    | `And (a, b) ->
        let* x = lift qs a in
        let* y = lift qs b in
        Build.band x y
    | `Or (a, b) ->
        let* x = lift qs a in
        let* y = lift qs b in
        Build.bor x y
    | `Xor (a, b) ->
        let* x = lift qs a in
        let* y = lift qs b in
        Build.bxor x y
    | `Not a ->
        let* x = lift qs a in
        Build.bnot x
  in
  Test.make ~name:"random lifted formulas match classical evaluation" ~count:100
    Gen.(pair (formula_gen 3) (list_repeat 4 bool))
    (fun (f, env) ->
      let shape = Qdata.list_of 4 Qdata.qubit in
      let r =
        Cs.run_oracle ~in_:shape ~out:(Qdata.pair shape Qdata.qubit) env
          (fun qs ->
            let* r = lift qs f in
            return (qs, r))
        |> snd
      in
      r = eval env f)

let prop_reversible_formula_uncomputes =
  (* the same random formulas through classical_to_reversible validate and
     leave exactly n+1 wires *)
  let open QCheck2 in
  Test.make ~name:"classical_to_reversible uncomputes random formulas" ~count:50
    (Gen.list_size (Gen.int_range 1 6) (Gen.int_range 0 3))
    (fun vars ->
      let f qs =
        (* chain of xors and ands over selected variables *)
        let rec go acc = function
          | [] -> return acc
          | v :: tl ->
              let* x = Build.band acc (List.nth qs v) in
              let* y = Build.bxor x (List.nth qs ((v + 1) mod 4)) in
              go y tl
        in
        let* init = Build.bconst true in
        go init vars
      in
      let shape = Qdata.pair (Qdata.list_of 4 Qdata.qubit) Qdata.qubit in
      let rev = Oracle.classical_to_reversible ~out:Qdata.qubit f in
      let b, _ = Circ.generate ~in_:shape rev in
      Circuit.validate_b b;
      List.length b.Circuit.main.Circuit.outputs = 5)

let suite =
  [
    Alcotest.test_case "bxor table" `Quick test_bxor;
    Alcotest.test_case "band table" `Quick test_band;
    Alcotest.test_case "bor table" `Quick test_bor;
    Alcotest.test_case "beq table" `Quick test_beq;
    Alcotest.test_case "bnot" `Quick test_bnot;
    Alcotest.test_case "bif (mux)" `Quick test_bif;
    Alcotest.test_case "n-ary and/or/xor" `Quick test_list_ops;
    Alcotest.test_case "parity wire budget (paper figure)" `Quick test_parity_wire_budget;
    Alcotest.test_case "parity semantics" `Quick test_parity_semantics;
    Alcotest.test_case "classical_to_reversible parity" `Quick test_classical_to_reversible_parity;
    Alcotest.test_case "reversible oracle on superpositions" `Quick test_reversible_oracle_on_superpositions;
    Alcotest.test_case "phase oracle" `Quick test_phase_oracle;
    Alcotest.test_case "compute-copy-uncompute" `Quick test_compute_copy_uncompute;
    QCheck_alcotest.to_alcotest prop_random_boolean_formula;
    QCheck_alcotest.to_alcotest prop_reversible_formula_uncomputes;
  ]
