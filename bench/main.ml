(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index E1-E7 / F1-F8),
   printing paper-reported values next to our measured ones, runs the
   ablation benches DESIGN.md calls out, and finishes with bechamel
   micro-benchmarks of the machinery itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- quick   # skip the slowest sections *)

open Quipper
module Qureg = Quipper_arith.Qureg

let quick = Array.exists (fun a -> a = "quick") Sys.argv

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let row3 label paper ours =
  Fmt.pr "  %-28s %20s %20s@." label paper ours

let commas n =
  (* humane thousands separators for the big counts *)
  let s = string_of_int n in
  let b = Buffer.create 24 in
  String.iteri
    (fun i c ->
      if i > 0 && (String.length s - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

(* ================================================================== *)

let e1 () =
  section "E1 (paper 5.3.1): aggregated gate count of o4_POW17, l=4 n=3 r=2";
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let s = Gatecount.summarize b in
  Fmt.pr "%a" Gatecount.pp_summary s;
  row3 "" "paper" "this repo";
  row3 "total gates" "9,632" (commas s.Gatecount.total);
  row3 "inputs / outputs" "4 / 8" (Fmt.str "%d / %d" s.Gatecount.inputs s.Gatecount.outputs);
  row3 "qubits in circuit" "71" (string_of_int s.Gatecount.qubits);
  row3 "max controls on a Not" "2"
    (string_of_int
       (Gatecount.Counts.fold
          (fun k _ acc ->
            if k.Gatecount.kind = "Not" then
              max acc (k.Gatecount.pos_controls + k.Gatecount.neg_controls)
            else acc)
          s.Gatecount.counts 0))

let e2 () =
  section "E2 (paper 5.4): oracle-only gate count, l=31 n=15 r=9";
  let p = { Algo_tf.Oracle.l = 31; n = 15; r = 9 } in
  let b, dt = time (fun () -> Algo_tf.Qwtfp.generate_oracle ~p ()) in
  let s = Gatecount.summarize b in
  row3 "" "paper" "this repo";
  row3 "total gates" "2,051,926" (commas s.Gatecount.total);
  row3 "qubits" "1,462" (commas s.Gatecount.qubits);
  Fmt.pr "  (generated and counted in %.2fs)@." dt

let e3 () =
  section "E3 (paper 5.4): whole Triangle Finding algorithm, l=31 n=15 r=6";
  if quick then Fmt.pr "  [skipped in quick mode: ~25s]@."
  else begin
    let p = { Algo_tf.Oracle.l = 31; n = 15; r = 6 } in
    let b, gen_t = time (fun () -> Algo_tf.Qwtfp.generate ~p ()) in
    let s, count_t = time (fun () -> Gatecount.summarize b) in
    row3 "" "paper" "this repo";
    row3 "total gates" "30,189,977,982,990" (commas s.Gatecount.total);
    row3 "qubits" "4,676" (commas s.Gatecount.qubits);
    row3 "generation wall time" "< 2 min (laptop)" (Fmt.str "%.1fs" gen_t);
    row3 "counting wall time" "(included above)" (Fmt.str "%.2fs" count_t);
    Fmt.pr
      "  Trillions of gates are counted without inlining: the hierarchy of@.\
      \  boxed subcircuits (o7/o8/o4/o1/a5/a6/a4) multiplies per-call costs.@."
  end

let e4 () =
  section "E4 (paper 6): BWT circuits, QCL vs Quipper orthodox vs template";
  let qcl = Qcl_baseline.Bwt_qcl.generate () in
  let orth = Algo_bwt.generate ~which:`Orthodox () in
  let tmpl = Algo_bwt.generate ~which:`Template () in
  let cq = Gatecount.aggregate qcl
  and co = Gatecount.aggregate orth
  and ct = Gatecount.aggregate tmpl in
  let nots c =
    Gatecount.Counts.fold
      (fun k v acc ->
        if k.Gatecount.kind = "Not" then
          let d = k.Gatecount.pos_controls + k.Gatecount.neg_controls in
          let a0, a1, a2 = acc in
          if d = 0 then (a0 + v, a1, a2)
          else if d = 1 then (a0, a1 + v, a2)
          else (a0, a1, a2 + v)
        else acc)
      c (0, 0, 0)
  in
  let n0q, n1q, n2q = nots cq in
  let n0o, n1o, n2o = nots co in
  let n0t, n1t, n2t = nots ct in
  let w c = Gatecount.find_kind c "W" + Gatecount.find_kind c "W*" in
  let rot c = Gatecount.find_kind c "exp(-i%Z)" in
  Fmt.pr "  %-8s | %21s | %21s | %21s@." "" "QCL" "orthodox" "template";
  Fmt.pr "  %-8s | %10s %10s | %10s %10s | %10s %10s@." "" "paper" "ours" "paper"
    "ours" "paper" "ours";
  let line name pq po pt vq vo vt =
    Fmt.pr "  %-8s | %10s %10d | %10s %10d | %10s %10d@." name pq vq po vo pt vt
  in
  line "Init" "58" "313" "777"
    (Gatecount.find_kind cq "Init0" + Gatecount.find_kind cq "Init1")
    (Gatecount.find_kind co "Init0" + Gatecount.find_kind co "Init1")
    (Gatecount.find_kind ct "Init0" + Gatecount.find_kind ct "Init1");
  line "Not" "746" "8" "0" n0q n0o n0t;
  line "CNot1" "9012" "472" "344" n1q n1o n1t;
  line "CNot2" "7548" "768" "1760" n2q n2o n2t;
  line "e-itZ" "4" "4" "4" (rot cq) (rot co) (rot ct);
  line "W" "48" "48" "48" (w cq) (w co) (w ct);
  line "Term" "0" "307" "771"
    (Gatecount.find_kind cq "Term0" + Gatecount.find_kind cq "Term1")
    (Gatecount.find_kind co "Term0" + Gatecount.find_kind co "Term1")
    (Gatecount.find_kind ct "Term0" + Gatecount.find_kind ct "Term1");
  line "Meas" "0" "6" "6" (Gatecount.find_kind cq "Meas")
    (Gatecount.find_kind co "Meas") (Gatecount.find_kind ct "Meas");
  line "Total" "17358" "1300" "2156" (Gatecount.total_logical cq)
    (Gatecount.total_logical co) (Gatecount.total_logical ct);
  line "Qubits" "58" "26" "108"
    (Gatecount.peak_wires qcl) (Gatecount.peak_wires orth) (Gatecount.peak_wires tmpl);
  Fmt.pr
    "  Shape check: QCL >> orthodox on gates (%dx here, ~13x in the paper);@.\
    \  QCL ~2-3x orthodox on qubits; template trades more qubits and@.\
    \  Init/Term for automatic generation, staying far below QCL's total.@."
    (Gatecount.total_logical cq / max 1 (Gatecount.total_logical co))

let e5 () =
  section "E5 (paper 4.6.1): the parity oracle's wire budget";
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 4 Qdata.qubit) Quipper_template.Build.parity
  in
  let s = Gatecount.summarize b in
  row3 "" "paper" "this repo";
  row3 "template: wires (4 inputs)" "7" (string_of_int s.Gatecount.qubits);
  let shape = Qdata.pair (Qdata.list_of 4 Qdata.qubit) Qdata.qubit in
  let b2, _ =
    Circ.generate ~in_:shape
      (Quipper_template.Oracle.classical_to_reversible ~out:Qdata.qubit
         Quipper_template.Build.parity)
  in
  let s2 = Gatecount.summarize b2 in
  row3 "reversible: persistent wires" "5" (string_of_int s2.Gatecount.outputs);
  row3 "reversible: inits = terms" "yes"
    (if
       Gatecount.find_kind s2.Gatecount.counts "Init0"
       = Gatecount.find_kind s2.Gatecount.counts "Term0"
     then "yes"
     else "NO")

let e6 () =
  section "E6 (paper 4.6.1): the sin(x) oracle over 32+32-bit fixed point";
  if quick then Fmt.pr "  [skipped in quick mode]@."
  else begin
    let b, dt = time (fun () -> Algo_qls.generate_sin ()) in
    let s = Gatecount.summarize b in
    row3 "" "paper" "this repo";
    row3 "total gates" "3,273,010" (commas s.Gatecount.total);
    row3 "qubits" "(not reported)" (commas s.Gatecount.qubits);
    Fmt.pr "  (generated in %.1fs; our structured adders undercut the paper's@." dt;
    Fmt.pr "   sharing-free lifted arithmetic by ~5x — same order of magnitude)@."
  end

let e7 () =
  section "E7 (paper 4.6.1): the Hex flood-fill oracle, 9x7 board";
  if quick then Fmt.pr "  [skipped in quick mode]@."
  else begin
    let b, dt = time (fun () -> Algo_bf.generate_oracle ()) in
    let s = Gatecount.summarize b in
    let b2, dt2 = time (fun () -> Algo_bf.generate_oracle_moves ()) in
    let s2 = Gatecount.summarize b2 in
    row3 "" "paper" "this repo";
    row3 "board-input oracle (shared)" "-" (commas s.Gatecount.total);
    row3 "record-input oracle (no CSE)" "-" (commas s2.Gatecount.total);
    row3 "paper's oracle" "2,800,000" "(between the two)";
    Fmt.pr
      "  (%.1fs + %.1fs; the paper's lifted implementation shares less than@.\
      \   our board oracle and more than our fully re-expanded record oracle,@.\
      \   so its 2.8M gates fall between our %s and %s)@."
      dt dt2 (commas s.Gatecount.total) (commas s2.Gatecount.total)
  end

(* ================================================================== *)
(* Figures *)

let figure title c =
  Fmt.pr "@.--- %s ---@." title;
  print_string (Ascii.render ~max_columns:200 c)

let figures () =
  section "Figures (ASCII renderings of the paper's circuit diagrams)";
  let open Circ in
  let mycirc (a, b) =
    let* a = hadamard a in
    let* b = hadamard b in
    let* () = cnot ~control:a ~target:b in
    return (a, b)
  in
  let pair2 = Qdata.pair Qdata.qubit Qdata.qubit in
  let b, _ = Circ.generate ~in_:pair2 mycirc in
  figure "F4 (4.4.1) mycirc" b.Circuit.main;
  let b, _ =
    Circ.generate ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit)
      (fun (a, b, c) ->
        with_ancilla (fun x ->
            let* () = qnot_ x |> controlled [ ctl a; ctl b ] in
            let* () = hadamard_ c |> controlled [ ctl x ] in
            let* () = qnot_ x |> controlled [ ctl a; ctl b ] in
            return (a, b, c)))
  in
  figure "F5 (4.4.2) mycirc3: scoped ancilla 0|- ... -|0" b.Circuit.main;
  let timestep (a, b, c) =
    let* _ = mycirc (a, b) in
    let* () = qnot_ c |> controlled [ ctl a; ctl b ] in
    let* _ = reverse_simple pair2 mycirc (a, b) in
    return (a, b, c)
  in
  let b, _ =
    Circ.generate ~in_:(Qdata.triple Qdata.qubit Qdata.qubit Qdata.qubit) timestep
  in
  figure "F6a (4.4.3) timestep" b.Circuit.main;
  let b2 = Decompose.decompose_generic Decompose.Binary b in
  figure "F6b (4.4.3) timestep2 = decompose_generic Binary (V / V* ladder)"
    b2.Circuit.main;
  let b, _ =
    Circ.generate ~in_:(Qdata.list_of 4 Qdata.qubit) Quipper_template.Build.parity
  in
  figure "F7a (4.6.1) template_f on 4 qubits" b.Circuit.main;
  let shape = Qdata.pair (Qdata.list_of 4 Qdata.qubit) Qdata.qubit in
  let b, _ =
    Circ.generate ~in_:shape
      (Quipper_template.Oracle.classical_to_reversible ~out:Qdata.qubit
         Quipper_template.Build.parity)
  in
  figure "F7b (4.6.1) classical_to_reversible (unpack template_f)" b.Circuit.main;
  let m = 2 in
  let shape = Qdata.triple (Qureg.shape m) (Qureg.shape m) Qdata.qubit in
  let b, _ =
    Circ.generate ~in_:shape (fun (a, bb, r) ->
        let* () = Algo_bwt.timestep ~dt:0.3 a bb r in
        return (a, bb, r))
  in
  figure "F1: the BWT diffusion timestep (W / e^{-iZt} / W*)" b.Circuit.main;
  let p = { Algo_tf.Oracle.l = 2; n = 2; r = 1 } in
  let b = Algo_tf.Qwtfp.generate_mul ~p () in
  figure "F3 (5.3.1): o8_MUL top level (boxed o7_ADD / double_TF ladder)"
    b.Circuit.main;
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  figure "F2 (5.3.1): o4_POW17 top level (call gate into the o4 box)" b.Circuit.main;
  (match Circuit.Namespace.find_opt "o4" b.Circuit.subs with
  | Some sub ->
      figure "F2 (cont.): inside the o4 box — o8 calls and their mirrored o8* inverses"
        sub.Circuit.circ
  | None -> ());
  let b = Algo_tf.Qwtfp.generate_qwsh ~p () in
  match Circuit.Namespace.find_opt "a6" b.Circuit.subs with
  | Some sub ->
      figure "F8 (5.3.2): inside a6_QWSH — diffusion, qRAM sandwich, a14 swap"
        sub.Circuit.circ
  | None -> ()

(* ================================================================== *)
(* Ablations (DESIGN.md)                                               *)

let ablations () =
  section "Ablations";
  (* 1. control trimming in with_computed *)
  let l = 6 in
  let with_trim flag f =
    Circ.control_trimming := flag;
    Fun.protect ~finally:(fun () -> Circ.control_trimming := true) f
  in
  let count () =
    (* the unboxed multiplier, so the ambient control reaches the
       with_computed sandwiches inside *)
    let b, _ =
      Circ.generate
        ~in_:(Qdata.pair Qdata.qubit (Qdata.pair (Qureg.shape l) (Qureg.shape l)))
        (fun (c, (x, y)) ->
          Circ.with_controls [ Circ.ctl c ] (Quipper_arith.Qinttf.mul ~x ~y ()))
    in
    (* trimming changes control arity, so its cost shows up after
       decomposition into the Toffoli base *)
    let d = Decompose.decompose_generic Decompose.Toffoli b in
    Gatecount.total (Gatecount.aggregate d)
  in
  let trimmed = with_trim true count in
  let untrimmed = with_trim false count in
  Fmt.pr "  controlled TF multiplication (l=6), Toffoli base: %d gates with@." trimmed;
  Fmt.pr "  with_computed control trimming (Quipper's behaviour) vs %d@." untrimmed;
  Fmt.pr "  without — %.2fx@."
    (Float.of_int untrimmed /. Float.of_int trimmed);
  (* 2. peephole optimizer: compute followed by its reverse melts away *)
  let p17 = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b, _ =
    Circ.generate ~in_:(Qureg.shape p17.Algo_tf.Oracle.l) (fun x ->
        let open Circ in
        let pair_sh =
          Qdata.pair (Qureg.shape p17.Algo_tf.Oracle.l) (Qureg.shape p17.Algo_tf.Oracle.l)
        in
        let* x, x17 = Algo_tf.Oracle.o4_POW17 ~l:p17.Algo_tf.Oracle.l x in
        reverse_fun ~in_:(Qureg.shape p17.Algo_tf.Oracle.l) ~out:pair_sh
          (Algo_tf.Oracle.o4_POW17 ~l:p17.Algo_tf.Oracle.l)
          (x, x17))
  in
  let before = Gatecount.total (Gatecount.aggregate b) in
  let after = Gatecount.total (Gatecount.aggregate (Transform.cancel_inverses b)) in
  Fmt.pr "  peephole on POW17;POW17* (l=4): %d -> %d gates@." before after;
  (* 3. boxed vs inlined counting *)
  let p = { Algo_tf.Oracle.l = 8; n = 4; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_oracle ~p () in
  let _, t_boxed = time (fun () -> Gatecount.aggregate b) in
  let flat, t_inline = time (fun () -> Circuit.inline b) in
  let _, t_flat = time (fun () -> Gatecount.shallow flat) in
  Fmt.pr
    "  counting the l=8 oracle: %.4fs hierarchically vs %.4fs inlining@.\
    \  + %.4fs counting flat (%d gates) — and inlining is impossible at@.\
    \  the paper's l=31 n=15 r=6 scale@."
    t_boxed t_inline t_flat (Array.length flat.Circuit.gates);
  (* 4. decomposition cost *)
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let base = Gatecount.total (Gatecount.aggregate b) in
  let tof =
    Gatecount.total (Gatecount.aggregate (Decompose.decompose_generic Decompose.Toffoli b))
  in
  let bin =
    Gatecount.total (Gatecount.aggregate (Decompose.decompose_generic Decompose.Binary b))
  in
  Fmt.pr "  POW17 (l=4) gate totals by base: default %d, Toffoli %d, Binary %d@."
    base tof bin;
  (* 5. the Alternatives module (paper 5.2): same semantics, different costs *)
  let p = { Algo_tf.Oracle.l = 3; n = 2; r = 3 } in
  let shape =
    Qdata.triple
      (Qdata.list_of (1 lsl p.Algo_tf.Oracle.r) (Qureg.shape p.Algo_tf.Oracle.n))
      (Qureg.shape p.Algo_tf.Oracle.r)
      (Qureg.shape p.Algo_tf.Oracle.n)
  in
  let qram_cost fetch =
    let b, _ =
      Circ.generate ~in_:shape (fun (tt, i, ttd) ->
          let open Circ in
          let* () = fetch i (Array.of_list tt) ttd in
          return (tt, i, ttd))
    in
    let d = Decompose.decompose_generic Decompose.Toffoli b in
    Gatecount.total (Gatecount.aggregate d)
  in
  let direct = qram_cost (fun i tt ttd -> Algo_tf.Qwtfp.qram_fetch ~p i tt ttd) in
  let selswap =
    qram_cost (fun i tt ttd -> Algo_tf.Alternatives.qram_fetch_swap ~p i tt ttd)
  in
  Fmt.pr
    "  qRAM fetch (r=3), Toffoli base: direct (wide controls) %d gates vs@.\
    \  select-swap %d gates@."
    direct selswap;
  let l = 4 in
  let pow_cost f =
    let b, _ = Circ.generate ~in_:(Qureg.shape l) f in
    Gatecount.total (Gatecount.aggregate b)
  in
  Fmt.pr "  POW17 (l=4): square-chain %d gates vs naive powering %d gates@."
    (pow_cost (fun x -> Algo_tf.Oracle.o4_POW17 ~l x))
    (pow_cost (fun x -> Algo_tf.Alternatives.o4_POW17_naive ~l x));
  (* 6. ancilla-pool wire allocation (paper 4.2.1) *)
  let p = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let flat = Circuit.inline b in
  let before = Allocate.width_of flat in
  let after = Allocate.width_of (Allocate.compact_circuit flat) in
  Fmt.pr
    "  ancilla pool (4.2.1): inlined POW17 uses %d distinct wire ids;@.\
    \  register allocation packs them into %d physical wires (= the peak)@."
    before after;
  Fmt.pr "  POW17 depth (upper bound): %d over %d gates@."
    (Depth.depth b)
    (Gatecount.total (Gatecount.aggregate b))

(* ================================================================== *)
(* N1: the robustness stack — fault-site enumeration, Pauli injection,
   noise channels and the resilient trial runner (EXPERIMENTS.md N1) *)

(* Grover search over [gn] qubits for the [marked] basis state, with the
   phase oracle built from a classical predicate (ancilla-heavy: the
   predicate computes and uncomputes its bit tests every iteration).
   Shared by N1 (noise trials) and N2 (engine timings). *)
let grover_circuit ~gn ~marked =
  let module Grover = Quipper_primitives.Grover in
  let module Build = Quipper_template.Build in
  let module Oracle = Quipper_template.Oracle in
  let open Circ in
  let predicate qs =
    let* bit_tests =
      mapm
        (fun (i, q) ->
          if (marked lsr i) land 1 = 1 then
            let* t = qinit_bit false in
            let* () = cnot ~control:q ~target:t in
            return t
          else Build.bnot q)
        (List.mapi (fun i q -> (i, q)) qs)
    in
    match bit_tests with
    | [] -> Build.bconst true
    | t :: rest -> foldm Build.band t rest
  in
  let phase_oracle qs =
    let* _ = Oracle.classical_to_phase predicate qs in
    return ()
  in
  let search =
    let* qs = mapm (fun _ -> qinit_bit false) (List.init gn Fun.id) in
    let* () =
      Grover.search ~iterations:(Grover.iterations ~n:gn ~marked:1) phase_oracle qs
    in
    return qs
  in
  let gb, _ = Circ.generate_unit search in
  gb

let noise () =
  section "N1: fault injection + noise (assertive-termination coverage)";
  let module Qdint = Quipper_arith.Qdint in
  let module Sv = Quipper_sim.Statevector in
  let module Noise = Quipper_sim.Noise in
  let module Inject = Quipper_sim.Inject in
  let shape = Qdata.pair (Qdint.shape 3) (Qdint.shape 3) in
  let adder, _ =
    Circ.generate ~in_:shape (fun (x, y) ->
        Circ.bind (Qdint.add_in_place ~x ~y ()) (fun () -> Circ.return (x, y)))
  in
  let inputs = shape.Qdata.bleaves (5, 4) in
  (* y := y + x mod 8, so (5, 4) |-> (5, 1) *)
  let expected = shape.Qdata.bleaves (5, 1) in
  (* 1. fault-site enumeration throughput *)
  let reps = 100 in
  let sites, t_enum =
    time (fun () ->
        let s = ref [] in
        for _ = 1 to reps do
          s := Faultsite.enumerate adder
        done;
        !s)
  in
  Fmt.pr "  3-bit in-place adder: %d fault sites; enumerate %.1f us/call@."
    (List.length sites)
    (t_enum /. float_of_int reps *. 1e6);
  (* 2. exhaustive single-fault campaign: X/Y/Z at every site *)
  let r, t_rep = time (fun () -> Inject.report ~seed:1 adder inputs) in
  Fmt.pr "%a" Inject.pp_report r;
  Fmt.pr "  campaign: %.2f s total, %.2f ms/fault@." t_rep
    (t_rep /. float_of_int r.Inject.faults *. 1e3);
  (* 3. per-run noisy overhead vs the clean statevector path *)
  let shots = 200 in
  let (), t_clean =
    time (fun () ->
        for seed = 1 to shots do
          ignore (Sv.run_circuit ~seed adder inputs)
        done)
  in
  let cfg = Noise.depolarizing 0.01 in
  let (), t_noisy =
    time (fun () ->
        for seed = 1 to shots do
          try ignore (Noise.run_circuit ~seed cfg adder inputs)
          with Errors.Error (Errors.Termination_assertion _) -> ()
        done)
  in
  Fmt.pr "  per-run: clean %.3f ms, noisy (depol 1%%) %.3f ms (x%.2f overhead)@."
    (t_clean /. float_of_int shots *. 1e3)
    (t_noisy /. float_of_int shots *. 1e3)
    (t_noisy /. t_clean);
  (* 4. resilient trial runner on the adder *)
  let s =
    Noise.run_trials ~master_seed:2026 ~trials:100 ~max_failures:3
      (Noise.depolarizing 0.01) adder inputs ~expected
  in
  Fmt.pr "  adder under depolarizing 1%%, 100 trials, <=3 retries:@.  %a@."
    Noise.pp_stats s;
  (* 5. Grover under depolarizing noise (slow: skipped by `quick`) *)
  if quick then Fmt.pr "  (quick: skipping Grover-under-noise trials)@."
  else begin
    let gn = 5 and marked = 0b10110 in
    let gb = grover_circuit ~gn ~marked in
    let g_expected = List.init gn (fun i -> (marked lsr i) land 1 = 1) in
    let gs, t_g =
      time (fun () ->
          Noise.run_trials ~master_seed:7 ~trials:30 ~max_failures:3
            (Noise.depolarizing 0.001) gb [] ~expected:g_expected)
    in
    Fmt.pr "  Grover n=%d marked=%d under depolarizing 0.1%%, 30 trials:@.  %a@."
      gn marked Noise.pp_stats gs;
    Fmt.pr "  %.2f s (%d attempts, %.1f ms/attempt)@." t_g gs.Noise.attempts
      (t_g /. float_of_int gs.Noise.attempts *. 1e3)
  end

(* ================================================================== *)
(* N2: the fast statevector engine vs the preserved seed engine
   (EXPERIMENTS.md N2) — same circuits, same seeds, bit-identical
   amplitudes, wall-clock side by side *)

let n2 () =
  section "N2: fast statevector engine (in-place kernels) vs seed engine";
  let module Sv = Quipper_sim.Statevector in
  let module Ref = Quipper_sim.Reference in
  let module Rng = Quipper_math.Rng in
  let open Circ in
  (* min-of-3: a single run of either engine can eat a scheduler stall
     or a page-fault burst; the minimum is the honest per-engine cost *)
  let time_best f =
    let x0, t0 = time f in
    let r = ref x0 and best = ref t0 in
    for _ = 1 to 2 do
      let x, t = time f in
      r := x;
      if t < !best then best := t
    done;
    (!r, !best)
  in
  let speed label t_old t_new bitident =
    Fmt.pr "  %-36s %8.3f s -> %7.3f s  %6.1fx  %s@." label t_old t_new
      (t_old /. t_new)
      (if bitident then "[bit-identical]" else "[MISMATCH]")
  in
  Fmt.pr "  %-36s %10s %12s %7s@." "" "seed" "fast" "speedup";
  (* 1. random dense circuit: the whole register in superposition, a
     Clifford+T-weighted mix (T-heavy, as fault-tolerant circuits are)
     of the specialised kernels — T/S/CZ/CNOT/X/H — plus an occasional
     compute/uncompute sandwich nesting a pair of ancillas above the
     register, all at full vector size *)
  let n = if quick then 14 else 18 in
  let gates = if quick then 200 else 600 in
  let dense =
    let rng = Rng.create 42 in
    let b, _ =
      Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun ql ->
          let qs = Array.of_list ql in
          let* () = iterm hadamard_ ql in
          let* () =
            iterm
              (fun _ ->
                let i = Rng.int rng n in
                match Rng.int rng 24 with
                | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 ->
                    let* _ = gate_T qs.(i) in
                    return ()
                | 8 | 9 ->
                    let* _ = gate_S qs.(i) in
                    return ()
                | 10 | 11 | 12 | 13 | 14 | 15 ->
                    (* CZ is symmetric: put the target on the higher wire,
                       where the diagonal kernel's runs are longest *)
                    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
                    let c = if i < j then i else j and t = if i < j then j else i in
                    let* _ = with_controls [ ctl qs.(c) ] (gate_Z qs.(t)) in
                    return ()
                | 16 ->
                    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
                    cnot ~control:qs.(i) ~target:qs.(j)
                | 17 -> qnot_ qs.(i)
                | 18 -> hadamard_ qs.(i)
                | 19 -> rot_Z (0.1 +. Rng.float rng) qs.(i)
                | _ ->
                    (* a nested compute/uncompute pair of ancillas, as a
                       Toffoli-cascade oracle would allocate *)
                    with_computed
                      (let* a = qinit Qdata.qubit false in
                       let* () = cnot ~control:qs.(i) ~target:a in
                       let* b = qinit Qdata.qubit false in
                       return (a, b))
                      (fun _ -> return ()))
              (List.init (gates - n) Fun.id)
          in
          return ql)
    in
    b
  in
  let zeros k = List.init k (fun _ -> false) in
  let st, t_new = time_best (fun () -> Sv.run_circuit ~seed:1 dense (zeros n)) in
  let rst, t_old = time_best (fun () -> Ref.run_circuit ~seed:1 dense (zeros n)) in
  speed
    (Fmt.str "dense random, %d qubits x %d gates" n gates)
    t_old t_new
    (Sv.amplitudes st = Ref.amplitudes rst);
  (* 2. ancilla churn: the pure Init/Term ablation — repeated
     [with_computed] whose compute block just allocates an ancilla, so
     each round is exactly one Init and one assertive Term above a dense
     [live]-qubit state. This isolates the allocation machinery: per
     round the seed engine allocates a double-size vector, copies, then
     reduces |0>-probability with a boxed full scan, allocates the
     half-size vector and copies back; the fast engine fills the upper
     half of its high-water buffer in place and shrinks for free. An X
     every 8th round keeps the live state changing. *)
  let live = if quick then 12 else 20 in
  let rounds = if quick then 40 else 100 in
  let churn =
    let b, _ =
      Circ.generate ~in_:(Qdata.list_of live Qdata.qubit) (fun ql ->
          let qs = Array.of_list ql in
          let* () = iterm hadamard_ ql in
          let* () =
            iterm
              (fun r ->
                let* () =
                  with_computed
                    (qinit Qdata.qubit false)
                    (fun _ -> return ())
                in
                if r mod 8 = 0 then qnot_ qs.(r mod live) else return ())
              (List.init rounds Fun.id)
          in
          return ql)
    in
    b
  in
  let st, t_new = time_best (fun () -> Sv.run_circuit ~seed:1 churn (zeros live)) in
  let rst, t_old = time_best (fun () -> Ref.run_circuit ~seed:1 churn (zeros live)) in
  speed
    (Fmt.str "ancilla churn, %d live x %d rounds" live rounds)
    t_old t_new
    (Sv.amplitudes st = Ref.amplitudes rst);
  (* 3. a real algorithm: Grover with its ancilla-heavy phase oracle *)
  let gn = 5 and marked = 0b10110 in
  let gb = grover_circuit ~gn ~marked in
  let shots = if quick then 10 else 40 in
  let run run_one () =
    for seed = 1 to shots do
      run_one seed
    done
  in
  let (), t_new = time_best (run (fun seed -> ignore (Sv.run_circuit ~seed gb []))) in
  let (), t_old = time_best (run (fun seed -> ignore (Ref.run_circuit ~seed gb []))) in
  speed
    (Fmt.str "Grover n=%d, %d runs" gn shots)
    t_old t_new
    (Sv.amplitudes (Sv.run_circuit ~seed:1 gb [])
    = Ref.amplitudes (Ref.run_circuit ~seed:1 gb []));
  Fmt.pr
    "  Same floats out of both engines on every circuit above: the fast@.\
    \  kernels replay the seed's arithmetic exactly, they just skip its@.\
    \  allocations (max_qubits is now %d; the seed capped at %d).@."
    Sv.max_qubits Ref.max_qubits

(* ================================================================== *)
(* N5: gate-fusion compiler (EXPERIMENTS.md N5). Three workloads
   against the plain statevector engine:

     1. a dense Clifford+T mix with phase-polynomial locality — runs of
        diagonal gates (T/S/CZ/Rz) confined to a small neighbourhood,
        the shape arithmetic and Trotter circuits take after
        decomposition, separated by Hadamard/CNOT basis changes;
     2. the same traffic under ancilla churn: a compute/uncompute
        ancilla pair allocated and retired inside every segment, so
        Init/Term land mid-run and must commute past pending blocks;
     3. boxed repeated calls: one arithmetic-style body boxed once and
        called over rotating wire windows, fused with the per-box
        compilation cache on and off — the cache's own contribution is
        the gap between the two fused legs.

   Every row also lands in BENCH_N5.json for machine consumption. *)

let n5 () =
  section "N5: gate-fusion compiler vs plain statevector engine";
  let module Sv = Quipper_sim.Statevector in
  let module Fuse = Quipper_sim.Fuse in
  let module Cplx = Quipper_math.Cplx in
  let module Rng = Quipper_math.Rng in
  let open Circ in
  (* min-of-3, as in N2: the minimum is the honest per-engine cost *)
  let time_best f =
    let x0, t0 = time f in
    let r = ref x0 and best = ref t0 in
    for _ = 1 to 2 do
      let x, t = time f in
      r := x;
      if t < !best then best := t
    done;
    (!r, !best)
  in
  let zeros k = List.init k (fun _ -> false) in
  let flat_gates b = Array.length (Circuit.inline b).Circuit.gates in
  let max_dev a c =
    let d = ref 0.0 in
    Array.iteri
      (fun i x ->
        let e = Cplx.norm (Cplx.sub x c.(i)) in
        if e > !d then d := e)
      a;
    !d
  in
  let json = ref [] in
  let record name gates secs speedup =
    json := (name, gates, secs, speedup) :: !json
  in
  Fmt.pr "  %-34s %8s %10s %10s %7s@." "" "gates" "unfused" "fused" "speedup";
  let row label gates t_unf t_fus dev =
    Fmt.pr "  %-34s %8s %9.3fs %9.3fs %6.2fx  [dev %.1e]@." label
      (commas gates) t_unf t_fus (t_unf /. t_fus) dev
  in
  (* 1. dense mix with phase-polynomial locality. Each segment picks a
     [w]-wire neighbourhood (inside the diagonal fusion window of 8)
     and emits a run of diagonal gates on it; the occasional CNOT
     reaching out of the neighbourhood has a diagonal control and an
     off-support target, so it commutes past the pending block instead
     of cutting the run. Between segments, Hadamard/X/CNOT churn
     changes basis across the whole register. *)
  let n = if quick then 12 else 20 in
  let segs = if quick then 16 else 60 in
  let w = 6 in
  let seg_diag = 32 and seg_churn = 6 in
  let mix_circ ~churn_ancilla =
    let rng = Rng.create 7 in
    let b, _ =
      Circ.generate ~in_:(Qdata.list_of n Qdata.qubit) (fun ql ->
          let qs = Array.of_list ql in
          let* () = iterm hadamard_ ql in
          let* () =
            iterm
              (fun _ ->
                let o = Rng.int rng (n - w + 1) in
                let pick () = o + Rng.int rng w in
                let diag_run m =
                  iterm
                    (fun _ ->
                      let i = pick () in
                      match Rng.int rng 10 with
                      | 0 | 1 | 2 | 3 ->
                          let* _ = gate_T qs.(i) in
                          return ()
                      | 4 | 5 ->
                          let* _ = gate_S qs.(i) in
                          return ()
                      | 6 | 7 ->
                          let j = o + ((i - o + 1 + Rng.int rng (w - 1)) mod w) in
                          let* _ = with_controls [ ctl qs.(i) ] (gate_Z qs.(j)) in
                          return ()
                      | 8 -> rot_Z (0.1 +. Rng.float rng) qs.(i)
                      | _ ->
                          (* reaches out of the neighbourhood; commutes
                             past the pending diagonal block *)
                          let j = (o + w + Rng.int rng (n - w)) mod n in
                          cnot ~control:qs.(i) ~target:qs.(j))
                    (List.init m Fun.id)
                in
                let* () = diag_run (seg_diag / 2) in
                let* () =
                  if churn_ancilla then
                    with_computed
                      (let* a = qinit Qdata.qubit false in
                       let* () = cnot ~control:qs.(pick ()) ~target:a in
                       return a)
                      (fun _ -> return ())
                  else return ()
                in
                let* () = diag_run (seg_diag / 2) in
                iterm
                  (fun _ ->
                    let i = Rng.int rng n in
                    match Rng.int rng 3 with
                    | 0 -> hadamard_ qs.(i)
                    | 1 -> qnot_ qs.(i)
                    | _ ->
                        let j = (i + 1 + Rng.int rng (n - 1)) mod n in
                        cnot ~control:qs.(i) ~target:qs.(j))
                  (List.init seg_churn Fun.id))
              (List.init segs Fun.id)
          in
          return ql)
    in
    b
  in
  let mix_row label b =
    let g = flat_gates b in
    let sv, t_unf = time_best (fun () -> Sv.run_circuit ~seed:1 b (zeros n)) in
    let fu, t_fus = time_best (fun () -> Fuse.run_circuit ~seed:1 b (zeros n)) in
    let dev = max_dev (Sv.amplitudes sv) (Fuse.amplitudes fu) in
    row label g t_unf t_fus dev;
    Fmt.pr "    %a@." Fuse.pp_stats (Fuse.stats fu);
    record (label ^ "_unfused") g t_unf 1.0;
    record (label ^ "_fused") g t_fus (t_unf /. t_fus)
  in
  mix_row
    (Fmt.str "dense_mix_%dq" n)
    (mix_circ ~churn_ancilla:false);
  mix_row
    (Fmt.str "ancilla_churn_%dq" n)
    (mix_circ ~churn_ancilla:true);
  (* 3. boxed repeated calls. The body alternates diagonal runs with
     Hadamards over its 4 formal wires, so it compiles to a handful of
     blocks; each call lands on a different wire window, exercising the
     replay remap. *)
  let nb = if quick then 10 else 12 in
  let calls = if quick then 60 else 800 in
  let shape4 = Qdata.list_of 4 Qdata.qubit in
  let body ql =
    match ql with
    | [ a; b; c; d ] ->
        let qs = [| a; b; c; d |] in
        let seg k =
          iterm
            (fun i ->
              match (k + i) mod 4 with
              | 0 ->
                  let* _ = gate_T qs.(i mod 4) in
                  return ()
              | 1 ->
                  let* _ = gate_S qs.((i + 1) mod 4) in
                  return ()
              | 2 -> rot_Z 0.37 qs.((i + 2) mod 4)
              | _ ->
                  let* _ =
                    with_controls
                      [ ctl qs.(i mod 4) ]
                      (gate_Z qs.((i + 1) mod 4))
                  in
                  return ())
            (List.init 32 Fun.id)
        in
        let* () = seg 0 in
        let* () = hadamard_ qs.(0) in
        let* () = seg 1 in
        let* () = hadamard_ qs.(2) in
        let* () = seg 2 in
        return ql
    | _ -> assert false
  in
  let boxed =
    let b, _ =
      Circ.generate ~in_:(Qdata.list_of nb Qdata.qubit) (fun ql ->
          let qs = Array.of_list ql in
          let* () = iterm hadamard_ ql in
          let* () =
            iterm
              (fun r ->
                let args =
                  List.init 4 (fun i -> qs.((r + (i * 3)) mod nb))
                in
                let* _ = box "n5_body" ~in_:shape4 ~out:shape4 body args in
                return ())
              (List.init calls Fun.id)
          in
          return ql)
    in
    b
  in
  let g = flat_gates boxed in
  let nocache = { Fuse.default_config with Fuse.cache = false } in
  let sv, t_unf = time_best (fun () -> Sv.run_circuit ~seed:1 boxed (zeros nb)) in
  let fu0, t_nc =
    time_best (fun () ->
        Fuse.run_circuit ~config:nocache ~seed:1 boxed (zeros nb))
  in
  let fu, t_fus = time_best (fun () -> Fuse.run_circuit ~seed:1 boxed (zeros nb)) in
  let dev_nc = max_dev (Sv.amplitudes sv) (Fuse.amplitudes fu0) in
  let dev = max_dev (Sv.amplitudes sv) (Fuse.amplitudes fu) in
  let label = Fmt.str "boxed_calls_%dq" nb in
  row (label ^ " (cache off)") g t_unf t_nc dev_nc;
  row (label ^ " (cache on)") g t_unf t_fus dev;
  Fmt.pr "    %a@." Fuse.pp_stats (Fuse.stats fu);
  Fmt.pr "    box-cache win over re-fusing each call: %.2fx@." (t_nc /. t_fus);
  record (label ^ "_unfused") g t_unf 1.0;
  record (label ^ "_fused_nocache") g t_nc (t_unf /. t_nc);
  record (label ^ "_fused_cache") g t_fus (t_unf /. t_fus);
  (* machine-readable dump *)
  let oc = open_out "BENCH_N5.json" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (name, gates, secs, speedup) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Fmt.str
           "  {\"name\": %S, \"gates\": %d, \"seconds\": %.6f, \
            \"speedup_vs_unfused\": %.3f}"
           name gates secs speedup))
    (List.rev !json);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  -> BENCH_N5.json (%d entries)@." (List.length !json)

(* ================================================================== *)
(* N6: Pauli-frame fault engine (EXPERIMENTS.md N6). The
   error-correction workload: repetition-code memory under
   circuit-level depolarizing noise, distances 3..9, logical-error rate
   vs physical rate over >= 10^6 trials per point — 63 bit-packed
   trials per frame pass versus one full stabilizer simulation per
   trial on the slow path. Acceptance: the frame engine sustains the
   million-trial campaign at >= 100x slow-path throughput (largest
   distance). Every row lands in BENCH_N6.json. *)

let n6 () =
  section "N6: Pauli-frame engine (repetition-code memory campaigns)";
  let module R = Algo_repcode in
  let trials = if quick then 20_000 else 1_000_000 in
  let slow_trials = if quick then 1_000 else 4_000 in
  let physicals = [ 0.001; 0.003; 0.01; 0.03 ] in
  let speedup_p = 0.01 in
  let json = ref [] in
  let record line = json := line :: !json in
  Fmt.pr "  logical-error rate vs physical rate (frame engine, %s trials/point):@."
    (commas trials);
  Fmt.pr "  %-6s %10s %12s %12s %10s %12s@." "" "physical" "logical_err" "rate"
    "seconds" "trials/s";
  List.iter
    (fun d ->
      let p = { R.distance = d; rounds = d } in
      List.iter
        (fun ph ->
          let pt = R.run_point ~p ~physical:ph ~trials () in
          let tps = float_of_int trials /. pt.R.pt_seconds in
          Fmt.pr "  d=%-4d %10g %12d %12.3e %9.2fs %12s@." d ph
            pt.R.pt_logical_errors (R.logical_error_rate pt) pt.R.pt_seconds
            (commas (int_of_float tps));
          record
            (Fmt.str
               "  {\"name\": \"repcode_frame\", \"distance\": %d, \"rounds\": %d, \
                \"physical\": %g, \"trials\": %d, \"logical_errors\": %d, \
                \"logical_error_rate\": %.6e, \"seconds\": %.6f, \
                \"trials_per_sec\": %.1f}"
               d d ph trials pt.R.pt_logical_errors (R.logical_error_rate pt)
               pt.R.pt_seconds tps))
        physicals)
    [ 3; 5; 7; 9 ];
  Fmt.pr "  frame vs slow-path throughput (p = %g):@." speedup_p;
  Fmt.pr "  %-6s %12s %12s %8s@." "" "frame t/s" "slow t/s" "speedup";
  List.iter
    (fun d ->
      let p = { R.distance = d; rounds = d } in
      let pt = R.run_point ~p ~physical:speedup_p ~trials () in
      let pt_slow =
        R.run_point ~engine:`Slow ~p ~physical:speedup_p ~trials:slow_trials ()
      in
      let ftps = float_of_int trials /. pt.R.pt_seconds in
      let stps = float_of_int slow_trials /. pt_slow.R.pt_seconds in
      Fmt.pr "  d=%-4d %12s %12s %7.1fx@." d
        (commas (int_of_float ftps))
        (commas (int_of_float stps))
        (ftps /. stps);
      record
        (Fmt.str
           "  {\"name\": \"repcode_speedup\", \"distance\": %d, \"physical\": %g, \
            \"frame_trials\": %d, \"frame_trials_per_sec\": %.1f, \
            \"slow_trials\": %d, \"slow_trials_per_sec\": %.1f, \
            \"speedup_vs_slow\": %.2f}"
           d speedup_p trials ftps slow_trials stps (ftps /. stps)))
    [ 3; 5; 7; 9 ];
  let oc = open_out "BENCH_N6.json" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    (List.rev !json);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  -> BENCH_N6.json (%d entries)@." (List.length !json)

(* ================================================================== *)
(* N7: shot-service traffic benchmark (EXPERIMENTS.md N7). Batched
   many-shot execution: simulate each circuit once to its
   pre-measurement state, then draw every shot from the frozen state —
   versus the naive per-shot rebuild+resimulate loop — at 1, 8 and 64
   concurrent clients on the BWT exact-walk and repetition-code
   workloads. Acceptance: >= 10x shots/sec over naive at 64 clients on
   BWT, with bit-identical per-shot outcomes at equal seeds. Every row
   lands in BENCH_N7.json. *)

let n7 () =
  section "N7: shot service (batched sampling vs per-shot resimulation)";
  let module Serve = Quipper_serve in
  let module Rng = Quipper_math.Rng in
  let module Kernel = Quipper_sim.Kernel in
  let shots = if quick then 32 else 256 in
  let requests = if quick then 16 else 64 in
  let naive_requests = if quick then 2 else 4 in
  let client_levels = [ 1; 8; 64 ] in
  let json = ref [] in
  let record line = json := line :: !json in
  let workloads =
    [
      ( "bwt",
        fun () ->
          (* the exact welded-tree walk, *not* measured: the
             pre-measurement state the service freezes (shotd defaults) *)
          let g = Algo_bwt.Exact.build ~depth:2 in
          let b, _ = Circ.generate_unit (Algo_bwt.Exact.walk g ~steps:1 ~dt:0.3) in
          (b, []) );
      ( "repcode",
        fun () ->
          ( Algo_repcode.generate
              ~p:{ Algo_repcode.distance = 3; rounds = 3 }
              (),
            [] ) );
    ]
  in
  let saved = !Kernel.num_domains in
  Fmt.pr "  %-10s %8s %10s %9s %12s %14s@." "" "clients" "shots" "seconds"
    "shots/s" "cache hit/miss";
  List.iter
    (fun (name, mk) ->
      let circuit, inputs = mk () in
      let reqs =
        List.init requests (fun r ->
            { Serve.circuit; inputs; shots; seed = Rng.derive 11 r })
      in
      let head = List.filteri (fun i _ -> i < naive_requests) reqs in
      (* the naive per-shot rebuild+resimulate baseline: timed over a
         few requests (it is the slow path), extrapolated to shots/s *)
      let naive_svc = Serve.create () in
      let naive_out, naive_s =
        time (fun () -> List.map (Serve.naive naive_svc) head)
      in
      let naive_shots = naive_requests * shots in
      let naive_sps = float_of_int naive_shots /. naive_s in
      Fmt.pr "  %-10s %8s %10s %9.3f %12s %14s@." name "naive"
        (commas naive_shots) naive_s
        (commas (int_of_float naive_sps))
        "-";
      record
        (Fmt.str
           "  {\"name\": \"%s_naive\", \"requests\": %d, \"shots_per_request\": \
            %d, \"shots\": %d, \"seconds\": %.6f, \"shots_per_sec\": %.1f}"
           name naive_requests shots naive_shots naive_s naive_sps);
      List.iter
        (fun clients ->
          let svc = Serve.create () in
          Kernel.num_domains := clients;
          let replies, s = time (fun () -> Serve.submit_batch svc reqs) in
          Kernel.num_domains := saved;
          let total = requests * shots in
          let sps = float_of_int total /. s in
          let sampled, resimulated =
            List.fold_left
              (fun (sa, re) -> function
                | Ok r -> (sa + r.Serve.sampled, re + r.Serve.resimulated)
                | Error e -> failwith (name ^ ": " ^ e))
              (0, 0) replies
          in
          (* bit-identity: batched shots equal the naive per-shot
             outcomes at the same seeds, whatever the client count *)
          List.iteri
            (fun i out ->
            match List.nth replies i with
            | Ok r ->
                if r.Serve.outcomes <> out then
                  failwith (name ^ ": batched outcomes differ from naive")
            | Error e -> failwith (name ^ ": " ^ e))
            naive_out;
          let st = Serve.stats svc in
          Fmt.pr "  %-10s %8d %10s %9.3f %12s %10d/%d@." name clients
            (commas total) s
            (commas (int_of_float sps))
            st.Serve.hits st.Serve.misses;
          record
            (Fmt.str
               "  {\"name\": \"%s_batched\", \"clients\": %d, \"requests\": %d, \
                \"shots_per_request\": %d, \"shots\": %d, \"sampled\": %d, \
                \"resimulated\": %d, \"seconds\": %.6f, \"shots_per_sec\": \
                %.1f, \"cache_hits\": %d, \"cache_misses\": %d, \
                \"speedup_vs_naive\": %.2f, \"bit_identical_to_naive\": true}"
               name clients requests shots total sampled resimulated s sps
               st.Serve.hits st.Serve.misses (sps /. naive_sps)))
        client_levels;
      (* cache hit-rate ablation: resubmit the same batch to a warm
         service — every request must hit the prepared entry *)
      let svc = Serve.create () in
      Kernel.num_domains := 1;
      let _ = Serve.submit_batch svc reqs in
      let cold = Serve.stats svc in
      let _, warm_s = time (fun () -> Serve.submit_batch svc reqs) in
      Kernel.num_domains := saved;
      let warm = Serve.stats svc in
      let warm_hits = warm.Serve.hits - cold.Serve.hits in
      let warm_sps = float_of_int (requests * shots) /. warm_s in
      Fmt.pr "  %-10s %8s %10s %9.3f %12s %10d/%d@." name "warm"
        (commas (requests * shots))
        warm_s
        (commas (int_of_float warm_sps))
        warm_hits
        (warm.Serve.misses - cold.Serve.misses);
      record
        (Fmt.str
           "  {\"name\": \"%s_warm_cache\", \"clients\": 1, \"requests\": %d, \
            \"shots\": %d, \"seconds\": %.6f, \"shots_per_sec\": %.1f, \
            \"warm_hits\": %d, \"warm_misses\": %d, \"cold_hits\": %d, \
            \"cold_misses\": %d}"
           name requests (requests * shots) warm_s warm_sps warm_hits
           (warm.Serve.misses - cold.Serve.misses)
           cold.Serve.hits cold.Serve.misses))
    workloads;
  let oc = open_out "BENCH_N7.json" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    (List.rev !json);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  -> BENCH_N7.json (%d entries)@." (List.length !json)

(* ================================================================== *)
(* N8: symbolic resource estimation                                    *)

(* lib/estimate computes the full resource vector — per-key gate counts,
   T-count, depth bound, peak wires — symbolically over the subroutine
   tree with arbitrary-precision accumulators, so parameter points
   orders of magnitude past anything enumerable cost the same as tiny
   ones. Acceptance: bit-identical totals vs the streamed exact
   gatecount at small parameters (asserted before timing anything), and
   trillion-gate totals in well under a second where body generation is
   cheap. Every row lands in BENCH_N8.json. *)

let n8 () =
  section "N8: symbolic resource estimation (lib/estimate vs streamed exact)";
  let module Estimate = Quipper_estimate.Estimate in
  let module Wide = Quipper_estimate.Wide in
  let json = ref [] in
  let record line = json := line :: !json in
  (* the composed BWT estimate, exactly as bin/bwt.exe --estimate builds
     it: entrance prologue + s-fold symbolic repetition of one walk
     timestep + measurement epilogue *)
  let bwt_estimate (p : Algo_bwt.params) =
    let oracle = Algo_bwt.orthodox_oracle p in
    let m = Algo_bwt.label_width p in
    let prologue =
      Estimate.of_circ_unit (Qureg.init ~width:m Algo_bwt.entrance)
    in
    let step =
      Estimate.of_circ ~in_:(Qureg.shape m) (fun a ->
          Circ.(
            let* () = Algo_bwt.walk_step ~p oracle a in
            return a))
    in
    let epilogue =
      Estimate.of_circ ~in_:(Qureg.shape m) (fun a ->
          Circ.measure (Qureg.shape m) a)
    in
    Estimate.seq prologue
      (Estimate.seq (Estimate.repeat p.Algo_bwt.s step) epilogue)
  in
  (* the composed TF estimate, as bin/tf.exe --estimate: prologue +
     r1-fold quantum-walk step + epilogue *)
  let tf_estimate (p : Algo_tf.Oracle.params) =
    let shape = Algo_tf.Qwtfp.regs_shape p in
    let prologue = Estimate.of_circ_unit (Algo_tf.Qwtfp.a1_prologue ~p) in
    let step =
      Estimate.of_circ ~in_:shape (fun regs -> Algo_tf.Qwtfp.a4_GCQWStep ~p regs)
    in
    let epilogue =
      Estimate.of_circ ~in_:shape (fun regs -> Algo_tf.Qwtfp.a1_epilogue ~p regs)
    in
    Estimate.seq prologue
      (Estimate.seq
         (Estimate.repeat (Algo_tf.Qwtfp.r1_iterations p) step)
         epilogue)
  in
  (* 1. the anchor: at enumerable parameters the symbolic vector must be
     bit-identical to the streamed exact summary — else nothing below
     means anything *)
  let anchor name slug agrees streamed_s est_s =
    if not agrees then failwith (name ^ ": symbolic estimate != streamed exact");
    Fmt.pr "  %-34s streamed %.3fs, symbolic %.3fs, bit-identical@." name
      streamed_s est_s;
    record
      (Fmt.str
         "  {\"name\": \"%s_anchor\", \"streamed_seconds\": %.6f, \
          \"estimate_seconds\": %.6f, \"bit_identical\": true}"
         slug streamed_s est_s)
  in
  let p_bwt = { Algo_bwt.default_params with Algo_bwt.n = 3; s = 2 } in
  let (sum_bwt, _), sb =
    time (fun () ->
        Circ.run_streaming_unit
          (Algo_bwt.whole ~p:p_bwt (Algo_bwt.orthodox_oracle p_bwt))
          (Sink.gatecount ()))
  in
  let v_bwt, eb = time (fun () -> bwt_estimate p_bwt) in
  anchor "bwt n=3 s=2" "bwt_small" (Estimate.agrees v_bwt sum_bwt) sb eb;
  let p_tf = { Algo_tf.Oracle.l = 2; n = 2; r = 1 } in
  let (sum_tf, _), st =
    time (fun () ->
        Circ.run_streaming_unit (Algo_tf.Qwtfp.a1_QWTFP ~p:p_tf)
          (Sink.gatecount ()))
  in
  let v_tf, et = time (fun () -> tf_estimate p_tf) in
  anchor "tf l=2 n=2 r=1" "tf_small" (Estimate.agrees v_tf sum_tf) st et;
  (* 2. scaling: parameter points far past enumeration. BWT is flat, so
     the s-loop collapses symbolically — 10^12 timesteps in
     milliseconds; TF's cost is the one-time boxed-body capture, shared
     with the streaming path, so it scales with circuit *structure*,
     never with the iteration count or gate total *)
  Fmt.pr "  %-34s %22s %7s %10s %s@." "" "total gates" "qubits" "seconds"
    "depth bound";
  let scaled name ?expect_total v s =
    let total = Wide.to_string (Estimate.total v) in
    (match expect_total with
    | Some e when e <> total ->
        failwith (Fmt.str "%s: total %s, expected %s" name total e)
    | _ -> ());
    Fmt.pr "  %-34s %22s %7d %10.3f %s@." name total (Estimate.peak_wires v) s
      (Wide.to_string (Estimate.depth_bound v));
    record
      (Fmt.str
         "  {\"name\": \"%s\", \"total_gates\": \"%s\", \"qubits\": %d, \
          \"depth_bound\": \"%s\", \"t_count\": \"%s\", \"seconds\": %.6f}"
         name total (Estimate.peak_wires v)
         (Wide.to_string (Estimate.depth_bound v))
         (Wide.to_string (Estimate.t_count v))
         s)
  in
  let p = { Algo_bwt.default_params with Algo_bwt.n = 8; s = 1_000_000_000 } in
  let v, s = time (fun () -> bwt_estimate p) in
  scaled "bwt n=8 s=10^9" v s;
  let p = { Algo_bwt.default_params with Algo_bwt.n = 8; s = 1_000_000_000_000 } in
  let v, s = time (fun () -> bwt_estimate p) in
  scaled "bwt n=8 s=10^12" v s ~expect_total:"644000000000032";
  if s > 1.0 then failwith "bwt trillion-step estimate took over a second";
  let p = { Algo_tf.Oracle.l = 31; n = 15; r = 1 } in
  let v, s = time (fun () -> tf_estimate p) in
  scaled "tf l=31 n=15 r=1" v s;
  if not quick then begin
    (* the paper's headline point, reproduced symbolically: the same
       24,603,711,263,407 gates E4/the README table count by streaming *)
    let p = { Algo_tf.Oracle.l = 31; n = 15; r = 6 } in
    let v, s = time (fun () -> tf_estimate p) in
    scaled "tf l=31 n=15 r=6 (paper point)" v s
      ~expect_total:"24603711263407";
    (* and one point past native-int range: only the symbolic path can
       state this total at all *)
    let p = { Algo_bwt.default_params with Algo_bwt.n = 8; s = max_int / 322 } in
    let v, s = time (fun () -> bwt_estimate p) in
    scaled "bwt n=8 s=max_int/322" v s
  end;
  let oc = open_out "BENCH_N8.json" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    (List.rev !json);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  -> BENCH_N8.json (%d entries)@." (List.length !json)

(* ================================================================== *)
(* N9: the streaming optimizer                                         *)

(* lib/opt/stream_opt recasts the peephole pipeline as a Sink
   transformer: O(window) memory however long the stream. Acceptance:
   identical reduction to the materialized [Passes] fixpoint where both
   paths exist (asserted before timing anything), then throughput and
   per-round cost on the template-lifted BWT oracle — the workload whose
   optimized-at-scale counts motivated the transformer. Every row lands
   in BENCH_N9.json. *)

let n9 () =
  section "N9: streaming optimizer (lib/opt/stream_opt vs materialized Passes)";
  let module Passes = Quipper_opt.Passes in
  let module Stream_opt = Quipper_opt.Stream_opt in
  let json = ref [] in
  let record line = json := line :: !json in
  let template_circ p = Algo_bwt.whole ~p (Algo_bwt.template_oracle p) in
  let streamed ?rounds p =
    Circ.run_streaming_unit (template_circ p)
      (Sink.tee (Sink.gatecount ())
         (Stream_opt.sink ?rounds (Sink.gatecount ())))
  in
  (* 1. the anchor: same reduction as the materialized fixpoint, or the
     throughput below measures a different optimization *)
  let p = { Algo_bwt.default_params with Algo_bwt.n = 8; s = 10 } in
  let mat, mat_s =
    time (fun () ->
        fst (Passes.optimize (Algo_bwt.generate ~p ~which:`Template ())))
  in
  let ((before, after), _), str_s = time (fun () -> streamed p) in
  let mat_total = (Gatecount.summarize mat).Gatecount.total_logical in
  if after.Gatecount.total_logical <> mat_total then
    failwith
      (Fmt.str "n9: streamed %d gates vs materialized %d"
         after.Gatecount.total_logical mat_total);
  Fmt.pr
    "  %-34s materialized %.3fs, streamed %.3fs, same %d -> %d gate counts@."
    "template n=8 s=10 (anchor)" mat_s str_s before.Gatecount.total_logical
    mat_total;
  record
    (Fmt.str
       "  {\"name\": \"template_anchor\", \"materialized_seconds\": %.6f, \
        \"streamed_seconds\": %.6f, \"gates_before\": %d, \"gates_after\": \
        %d, \"counts_identical\": true}"
       mat_s str_s before.Gatecount.total_logical mat_total);
  (* 2. per-round cost: stage k re-runs the rules over stage k-1's
     emission stream; the default stack of 4 reproduces the fixpoint *)
  Fmt.pr "  %-34s %12s %12s %8s %10s %9s@." "" "gates in" "gates out"
    "removed" "seconds" "gates/s";
  let s_scale = if quick then 100 else 500 in
  let p = { Algo_bwt.default_params with Algo_bwt.n = 8; s = s_scale } in
  List.iter
    (fun rounds ->
      let ((before, after), _), s = time (fun () -> streamed ~rounds p) in
      let name = Fmt.str "template n=8 s=%d rounds=%d" s_scale rounds in
      let removed = before.Gatecount.total_logical - after.Gatecount.total_logical in
      Fmt.pr "  %-34s %12d %12d %7.1f%% %10.3f %9.0f@." name
        before.Gatecount.total_logical after.Gatecount.total_logical
        (100.0 *. float removed /. float before.Gatecount.total_logical)
        s
        (float before.Gatecount.total_logical /. s);
      record
        (Fmt.str
           "  {\"name\": \"template_s%d_rounds%d\", \"gates_before\": %d, \
            \"gates_after\": %d, \"seconds\": %.6f}"
           s_scale rounds before.Gatecount.total_logical
           after.Gatecount.total_logical s))
    [ 1; 2; 4 ];
  Fmt.pr
    "  Memory is O(rounds x window) however large s is: CI's streaming-opt@.\
    \  smoke runs the same pipeline under `ulimit -v 400000` at s far past@.\
    \  what the materialized optimizer can buffer.@.";
  let oc = open_out "BENCH_N9.json" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    (List.rev !json);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  -> BENCH_N9.json (%d entries)@." (List.length !json)

(* ================================================================== *)
(* N10: parameter sweeps through the shot service                      *)

(* One circuit skeleton at many rotation angles. The per-point path
   pays the full preparation for every point — substitute angles, hash,
   fuse (scheduling, box compilation, cost model), simulate, snapshot —
   even though only the rotation/diagonal kernel entries change between
   points. The sweep path compiles the fused block program once per
   skeleton ([Fuse.compile_template] behind [Serve.submit_sweep]) and
   re-specializes just those kernel entries per point. Acceptance:
   warm-template sweep >= 5x faster than cold per-point prepares on a
   >= 64-point BWT rotation sweep, outcomes bit-identical. Every row
   lands in BENCH_N10.json. *)

let n10 () =
  section "N10: parameter sweeps (angle-modulo templates vs per-point prepares)";
  let module Serve = Quipper_serve in
  let module Fuse = Quipper_sim.Fuse in
  let module Kernel = Quipper_sim.Kernel in
  let json = ref [] in
  let record line = json := line :: !json in
  (* always the acceptance configuration — the whole section costs ~10s,
     so quick mode keeps the full 64-point sweep and its artifact *)
  let points = 64 in
  let shots = 8 in
  let base_dt = 0.3 in
  let saved = !Kernel.num_domains in
  Kernel.num_domains := 1;
  Fmt.pr "  %-26s %8s %8s %9s %12s@." "" "points" "shots" "seconds" "points/s";
  List.iter
    (fun (name, depth, steps) ->
      let g = Algo_bwt.Exact.build ~depth in
      let circuit, _ =
        Circ.generate_unit (Algo_bwt.Exact.walk g ~steps ~dt:base_dt)
      in
      let base = Circuit.angles circuit in
      let sw =
        {
          Serve.sw_circuit = circuit;
          sw_inputs = [];
          sw_points =
            (* Trotter steps from 0.05 to 0.6: every site of the walk
               carries [dt], so a point scales the base angles *)
            List.init points (fun i ->
                let x =
                  0.05 +. (0.55 *. float_of_int i /. float_of_int (points - 1))
                in
                Array.map (fun a -> a /. base_dt *. x) base);
          sw_shots = shots;
          sw_seed = 23;
        }
      in
      (* the template's shape, for the narrative: how much of the block
         trace re-specializes per point vs is shared verbatim *)
      let tpl = Fuse.compile_template circuit [] in
      Fmt.pr "  %-26s %d angle sites; %d fused blocks, %d re-specialized per \
              point@."
        name
        (Fuse.template_sites tpl)
        (Fuse.template_fused_blocks tpl)
        (Fuse.template_specialized_blocks tpl);
      (* cold per-point prepares: every point is its own request through
         a fresh service — the path a sweep used to take *)
      let per_svc = Serve.create () in
      let per_replies, per_s =
        time (fun () -> Serve.submit_batch per_svc (Serve.sweep_requests sw))
      in
      (* sweep path: cold run compiles the skeleton template, warm run
         reuses it — the steady state of an iterating client *)
      let svc = Serve.create () in
      let cold_replies, cold_s = time (fun () -> Serve.submit_sweep svc sw) in
      let warm_replies, warm_s = time (fun () -> Serve.submit_sweep svc sw) in
      (* bit-identity before timing claims: sweep outcomes equal the
         per-point outcomes, cold and warm alike *)
      List.iteri
        (fun i per ->
          match (per, List.nth cold_replies i, List.nth warm_replies i) with
          | Ok (p : Serve.reply), Ok c, Ok w ->
              if c.Serve.outcomes <> p.Serve.outcomes then
                failwith (name ^ ": cold sweep differs from per-point");
              if w.Serve.outcomes <> p.Serve.outcomes then
                failwith (name ^ ": warm sweep differs from per-point")
          | _ -> failwith (name ^ ": a sweep point errored"))
        per_replies;
      let st = Serve.stats svc in
      if st.Serve.t_hits < 1 then failwith (name ^ ": warm run missed the template");
      let row label s =
        Fmt.pr "  %-26s %8d %8d %9.3f %12.0f@." label points shots s
          (float_of_int points /. s)
      in
      row (name ^ " per-point") per_s;
      row (name ^ " sweep cold") cold_s;
      row (name ^ " sweep warm") warm_s;
      Fmt.pr "  %-26s %.1fx cold, %.1fx warm vs per-point prepares@." ""
        (per_s /. cold_s) (per_s /. warm_s);
      record
        (Fmt.str
           "  {\"name\": \"%s\", \"points\": %d, \"shots_per_point\": %d, \
            \"angle_sites\": %d, \"fused_blocks\": %d, \
            \"respecialized_blocks\": %d, \"per_point_seconds\": %.6f, \
            \"sweep_cold_seconds\": %.6f, \"sweep_warm_seconds\": %.6f, \
            \"speedup_cold\": %.2f, \"speedup_warm\": %.2f, \
            \"template_hits\": %d, \"points_specialized\": %d, \
            \"bit_identical_to_per_point\": true}"
           name points shots (Fuse.template_sites tpl)
           (Fuse.template_fused_blocks tpl)
           (Fuse.template_specialized_blocks tpl)
           per_s cold_s warm_s (per_s /. cold_s) (per_s /. warm_s)
           st.Serve.t_hits st.Serve.specialized))
    (* the acceptance row is depth 1: on the 128-amplitude state the
       per-point cost is all structure (hashing, scheduling, box
       plumbing), which is exactly what the template removes; at depth
       2-3 the shared statevector sweeps grow toward dominance and the
       ratio honestly decays toward 1 *)
    [ ("bwt d=1 s=8", 1, 8); ("bwt d=2 s=8", 2, 8) ];
  Kernel.num_domains := saved;
  let oc = open_out "BENCH_N10.json" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    (List.rev !json);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  -> BENCH_N10.json (%d entries)@." (List.length !json)

(* ================================================================== *)
(* Bechamel micro-benchmarks                                           *)

let benchmarks () =
  section "Bechamel micro-benchmarks (machinery throughput)";
  let open Bechamel in
  let test_gen =
    Test.make ~name:"generate o8_MUL l=8"
      (Staged.stage (fun () ->
           ignore
             (Algo_tf.Qwtfp.generate_mul ~p:{ Algo_tf.Oracle.l = 8; n = 4; r = 2 } ())))
  in
  let big =
    Algo_tf.Qwtfp.generate_oracle ~p:{ Algo_tf.Oracle.l = 16; n = 8; r = 3 } ()
  in
  let test_count =
    Test.make ~name:"aggregate-count l=16 oracle"
      (Staged.stage (fun () -> ignore (Gatecount.aggregate big)))
  in
  let test_sim =
    Test.make ~name:"statevector: 10-qubit QFT"
      (Staged.stage (fun () ->
           let open Circ in
           ignore
             (Quipper_sim.Statevector.run_fun ~seed:1 ~in_:(Qureg.shape 10) 0
                (fun r ->
                  let* () = Quipper_primitives.Qft.qft r in
                  return r))))
  in
  let test_clifford =
    Test.make ~name:"clifford: 40-qubit GHZ chain"
      (Staged.stage (fun () ->
           let open Circ in
           ignore
             (Quipper_sim.Clifford.run_fun ~seed:1 ~in_:(Qureg.shape 40) 0
                (fun r ->
                  let* () = hadamard_ r.(0) in
                  let* () =
                    iterm
                      (fun i -> cnot ~control:r.(i) ~target:r.(i + 1))
                      (List.init 39 Fun.id)
                  in
                  return r))))
  in
  let test_bwt =
    Test.make ~name:"generate BWT orthodox"
      (Staged.stage (fun () -> ignore (Algo_bwt.generate ~which:`Orthodox ())))
  in
  let tests =
    Test.make_grouped ~name:"quipper"
      [ test_gen; test_count; test_sim; test_clifford; test_bwt ]
  in
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "  %-36s %14.0f ns/run@." name est
      | _ -> Fmt.pr "  %-36s (no estimate)@." name)
    results

(* ================================================================== *)

let n3 () =
  section "N3: peephole optimizer (lib/opt) on the paper's circuits";
  let module Passes = Quipper_opt.Passes in
  let module Equiv = Quipper_opt.Equiv in
  Fmt.pr "  %-24s %10s %10s %8s %7s %7s %8s  %s@." "circuit" "logical"
    "optimized" "removed" "depth" "depth'" "time" "validation";
  let row name (b : Circuit.b) =
    let before = Gatecount.summarize b in
    let d0 = Depth.depth b in
    let (b', _), t = time (fun () -> Passes.optimize b) in
    let after = Gatecount.summarize b' in
    let verdict =
      (* translation validation through the simulator backends; the quick
         run keeps only the structural numbers *)
      if quick then "-" else Fmt.str "%a" Equiv.pp (Equiv.check b b')
    in
    Fmt.pr "  %-24s %10s %10s %8s %7d %7d %7.2fs  %s@." name
      (commas before.Gatecount.total_logical)
      (commas after.Gatecount.total_logical)
      (commas (before.Gatecount.total_logical - after.Gatecount.total_logical))
      d0 (Depth.depth b') t verdict
  in
  let p = { Algo_bwt.default_params with Algo_bwt.n = 3; s = 1 } in
  row "bwt orthodox" (Algo_bwt.generate ~p ~which:`Orthodox ());
  row "bwt template" (Algo_bwt.generate ~p ~which:`Template ());
  row "bwt qcl baseline" (Qcl_baseline.Bwt_qcl.generate ~p ());
  let tfp = { Algo_tf.Oracle.l = 4; n = 3; r = 2 } in
  row "tf pow17" (Algo_tf.Qwtfp.generate_pow17 ~p:tfp ());
  row "tf mul" (Algo_tf.Qwtfp.generate_mul ~p:tfp ())

(* ================================================================== *)
(* N4: streaming emission — circuit size unbound from RAM
   (EXPERIMENTS.md N4). Runs FIRST: the peak-RSS figures come from the
   kernel's VmHWM high-water mark, which is monotone over the process
   lifetime, so the constant-memory phase must be measured before any
   section that materializes a large circuit. *)

let vmhwm_kb () =
  let ic = open_in "/proc/self/status" in
  let rec go acc =
    match input_line ic with
    | line ->
        let acc =
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
              Fun.id
          else acc
        in
        go acc
    | exception End_of_file ->
        close_in ic;
        acc
  in
  go 0

let n4 () =
  section "N4: streaming emission (constant-memory consumers)";
  let p_stream =
    { Algo_bwt.default_params with Algo_bwt.n = 8; s = (if quick then 5_000 else 100_000) }
  in
  let p_mat = { Algo_bwt.default_params with Algo_bwt.n = 8; s = 500 } in
  let stream_sum, t_stream =
    time (fun () ->
        fst
          (Circ.run_streaming_unit
             (Algo_bwt.whole ~p:p_stream (Algo_bwt.orthodox_oracle p_stream))
             (Sink.gatecount ())))
  in
  let hwm_stream = vmhwm_kb () in
  let heap_stream = (Gc.stat ()).Gc.top_heap_words in
  let mat_sum, t_mat =
    time (fun () ->
        Gatecount.summarize (Algo_bwt.generate ~p:p_mat ~which:`Orthodox ()))
  in
  let hwm_mat = vmhwm_kb () in
  let heap_mat = (Gc.stat ()).Gc.top_heap_words in
  Fmt.pr "  %-26s %12s %14s %8s %12s %12s@." "path" "BWT steps" "gates" "wall"
    "peak RSS" "OCaml heap";
  let line label steps total t hwm heap =
    Fmt.pr "  %-26s %12s %14s %7.1fs %9d MB %9d MB@." label (commas steps)
      (commas total) t (hwm / 1024)
      (heap * 8 / 1024 / 1024)
  in
  line "streaming gatecount" p_stream.Algo_bwt.s stream_sum.Gatecount.total
    t_stream hwm_stream heap_stream;
  line "materialized gatecount" p_mat.Algo_bwt.s mat_sum.Gatecount.total t_mat
    hwm_mat heap_mat;
  Fmt.pr
    "  The streamed instance is %dx the materialized one; per-gate state is@.\
    \  O(1) (the gate buffer stays empty at top level), so the same binary@.\
    \  under `ulimit -v 350000` counts the %s-gate instance while the@.\
    \  materialized path dies at s=1000 (see CI's streaming smoke step).@."
    (p_stream.Algo_bwt.s / p_mat.Algo_bwt.s)
    (commas stream_sum.Gatecount.total)

(* ================================================================== *)

let () =
  Fmt.pr "Quipper-in-OCaml reproduction harness (paper: Green et al., PLDI 2013)@.";
  n4 ();
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  figures ();
  ablations ();
  noise ();
  n2 ();
  n5 ();
  n6 ();
  n7 ();
  n8 ();
  n9 ();
  n10 ();
  n3 ();
  benchmarks ();
  Fmt.pr "@.Done.@."
