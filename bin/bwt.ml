(* The [bwt] command line: generate the Binary Welded Tree circuit with
   the hand-coded ("orthodox") oracle, the template (lifted) oracle, or
   the QCL-style baseline generator — the three columns of the paper's §6
   comparison table. *)

open Cmdliner
open Quipper

(* Streaming mode: run the same circuit-producing function through
   [Circ.run_streaming] instead of materializing the buffer. Memory per
   gate is O(1), so instances far beyond RAM become countable — the
   paper's §5.4 scaling argument — while the output stays byte-identical
   to the materialized path. *)
let run_stream which format p =
  let circ : Wire.bit array Circ.t =
    match which with
    | "orthodox" -> Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p)
    | "template" -> Algo_bwt.whole ~p (Algo_bwt.template_oracle p)
    | "qcl" -> Qcl_baseline.Bwt_qcl.whole ~p
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  (match format with
  | "gatecount" ->
      let summary, _ = Circ.run_streaming_unit circ (Sink.gatecount ()) in
      Fmt.pr "%a@." Gatecount.pp_summary summary
  | "text" ->
      let (), _ = Circ.run_streaming_unit circ (Sink.printer Fmt.stdout) in
      Fmt.pr "@."
  | f -> Fmt.failwith "--stream supports gatecount and text, not %S" f);
  0

let run which format n s optimize verbose stream =
  let p = { Algo_bwt.n; s; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  if stream then begin
    if optimize then
      Fmt.failwith "--stream is incompatible with -O (optimizing needs the materialized circuit)";
    run_stream which format p
  end
  else begin
  let b =
    match which with
    | "orthodox" -> Algo_bwt.generate ~p ~which:`Orthodox ()
    | "template" -> Algo_bwt.generate ~p ~which:`Template ()
    | "qcl" -> Qcl_baseline.Bwt_qcl.generate ~p ()
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let b =
    if optimize then Quipper_opt.Passes.optimize_and_report ~verbose Fmt.stdout b
    else b
  in
  (match format with
  | "gatecount" -> Fmt.pr "%a@." Gatecount.pp_summary (Gatecount.summarize b)
  | "text" -> Printer.print b
  | "ascii" -> Ascii.print ~max_columns:400 b
  | f -> Fmt.failwith "unknown format %S" f);
  0
  end

let which =
  Arg.(
    value & opt string "orthodox"
    & info [ "o"; "oracle" ] ~docv:"WHICH"
        ~doc:"Implementation: orthodox, template, or qcl (the baseline generator).")

let format =
  Arg.(
    value & opt string "gatecount"
    & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"gatecount, text or ascii.")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Tree depth parameter.")
let s_arg = Arg.(value & opt int 1 & info [ "s" ] ~docv:"S" ~doc:"Number of timesteps.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the peephole optimizer (default pipeline) before output, \
              printing before/after gate-count summaries.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"With $(b,-O), also print per-pass statistics.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:"Stream gates to the consumer instead of materializing the \
              circuit: O(1) memory per gate, same output byte for byte \
              (formats: gatecount, text).")

let cmd =
  let doc = "The Binary Welded Tree algorithm (Quipper paper, section 6 comparison)." in
  Cmd.v (Cmd.info "bwt" ~doc)
    Term.(
      const run $ which $ format $ n_arg $ s_arg $ optimize_arg $ verbose_arg
      $ stream_arg)

let () = exit (Cmd.eval' cmd)
