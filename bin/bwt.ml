(* The [bwt] command line: generate the Binary Welded Tree circuit with
   the hand-coded ("orthodox") oracle, the template (lifted) oracle, or
   the QCL-style baseline generator — the three columns of the paper's §6
   comparison table. *)

open Cmdliner
open Quipper

(* Streaming mode: run the same circuit-producing function through
   [Circ.run_streaming] instead of materializing the buffer. Memory per
   gate is O(1), so instances far beyond RAM become countable — the
   paper's §5.4 scaling argument — while the output stays byte-identical
   to the materialized path. *)
let run_stream which format p =
  let circ : Wire.bit array Circ.t =
    match which with
    | "orthodox" -> Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p)
    | "template" -> Algo_bwt.whole ~p (Algo_bwt.template_oracle p)
    | "qcl" -> Qcl_baseline.Bwt_qcl.whole ~p
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  (match format with
  | "gatecount" ->
      let summary, _ = Circ.run_streaming_unit circ (Sink.gatecount ()) in
      Fmt.pr "%a@." Gatecount.pp_summary summary
  | "text" ->
      let (), _ = Circ.run_streaming_unit circ (Sink.printer Fmt.stdout) in
      Fmt.pr "@."
  | f -> Fmt.failwith "--stream supports gatecount and text, not %S" f);
  0

(* Streaming optimisation: interpose the windowed peephole transformer
   between generation and the counting sinks, tee-ing unoptimized
   before-counters off the same single pass. The report layout matches
   [Passes.optimize_and_report] followed by the gatecount branch, so at
   parameters where the window covers what the materialized fixpoint
   finds, the output is byte-identical to [-O] without [--stream] —
   while memory stays O(window) however large [s] is. *)
let run_stream_opt which format p verbose =
  let module Stream_opt = Quipper_opt.Stream_opt in
  (match format with
  | "gatecount" -> ()
  | f ->
      Fmt.failwith
        "--stream -O supports the gatecount format only, not %S (gate lines \
         stream before the report header could be known)" f);
  let circ : Wire.bit array Circ.t =
    match which with
    | "orthodox" -> Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p)
    | "template" -> Algo_bwt.whole ~p (Algo_bwt.template_oracle p)
    | "qcl" -> Qcl_baseline.Bwt_qcl.whole ~p
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let st = Stream_opt.stats_create () in
  let sink =
    Sink.tee
      (Sink.tee (Sink.gatecount ()) (Sink.depth ()))
      (Stream_opt.sink ~stats:st (Sink.tee (Sink.gatecount ()) (Sink.depth ())))
  in
  let ((before, depth_before), (after, depth_after)), _ =
    Circ.run_streaming_unit circ sink
  in
  Fmt.pr "Before optimisation:@\n%a@\n" Gatecount.pp_summary before;
  if verbose then Fmt.pr "%a@." Stream_opt.pp_stats st;
  Fmt.pr "After optimisation:@\n%a@\n" Gatecount.pp_summary after;
  Fmt.pr "Optimizer: removed %d of %d logical gates; depth %d -> %d@."
    (before.Gatecount.total_logical - after.Gatecount.total_logical)
    before.Gatecount.total_logical depth_before depth_after;
  Fmt.pr "%a@." Gatecount.pp_summary after;
  0

(* Symbolic estimation: derive the resource vector of ONE walk timestep
   (streamed once), multiply it by [s], and seal it between the
   entrance-preparation prologue and the measurement epilogue. The
   timestep count never enters a loop, so s = 10^12 costs the same as
   s = 1 — and at small s the result is bit-identical to the streamed
   exact gatecount (asserted in test/ and in CI). *)
let run_estimate which p base =
  let module Estimate = Quipper_estimate.Estimate in
  let module Qureg = Quipper_arith.Qureg in
  let m = Algo_bwt.label_width p in
  let oracle =
    match which with
    | "orthodox" -> Algo_bwt.orthodox_oracle p
    | "template" -> Algo_bwt.template_oracle p
    | "qcl" ->
        Fmt.failwith
          "--estimate needs the step-decomposed oracles (orthodox, template)"
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template)" s
  in
  let prologue =
    Estimate.of_circ_unit (Qureg.init ~width:m Algo_bwt.entrance)
  in
  let step =
    Estimate.of_circ ~in_:(Qureg.shape m) (fun a ->
        Circ.(
          let* () = Algo_bwt.walk_step ~p oracle a in
          return a))
  in
  let epilogue =
    Estimate.of_circ ~in_:(Qureg.shape m) (fun a ->
        Circ.measure (Qureg.shape m) a)
  in
  let est =
    Estimate.seq prologue (Estimate.seq (Estimate.repeat p.Algo_bwt.s step) epilogue)
  in
  let est = match base with None -> est | Some b -> Estimate.in_base b est in
  (match base with
  | Some b -> Fmt.pr "Gate base: %s@." (Decompose.base_name b)
  | None -> ());
  Fmt.pr "%a" Estimate.pp_summary est;
  0

(* Fused-simulation check: run the whole algorithm (oracle walk and
   final measurement) through the gate-fusion engine and through the
   plain statevector engine, streaming in both cases, at the same seed —
   the measured node must come out bit-identical. [-n 2] keeps the
   orthodox oracle inside the statevector qubit cap. *)
let run_fuse which p seed =
  let module Sim = Quipper_sim.Statevector in
  let module Fuse = Quipper_sim.Fuse in
  (* the Circ.t closes over per-generation state, so each engine gets a
     freshly built computation *)
  let circ () : Wire.bit array Circ.t =
    match which with
    | "orthodox" -> Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p)
    | "template" -> Algo_bwt.whole ~p (Algo_bwt.template_oracle p)
    | "qcl" -> Qcl_baseline.Bwt_qcl.whole ~p
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let plain, t_plain =
    time (fun () ->
        let st = Sim.create ~seed () in
        let sink =
          Sink.unbox
            (Sink.make ~on_gate:(Sim.apply_gate st) ~finish:(fun _ -> ()) ())
        in
        let (), bits = Circ.run_streaming_unit (circ ()) sink in
        Array.map (fun w -> Sim.read_bit st (Wire.bit_wire w)) bits)
  in
  let st = Fuse.create ~seed () in
  let fused, t_fused =
    time (fun () ->
        let sink =
          Sink.make ~on_gate:(Fuse.apply_gate st)
            ~on_subroutine_exit:(fun name sub -> Fuse.define st name sub)
            ~finish:(fun _ -> ())
            ()
        in
        let (), bits = Circ.run_streaming_unit (circ ()) sink in
        Array.map (fun w -> Fuse.read_bit st (Wire.bit_wire w)) bits)
  in
  let pp_bits ppf bits =
    Array.iter (fun b -> Fmt.pf ppf "%d" (if b then 1 else 0)) bits
  in
  Fmt.pr "Unfused: measured %a in %.3fs@." pp_bits plain t_plain;
  Fmt.pr "Fused:   measured %a in %.3fs@." pp_bits fused t_fused;
  Fmt.pr "Fusion:  %a@." Fuse.pp_stats (Fuse.stats st);
  if plain = fused then begin
    Fmt.pr "Fusion check: PASS@.";
    0
  end
  else begin
    Fmt.pr "Fusion check: FAIL@.";
    1
  end

let run which format n s optimize verbose stream fuse estimate estimate_base
    seed domains =
  Quipper_cli.set_domains domains;
  let p = { Algo_bwt.n; s; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  if estimate then begin
    if optimize || stream || fuse then
      Fmt.failwith "--estimate is incompatible with -O, --stream and --fuse";
    if format <> "gatecount" then
      Fmt.failwith "--estimate supports the gatecount format only";
    run_estimate which p estimate_base
  end
  else if estimate_base <> None then
    Fmt.failwith "--estimate-base needs --estimate"
  else if fuse then begin
    if optimize || stream then
      Fmt.failwith "--fuse runs its own streaming comparison; drop -O/--stream";
    run_fuse which p seed
  end
  else if stream then begin
    if optimize then run_stream_opt which format p verbose
    else run_stream which format p
  end
  else begin
  let b =
    match which with
    | "orthodox" -> Algo_bwt.generate ~p ~which:`Orthodox ()
    | "template" -> Algo_bwt.generate ~p ~which:`Template ()
    | "qcl" -> Qcl_baseline.Bwt_qcl.generate ~p ()
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let b =
    if optimize then Quipper_opt.Passes.optimize_and_report ~verbose Fmt.stdout b
    else b
  in
  (match format with
  | "gatecount" -> Fmt.pr "%a@." Gatecount.pp_summary (Gatecount.summarize b)
  | "text" -> Printer.print b
  | "ascii" -> Ascii.print ~max_columns:400 b
  | f -> Fmt.failwith "unknown format %S" f);
  0
  end

let which =
  Arg.(
    value & opt string "orthodox"
    & info [ "o"; "oracle" ] ~docv:"WHICH"
        ~doc:"Implementation: orthodox, template, or qcl (the baseline generator).")

let format =
  Arg.(
    value & opt string "gatecount"
    & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"gatecount, text or ascii.")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Tree depth parameter.")
let s_arg = Arg.(value & opt int 1 & info [ "s" ] ~docv:"S" ~doc:"Number of timesteps.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the peephole optimizer (default pipeline) before output, \
              printing before/after gate-count summaries.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"With $(b,-O), also print per-pass statistics.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:"Stream gates to the consumer instead of materializing the \
              circuit: O(1) memory per gate, same output byte for byte \
              (formats: gatecount, text). With $(b,-O), optimize the \
              stream through the windowed peephole transformer \
              (gatecount only).")

let fuse_arg =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:"Simulate the whole algorithm through the gate-fusion engine \
              and through the plain statevector engine at the same seed, \
              and check the measured outputs agree (use a small $(b,-n): \
              the statevector caps at 25 qubits).")

let cmd =
  let doc = "The Binary Welded Tree algorithm (Quipper paper, section 6 comparison)." in
  Cmd.v (Cmd.info "bwt" ~doc)
    Term.(
      const run $ which $ format $ n_arg $ s_arg $ optimize_arg $ verbose_arg
      $ stream_arg $ fuse_arg $ Quipper_cli.estimate_arg
      $ Quipper_cli.estimate_base_arg $ Quipper_cli.seed_arg
      $ Quipper_cli.domains_arg)

let () = exit (Cmd.eval' cmd)
