(* The [bwt] command line: generate the Binary Welded Tree circuit with
   the hand-coded ("orthodox") oracle, the template (lifted) oracle, or
   the QCL-style baseline generator — the three columns of the paper's §6
   comparison table. *)

open Cmdliner
open Quipper

let run which format n s optimize verbose =
  let p = { Algo_bwt.n; s; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  let b =
    match which with
    | "orthodox" -> Algo_bwt.generate ~p ~which:`Orthodox ()
    | "template" -> Algo_bwt.generate ~p ~which:`Template ()
    | "qcl" -> Qcl_baseline.Bwt_qcl.generate ~p ()
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let b =
    if optimize then Quipper_opt.Passes.optimize_and_report ~verbose Fmt.stdout b
    else b
  in
  (match format with
  | "gatecount" -> Fmt.pr "%a@." Gatecount.pp_summary (Gatecount.summarize b)
  | "text" -> Printer.print b
  | "ascii" -> Ascii.print ~max_columns:400 b
  | f -> Fmt.failwith "unknown format %S" f);
  0

let which =
  Arg.(
    value & opt string "orthodox"
    & info [ "o"; "oracle" ] ~docv:"WHICH"
        ~doc:"Implementation: orthodox, template, or qcl (the baseline generator).")

let format =
  Arg.(
    value & opt string "gatecount"
    & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"gatecount, text or ascii.")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Tree depth parameter.")
let s_arg = Arg.(value & opt int 1 & info [ "s" ] ~docv:"S" ~doc:"Number of timesteps.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the peephole optimizer (default pipeline) before output, \
              printing before/after gate-count summaries.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"With $(b,-O), also print per-pass statistics.")

let cmd =
  let doc = "The Binary Welded Tree algorithm (Quipper paper, section 6 comparison)." in
  Cmd.v (Cmd.info "bwt" ~doc)
    Term.(const run $ which $ format $ n_arg $ s_arg $ optimize_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
