(* The [bwt] command line: generate the Binary Welded Tree circuit with
   the hand-coded ("orthodox") oracle, the template (lifted) oracle, or
   the QCL-style baseline generator — the three columns of the paper's §6
   comparison table. *)

open Cmdliner
open Quipper

(* Streaming mode: run the same circuit-producing function through
   [Circ.run_streaming] instead of materializing the buffer. Memory per
   gate is O(1), so instances far beyond RAM become countable — the
   paper's §5.4 scaling argument — while the output stays byte-identical
   to the materialized path. *)
let run_stream which format p =
  let circ : Wire.bit array Circ.t =
    match which with
    | "orthodox" -> Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p)
    | "template" -> Algo_bwt.whole ~p (Algo_bwt.template_oracle p)
    | "qcl" -> Qcl_baseline.Bwt_qcl.whole ~p
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  (match format with
  | "gatecount" ->
      let summary, _ = Circ.run_streaming_unit circ (Sink.gatecount ()) in
      Fmt.pr "%a@." Gatecount.pp_summary summary
  | "text" ->
      let (), _ = Circ.run_streaming_unit circ (Sink.printer Fmt.stdout) in
      Fmt.pr "@."
  | f -> Fmt.failwith "--stream supports gatecount and text, not %S" f);
  0

(* Fused-simulation check: run the whole algorithm (oracle walk and
   final measurement) through the gate-fusion engine and through the
   plain statevector engine, streaming in both cases, at the same seed —
   the measured node must come out bit-identical. [-n 2] keeps the
   orthodox oracle inside the statevector qubit cap. *)
let run_fuse which p seed =
  let module Sim = Quipper_sim.Statevector in
  let module Fuse = Quipper_sim.Fuse in
  (* the Circ.t closes over per-generation state, so each engine gets a
     freshly built computation *)
  let circ () : Wire.bit array Circ.t =
    match which with
    | "orthodox" -> Algo_bwt.whole ~p (Algo_bwt.orthodox_oracle p)
    | "template" -> Algo_bwt.whole ~p (Algo_bwt.template_oracle p)
    | "qcl" -> Qcl_baseline.Bwt_qcl.whole ~p
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let plain, t_plain =
    time (fun () ->
        let st = Sim.create ~seed () in
        let sink =
          Sink.unbox
            (Sink.make ~on_gate:(Sim.apply_gate st) ~finish:(fun _ -> ()) ())
        in
        let (), bits = Circ.run_streaming_unit (circ ()) sink in
        Array.map (fun w -> Sim.read_bit st (Wire.bit_wire w)) bits)
  in
  let st = Fuse.create ~seed () in
  let fused, t_fused =
    time (fun () ->
        let sink =
          Sink.make ~on_gate:(Fuse.apply_gate st)
            ~on_subroutine_exit:(fun name sub -> Fuse.define st name sub)
            ~finish:(fun _ -> ())
            ()
        in
        let (), bits = Circ.run_streaming_unit (circ ()) sink in
        Array.map (fun w -> Fuse.read_bit st (Wire.bit_wire w)) bits)
  in
  let pp_bits ppf bits =
    Array.iter (fun b -> Fmt.pf ppf "%d" (if b then 1 else 0)) bits
  in
  Fmt.pr "Unfused: measured %a in %.3fs@." pp_bits plain t_plain;
  Fmt.pr "Fused:   measured %a in %.3fs@." pp_bits fused t_fused;
  Fmt.pr "Fusion:  %a@." Fuse.pp_stats (Fuse.stats st);
  if plain = fused then begin
    Fmt.pr "Fusion check: PASS@.";
    0
  end
  else begin
    Fmt.pr "Fusion check: FAIL@.";
    1
  end

let run which format n s optimize verbose stream fuse seed domains =
  Quipper_cli.set_domains domains;
  let p = { Algo_bwt.n; s; dt = Algo_bwt.default_params.Algo_bwt.dt } in
  if fuse then begin
    if optimize || stream then
      Fmt.failwith "--fuse runs its own streaming comparison; drop -O/--stream";
    run_fuse which p seed
  end
  else if stream then begin
    if optimize then
      Fmt.failwith "--stream is incompatible with -O (optimizing needs the materialized circuit)";
    run_stream which format p
  end
  else begin
  let b =
    match which with
    | "orthodox" -> Algo_bwt.generate ~p ~which:`Orthodox ()
    | "template" -> Algo_bwt.generate ~p ~which:`Template ()
    | "qcl" -> Qcl_baseline.Bwt_qcl.generate ~p ()
    | s -> Fmt.failwith "unknown oracle %S (try orthodox, template, qcl)" s
  in
  let b =
    if optimize then Quipper_opt.Passes.optimize_and_report ~verbose Fmt.stdout b
    else b
  in
  (match format with
  | "gatecount" -> Fmt.pr "%a@." Gatecount.pp_summary (Gatecount.summarize b)
  | "text" -> Printer.print b
  | "ascii" -> Ascii.print ~max_columns:400 b
  | f -> Fmt.failwith "unknown format %S" f);
  0
  end

let which =
  Arg.(
    value & opt string "orthodox"
    & info [ "o"; "oracle" ] ~docv:"WHICH"
        ~doc:"Implementation: orthodox, template, or qcl (the baseline generator).")

let format =
  Arg.(
    value & opt string "gatecount"
    & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"gatecount, text or ascii.")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Tree depth parameter.")
let s_arg = Arg.(value & opt int 1 & info [ "s" ] ~docv:"S" ~doc:"Number of timesteps.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the peephole optimizer (default pipeline) before output, \
              printing before/after gate-count summaries.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"With $(b,-O), also print per-pass statistics.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:"Stream gates to the consumer instead of materializing the \
              circuit: O(1) memory per gate, same output byte for byte \
              (formats: gatecount, text).")

let fuse_arg =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:"Simulate the whole algorithm through the gate-fusion engine \
              and through the plain statevector engine at the same seed, \
              and check the measured outputs agree (use a small $(b,-n): \
              the statevector caps at 25 qubits).")

let cmd =
  let doc = "The Binary Welded Tree algorithm (Quipper paper, section 6 comparison)." in
  Cmd.v (Cmd.info "bwt" ~doc)
    Term.(
      const run $ which $ format $ n_arg $ s_arg $ optimize_arg $ verbose_arg
      $ stream_arg $ fuse_arg $ Quipper_cli.seed_arg $ Quipper_cli.domains_arg)

let () = exit (Cmd.eval' cmd)
