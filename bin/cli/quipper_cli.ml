(** The shared command-line surface of the [bin/] executables: one
    spelling (and one default) for [--engine], [--seed] and [--domains]
    everywhere, backed by the same knobs the libraries use
    ({!Quipper_sim.Engine.default}, {!Quipper_sim.Kernel.num_domains}) —
    so the CLI, the environment variables and the library defaults can
    never disagree. *)

open Cmdliner
module Engine = Quipper_sim.Engine
module Kernel = Quipper_sim.Kernel
module Decompose = Quipper.Decompose

let engine_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Engine.of_string s) in
  Arg.conv (parse, Engine.pp)

let engine_arg =
  Arg.(
    value
    & opt engine_conv (Engine.default ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Campaign engine: $(b,auto) (pick the fastest eligible machinery), \
           $(b,frame) (force Pauli frames), or $(b,slow) (force one full \
           simulation per attempt — the cross-check path). Defaults to \
           $(b,QUIPPER_ENGINE) when that is set. Outcomes are bit-identical \
           whatever the engine; only throughput differs.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Master seed; the whole run replays from this one number.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel kernels and batched requests (0 = keep \
           the default: $(b,QUIPPER_DOMAINS) when set, else the machine's \
           recommended count). Outcomes never depend on this.")

let set_domains n = if n > 0 then Kernel.num_domains := n

let base_conv =
  let parse = function
    | "toffoli" -> Ok Decompose.Toffoli
    | "binary" -> Ok Decompose.Binary
    | s -> Error (`Msg (Fmt.str "unknown gate base %S (try toffoli, binary)" s))
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (Decompose.base_name b))

let estimate_arg =
  Arg.(
    value & flag
    & info [ "estimate" ]
        ~doc:
          "Symbolic resource estimation: derive a per-block resource vector \
           and combine across loop iterations and subroutine calls instead of \
           enumerating gates. Arbitrary-precision totals, so parameters can \
           go orders of magnitude past what $(b,--stream) can enumerate; at \
           small parameters the counts are bit-identical to the streamed \
           exact gatecount.")

let estimate_base_arg =
  Arg.(
    value
    & opt (some base_conv) None
    & info [ "estimate-base" ] ~docv:"BASE"
        ~doc:
          "With $(b,--estimate), re-quote the estimate in a target gate base \
           ($(b,toffoli) or $(b,binary)) by applying the decomposition once \
           per gate kind as a counts transfer function.")
