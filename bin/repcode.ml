(* The [repcode] command line: repetition-code quantum memory under
   circuit-level depolarizing noise — logical-error rate vs physical
   error rate, at million-trial scale, over the Pauli-frame engine
   (with --engine slow as the cross-check path). *)

open Cmdliner
module Noise = Quipper_sim.Noise
module R = Algo_repcode

let parse_floats s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map float_of_string

let parse_ints s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

(* Frame-vs-slow validation: sample a modest campaign through both
   engines at the same master seed and insist every trial's outcome is
   bit-identical — the acceptance property of the frame engine, checked
   right here on the workload we are about to scale up. *)
let validate_point ~p ~physical ~trials ~seed =
  let collect engine =
    let b = R.generate ~p () in
    let cfg = { Noise.none with depolarizing = physical } in
    let out = Array.make trials None in
    let summary =
      Noise.sample_trials_on
        (module Quipper_sim.Backend.Clifford)
        ~master_seed:seed ~engine ~trials cfg b []
        ~f:(fun t s -> out.(t) <- Some s)
    in
    (out, summary)
  in
  let fast, fs = collect `Frame in
  let slow, _ = collect `Slow in
  let mismatches = ref 0 in
  Array.iteri (fun t a -> if a <> slow.(t) then incr mismatches) fast;
  if !mismatches > 0 then
    Fmt.failwith "VALIDATION FAILED: d=%d p=%g: %d/%d trials differ frame vs slow"
      p.R.distance physical !mismatches trials;
  Fmt.pr
    "validated d=%d r=%d p=%g: %d trials bit-identical frame vs slow (%d frame, %d fallback)@."
    p.R.distance p.R.rounds physical trials fs.Noise.frame_sampled
    fs.Noise.slow_sampled

let run distances rounds physicals trials engine seed validate domains =
  Quipper_cli.set_domains domains;
  let distances = parse_ints distances in
  let physicals = parse_floats physicals in
  List.iter
    (fun d ->
      let p = { R.distance = d; rounds = (if rounds > 0 then rounds else d) } in
      if validate then
        List.iter
          (fun ph ->
            validate_point ~p ~physical:ph ~trials:(min trials 2000) ~seed)
          physicals;
      List.iter
        (fun ph ->
          let pt =
            R.run_point ~master_seed:seed ~engine ~p ~physical:ph ~trials ()
          in
          Fmt.pr "%a@." R.pp_point pt)
        physicals)
    distances;
  0

let distances_arg =
  Arg.(
    value & opt string "3,5,7,9"
    & info [ "d"; "distances" ] ~docv:"D,D,..."
        ~doc:"Comma-separated code distances (odd).")

let rounds_arg =
  Arg.(
    value & opt int 0
    & info [ "r"; "rounds" ] ~docv:"R"
        ~doc:"Syndrome-extraction rounds per trial (0 = one round per unit \
              of distance, the usual choice).")

let physicals_arg =
  Arg.(
    value & opt string "0.001,0.003,0.01,0.03"
    & info [ "p"; "physical" ] ~docv:"P,P,..."
        ~doc:"Comma-separated physical (depolarizing) error rates.")

let trials_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "t"; "trials" ] ~docv:"N" ~doc:"Trials per (distance, rate) point.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Before each sweep, check a small campaign is bit-identical \
              between the frame engine and the slow path.")

let cmd =
  let doc =
    "Repetition-code memory experiment: logical-error rate vs physical noise \
     over the Pauli-frame engine."
  in
  Cmd.v (Cmd.info "repcode" ~doc)
    Term.(
      const run $ distances_arg $ rounds_arg $ physicals_arg $ trials_arg
      $ Quipper_cli.engine_arg $ Quipper_cli.seed_arg $ validate_arg
      $ Quipper_cli.domains_arg)

let () = exit (Cmd.eval' cmd)
