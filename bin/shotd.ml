(* The shot-service front end: batched many-shot execution over
   [Quipper_serve] — a CLI batch mode (generate a workload circuit once,
   submit R requests of N shots across C concurrent clients, report
   shots/sec, cache behaviour and an outcome digest) and a line-oriented
   daemon loop for driving the service interactively or from scripts.

   Outcomes are seed-reproducible: shot [s] of request [r] is a function
   of [derive (derive seed r) s] alone, so two invocations at the same
   seed print the same digest whatever the client count. *)

open Cmdliner
module Serve = Quipper_serve
module Rng = Quipper_math.Rng
module Kernel = Quipper_sim.Kernel

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

let bwt_workload ~n ~s ~dt : Quipper.Circuit.b * bool list =
  (* the exact welded-tree instance, walked but *not* measured: the
     pre-measurement state the service freezes and samples from *)
  let g = Algo_bwt.Exact.build ~depth:n in
  let b, _ = Quipper.Circ.generate_unit (Algo_bwt.Exact.walk g ~steps:s ~dt) in
  (b, [])

let repcode_workload ~distance ~rounds : Quipper.Circuit.b * bool list =
  let p =
    { Algo_repcode.distance; rounds = (if rounds > 0 then rounds else distance) }
  in
  (Algo_repcode.generate ~p (), [])

let tf_workload () : Quipper.Circuit.b * bool list =
  (* the triangle-finding o4_POW17 oracle segment on an all-zero input
     register. l is pinned at 2: the arithmetic's ancilla blocks put
     larger instances past the statevector's 25-live-qubit cap. This
     reproduction's tf gate set carries no rotation angles, so sweeping
     it is the degenerate case: every point shares the skeleton entry —
     exactly the template cache's fast path for angle-free families *)
  let p = { Algo_tf.Oracle.l = 2; n = 2; r = 1 } in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let arity = List.length b.Quipper.Circuit.main.Quipper.Circuit.inputs in
  (b, List.init arity (fun _ -> false))

let workload name ~n ~s ~dt ~distance ~rounds =
  match name with
  | "bwt" -> bwt_workload ~n ~s ~dt
  | "tf" -> tf_workload ()
  | "repcode" -> repcode_workload ~distance ~rounds
  | w -> Fmt.failwith "unknown workload %S (try bwt, tf, repcode)" w

let parse_backend = function
  | "auto" -> `Auto
  | "clifford" -> `Clifford
  | "fused" -> `Fused
  | "statevector" -> `Statevector
  | s -> Fmt.failwith "unknown backend %S (try auto, clifford, fused, statevector)" s

(* A tiny order-sensitive digest over every shot of every reply, for
   reproducibility checks (CI runs the same batch twice and diffs). *)
let digest (replies : (Serve.reply, string) result list) : int64 =
  let mix h v =
    let open Int64 in
    let z = add (logxor h v) 0x9E3779B97F4A7C15L in
    mul (logxor z (shift_right_logical z 29)) 0xBF58476D1CE4E5B9L
  in
  List.fold_left
    (fun h -> function
      | Error e -> String.fold_left (fun h c -> mix h (Int64.of_int (Char.code c))) h e
      | Ok (r : Serve.reply) ->
          Array.fold_left
            (fun h shot ->
              Array.fold_left (fun h b -> mix h (if b then 1L else 0L)) h shot)
            h r.Serve.outcomes)
    0x51D07C1B9E6A2F35L replies

(* ------------------------------------------------------------------ *)
(* Batch mode                                                          *)

let run_batch wl n s dt distance rounds shots requests clients seed backend check
    optimize domains =
  Quipper_cli.set_domains domains;
  let circuit, inputs = workload wl ~n ~s ~dt ~distance ~rounds in
  let svc = Serve.create ~backend:(parse_backend backend) ~optimize () in
  let reqs =
    List.init requests (fun r ->
        { Serve.circuit; inputs; shots; seed = Rng.derive seed r })
  in
  (* [clients] concurrent clients = that many requests in flight at
     once: the batch fans across that many worker domains *)
  let saved = !Kernel.num_domains in
  if clients > 0 then Kernel.num_domains := clients;
  let t0 = Unix.gettimeofday () in
  let replies = Serve.submit_batch svc reqs in
  let elapsed = Unix.gettimeofday () -. t0 in
  Kernel.num_domains := saved;
  let served = List.filter_map Result.to_option replies in
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) replies
  in
  let sampled = List.fold_left (fun a r -> a + r.Serve.sampled) 0 served in
  let resim = List.fold_left (fun a r -> a + r.Serve.resimulated) 0 served in
  let total_shots = sampled + resim in
  let backend_names =
    List.sort_uniq String.compare (List.map (fun r -> r.Serve.backend) served)
  in
  Fmt.pr "workload %s: %d requests x %d shots, %d clients, backend %s@." wl
    requests shots
    (if clients > 0 then clients else min !Kernel.num_domains requests)
    (String.concat "+" backend_names);
  Fmt.pr "served %d shots in %.3fs: %.0f shots/s (%d sampled, %d resimulated)@."
    total_shots elapsed
    (float_of_int total_shots /. Float.max elapsed 1e-9)
    sampled resim;
  Fmt.pr "cache: %a@." Serve.pp_stats (Serve.stats svc);
  Fmt.pr "digest: 0x%Lx@." (digest replies);
  List.iter (fun e -> Fmt.epr "request error: %s@." e) errors;
  let failed = errors <> [] in
  let check_failed =
    check
    && List.exists
         (fun (req, reply) ->
           match reply with
           | Error _ -> true
           | Ok r -> Serve.naive svc req <> r.Serve.outcomes)
         (List.combine reqs replies)
  in
  if check then
    Fmt.pr "Shot check: %s@." (if check_failed then "FAIL" else "PASS");
  if failed || check_failed then 1 else 0

(* ------------------------------------------------------------------ *)
(* Sweep mode: the same workload skeleton at many rotation angles       *)

(* Every rotation site of the BWT walk carries the Trotter step [dt]
   (the workload's only angle parameter), so a sweep point at step [x]
   scales each base angle by [x / dt] — exact for any workload whose
   sites are linear in [dt] with zero intercept. Workloads with no
   angle sites (tf, repcode) sweep trivially: every point is the same
   circuit at its own derived seed, served from one shared clifford
   preparation or one compiled template. *)
let sweep_points ~base ~dt ~points ~lo ~hi =
  if Array.length base > 0 && Float.abs dt < 1e-12 then
    Fmt.failwith "sweep: base --dt must be nonzero to scale the angle sites";
  List.init points (fun i ->
      let x =
        if points <= 1 then lo
        else lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))
      in
      Array.map (fun a -> a /. dt *. x) base)

let run_sweep wl n s dt distance rounds shots points lo hi repeat seed backend
    check optimize domains =
  Quipper_cli.set_domains domains;
  let circuit, inputs = workload wl ~n ~s ~dt ~distance ~rounds in
  let base = Quipper.Circuit.angles circuit in
  let svc = Serve.create ~backend:(parse_backend backend) ~optimize () in
  let sw =
    {
      Serve.sw_circuit = circuit;
      sw_inputs = inputs;
      sw_points = sweep_points ~base ~dt ~points ~lo ~hi;
      sw_shots = shots;
      sw_seed = seed;
    }
  in
  Fmt.pr "workload %s: %d points x %d shots, %d angle sites, backend %s@." wl
    points shots (Array.length base) backend;
  let last = ref [] in
  let first_digest = ref 0L in
  let drift = ref false in
  for r = 1 to max 1 repeat do
    let t0 = Unix.gettimeofday () in
    let replies = Serve.submit_sweep svc sw in
    let elapsed = Unix.gettimeofday () -. t0 in
    let d = digest replies in
    if r = 1 then first_digest := d else if d <> !first_digest then drift := true;
    Fmt.pr "run %d: %d shots in %.3fs: %.0f shots/s@." r (points * shots)
      elapsed
      (float_of_int (points * shots) /. Float.max elapsed 1e-9);
    last := replies
  done;
  Fmt.pr "cache: %a@." Serve.pp_stats (Serve.stats svc);
  Fmt.pr "digest: 0x%Lx@." !first_digest;
  if !drift then Fmt.epr "sweep error: digests drifted across runs@.";
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) !last
  in
  List.iter (fun e -> Fmt.epr "point error: %s@." e) errors;
  let check_failed =
    check
    &&
    (* the acceptance property: the sweep path is bit-identical to
       submitting each angle-substituted circuit as its own request —
       through a fresh service, so nothing warm leaks into the
       reference *)
    let ref_svc = Serve.create ~backend:(parse_backend backend) ~optimize () in
    let naive = Serve.submit_batch ref_svc (Serve.sweep_requests sw) in
    let same = digest naive = !first_digest in
    Fmt.pr "Sweep check: %s@." (if same then "PASS" else "FAIL");
    not same
  in
  if errors <> [] || !drift || check_failed then 1 else 0

(* ------------------------------------------------------------------ *)
(* Daemon mode: one request per stdin line, "SHOTS SEED" (or "quit"),   *)
(* against the workload fixed at startup — the cache makes every line   *)
(* after the first a hit                                                *)

let submit_line svc circuit inputs ~shots ~seed =
  match Serve.submit svc { Serve.circuit; inputs; shots; seed } with
  | r ->
      Fmt.pr "ok backend=%s hit=%b sampled=%d resimulated=%d digest=0x%Lx@."
        r.Serve.backend r.Serve.cache_hit r.Serve.sampled r.Serve.resimulated
        (digest [ Ok r ])
  | exception e -> Fmt.pr "error: %s@." (Printexc.to_string e)

let run_daemon wl n s dt distance rounds backend optimize domains =
  Quipper_cli.set_domains domains;
  let circuit, inputs = workload wl ~n ~s ~dt ~distance ~rounds in
  let svc = Serve.create ~backend:(parse_backend backend) ~optimize () in
  Fmt.pr "shotd: serving %s; lines are \"SHOTS SEED\", \"stats\" or \"quit\"@." wl;
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> 0
    | "quit" -> 0
    | "stats" ->
        Fmt.pr "%a@." Serve.pp_stats (Serve.stats svc);
        loop ()
    | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ shots; seed ] -> (
            match (int_of_string_opt shots, int_of_string_opt seed) with
            | Some shots, Some seed ->
                submit_line svc circuit inputs ~shots ~seed;
                loop ()
            | _ ->
                Fmt.pr "error: expected \"SHOTS SEED\"@.";
                loop ())
        | _ ->
            Fmt.pr "error: expected \"SHOTS SEED\"@.";
            loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

let workload_arg =
  Arg.(
    value & opt string "bwt"
    & info [ "w"; "workload" ] ~docv:"W"
        ~doc:"Workload circuit: $(b,bwt) (exact welded-tree walk, statevector \
              territory), $(b,tf) (triangle-finding POW17 oracle segment, \
              boxed arithmetic) or $(b,repcode) (repetition-code memory, all \
              Clifford).")

let n_arg =
  Arg.(
    value & opt int 2
    & info [ "n" ] ~docv:"N" ~doc:"BWT tree depth (labels are n+2 bits).")

let s_arg =
  Arg.(value & opt int 1 & info [ "s" ] ~docv:"S" ~doc:"BWT walk timesteps.")

let dt_arg =
  Arg.(value & opt float 0.3 & info [ "dt" ] ~docv:"DT" ~doc:"BWT Trotter step.")

let distance_arg =
  Arg.(
    value & opt int 3
    & info [ "d"; "distance" ] ~docv:"D" ~doc:"Repetition-code distance (odd).")

let rounds_arg =
  Arg.(
    value & opt int 0
    & info [ "r"; "rounds" ] ~docv:"R"
        ~doc:"Repetition-code syndrome rounds (0 = one per unit of distance).")

let shots_arg =
  Arg.(value & opt int 256 & info [ "shots" ] ~docv:"N" ~doc:"Shots per request.")

let requests_arg =
  Arg.(
    value & opt int 8
    & info [ "requests" ] ~docv:"R"
        ~doc:"Independent requests in the batch (all for the same circuit, \
              distinct derived seeds — every request after the first hits the \
              cache).")

let clients_arg =
  Arg.(
    value & opt int 0
    & info [ "clients" ] ~docv:"C"
        ~doc:"Concurrent clients (worker domains serving the batch; 0 = the \
              domain default). Throughput scales, outcomes do not change.")

let backend_arg =
  Arg.(
    value & opt string "auto"
    & info [ "backend" ] ~docv:"B"
        ~doc:"Serving backend: auto, clifford, fused or statevector.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"After serving, re-run every shot through the naive per-shot \
              rebuild+resimulate path and verify bit-identity (prints \
              \"Shot check: PASS\").")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run each circuit through the streaming peephole optimizer once \
              at preparation time (amortized across cached requests). \
              Outcomes stay equal in distribution; $(b,--check) compares \
              against a naive path that applies the same rewrite.")

let points_arg =
  Arg.(
    value & opt int 64
    & info [ "points" ] ~docv:"P"
        ~doc:"Parameter points in the sweep (one request's worth of shots \
              each, at derived seeds).")

let dt_min_arg =
  Arg.(
    value & opt float 0.05
    & info [ "dt-min" ] ~docv:"X" ~doc:"Smallest swept Trotter step.")

let dt_max_arg =
  Arg.(
    value & opt float 0.6
    & info [ "dt-max" ] ~docv:"X" ~doc:"Largest swept Trotter step.")

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"R"
        ~doc:"Serve the sweep R times against the same service: every run \
              after the first hits the cached skeleton template (the warm \
              path the template cache exists for).")

let batch_cmd =
  let doc = "Serve one batch of shot requests and report throughput." in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run_batch $ workload_arg $ n_arg $ s_arg $ dt_arg $ distance_arg
      $ rounds_arg $ shots_arg $ requests_arg $ clients_arg
      $ Quipper_cli.seed_arg $ backend_arg $ check_arg $ optimize_arg
      $ Quipper_cli.domains_arg)

let sweep_cmd =
  let doc =
    "Serve a rotation-angle parameter sweep: one circuit skeleton, many \
     Trotter steps, the fused block program compiled once and \
     re-specialized per point."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run_sweep $ workload_arg $ n_arg $ s_arg $ dt_arg $ distance_arg
      $ rounds_arg $ shots_arg $ points_arg $ dt_min_arg $ dt_max_arg
      $ repeat_arg $ Quipper_cli.seed_arg $ backend_arg $ check_arg
      $ optimize_arg $ Quipper_cli.domains_arg)

let daemon_cmd =
  let doc = "Serve shot requests line by line from standard input." in
  Cmd.v (Cmd.info "daemon" ~doc)
    Term.(
      const run_daemon $ workload_arg $ n_arg $ s_arg $ dt_arg $ distance_arg
      $ rounds_arg $ backend_arg $ optimize_arg $ Quipper_cli.domains_arg)

let cmd =
  let doc =
    "Shot service: batched many-shot circuit execution (simulate once, sample \
     N times)."
  in
  Cmd.group (Cmd.info "shotd" ~doc) [ batch_cmd; sweep_cmd; daemon_cmd ]

let () = exit (Cmd.eval' cmd)
