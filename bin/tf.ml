(* The [tf] command line, mirroring the paper's §5.2/§5.4 usage:

     ./tf -f gatecount -o orthodox -l 31 -n 15 -r 6
     ./tf -s pow17 -l 4 -n 3 -r 2
     ./tf -f gatecount --oracle-only -l 31 -n 15 -r 9

   "Its command line interface allows the user, for example, to plug in
   different oracles, show different parts of the circuit, select a gate
   base, select different output formats, and select parameter values for
   l, n and r."

   The paper's [-O] (oracle only) is spelled [--oracle-only] here; [-O]
   runs the peephole optimizer instead. *)

open Cmdliner
open Quipper

type format = Gatecount | Text | AsciiArt

let generate ~subroutine ~oracle_only ~p =
  ignore oracle_only;
  match subroutine with
  | Some "pow17" -> Algo_tf.Qwtfp.generate_pow17 ~p ()
  | Some "mul" -> Algo_tf.Qwtfp.generate_mul ~p ()
  | Some "qwsh" -> Algo_tf.Qwtfp.generate_qwsh ~p ()
  | Some "oracle" -> Algo_tf.Qwtfp.generate_oracle ~p ()
  | Some s -> Fmt.failwith "unknown subroutine %S (try pow17, mul, qwsh, oracle)" s
  | None ->
      if oracle_only then Algo_tf.Qwtfp.generate_oracle ~p ()
      else Algo_tf.Qwtfp.generate ~p ()

(* per-box report lines from a collected subroutine namespace *)
let pp_per_subroutine subs sub_order =
  let b0 =
    { Circuit.main = { Circuit.inputs = []; gates = [||]; outputs = [] };
      subs; sub_order }
  in
  List.iter
    (fun (name, s) ->
      Fmt.pr "Subroutine %S: %d gates, %d qubits@." name s.Gatecount.total
        s.Gatecount.qubits)
    (Gatecount.per_subroutine b0)

(* One streamed generation pass of the selected entry point into [sink],
   with [report] on its result — the streaming modes below differ only
   in the sinks they compose. *)
let with_streamed ~subroutine ~oracle_only ~(p : Algo_tf.Oracle.params)
    (sink : unit -> 'a Sink.t) (report : 'a -> unit) =
  let module Qureg = Quipper_arith.Qureg in
  let go : type b q c r. in_:(b, q, c) Qdata.t -> (q -> r Circ.t) -> unit =
   fun ~in_ f -> report (fst (Circ.run_streaming ~in_ f (sink ())))
  in
  (match subroutine with
  | Some "pow17" ->
      go ~in_:(Qureg.shape p.l) (fun x -> Algo_tf.Oracle.o4_POW17 ~l:p.l x)
  | Some "mul" ->
      go
        ~in_:(Qdata.pair (Qureg.shape p.l) (Qureg.shape p.l))
        (fun xy -> Algo_tf.Oracle.o8_MUL ~l:p.l xy)
  | Some "qwsh" ->
      go ~in_:(Algo_tf.Qwtfp.regs_shape p) (fun regs -> Algo_tf.Qwtfp.a6_QWSH ~p regs)
  | Some "oracle" ->
      let node = Qureg.shape p.n in
      go
        ~in_:(Qdata.triple node node Qdata.qubit)
        (fun (u, w, e) -> Algo_tf.Oracle.o1_ORACLE ~p (u, w, e))
  | Some s -> Fmt.failwith "unknown subroutine %S (try pow17, mul, qwsh, oracle)" s
  | None ->
      if oracle_only then
        let node = Qureg.shape p.n in
        go
          ~in_:(Qdata.triple node node Qdata.qubit)
          (fun (u, w, e) -> Algo_tf.Oracle.o1_ORACLE ~p (u, w, e))
      else go ~in_:Qdata.unit (fun () -> Algo_tf.Qwtfp.a1_QWTFP ~p));
  0

(* Streaming mode: drive the same entry points through
   [Circ.run_streaming], tee-ing the subroutine-namespace, gate-count and
   depth sinks so one pass produces the whole gatecount report —
   byte-identical to the materialized path, with O(1) memory per gate. *)
let run_stream ~subroutine ~oracle_only ~p =
  let sink () = Sink.tee3 (Sink.subroutines ()) (Sink.gatecount ()) (Sink.depth ()) in
  let report ((subs, sub_order), summary, depth) =
    pp_per_subroutine subs sub_order;
    Fmt.pr "%a" Gatecount.pp_summary summary;
    Fmt.pr "Depth (upper bound): %d@." depth
  in
  with_streamed ~subroutine ~oracle_only ~p sink report

(* Streaming optimisation: the windowed peephole transformer between
   generation and the report sinks, unoptimized before-counters teed off
   the same pass. Report layout matches materialized [-O] (the
   [Passes.optimize_and_report] block, then the per-box/summary/depth
   gatecount report of the optimized circuit). *)
let run_stream_opt ~subroutine ~oracle_only ~p ~verbose =
  let module Stream_opt = Quipper_opt.Stream_opt in
  let st = Stream_opt.stats_create () in
  let sink () =
    Sink.tee
      (Sink.tee (Sink.gatecount ()) (Sink.depth ()))
      (Stream_opt.sink ~stats:st
         (Sink.tee3 (Sink.subroutines ()) (Sink.gatecount ()) (Sink.depth ())))
  in
  let report ((before, depth_before), ((subs, sub_order), after, depth_after)) =
    Fmt.pr "Before optimisation:@\n%a@\n" Gatecount.pp_summary before;
    if verbose then Fmt.pr "%a@." Stream_opt.pp_stats st;
    Fmt.pr "After optimisation:@\n%a@\n" Gatecount.pp_summary after;
    Fmt.pr "Optimizer: removed %d of %d logical gates; depth %d -> %d@."
      (before.Gatecount.total_logical - after.Gatecount.total_logical)
      before.Gatecount.total_logical depth_before depth_after;
    pp_per_subroutine subs sub_order;
    Fmt.pr "%a" Gatecount.pp_summary after;
    Fmt.pr "Depth (upper bound): %d@." depth_after
  in
  with_streamed ~subroutine ~oracle_only ~p sink report

(* Symbolic estimation: the whole algorithm is prologue ; a4^R1 ;
   epilogue, so the amplitude-amplification loop collapses to one
   multiplication of the a4 step's resource vector — R1 never enters a
   loop, and Wide accumulators keep totals exact far past native-int
   range. Named subroutines estimate directly from one streamed pass. *)
let run_estimate ~subroutine ~oracle_only ~(p : Algo_tf.Oracle.params) ~base =
  let module Estimate = Quipper_estimate.Estimate in
  let module Qureg = Quipper_arith.Qureg in
  let est =
    match subroutine with
    | Some "pow17" ->
        Estimate.of_circ ~in_:(Qureg.shape p.l) (fun x ->
            Algo_tf.Oracle.o4_POW17 ~l:p.l x)
    | Some "mul" ->
        Estimate.of_circ
          ~in_:(Qdata.pair (Qureg.shape p.l) (Qureg.shape p.l))
          (fun xy -> Algo_tf.Oracle.o8_MUL ~l:p.l xy)
    | Some "qwsh" ->
        Estimate.of_circ ~in_:(Algo_tf.Qwtfp.regs_shape p) (fun regs ->
            Algo_tf.Qwtfp.a6_QWSH ~p regs)
    | Some "oracle" ->
        let node = Qureg.shape p.n in
        Estimate.of_circ
          ~in_:(Qdata.triple node node Qdata.qubit)
          (fun (u, w, e) -> Algo_tf.Oracle.o1_ORACLE ~p (u, w, e))
    | Some s ->
        Fmt.failwith "unknown subroutine %S (try pow17, mul, qwsh, oracle)" s
    | None ->
        if oracle_only then
          let node = Qureg.shape p.n in
          Estimate.of_circ
            ~in_:(Qdata.triple node node Qdata.qubit)
            (fun (u, w, e) -> Algo_tf.Oracle.o1_ORACLE ~p (u, w, e))
        else
          let prologue =
            Estimate.of_circ_unit (Algo_tf.Qwtfp.a1_prologue ~p)
          in
          let step =
            Estimate.of_circ ~in_:(Algo_tf.Qwtfp.regs_shape p) (fun regs ->
                Algo_tf.Qwtfp.a4_GCQWStep ~p regs)
          in
          let epilogue =
            Estimate.of_circ ~in_:(Algo_tf.Qwtfp.regs_shape p) (fun regs ->
                Algo_tf.Qwtfp.a1_epilogue ~p regs)
          in
          Estimate.seq prologue
            (Estimate.seq
               (Estimate.repeat (Algo_tf.Qwtfp.r1_iterations p) step)
               epilogue)
  in
  let est = match base with None -> est | Some b -> Estimate.in_base b est in
  (match base with
  | Some b -> Fmt.pr "Gate base: %s@." (Decompose.base_name b)
  | None -> ());
  Fmt.pr "%a" Estimate.pp_summary est;
  0

(* Fused-simulation check: the pow17 arithmetic subcircuit (the paper's
   §5.2 oracle component) run through the gate-fusion engine and the
   plain statevector engine on every computational-basis input, with
   amplitude vectors compared componentwise. pow17 is hierarchical —
   boxed adders called repeatedly — so the run also exercises the
   per-box compilation cache; the printed stats show how many call
   gates were served per compilation. [-l 2] keeps the peak width
   inside the statevector qubit cap. *)
let run_fuse ~(p : Algo_tf.Oracle.params) =
  let module Sv = Quipper_sim.Statevector in
  let module Fuse = Quipper_sim.Fuse in
  let module Cplx = Quipper_math.Cplx in
  let b = Algo_tf.Qwtfp.generate_pow17 ~p () in
  let nin = List.length b.Circuit.main.Circuit.inputs in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dev = ref 0.0 and t_plain = ref 0.0 and t_fused = ref 0.0 in
  let last_stats = ref None in
  for x = 0 to (1 lsl nin) - 1 do
    let inputs = List.init nin (fun i -> x land (1 lsl i) <> 0) in
    let sv, tp = time (fun () -> Sv.run_circuit ~seed:1 b inputs) in
    let fu, tf = time (fun () -> Fuse.run_circuit ~seed:1 b inputs) in
    t_plain := !t_plain +. tp;
    t_fused := !t_fused +. tf;
    let a = Sv.amplitudes sv and c = Fuse.amplitudes fu in
    Array.iteri
      (fun i x ->
        let e = Cplx.norm (Cplx.sub x c.(i)) in
        if e > !dev then dev := e)
      a;
    last_stats := Some (Fuse.stats fu)
  done;
  Fmt.pr "pow17 l=%d: %d basis inputs@." p.Algo_tf.Oracle.l (1 lsl nin);
  Fmt.pr "Unfused: %.3fs total@." !t_plain;
  Fmt.pr "Fused:   %.3fs total@." !t_fused;
  (match !last_stats with
  | Some s -> Fmt.pr "Fusion:  %a@." Fuse.pp_stats s
  | None -> ());
  Fmt.pr "Max amplitude deviation: %.3g@." !dev;
  if !dev <= 1e-9 then begin
    Fmt.pr "Fusion check: PASS@.";
    0
  end
  else begin
    Fmt.pr "Fusion check: FAIL@.";
    1
  end

let run format subroutine oracle_only gate_base simulate optimize verbose l n r
    stream fuse estimate estimate_base domains =
  Quipper_cli.set_domains domains;
  let p = { Algo_tf.Oracle.l; n; r } in
  if estimate then begin
    if simulate || optimize || stream || fuse || gate_base <> None then
      Fmt.failwith
        "--estimate is incompatible with --simulate, -O, --stream, --fuse \
         and --gate-base (use --estimate-base for a symbolic base change)";
    (match format with
    | Gatecount -> ()
    | _ -> Fmt.failwith "--estimate supports the gatecount format only");
    run_estimate ~subroutine ~oracle_only ~p ~base:estimate_base
  end
  else if estimate_base <> None then
    Fmt.failwith "--estimate-base needs --estimate"
  else if fuse then begin
    if simulate || optimize || stream || gate_base <> None then
      Fmt.failwith
        "--fuse runs its own simulation comparison; drop --simulate, -O, \
         --stream and --gate-base";
    run_fuse ~p
  end
  else if stream then begin
    if simulate || gate_base <> None then
      Fmt.failwith
        "--stream is incompatible with --simulate and --gate-base (they \
         need the materialized circuit)";
    (match format with
    | Gatecount -> ()
    | _ -> Fmt.failwith "--stream supports the gatecount format only");
    if optimize then run_stream_opt ~subroutine ~oracle_only ~p ~verbose
    else run_stream ~subroutine ~oracle_only ~p
  end
  else if simulate then
    if Algo_tf.Simulate.run ~p then 0 else 1
  else begin
  let b = generate ~subroutine ~oracle_only ~p in
  let b =
    match gate_base with
    | Some "binary" -> Decompose.decompose_generic Decompose.Binary b
    | Some "toffoli" -> Decompose.decompose_generic Decompose.Toffoli b
    | Some base -> Fmt.failwith "unknown gate base %S (try binary, toffoli)" base
    | None -> b
  in
  let b =
    if optimize then Quipper_opt.Passes.optimize_and_report ~verbose Fmt.stdout b
    else b
  in
  (match format with
  | Gatecount ->
      (* per-box counts first, then the aggregate, as in the paper 5.3.1 *)
      List.iter
        (fun (name, s) ->
          Fmt.pr "Subroutine %S: %d gates, %d qubits@." name s.Gatecount.total
            s.Gatecount.qubits)
        (Gatecount.per_subroutine b);
      Fmt.pr "%a" Gatecount.pp_summary (Gatecount.summarize b);
      Fmt.pr "Depth (upper bound): %d@." (Depth.depth b)
  | Text -> Printer.print b
  | AsciiArt -> Ascii.print ~max_columns:400 b);
  0
  end

let format =
  let parse = function
    | "gatecount" -> Ok Gatecount
    | "text" -> Ok Text
    | "ascii" -> Ok AsciiArt
    | s -> Error (`Msg (Fmt.str "unknown format %S" s))
  in
  let print ppf = function
    | Gatecount -> Fmt.string ppf "gatecount"
    | Text -> Fmt.string ppf "text"
    | AsciiArt -> Fmt.string ppf "ascii"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Gatecount
    & info [ "f"; "format" ] ~docv:"FORMAT"
        ~doc:"Output format: gatecount, text or ascii.")

let subroutine =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "subroutine" ] ~docv:"NAME"
        ~doc:"Show only the named part of the circuit (pow17, mul, qwsh, oracle).")

let oracle_only =
  Arg.(
    value & flag
    & info [ "oracle-only" ]
        ~doc:"Generate the oracle only (the paper's -O).")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the peephole optimizer (default pipeline) before output, \
              printing before/after gate-count summaries.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"With $(b,-O), also print per-pass statistics.")

let gate_base =
  Arg.(
    value
    & opt (some string) None
    & info [ "g"; "gate-base" ] ~docv:"BASE"
        ~doc:"Decompose into a gate base (binary or toffoli) before output.")

let simulate =
  Arg.(
    value & flag
    & info [ "simulate" ]
        ~doc:"Run the oracle test suite (the paper's Simulate module) instead.")

let l_arg = Arg.(value & opt int 4 & info [ "l" ] ~docv:"L" ~doc:"Oracle integer width.")
let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Graph has 2^N nodes.")
let r_arg = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Hamming tuples have size 2^R.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:"Stream gates to the consumers instead of materializing the \
              circuit: O(1) memory per gate, same gatecount output byte \
              for byte.")

let fuse_arg =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:"Simulate the pow17 subcircuit through the gate-fusion engine \
              and the plain statevector engine on every basis input and \
              check the amplitudes agree (use a small $(b,-l): the \
              statevector caps at 25 qubits).")

let cmd =
  let doc = "The Triangle Finding algorithm, as implemented in the Quipper paper (section 5)." in
  Cmd.v
    (Cmd.info "tf" ~doc)
    Term.(
      const run $ format $ subroutine $ oracle_only $ gate_base $ simulate
      $ optimize_arg $ verbose_arg $ l_arg $ n_arg $ r_arg $ stream_arg
      $ fuse_arg $ Quipper_cli.estimate_arg $ Quipper_cli.estimate_base_arg
      $ Quipper_cli.domains_arg)

let () = exit (Cmd.eval' cmd)
