(** The Binary Welded Tree algorithm (Childs et al.; paper §3.3, §6):
    a quantum walk on two welded binary trees, presented by an
    edge-colouring oracle, Trotterized into the diffusion timesteps of
    the paper's Figure 1.

    Two oracle implementations feed the §6 comparison ({!Orthodox}
    hand-coded, {!Template} lifted); the QCL column comes from
    [Qcl_baseline.Bwt_qcl]. {!Exact} is a semantically exact instance —
    a proper matching edge-colouring — that runs end to end under full
    simulation, entrance to exit. *)

open Quipper
module Qureg = Quipper_arith.Qureg

type params = { n : int; s : int; dt : float }
(** Tree-depth parameter [n] (labels are 2n bits, the wire layout of
    Figure 1), [s] timesteps, Trotter step [dt]. *)

val default_params : params
val label_width : params -> int
val weld_mask : m:int -> color:int -> int
val entrance : int

module Orthodox : sig
  val neighbour :
    p:params -> color:int -> Qureg.t -> (Qureg.t * Wire.qubit) Circ.t
  (** Fresh (neighbour label, validity bit), hand-coded reversible
      arithmetic: heap-index doubling/halving, Toffoli-mixing weld. *)

  val unneighbour :
    p:params -> color:int -> Qureg.t -> Qureg.t -> Wire.qubit -> unit Circ.t
end

module Template : sig
  val neighbour_lifted :
    p:params -> color:int -> Qureg.t -> (Qureg.t * Wire.qubit) Circ.t

  val neighbour :
    p:params -> color:int -> Qureg.t -> (Qureg.t * Wire.qubit) Circ.t
  (** The same function written against the lifted boolean operators and
      wrapped compute/copy/uncompute — what [build_circuit] produces. *)

  val unneighbour :
    p:params -> color:int -> Qureg.t -> Qureg.t -> Wire.qubit -> unit Circ.t
end

val timestep : dt:float -> Qureg.t -> Qureg.t -> Wire.qubit -> unit Circ.t
(** Figure 1: the W / indicator / e^{-iZt} / W* diffusion sandwich (the
    rotation fires when the validity bit r is 0). *)

type oracle = {
  neighbour : color:int -> Qureg.t -> (Qureg.t * Wire.qubit) Circ.t;
  unneighbour : color:int -> Qureg.t -> Qureg.t -> Wire.qubit -> unit Circ.t;
}

val orthodox_oracle : params -> oracle
val template_oracle : params -> oracle

val walk_step : p:params -> oracle -> Qureg.t -> unit Circ.t
(** One Trotter timestep (all four colours: neighbour, diffusion,
    uncompute). {!main_circuit} is [s] iterations of this block followed
    by measurement — the decomposition symbolic resource estimation
    composes as prologue ; step^s ; epilogue. *)

val main_circuit : p:params -> oracle -> Qureg.t -> Wire.bit array Circ.t
val whole : p:params -> oracle -> Wire.bit array Circ.t
val generate : ?p:params -> which:[ `Orthodox | `Template ] -> unit -> Circuit.b

(** A semantically exact welded-tree instance: tree edges coloured
    [2*(parent depth parity) + child parity] (each colour a matching),
    weld matchings on colours 4 and 5; table-driven oracle; walkable
    under exact simulation with every uncompute assertion checked. *)
module Exact : sig
  type graph = {
    depth : int;
    label_bits : int;
    entrance : int;
    exit : int;
    edges : (int * int * int) list;
  }

  val colours : int
  val tree_depth_of_heap : int -> int
  val build : depth:int -> graph
  val neighbour_sem : graph -> colour:int -> int -> int option
  val neighbour : graph -> colour:int -> Qureg.t -> (Qureg.t * Wire.qubit) Circ.t
  val unneighbour : graph -> colour:int -> Qureg.t -> Qureg.t -> Wire.qubit -> unit Circ.t
  val step : graph -> dt:float -> Qureg.t -> unit Circ.t
  val walk : graph -> steps:int -> dt:float -> Qureg.t Circ.t
end
