(** Repetition-code quantum memory: the error-correction workload for
    million-trial noise campaigns.

    [distance] data qubits hold logical |0> as the bit-flip repetition
    code; each of [rounds] syndrome-extraction rounds initializes one
    fresh ancilla per adjacent data pair, entangles it with two CNOTs,
    and measures it; finally every data qubit is measured. Under
    circuit-level noise ({!Quipper_sim.Noise.config}, kicks after every
    gate including the syndrome circuitry) the decoder takes a majority
    vote over the measured data bits; a vote of 1 is a logical error.

    Every gate is Clifford and every measurement is deterministic on the
    clean run, so the whole workload is eligible for the Pauli-frame
    engine — trials run 63 per word operation instead of one full
    stabilizer simulation each. *)

open Quipper

type params = { distance : int; rounds : int }

let default_params = { distance = 3; rounds = 3 }

let validate p =
  if p.distance < 1 || p.distance mod 2 = 0 then
    invalid_arg "Repcode: distance must be odd and positive";
  if p.rounds < 0 then invalid_arg "Repcode: rounds must be non-negative"

let memory ~(p : params) : unit Circ.t =
  let open Circ in
  let* data = mapm (fun _ -> qinit_bit false) (List.init p.distance Fun.id) in
  let data = Array.of_list data in
  let syndrome_round =
    for_ 0
      (p.distance - 2)
      (fun i ->
        let* anc = qinit_bit false in
        let* () = cnot ~control:data.(i) ~target:anc in
        let* () = cnot ~control:data.(i + 1) ~target:anc in
        let* _syndrome = measure_qubit anc in
        return ())
  in
  let* () = iterm (fun _ -> syndrome_round) (List.init p.rounds Fun.id) in
  let* _readout = mapm measure_qubit (Array.to_list data) in
  return ()

let generate ?(p = default_params) () : Circuit.b =
  validate p;
  let b, () = Circ.generate_unit (memory ~p) in
  b

let syndrome_bits p = p.rounds * (p.distance - 1)
let output_bits p = p.distance + syndrome_bits p

(* Outputs come back in wire-id order: the data qubits are allocated
   before any ancilla, so the first [distance] bits are the final data
   readout and the rest are the syndrome history, round by round. *)
let logical_of_outputs ~(p : params) (bits : bool array) : bool =
  if Array.length bits <> output_bits p then
    invalid_arg "Repcode.logical_of_outputs: output arity";
  let ones = ref 0 in
  for i = 0 to p.distance - 1 do
    if bits.(i) then incr ones
  done;
  2 * !ones > p.distance

(* ------------------------------------------------------------------ *)
(* The memory experiment: logical-error rate vs physical error rate    *)

module Noise = Quipper_sim.Noise

type point = {
  pt_distance : int;
  pt_rounds : int;
  pt_physical : float;  (** per-wire depolarizing probability per gate *)
  pt_trials : int;
  pt_logical_errors : int;  (** majority vote came back 1 *)
  pt_tripped : int;  (** trials aborted by a termination assertion *)
  pt_errored : int;  (** trials that raised; recorded, not fatal *)
  pt_frame_trials : int;  (** trials completed by the Pauli-frame engine *)
  pt_slow_trials : int;  (** trials that ran the full simulation *)
  pt_seconds : float;
}

let logical_error_rate pt =
  let completed = pt.pt_trials - pt.pt_tripped - pt.pt_errored in
  if completed = 0 then 0.0
  else float_of_int pt.pt_logical_errors /. float_of_int completed

(** Run one (distance, physical-error-rate) point of the memory
    experiment: [trials] noisy preparations of logical |0>, decoded by
    majority vote. Backend defaults to clifford — the natural slow path
    for an all-Clifford workload and the engine the frame falls back
    to — and the frame engine picks up every trial when [engine] is
    [`Auto]. *)
let run_point ?(backend = (module Quipper_sim.Backend.Clifford : Quipper_sim.Backend.S))
    ?(master_seed = 1) ?(engine : Quipper_sim.Engine.t = `Auto) ~(p : params)
    ~(physical : float) ~(trials : int) () : point =
  validate p;
  let b = generate ~p () in
  let cfg = { Noise.none with depolarizing = physical } in
  let logical = ref 0 and tripped = ref 0 and errored = ref 0 in
  let t0 = Unix.gettimeofday () in
  let summary =
    Noise.sample_trials_on backend ~master_seed ~engine ~trials cfg b []
      ~f:(fun _t s ->
        match s with
        | Noise.Sampled bits -> if logical_of_outputs ~p bits then incr logical
        | Noise.Assertion_tripped -> incr tripped
        | Noise.Sample_errored _ -> incr errored)
  in
  let dt = Unix.gettimeofday () -. t0 in
  {
    pt_distance = p.distance;
    pt_rounds = p.rounds;
    pt_physical = physical;
    pt_trials = trials;
    pt_logical_errors = !logical;
    pt_tripped = !tripped;
    pt_errored = !errored;
    pt_frame_trials = summary.Noise.frame_sampled;
    pt_slow_trials = summary.Noise.slow_sampled;
    pt_seconds = dt;
  }

let pp_point ppf pt =
  Fmt.pf ppf
    "d=%d r=%d p=%.4g: %d/%d logical errors (rate %.3e), %d tripped, %d errored; %d frame + %d slow trials in %.2fs (%.0f trials/s)"
    pt.pt_distance pt.pt_rounds pt.pt_physical pt.pt_logical_errors pt.pt_trials
    (logical_error_rate pt) pt.pt_tripped pt.pt_errored pt.pt_frame_trials
    pt.pt_slow_trials pt.pt_seconds
    (float_of_int pt.pt_trials /. (if pt.pt_seconds > 0.0 then pt.pt_seconds else 1e-9))
