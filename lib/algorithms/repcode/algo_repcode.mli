(** Repetition-code quantum memory: the error-correction workload for
    million-trial noise campaigns.

    [distance] data qubits hold logical |0> as the bit-flip repetition
    code; each syndrome-extraction round initializes a fresh ancilla per
    adjacent data pair, entangles it with two CNOTs and measures it;
    finally all data qubits are measured and a majority vote decodes the
    logical bit. All-Clifford with deterministic clean measurements, so
    campaigns run on the Pauli-frame engine ({!Quipper_sim.Frame}) at 63
    trials per word operation. *)

open Quipper

type params = { distance : int;  (** odd *) rounds : int }

val default_params : params
(** distance 3, 3 rounds. *)

val memory : p:params -> unit Circ.t
(** The monadic circuit: prepare logical |0>, extract syndromes, read
    out. *)

val generate : ?p:params -> unit -> Circuit.b
(** The generated circuit. No inputs; outputs are classical bits in
    wire-id order: [distance] data-readout bits first, then
    [rounds * (distance - 1)] syndrome bits round by round. *)

val syndrome_bits : params -> int
val output_bits : params -> int

val logical_of_outputs : p:params -> bool array -> bool
(** Majority vote over the data-readout bits: [true] = logical error
    (the memory flipped). *)

(** One (distance, physical error rate) point of the memory
    experiment. *)
type point = {
  pt_distance : int;
  pt_rounds : int;
  pt_physical : float;  (** per-wire depolarizing probability per gate *)
  pt_trials : int;
  pt_logical_errors : int;  (** majority vote came back 1 *)
  pt_tripped : int;  (** trials aborted by a termination assertion *)
  pt_errored : int;  (** trials that raised; recorded, not fatal *)
  pt_frame_trials : int;  (** trials completed by the Pauli-frame engine *)
  pt_slow_trials : int;  (** trials that ran the full simulation *)
  pt_seconds : float;
}

val logical_error_rate : point -> float
(** Logical errors over completed trials. *)

val run_point :
  ?backend:(module Quipper_sim.Backend.S) ->
  ?master_seed:int ->
  ?engine:Quipper_sim.Engine.t ->
  p:params ->
  physical:float ->
  trials:int ->
  unit ->
  point
(** Run one point: [trials] noisy preparations under circuit-level
    depolarizing noise at rate [physical], decoded by majority vote.
    Backend defaults to clifford; [engine] defaults to [`Auto] (the
    frame engine, with slow-path fallback). *)

val pp_point : Format.formatter -> point -> unit
