(** The quantum walk of the Triangle Finding algorithm (paper §5.1–5.3):
    a Grover-based walk on the Hamming graph H associated to G, whose
    nodes are 2^r-tuples of graph nodes, adjacent when they differ in one
    coordinate.

    Registers (names as in §5.3.2):
    - [tt]: the tuple — 2^r node registers of n qubits each;
    - [i]: an r-qubit index into the tuple;
    - [v]: an n-qubit node;
    - [ee]: the edge table — one qubit per pair (j, k), k < j, caching
      edge(tt_j, tt_k).

    Subroutines (boxed, names as in the paper): [a6_QWSH] performs one
    walk step — diffuse (i, v), then under [with_computed_fun] fetch
    tt_i into a scratch node ([qram_fetch]), fetch/store the edge column
    ([a12_FetchStoreE]), recompute the column against the new node with
    2^r oracle calls ([a13_UPDATE]), store back ([qram_store]) — around an
    [a14_SWAP] of the scratch node with v. The triangle test
    [a5_TestTriangleEdges] phase-flips on any triangle among the cached
    edges. The top level interleaves a5 with segments of QWSH steps under
    amplitude amplification.

    Iteration counts (documented in DESIGN.md; the paper does not print
    its bounds): R1 = ceil(pi/4 * sqrt(2^n)) outer iterations, each
    running R2 = R1 * ceil(sqrt(2^r)) walk steps. Walk steps are grouped
    into boxed segments of [segment] steps so that the materialised
    circuit stays small no matter how large the counts are — the paper's
    hierarchical-circuit story (§4.4.4). *)

open Quipper
open Circ
module Qureg = Quipper_arith.Qureg

type params = Oracle.params = { l : int; n : int; r : int }

let default_params = Oracle.default_params

type registers = {
  tt : Qureg.t array; (* 2^r entries of n qubits *)
  i : Qureg.t; (* r qubits *)
  v : Qureg.t; (* n qubits *)
  ee : Wire.qubit array; (* C(2^r, 2) entries *)
}

let tuple_size p = 1 lsl p.r
let ee_size p = tuple_size p * (tuple_size p - 1) / 2

(** Index of pair (j,k), k < j, in the flat edge table. *)
let ee_index j k =
  if k >= j then invalid_arg "ee_index";
  (j * (j - 1) / 2) + k

(* Shape witness for the full register file *)
let regs_shape p :
    ((int list * int * int * bool list), registers, 'c) Qdata.t =
  let base =
    Qdata.quad
      (Qdata.list_of (tuple_size p) (Qureg.shape p.n))
      (Qureg.shape p.r) (Qureg.shape p.n)
      (Qdata.list_of (ee_size p) Qdata.qubit)
  in
  Qdata.iso
    ~bto:(fun (tt, i, v, ee) -> (tt, i, v, ee))
    ~bof:(fun (tt, i, v, ee) -> (tt, i, v, ee))
    ~qto:(fun (tt, i, v, ee) ->
      { tt = Array.of_list tt; i; v; ee = Array.of_list ee })
    ~qof:(fun { tt; i; v; ee } ->
      (Array.to_list tt, i, v, Array.to_list ee))
    ~cto:Fun.id ~cof:Fun.id base

(* ------------------------------------------------------------------ *)
(* qRAM (the paper's [qram_fetch] / [qram_store])                      *)

(** ttd ^= tt[i]: for every address a, copy tt_a under the "quantum test"
    i = a. *)
let qram_fetch ~(p : params) (i : Qureg.t) (tt : Qureg.t array)
    (ttd : Qureg.t) : unit Circ.t =
  iterm
    (fun a ->
      Qureg.xor_into ~source:tt.(a) ~target:ttd
      |> controlled (Qureg.const_controls a i))
    (List.init (tuple_size p) Fun.id)

(** tt[i] ^= ttd. *)
let qram_store ~(p : params) (i : Qureg.t) (tt : Qureg.t array)
    (ttd : Qureg.t) : unit Circ.t =
  iterm
    (fun a ->
      Qureg.xor_into ~source:ttd ~target:tt.(a)
      |> controlled (Qureg.const_controls a i))
    (List.init (tuple_size p) Fun.id)

(* ------------------------------------------------------------------ *)
(* Walk subroutines                                                    *)

(** a7_DIFFUSE: place the index and node choice registers in uniform
    superposition. *)
let a7_DIFFUSE (i : Qureg.t) (v : Qureg.t) : unit Circ.t =
  let* () = Quipper_primitives.Walk.diffuse i in
  Quipper_primitives.Walk.diffuse v

(** a12_FetchStoreE: swap the edge column of tuple position i into the
    scratch column eed. *)
let a12_FetchStoreE ~(p : params) (i : Qureg.t) (ee : Wire.qubit array)
    (eed : Wire.qubit array) : unit Circ.t =
  iterm
    (fun j ->
      iterm
        (fun k ->
          if k = j then return ()
          else
            let idx = if k < j then ee_index j k else ee_index k j in
            swap ee.(idx) eed.(k) |> controlled (Qureg.const_controls j i))
        (List.init (tuple_size p) Fun.id))
    (List.init (tuple_size p) Fun.id)

(** a13_UPDATE: recompute the scratch edge column against the scratch
    node: one oracle call per tuple position — the dominant cost of a walk
    step. *)
let a13_UPDATE ~(p : params) (tt : Qureg.t array) (ttd : Qureg.t)
    (eed : Wire.qubit array) : unit Circ.t =
  iterm
    (fun k ->
      let* _ = Oracle.o1_ORACLE ~p (ttd, tt.(k), eed.(k)) in
      return ())
    (List.init (tuple_size p) Fun.id)

(** a14_SWAP: exchange the scratch node with the choice node. *)
let a14_SWAP (ttd : Qureg.t) (v : Qureg.t) : unit Circ.t =
  Qureg.swap_registers ttd v

(** a6_QWSH: one walk step on the Hamming graph (§5.3.2, verbatim
    structure including comments and ancilla scoping). *)
let a6_QWSH ~(p : params) (regs : registers) : registers Circ.t =
  box "a6" ~in_:(regs_shape p) ~out:(regs_shape p)
    (fun regs ->
      let* () =
        comment_with_labels "ENTER: a6_QWSH"
          [ lab (Qureg.shape p.r) regs.i "i"; lab (Qureg.shape p.n) regs.v "v" ]
      in
      let* () =
        with_ancilla_init
          (List.init p.n (fun _ -> false))
          (fun ttd_l ->
            let ttd = Array.of_list ttd_l in
            with_ancilla_init
              (List.init (tuple_size p) (fun _ -> false))
              (fun eed_l ->
                let eed = Array.of_list eed_l in
                let* () = a7_DIFFUSE regs.i regs.v in
                let* _ =
                  with_computed_fun ()
                    (fun () ->
                      let* () = qram_fetch ~p regs.i regs.tt ttd in
                      let* () = a12_FetchStoreE ~p regs.i regs.ee eed in
                      let* () = a13_UPDATE ~p regs.tt ttd eed in
                      qram_store ~p regs.i regs.tt ttd)
                    (fun () ->
                      let* () = a14_SWAP ttd regs.v in
                      return ((), ()))
                in
                return ()))
      in
      let* () =
        comment_with_labels "EXIT: a6_QWSH"
          [ lab (Qureg.shape p.r) regs.i "i"; lab (Qureg.shape p.n) regs.v "v" ]
      in
      return regs)
    regs

(** a5_TestTriangleEdges: flip the phase when the cached edge table
    contains a triangle — a doubly-controlled Z per node triple. *)
let a5_TestTriangleEdges ~(p : params) (regs : registers) : registers Circ.t =
  box "a5" ~in_:(regs_shape p) ~out:(regs_shape p)
    (fun regs ->
      let ts = tuple_size p in
      let* () =
        iterm
          (fun j ->
            iterm
              (fun k ->
                iterm
                  (fun m ->
                    let* _ =
                      gate_Z regs.ee.(ee_index j k)
                      |> controlled
                           [ ctl regs.ee.(ee_index j m); ctl regs.ee.(ee_index k m) ]
                    in
                    return ())
                  (List.init k Fun.id))
              (List.init j Fun.id))
          (List.init ts Fun.id)
      in
      return regs)
    regs

(* ------------------------------------------------------------------ *)
(* Iteration structure                                                 *)

let r1_iterations p =
  let root = sqrt (Float.of_int (1 lsl p.n)) in
  max 1 (int_of_float (ceil (Float.pi /. 4.0 *. root)))

let segment = 8

let r2_iterations p =
  let per = r1_iterations p * max 1 (int_of_float (ceil (sqrt (Float.of_int (1 lsl p.r))))) in
  (* round up to a whole number of boxed segments *)
  (per + segment - 1) / segment * segment

(** A boxed segment of [segment] QWSH steps, so the materialised top-level
    circuit stays tiny regardless of the iteration counts. *)
let walk_segment ~(p : params) (regs : registers) : registers Circ.t =
  box "a6seg" ~in_:(regs_shape p) ~out:(regs_shape p)
    (fun regs -> iterate segment (fun regs -> a6_QWSH ~p regs) regs)
    regs

(** a4_GCQWStep: one amplitude-amplification step — the triangle phase
    test followed by a walk of R2 QWSH steps. *)
let a4_GCQWStep ~(p : params) (regs : registers) : registers Circ.t =
  box "a4" ~in_:(regs_shape p) ~out:(regs_shape p)
    (fun regs ->
      let* regs = a5_TestTriangleEdges ~p regs in
      iterate (r2_iterations p / segment) (fun regs -> walk_segment ~p regs) regs)
    regs

(** a2_FetchE: populate the initial edge table: one oracle call per node
    pair of the tuple. *)
let a2_FetchE ~(p : params) (regs : registers) : unit Circ.t =
  iterm
    (fun j ->
      iterm
        (fun k ->
          let* _ = Oracle.o1_ORACLE ~p (regs.tt.(j), regs.tt.(k), regs.ee.(ee_index j k)) in
          return ())
        (List.init j Fun.id))
    (List.init (tuple_size p) Fun.id)

(** a1_prologue: initialise and superpose the registers and populate the
    edge table — everything before the amplitude-amplification loop. *)
let a1_prologue ~(p : params) : registers Circ.t =
  let* tt =
    mapm (fun _ -> Qureg.init_zero ~width:p.n) (List.init (tuple_size p) Fun.id)
  in
  let* () = iterm Qureg.hadamard_all tt in
  let* i = Qureg.init_zero ~width:p.r in
  let* () = Qureg.hadamard_all i in
  let* v = Qureg.init_zero ~width:p.n in
  let* () = Qureg.hadamard_all v in
  let* ee = mapm (fun _ -> qinit_bit false) (List.init (ee_size p) Fun.id) in
  let regs = { tt = Array.of_list tt; i; v; ee = Array.of_list ee } in
  let* () = a2_FetchE ~p regs in
  return regs

(** a1_epilogue: measure the tuple and edge table, discard the rest (the
    candidate triangle is located classically from the measured tuple and
    edge table, §3.5). *)
let a1_epilogue ~(p : params) (regs : registers) :
    (Wire.bit array list * Wire.bit array) Circ.t =
  let* tt_bits =
    mapm (fun t -> measure (Qureg.shape p.n) t) (Array.to_list regs.tt |> List.map Fun.id)
  in
  let* ee_bits =
    mapm (fun e -> measure_qubit e) (Array.to_list regs.ee)
  in
  let* () = discard (Qureg.shape p.r) regs.i in
  let* () = discard (Qureg.shape p.n) regs.v in
  return (tt_bits, Array.of_list ee_bits)

(** a1_QWTFP: the whole algorithm — initialise, superpose, populate the
    edge table, amplitude-amplify, measure (§5.2's top level):
    prologue ; a4^R1 ; epilogue, the decomposition symbolic resource
    estimation multiplies through without running the loop. *)
let a1_QWTFP ~(p : params) : (Wire.bit array list * Wire.bit array) Circ.t =
  let* regs = a1_prologue ~p in
  let* regs = iterate (r1_iterations p) (fun regs -> a4_GCQWStep ~p regs) regs in
  a1_epilogue ~p regs

(** Generate the whole-algorithm circuit. *)
let generate ?(p = default_params) () : Circuit.b =
  let b, _ = Circ.generate_unit (a1_QWTFP ~p) in
  b

(** Generate just the oracle circuit (the paper's [-O] option). *)
let generate_oracle ?(p = default_params) () : Circuit.b =
  let node = Qureg.shape p.n in
  let b, _ =
    Circ.generate
      ~in_:(Qdata.triple node node Qdata.qubit)
      (fun (u, w, e) -> Oracle.o1_ORACLE ~p (u, w, e))
  in
  b

(** Generate just o4_POW17 (the paper's [-s pow17] option / Figure 2). *)
let generate_pow17 ?(p = default_params) () : Circuit.b =
  let b, _ =
    Circ.generate ~in_:(Qureg.shape p.l) (fun x -> Oracle.o4_POW17 ~l:p.l x)
  in
  b

(** Generate just o8_MUL (Figure 3). *)
let generate_mul ?(p = default_params) () : Circuit.b =
  let b, _ =
    Circ.generate
      ~in_:(Qdata.pair (Qureg.shape p.l) (Qureg.shape p.l))
      (fun xy -> Oracle.o8_MUL ~l:p.l xy)
  in
  b

(** Generate one a6_QWSH step. *)
let generate_qwsh ?(p = default_params) () : Circuit.b =
  let b, _ = Circ.generate ~in_:(regs_shape p) (fun regs -> a6_QWSH ~p regs) in
  b
