(** The quantum walk of the Triangle Finding algorithm (paper §5.1–5.3):
    a Grover-based walk on the Hamming graph of 2^r-tuples. Subroutines
    are boxed and named as in the paper (a5, a6_QWSH, a7_DIFFUSE,
    a12_FetchStoreE, a13_UPDATE, a14_SWAP); walk steps are grouped into
    boxed segments so that the materialised circuit stays small at any
    iteration count — the paper's hierarchical-circuit story (§4.4.4).
    Iteration-count model: see DESIGN.md. *)

open Quipper
module Qureg = Quipper_arith.Qureg

type params = Oracle.params = { l : int; n : int; r : int }

val default_params : params

type registers = {
  tt : Qureg.t array;  (** the tuple: 2^r node registers of n qubits *)
  i : Qureg.t;  (** r-qubit index *)
  v : Qureg.t;  (** n-qubit node *)
  ee : Wire.qubit array;  (** cached edge bits, one per pair (j, k), k < j *)
}

val tuple_size : params -> int
val ee_size : params -> int
val ee_index : int -> int -> int
val regs_shape :
  params ->
  ( int list * int * int * bool list,
    registers,
    Wire.bit array list * Wire.bit array * Wire.bit array * Wire.bit list )
  Qdata.t

val qram_fetch : p:params -> Qureg.t -> Qureg.t array -> Qureg.t -> unit Circ.t
(** ttd ^= tt[i]: one quantum-test-controlled copy per address. *)

val qram_store : p:params -> Qureg.t -> Qureg.t array -> Qureg.t -> unit Circ.t

val a7_DIFFUSE : Qureg.t -> Qureg.t -> unit Circ.t
val a12_FetchStoreE : p:params -> Qureg.t -> Wire.qubit array -> Wire.qubit array -> unit Circ.t
val a13_UPDATE : p:params -> Qureg.t array -> Qureg.t -> Wire.qubit array -> unit Circ.t
(** Recompute the scratch edge column: 2^r oracle calls — the dominant
    cost of a walk step. *)

val a14_SWAP : Qureg.t -> Qureg.t -> unit Circ.t

val a6_QWSH : p:params -> registers -> registers Circ.t
(** One walk step: §5.3.2's code, verbatim structure — diffusion, then a
    [with_computed_fun] qRAM sandwich around the a14 swap. *)

val a5_TestTriangleEdges : p:params -> registers -> registers Circ.t

val r1_iterations : params -> int
val segment : int
val r2_iterations : params -> int
val walk_segment : p:params -> registers -> registers Circ.t
val a4_GCQWStep : p:params -> registers -> registers Circ.t
val a2_FetchE : p:params -> registers -> unit Circ.t

val a1_prologue : p:params -> registers Circ.t
(** Initialise, superpose, populate the edge table — everything before
    the amplitude-amplification loop. *)

val a1_epilogue :
  p:params -> registers -> (Wire.bit array list * Wire.bit array) Circ.t
(** Measure the tuple and edge table, discard the rest. *)

val a1_QWTFP : p:params -> (Wire.bit array list * Wire.bit array) Circ.t
(** The whole algorithm: initialise, superpose, populate the edge table,
    amplitude-amplify, measure — [a1_prologue]; [a4_GCQWStep]^R1;
    [a1_epilogue], the decomposition symbolic resource estimation
    multiplies through. *)

val generate : ?p:params -> unit -> Circuit.b
val generate_oracle : ?p:params -> unit -> Circuit.b
val generate_pow17 : ?p:params -> unit -> Circuit.b
val generate_mul : ?p:params -> unit -> Circuit.b
val generate_qwsh : ?p:params -> unit -> Circuit.b
