(** The circuit-construction monad: Quipper's [Circ].

    A computation of type ['a t] describes a quantum operation in the
    procedural paradigm of the paper (§4.4.1): qubits are held in variables,
    gates are applied one at a time, and the same code can be *run* in
    different ways (§4.4.5) — accumulated into a circuit, counted, printed,
    or executed against a simulator, including the QRAM model with dynamic
    lifting (§4.3).

    Concretely ['a t = ctx -> 'a]: a reader over a mutable builder context.
    OCaml's strict evaluation makes the order of gate emission the order of
    evaluation, which is the semantics Quipper obtains from its lazy state
    monad. The context carries the gate sink, the ambient control context
    ([with_controls], §4.4.2), the live-wire table used for the run-time
    physicality checks the paper describes in §4.1 (no-cloning, no use of
    dead wires), and the namespace of boxed subcircuits (§4.4.4). *)

open Wire

type ctx = {
  mutable fresh : Wire.t;
  live : (Wire.t, Wire.ty) Hashtbl.t;
  mutable controls : Gate.control list;
  mutable buf : Gate.t Vec.t;
  subs : (string, Circuit.subroutine) Hashtbl.t;
  mutable sub_order : string list; (* reversed definition order *)
  mutable extraction_depth : int;
  inputs : Wire.endpoint Vec.t;
  boxing : bool;
  materialize : bool;
      (* when false (streaming runs), top-level gates are not retained in
         [buf] — except inside [with_computed] sandwiches, see [retain] *)
  mutable retain : int;
      (* nesting count of regions whose gates must stay in [buf] even in
         a non-materializing run, because they are re-read to emit
         inverses ([with_computed]'s uncompute half). When the count
         drops to zero the buffer is cleared, bounding streaming memory
         by the largest sandwich instead of the whole circuit. *)
  on_emit : (Gate.t -> unit) option;
  on_sub_enter : (string -> unit) option;
  on_sub_exit : (string -> Circuit.subroutine -> unit) option;
  lift : (ctx -> Wire.t -> bool) option;
}

type 'a t = ctx -> 'a

(* ------------------------------------------------------------------ *)
(* Monad structure                                                     *)

let return x : 'a t = fun _ -> x
let bind (m : 'a t) (f : 'a -> 'b t) : 'b t = fun c -> f (m c) c
let map (m : 'a t) (f : 'a -> 'b) : 'b t = fun c -> f (m c)

let ( let* ) = bind
let ( let+ ) = map
let ( >>= ) = bind
let ( >> ) (m : 'a t) (n : 'b t) : 'b t = fun c -> ignore (m c); n c

(** Kleisli iteration helpers. *)
let rec mapm (f : 'a -> 'b t) (l : 'a list) : 'b list t =
  match l with
  | [] -> return []
  | x :: tl ->
      let* y = f x in
      let* ys = mapm f tl in
      return (y :: ys)

(* [f x >> iterm f tl] would build the whole chain of per-element
   closures before the first gate runs — O(total gates) live memory,
   which defeats streaming on loop-heavy programs. Consume the list at
   run time instead, so each element's closure is garbage as soon as it
   has executed. *)
let rec iterm (f : 'a -> unit t) (l : 'a list) : unit t =
 fun c ->
  match l with
  | [] -> ()
  | x :: tl ->
      f x c;
      iterm f tl c

let rec foldm (f : 'acc -> 'a -> 'acc t) (acc : 'acc) (l : 'a list) : 'acc t =
  match l with
  | [] -> return acc
  | x :: tl ->
      let* acc = f acc x in
      foldm f acc tl

(** [iterate n f x] applies the circuit-producing function [f] to [x], [n]
    times in sequence (e.g. Trotter steps, Grover iterations). *)
let rec iterate n (f : 'a -> 'a t) (x : 'a) : 'a t =
  if n <= 0 then return x
  else
    let* x = f x in
    iterate (n - 1) f x

let for_ lo hi (f : int -> unit t) : unit t =
 fun c ->
  for i = lo to hi do
    f i c
  done

(* ------------------------------------------------------------------ *)
(* Context management                                                  *)

let create_ctx ?(boxing = true) ?(materialize = true) ?on_emit ?on_sub_enter
    ?on_sub_exit ?lift () =
  {
    fresh = 0;
    live = Hashtbl.create 64;
    controls = [];
    buf = Vec.create ();
    subs = Hashtbl.create 16;
    sub_order = [];
    extraction_depth = 0;
    inputs = Vec.create ();
    boxing;
    materialize;
    retain = 0;
    on_emit;
    on_sub_enter;
    on_sub_exit;
    lift;
  }

let fresh_wire c ty =
  let w = c.fresh in
  c.fresh <- c.fresh + 1;
  Hashtbl.replace c.live w ty;
  w

(** Allocate a wire id without registering it as live: the [Init] (or
    [Cgate], or [Subroutine] output) that brings the wire to life registers
    it when it passes through [emit]. This keeps gate emission closed under
    inversion: the mirror image of a [Term] is an [Init] for a wire nobody
    pre-registered. *)
let alloc_id c =
  let w = c.fresh in
  c.fresh <- c.fresh + 1;
  w

(** Allocate a circuit *input* wire (used by run drivers before invoking the
    user's circuit-producing function). *)
let alloc_input c ty =
  let w = fresh_wire c ty in
  Vec.push c.inputs { Wire.wire = w; ty };
  w

let live_outputs c =
  Hashtbl.fold (fun w ty acc -> { Wire.wire = w; ty } :: acc) c.live []
  |> List.sort (fun (a : Wire.endpoint) b -> compare a.wire b.wire)

(* ------------------------------------------------------------------ *)
(* The gate emitter: the single point through which every gate passes   *)

let check_live c w ty =
  match Hashtbl.find_opt c.live w with
  | None -> Errors.raise_ (Dead_wire w)
  | Some ty' ->
      if ty <> ty' then
        Errors.raise_ (Wire_type { wire = w; expected = ty; got = ty' })

let check_distinct endpoints =
  let rec go seen = function
    | [] -> ()
    | (e : Wire.endpoint) :: tl ->
        if List.mem e.wire seen then Errors.raise_ (No_cloning e.wire);
        go (e.wire :: seen) tl
  in
  go [] endpoints

(** Emit one gate: apply ambient controls, run the physicality checks,
    update the live table, append to the sink, notify the executor. The
    wires of [g] must already be concrete (allocation happens before). *)
let emit c (g : Gate.t) =
  let g =
    if c.controls = [] then g
    else
      match Gate.controllability g with
      | Gate.Controllable -> Gate.add_controls c.controls g
      | Gate.Control_neutral -> g
      | Gate.Not_controllable what -> Errors.raise_ (Not_controllable what)
  in
  (match g with Gate.Comment _ -> () | _ -> check_distinct (Gate.wires g));
  (match g with
  | Gate.Gate { name; targets; controls; _ } ->
      (match Gate.primitive_arity name with
      | Some n when n <> List.length targets ->
          Errors.invalidf "gate %s expects %d targets" name n
      | _ -> ());
      List.iter (fun w -> check_live c w Wire.Q) targets;
      List.iter (fun (k : Gate.control) -> check_live c k.cwire k.cty) controls
  | Gate.Rot { targets; controls; _ } ->
      List.iter (fun w -> check_live c w Wire.Q) targets;
      List.iter (fun (k : Gate.control) -> check_live c k.cwire k.cty) controls
  | Gate.Phase { controls; _ } ->
      List.iter (fun (k : Gate.control) -> check_live c k.cwire k.cty) controls
  | Gate.Init { ty; wire; _ } ->
      if Hashtbl.mem c.live wire then
        Errors.invalidf "init of already-live wire %d" wire
      else Hashtbl.add c.live wire ty
  | Gate.Term { ty; wire; _ } | Gate.Discard { ty; wire } ->
      check_live c wire ty;
      Hashtbl.remove c.live wire
  | Gate.Measure { wire } ->
      check_live c wire Wire.Q;
      Hashtbl.replace c.live wire Wire.C
  | Gate.Cgate { out; ins; _ } ->
      List.iter (fun w -> check_live c w Wire.C) ins;
      if Hashtbl.mem c.live out then
        Errors.invalidf "cgate output wire %d already live" out
      else Hashtbl.add c.live out Wire.C
  | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
      List.iter (fun (k : Gate.control) -> check_live c k.cwire k.cty) controls;
      let sub =
        match Hashtbl.find_opt c.subs name with
        | Some s -> s
        | None -> Errors.raise_ (Unknown_subroutine name)
      in
      if controls <> [] && not sub.controllable then
        Errors.raise_ (Not_controllable ("subroutine " ^ name));
      let d_in = if inv then sub.circ.outputs else sub.circ.inputs in
      let d_out = if inv then sub.circ.inputs else sub.circ.outputs in
      List.iter2 (fun w (e : Wire.endpoint) -> check_live c w e.ty) inputs d_in;
      List.iter (fun w -> Hashtbl.remove c.live w) inputs;
      List.iter2
        (fun w (e : Wire.endpoint) -> Hashtbl.replace c.live w e.ty)
        outputs d_out
  | Gate.Comment _ -> ());
  (* a capture in progress ([extraction_depth > 0]) records into its own
     buffer unconditionally; at top level a non-materializing run keeps
     gates only inside retained ([with_computed]) regions *)
  if c.materialize || c.retain > 0 || c.extraction_depth > 0 then
    Vec.push c.buf g;
  match c.on_emit with
  | Some f when c.extraction_depth = 0 -> f g
  | _ -> ()

(* Bracket a region whose emitted gates are re-read from the buffer (to
   emit their inverses). In a materializing run this is a no-op; in a
   streaming run it keeps the sandwich buffered and clears the buffer
   when the outermost such region closes. *)
let begin_retain c = c.retain <- c.retain + 1

let end_retain c =
  c.retain <- c.retain - 1;
  if c.retain = 0 && (not c.materialize) && c.extraction_depth = 0 then
    Vec.clear c.buf

(* ------------------------------------------------------------------ *)
(* Basic gates                                                         *)

let gate1 name (Qubit q) : unit t =
 fun c -> emit c (Gate.Gate { name; inv = false; targets = [ q ]; controls = [] })

(** Apply a named single-qubit gate and hand the qubit back (the paper's
    functional style: [a <- hadamard a]). *)
let gate1' name q : qubit t = fun c -> gate1 name q c; q

let qnot q = gate1' "not" q
let qnot_ q = gate1 "not" q
let hadamard q = gate1' "H" q
let hadamard_ q = gate1 "H" q
let gate_X = gate1' "X"
let gate_Y = gate1' "Y"
let gate_Z = gate1' "Z"
let gate_S = gate1' "S"
let gate_T = gate1' "T"
let gate_V = gate1' "V"
let gate_E = gate1' "E"

let gate_S_inv (Qubit q) : unit t =
 fun c -> emit c (Gate.Gate { name = "S"; inv = true; targets = [ q ]; controls = [] })

let gate_T_inv (Qubit q) : unit t =
 fun c -> emit c (Gate.Gate { name = "T"; inv = true; targets = [ q ]; controls = [] })

let gate_V_inv (Qubit q) : unit t =
 fun c -> emit c (Gate.Gate { name = "V"; inv = true; targets = [ q ]; controls = [] })

let named_gate name (qs : qubit list) : unit t =
 fun c ->
  emit c
    (Gate.Gate
       { name; inv = false; targets = List.map qubit_wire qs; controls = [] })

let gate_W (Qubit a) (Qubit b) : unit t =
 fun c -> emit c (Gate.Gate { name = "W"; inv = false; targets = [ a; b ]; controls = [] })

let gate_W_inv (Qubit a) (Qubit b) : unit t =
 fun c -> emit c (Gate.Gate { name = "W"; inv = true; targets = [ a; b ]; controls = [] })

let swap (Qubit a) (Qubit b) : unit t =
 fun c -> emit c (Gate.Gate { name = "swap"; inv = false; targets = [ a; b ]; controls = [] })

(** [cnot ~control ~target]: sugar for a singly-controlled not. *)
let cnot ~control:(Qubit a) ~target:(Qubit b) : unit t =
 fun c ->
  emit c
    (Gate.Gate
       { name = "not"; inv = false; targets = [ b ];
         controls = [ Gate.pos_control a ] })

let toffoli ~c1:(Qubit a) ~c2:(Qubit b) ~target:(Qubit t) : unit t =
 fun c ->
  emit c
    (Gate.Gate
       { name = "not"; inv = false; targets = [ t ];
         controls = [ Gate.pos_control a; Gate.pos_control b ] })

(** Rotation gates. [rot_expZt t q] is the e^{-iZt} gate of Figure 1. *)
let rot_expZt theta (Qubit q) : unit t =
 fun c ->
  emit c
    (Gate.Rot { name = "exp(-i%Z)"; angle = theta; inv = false; targets = [ q ]; controls = [] })

let rot_Z theta (Qubit q) : unit t =
 fun c ->
  emit c (Gate.Rot { name = "Rz"; angle = theta; inv = false; targets = [ q ]; controls = [] })

let rot_X theta (Qubit q) : unit t =
 fun c ->
  emit c (Gate.Rot { name = "Rx"; angle = theta; inv = false; targets = [ q ]; controls = [] })

(** The QFT phase gate R_k = diag(1, e^{2*pi*i/2^k}). *)
let gate_R k (Qubit q) : unit t =
 fun c ->
  emit c
    (Gate.Rot
       { name = "R"; angle = 2.0 *. Float.pi /. Float.of_int (1 lsl k);
         inv = false; targets = [ q ]; controls = [] })

let gate_R_inv k (Qubit q) : unit t =
 fun c ->
  emit c
    (Gate.Rot
       { name = "R"; angle = 2.0 *. Float.pi /. Float.of_int (1 lsl k);
         inv = true; targets = [ q ]; controls = [] })

let global_phase angle : unit t = fun c -> emit c (Gate.Phase { angle; controls = [] })

(* ------------------------------------------------------------------ *)
(* Initialisation, termination, measurement                            *)

let qinit_bit value : qubit t =
 fun c ->
  let w = alloc_id c in
  emit c (Gate.Init { ty = Wire.Q; value; wire = w });
  Qubit w

let qterm_bit value (Qubit q) : unit t =
 fun c -> emit c (Gate.Term { ty = Wire.Q; value; wire = q })

let qdiscard (Qubit q) : unit t = fun c -> emit c (Gate.Discard { ty = Wire.Q; wire = q })

let cinit_bit value : bit t =
 fun c ->
  let w = alloc_id c in
  emit c (Gate.Init { ty = Wire.C; value; wire = w });
  Bit w

let cterm_bit value (Bit b) : unit t =
 fun c -> emit c (Gate.Term { ty = Wire.C; value; wire = b })

let cdiscard (Bit b) : unit t = fun c -> emit c (Gate.Discard { ty = Wire.C; wire = b })

let measure_qubit (Qubit q) : bit t =
 fun c ->
  emit c (Gate.Measure { wire = q });
  Bit q

(** Prepare a qubit from a classical wire: measure-free conversion is not
    physical, so this is the standard "copy through CNOT after init" —
    Quipper's [prepare]. Here we model it as a classically-controlled not on
    a fresh qubit. *)
let prepare (Bit b) : qubit t =
 fun c ->
  let w = alloc_id c in
  emit c (Gate.Init { ty = Wire.Q; value = false; wire = w });
  emit c
    (Gate.Gate
       { name = "not"; inv = false; targets = [ w ];
         controls = [ { Gate.cwire = b; cty = Wire.C; positive = true } ] });
  Qubit w

(** Classical logic gates on classical wires (§4.2.3). *)
let cgate name (ins : bit list) : bit t =
 fun c ->
  let w = alloc_id c in
  emit c (Gate.Cgate { name; out = w; ins = List.map bit_wire ins });
  Bit w

let cgate_xor ins = cgate "xor" ins
let cgate_and ins = cgate "and" ins
let cgate_or ins = cgate "or" ins
let cgate_not i = cgate "not" [ i ]

(** Dynamic lifting (§4.3.1): read a circuit-execution-time classical wire
    back as a generation-time [bool]. Only run functions that actually
    execute circuits provide it. *)
let dynamic_lift (Bit b) : bool t =
 fun c ->
  check_live c b Wire.C;
  if c.extraction_depth > 0 then Errors.raise_ Dynamic_lifting_unavailable;
  match c.lift with
  | None -> Errors.raise_ Dynamic_lifting_unavailable
  | Some f -> f c b

(* ------------------------------------------------------------------ *)
(* Control structure (§4.4.2)                                          *)

(** Control specifications for [with_controls]/[controlled]: positive or
    negative, quantum or classical. *)
let ctl (Qubit q) = { Gate.cwire = q; cty = Wire.Q; positive = true }
let ctl_neg (Qubit q) = { Gate.cwire = q; cty = Wire.Q; positive = false }
let ctl_bit (Bit b) = { Gate.cwire = b; cty = Wire.C; positive = true }
let ctl_bit_neg (Bit b) = { Gate.cwire = b; cty = Wire.C; positive = false }

let with_controls (ctls : Gate.control list) (m : 'a t) : 'a t =
 fun c ->
  let saved = c.controls in
  c.controls <- saved @ ctls;
  Fun.protect ~finally:(fun () -> c.controls <- saved) (fun () -> m c)

let with_control q m = with_controls [ ctl q ] m

(** Pipe-friendly version of [with_controls], mirroring the paper's
    [qnot x `controlled` (a,b)]: [qnot_ x |> controlled [ctl a; ctl b]]. *)
let controlled (ctls : Gate.control list) (m : 'a t) : 'a t =
  with_controls ctls m

let without_controls (m : 'a t) : 'a t =
 fun c ->
  let saved = c.controls in
  c.controls <- [];
  Fun.protect ~finally:(fun () -> c.controls <- saved) (fun () -> m c)

(** Ablation switch: when false, [with_computed] applies ambient controls to
    the compute/uncompute halves instead of trimming them (see DESIGN.md). *)
let control_trimming = ref true

(* ------------------------------------------------------------------ *)
(* Ancillas (§4.2.1)                                                   *)

let with_ancilla (f : qubit -> 'a t) : 'a t =
 fun c ->
  let q = without_controls (qinit_bit false) c in
  let r = f q c in
  without_controls (qterm_bit false q) c;
  r

let with_ancilla_init (values : bool list) (f : qubit list -> 'a t) : 'a t =
 fun c ->
  let qs = without_controls (mapm qinit_bit values) c in
  let r = f qs c in
  without_controls (iterm (fun (v, q) -> qterm_bit v q) (List.combine values qs)) c;
  r

(* ------------------------------------------------------------------ *)
(* Comments and labels                                                 *)

let comment text : unit t = fun c -> emit c (Gate.Comment { text; labels = [] })

let label_endpoints (es : Wire.endpoint list) base =
  match es with
  | [ e ] -> [ (e.Wire.wire, base) ]
  | es -> List.mapi (fun i (e : Wire.endpoint) -> (e.Wire.wire, Fmt.str "%s[%d]" base i)) es

let comment_with_label text (w : ('b, 'q, 'c) Qdata.t) (x : 'q) base : unit t =
 fun c ->
  emit c (Gate.Comment { text; labels = label_endpoints (w.Qdata.qleaves x) base })

(** Label several pieces of data at once, as in
    [comment_with_labels "ENTER: a6" [lab qd1 x "x"; lab qd2 y "y"]]. *)
type labelled = L : ('b, 'q, 'c) Qdata.t * 'q * string -> labelled

let lab w x base = L (w, x, base)

let comment_with_labels text (ls : labelled list) : unit t =
 fun c ->
  let labels =
    List.concat_map (fun (L (w, x, base)) -> label_endpoints (w.Qdata.qleaves x) base) ls
  in
  emit c (Gate.Comment { text; labels })

(* ------------------------------------------------------------------ *)
(* Generic operations over shape witnesses (QShape, §4.5)              *)

(** [qinit w b]: initialise fresh quantum data of shape [w] from the
    boolean parameter [b] — the paper's [qinit :: QShape b q c => b -> Circ q]. *)
let qinit (w : ('b, 'q, 'c) Qdata.t) (b : 'b) : 'q t =
 fun c ->
  let bits = w.Qdata.bleaves b in
  let es =
    List.map2
      (fun ty v ->
        match ty with
        | Wire.Q ->
            let (Qubit q) = without_controls (qinit_bit v) c in
            Wire.qw q
        | Wire.C ->
            let (Bit b) = without_controls (cinit_bit v) c in
            Wire.cw b)
      w.Qdata.tys bits
  in
  w.Qdata.qbuild es

(** [qterm w b q]: assertively terminate quantum data, claiming it equals
    the parameter [b]. *)
let qterm (w : ('b, 'q, 'c) Qdata.t) (b : 'b) (q : 'q) : unit t =
 fun c ->
  let bits = w.Qdata.bleaves b in
  let es = w.Qdata.qleaves q in
  List.iter2
    (fun v (e : Wire.endpoint) ->
      without_controls
        (fun c ->
          emit c (Gate.Term { ty = e.ty; value = v; wire = e.wire }))
        c)
    bits es

(** [measure w q]: measure every qubit leaf, producing the classical
    version — the paper's [measure :: QShape b q c => q -> Circ c]. *)
let measure (w : ('b, 'q, 'c) Qdata.t) (q : 'q) : 'c t =
 fun c ->
  let es =
    List.map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with
        | Wire.Q ->
            emit c (Gate.Measure { wire = e.Wire.wire });
            Wire.cw e.Wire.wire
        | Wire.C -> e)
      (w.Qdata.qleaves q)
  in
  w.Qdata.cbuild es

let discard (w : ('b, 'q, 'c) Qdata.t) (q : 'q) : unit t =
 fun c ->
  List.iter
    (fun (e : Wire.endpoint) ->
      emit c (Gate.Discard { ty = e.Wire.ty; wire = e.Wire.wire }))
    (w.Qdata.qleaves q)

(** [controlled_not w target source]: apply a CNOT from each leaf of
    [source] onto the corresponding leaf of [target] — the generic
    [controlled_not :: QCData q => q -> q -> Circ (q, q)] of §4.5. *)
let controlled_not (w : ('b, 'q, 'c) Qdata.t) ~(target : 'q) ~(source : 'q) : unit t =
 fun c ->
  let ts = w.Qdata.qleaves target and ss = w.Qdata.qleaves source in
  List.iter2
    (fun (t : Wire.endpoint) (s : Wire.endpoint) ->
      match (t.Wire.ty, s.Wire.ty) with
      | Wire.Q, _ ->
          emit c
            (Gate.Gate
               { name = "not"; inv = false; targets = [ t.Wire.wire ];
                 controls = [ { Gate.cwire = s.Wire.wire; cty = s.Wire.ty; positive = true } ] })
      | Wire.C, _ -> Errors.invalidf "controlled_not: classical target wire %d" t.Wire.wire)
    ts ss

(** Initialise quantum data equal to given classical *wires* (not
    parameters): CNOT-copy each bit/qubit leaf into a fresh qubit. *)
let qinit_of (w : ('b, 'q, 'c) Qdata.t) (src : 'q) : 'q t =
 fun c ->
  let es =
    List.map
      (fun (e : Wire.endpoint) ->
        let w' = alloc_id c in
        (without_controls (fun c -> emit c (Gate.Init { ty = Wire.Q; value = false; wire = w' }))) c;
        emit c
          (Gate.Gate
             { name = "not"; inv = false; targets = [ w' ];
               controls = [ { Gate.cwire = e.Wire.wire; cty = e.Wire.ty; positive = true } ] });
        Wire.qw w')
      (w.Qdata.qleaves src)
  in
  w.Qdata.qbuild es

(* ------------------------------------------------------------------ *)
(* Subcircuit capture: the engine behind box / reverse / with_computed  *)

(** Run [f] on freshly-allocated dummy wires of the given shape, capturing
    its gates into a standalone circuit. The body runs in a sandboxed live
    scope (it cannot touch outer wires), with no ambient controls, and with
    execution suppressed. Returns the captured circuit and the result
    endpoints. *)
let capture (c : ctx) (in_w : ('b, 'q, 'cc) Qdata.t)
    (out_w : ('b2, 'q2, 'c2) Qdata.t) (f : 'q -> 'q2 t) :
    Circuit.t =
  let saved_buf = c.buf
  and saved_controls = c.controls
  and saved_live = Hashtbl.copy c.live in
  c.buf <- Vec.create ();
  c.controls <- [];
  Hashtbl.reset c.live;
  c.extraction_depth <- c.extraction_depth + 1;
  Fun.protect
    ~finally:(fun () ->
      c.extraction_depth <- c.extraction_depth - 1;
      c.buf <- saved_buf;
      c.controls <- saved_controls;
      Hashtbl.reset c.live;
      Hashtbl.iter (fun k v -> Hashtbl.replace c.live k v) saved_live)
    (fun () ->
      let ins =
        List.map (fun ty -> { Wire.wire = fresh_wire c ty; ty }) in_w.Qdata.tys
      in
      let x = in_w.Qdata.qbuild ins in
      let y = f x c in
      let outs = out_w.Qdata.qleaves y in
      (* every remaining live wire must be accounted for in the outputs;
         otherwise the function leaks wires (same error Quipper gives) *)
      let declared = List.map (fun (e : Wire.endpoint) -> e.Wire.wire) outs in
      Hashtbl.iter
        (fun w _ ->
          if not (List.mem w declared) then
            Errors.raise_
              (Shape_mismatch
                 (Fmt.str "captured function leaks wire %d (not in output shape)" w)))
        c.live;
      { Circuit.inputs = ins; gates = Vec.to_array c.buf; outputs = outs })

(** Replay a captured circuit onto actual input wires: rename, emit through
    the normal gate path (so ambient controls and execution apply), return
    the actual output endpoints. *)
let replay (c : ctx) (circ : Circuit.t) (actual_ins : Wire.endpoint list) :
    Wire.endpoint list =
  let map = Hashtbl.create 32 in
  (if List.length circ.Circuit.inputs <> List.length actual_ins then
     Errors.raise_ (Shape_mismatch "replay: input arity"));
  List.iter2
    (fun (d : Wire.endpoint) (a : Wire.endpoint) ->
      if d.Wire.ty <> a.Wire.ty then
        Errors.raise_ (Shape_mismatch "replay: input wire type");
      Hashtbl.replace map d.Wire.wire a.Wire.wire)
    circ.Circuit.inputs actual_ins;
  let rename_init w ty =
    (* wires born inside the circuit get fresh actual ids *)
    match Hashtbl.find_opt map w with
    | Some w' -> w'
    | None ->
        ignore ty;
        let w' = alloc_id c in
        Hashtbl.replace map w w';
        w'
  in
  let rename w =
    match Hashtbl.find_opt map w with
    | Some w' -> w'
    | None -> Errors.raise_ (Dead_wire w)
  in
  Array.iter
    (fun g ->
      let g' =
        match g with
        | Gate.Init { ty; value; wire } ->
            Gate.Init { ty; value; wire = rename_init wire ty }
        | Gate.Cgate { name; out; ins } ->
            let ins = List.map rename ins in
            Gate.Cgate { name; out = rename_init out Wire.C; ins }
        | Gate.Subroutine s ->
            (* outputs not among inputs are born here *)
            let inputs = List.map rename s.inputs in
            let sub =
              match Hashtbl.find_opt c.subs s.name with
              | Some sub -> sub
              | None -> Errors.raise_ (Unknown_subroutine s.name)
            in
            let d_out =
              if s.inv then sub.circ.Circuit.inputs else sub.circ.Circuit.outputs
            in
            let outputs =
              List.map2
                (fun w (e : Wire.endpoint) ->
                  match Hashtbl.find_opt map w with
                  | Some w' -> w'
                  | None -> rename_init w e.Wire.ty)
                s.outputs d_out
            in
            Gate.Subroutine
              { s with
                inputs;
                outputs;
                controls = List.map (Gate.rename_control rename) s.controls }
        | g -> Gate.rename rename g
      in
      emit c g')
    circ.Circuit.gates;
  List.map
    (fun (e : Wire.endpoint) -> { e with Wire.wire = rename e.Wire.wire })
    circ.Circuit.outputs

(* ------------------------------------------------------------------ *)
(* Whole-circuit operators (§4.4.3)                                    *)

(** Reverse of a circuit-producing function. [reverse_fun ~in_ ~out f] is a
    function of the *output* shape computing the inverse circuit of [f].
    Circuits containing initialisations and assertive terminations reverse
    without complaint (§4.2.2). *)
let reverse_fun ~(in_ : ('b, 'q, 'c) Qdata.t) ~(out : ('b2, 'q2, 'c2) Qdata.t)
    (f : 'q -> 'q2 t) : 'q2 -> 'q t =
 fun y c ->
  let circ = capture c in_ out f in
  let rev_gates =
    Array.of_list
      (Array.fold_left
         (fun acc g -> if Gate.is_comment g then acc else Gate.inverse g :: acc)
         [] circ.Circuit.gates)
  in
  let rev_circ =
    { Circuit.inputs = circ.Circuit.outputs; gates = rev_gates;
      outputs = circ.Circuit.inputs }
  in
  let actual_outs = replay c rev_circ (out.Qdata.qleaves y) in
  in_.Qdata.qbuild actual_outs

(** [reverse_simple w f]: reverse an in-place function (input and output
    shapes coincide), as used throughout the paper's examples. *)
let reverse_simple (w : ('b, 'q, 'c) Qdata.t) (f : 'q -> 'q t) : 'q -> 'q t =
  reverse_fun ~in_:w ~out:w f

(** [with_computed compute use]: run [compute], use its result, then
    automatically uncompute [compute]'s gates in reverse (§5.3.1's
    [with_computed_fun]). When [control_trimming] is on (the default, as in
    Quipper), ambient controls are applied only to the [use] block: if the
    compute block is correctly uncomputed, controlling the body alone is
    equivalent to controlling the whole sandwich, and vastly cheaper. *)
let with_computed (compute : 'a t) (use : 'a -> 'b t) : 'b t =
 fun c ->
  let trimming = !control_trimming in
  let saved_controls = c.controls in
  begin_retain c;
  Fun.protect
    ~finally:(fun () -> end_retain c)
    (fun () ->
      if trimming then c.controls <- [];
      let start = Vec.length c.buf in
      let a = compute c in
      let mid = Vec.length c.buf in
      c.controls <- saved_controls;
      let b = use a c in
      (* uncompute: emit the inverses of the compute gates in reverse order.
         Ambient controls are always cleared here: when trimming is off the
         recorded gates already carry them. *)
      c.controls <- [];
      (try
         for i = mid - 1 downto start do
           let g = Vec.get c.buf i in
           if not (Gate.is_comment g) then emit c (Gate.inverse g)
         done
       with e ->
         c.controls <- saved_controls;
         raise e);
      c.controls <- saved_controls;
      b)

(** Paper-style [with_computed_fun x compute use]. *)
let with_computed_fun (x : 'x) (compute : 'x -> 'a t) (use : 'a -> ('a * 'r) t) :
    ('x * 'r) t =
 fun c ->
  (* Quipper's version: compute from x, use, uncompute back to x. The
     intermediate value must be returned unchanged by [use]. *)
  let trimming = !control_trimming in
  let saved_controls = c.controls in
  begin_retain c;
  Fun.protect
    ~finally:(fun () -> end_retain c)
    (fun () ->
      if trimming then c.controls <- [];
      let start = Vec.length c.buf in
      let a = compute x c in
      let mid = Vec.length c.buf in
      c.controls <- saved_controls;
      let a', r = use a c in
      ignore a';
      c.controls <- [];
      (try
         for i = mid - 1 downto start do
           let g = Vec.get c.buf i in
           if not (Gate.is_comment g) then emit c (Gate.inverse g)
         done
       with e ->
         c.controls <- saved_controls;
         raise e);
      c.controls <- saved_controls;
      (x, r))

(* ------------------------------------------------------------------ *)
(* Boxed subcircuits (§4.4.4)                                          *)

let subroutine_controllable (circ : Circuit.t) =
  Array.for_all
    (fun g ->
      match Gate.controllability g with
      | Gate.Controllable | Gate.Control_neutral -> true
      | Gate.Not_controllable _ -> false)
    circ.Circuit.gates

(** [box name ~in_ ~out f x]: apply [f] to [x] through a named boxed
    subcircuit. On first use the body is generated once (on dummy wires)
    and recorded in the namespace; every use emits a single [Subroutine]
    gate. Boxes nest, giving a hierarchy of circuits; resource counting and
    the other whole-circuit operators exploit the sharing. *)
let box name ~(in_ : ('b, 'q, 'c) Qdata.t) ~(out : ('b2, 'q2, 'c2) Qdata.t)
    (f : 'q -> 'q2 t) : 'q -> 'q2 t =
 fun x c ->
  if not c.boxing then f x c
  else begin
    (match Hashtbl.find_opt c.subs name with
    | Some existing ->
        if
          List.map (fun (e : Wire.endpoint) -> e.Wire.ty) existing.circ.Circuit.inputs
          <> in_.Qdata.tys
        then Errors.raise_ (Subroutine_redefined name)
    | None ->
        (match c.on_sub_enter with Some f -> f name | None -> ());
        let circ = capture c in_ out f in
        let controllable = subroutine_controllable circ in
        let sub = { Circuit.circ; controllable } in
        Hashtbl.replace c.subs name sub;
        c.sub_order <- name :: c.sub_order;
        (match c.on_sub_exit with Some f -> f name sub | None -> ()));
    let sub = Hashtbl.find c.subs name in
    let d_in = sub.circ.Circuit.inputs and d_out = sub.circ.Circuit.outputs in
    let actual_ins = in_.Qdata.qleaves x in
    (if List.length actual_ins <> List.length d_in then
       Errors.raise_ (Shape_mismatch (Fmt.str "box %s: input arity" name)));
    let map = Hashtbl.create 16 in
    List.iter2
      (fun (d : Wire.endpoint) (a : Wire.endpoint) ->
        Hashtbl.replace map d.Wire.wire a.Wire.wire)
      d_in actual_ins;
    let actual_outs =
      List.map
        (fun (e : Wire.endpoint) ->
          match Hashtbl.find_opt map e.Wire.wire with
          | Some w -> { e with Wire.wire = w }
          | None ->
              let w = c.fresh in
              c.fresh <- c.fresh + 1;
              { e with Wire.wire = w })
        d_out
    in
    emit c
      (Gate.Subroutine
         {
           name;
           inv = false;
           inputs = List.map (fun (e : Wire.endpoint) -> e.Wire.wire) actual_ins;
           outputs = List.map (fun (e : Wire.endpoint) -> e.Wire.wire) actual_outs;
           controls = [];
         });
    out.Qdata.qbuild actual_outs
  end

(* ------------------------------------------------------------------ *)
(* Running                                                             *)

let namespace_of_ctx c =
  let subs =
    Hashtbl.fold (fun k v acc -> Circuit.Namespace.add k v acc) c.subs
      Circuit.Namespace.empty
  in
  (subs, List.rev c.sub_order)

(** Generate the circuit of [f] applied to fresh inputs of shape [in_].
    Returns the boxed circuit and the (wire-level) result. *)
let generate ?(boxing = true) ~(in_ : ('b, 'q, 'c) Qdata.t) (f : 'q -> 'r t) :
    Circuit.b * 'r =
  let c = create_ctx ~boxing () in
  let ins =
    List.map (fun ty -> { Wire.wire = alloc_input c ty; ty }) in_.Qdata.tys
  in
  let x = in_.Qdata.qbuild ins in
  let r = f x c in
  let subs, sub_order = namespace_of_ctx c in
  let main =
    { Circuit.inputs = Vec.to_array c.inputs |> Array.to_list;
      gates = Vec.to_array c.buf;
      outputs = live_outputs c }
  in
  ({ Circuit.main; subs; sub_order }, r)

(** Generate a closed computation (no declared inputs). *)
let generate_unit ?(boxing = true) (m : 'r t) : Circuit.b * 'r =
  generate ~boxing ~in_:Qdata.unit (fun () -> m)

(** Run [f] feeding every top-level gate to [sink] as it is emitted,
    without materializing the circuit: per-gate O(1) memory, except that
    [with_computed] sandwiches stay buffered while open (their gates are
    re-read to emit the uncompute half) and box bodies are captured as
    usual (they are the namespace, not the stream). The sink sees exactly
    the gate sequence {!generate} would record in the main circuit, with
    subroutine definitions delivered before their first call gate. *)
let run_streaming ?(boxing = true) ~(in_ : ('b, 'q, 'c) Qdata.t)
    (f : 'q -> 'r t) (sink : 'sr Sink.t) : 'sr * 'r =
  let c =
    create_ctx ~boxing ~materialize:false ~on_emit:sink.Sink.on_gate
      ~on_sub_enter:sink.Sink.on_subroutine_enter
      ~on_sub_exit:sink.Sink.on_subroutine_exit ()
  in
  let ins =
    List.map (fun ty -> { Wire.wire = alloc_input c ty; ty }) in_.Qdata.tys
  in
  sink.Sink.on_inputs ins;
  let x = in_.Qdata.qbuild ins in
  let r = f x c in
  (sink.Sink.finish (live_outputs c), r)

let run_streaming_unit ?(boxing = true) (m : 'r t) (sink : 'sr Sink.t) :
    'sr * 'r =
  run_streaming ~boxing ~in_:Qdata.unit (fun () -> m) sink
