(** The circuit-construction monad: Quipper's [Circ] (paper §4.4).

    A computation of type ['a t] describes a quantum operation in the
    paper's procedural paradigm: qubits are held in variables, gates are
    applied one at a time, and the same code can be {e run} in different
    ways (§4.4.5) — accumulated into a circuit ({!generate}), counted,
    printed, or executed gate-by-gate against a simulator, including the
    QRAM model with dynamic lifting (§4.3). The builder performs the
    run-time physicality checks of §4.1 (no-cloning, no dead wires) on
    every gate. *)

type ctx
(** The mutable builder context. User code never touches it directly;
    run-function implementations create one with {!create_ctx}. *)

type 'a t = ctx -> 'a
(** A circuit-producing computation. The representation is exposed so that
    custom low-level operations can be written as functions on the
    context; ordinary code composes computations with the monad
    operations below. *)

(** {1 Monad structure} *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
val ( >> ) : 'a t -> 'b t -> 'b t

val mapm : ('a -> 'b t) -> 'a list -> 'b list t
val iterm : ('a -> unit t) -> 'a list -> unit t
val foldm : ('acc -> 'a -> 'acc t) -> 'acc -> 'a list -> 'acc t

val iterate : int -> ('a -> 'a t) -> 'a -> 'a t
(** [iterate n f x]: apply the circuit-producing [f] to [x], [n] times in
    sequence (Trotter steps, Grover iterations, ...). *)

val for_ : int -> int -> (int -> unit t) -> unit t

(** {1 Context management (for run-function implementors)} *)

val create_ctx :
  ?boxing:bool ->
  ?materialize:bool ->
  ?on_emit:(Gate.t -> unit) ->
  ?on_sub_enter:(string -> unit) ->
  ?on_sub_exit:(string -> Circuit.subroutine -> unit) ->
  ?lift:(ctx -> Wire.t -> bool) ->
  unit ->
  ctx
(** A fresh builder. [boxing:false] makes {!box} inline its body (needed
    when gates are executed as emitted); [on_emit] is called on every
    top-level gate (the execution hook of the simulators and of
    {!run_streaming}); [materialize:false] drops top-level gates from the
    buffer after emission (streaming runs — {!with_computed} regions stay
    buffered while open, since their gates are re-read to uncompute);
    [on_sub_enter]/[on_sub_exit] observe box-body capture; [lift]
    supplies {!dynamic_lift}. *)

val alloc_input : ctx -> Wire.ty -> Wire.t
(** Allocate a circuit input wire (live, recorded in the input arity). *)

val alloc_id : ctx -> Wire.t
(** A fresh wire id, not yet live; the [Init] (or [Cgate], or call output)
    that brings it to life registers it. *)

val fresh_wire : ctx -> Wire.ty -> Wire.t
(** A fresh wire id registered as live without an [Init] gate (inputs). *)

val emit : ctx -> Gate.t -> unit
(** The single point every gate passes through: applies the ambient
    controls, runs the physicality checks, updates liveness, appends to
    the circuit, notifies the executor. *)

(** {1 Basic gates} *)

val qnot : Wire.qubit -> Wire.qubit t
val qnot_ : Wire.qubit -> unit t
val hadamard : Wire.qubit -> Wire.qubit t
val hadamard_ : Wire.qubit -> unit t
val gate_X : Wire.qubit -> Wire.qubit t
val gate_Y : Wire.qubit -> Wire.qubit t
val gate_Z : Wire.qubit -> Wire.qubit t
val gate_S : Wire.qubit -> Wire.qubit t
val gate_T : Wire.qubit -> Wire.qubit t
val gate_V : Wire.qubit -> Wire.qubit t
val gate_E : Wire.qubit -> Wire.qubit t
val gate_S_inv : Wire.qubit -> unit t
val gate_T_inv : Wire.qubit -> unit t
val gate_V_inv : Wire.qubit -> unit t

val gate1 : string -> Wire.qubit -> unit t
(** Apply a named single-qubit gate. *)

val gate1' : string -> Wire.qubit -> Wire.qubit t

val named_gate : string -> Wire.qubit list -> unit t
(** A user gate by name; prints and counts, but has no built-in
    simulation semantics. *)

val gate_W : Wire.qubit -> Wire.qubit -> unit t
(** The Binary Welded Tree basis-change gate (paper Figure 1). *)

val gate_W_inv : Wire.qubit -> Wire.qubit -> unit t
val swap : Wire.qubit -> Wire.qubit -> unit t
val cnot : control:Wire.qubit -> target:Wire.qubit -> unit t
val toffoli : c1:Wire.qubit -> c2:Wire.qubit -> target:Wire.qubit -> unit t

val rot_expZt : float -> Wire.qubit -> unit t
(** The e^{-iZt} rotation of Figure 1. *)

val rot_Z : float -> Wire.qubit -> unit t
val rot_X : float -> Wire.qubit -> unit t

val gate_R : int -> Wire.qubit -> unit t
(** The QFT phase gate R_k = diag(1, e^{2 pi i / 2^k}). *)

val gate_R_inv : int -> Wire.qubit -> unit t
val global_phase : float -> unit t

(** {1 Initialisation, termination, measurement (§4.2)} *)

val qinit_bit : bool -> Wire.qubit t
(** Allocate a fresh qubit in |0> or |1> (the "0|-" gate). *)

val qterm_bit : bool -> Wire.qubit -> unit t
(** Assertive termination ("-|0"): the caller asserts the state; the
    simulators verify the assertion, the compiler may rely on it. *)

val qdiscard : Wire.qubit -> unit t
val cinit_bit : bool -> Wire.bit t
val cterm_bit : bool -> Wire.bit -> unit t
val cdiscard : Wire.bit -> unit t

val measure_qubit : Wire.qubit -> Wire.bit t
(** Measure: the wire becomes classical (same id). *)

val prepare : Wire.bit -> Wire.qubit t
(** A fresh qubit classically-controlled-copied from a classical wire. *)

val cgate : string -> Wire.bit list -> Wire.bit t
val cgate_xor : Wire.bit list -> Wire.bit t
val cgate_and : Wire.bit list -> Wire.bit t
val cgate_or : Wire.bit list -> Wire.bit t
val cgate_not : Wire.bit -> Wire.bit t

val dynamic_lift : Wire.bit -> bool t
(** Read a circuit-execution-time classical wire back as a
    generation-time boolean (§4.3.1). Only run functions that execute
    circuits provide it; plain generation raises
    [Dynamic_lifting_unavailable]. *)

(** {1 Control structure (§4.4.2)} *)

val ctl : Wire.qubit -> Gate.control
val ctl_neg : Wire.qubit -> Gate.control
val ctl_bit : Wire.bit -> Gate.control
val ctl_bit_neg : Wire.bit -> Gate.control

val with_controls : Gate.control list -> 'a t -> 'a t
(** Let an entire block of gates be controlled. Nested blocks accumulate;
    initialisations and terminations pass through uncontrolled
    (control-neutral); measurements inside raise. *)

val with_control : Wire.qubit -> 'a t -> 'a t

val controlled : Gate.control list -> 'a t -> 'a t
(** Pipe-friendly [with_controls], mirroring the paper's infix
    [`controlled`]: [qnot_ x |> controlled [ ctl a; ctl_neg b ]]. *)

val without_controls : 'a t -> 'a t

val control_trimming : bool ref
(** When true (the default, as in Quipper), {!with_computed} applies
    ambient controls only to its [use] block: controlling the body alone
    is equivalent to controlling the whole compute/use/uncompute sandwich,
    and much cheaper. Settable to [false] for ablation. *)

(** {1 Ancillas (§4.2.1)} *)

val with_ancilla : (Wire.qubit -> 'a t) -> 'a t
(** Provide a |0> ancilla to a block; the block must return it to |0>,
    and the closing assertive termination checks it under simulation. *)

val with_ancilla_init : bool list -> (Wire.qubit list -> 'a t) -> 'a t

(** {1 Comments and labels} *)

val comment : string -> unit t
val comment_with_label : string -> ('b, 'q, 'c) Qdata.t -> 'q -> string -> unit t

type labelled = L : ('b, 'q, 'c) Qdata.t * 'q * string -> labelled

val lab : ('b, 'q, 'c) Qdata.t -> 'q -> string -> labelled
val comment_with_labels : string -> labelled list -> unit t

(** {1 Generic operations over shape witnesses (§4.5)} *)

val qinit : ('b, 'q, 'c) Qdata.t -> 'b -> 'q t
(** The paper's [qinit :: QShape b q c => b -> Circ q]. *)

val qterm : ('b, 'q, 'c) Qdata.t -> 'b -> 'q -> unit t
val measure : ('b, 'q, 'c) Qdata.t -> 'q -> 'c t
val discard : ('b, 'q, 'c) Qdata.t -> 'q -> unit t

val controlled_not : ('b, 'q, 'c) Qdata.t -> target:'q -> source:'q -> unit t
(** CNOT each leaf of [source] onto the corresponding leaf of [target] —
    the generic [controlled_not] of §4.5. *)

val qinit_of : ('b, 'q, 'c) Qdata.t -> 'q -> 'q t
(** Fresh quantum data CNOT-copied leafwise from existing wires. *)

(** {1 Whole-circuit operators (§4.4.3)} *)

val reverse_fun :
  in_:('b, 'q, 'c) Qdata.t ->
  out:('b2, 'q2, 'c2) Qdata.t ->
  ('q -> 'q2 t) ->
  'q2 ->
  'q t
(** The inverse of a circuit-producing function, applicable mid-circuit.
    Circuits containing initialisations and assertive terminations reverse
    without complaint (§4.2.2). *)

val reverse_simple : ('b, 'q, 'c) Qdata.t -> ('q -> 'q t) -> 'q -> 'q t

val with_computed : 'a t -> ('a -> 'b t) -> 'b t
(** [with_computed compute use]: run [compute], use its result, then
    automatically emit the inverses of [compute]'s gates in reverse order
    (§5.3.1). See {!control_trimming}. *)

val with_computed_fun : 'x -> ('x -> 'a t) -> ('a -> ('a * 'r) t) -> ('x * 'r) t
(** The paper's [with_computed_fun x compute use]; [use] must return the
    intermediate value unchanged. *)

(** {1 Boxed subcircuits (§4.4.4)} *)

val box :
  string ->
  in_:('b, 'q, 'c) Qdata.t ->
  out:('b2, 'q2, 'c2) Qdata.t ->
  ('q -> 'q2 t) ->
  'q ->
  'q2 t
(** [box name ~in_ ~out f x]: apply [f] through a named boxed subcircuit.
    The first use generates the body once on dummy wires and records it in
    the namespace; every use emits a single call gate. Boxes nest —
    hierarchical circuits — and resource counting exploits the sharing. *)

(** {1 Running} *)

val generate :
  ?boxing:bool -> in_:('b, 'q, 'c) Qdata.t -> ('q -> 'r t) -> Circuit.b * 'r
(** Generate the circuit of [f] applied to fresh inputs of shape [in_].
    The outputs are all wires live at the end, in id order. *)

val generate_unit : ?boxing:bool -> 'r t -> Circuit.b * 'r

val run_streaming :
  ?boxing:bool ->
  in_:('b, 'q, 'c) Qdata.t ->
  ('q -> 'r t) ->
  'sr Sink.t ->
  'sr * 'r
(** Run [f] on fresh inputs of shape [in_], feeding every top-level gate
    to the sink as it is emitted instead of materializing the circuit:
    per-gate O(1) memory for sink-only consumers (streaming gate counts,
    depth, printing, simulation — see {!Sink}), which unbounds circuit
    size from RAM the way the paper's lazy evaluation does (§5.4).

    The sink sees exactly the gate sequence {!generate} records in the
    main circuit — same order, same wire ids, ambient controls applied —
    and subroutine definitions arrive (via [on_subroutine_exit]) before
    the first call gate naming them. Memory caveats: a {!with_computed}
    sandwich stays buffered until its uncompute half has been emitted
    (the bound becomes the largest open sandwich), and box bodies are
    captured as usual — they are the namespace, not the stream. *)

val run_streaming_unit : ?boxing:bool -> 'r t -> 'sr Sink.t -> 'sr * 'r
(** {!run_streaming} for a closed computation (no declared inputs). *)
