(** Circuits and hierarchical (boxed) circuits.

    A [t] is a straight-line sequence of gates together with its input and
    output aritys (typed wire lists). A [b] ("boxed circuit", Quipper's
    [BCircuit]) pairs a main circuit with a namespace of named subroutine
    definitions; [Subroutine] gates in any circuit refer into the namespace.
    Keeping subroutines shared rather than inlined is what lets Quipper
    represent circuits with trillions of gates in memory (paper §4.4.4) —
    the whole-circuit operators and the resource counter all work
    hierarchically. *)

type t = {
  inputs : Wire.endpoint list;
  gates : Gate.t array;
  outputs : Wire.endpoint list;
}

(** A subroutine definition. [controllable] records whether calls to it may
    receive controls (true when the body is purely unitary). *)
type subroutine = { circ : t; controllable : bool }

module Namespace = Map.Make (String)

type b = {
  main : t;
  subs : subroutine Namespace.t;
  sub_order : string list;  (** definition order, for stable printing *)
}

let of_main main = { main; subs = Namespace.empty; sub_order = [] }

let find_sub b name =
  match Namespace.find_opt name b.subs with
  | Some s -> s
  | None -> Errors.raise_ (Unknown_subroutine name)

let gate_count_shallow (c : t) =
  Array.fold_left
    (fun acc g -> if Gate.is_comment g then acc else acc + 1)
    0 c.gates

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)

(** Check that a circuit is physically well-formed: every gate addresses
    live wires of the right type, no wire is used twice by one gate, inits
    allocate fresh wires, terminations kill them, and the final live set
    matches the declared outputs. Raises [Errors.Error] otherwise. Used by
    tests and after transformation passes. *)
let validate ?(subs : subroutine Namespace.t = Namespace.empty) (c : t) =
  let live : (Wire.t, Wire.ty) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Wire.endpoint) ->
      if Hashtbl.mem live e.wire then
        Errors.invalidf "duplicate input wire %d" e.wire;
      Hashtbl.add live e.wire e.ty)
    c.inputs;
  let check_live w ty =
    match Hashtbl.find_opt live w with
    | None -> Errors.raise_ (Dead_wire w)
    | Some ty' ->
        if ty <> ty' then
          Errors.raise_ (Wire_type { wire = w; expected = ty; got = ty' })
  in
  let check_distinct endpoints =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (e : Wire.endpoint) ->
        if Hashtbl.mem seen e.wire then Errors.raise_ (No_cloning e.wire);
        Hashtbl.add seen e.wire ())
      endpoints
  in
  let apply_gate (g : Gate.t) =
    (match g with Gate.Comment _ -> () | _ -> check_distinct (Gate.wires g));
    match g with
    | Gate.Gate { name; targets; controls; _ } ->
        (match Gate.primitive_arity name with
        | Some n when n <> List.length targets ->
            Errors.invalidf "gate %s expects %d targets" name n
        | _ -> ());
        List.iter (fun w -> check_live w Wire.Q) targets;
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls
    | Gate.Rot { targets; controls; _ } ->
        List.iter (fun w -> check_live w Wire.Q) targets;
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls
    | Gate.Phase { controls; _ } ->
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls
    | Gate.Init { ty; wire; _ } ->
        if Hashtbl.mem live wire then
          Errors.invalidf "init of already-live wire %d" wire;
        Hashtbl.add live wire ty
    | Gate.Term { ty; wire; _ } | Gate.Discard { ty; wire } ->
        check_live wire ty;
        Hashtbl.remove live wire
    | Gate.Measure { wire } ->
        check_live wire Wire.Q;
        Hashtbl.replace live wire Wire.C
    | Gate.Cgate { out; ins; _ } ->
        List.iter (fun w -> check_live w Wire.C) ins;
        if Hashtbl.mem live out then
          Errors.invalidf "cgate output wire %d already live" out;
        Hashtbl.add live out Wire.C
    | Gate.Subroutine { name; inv; inputs; outputs; controls } -> (
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls;
        match Namespace.find_opt name subs with
        | None ->
            (* unknown subroutine: treat as opaque, inputs stay live *)
            List.iter (fun w -> check_live w Wire.Q) inputs;
            List.iter
              (fun w -> if not (Hashtbl.mem live w) then Hashtbl.add live w Wire.Q)
              outputs
        | Some { circ; controllable } ->
            if controls <> [] && not controllable then
              Errors.raise_ (Not_controllable ("subroutine " ^ name));
            let d_in = if inv then circ.outputs else circ.inputs in
            let d_out = if inv then circ.inputs else circ.outputs in
            if List.length inputs <> List.length d_in then
              Errors.raise_
                (Shape_mismatch (Fmt.str "call to %s: input arity" name));
            if List.length outputs <> List.length d_out then
              Errors.raise_
                (Shape_mismatch (Fmt.str "call to %s: output arity" name));
            List.iter2
              (fun w (e : Wire.endpoint) -> check_live w e.ty)
              inputs d_in;
            (* inputs not among outputs die; outputs not among inputs appear *)
            List.iter (fun w -> Hashtbl.remove live w) inputs;
            List.iter2
              (fun w (e : Wire.endpoint) ->
                if Hashtbl.mem live w then Errors.raise_ (No_cloning w);
                Hashtbl.add live w e.ty)
              outputs d_out)
    | Gate.Comment _ -> ()
  in
  Array.iter apply_gate c.gates;
  List.iter (fun (e : Wire.endpoint) -> check_live e.wire e.ty) c.outputs;
  if Hashtbl.length live <> List.length c.outputs then
    Errors.invalidf "circuit leaves %d wires live but declares %d outputs"
      (Hashtbl.length live) (List.length c.outputs)

let validate_b (b : b) =
  validate ~subs:b.subs b.main;
  Namespace.iter (fun _ s -> validate ~subs:b.subs s.circ) b.subs

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)

(** Expand every [Subroutine] gate of [b]'s main circuit recursively,
    producing a flat circuit together with, for each emitted gate, the
    stack of subroutine names it was inlined out of (outermost first; []
    for gates of the main circuit). Fresh ids for the callee's internal
    wires are drawn from [fresh]. Only feasible for small circuits, but
    invaluable for testing that hierarchical operations (counting,
    reversal, simulation) agree with their flat counterparts, and for
    fault-site enumeration, which must report where in the hierarchy a
    fault lands. *)
let inline_provenance (b : b) : t * string list array =
  let fresh =
    ref
      (List.fold_left
         (fun acc (e : Wire.endpoint) -> max acc (e.wire + 1))
         0 b.main.inputs)
  in
  let bump w = if w >= !fresh then fresh := w + 1 in
  let out = Vec.create () in
  let prov = Vec.create () in
  let rec emit_circuit (c : t) (rename : Wire.t -> Wire.t) (path : string list) =
    Array.iter
      (fun g ->
        let g = Gate.rename rename g in
        match g with
        | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
            let { circ; _ } = find_sub b name in
            let body_gates =
              if inv then
                (* reverse of the body: gates reversed and inverted *)
                Array.of_list
                  (Array.fold_left
                     (fun acc g ->
                       if Gate.is_comment g then acc else Gate.inverse g :: acc)
                     [] circ.gates)
              else circ.gates
            in
            let d_in = if inv then circ.outputs else circ.inputs in
            let d_out = if inv then circ.inputs else circ.outputs in
            let map = Hashtbl.create 16 in
            List.iter2
              (fun (e : Wire.endpoint) actual -> Hashtbl.replace map e.wire actual)
              d_in inputs;
            List.iter2
              (fun (e : Wire.endpoint) actual -> Hashtbl.replace map e.wire actual)
              d_out outputs;
            let rename' w =
              match Hashtbl.find_opt map w with
              | Some w' -> w'
              | None ->
                  let w' = !fresh in
                  incr fresh;
                  Hashtbl.add map w w';
                  w'
            in
            let sub : t =
              { inputs = d_in; gates = body_gates; outputs = d_out }
            in
            (* inline recursively, adding the call's controls to every
               controllable gate of the body *)
            let before = Vec.length out in
            emit_circuit sub rename' (path @ [ name ]);
            if controls <> [] then
              for i = before to Vec.length out - 1 do
                Vec.set out i (Gate.add_controls controls (Vec.get out i))
              done
        | g ->
            List.iter (fun (e : Wire.endpoint) -> bump e.wire) (Gate.wires g);
            Vec.push out g;
            Vec.push prov path)
      c.gates
  in
  List.iter (fun (e : Wire.endpoint) -> bump e.wire) b.main.inputs;
  List.iter (fun (e : Wire.endpoint) -> bump e.wire) b.main.outputs;
  (* pre-scan to make sure fresh ids do not collide with main's wires *)
  Array.iter
    (fun g -> List.iter (fun (e : Wire.endpoint) -> bump e.wire) (Gate.wires g))
    b.main.gates;
  emit_circuit b.main (fun w -> w) [];
  ( { inputs = b.main.inputs; gates = Vec.to_array out; outputs = b.main.outputs },
    Vec.to_array prov )

let inline (b : b) : t = fst (inline_provenance b)

(* ------------------------------------------------------------------ *)
(* Structural hashing                                                  *)

(* One canonical structural hash for the whole stack: the shot service's
   request cache, Fuse's per-box compiled-program cache, Sink.unbox's
   prepared-box cache and golden tests all key off this definition. It is
   order-sensitive, parameter-sensitive (rotation angles enter via their
   IEEE-754 bit patterns, so 0.1 +. 0.2 <> 0.3 hashes differently) and
   box-aware (a Subroutine gate folds in the callee's body hash, not just
   its name, so same-named boxes with different bodies cannot alias). *)

let mix (h : int64) (v : int64) : int64 =
  (* splitmix64-style finalizer over an order-sensitive combine *)
  let open Int64 in
  let z = add (logxor h (mul v 0xBF58476D1CE4E5B9L)) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0x94D049BB133111EBL in
  let z = mul (logxor z (shift_right_logical z 27)) 0xFF51AFD7ED558CCDL in
  logxor z (shift_right_logical z 31)

let mix_int h i = mix h (Int64.of_int i)
let mix_bool h b = mix h (if b then 1L else 0L)
let mix_float h f = mix h (Int64.bits_of_float f)

let mix_string h s =
  let h = mix_int h (String.length s) in
  String.fold_left (fun h c -> mix_int h (Char.code c)) h s

let mix_ty h (ty : Wire.ty) = mix_int h (match ty with Wire.Q -> 0 | Wire.C -> 1)

let mix_endpoint h (e : Wire.endpoint) = mix_ty (mix_int h e.wire) e.ty

let mix_control h (c : Gate.control) =
  mix_bool (mix_ty (mix_int h c.cwire) c.cty) c.positive

let mix_controls h cs = List.fold_left mix_control (mix_int h (List.length cs)) cs
let mix_wires h ws = List.fold_left mix_int (mix_int h (List.length ws)) ws

let hash_gate_gen ~(skel : bool) ~(resolve : string -> int64 option) h (g : Gate.t) =
  match g with
  | Gate.Gate { name; inv; targets; controls } ->
      mix_controls (mix_wires (mix_bool (mix_string (mix_int h 1) name) inv) targets) controls
  | Gate.Rot { name; angle; inv; targets; controls } ->
      (* in skeleton mode the angle is replaced by a fixed marker, so two
         instantiations of the same rotation template collide on purpose *)
      let ha = if skel then mix_int (mix_string (mix_int h 2) name) 0x5ca1ab1e
               else mix_float (mix_string (mix_int h 2) name) angle in
      mix_controls (mix_wires (mix_bool ha inv) targets) controls
  | Gate.Phase { angle; controls } ->
      let ha = if skel then mix_int (mix_int h 3) 0x5ca1ab1e
               else mix_float (mix_int h 3) angle in
      mix_controls ha controls
  | Gate.Init { ty; value; wire } -> mix_int (mix_bool (mix_ty (mix_int h 4) ty) value) wire
  | Gate.Term { ty; value; wire } -> mix_int (mix_bool (mix_ty (mix_int h 5) ty) value) wire
  | Gate.Discard { ty; wire } -> mix_int (mix_ty (mix_int h 6) ty) wire
  | Gate.Measure { wire } -> mix_int (mix_int h 7) wire
  | Gate.Cgate { name; out; ins } ->
      mix_wires (mix_int (mix_string (mix_int h 8) name) out) ins
  | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
      let h = mix_string (mix_int h 9) name in
      let h = match resolve name with Some bh -> mix h bh | None -> mix_int h (-1) in
      mix_controls (mix_wires (mix_wires (mix_bool h inv) inputs) outputs) controls
  | Gate.Comment _ ->
      (* comments are transparent everywhere else in the stack (counting,
         optimization, simulation), so they do not perturb the hash *)
      h

let hash_t_gen ~skel ?(resolve = fun _ -> None) (c : t) : int64 =
  let h = 0x51D07C1B9E6A2F35L in
  let h = List.fold_left mix_endpoint (mix_int h (List.length c.inputs)) c.inputs in
  let h = Array.fold_left (hash_gate_gen ~skel ~resolve) h c.gates in
  List.fold_left mix_endpoint (mix_int h (List.length c.outputs)) c.outputs

let hash_t ?resolve c = hash_t_gen ~skel:false ?resolve c
let hash_skeleton_t ?resolve c = hash_t_gen ~skel:true ?resolve c

let hash_gen ~skel (b : b) : int64 =
  let tbl : (string, int64) Hashtbl.t = Hashtbl.create 16 in
  let rec hash_sub name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
        (* placeholder guards against (ill-formed) recursive namespaces *)
        Hashtbl.add tbl name (mix_string 0L name);
        let h =
          match Namespace.find_opt name b.subs with
          | None -> mix_string 0xD6E8FEB86659FD93L name
          | Some s -> mix_bool (hash_t_gen ~skel ~resolve s.circ) s.controllable
        in
        Hashtbl.replace tbl name h;
        h
  and resolve name = Some (hash_sub name) in
  hash_t_gen ~skel ~resolve b.main

let hash (b : b) : int64 = hash_gen ~skel:false b
let hash_skeleton (b : b) : int64 = hash_gen ~skel:true b

(* ------------------------------------------------------------------ *)
(* Angle sites                                                         *)

(* A parameterized circuit family is a skeleton plus a vector of angles:
   one site per [Rot]/[Phase] gate, enumerated in deterministic order —
   main gates in array order, then each subroutine body in [sub_order].
   [angles] reads the vector off a representative; [subst_angles] builds
   the member at another parameter point. Two circuits with equal
   [hash_skeleton] have the same number of sites in the same positions. *)

let fold_angles_t f acc (c : t) =
  Array.fold_left
    (fun acc g ->
      match g with
      | Gate.Rot { angle; _ } | Gate.Phase { angle; _ } -> f acc angle
      | _ -> acc)
    acc c.gates

let angles_t (c : t) : float array =
  let buf = ref [] in
  let n = fold_angles_t (fun n a -> buf := a :: !buf; n + 1) 0 c in
  let arr = Array.make n 0.0 in
  List.iteri (fun i a -> arr.(n - 1 - i) <- a) !buf;
  arr

let fold_angles f acc (b : b) =
  let acc = fold_angles_t f acc b.main in
  List.fold_left
    (fun acc name ->
      match Namespace.find_opt name b.subs with
      | None -> acc
      | Some s -> fold_angles_t f acc s.circ)
    acc b.sub_order

let num_angles (b : b) : int = fold_angles (fun n _ -> n + 1) 0 b

let angles (b : b) : float array =
  let buf = ref [] in
  let n = fold_angles (fun n a -> buf := a :: !buf; n + 1) 0 b in
  let arr = Array.make n 0.0 in
  List.iteri (fun i a -> arr.(n - 1 - i) <- a) !buf;
  arr

let subst_angles_t_from (pos : int ref) (v : float array) (c : t) : t =
  let gates =
    Array.map
      (fun g ->
        match g with
        | Gate.Rot r ->
            let i = !pos in
            incr pos;
            if Int64.bits_of_float v.(i) = Int64.bits_of_float r.angle then g
            else Gate.Rot { r with angle = v.(i) }
        | Gate.Phase p ->
            let i = !pos in
            incr pos;
            if Int64.bits_of_float v.(i) = Int64.bits_of_float p.angle then g
            else Gate.Phase { p with angle = v.(i) }
        | _ -> g)
      c.gates
  in
  { c with gates }

let subst_angles (b : b) (v : float array) : b =
  let n = num_angles b in
  if Array.length v <> n then
    Errors.invalidf "subst_angles: expected %d angles, got %d" n
      (Array.length v);
  let pos = ref 0 in
  let main = subst_angles_t_from pos v b.main in
  let subs =
    List.fold_left
      (fun subs name ->
        match Namespace.find_opt name subs with
        | None -> subs
        | Some s ->
            let circ = subst_angles_t_from pos v s.circ in
            Namespace.add name { s with circ } subs)
      b.subs b.sub_order
  in
  { b with main; subs }
