(** Circuits and hierarchical (boxed) circuits.

    A [t] is a straight-line sequence of gates together with its input and
    output aritys (typed wire lists). A [b] ("boxed circuit", Quipper's
    [BCircuit]) pairs a main circuit with a namespace of named subroutine
    definitions; [Subroutine] gates in any circuit refer into the namespace.
    Keeping subroutines shared rather than inlined is what lets Quipper
    represent circuits with trillions of gates in memory (paper §4.4.4) —
    the whole-circuit operators and the resource counter all work
    hierarchically. *)

type t = {
  inputs : Wire.endpoint list;
  gates : Gate.t array;
  outputs : Wire.endpoint list;
}

(** A subroutine definition. [controllable] records whether calls to it may
    receive controls (true when the body is purely unitary). *)
type subroutine = { circ : t; controllable : bool }

module Namespace = Map.Make (String)

type b = {
  main : t;
  subs : subroutine Namespace.t;
  sub_order : string list;  (** definition order, for stable printing *)
}

let of_main main = { main; subs = Namespace.empty; sub_order = [] }

let find_sub b name =
  match Namespace.find_opt name b.subs with
  | Some s -> s
  | None -> Errors.raise_ (Unknown_subroutine name)

let gate_count_shallow (c : t) =
  Array.fold_left
    (fun acc g -> if Gate.is_comment g then acc else acc + 1)
    0 c.gates

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)

(** Check that a circuit is physically well-formed: every gate addresses
    live wires of the right type, no wire is used twice by one gate, inits
    allocate fresh wires, terminations kill them, and the final live set
    matches the declared outputs. Raises [Errors.Error] otherwise. Used by
    tests and after transformation passes. *)
let validate ?(subs : subroutine Namespace.t = Namespace.empty) (c : t) =
  let live : (Wire.t, Wire.ty) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Wire.endpoint) ->
      if Hashtbl.mem live e.wire then
        Errors.invalidf "duplicate input wire %d" e.wire;
      Hashtbl.add live e.wire e.ty)
    c.inputs;
  let check_live w ty =
    match Hashtbl.find_opt live w with
    | None -> Errors.raise_ (Dead_wire w)
    | Some ty' ->
        if ty <> ty' then
          Errors.raise_ (Wire_type { wire = w; expected = ty; got = ty' })
  in
  let check_distinct endpoints =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (e : Wire.endpoint) ->
        if Hashtbl.mem seen e.wire then Errors.raise_ (No_cloning e.wire);
        Hashtbl.add seen e.wire ())
      endpoints
  in
  let apply_gate (g : Gate.t) =
    (match g with Gate.Comment _ -> () | _ -> check_distinct (Gate.wires g));
    match g with
    | Gate.Gate { name; targets; controls; _ } ->
        (match Gate.primitive_arity name with
        | Some n when n <> List.length targets ->
            Errors.invalidf "gate %s expects %d targets" name n
        | _ -> ());
        List.iter (fun w -> check_live w Wire.Q) targets;
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls
    | Gate.Rot { targets; controls; _ } ->
        List.iter (fun w -> check_live w Wire.Q) targets;
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls
    | Gate.Phase { controls; _ } ->
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls
    | Gate.Init { ty; wire; _ } ->
        if Hashtbl.mem live wire then
          Errors.invalidf "init of already-live wire %d" wire;
        Hashtbl.add live wire ty
    | Gate.Term { ty; wire; _ } | Gate.Discard { ty; wire } ->
        check_live wire ty;
        Hashtbl.remove live wire
    | Gate.Measure { wire } ->
        check_live wire Wire.Q;
        Hashtbl.replace live wire Wire.C
    | Gate.Cgate { out; ins; _ } ->
        List.iter (fun w -> check_live w Wire.C) ins;
        if Hashtbl.mem live out then
          Errors.invalidf "cgate output wire %d already live" out;
        Hashtbl.add live out Wire.C
    | Gate.Subroutine { name; inv; inputs; outputs; controls } -> (
        List.iter (fun (c : Gate.control) -> check_live c.cwire c.cty) controls;
        match Namespace.find_opt name subs with
        | None ->
            (* unknown subroutine: treat as opaque, inputs stay live *)
            List.iter (fun w -> check_live w Wire.Q) inputs;
            List.iter
              (fun w -> if not (Hashtbl.mem live w) then Hashtbl.add live w Wire.Q)
              outputs
        | Some { circ; controllable } ->
            if controls <> [] && not controllable then
              Errors.raise_ (Not_controllable ("subroutine " ^ name));
            let d_in = if inv then circ.outputs else circ.inputs in
            let d_out = if inv then circ.inputs else circ.outputs in
            if List.length inputs <> List.length d_in then
              Errors.raise_
                (Shape_mismatch (Fmt.str "call to %s: input arity" name));
            if List.length outputs <> List.length d_out then
              Errors.raise_
                (Shape_mismatch (Fmt.str "call to %s: output arity" name));
            List.iter2
              (fun w (e : Wire.endpoint) -> check_live w e.ty)
              inputs d_in;
            (* inputs not among outputs die; outputs not among inputs appear *)
            List.iter (fun w -> Hashtbl.remove live w) inputs;
            List.iter2
              (fun w (e : Wire.endpoint) ->
                if Hashtbl.mem live w then Errors.raise_ (No_cloning w);
                Hashtbl.add live w e.ty)
              outputs d_out)
    | Gate.Comment _ -> ()
  in
  Array.iter apply_gate c.gates;
  List.iter (fun (e : Wire.endpoint) -> check_live e.wire e.ty) c.outputs;
  if Hashtbl.length live <> List.length c.outputs then
    Errors.invalidf "circuit leaves %d wires live but declares %d outputs"
      (Hashtbl.length live) (List.length c.outputs)

let validate_b (b : b) =
  validate ~subs:b.subs b.main;
  Namespace.iter (fun _ s -> validate ~subs:b.subs s.circ) b.subs

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)

(** Expand every [Subroutine] gate of [b]'s main circuit recursively,
    producing a flat circuit together with, for each emitted gate, the
    stack of subroutine names it was inlined out of (outermost first; []
    for gates of the main circuit). Fresh ids for the callee's internal
    wires are drawn from [fresh]. Only feasible for small circuits, but
    invaluable for testing that hierarchical operations (counting,
    reversal, simulation) agree with their flat counterparts, and for
    fault-site enumeration, which must report where in the hierarchy a
    fault lands. *)
let inline_provenance (b : b) : t * string list array =
  let fresh =
    ref
      (List.fold_left
         (fun acc (e : Wire.endpoint) -> max acc (e.wire + 1))
         0 b.main.inputs)
  in
  let bump w = if w >= !fresh then fresh := w + 1 in
  let out = Vec.create () in
  let prov = Vec.create () in
  let rec emit_circuit (c : t) (rename : Wire.t -> Wire.t) (path : string list) =
    Array.iter
      (fun g ->
        let g = Gate.rename rename g in
        match g with
        | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
            let { circ; _ } = find_sub b name in
            let body_gates =
              if inv then
                (* reverse of the body: gates reversed and inverted *)
                Array.of_list
                  (Array.fold_left
                     (fun acc g ->
                       if Gate.is_comment g then acc else Gate.inverse g :: acc)
                     [] circ.gates)
              else circ.gates
            in
            let d_in = if inv then circ.outputs else circ.inputs in
            let d_out = if inv then circ.inputs else circ.outputs in
            let map = Hashtbl.create 16 in
            List.iter2
              (fun (e : Wire.endpoint) actual -> Hashtbl.replace map e.wire actual)
              d_in inputs;
            List.iter2
              (fun (e : Wire.endpoint) actual -> Hashtbl.replace map e.wire actual)
              d_out outputs;
            let rename' w =
              match Hashtbl.find_opt map w with
              | Some w' -> w'
              | None ->
                  let w' = !fresh in
                  incr fresh;
                  Hashtbl.add map w w';
                  w'
            in
            let sub : t =
              { inputs = d_in; gates = body_gates; outputs = d_out }
            in
            (* inline recursively, adding the call's controls to every
               controllable gate of the body *)
            let before = Vec.length out in
            emit_circuit sub rename' (path @ [ name ]);
            if controls <> [] then
              for i = before to Vec.length out - 1 do
                Vec.set out i (Gate.add_controls controls (Vec.get out i))
              done
        | g ->
            List.iter (fun (e : Wire.endpoint) -> bump e.wire) (Gate.wires g);
            Vec.push out g;
            Vec.push prov path)
      c.gates
  in
  List.iter (fun (e : Wire.endpoint) -> bump e.wire) b.main.inputs;
  List.iter (fun (e : Wire.endpoint) -> bump e.wire) b.main.outputs;
  (* pre-scan to make sure fresh ids do not collide with main's wires *)
  Array.iter
    (fun g -> List.iter (fun (e : Wire.endpoint) -> bump e.wire) (Gate.wires g))
    b.main.gates;
  emit_circuit b.main (fun w -> w) [];
  ( { inputs = b.main.inputs; gates = Vec.to_array out; outputs = b.main.outputs },
    Vec.to_array prov )

let inline (b : b) : t = fst (inline_provenance b)
