(** Circuits and hierarchical (boxed) circuits.

    A {!t} is a straight-line gate sequence with typed input and output
    aritys. A {!b} ("boxed circuit", Quipper's [BCircuit]) pairs a main
    circuit with a namespace of named subroutine definitions; [Subroutine]
    gates refer into the namespace. Keeping subroutines shared rather than
    inlined is what lets circuits with trillions of gates be represented,
    transformed and counted (paper §4.4.4, §5.4). *)

type t = {
  inputs : Wire.endpoint list;
  gates : Gate.t array;
  outputs : Wire.endpoint list;
}

type subroutine = { circ : t; controllable : bool }
(** [controllable] records whether calls may receive controls (true when
    the body is purely unitary). *)

module Namespace : Map.S with type key = string

type b = {
  main : t;
  subs : subroutine Namespace.t;
  sub_order : string list;  (** definition order, for stable printing *)
}

val of_main : t -> b

val find_sub : b -> string -> subroutine
(** Raises {!Errors.Error} [(Unknown_subroutine _)]. *)

val gate_count_shallow : t -> int
(** Number of non-comment gates, subroutine calls counted once. *)

val validate : ?subs:subroutine Namespace.t -> t -> unit
(** Check physical well-formedness: every gate addresses live wires of the
    right type, no wire occurs twice in one gate, inits allocate fresh
    wires, terminations kill them, and the final live set matches the
    declared outputs. Raises {!Errors.Error} otherwise. *)

val validate_b : b -> unit
(** [validate] on the main circuit and every subroutine body. *)

val inline : b -> t
(** Expand every subroutine call recursively into a flat circuit, renaming
    internal wires apart. Only feasible for small circuits; invaluable for
    testing that hierarchical operations agree with flat ones. *)

val inline_provenance : b -> t * string list array
(** Like {!inline}, also returning, for each emitted gate, the stack of
    subroutine names it was inlined out of (outermost first; [[]] for
    gates of the main circuit). Fault-site enumeration uses this to
    report where in the hierarchy each site lives. *)
