(** Circuits and hierarchical (boxed) circuits.

    A {!t} is a straight-line gate sequence with typed input and output
    aritys. A {!b} ("boxed circuit", Quipper's [BCircuit]) pairs a main
    circuit with a namespace of named subroutine definitions; [Subroutine]
    gates refer into the namespace. Keeping subroutines shared rather than
    inlined is what lets circuits with trillions of gates be represented,
    transformed and counted (paper §4.4.4, §5.4). *)

type t = {
  inputs : Wire.endpoint list;
  gates : Gate.t array;
  outputs : Wire.endpoint list;
}

type subroutine = { circ : t; controllable : bool }
(** [controllable] records whether calls may receive controls (true when
    the body is purely unitary). *)

module Namespace : Map.S with type key = string

type b = {
  main : t;
  subs : subroutine Namespace.t;
  sub_order : string list;  (** definition order, for stable printing *)
}

val of_main : t -> b

val find_sub : b -> string -> subroutine
(** Raises {!Errors.Error} [(Unknown_subroutine _)]. *)

val gate_count_shallow : t -> int
(** Number of non-comment gates, subroutine calls counted once. *)

val validate : ?subs:subroutine Namespace.t -> t -> unit
(** Check physical well-formedness: every gate addresses live wires of the
    right type, no wire occurs twice in one gate, inits allocate fresh
    wires, terminations kill them, and the final live set matches the
    declared outputs. Raises {!Errors.Error} otherwise. *)

val validate_b : b -> unit
(** [validate] on the main circuit and every subroutine body. *)

val inline : b -> t
(** Expand every subroutine call recursively into a flat circuit, renaming
    internal wires apart. Only feasible for small circuits; invaluable for
    testing that hierarchical operations agree with flat ones. *)

val inline_provenance : b -> t * string list array
(** Like {!inline}, also returning, for each emitted gate, the stack of
    subroutine names it was inlined out of (outermost first; [[]] for
    gates of the main circuit). Fault-site enumeration uses this to
    report where in the hierarchy each site lives. *)

(** {2 Structural hashing}

    One canonical 64-bit structural hash for the whole stack: the shot
    service's request cache, [Fuse]'s per-box compiled-program cache,
    [Sink.unbox]'s prepared-box cache and golden tests all key off this
    definition. The hash is order-sensitive and parameter-sensitive
    (rotation angles enter via their IEEE-754 bit patterns), and ignores
    comments — which are transparent to counting, optimization and
    simulation alike. *)

val hash_t : ?resolve:(string -> int64 option) -> t -> int64
(** Hash of one straight-line circuit. [resolve] supplies the body hash
    folded into each [Subroutine] call gate (in addition to the callee's
    name); when it returns [None] — the default — only the name is
    hashed, so two same-named calls agree regardless of what the name
    binds to. *)

val hash : b -> int64
(** Box-aware hash of a whole boxed circuit: every [Subroutine] call
    folds in the (recursively resolved, memoized) structural hash of the
    callee's body and its controllability flag, so same-named boxes with
    different bodies hash differently. Unresolvable names hash by name
    alone, like {!validate} treats them as opaque. *)

(** {2 Skeleton hashing and angle sites}

    A parameterized circuit family — the same template instantiated at
    many rotation angles (paper §4; the sweep workloads) — shares a
    {e skeleton}: the structural hash computed with every [Rot]/[Phase]
    angle replaced by a fixed marker. Everything else (gate names,
    inverse flags, targets, controls, wire plumbing, box bodies, input/
    output aritys) still enters, so the skeleton hash is exactly as
    discriminating as {!hash} modulo the rotation parameters.

    The parameters themselves form a deterministic {e angle-site}
    vector: one site per [Rot]/[Phase] gate, main gates in array order
    first, then each subroutine body in [sub_order]. Two circuits with
    equal [hash_skeleton] have equally many sites at the same structural
    positions. *)

val hash_skeleton_t : ?resolve:(string -> int64 option) -> t -> int64
(** Like {!hash_t}, but angle-blind (rotation angles replaced by a
    marker). *)

val hash_skeleton : b -> int64
(** Like {!hash}, but angle-blind through subroutine bodies too:
    invariant under any perturbation of [Rot]/[Phase] angles anywhere in
    the boxed circuit, sensitive to everything else. *)

val num_angles : b -> int
(** Number of angle sites ([Rot]/[Phase] gates) in main plus all
    subroutine bodies. *)

val angles_t : t -> float array
(** Angle-site vector of one straight-line circuit, in gate order. *)

val angles : b -> float array
(** Angle-site vector of a boxed circuit: main gates in order, then each
    subroutine body in [sub_order]. [Array.length (angles b) =
    num_angles b]. *)

val subst_angles : b -> float array -> b
(** [subst_angles b v] rebuilds [b] with the angle at each site replaced
    by the corresponding entry of [v] (site order as in {!angles});
    gates whose angle is bitwise-unchanged are physically shared.
    Raises if [Array.length v <> num_angles b]. The result satisfies
    [hash_skeleton (subst_angles b v) = hash_skeleton b]. *)
