(** Gate-base decomposition: the paper's [decompose_generic] (§4.4.3).

    Two target bases are provided, mirroring Quipper:

    - [Toffoli]: multiply-controlled gates are reduced, using ancillas, to
      gates with at most two controls on [not] and at most one control on
      anything else (signed controls permitted).
    - [Binary]: additionally, Toffoli gates are expanded into two-qubit
      gates via the Barenco et al. controlled-V/V† construction — the
      circuit shown for [timestep2] in the paper — and the two-qubit [W]
      and [swap] gates are expressed with CNOTs.

    Decomposition works hierarchically: applied to a boxed circuit it
    rewrites every subroutine body in place, so the call structure (and
    with it the feasibility of resource counting) is preserved. Classical
    controls are never decomposed — they are free classical branching at
    circuit-execution time. *)

type base = Toffoli | Binary

let base_name = function Toffoli -> "Toffoli" | Binary -> "Binary"

let split_classical controls =
  List.partition (fun (c : Gate.control) -> c.cty = Wire.Q) controls

(* Helpers to build gates tersely *)

let g_not ?(controls = []) t =
  Gate.Gate { name = "not"; inv = false; targets = [ t ]; controls }

let g_x t = g_not t

let pos w = { Gate.cwire = w; cty = Wire.Q; positive = true }

(** Conjugate negative quantum controls with X so the payload sees only
    positive ones: returns (prelude, positive controls, postlude). *)
let positivize controls =
  let flips =
    List.filter_map
      (fun (c : Gate.control) ->
        if c.cty = Wire.Q && not c.positive then Some (g_x c.cwire) else None)
      controls
  in
  let ctrls =
    List.map
      (fun (c : Gate.control) ->
        if c.cty = Wire.Q then { c with positive = true } else c)
      controls
  in
  (flips, ctrls, flips)

(** Reduce a signed quantum control list to at most [limit] controls by
    AND-ing controls pairwise into ancillas with Toffoli gates. Returns
    (prelude gates, remaining controls, postlude gates). The chain Toffolis
    are emitted as [not]-with-2-controls; in [Binary] base the caller's
    recursion decomposes them further. *)
let reduce_controls ~(alloc : Transform.alloc) ~limit controls =
  let rec go controls pre post =
    if List.length controls <= limit then (List.rev pre, controls, post)
    else
      match controls with
      | c1 :: c2 :: rest ->
          let a = alloc Wire.Q in
          let init = Gate.Init { ty = Wire.Q; value = false; wire = a } in
          let compute = g_not ~controls:[ c1; c2 ] a in
          let term = Gate.Term { ty = Wire.Q; value = false; wire = a } in
          go (pos a :: rest) (compute :: init :: pre) ([ compute; term ] @ post)
      | _ -> (List.rev pre, controls, post)
  in
  go controls [] []

(** Barenco et al. decomposition of a positively-controlled Toffoli
    CCX(c1, c2; t) into five two-qubit gates (the paper's timestep2
    picture, with V = sqrt(not)). *)
let toffoli_to_binary c1 c2 t =
  [
    Gate.Gate { name = "V"; inv = false; targets = [ t ]; controls = [ pos c2 ] };
    g_not ~controls:[ pos c1 ] c2;
    Gate.Gate { name = "V"; inv = true; targets = [ t ]; controls = [ pos c2 ] };
    g_not ~controls:[ pos c1 ] c2;
    Gate.Gate { name = "V"; inv = false; targets = [ t ]; controls = [ pos c1 ] };
  ]

(** W = CNOT(a,b); CH(b; a); CNOT(a,b): H on the odd-parity subspace. *)
let w_to_binary ~inv a b =
  ignore inv;
  (* W is self-inverse, so [inv] is irrelevant *)
  [
    g_not ~controls:[ pos a ] b;
    Gate.Gate { name = "H"; inv = false; targets = [ a ]; controls = [ pos b ] };
    g_not ~controls:[ pos a ] b;
  ]

(** Fredkin(c; a, b) = CNOT(b,a); CCX(c,a;b); CNOT(b,a). *)
let cswap_to_toffoli c a b =
  [
    g_not ~controls:[ pos b ] a;
    g_not ~controls:[ pos c; pos a ] b;
    g_not ~controls:[ pos b ] a;
  ]

let rec decompose_gate (base : base) ~(alloc : Transform.alloc) (g : Gate.t) :
    Gate.t list option =
  let recurse gs = List.concat_map (decompose1 base ~alloc) gs in
  match g with
  | Gate.Gate { name = "not"; targets = [ t ]; controls; _ } -> (
      let qctl, cctl = split_classical controls in
      let k = List.length qctl in
      match base with
      | Toffoli ->
          if k <= 2 then None
          else
            let pre, rem, post = reduce_controls ~alloc ~limit:2 qctl in
            Some (recurse pre @ [ g_not ~controls:(rem @ cctl) t ] @ recurse post)
      | Binary ->
          if k <= 1 then None
          else if k = 2 then begin
            let flips, pctl, unflips = positivize qctl in
            match pctl with
            | [ c1; c2 ] ->
                let core = toffoli_to_binary c1.Gate.cwire c2.Gate.cwire t in
                let core =
                  if cctl = [] then core
                  else List.map (Gate.add_controls cctl) core
                in
                Some (flips @ core @ unflips)
            | _ -> assert false
          end
          else
            let pre, rem, post = reduce_controls ~alloc ~limit:2 qctl in
            Some
              (recurse pre
              @ recurse [ g_not ~controls:(rem @ cctl) t ]
              @ recurse post))
  | Gate.Gate { name = "swap"; inv = _; targets = [ a; b ]; controls } -> (
      let qctl, cctl = split_classical controls in
      match (base, qctl) with
      | Toffoli, [] -> None
      | Binary, [] ->
          Some
            [ g_not ~controls:[ pos a ] b; g_not ~controls:[ pos b ] a;
              g_not ~controls:[ pos a ] b ]
      | _, _ ->
          let pre, rem, post = reduce_controls ~alloc ~limit:1 qctl in
          let flips, prem, unflips = positivize rem in
          let core =
            match prem with
            | [ c ] -> cswap_to_toffoli c.Gate.cwire a b
            | [] -> [ Gate.Gate { name = "swap"; inv = false; targets = [ a; b ]; controls = [] } ]
            | _ -> assert false
          in
          let core = if cctl = [] then core else List.map (Gate.add_controls cctl) core in
          let core = if base = Binary then recurse core else core in
          Some (recurse pre @ flips @ core @ unflips @ recurse post))
  | Gate.Gate { name = "W"; inv; targets = [ a; b ]; controls } -> (
      let qctl, cctl = split_classical controls in
      match (base, qctl) with
      | Toffoli, [] -> None
      | Toffoli, _ ->
          let pre, rem, post = reduce_controls ~alloc ~limit:1 qctl in
          Some
            (recurse pre
            @ [ Gate.Gate { name = "W"; inv; targets = [ a; b ]; controls = rem @ cctl } ]
            @ recurse post)
      | Binary, [] -> Some (w_to_binary ~inv a b)
      | Binary, _ ->
          (* C-W: the conjugating CNOTs cancel when the control is off, so
             only the middle controlled-H needs the control *)
          let pre, rem, post = reduce_controls ~alloc ~limit:1 qctl in
          let core =
            [
              g_not ~controls:[ pos a ] b;
              Gate.Gate { name = "H"; inv = false; targets = [ a ]; controls = pos b :: rem @ cctl };
              g_not ~controls:[ pos a ] b;
            ]
          in
          Some (recurse pre @ recurse core @ recurse post))
  | Gate.Gate { name; inv; targets; controls } -> (
      (* generic named gate: reduce to at most one (positive) control *)
      let qctl, cctl = split_classical controls in
      let k = List.length qctl in
      let neg = List.exists (fun (c : Gate.control) -> not c.positive) qctl in
      if k <= 1 && (base = Toffoli || not neg) then None
      else
        let limit = 1 in
        let pre, rem, post = reduce_controls ~alloc ~limit qctl in
        let flips, prem, unflips = positivize rem in
        Some
          (recurse pre @ flips
          @ [ Gate.Gate { name; inv; targets; controls = prem @ cctl } ]
          @ unflips @ recurse post))
  | Gate.Rot { name; angle; inv; targets; controls } ->
      let qctl, cctl = split_classical controls in
      let k = List.length qctl in
      let neg = List.exists (fun (c : Gate.control) -> not c.positive) qctl in
      if k <= 1 && not neg then None
      else
        let pre, rem, post = reduce_controls ~alloc ~limit:1 qctl in
        let flips, prem, unflips = positivize rem in
        Some
          (recurse pre @ flips
          @ [ Gate.Rot { name; angle; inv; targets; controls = prem @ cctl } ]
          @ unflips @ recurse post)
  | Gate.Phase { angle; controls } -> (
      let qctl, cctl = split_classical controls in
      match qctl with
      | [] -> None
      | c :: rest ->
          (* a controlled global phase is a relative phase gate on the
             controlling wire *)
          let flips, pc, unflips = positivize [ c ] in
          let core =
            Gate.Rot
              { name = "Ph"; angle; inv = false; targets = [ c.Gate.cwire ];
                controls = rest @ cctl }
          in
          ignore pc;
          Some (flips @ decompose1 base ~alloc core @ unflips))
  | _ -> None

and decompose1 base ~alloc g =
  match decompose_gate base ~alloc g with None -> [ g ] | Some gs -> gs

(** The transformer rule for [Transform.apply]. *)
let rule (base : base) : Transform.rule =
 fun alloc g -> decompose_gate base ~alloc g

(** One gate's full expansion into the base — [decompose1] with the
    identity default made explicit. This is the per-gate transfer
    function symbolic resource estimation multiplies through: the
    result depends only on the gate's shape (name, inversion, control
    signs and types), never on which wires it sits on, so one expansion
    per gate kind is exact for counts however many times the kind
    occurs. *)
let expand (base : base) ~(alloc : Transform.alloc) (g : Gate.t) :
    Gate.t list =
  decompose1 base ~alloc g

(** [decompose_generic base b]: rewrite a boxed circuit into the given gate
    base, hierarchically. *)
let decompose_generic (base : base) (b : Circuit.b) : Circuit.b =
  Transform.apply (rule base) b
