(** Gate-base decomposition: the paper's [decompose_generic] (§4.4.3).

    Decomposition works hierarchically (every subroutine body is rewritten
    in place, preserving the call structure) and is semantics-preserving —
    verified against the statevector simulator by the test suite.
    Classical controls are never decomposed: they are free classical
    branching at circuit-execution time. *)

(** The target bases, mirroring Quipper:
    - [Toffoli]: multiply-controlled gates are reduced, using ancillas, to
      at most two (signed) controls on [not] and at most one control on
      anything else.
    - [Binary]: additionally, Toffoli gates expand into two-qubit gates by
      the Barenco et al. controlled-V/V* construction (the paper's
      [timestep2] figure), and [W]/[swap] are expressed with CNOTs. *)
type base = Toffoli | Binary

val base_name : base -> string

val rule : base -> Transform.rule
(** The transformer rule, for composition with other passes. *)

val expand : base -> alloc:Transform.alloc -> Gate.t -> Gate.t list
(** One gate's full recursive expansion into the base ([[g]] when the
    gate is already in-base). The expansion's shape depends only on the
    gate's name, inversion and control signature — never on wire
    identities — which is what lets symbolic resource estimation apply
    it once per gate kind as an exact counts transfer function. *)

val decompose_generic : base -> Circuit.b -> Circuit.b
