(** Circuit depth estimation.

    A companion to {!Gatecount} for the other axis of resource estimation:
    the *depth* (parallel time) of a circuit, assuming any set of gates on
    disjoint wires can fire simultaneously. Like the gate counter it works
    hierarchically: a call to a boxed subcircuit advances every touched
    wire by the callee's (memoized) depth. For calls this is an upper
    bound — it serialises the callee against all of its wires as a block —
    which is the standard conservative convention for hierarchical
    resource estimates; [depth (Circuit.inline b)] gives the exact figure
    when inlining is feasible, and the test suite checks the bound.

    Initialisations, terminations and measurements each count as one time
    step on their wire; comments are free. *)

type profile = {
  depth : int;  (** longest wire timeline *)
  t_gates : int;  (** sequential T-count, a common cost proxy *)
}

(** Advance the per-wire clock [time] by one gate and return the new
    finish time of that gate (0 for comments) — the step function shared
    by the whole-circuit walk and the streaming tracker. *)
let advance_gate ~(sub_depth : string -> int) (time : (Wire.t, int) Hashtbl.t)
    (g : Gate.t) : int =
  let get w = match Hashtbl.find_opt time w with Some t -> t | None -> 0 in
  let advance wires dt =
    let t = List.fold_left (fun acc w -> max acc (get w)) 0 wires + dt in
    List.iter (fun w -> Hashtbl.replace time w t) wires;
    t
  in
  match g with
  | Gate.Comment _ -> 0
  | Gate.Subroutine { name; inputs; outputs; controls; _ } ->
      let wires =
        inputs @ outputs
        @ List.map (fun (k : Gate.control) -> k.Gate.cwire) controls
      in
      advance (List.sort_uniq compare wires) (sub_depth name)
  | g ->
      let wires = List.map (fun (e : Wire.endpoint) -> e.Wire.wire) (Gate.wires g) in
      advance wires 1

let depth_of_circuit ~(sub_depth : string -> int) (c : Circuit.t) : int =
  let time : (Wire.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (e : Wire.endpoint) -> Hashtbl.replace time e.Wire.wire 0) c.Circuit.inputs;
  Array.fold_left (fun acc g -> max acc (advance_gate ~sub_depth time g)) 0 c.Circuit.gates

(** Hierarchical depth of a boxed circuit. *)
let depth (b : Circuit.b) : int =
  let memo : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec sub_depth name =
    match Hashtbl.find_opt memo name with
    | Some d -> d
    | None ->
        let sub = Circuit.find_sub b name in
        let d = depth_of_circuit ~sub_depth sub.Circuit.circ in
        Hashtbl.replace memo name d;
        d
  in
  depth_of_circuit ~sub_depth b.Circuit.main

(* ------------------------------------------------------------------ *)
(* Streaming depth                                                     *)

(** Incremental depth over a gate stream ({!Circ.run_streaming}): the
    same per-wire clock as [depth_of_circuit], advanced gate by gate,
    with subroutine depths memoized lazily from definitions recorded as
    boxes close. Memory is O(live wires + namespace), not O(gates). *)
type tracker = {
  time : (Wire.t, int) Hashtbl.t;
  mutable overall : int;
  defs : (string, Circuit.t) Hashtbl.t;
  memo : (string, int) Hashtbl.t;
}

let tracker () =
  {
    time = Hashtbl.create 64;
    overall = 0;
    defs = Hashtbl.create 16;
    memo = Hashtbl.create 16;
  }

let track_inputs tr (es : Wire.endpoint list) =
  List.iter (fun (e : Wire.endpoint) -> Hashtbl.replace tr.time e.Wire.wire 0) es

let track_define tr name (sub : Circuit.subroutine) =
  Hashtbl.replace tr.defs name sub.Circuit.circ

let rec tracked_sub_depth tr name =
  match Hashtbl.find_opt tr.memo name with
  | Some d -> d
  | None ->
      let c =
        match Hashtbl.find_opt tr.defs name with
        | Some c -> c
        | None -> Errors.raise_ (Unknown_subroutine name)
      in
      let d = depth_of_circuit ~sub_depth:(tracked_sub_depth tr) c in
      Hashtbl.replace tr.memo name d;
      d

let track_gate tr (g : Gate.t) =
  let t = advance_gate ~sub_depth:(tracked_sub_depth tr) tr.time g in
  if t > tr.overall then tr.overall <- t;
  (* a terminated wire's finish time is folded into [overall] above and
     its id is never touched again, so dropping the clock entry keeps
     the table at O(live wires) even when a generator allocates fresh
     ancilla ids per iteration (the template oracle does) *)
  match g with
  | Gate.Term { wire; _ } | Gate.Discard { wire; _ } ->
      Hashtbl.remove tr.time wire
  | _ -> ()

let tracked_depth tr = tr.overall

(** Sequential T-gate count along the critical path is approximated by the
    total T count; the exact T-depth needs scheduling, so we expose the
    simple aggregate and document it as such. *)
let profile (b : Circuit.b) : profile =
  let counts = Gatecount.aggregate b in
  let t_gates =
    Gatecount.Counts.fold
      (fun k n acc -> if k.Gatecount.kind = "T" then acc + n else acc)
      counts 0
  in
  { depth = depth b; t_gates }
