(** Circuit depth estimation — the parallel-time axis of resource
    estimation, computed hierarchically like {!Gatecount}.

    A call to a boxed subcircuit advances every touched wire by the
    callee's memoized depth, which serialises the callee as a block: an
    upper bound (exact on flat circuits; [depth (Circuit.inline b)] when
    inlining is feasible gives the tight figure, and the test suite checks
    the bound). Initialisations, terminations and measurements count one
    time step on their wire; comments are free. *)

type profile = {
  depth : int;  (** longest wire timeline *)
  t_gates : int;  (** aggregate T count, a common cost proxy *)
}

val depth_of_circuit : sub_depth:(string -> int) -> Circuit.t -> int
val depth : Circuit.b -> int
val profile : Circuit.b -> profile

(** {1 Streaming depth}

    The same per-wire clock, advanced gate by gate as a stream arrives
    ({!Circ.run_streaming}); yields exactly [depth] of the materialized
    circuit. Memory is O(live wires + namespace), not O(gates). *)

type tracker

val tracker : unit -> tracker
val track_inputs : tracker -> Wire.endpoint list -> unit

val track_define : tracker -> string -> Circuit.subroutine -> unit
(** Record a definition; must precede call gates naming it. *)

val track_gate : tracker -> Gate.t -> unit
val tracked_depth : tracker -> int
