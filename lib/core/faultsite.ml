(** Fault-site enumeration over hierarchical circuits.

    A {e fault site} is a point in a circuit's execution where a single
    Pauli error could strike: a specific live qubit wire, immediately
    after a specific gate (or on an input, before any gate). The
    fault-injection engine ({!Quipper_sim.Inject}) enumerates every site
    of a circuit, injects an X/Y/Z at each, and classifies the damage —
    quantifying how much protection the assertive terminations of the
    extended circuit model (paper §4.2.2) actually buy.

    Enumeration recurses through boxed subroutines via
    {!Circuit.inline_provenance}, so every site carries the subroutine
    call path it lives in; a fault "inside o8, inside o4" is reported as
    such even though injection happens on the flattened execution. *)

type site = {
  index : int;
      (** Flat gate index (into [Circuit.inline]'s gate array) after
          which the fault strikes; [-1] means on an input wire, before
          the first gate. *)
  wire : Wire.t;  (** The live qubit wire the Pauli hits. *)
  path : string list;
      (** Subroutine call stack of the gate at [index], outermost first;
          [[]] for main-circuit gates and inputs. *)
  after : string;  (** Printable form of the gate at [index]. *)
}

let pp_site ppf s =
  let pp_path ppf = function
    | [] -> ()
    | p -> Fmt.pf ppf " [%s]" (String.concat "/" p)
  in
  if s.index < 0 then Fmt.pf ppf "input wire %d" s.wire
  else Fmt.pf ppf "wire %d after gate %d (%s)%a" s.wire s.index s.after pp_path s.path

(** The qubit wires a gate touches that are still live qubits once the
    gate has fired — the places a fault right after this gate can land.
    Termination, discard and measurement kill (or reclassify) their wire,
    so they expose no site; initialisation exposes the fresh wire. *)
let exposed_wires (g : Gate.t) : Wire.t list =
  let quantum_controls cs =
    List.filter_map
      (fun (c : Gate.control) ->
        match c.cty with Wire.Q -> Some c.cwire | Wire.C -> None)
      cs
  in
  match g with
  | Gate.Gate { targets; controls; _ } | Gate.Rot { targets; controls; _ } ->
      targets @ quantum_controls controls
  | Gate.Phase { controls; _ } -> quantum_controls controls
  | Gate.Init { ty = Wire.Q; wire; _ } -> [ wire ]
  | Gate.Init { ty = Wire.C; _ } -> []
  | Gate.Term _ | Gate.Discard _ | Gate.Measure _ -> []
  | Gate.Cgate _ | Gate.Subroutine _ | Gate.Comment _ -> []

(** Every fault site of an already-inlined circuit (with its provenance
    array), in execution order: one per qubit input, then one per
    (gate, touched-live-qubit-wire) pair. Campaigns that already hold the
    flat circuit use this to avoid re-inlining per enumeration. *)
let enumerate_flat ~(flat : Circuit.t) ~(prov : string list array) : site list =
  let sites = ref [] in
  List.iter
    (fun (e : Wire.endpoint) ->
      match e.ty with
      | Wire.Q ->
          sites := { index = -1; wire = e.wire; path = []; after = "input" } :: !sites
      | Wire.C -> ())
    flat.Circuit.inputs;
  Array.iteri
    (fun i g ->
      List.iter
        (fun w ->
          sites :=
            { index = i; wire = w; path = prov.(i); after = Gate.to_string g }
            :: !sites)
        (exposed_wires g))
    flat.Circuit.gates;
  List.rev !sites

let enumerate (b : Circuit.b) : site list =
  let flat, prov = Circuit.inline_provenance b in
  enumerate_flat ~flat ~prov

let count (b : Circuit.b) : int = List.length (enumerate b)
