(** Fault-site enumeration over hierarchical circuits.

    A fault site is a (gate position, live qubit wire) pair where a
    single Pauli error could strike. Enumeration recurses through boxed
    subroutines (via {!Circuit.inline_provenance}), tagging each site
    with its subroutine call path. The fault-injection engine
    ({!Quipper_sim.Inject}) classifies the damage an injected Pauli at
    each site does — measuring how much protection assertive termination
    (paper §4.2.2) buys. *)

type site = {
  index : int;
      (** Flat gate index after which the fault strikes; [-1] = on an
          input, before the first gate. *)
  wire : Wire.t;
  path : string list;  (** Subroutine call stack, outermost first. *)
  after : string;  (** Printable form of the gate at [index]. *)
}

val pp_site : Format.formatter -> site -> unit

val exposed_wires : Gate.t -> Wire.t list
(** The qubit wires a gate touches that remain live qubits after it
    fires — where a fault immediately after the gate can land. Also used
    by the noise channels to decide which wires each gate's noise hits. *)

val enumerate : Circuit.b -> site list
(** Every fault site, in execution order of the inlined circuit. *)

val enumerate_flat : flat:Circuit.t -> prov:string list array -> site list
(** {!enumerate} over an already-inlined circuit and its
    {!Circuit.inline_provenance} array — campaigns that hold the flat
    circuit anyway skip the second inlining pass. *)

val count : Circuit.b -> int
