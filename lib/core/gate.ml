(** Gates: the vertical elements of a circuit diagram.

    This is Quipper's *extended* circuit model (paper §4.2): besides unitary
    gates with positive and negative controls it contains explicit qubit
    initialisation ("0|−"), assertive termination ("−|0"), plain discards,
    measurements, classical logic gates, classically-controlled quantum
    gates (a quantum gate whose control list contains classical wires), and
    calls to named boxed subcircuits (§4.4.4). Comments with wire labels are
    gates too, so they survive transformations and appear in output. *)

type control = { cwire : Wire.t; cty : Wire.ty; positive : bool }

let pos_control w = { cwire = w; cty = Wire.Q; positive = true }
let neg_control w = { cwire = w; cty = Wire.Q; positive = false }

(** Names of primitive quantum gates with built-in semantics. Anything else
    is a user gate: it prints, counts, reverses and transforms fine, but the
    simulators reject it unless given its matrix. *)
type t =
  | Gate of {
      name : string;
      inv : bool;
      targets : Wire.t list; (* quantum targets, arity fixed by the name *)
      controls : control list;
    }
  | Rot of {
      name : string;
      angle : float;
      inv : bool;
      targets : Wire.t list;
      controls : control list;
    }
  | Phase of { angle : float; controls : control list }
      (** global phase e^{i*angle}, physically meaningful when controlled *)
  | Init of { ty : Wire.ty; value : bool; wire : Wire.t }
  | Term of { ty : Wire.ty; value : bool; wire : Wire.t }
      (** assertive termination: the programmer asserts the wire is in state
          [value]; the compiler may rely on it (paper §4.2.2) *)
  | Discard of { ty : Wire.ty; wire : Wire.t }
  | Measure of { wire : Wire.t }  (** turns a qubit wire into a bit wire *)
  | Cgate of { name : string; out : Wire.t; ins : Wire.t list }
      (** classical logic gate computing a fresh classical wire *)
  | Subroutine of {
      name : string;
      inv : bool;
      inputs : Wire.t list;
      outputs : Wire.t list;
      controls : control list;
    }
  | Comment of { text : string; labels : (Wire.t * string) list }

(* ------------------------------------------------------------------ *)
(* Properties of primitive gate names                                  *)

(** Number of quantum targets expected for a primitive name, if known. *)
let primitive_arity = function
  | "not" | "X" | "Y" | "Z" | "H" | "S" | "T" | "V" | "E" -> Some 1
  | "swap" | "W" -> Some 2
  | _ -> None

let self_inverse = function
  | "not" | "X" | "Y" | "Z" | "H" | "swap" | "W" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Kernel classification                                               *)

type fast_class =
  | Fast_x
  | Fast_y
  | Fast_z
  | Fast_s of bool
  | Fast_t of bool
  | Fast_h
  | Fast_swap
  | Fast_w
  | Fast_diag of float * float
  | Fast_generic

(** Classify a unitary gate for simulator kernel dispatch. Cheap: one
    match on the name, no matrix construction. Controls are irrelevant
    here — the statevector simulator folds them into one (mask, value)
    pair regardless of the kernel chosen. *)
let fast_class = function
  | Gate { name = "not" | "X"; _ } -> Fast_x
  | Gate { name = "Y"; _ } -> Fast_y
  | Gate { name = "Z"; _ } -> Fast_z
  | Gate { name = "S"; inv; _ } -> Fast_s inv
  | Gate { name = "T"; inv; _ } -> Fast_t inv
  | Gate { name = "H"; _ } -> Fast_h
  | Gate { name = "swap"; _ } -> Fast_swap
  | Gate { name = "W"; _ } -> Fast_w
  | Rot { name = "R" | "Ph"; angle; inv; _ } ->
      Fast_diag (0.0, if inv then -.angle else angle)
  | Rot { name = "Rz"; angle; inv; _ } ->
      let a = if inv then -.angle else angle in
      Fast_diag (-.a /. 2.0, a /. 2.0)
  | Rot { name = "exp(-i%Z)"; angle; inv; _ } ->
      let a = if inv then -.angle else angle in
      Fast_diag (-.a, a)
  | _ -> Fast_generic

(* ------------------------------------------------------------------ *)
(* Wire accessors                                                      *)

let controls = function
  | Gate { controls; _ } | Rot { controls; _ }
  | Phase { controls; _ }
  | Subroutine { controls; _ } -> controls
  | _ -> []

(** All wires the gate touches, with the type each wire must have *when the
    gate fires* (for [Measure] that is the qubit side). *)
let wires gate : Wire.endpoint list =
  let ctl c = { Wire.wire = c.cwire; ty = c.cty } in
  match gate with
  | Gate { targets; controls; _ } | Rot { targets; controls; _ } ->
      List.map Wire.qw targets @ List.map ctl controls
  | Phase { controls; _ } -> List.map ctl controls
  | Init { ty; wire; _ } | Term { ty; wire; _ } | Discard { ty; wire } ->
      [ { Wire.wire; ty } ]
  | Measure { wire } -> [ Wire.qw wire ]
  | Cgate { out; ins; _ } -> Wire.cw out :: List.map Wire.cw ins
  | Subroutine { inputs; outputs; controls; _ } ->
      (* outputs may introduce wires not among the inputs *)
      let outs =
        List.filter (fun w -> not (List.mem w inputs)) outputs
      in
      List.map Wire.qw inputs @ List.map Wire.qw outs @ List.map ctl controls
  | Comment { labels; _ } -> List.map (fun (w, _) -> Wire.qw w) labels

(* ------------------------------------------------------------------ *)
(* Rewriting predicates                                                *)

type wire_action = Act_diag | Act_x | Act_other

(** What a unitary gate does to each of its {e target} wires, as far as
    commutation is concerned. Controls are always [Act_diag]: a control is
    a projector, diagonal in the computational basis. *)
let target_action = function
  | Gate { name = "not" | "X"; _ } -> Act_x
  | Gate { name = "Z" | "S" | "T"; _ } -> Act_diag
  | Rot { name = "R" | "Ph" | "Rz" | "exp(-i%Z)"; _ } -> Act_diag
  | Phase _ -> Act_diag (* no targets; for uniformity *)
  | _ -> Act_other

let is_unitary = function Gate _ | Rot _ | Phase _ -> true | _ -> false

(** Diagonal in the computational basis (controls included — a controlled
    diagonal is diagonal). Only unitary gates qualify. *)
let is_diagonal g = is_unitary g && target_action g = Act_diag

let targets = function
  | Gate { targets; _ } | Rot { targets; _ } -> targets
  | _ -> []

let wire_action g w =
  if List.mem w (targets g) then target_action g else Act_diag

(** Sound syntactic commutation check. Gates on disjoint wire sets always
    commute. Two diagonal gates commute however they overlap. Otherwise
    both gates must decompose as sums of per-wire tensor factors (single
    target, controls being per-wire projectors), and on every shared wire
    the two factors must commute: diagonal against diagonal, or X against
    X (so e.g. two CNOTs sharing a target commute, a CNOT's control
    commutes with a Z or a T on the same wire, but a CNOT's control
    against another CNOT's target does not). Multi-target non-diagonal
    gates (swap, W) only commute by disjointness. Conservative [false]
    everywhere else — never claims commutation that does not hold. *)
let commutes a b =
  let wires_of g =
    List.sort_uniq compare (List.map (fun (e : Wire.endpoint) -> e.Wire.wire) (wires g))
  in
  let shared = List.filter (fun w -> List.mem w (wires_of b)) (wires_of a) in
  if shared = [] then true
  else if not (is_unitary a && is_unitary b) then false
  else if is_diagonal a && is_diagonal b then true
  else
    let factors g = is_diagonal g || List.length (targets g) <= 1 in
    factors a && factors b
    && List.for_all
         (fun w ->
           match (wire_action a w, wire_action b w) with
           | Act_diag, Act_diag | Act_x, Act_x -> true
           | _ -> false)
         shared

let same_controls cs1 cs2 =
  let key c = (c.cwire, c.cty, c.positive) in
  let sort cs = List.sort compare (List.map key cs) in
  List.length cs1 = List.length cs2 && sort cs1 = sort cs2

(** Merge two gates acting on the same targets under the same controls
    into one: [T·T = S], [S·S = Z] (and the starred versions), same-name
    rotation addition ([Rz(a)·Rz(b) = Rz(a+b)], likewise [R]/[Ph] and
    [exp(-i%Z)]), and global-phase addition. The result is exact — no
    global-phase slack — so fusion is safe inside controllable boxed
    subcircuits. Returns [None] when the pair has no fusion. *)
let fusion a b =
  match (a, b) with
  | Gate ga, Gate gb
    when ga.targets = gb.targets && same_controls ga.controls gb.controls
         && ga.name = gb.name && ga.inv = gb.inv -> (
      match ga.name with
      | "T" -> Some (Gate { ga with name = "S" })
      | "S" ->
          (* S^2 = Z and S*^2 = Z: Z is self-inverse *)
          Some (Gate { ga with name = "Z"; inv = false })
      | _ -> None)
  | Rot ra, Rot rb
    when ra.name = rb.name && ra.targets = rb.targets
         && same_controls ra.controls rb.controls ->
      let eff angle inv = if inv then -.angle else angle in
      let angle = eff ra.angle ra.inv +. eff rb.angle rb.inv in
      Some (Rot { ra with angle; inv = false })
  | Phase pa, Phase pb when same_controls pa.controls pb.controls ->
      Some (Phase { pa with angle = pa.angle +. pb.angle })
  | _ -> None

(** Is this gate the identity (a zero-angle rotation or phase)? Fusion can
    produce these; rewriting drops them. *)
let is_identity = function
  | Rot { name = "R" | "Ph" | "Rz" | "exp(-i%Z)"; angle = 0.0; _ } -> true
  | Phase { angle = 0.0; _ } -> true
  | _ -> false

(** Does the gate carry a rotation angle? ([Rot] or [Phase] — the
    parameter sites of a circuit family.) *)
let has_angle = function Rot _ | Phase _ -> true | _ -> false

(** Replace the angle of a [Rot]/[Phase]; other gates unchanged. *)
let with_angle g a =
  match g with
  | Rot r -> Rot { r with angle = a }
  | Phase p -> Phase { p with angle = a }
  | g -> g

(* ------------------------------------------------------------------ *)
(* Inversion                                                           *)

(** The inverse gate. Raises [Errors.Error (Not_reversible _)] for gates
    without one. Note that [Init] and [Term] are inverses of each other:
    this is the formal content of §4.2.2 — circuits with initialisations and
    assertive terminations are unitary on the asserted subspace, so Quipper
    reverses them without complaint. *)
let inverse = function
  | Gate g ->
      if self_inverse g.name then Gate g else Gate { g with inv = not g.inv }
  | Rot r -> Rot { r with inv = not r.inv }
  | Phase p -> Phase { p with angle = -.p.angle }
  | Init { ty; value; wire } -> Term { ty; value; wire }
  | Term { ty; value; wire } -> Init { ty; value; wire }
  | Discard _ -> Errors.raise_ (Not_reversible "discard")
  | Measure _ -> Errors.raise_ (Not_reversible "measure")
  | Cgate { name; _ } -> Errors.raise_ (Not_reversible ("classical gate " ^ name))
  | Subroutine s ->
      Subroutine
        { s with inv = not s.inv; inputs = s.outputs; outputs = s.inputs }
  | Comment c -> Comment c

let is_comment = function Comment _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Control handling                                                    *)

(** Can this gate accept (additional) controls? Everything unitary can;
    initialisation and termination are control-neutral (creating an ancilla
    in |0> commutes with any control), so they are let through unchanged;
    the rest cannot appear in a controlled block. *)
type controllability = Controllable | Control_neutral | Not_controllable of string

let controllability = function
  | Gate _ | Rot _ | Phase _ | Subroutine _ -> Controllable
  | Init _ | Term _ | Comment _ -> Control_neutral
  | Discard _ -> Not_controllable "discard"
  | Measure _ -> Not_controllable "measure"
  | Cgate { name; _ } -> Not_controllable ("classical gate " ^ name)

(** Add controls to a gate. Precondition: [controllability] allowed it. *)
let add_controls extra gate =
  if extra = [] then gate
  else
    match gate with
    | Gate g -> Gate { g with controls = g.controls @ extra }
    | Rot r -> Rot { r with controls = r.controls @ extra }
    | Phase p -> Phase { p with controls = p.controls @ extra }
    | Subroutine s -> Subroutine { s with controls = s.controls @ extra }
    | Init _ | Term _ | Comment _ -> gate
    | Discard _ | Measure _ | Cgate _ ->
        Errors.raise_
          (Not_controllable
             (match gate with
             | Discard _ -> "discard"
             | Measure _ -> "measure"
             | _ -> "classical gate"))

(* ------------------------------------------------------------------ *)
(* Renaming (used when inlining boxed subcircuits)                     *)

let rename_control f c = { c with cwire = f c.cwire }

let rename f = function
  | Gate g ->
      Gate
        { g with
          targets = List.map f g.targets;
          controls = List.map (rename_control f) g.controls }
  | Rot r ->
      Rot
        { r with
          targets = List.map f r.targets;
          controls = List.map (rename_control f) r.controls }
  | Phase p -> Phase { p with controls = List.map (rename_control f) p.controls }
  | Init i -> Init { i with wire = f i.wire }
  | Term t -> Term { t with wire = f t.wire }
  | Discard d -> Discard { d with wire = f d.wire }
  | Measure { wire } -> Measure { wire = f wire }
  | Cgate c -> Cgate { c with out = f c.out; ins = List.map f c.ins }
  | Subroutine s ->
      Subroutine
        { s with
          inputs = List.map f s.inputs;
          outputs = List.map f s.outputs;
          controls = List.map (rename_control f) s.controls }
  | Comment c ->
      Comment { c with labels = List.map (fun (w, l) -> (f w, l)) c.labels }

(* ------------------------------------------------------------------ *)
(* Pretty printing (text format, one gate per line)                    *)

let pp_control ppf c =
  Fmt.pf ppf "%s%d%s"
    (if c.positive then "+" else "-")
    c.cwire
    (match c.cty with Wire.Q -> "" | Wire.C -> "c")

let pp_controls ppf = function
  | [] -> ()
  | cs -> Fmt.pf ppf " with controls=[%a]" Fmt.(list ~sep:(any ",") pp_control) cs

let pp_wires = Fmt.(list ~sep:(any ",") int)

let pp ppf = function
  | Gate { name; inv; targets; controls } ->
      Fmt.pf ppf "QGate[%S]%s(%a)%a" name
        (if inv then "*" else "")
        pp_wires targets pp_controls controls
  | Rot { name; angle; inv; targets; controls } ->
      Fmt.pf ppf "QRot[%S,%g]%s(%a)%a" name angle
        (if inv then "*" else "")
        pp_wires targets pp_controls controls
  | Phase { angle; controls } ->
      Fmt.pf ppf "GPhase[%g]%a" angle pp_controls controls
  | Init { ty = Wire.Q; value; wire } ->
      Fmt.pf ppf "QInit%d(%d)" (Bool.to_int value) wire
  | Init { ty = Wire.C; value; wire } ->
      Fmt.pf ppf "CInit%d(%d)" (Bool.to_int value) wire
  | Term { ty = Wire.Q; value; wire } ->
      Fmt.pf ppf "QTerm%d(%d)" (Bool.to_int value) wire
  | Term { ty = Wire.C; value; wire } ->
      Fmt.pf ppf "CTerm%d(%d)" (Bool.to_int value) wire
  | Discard { ty = Wire.Q; wire } -> Fmt.pf ppf "QDiscard(%d)" wire
  | Discard { ty = Wire.C; wire } -> Fmt.pf ppf "CDiscard(%d)" wire
  | Measure { wire } -> Fmt.pf ppf "QMeas(%d)" wire
  | Cgate { name; out; ins } ->
      Fmt.pf ppf "CGate[%S](%d;%a)" name out pp_wires ins
  | Subroutine { name; inv; inputs; outputs; controls } ->
      Fmt.pf ppf "Subroutine[%S]%s(%a) -> (%a)%a" name
        (if inv then "*" else "")
        pp_wires inputs pp_wires outputs pp_controls controls
  | Comment { text; labels } ->
      Fmt.pf ppf "Comment[%S]%a" text
        Fmt.(
          list ~sep:nop (fun ppf (w, l) -> Fmt.pf ppf " %d:%S" w l))
        labels

let to_string = Fmt.to_to_string pp

(* ------------------------------------------------------------------ *)
(* Pauli-frame conjugation                                             *)

type frame_action =
  | Frame_id
  | Frame_pauli of Wire.t * bool * bool
  | Frame_h of Wire.t
  | Frame_s of Wire.t
  | Frame_v of Wire.t
  | Frame_cnot of Wire.t * Wire.t
  | Frame_cz of Wire.t * Wire.t
  | Frame_swap of Wire.t * Wire.t

(** How the frame engine conjugates a Pauli frame through [g], classical
    controls stripped (the engine resolves those against its reference
    run). The accepted set mirrors {!Quipper_sim.Clifford.apply_gate}
    exactly — same gates, same control shapes — so "eligible for the
    frame engine" and "accepted by the clifford backend" never drift
    apart. Signs are deliberately dropped: a frame is a Pauli up to
    phase, and every comparison downstream (measured bits, canonical
    tableaux, amplitudes up to global phase) is phase-blind.

    [Error what] names the offending gate and wires in the clifford
    backend's phrasing, for fallback reports. *)
let frame_action (g : t) : (frame_action, string) result =
  let not_clifford ?(wires = []) what =
    let pp_wires ppf = function
      | [] -> ()
      | [ w ] -> Fmt.pf ppf " on wire %d" w
      | ws ->
          Fmt.pf ppf " on wires %s" (String.concat "," (List.map string_of_int ws))
    in
    Error (Fmt.str "%s%a is not a Clifford operation" what pp_wires wires)
  in
  let quantum cs = List.filter (fun c -> c.cty = Wire.Q) cs in
  match g with
  | Gate { name; inv = _; targets; controls } -> (
      match (name, targets, quantum controls) with
      | ("not" | "X"), [ t ], [] -> Ok (Frame_pauli (t, true, false))
      | ("not" | "X"), [ t ], [ c ] ->
          (* negative polarity only wraps the CNOT in X's: frame-invisible *)
          Ok (Frame_cnot (c.cwire, t))
      | ("not" | "X"), ts, _ -> not_clifford ~wires:ts "multiply-controlled not"
      | "Y", [ t ], [] -> Ok (Frame_pauli (t, true, true))
      | "Z", [ t ], [] -> Ok (Frame_pauli (t, false, true))
      | "Z", [ t ], [ c ] when c.positive -> Ok (Frame_cz (c.cwire, t))
      | "H", [ t ], [] -> Ok (Frame_h t)
      | "S", [ t ], [] -> Ok (Frame_s t) (* S* differs from S by signs only *)
      | "V", [ t ], [] -> Ok (Frame_v t)
      | "swap", [ a; b ], [] -> Ok (Frame_swap (a, b))
      | n, ts, _ -> not_clifford ~wires:ts n)
  | Rot { name; targets; _ } -> not_clifford ~wires:targets name
  | Phase { controls; _ } -> (
      (* an uncontrolled (or classically-controlled) phase is global:
         invisible to every phase-blind comparison. A quantum-controlled
         phase is a real diagonal gate on the statevector backend, so it
         is conservatively rejected even though the clifford backend
         ignores it. *)
      match quantum controls with
      | [] -> Ok Frame_id
      | cs -> not_clifford ~wires:(List.map (fun c -> c.cwire) cs) "controlled phase")
  | Init _ | Term _ | Discard _ | Measure _ | Cgate _ | Comment _ ->
      (* structural gates: the frame engine handles these itself *)
      Ok Frame_id
  | Subroutine { name; _ } -> Error (Fmt.str "subroutine call %s (inline first)" name)
