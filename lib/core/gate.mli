(** Gates: the vertical elements of a circuit diagram, in Quipper's
    {e extended} circuit model (paper §4.2).

    Beyond unitary gates with positive and negative controls, the model
    includes explicit qubit initialisation ("0|-") and {e assertive}
    termination ("-|0", §4.2.2), plain discards, measurements, classical
    logic gates, classically-controlled quantum gates (a control list may
    mix quantum and classical wires), and calls to named boxed subcircuits
    (§4.4.4). Comments with wire labels are gates too, so they survive
    transformation and appear in output. *)

type control = { cwire : Wire.t; cty : Wire.ty; positive : bool }
(** A signed control: [positive = false] is the "empty dot" (fires on 0). *)

val pos_control : Wire.t -> control
val neg_control : Wire.t -> control

type t =
  | Gate of {
      name : string;
      inv : bool;
      targets : Wire.t list;
      controls : control list;
    }
      (** A named unitary. Primitive names with built-in semantics:
          ["not"]/["X"], ["Y"], ["Z"], ["H"], ["S"], ["T"],
          ["V"] (sqrt of not), ["W"] (the BWT basis change), ["swap"].
          Other names are user gates: they print, count, reverse and
          transform, but the simulators reject them. *)
  | Rot of {
      name : string;
      angle : float;
      inv : bool;
      targets : Wire.t list;
      controls : control list;
    }
      (** Parameterised rotations: ["exp(-i%Z)"], ["Rz"], ["Rx"],
          ["R"]/["Ph"] (diag(1, e^{i angle})). *)
  | Phase of { angle : float; controls : control list }
      (** Global phase e^{i angle}; physically meaningful when controlled. *)
  | Init of { ty : Wire.ty; value : bool; wire : Wire.t }
  | Term of { ty : Wire.ty; value : bool; wire : Wire.t }
      (** Assertive termination: the programmer asserts the wire is in
          state [value]; the compiler may rely on it (§4.2.2). *)
  | Discard of { ty : Wire.ty; wire : Wire.t }
  | Measure of { wire : Wire.t }
      (** Turns a qubit wire into a classical wire of the same id. *)
  | Cgate of { name : string; out : Wire.t; ins : Wire.t list }
      (** A classical logic gate computing a fresh classical wire;
          built-in names: ["xor"], ["and"], ["or"], ["not"]. *)
  | Subroutine of {
      name : string;
      inv : bool;
      inputs : Wire.t list;
      outputs : Wire.t list;
      controls : control list;
    }
      (** A call to a boxed subcircuit in the enclosing namespace. *)
  | Comment of { text : string; labels : (Wire.t * string) list }

(** A cheap classification of unitary gates, used by the statevector
    simulator to dispatch to specialised in-place kernels instead of the
    generic matrix path. Permutation-like gates ([Fast_x], [Fast_swap],
    which also cover CNOT/Toffoli/controlled-swap once controls are
    folded into an index mask) become index swaps; diagonal gates become
    phase multiplies; only H and W need a butterfly. *)
type fast_class =
  | Fast_x  (** not/X: swap the pair of amplitudes *)
  | Fast_y
  | Fast_z
  | Fast_s of bool  (** [true] = the adjoint S* *)
  | Fast_t of bool  (** [true] = the adjoint T* *)
  | Fast_h  (** the 1-qubit butterfly *)
  | Fast_swap
  | Fast_w  (** the BWT basis change: a butterfly on the odd subspace *)
  | Fast_diag of float * float
      (** [Fast_diag (a0, a1)] is diag(e^{i a0}, e^{i a1}): the R/Ph, Rz
          and exp(-i%Z) rotations, inversion already folded in *)
  | Fast_generic  (** anything else: full 2x2/4x4 matrix application *)

val fast_class : t -> fast_class
(** Classify a [Gate]/[Rot] for kernel dispatch; every non-unitary
    constructor and every unrecognised name is [Fast_generic]. *)

val primitive_arity : string -> int option
(** Number of quantum targets a primitive gate name expects, if known. *)

val self_inverse : string -> bool

(** {2 Rewriting predicates}

    The algebraic facts the optimizer subsystem (the DAG-based peephole
    rewriting in [lib/opt]) relies on. All of them are exact —
    no global-phase slack — so they are safe inside boxed subcircuits
    that may be called under controls. *)

(** A unitary gate's action on one of its wires: diagonal in the
    computational basis (controls always are), an X flip, or anything
    else. *)
type wire_action = Act_diag | Act_x | Act_other

val is_unitary : t -> bool
(** [Gate]/[Rot]/[Phase] — the constructors with unitary semantics. *)

val is_diagonal : t -> bool
(** Diagonal in the computational basis, controls included. *)

val targets : t -> Wire.t list
(** Target wires of a [Gate]/[Rot]; [[]] for every other constructor. *)

val wire_action : t -> Wire.t -> wire_action
(** Action on a specific wire ([Act_diag] for control wires). Only
    meaningful for wires the gate touches. *)

val commutes : t -> t -> bool
(** Sound syntactic commutation: [true] only when the two gates provably
    commute (disjoint wires; both diagonal; or per-shared-wire actions
    that pairwise commute — diag/diag or X/X). Conservative [false]
    otherwise. *)

val fusion : t -> t -> t option
(** Fuse two gates on identical targets and controls into one:
    [T·T = S], [S·S = Z], same-name rotation-angle addition, global-phase
    addition. [None] when the pair has no fusion. *)

val is_identity : t -> bool
(** A zero-angle rotation or phase (fusion can produce these). *)

val has_angle : t -> bool
(** [Rot] or [Phase] — the gates carrying an angle parameter (the
    angle sites of {!Circuit.angles}). *)

val with_angle : t -> float -> t
(** Replace a [Rot]/[Phase] angle; other gates are returned unchanged. *)

val controls : t -> control list

val wires : t -> Wire.endpoint list
(** Every wire the gate touches, with the type each must have when the
    gate fires (for [Measure], the qubit side). *)

val inverse : t -> t
(** The inverse gate. [Init] and [Term] swap — the formal content of
    §4.2.2. Raises {!Errors.Error} [(Not_reversible _)] on measurements,
    discards and classical gates. *)

val is_comment : t -> bool

type controllability =
  | Controllable
  | Control_neutral
      (** Initialisation/termination/comments: they commute with any
          control and pass through controlled blocks unchanged. *)
  | Not_controllable of string

val controllability : t -> controllability

val add_controls : control list -> t -> t
(** Append controls to a gate; the identity on control-neutral gates;
    raises on uncontrollable ones. *)

val rename_control : (Wire.t -> Wire.t) -> control -> control

val rename : (Wire.t -> Wire.t) -> t -> t
(** Apply a wire renaming (used when inlining boxed subcircuits). *)

val pp : Format.formatter -> t -> unit
(** One-line text form, e.g.
    [QGate["not"](3) with controls=[+1,-2]]. *)

val to_string : t -> string

(** {2 Pauli-frame conjugation}

    Conjugation rules for the Pauli-frame fault engine
    ([Quipper_sim.Frame]): how pushing a Pauli error frame (an (x,z)
    bitpair per qubit wire) past this gate transforms it, with all signs
    dropped (frames are Paulis up to phase). The accepted gate set
    mirrors the clifford backend's exactly. *)
type frame_action =
  | Frame_id  (** Paulis, phases, and structural gates: frame unchanged *)
  | Frame_pauli of Wire.t * bool * bool
      (** The gate {e is} a single-wire Pauli [(wire, x, z)]: frame
          unchanged by conjugation, but if the gate's firing diverges
          per-trial (classical controls), diverging trials just toggle
          these frame bits. *)
  | Frame_h of Wire.t  (** swap x and z *)
  | Frame_s of Wire.t  (** z ^= x (S and S* agree up to sign) *)
  | Frame_v of Wire.t  (** x ^= z (V = HSH up to phase) *)
  | Frame_cnot of Wire.t * Wire.t  (** (control, target): x spreads down, z up *)
  | Frame_cz of Wire.t * Wire.t  (** z_a ^= x_b and z_b ^= x_a *)
  | Frame_swap of Wire.t * Wire.t

val frame_action : t -> (frame_action, string) result
(** The conjugation rule for a gate, classical controls stripped.
    [Error what] for gates outside the clifford backend's set, [what]
    phrased like the clifford backend's rejections (gate and wires
    named). *)
