(** Resource counting: Quipper's [-f gatecount] output format (§5.3.1).

    Counts are *aggregated*: every boxed subcircuit is counted once and its
    per-call cost multiplied by the number of calls, recursively. This is
    the feature that lets the paper count a 30-trillion-gate circuit in
    under two minutes on a laptop (§5.4) — the count is a product over the
    call tree, never an expansion of it. Counts are exact integers; OCaml's
    63-bit native ints comfortably hold the paper's 3×10^13.

    A count is keyed by gate kind: the gate's name plus its numbers of
    positive and negative controls, displayed Quipper-style as
    ["Not", controls a+b] (with [a+0] printed as [a]). Comments are not
    gates and are not counted. *)

type key = {
  kind : string;      (** "Not", "H", "Init0", "Term0", "Meas", "W", ... *)
  inverted : bool;
  pos_controls : int;
  neg_controls : int;
}

module Key = struct
  type t = key
  let compare = compare
end

module Counts = Map.Make (Key)

type t = int Counts.t

let empty : t = Counts.empty

let add (k : key) n (t : t) : t =
  Counts.update k (function None -> Some n | Some m -> Some (m + n)) t

let merge_scaled factor (sub : t) (acc : t) : t =
  Counts.fold (fun k n acc -> add k (n * factor) acc) sub acc

let canonical_kind name =
  (* Quipper prints the not gate capitalised *)
  match name with
  | "not" -> "Not"
  | s -> s

let split_controls (cs : Gate.control list) =
  List.fold_left
    (fun (p, n) (c : Gate.control) -> if c.positive then (p + 1, n) else (p, n + 1))
    (0, 0) cs

let key_of_gate (g : Gate.t) : key option =
  match g with
  | Gate.Gate { name; inv; controls; _ } ->
      let p, n = split_controls controls in
      Some { kind = canonical_kind name; inverted = inv; pos_controls = p; neg_controls = n }
  | Gate.Rot { name; inv; controls; _ } ->
      let p, n = split_controls controls in
      Some { kind = name; inverted = inv; pos_controls = p; neg_controls = n }
  | Gate.Phase { controls; _ } ->
      let p, n = split_controls controls in
      Some { kind = "GPhase"; inverted = false; pos_controls = p; neg_controls = n }
  | Gate.Init { ty = Wire.Q; value; _ } ->
      Some { kind = (if value then "Init1" else "Init0"); inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Init { ty = Wire.C; value; _ } ->
      Some { kind = (if value then "CInit1" else "CInit0"); inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Term { ty = Wire.Q; value; _ } ->
      Some { kind = (if value then "Term1" else "Term0"); inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Term { ty = Wire.C; value; _ } ->
      Some { kind = (if value then "CTerm1" else "CTerm0"); inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Discard { ty = Wire.Q; _ } ->
      Some { kind = "Discard"; inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Discard { ty = Wire.C; _ } ->
      Some { kind = "CDiscard"; inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Measure _ ->
      Some { kind = "Meas"; inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Cgate { name; _ } ->
      Some { kind = "CGate:" ^ name; inverted = false; pos_controls = 0; neg_controls = 0 }
  | Gate.Subroutine _ | Gate.Comment _ -> None

(* ------------------------------------------------------------------ *)
(* Aggregated counting over the call hierarchy                         *)

(** Counts of a subroutine under inversion: Init<->Term swap, gate [inv]
    bits flip. *)
let invert_counts (t : t) : t =
  Counts.fold
    (fun k n acc ->
      let k' =
        match k.kind with
        | "Init0" -> { k with kind = "Term0" }
        | "Init1" -> { k with kind = "Term1" }
        | "Term0" -> { k with kind = "Init0" }
        | "Term1" -> { k with kind = "Init1" }
        | "CInit0" -> { k with kind = "CTerm0" }
        | "CInit1" -> { k with kind = "CTerm1" }
        | "CTerm0" -> { k with kind = "CInit0" }
        | "CTerm1" -> { k with kind = "CInit1" }
        | name when name = "Not" || Gate.self_inverse name -> k
        | _ -> { k with inverted = not k.inverted }
      in
      add k' n acc)
    t empty

(* The aggregation core, shared by the whole-circuit [aggregate] and the
   streaming counter: parameterized by the subroutine lookup, and by a
   memo table per (subroutine, added positive controls, added negative
   controls) — calls with controls are rare, so the table stays small. *)

type memo = (string * int * int, t) Hashtbl.t

let rec count_gate ~(find : string -> Circuit.subroutine) ~(memo : memo)
    ~(addp : int) ~(addn : int) (acc : t) (g : Gate.t) : t =
  match g with
  | Gate.Comment _ -> acc
  | Gate.Subroutine { name; inv; controls; _ } ->
      let p, n = split_controls controls in
      let sub = counts_of_sub ~find ~memo name ~addp:(addp + p) ~addn:(addn + n) in
      let sub = if inv then invert_counts sub else sub in
      merge_scaled 1 sub acc
  | g -> (
      match key_of_gate g with
      | None -> acc
      | Some k ->
          let k =
            (* ambient controls from enclosing controlled calls attach
               to every controllable gate of the body *)
            match Gate.controllability g with
            | Gate.Controllable ->
                { k with
                  pos_controls = k.pos_controls + addp;
                  neg_controls = k.neg_controls + addn }
            | _ -> k
          in
          add k 1 acc)

and counts_of_circuit ~find ~memo (c : Circuit.t) ~addp ~addn : t =
  Array.fold_left (count_gate ~find ~memo ~addp ~addn) empty c.Circuit.gates

and counts_of_sub ~find ~memo name ~addp ~addn : t =
  match Hashtbl.find_opt memo (name, addp, addn) with
  | Some t -> t
  | None ->
      let sub : Circuit.subroutine = find name in
      let t = counts_of_circuit ~find ~memo sub.Circuit.circ ~addp ~addn in
      Hashtbl.replace memo (name, addp, addn) t;
      t

(** [aggregate b]: gate counts of [b]'s main circuit with every boxed
    subcircuit recursively inlined — computed without inlining anything.
    A subroutine call under [k] extra controls contributes its body's counts
    with [k] controls added to every controllable gate. *)
let aggregate (b : Circuit.b) : t =
  counts_of_circuit ~find:(Circuit.find_sub b) ~memo:(Hashtbl.create 16)
    b.main ~addp:0 ~addn:0

(** Shallow counts of one circuit (subroutine calls counted as opaque single
    gates named after the subroutine). *)
let shallow (c : Circuit.t) : t =
  Array.fold_left
    (fun acc g ->
      match g with
      | Gate.Comment _ -> acc
      | Gate.Subroutine { name; inv; controls; _ } ->
          let p, n = split_controls controls in
          add
            { kind = "Subroutine:" ^ name; inverted = inv;
              pos_controls = p; neg_controls = n }
            1 acc
      | g -> (
          match key_of_gate g with None -> acc | Some k -> add k 1 acc))
    empty c.Circuit.gates

(* ------------------------------------------------------------------ *)
(* Totals and qubit counts                                             *)

let is_io_kind k =
  match k.kind with
  | "Init0" | "Init1" | "Term0" | "Term1" | "CInit0" | "CInit1" | "CTerm0"
  | "CTerm1" | "Discard" | "CDiscard" | "Meas" -> true
  | _ -> false

(** Total gates, counting everything (Quipper's "Total gates" line counts
    inits and terminations too; the §6 table separates them). *)
let total (t : t) = Counts.fold (fun _ n acc -> acc + n) t 0

(** Total excluding initialisation/termination/measurement — the "Total" row
    of the §6 comparison table. *)
let total_logical (t : t) =
  Counts.fold (fun k n acc -> if is_io_kind k then acc else acc + n) t 0

let get (t : t) k = match Counts.find_opt k t with Some n -> n | None -> 0

let find_kind (t : t) kind =
  Counts.fold (fun k n acc -> if k.kind = kind then acc + n else acc) t 0

(** One gate's effect on the (live wires, peak) pair — the step function
    of both the whole-circuit [peak_wires] and the streaming tracker. A
    subroutine call at a point with [l] live wires can reach
    [l - arity_in + peak(sub)]. *)
let peak_step ~(sub_peak : string -> int) (live, peak) (g : Gate.t) :
    int * int =
  match g with
  | Gate.Init _ | Gate.Cgate _ ->
      let live = live + 1 in
      (live, max peak live)
  | Gate.Term _ | Gate.Discard _ -> (live - 1, peak)
  | Gate.Subroutine { name; inputs; outputs; _ } ->
      let reach = live - List.length inputs + sub_peak name in
      let live = live - List.length inputs + List.length outputs in
      (live, max (max peak reach) live)
  | _ -> (live, peak)

let rec peak_of_circuit ~find ~(memo : (string, int) Hashtbl.t)
    (c : Circuit.t) : int =
  let start = List.length c.Circuit.inputs in
  snd
    (Array.fold_left
       (peak_step ~sub_peak:(peak_of_sub ~find ~memo))
       (start, start) c.Circuit.gates)

and peak_of_sub ~find ~memo name =
  match Hashtbl.find_opt memo name with
  | Some p -> p
  | None ->
      let sub : Circuit.subroutine = find name in
      let p = peak_of_circuit ~find ~memo sub.Circuit.circ in
      Hashtbl.replace memo name p;
      p

(** Peak number of simultaneously-live wires ("Qubits in circuit"),
    computed hierarchically. *)
let peak_wires (b : Circuit.b) : int =
  peak_of_circuit ~find:(Circuit.find_sub b) ~memo:(Hashtbl.create 16) b.main

(* ------------------------------------------------------------------ *)
(* Gate classes                                                        *)

type klass = Clifford | T | Rotation | Structural | Classical | Other

let klass_name = function
  | Clifford -> "clifford"
  | T -> "t"
  | Rotation -> "rotation"
  | Structural -> "structural"
  | Classical -> "classical"
  | Other -> "other"

(** Classify a count key for the by-class resource rollup. Structural =
    init/term/discard/measure; Classical = classical logic gates; T and
    Clifford only uncontrolled (plus the standard one-control Cliffords:
    CNOT, CZ, CY, controlled-swap excluded); rotations stay rotations
    under controls; everything else — including multiply-controlled
    gates awaiting decomposition — is Other. *)
let class_of_key (k : key) : klass =
  if is_io_kind k then Structural
  else if String.length k.kind > 6 && String.sub k.kind 0 6 = "CGate:" then
    Classical
  else
    let controls = k.pos_controls + k.neg_controls in
    match k.kind with
    | "T" when controls = 0 -> T
    | "Not" | "X" -> if controls <= 1 then Clifford else Other
    | "Y" | "Z" -> if controls <= 1 then Clifford else Other
    | "H" | "S" | "swap" -> if controls = 0 then Clifford else Other
    | "Rz" | "Rx" | "R" | "Ph" | "exp(-i%Z)" | "GPhase" -> Rotation
    | _ -> Other

(* ------------------------------------------------------------------ *)
(* Summary record and printing, in Quipper's output format             *)

type summary = {
  counts : t;
  total : int;
  total_logical : int;
  inputs : int;
  outputs : int;
  qubits : int;
}

let summarize (b : Circuit.b) : summary =
  let counts = aggregate b in
  {
    counts;
    total = total counts;
    total_logical = total_logical counts;
    inputs = List.length b.main.Circuit.inputs;
    outputs = List.length b.main.Circuit.outputs;
    qubits = peak_wires b;
  }

(** Aggregated counts for each boxed subcircuit, in definition order —
    Quipper's [-f gatecount] prints "a gate count for each boxed subcircuit
    ... together with an aggregated gate count for the circuit with all
    boxed subcircuits inlined" (§5.3.1). Each subroutine's count has its
    own nested calls expanded. *)
let per_subroutine (b : Circuit.b) : (string * summary) list =
  List.map
    (fun name ->
      let sub = Circuit.find_sub b name in
      let as_b =
        { Circuit.main = sub.Circuit.circ; subs = b.Circuit.subs;
          sub_order = b.Circuit.sub_order }
      in
      (name, summarize as_b))
    b.Circuit.sub_order

let pp_key ppf k =
  let name = if k.inverted then k.kind ^ "*" else k.kind in
  match (k.pos_controls, k.neg_controls) with
  | 0, 0 -> Fmt.pf ppf "%S" name
  | p, 0 -> Fmt.pf ppf "%S, controls %d" name p
  | p, n -> Fmt.pf ppf "%S, controls %d+%d" name p n

let pp ppf (t : t) =
  Counts.iter (fun k n -> Fmt.pf ppf "%d: %a@\n" n pp_key k) t

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "Aggregated gate count:@\n%a" pp s.counts;
  Fmt.pf ppf "Total gates: %d@\n" s.total;
  Fmt.pf ppf "Inputs: %d@\n" s.inputs;
  Fmt.pf ppf "Outputs: %d@\n" s.outputs;
  Fmt.pf ppf "Qubits in circuit: %d@\n" s.qubits

(* ------------------------------------------------------------------ *)
(* Streaming counting                                                  *)

(** Incremental counter over a gate stream, sharing the aggregation and
    peak-wires cores above so the result is the one [summarize] gives on
    the materialized circuit. Subroutine definitions arrive through
    {!stream_define} (always before the first call gate naming them, the
    order {!Circ.run_streaming} guarantees); memory is bounded by the
    number of distinct gate kinds plus the subroutine namespace, not by
    the gate count. *)
type stream = {
  mutable counts : t;
  mutable live : int;
  mutable peak : int;
  mutable input_arity : int;
  defs : (string, Circuit.subroutine) Hashtbl.t;
  count_memo : memo;
  peak_memo : (string, int) Hashtbl.t;
}

let stream_create () =
  {
    counts = empty;
    live = 0;
    peak = 0;
    input_arity = 0;
    defs = Hashtbl.create 16;
    count_memo = Hashtbl.create 16;
    peak_memo = Hashtbl.create 16;
  }

let stream_find st name =
  match Hashtbl.find_opt st.defs name with
  | Some s -> s
  | None -> Errors.raise_ (Unknown_subroutine name)

let stream_inputs st (es : Wire.endpoint list) =
  let n = List.length es in
  st.input_arity <- st.input_arity + n;
  st.live <- st.live + n;
  if st.live > st.peak then st.peak <- st.live

let stream_define st name (sub : Circuit.subroutine) =
  Hashtbl.replace st.defs name sub

let stream_gate st (g : Gate.t) =
  st.counts <-
    count_gate ~find:(stream_find st) ~memo:st.count_memo ~addp:0 ~addn:0
      st.counts g;
  let live, peak =
    peak_step
      ~sub_peak:(fun name ->
        peak_of_sub ~find:(stream_find st) ~memo:st.peak_memo name)
      (st.live, st.peak) g
  in
  st.live <- live;
  st.peak <- peak

let stream_counts st = st.counts

let stream_summary st ~outputs =
  {
    counts = st.counts;
    total = total st.counts;
    total_logical = total_logical st.counts;
    inputs = st.input_arity;
    outputs;
    qubits = st.peak;
  }
