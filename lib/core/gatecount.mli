(** Resource counting in Quipper's [-f gatecount] format (paper §5.3.1).

    Counts are {e aggregated}: every boxed subcircuit is counted once and
    its per-call cost multiplied by the number of calls, recursively —
    the count is a product over the call tree, never an expansion of it.
    This is what lets the paper count a 30-trillion-gate circuit in under
    two minutes (§5.4). Counts are native OCaml integers (63-bit), ample
    for the paper's 3x10^13. *)

type key = {
  kind : string;
      (** Quipper's gate-kind names: ["Not"], ["H"], ["Init0"], ["Term0"],
          ["Meas"], ["W"], ["exp(-i%Z)"], ... *)
  inverted : bool;
  pos_controls : int;
  neg_controls : int;
}

module Key : sig
  type t = key

  val compare : t -> t -> int
end

module Counts : Map.S with type key = Key.t

type t = int Counts.t

val empty : t
val add : key -> int -> t -> t
val merge_scaled : int -> t -> t -> t
val key_of_gate : Gate.t -> key option
val invert_counts : t -> t

val aggregate : Circuit.b -> t
(** Gate counts of the main circuit with every boxed subcircuit
    recursively inlined — computed without inlining anything. A call under
    extra controls contributes its body's counts with those controls added
    to every controllable gate. *)

val shallow : Circuit.t -> t
(** Counts of one circuit, subroutine calls as opaque single gates. *)

val total : t -> int

val total_logical : t -> int
(** Total excluding initialisation / termination / measurement — the
    "Total" row of the paper's §6 table. *)

val get : t -> key -> int
val find_kind : t -> string -> int

val is_io_kind : key -> bool
(** Initialisation / termination / discard / measurement kinds — the
    keys [total_logical] excludes. *)

(** A coarse classification of count keys for by-class resource rollups
    (the axis resource-estimation tables are quoted on): Clifford gates,
    T gates, parameterised rotations, structural (init/term/discard/
    measure), classical logic, and everything else — including
    multiply-controlled gates awaiting decomposition. *)
type klass = Clifford | T | Rotation | Structural | Classical | Other

val klass_name : klass -> string
val class_of_key : key -> klass

val peak_step : sub_peak:(string -> int) -> int * int -> Gate.t -> int * int
(** One gate's effect on the (live wires, peak) pair — the step function
    of {!peak_wires} and of the streaming tracker, exposed so other
    hierarchical analyses (notably [Quipper_estimate]) share the exact
    peak-wires semantics: a subroutine call at [l] live wires can reach
    [l - arity_in + sub_peak name]. *)

val peak_wires : Circuit.b -> int
(** Peak number of simultaneously-live wires ("Qubits in circuit"),
    computed hierarchically. *)

type summary = {
  counts : t;
  total : int;
  total_logical : int;
  inputs : int;
  outputs : int;
  qubits : int;
}

val summarize : Circuit.b -> summary

val per_subroutine : Circuit.b -> (string * summary) list
(** Aggregated counts for each boxed subcircuit, in definition order —
    the per-box section of Quipper's [-f gatecount] output. *)

val pp_key : Format.formatter -> key -> unit
(** Quipper's format: [ "Not", controls 1+1 ] (and [a+0] printed [a]). *)

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> summary -> unit

(** {1 Streaming counting}

    Incremental counting over a gate stream ({!Circ.run_streaming}),
    sharing the aggregation and peak-wires cores with {!aggregate} and
    {!peak_wires}, so the resulting {!summary} equals [summarize] of the
    materialized circuit. Memory is bounded by the number of distinct
    gate kinds plus the subroutine namespace, never by the gate count. *)

type stream

val stream_create : unit -> stream

val stream_inputs : stream -> Wire.endpoint list -> unit
(** Declare the circuit inputs (they start the live-wire tally). *)

val stream_define : stream -> string -> Circuit.subroutine -> unit
(** Record a subroutine definition; must precede call gates naming it. *)

val stream_gate : stream -> Gate.t -> unit
val stream_counts : stream -> t

val stream_summary : stream -> outputs:int -> summary
(** The summary so far; [outputs] is the final output arity. *)
