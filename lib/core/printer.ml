(** The text output format: one gate per line, Quipper's [.txt] style
    (§4.4.5, [print_generic] with format [Text]). Subroutine definitions
    are printed after the main circuit, in definition order, so hierarchical
    circuits stay hierarchical on disk. *)

let pp_arity ppf (es : Wire.endpoint list) =
  match es with
  | [] -> Fmt.pf ppf "none"
  | es ->
      Fmt.pf ppf "%a"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (e : Wire.endpoint) ->
              Fmt.pf ppf "%d:%s" e.Wire.wire
                (match e.Wire.ty with Wire.Q -> "Qubit" | Wire.C -> "Cbit")))
        es

(* The granular pieces of the format, so the streaming printer sink can
   emit the very same bytes line by line. *)

let pp_inputs ppf (es : Wire.endpoint list) = Fmt.pf ppf "Inputs: %a@\n" pp_arity es
let pp_gate_line ppf (g : Gate.t) = Fmt.pf ppf "%a@\n" Gate.pp g
let pp_outputs ppf (es : Wire.endpoint list) = Fmt.pf ppf "Outputs: %a@\n" pp_arity es

let pp_circuit ppf (c : Circuit.t) =
  pp_inputs ppf c.Circuit.inputs;
  Array.iter (pp_gate_line ppf) c.Circuit.gates;
  pp_outputs ppf c.Circuit.outputs

let pp_subroutine ppf name (sub : Circuit.subroutine) =
  Fmt.pf ppf "@\nSubroutine: %S@\nControllable: %b@\n" name
    sub.Circuit.controllable;
  pp_circuit ppf sub.Circuit.circ

let pp_bcircuit ppf (b : Circuit.b) =
  pp_circuit ppf b.Circuit.main;
  List.iter
    (fun name -> pp_subroutine ppf name (Circuit.find_sub b name))
    b.Circuit.sub_order

let to_string (b : Circuit.b) = Fmt.to_to_string pp_bcircuit b

let print (b : Circuit.b) = Fmt.pr "%a@." pp_bcircuit b
