(** The text output format: one gate per line, Quipper's [.txt] style
    (paper §4.4.5, [print_generic]). Subroutine definitions follow the
    main circuit in definition order, so hierarchical circuits stay
    hierarchical on disk. *)

val pp_arity : Format.formatter -> Wire.endpoint list -> unit

(** The granular pieces of the format — what the streaming printer sink
    ({!Sink.printer}) emits line by line, so its output is byte-identical
    to {!pp_bcircuit} on the materialized circuit. *)

val pp_inputs : Format.formatter -> Wire.endpoint list -> unit
val pp_gate_line : Format.formatter -> Gate.t -> unit
val pp_outputs : Format.formatter -> Wire.endpoint list -> unit
val pp_subroutine : Format.formatter -> string -> Circuit.subroutine -> unit

val pp_circuit : Format.formatter -> Circuit.t -> unit
val pp_bcircuit : Format.formatter -> Circuit.b -> unit
val to_string : Circuit.b -> string
val print : Circuit.b -> unit
