(** Streaming circuit consumers.

    The paper's headline scalability evidence (§5.4) — counting a
    30-trillion-gate circuit without holding it — falls out of Haskell's
    laziness: consumers fold over the gate list as it is produced. Our
    strict builder materializes into a [Vec], so consumers that only need
    a fold (counting, depth, printing, simulation) pay O(gates) memory
    for no reason. A ['r t] is such a fold made first-class: callbacks
    for the events of a circuit-construction run, and a [finish] that
    renders the accumulated state into a result. {!Circ.run_streaming}
    drives a sink with per-gate O(1) memory.

    Event order mirrors what the buffering run records: [on_inputs] once
    up front, then gates in emission order; [on_subroutine_exit] fires
    when a box body has been captured, always before the first call gate
    of that subroutine, and nested definitions complete innermost-first
    (the same order as [Circuit.b.sub_order]). *)

type 'r t = {
  on_inputs : Wire.endpoint list -> unit;
  on_gate : Gate.t -> unit;
  on_subroutine_enter : string -> unit;
  on_subroutine_exit : string -> Circuit.subroutine -> unit;
  finish : Wire.endpoint list -> 'r;
}

let make ?(on_inputs = fun _ -> ()) ?(on_gate = fun _ -> ())
    ?(on_subroutine_enter = fun _ -> ()) ?(on_subroutine_exit = fun _ _ -> ())
    ~finish () =
  { on_inputs; on_gate; on_subroutine_enter; on_subroutine_exit; finish }

let map f (s : 'a t) : 'b t = { s with finish = (fun outs -> f (s.finish outs)) }

(** Feed one event stream to two sinks at once (one generation pass,
    several analyses). [finish] runs the left sink first. *)
let tee (a : 'a t) (b : 'b t) : ('a * 'b) t =
  {
    on_inputs =
      (fun es ->
        a.on_inputs es;
        b.on_inputs es);
    on_gate =
      (fun g ->
        a.on_gate g;
        b.on_gate g);
    on_subroutine_enter =
      (fun name ->
        a.on_subroutine_enter name;
        b.on_subroutine_enter name);
    on_subroutine_exit =
      (fun name sub ->
        a.on_subroutine_exit name sub;
        b.on_subroutine_exit name sub);
    finish =
      (fun outs ->
        let ra = a.finish outs in
        let rb = b.finish outs in
        (ra, rb));
  }

let tee3 a b c = map (fun (x, (y, z)) -> (x, y, z)) (tee a (tee b c))

(* ------------------------------------------------------------------ *)
(* First-class sinks                                                   *)

(** Streaming aggregated gate count: the same memoized per-subroutine
    arithmetic as {!Gatecount.aggregate}, fed definitions as boxes close
    and call gates as they stream. *)
let gatecount () : Gatecount.summary t =
  let st = Gatecount.stream_create () in
  {
    on_inputs = Gatecount.stream_inputs st;
    on_gate = Gatecount.stream_gate st;
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit = Gatecount.stream_define st;
    finish =
      (fun outs -> Gatecount.stream_summary st ~outputs:(List.length outs));
  }

(** Streaming hierarchical depth (same convention as {!Depth.depth}:
    subroutine calls serialise as blocks of the callee's memoized depth). *)
let depth () : int t =
  let tr = Depth.tracker () in
  {
    on_inputs = Depth.track_inputs tr;
    on_gate = Depth.track_gate tr;
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit = Depth.track_define tr;
    finish = (fun _ -> Depth.tracked_depth tr);
  }

(** Streaming text printing, byte-identical to {!Printer.pp_bcircuit} on
    the materialized circuit: gate lines go out as gates stream,
    subroutine blocks are held (definitions only, not their call sites'
    expansions) and printed after the outputs line, in definition order. *)
let printer (ppf : Format.formatter) : unit t =
  let subs = ref [] (* reversed definition order *) in
  {
    on_inputs = Printer.pp_inputs ppf;
    on_gate = Printer.pp_gate_line ppf;
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit = (fun name sub -> subs := (name, sub) :: !subs);
    finish =
      (fun outs ->
        Printer.pp_outputs ppf outs;
        List.iter
          (fun (name, sub) -> Printer.pp_subroutine ppf name sub)
          (List.rev !subs);
        Format.pp_print_flush ppf ());
  }

(** Record the raw gate stream (tests; O(gates) memory, obviously). *)
let gates () : Gate.t list t =
  let acc = ref [] in
  {
    on_inputs = (fun _ -> ());
    on_gate = (fun g -> acc := g :: !acc);
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit = (fun _ _ -> ());
    finish = (fun _ -> List.rev !acc);
  }

(** Collect the subroutine namespace as definitions close, in definition
    order — enough to rebuild the non-main part of a [Circuit.b]. *)
let subroutines () : (Circuit.subroutine Circuit.Namespace.t * string list) t =
  let subs = ref Circuit.Namespace.empty in
  let order = ref [] in
  {
    on_inputs = (fun _ -> ());
    on_gate = (fun _ -> ());
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit =
      (fun name sub ->
        if not (Circuit.Namespace.mem name !subs) then order := name :: !order;
        subs := Circuit.Namespace.add name sub !subs);
    finish = (fun _ -> (!subs, List.rev !order));
  }

(** Rebuild a [Circuit.b] from the event stream: the collecting sink.
    Feeding a circuit through a sink transformer and into [circuit ()]
    materializes the transformed circuit (tests, and the non-streaming
    entry points of streaming transformers). O(gates) memory, of course. *)
let circuit () : Circuit.b t =
  let inputs = ref [] in
  let gates = Vec.create () in
  let subs = ref Circuit.Namespace.empty in
  let order = ref [] in
  {
    on_inputs = (fun es -> inputs := es);
    on_gate = (fun g -> Vec.push gates g);
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit =
      (fun name sub ->
        if not (Circuit.Namespace.mem name !subs) then order := name :: !order;
        subs := Circuit.Namespace.add name sub !subs);
    finish =
      (fun outs ->
        {
          Circuit.main =
            { Circuit.inputs = !inputs; gates = Vec.to_array gates; outputs = outs };
          subs = !subs;
          sub_order = List.rev !order;
        });
  }

(** Drive a sink from a materialized circuit: the same event sequence
    {!Circ.run_streaming} would produce for it — inputs first, then every
    subroutine definition in definition order (innermost-first, hence
    before any call gate naming it), then the main gates in order, then
    [finish] on the outputs. *)
let drive (b : Circuit.b) (s : 'r t) : 'r =
  s.on_inputs b.Circuit.main.Circuit.inputs;
  List.iter
    (fun name -> s.on_subroutine_exit name (Circuit.find_sub b name))
    b.Circuit.sub_order;
  Array.iter s.on_gate b.Circuit.main.Circuit.gates;
  s.finish b.Circuit.main.Circuit.outputs

(* ------------------------------------------------------------------ *)
(* Unboxing adapter                                                    *)

(** [unbox inner]: expand every [Subroutine] call gate into its body's
    gates before handing them to [inner], so [inner] sees the same flat
    gate sequence [Circuit.inline] would produce (up to the names of
    wires internal to calls, which are drawn from a private negative
    counter and so never collide with builder ids). Call controls are
    appended to every controllable body gate, inverse calls replay the
    reversed inverted body — the same expansion as
    [Circuit.inline_provenance]. Definitions are consumed, not
    forwarded: the inner sink sees a flat, subroutine-free stream. *)
let unbox (inner : 'r t) : 'r t =
  let defs : (string, Circuit.subroutine) Hashtbl.t = Hashtbl.create 16 in
  (* body preparation — in particular building the reversed inverted
     body — is O(body size), so it is memoized per (name, inv, body
     hash) rather than redone for each of the possibly thousands of
     call gates. The structural hash in the key (same discipline as
     Fuse's compiled-program cache) means a redefined name simply stops
     hitting the old entries — same-named bodies cannot alias. *)
  let prepared :
      ( string * bool * int64,
        Gate.t array * Wire.endpoint list * Wire.endpoint list )
      Hashtbl.t =
    Hashtbl.create 16
  in
  let hashes : (string, int64) Hashtbl.t = Hashtbl.create 16 in
  let body_hash name =
    let rec go n =
      match Hashtbl.find_opt hashes n with
      | Some h -> h
      | None ->
          Hashtbl.add hashes n 0L;
          let h =
            match Hashtbl.find_opt defs n with
            | None -> 0L
            | Some (s : Circuit.subroutine) ->
                Circuit.hash_t ~resolve:(fun m -> Some (go m)) s.Circuit.circ
          in
          Hashtbl.replace hashes n h;
          h
    in
    go name
  in
  let fresh = ref (-1) in
  let find name =
    match Hashtbl.find_opt defs name with
    | Some s -> s
    | None -> Errors.raise_ (Unknown_subroutine name)
  in
  let prepare name inv =
    match Hashtbl.find_opt prepared (name, inv, body_hash name) with
    | Some p -> p
    | None ->
        let { Circuit.circ; _ } = find name in
        let body =
          if inv then
            Array.of_list
              (Array.fold_left
                 (fun acc g ->
                   if Gate.is_comment g then acc else Gate.inverse g :: acc)
                 [] circ.Circuit.gates)
          else circ.Circuit.gates
        in
        let d_in = if inv then circ.Circuit.outputs else circ.Circuit.inputs in
        let d_out = if inv then circ.Circuit.inputs else circ.Circuit.outputs in
        let p = (body, d_in, d_out) in
        Hashtbl.replace prepared (name, inv, body_hash name) p;
        p
  in
  let rec expand (g : Gate.t) =
    match g with
    | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
        let body, d_in, d_out = prepare name inv in
        let map = Hashtbl.create 16 in
        List.iter2
          (fun (e : Wire.endpoint) a -> Hashtbl.replace map e.Wire.wire a)
          d_in inputs;
        List.iter2
          (fun (e : Wire.endpoint) a -> Hashtbl.replace map e.Wire.wire a)
          d_out outputs;
        let rename w =
          match Hashtbl.find_opt map w with
          | Some w' -> w'
          | None ->
              let w' = !fresh in
              decr fresh;
              Hashtbl.replace map w w';
              w'
        in
        Array.iter
          (fun g -> expand (Gate.add_controls controls (Gate.rename rename g)))
          body
    | g -> inner.on_gate g
  in
  {
    on_inputs = inner.on_inputs;
    on_gate = expand;
    on_subroutine_enter = (fun _ -> ());
    on_subroutine_exit =
      (fun name sub ->
        Hashtbl.replace defs name sub;
        (* this name's hash — and that of any box calling it — changes *)
        Hashtbl.reset hashes);
    finish = inner.finish;
  }
