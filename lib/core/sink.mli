(** Streaming circuit consumers: fold over the gate stream as it is
    emitted, instead of over a stored circuit.

    This recovers, in a strict language, what the paper gets from
    Haskell's laziness (§5.4): resource analyses and executions whose
    memory is independent of circuit size. A ['r t] packages the
    callbacks of one circuit-construction run — inputs, gates in
    emission order, subroutine-definition events — plus a [finish] run
    on the final outputs. Drive one with {!Circ.run_streaming}.

    Event order matches the buffering run: [on_inputs] once, then gates
    in the order the buffer would record them; [on_subroutine_exit name
    sub] fires when the body of box [name] has been captured, always
    before the first [Subroutine] call gate naming it, with nested
    definitions completing innermost-first (the order of
    [Circuit.b.sub_order]). *)

type 'r t = {
  on_inputs : Wire.endpoint list -> unit;
  on_gate : Gate.t -> unit;
  on_subroutine_enter : string -> unit;
  on_subroutine_exit : string -> Circuit.subroutine -> unit;
  finish : Wire.endpoint list -> 'r;
}

val make :
  ?on_inputs:(Wire.endpoint list -> unit) ->
  ?on_gate:(Gate.t -> unit) ->
  ?on_subroutine_enter:(string -> unit) ->
  ?on_subroutine_exit:(string -> Circuit.subroutine -> unit) ->
  finish:(Wire.endpoint list -> 'r) ->
  unit ->
  'r t
(** A sink from callbacks; omitted callbacks ignore their events. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val tee : 'a t -> 'b t -> ('a * 'b) t
(** Feed one generation pass to two sinks; [finish] runs left first. *)

val tee3 : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val gatecount : unit -> Gatecount.summary t
(** Streaming aggregated gate count, identical (including the peak-wires
    figure) to [Gatecount.summarize] of the materialized circuit. Uses
    the same memoized per-subroutine aggregation, so a call gate costs
    O(1) amortized regardless of the callee's size. *)

val depth : unit -> int t
(** Streaming hierarchical depth, identical to [Depth.depth] of the
    materialized circuit. *)

val printer : Format.formatter -> unit t
(** Streaming text output, byte-identical to [Printer.pp_bcircuit] of
    the materialized circuit. Gate lines stream; subroutine definition
    blocks are held and printed after the outputs line. The formatter is
    flushed by [finish]. *)

val gates : unit -> Gate.t list t
(** Record the raw gate stream (tests; O(gates) memory by design). *)

val subroutines :
  unit -> (Circuit.subroutine Circuit.Namespace.t * string list) t
(** Collect the subroutine namespace and definition order — the non-main
    part of a [Circuit.b]. *)

val circuit : unit -> Circuit.b t
(** The collecting sink: rebuild a [Circuit.b] from the event stream
    (inputs, gates, definitions in arrival order, outputs). Feeding a
    circuit through a sink transformer into [circuit ()] materializes the
    transformed circuit. O(gates) memory by design. *)

val drive : Circuit.b -> 'r t -> 'r
(** Replay a materialized circuit as the event stream
    {!Circ.run_streaming} would produce for it: [on_inputs], then every
    definition in [sub_order] (before any call gate naming it), then the
    main gates in order, then [finish] on the outputs.
    [drive b (circuit ())] rebuilds [b]. *)

val unbox : 'r t -> 'r t
(** Expand every [Subroutine] call gate into its body before handing
    gates to the inner sink, which therefore sees the flat gate sequence
    of [Circuit.inline] (wires internal to calls are renamed from a
    private negative counter, so they never collide with builder wire
    ids). Inverse calls replay the reversed inverted body; call controls
    attach to every controllable body gate. Definitions are consumed,
    not forwarded. Needed for sinks without hierarchical semantics —
    notably simulation. *)
