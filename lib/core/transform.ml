(** Generic circuit transformers (§3.4, §4.4.3).

    A transformer maps each gate to a replacement gate sequence; applying it
    to a boxed circuit rewrites the main circuit and every subroutine body,
    preserving the hierarchy. This is Quipper's mechanism for "replacing one
    elementary gate set by another" and for whole-circuit optimisation. The
    replacement sequence may allocate helper wires via the supplied
    allocator (needed e.g. when decomposing multiply-controlled gates with
    ancillas); any wire it allocates must be terminated within the
    replacement. *)

type alloc = Wire.ty -> Wire.t

(** A gate rewriter: given a fresh-wire allocator and a gate, produce the
    replacement sequence ([None] = keep unchanged, cheaper than [Some
    [g]]). *)
type rule = alloc -> Gate.t -> Gate.t list option

let apply_to_circuit (rule : rule) ~(fresh : int ref) (c : Circuit.t) : Circuit.t =
  let alloc ty =
    ignore ty;
    let w = !fresh in
    incr fresh;
    w
  in
  let out = Vec.create () in
  Array.iter
    (fun g ->
      match rule alloc g with
      | None -> Vec.push out g
      | Some gs -> List.iter (Vec.push out) gs)
    c.Circuit.gates;
  { c with Circuit.gates = Vec.to_array out }

(** Largest wire id mentioned anywhere in a boxed circuit, so the allocator
    can hand out non-colliding ids. *)
let max_wire (b : Circuit.b) : int =
  let m = ref (-1) in
  let scan_circuit (c : Circuit.t) =
    let bump w = if w > !m then m := w in
    List.iter (fun (e : Wire.endpoint) -> bump e.Wire.wire) c.Circuit.inputs;
    List.iter (fun (e : Wire.endpoint) -> bump e.Wire.wire) c.Circuit.outputs;
    Array.iter
      (fun g -> List.iter (fun (e : Wire.endpoint) -> bump e.Wire.wire) (Gate.wires g))
      c.Circuit.gates
  in
  scan_circuit b.main;
  Circuit.Namespace.iter (fun _ s -> scan_circuit s.Circuit.circ) b.subs;
  !m

let apply (rule : rule) (b : Circuit.b) : Circuit.b =
  let fresh = ref (max_wire b + 1) in
  let main = apply_to_circuit rule ~fresh b.main in
  let subs =
    Circuit.Namespace.map
      (fun (s : Circuit.subroutine) ->
        { s with Circuit.circ = apply_to_circuit rule ~fresh s.Circuit.circ })
      b.subs
  in
  { b with Circuit.main; subs }

(** Apply a whole-circuit function to the main circuit and every
    subroutine body — the hierarchical-application combinator shared by
    the peephole pass below and the optimizer subsystem's pass manager
    ([lib/opt]), whose passes need to see a whole [Circuit.t] (their
    rewrites look across gates) rather than one gate at a time. *)
let map_circuits (f : Circuit.t -> Circuit.t) (b : Circuit.b) : Circuit.b =
  {
    b with
    Circuit.main = f b.main;
    subs =
      Circuit.Namespace.map
        (fun (s : Circuit.subroutine) -> { s with Circuit.circ = f s.Circuit.circ })
        b.subs;
  }

(* ------------------------------------------------------------------ *)
(* Peephole optimisation                                               *)

let gates_cancel (a : Gate.t) (b : Gate.t) =
  match (a, b) with
  | Gate.Gate ga, Gate.Gate gb ->
      ga.name = gb.name && ga.targets = gb.targets && ga.controls = gb.controls
      && (if Gate.self_inverse ga.name then true else ga.inv <> gb.inv)
  | Gate.Rot ra, Gate.Rot rb ->
      ra.name = rb.name && ra.targets = rb.targets && ra.controls = rb.controls
      && ra.angle = rb.angle && ra.inv <> rb.inv
  | Gate.Subroutine sa, Gate.Subroutine sb ->
      (* a call followed by its inverse with matching wire flow *)
      sa.name = sb.name && sa.inv <> sb.inv && sa.controls = sb.controls
      && sa.outputs = sb.inputs && sa.inputs = sb.outputs
  | Gate.Init ia, Gate.Term tb ->
      (* a wire born and immediately terminated *)
      ia.wire = tb.wire && ia.value = tb.value && ia.ty = tb.ty
  | Gate.Term ta, Gate.Init ib ->
      (* termination then rebirth at the asserted value *)
      ta.wire = ib.wire && ta.value = ib.value && ta.ty = ib.ty
  | _ -> false

(** Cancel adjacent mutually-inverse gates until a fixed point: the paper's
    "whole-circuit optimizations" in its simplest useful form. Comments are
    transparent to cancellation but preserved. *)
let cancel_inverses_circuit (c : Circuit.t) : Circuit.t =
  (* one pass with a stack; iterate to fixed point *)
  let rec pass gates =
    let stack = ref [] in
    let changed = ref false in
    Array.iter
      (fun g ->
        match g with
        | Gate.Comment _ -> stack := g :: !stack
        | g -> (
            (* look at the top non-comment entry *)
            let rec top_split acc = function
              | Gate.Comment _ as cmt :: tl -> top_split (cmt :: acc) tl
              | x :: tl -> Some (List.rev acc, x, tl)
              | [] -> None
            in
            match top_split [] !stack with
            | Some (comments, prev, rest) when gates_cancel prev g ->
                changed := true;
                stack := List.rev_append (List.rev comments) rest
            | _ -> stack := g :: !stack))
      gates;
    let gates' = Array.of_list (List.rev !stack) in
    if !changed then pass gates' else gates'
  in
  { c with Circuit.gates = pass c.Circuit.gates }

let cancel_inverses (b : Circuit.b) : Circuit.b =
  map_circuits cancel_inverses_circuit b

(* ------------------------------------------------------------------ *)
(* Inline all boxes (a transformer in its own right)                   *)

let inline = Circuit.inline
