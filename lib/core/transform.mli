(** Generic circuit transformers (paper §3.4, §4.4.3): rewrite every gate
    of a hierarchical circuit — main and subroutine bodies alike — through
    a replacement rule, preserving the box structure. This is Quipper's
    mechanism for "replacing one elementary gate set by another" (see
    {!Decompose}) and for whole-circuit optimisation. *)

type alloc = Wire.ty -> Wire.t
(** Fresh-wire allocator handed to rules (for decompositions that need
    ancillas); any wire a replacement allocates must be terminated within
    the replacement. *)

type rule = alloc -> Gate.t -> Gate.t list option
(** [None] = keep the gate unchanged (cheaper than [Some [g]]). *)

val apply : rule -> Circuit.b -> Circuit.b

val apply_to_circuit : rule -> fresh:int ref -> Circuit.t -> Circuit.t

val max_wire : Circuit.b -> int
(** Largest wire id mentioned anywhere (so allocators can avoid
    collisions). *)

val map_circuits : (Circuit.t -> Circuit.t) -> Circuit.b -> Circuit.b
(** Apply a whole-circuit function to the main circuit and every
    subroutine body — how the optimizer pass manager ([lib/opt]) applies
    its passes hierarchically. The function must preserve each circuit's
    input/output arity. *)

val gates_cancel : Gate.t -> Gate.t -> bool
(** Are these adjacent gates mutual inverses on identical wires? Covers
    named gates, rotations, subroutine call/uncall pairs, and
    init/term pairs at the same value. *)

val cancel_inverses_circuit : Circuit.t -> Circuit.t
(** Cancel adjacent mutually-inverse gates to a fixed point; comments are
    transparent to cancellation but preserved. *)

val cancel_inverses : Circuit.b -> Circuit.b
(** The paper's "whole-circuit optimizations" in their simplest useful
    form, applied hierarchically. *)

val inline : Circuit.b -> Circuit.t
(** Alias of {!Circuit.inline}: flattening is itself a transformer. *)
