(** Symbolic resource estimation: per-box resource vectors combined over
    call multiplicities, repetitions, controls and inverses — see the
    interface for the exactness contract. The accumulation core mirrors
    [Gatecount]'s recursion gate for gate (same memoization structure,
    same ambient-control and inversion semantics, same peak-wires step
    function) so the small-instance projection is bit-identical to the
    exact streamed counts; the differences are the {!Wide} accumulators,
    the refined {!Xkey} (quantum vs classical controls, which
    [Decompose] distinguishes), and the representative gate kept per key
    so [in_base] can expand one exemplar per kind. *)

open Quipper

module Xkey = struct
  type t = {
    kind : string;
    inverted : bool;
    arity : int;
    qpos : int;
    qneg : int;
    cpos : int;
    cneg : int;
    csig : (Wire.ty * bool) list;
        (** the {e ordered} control signature (type, sign). The four
            counts above are its tallies, kept for cheap projection —
            but the order itself must be part of the key: multi-control
            decomposition pairs controls in order, so two gates whose
            controls agree as multisets but not as sequences can
            decompose to different sign-multisets. *)
  }

  let compare = Stdlib.compare

  let to_key (x : t) : Gatecount.key =
    {
      Gatecount.kind = x.kind;
      inverted = x.inverted;
      pos_controls = x.qpos + x.cpos;
      neg_controls = x.qneg + x.cneg;
    }

  let pp ppf x =
    Fmt.pf ppf "%a{q%d+%d c%d+%d}" Gatecount.pp_key (to_key x) x.qpos x.qneg
      x.cpos x.cneg
end

module Xmap = Map.Make (Xkey)

type vec = {
  counts : Wide.t Xmap.t;
  reps : Gate.t Xmap.t;  (** one representative gate per key *)
  in_arity : int;
  out_arity : int;
  peak : int;
  depth : Wide.t;
}

type t = vec

(* ------------------------------------------------------------------ *)
(* Keys and count maps                                                 *)

let split4 (cs : Gate.control list) =
  List.fold_left
    (fun (qp, qn, cp, cn) (c : Gate.control) ->
      match (c.Gate.cty, c.Gate.positive) with
      | Wire.Q, true -> (qp + 1, qn, cp, cn)
      | Wire.Q, false -> (qp, qn + 1, cp, cn)
      | Wire.C, true -> (qp, qn, cp + 1, cn)
      | Wire.C, false -> (qp, qn, cp, cn + 1))
    (0, 0, 0, 0) cs

(* [Gatecount.key_of_gate] supplies the canonical kind and inversion
   bit, so the projection to plain keys agrees with the exact counter by
   construction; the control split and target arity are refined here. *)
let xkey_of_gate (g : Gate.t) : Xkey.t option =
  match Gatecount.key_of_gate g with
  | None -> None
  | Some k ->
      let cs = Gate.controls g in
      let qp, qn, cp, cn = split4 cs in
      Some
        {
          Xkey.kind = k.Gatecount.kind;
          inverted = k.Gatecount.inverted;
          arity = List.length (Gate.targets g);
          qpos = qp;
          qneg = qn;
          cpos = cp;
          cneg = cn;
          csig = List.map (fun (c : Gate.control) -> (c.Gate.cty, c.Gate.positive)) cs;
        }

let madd (x : Xkey.t) (w : Wide.t) m =
  Xmap.update x (function None -> Some w | Some v -> Some (Wide.add v w)) m

let merge_counts sub acc = Xmap.fold madd sub acc
let merge_reps sub acc = Xmap.union (fun _ a _ -> Some a) sub acc

let max_wire_of (g : Gate.t) =
  List.fold_left
    (fun m (e : Wire.endpoint) -> max m e.Wire.wire)
    0 (Gate.wires g)

(* A representative gate for a key shifted by ambient controls: the same
   gate with that many fresh controls attached, on wires guaranteed
   disjoint from the gate's own. *)
(* The control-signature block ambient controls append (the same order
   [rep_with_ambient] materializes them in: [Gate.add_controls] puts new
   controls after the gate's own). *)
let amb_csig ((qp, qn, cp, cn) : int * int * int * int) =
  List.concat
    [
      List.init qp (fun _ -> (Wire.Q, true));
      List.init qn (fun _ -> (Wire.Q, false));
      List.init cp (fun _ -> (Wire.C, true));
      List.init cn (fun _ -> (Wire.C, false));
    ]

let rep_with_ambient ((qp, qn, cp, cn) : int * int * int * int) (g : Gate.t) :
    Gate.t =
  let next = ref (1 + max_wire_of g) in
  let mk cty positive =
    let w = !next in
    incr next;
    { Gate.cwire = w; cty; positive }
  in
  let cs =
    List.concat
      [
        List.init qp (fun _ -> mk Wire.Q true);
        List.init qn (fun _ -> mk Wire.Q false);
        List.init cp (fun _ -> mk Wire.C true);
        List.init cn (fun _ -> mk Wire.C false);
      ]
  in
  Gate.add_controls cs g

(* ------------------------------------------------------------------ *)
(* Inversion, mirroring [Gatecount.invert_counts] plus representative
   maintenance                                                         *)

let invert_kind = function
  | "Init0" -> Some "Term0"
  | "Init1" -> Some "Term1"
  | "Term0" -> Some "Init0"
  | "Term1" -> Some "Init1"
  | "CInit0" -> Some "CTerm0"
  | "CInit1" -> Some "CTerm1"
  | "CTerm0" -> Some "CInit0"
  | "CTerm1" -> Some "CInit1"
  | _ -> None

let invert_xkey (x : Xkey.t) : Xkey.t =
  match invert_kind x.Xkey.kind with
  | Some kind -> { x with Xkey.kind }
  | None ->
      if x.Xkey.kind = "Not" || Gate.self_inverse x.Xkey.kind then x
      else { x with Xkey.inverted = not x.Xkey.inverted }

let irep (g : Gate.t) = try Gate.inverse g with _ -> g

let invert_xcounts (counts, reps) =
  Xmap.fold
    (fun x w (c, r) ->
      let x' = invert_xkey x in
      let c = madd x' w c in
      let r =
        match Xmap.find_opt x reps with
        | Some g when not (Xmap.mem x' r) -> Xmap.add x' (irep g) r
        | _ -> r
      in
      (c, r))
    counts (Xmap.empty, Xmap.empty)

(* ------------------------------------------------------------------ *)
(* The aggregation engine (the [Gatecount.count_gate] recursion with
   Wide counts, split-control ambient signatures and representatives)   *)

type amb = int * int * int * int

type env = {
  find : string -> Circuit.subroutine;
  cmemo : (string * amb, Wide.t Xmap.t * Gate.t Xmap.t) Hashtbl.t;
  dmemo : (string, Wide.t) Hashtbl.t;  (** per-box depth bound *)
  pmemo : (string, int) Hashtbl.t;  (** per-box peak wires *)
}

let env_of_find find =
  {
    find;
    cmemo = Hashtbl.create 16;
    dmemo = Hashtbl.create 16;
    pmemo = Hashtbl.create 16;
  }

let rec xcount_gate env ~(amb : amb) ((counts, reps) as acc) (g : Gate.t) =
  match g with
  | Gate.Comment _ -> acc
  | Gate.Subroutine { name; inv; controls; _ } ->
      let qp0, qn0, cp0, cn0 = amb in
      let qp, qn, cp, cn = split4 controls in
      let sc, sr =
        xcounts_of_sub env name ~amb:(qp0 + qp, qn0 + qn, cp0 + cp, cn0 + cn)
      in
      let sc, sr = if inv then invert_xcounts (sc, sr) else (sc, sr) in
      (merge_counts sc counts, merge_reps sr reps)
  | g -> (
      match xkey_of_gate g with
      | None -> acc
      | Some x ->
          let qp, qn, cp, cn = amb in
          let x, rep =
            if
              qp + qn + cp + cn > 0
              && Gate.controllability g = Gate.Controllable
            then
              ( {
                  x with
                  Xkey.qpos = x.Xkey.qpos + qp;
                  qneg = x.Xkey.qneg + qn;
                  cpos = x.Xkey.cpos + cp;
                  cneg = x.Xkey.cneg + cn;
                  csig = x.Xkey.csig @ amb_csig amb;
                },
                lazy (rep_with_ambient amb g) )
            else (x, lazy g)
          in
          let reps =
            if Xmap.mem x reps then reps else Xmap.add x (Lazy.force rep) reps
          in
          (madd x Wide.one counts, reps))

and xcounts_of_circuit env ~amb (c : Circuit.t) =
  Array.fold_left (xcount_gate env ~amb) (Xmap.empty, Xmap.empty)
    c.Circuit.gates

and xcounts_of_sub env name ~amb =
  match Hashtbl.find_opt env.cmemo (name, amb) with
  | Some v -> v
  | None ->
      let sub : Circuit.subroutine = env.find name in
      let v = xcounts_of_circuit env ~amb sub.Circuit.circ in
      Hashtbl.replace env.cmemo (name, amb) v;
      v

(* Depth: the [Depth.advance_gate] per-wire clock with Wide times, so
   symbolic depth bounds survive multiplication far past native ints.
   Ambient controls do not change a call's advance (as in [Depth]). *)
let wide_advance ~(sub_depth : string -> Wide.t)
    (time : (Wire.t, Wide.t) Hashtbl.t) (g : Gate.t) : Wide.t =
  let get w =
    match Hashtbl.find_opt time w with Some t -> t | None -> Wide.zero
  in
  let advance wires dt =
    let t =
      Wide.add
        (List.fold_left (fun acc w -> Wide.max_ acc (get w)) Wide.zero wires)
        dt
    in
    List.iter (fun w -> Hashtbl.replace time w t) wires;
    t
  in
  match g with
  | Gate.Comment _ -> Wide.zero
  | Gate.Subroutine { name; inputs; outputs; controls; _ } ->
      let wires =
        inputs @ outputs
        @ List.map (fun (k : Gate.control) -> k.Gate.cwire) controls
      in
      advance (List.sort_uniq Stdlib.compare wires) (sub_depth name)
  | g ->
      advance
        (List.map (fun (e : Wire.endpoint) -> e.Wire.wire) (Gate.wires g))
        Wide.one

let rec wdepth_of_sub env name : Wide.t =
  match Hashtbl.find_opt env.dmemo name with
  | Some d -> d
  | None ->
      let sub : Circuit.subroutine = env.find name in
      let d = wdepth_of_circuit env sub.Circuit.circ in
      Hashtbl.replace env.dmemo name d;
      d

and wdepth_of_circuit env (c : Circuit.t) : Wide.t =
  let time : (Wire.t, Wide.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Wire.endpoint) -> Hashtbl.replace time e.Wire.wire Wide.zero)
    c.Circuit.inputs;
  Array.fold_left
    (fun acc g ->
      Wide.max_ acc (wide_advance ~sub_depth:(wdepth_of_sub env) time g))
    Wide.zero c.Circuit.gates

(* Peak wires: exactly [Gatecount.peak_step], with this module's own
   per-box memo. *)
let rec xpeak_of_sub env name : int =
  match Hashtbl.find_opt env.pmemo name with
  | Some p -> p
  | None ->
      let sub : Circuit.subroutine = env.find name in
      let c = sub.Circuit.circ in
      let start = List.length c.Circuit.inputs in
      let p =
        snd
          (Array.fold_left
             (Gatecount.peak_step ~sub_peak:(xpeak_of_sub env))
             (start, start) c.Circuit.gates)
      in
      Hashtbl.replace env.pmemo name p;
      p

(* ------------------------------------------------------------------ *)
(* Deriving vectors                                                    *)

let of_circuit (b : Circuit.b) : t =
  let env = env_of_find (Circuit.find_sub b) in
  let counts, reps = xcounts_of_circuit env ~amb:(0, 0, 0, 0) b.Circuit.main in
  let in_arity = List.length b.Circuit.main.Circuit.inputs in
  let _, peak =
    Array.fold_left
      (Gatecount.peak_step ~sub_peak:(xpeak_of_sub env))
      (in_arity, in_arity) b.Circuit.main.Circuit.gates
  in
  {
    counts;
    reps;
    in_arity;
    out_arity = List.length b.Circuit.main.Circuit.outputs;
    peak;
    depth = wdepth_of_circuit env b.Circuit.main;
  }

let sink () : t Sink.t =
  let defs : (string, Circuit.subroutine) Hashtbl.t = Hashtbl.create 16 in
  let find name =
    match Hashtbl.find_opt defs name with
    | Some s -> s
    | None -> Errors.raise_ (Errors.Unknown_subroutine name)
  in
  let env = env_of_find find in
  let counts = ref Xmap.empty and reps = ref Xmap.empty in
  let live = ref 0 and peak = ref 0 and in_arity = ref 0 in
  let time : (Wire.t, Wide.t) Hashtbl.t = Hashtbl.create 64 in
  let depth = ref Wide.zero in
  Sink.make
    ~on_inputs:(fun es ->
      let n = List.length es in
      in_arity := !in_arity + n;
      live := !live + n;
      if !live > !peak then peak := !live;
      List.iter
        (fun (e : Wire.endpoint) -> Hashtbl.replace time e.Wire.wire Wide.zero)
        es)
    ~on_gate:(fun g ->
      let c, r = xcount_gate env ~amb:(0, 0, 0, 0) (!counts, !reps) g in
      counts := c;
      reps := r;
      let l, p =
        Gatecount.peak_step ~sub_peak:(xpeak_of_sub env) (!live, !peak) g
      in
      live := l;
      peak := p;
      let t = wide_advance ~sub_depth:(wdepth_of_sub env) time g in
      if Wide.compare t !depth > 0 then depth := t)
    ~on_subroutine_exit:(fun name sub -> Hashtbl.replace defs name sub)
    ~finish:(fun outs ->
      {
        counts = !counts;
        reps = !reps;
        in_arity = !in_arity;
        out_arity = List.length outs;
        peak = !peak;
        depth = !depth;
      })
    ()

let of_circ ~in_ f = fst (Circ.run_streaming ~in_ f (sink ()))
let of_circ_unit c = fst (Circ.run_streaming_unit c (sink ()))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let in_arity v = v.in_arity
let out_arity v = v.out_arity
let peak_wires v = v.peak
let depth_bound v = v.depth

let total v = Xmap.fold (fun _ w acc -> Wide.add acc w) v.counts Wide.zero

let to_counts v : Wide.t Gatecount.Counts.t =
  Xmap.fold
    (fun x w m ->
      Gatecount.Counts.update (Xkey.to_key x)
        (function None -> Some w | Some u -> Some (Wide.add u w))
        m)
    v.counts Gatecount.Counts.empty

let counts v = Gatecount.Counts.bindings (to_counts v)
let xcounts v = Xmap.bindings v.counts

let total_logical v =
  Xmap.fold
    (fun x w acc ->
      if Gatecount.is_io_kind (Xkey.to_key x) then acc else Wide.add acc w)
    v.counts Wide.zero

let t_count v =
  Xmap.fold
    (fun (x : Xkey.t) w acc ->
      if
        x.Xkey.kind = "T"
        && x.Xkey.qpos + x.Xkey.qneg + x.Xkey.cpos + x.Xkey.cneg = 0
      then Wide.add acc w
      else acc)
    v.counts Wide.zero

let find_kind v kind =
  Xmap.fold
    (fun (x : Xkey.t) w acc ->
      if x.Xkey.kind = kind then Wide.add acc w else acc)
    v.counts Wide.zero

let get v k =
  match Gatecount.Counts.find_opt k (to_counts v) with
  | Some w -> w
  | None -> Wide.zero

let all_classes =
  [
    Gatecount.Clifford;
    Gatecount.T;
    Gatecount.Rotation;
    Gatecount.Structural;
    Gatecount.Classical;
    Gatecount.Other;
  ]

let by_class v =
  let totals =
    Xmap.fold
      (fun x w acc ->
        let c = Gatecount.class_of_key (Xkey.to_key x) in
        (c, w) :: acc)
      v.counts []
  in
  List.map
    (fun c ->
      ( c,
        List.fold_left
          (fun acc (c', w) -> if c' = c then Wide.add acc w else acc)
          Wide.zero totals ))
    all_classes

let equal a b =
  Xmap.equal Wide.equal a.counts b.counts
  && a.in_arity = b.in_arity && a.out_arity = b.out_arity && a.peak = b.peak
  && Wide.equal a.depth b.depth

let agrees v (s : Gatecount.summary) =
  let proj = to_counts v in
  Gatecount.Counts.cardinal proj = Gatecount.Counts.cardinal s.Gatecount.counts
  && Gatecount.Counts.for_all
       (fun k w -> Wide.equal_int w (Gatecount.get s.Gatecount.counts k))
       proj
  && Wide.equal_int (total v) s.Gatecount.total
  && Wide.equal_int (total_logical v) s.Gatecount.total_logical
  && v.in_arity = s.Gatecount.inputs
  && v.out_arity = s.Gatecount.outputs
  && v.peak = s.Gatecount.qubits

let pp_summary ppf v =
  (* the [Gatecount.pp_summary] block first (same field order, decimal
     counts of any width), then the symbolic-only lines *)
  Fmt.pf ppf "Aggregated gate count:@\n";
  Gatecount.Counts.iter
    (fun k w -> Fmt.pf ppf "%a: %a@\n" Wide.pp w Gatecount.pp_key k)
    (to_counts v);
  Fmt.pf ppf "Total gates: %a@\n" Wide.pp (total v);
  Fmt.pf ppf "Inputs: %d@\n" v.in_arity;
  Fmt.pf ppf "Outputs: %d@\n" v.out_arity;
  Fmt.pf ppf "Qubits in circuit: %d@\n" v.peak;
  Fmt.pf ppf "Depth bound: %a@\n" Wide.pp v.depth;
  Fmt.pf ppf "T-count: %a@\n" Wide.pp (t_count v);
  Fmt.pf ppf "Logical gates: %a@\n" Wide.pp (total_logical v);
  Fmt.pf ppf "By class:";
  List.iter
    (fun (c, w) ->
      if not (Wide.is_zero w) then
        Fmt.pf ppf " %s %a" (Gatecount.klass_name c) Wide.pp w)
    (by_class v);
  Fmt.pf ppf "@\n"

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)

let seq a b =
  if a.out_arity <> b.in_arity then
    invalid_arg
      (Printf.sprintf "Estimate.seq: arity mismatch (%d outputs vs %d inputs)"
         a.out_arity b.in_arity);
  {
    counts = merge_counts b.counts a.counts;
    reps = merge_reps b.reps a.reps;
    in_arity = a.in_arity;
    out_arity = b.out_arity;
    (* at the seam exactly [a.out_arity = b.in_arity] wires are live —
       the baseline both peaks are measured from — so the combined peak
       is the max, the same reach argument as [Gatecount.peak_step] *)
    peak = max a.peak b.peak;
    depth = Wide.add a.depth b.depth;
  }

let repeat n v =
  if n < 0 then invalid_arg "Estimate.repeat: negative count";
  if v.in_arity <> v.out_arity then
    invalid_arg
      (Printf.sprintf
         "Estimate.repeat: input arity %d <> output arity %d (the block must \
          be arity-preserving to iterate)"
         v.in_arity v.out_arity);
  if n = 0 then
    {
      v with
      counts = Xmap.empty;
      reps = Xmap.empty;
      depth = Wide.zero;
      peak = v.in_arity;
    }
  else
    {
      v with
      counts = Xmap.map (fun w -> Wide.mul_int w n) v.counts;
      depth = Wide.mul_int v.depth n;
    }

let inverse v =
  let counts, reps = invert_xcounts (v.counts, v.reps) in
  {
    counts;
    reps;
    in_arity = v.out_arity;
    out_arity = v.in_arity;
    peak = v.peak;
    depth = v.depth;
  }

let controlled ?(pos = 0) ?(neg = 0) v =
  if pos < 0 || neg < 0 then
    invalid_arg "Estimate.controlled: negative control count";
  if pos + neg = 0 then v
  else begin
    let amb = (pos, neg, 0, 0) in
    let counts, reps =
      Xmap.fold
        (fun x w (c, r) ->
          let rep = Xmap.find_opt x v.reps in
          match rep with
          | Some g when Gate.controllability g = Gate.Controllable ->
              let x' =
                {
                  x with
                  Xkey.qpos = x.Xkey.qpos + pos;
                  qneg = x.Xkey.qneg + neg;
                  csig = x.Xkey.csig @ amb_csig amb;
                }
              in
              let c = madd x' w c in
              let r =
                if Xmap.mem x' r then r
                else Xmap.add x' (rep_with_ambient amb g) r
              in
              (c, r)
          | Some g ->
              (madd x w c, if Xmap.mem x r then r else Xmap.add x g r)
          | None -> (madd x w c, r))
        v.counts (Xmap.empty, Xmap.empty)
    in
    let v' = { v with counts; reps } in
    (* controls serialize every gate they attach to, so the only sound
       cheap depth bound for the controlled block is its gate total *)
    { v' with depth = Wide.max_ v.depth (total v') }
  end

(* One gate kind's expansion into a base: the gadget's keyed gates, its
   own scheduled depth, and its ancilla overhead beyond the wires the
   gate already touches. *)
let gadget_stats base (rep : Gate.t) :
    [ `Identity | `Gadget of (Xkey.t * Gate.t) list * int * int ] =
  let alloc =
    let next = ref (1 + max_wire_of rep) in
    fun (_ : Wire.ty) ->
      let w = !next in
      incr next;
      w
  in
  match Decompose.expand base ~alloc rep with
  | [ g ] when g == rep -> `Identity
  | gs ->
      let keyed =
        List.filter_map
          (fun g -> Option.map (fun x -> (x, g)) (xkey_of_gate g))
          gs
      in
      (* gadget depth: flat per-wire clocks (gadgets contain no calls) *)
      let time : (Wire.t, int) Hashtbl.t = Hashtbl.create 16 in
      let depth =
        List.fold_left
          (fun acc g ->
            match g with
            | Gate.Comment _ -> acc
            | g ->
                let wires =
                  List.map
                    (fun (e : Wire.endpoint) -> e.Wire.wire)
                    (Gate.wires g)
                in
                let t =
                  1
                  + List.fold_left
                      (fun m w ->
                        max m
                          (Option.value (Hashtbl.find_opt time w) ~default:0))
                      0 wires
                in
                List.iter (fun w -> Hashtbl.replace time w t) wires;
                max acc t)
          0 gs
      in
      (* only unitary gates decompose, so every wire [rep] touches is
         live before it fires: ancilla overhead = gadget peak - that *)
      let live0 =
        List.length
          (List.sort_uniq Stdlib.compare
             (List.map (fun (e : Wire.endpoint) -> e.Wire.wire)
                (Gate.wires rep)))
      in
      let _, peakg =
        List.fold_left
          (Gatecount.peak_step ~sub_peak:(fun _ -> 0))
          (live0, live0) gs
      in
      `Gadget (keyed, max 1 depth, max 0 (peakg - live0))

let in_base base v =
  let counts, reps, maxd, maxe =
    Xmap.fold
      (fun x w (cacc, racc, maxd, maxe) ->
        if Wide.is_zero w then (cacc, racc, maxd, maxe)
        else
          match Xmap.find_opt x v.reps with
          | None -> (madd x w cacc, racc, maxd, maxe)
          | Some rep -> (
              match gadget_stats base rep with
              | `Identity ->
                  ( madd x w cacc,
                    (if Xmap.mem x racc then racc else Xmap.add x rep racc),
                    maxd,
                    maxe )
              | `Gadget (keyed, d, e) ->
                  let cacc, racc =
                    List.fold_left
                      (fun (c, r) (k, g) ->
                        ( madd k w c,
                          if Xmap.mem k r then r else Xmap.add k g r ))
                      (cacc, racc) keyed
                  in
                  (cacc, racc, max maxd d, max maxe e)))
      v.counts
      (Xmap.empty, Xmap.empty, 1, 0)
  in
  {
    counts;
    reps;
    in_arity = v.in_arity;
    out_arity = v.out_arity;
    peak = v.peak + maxe;
    depth = Wide.mul_int v.depth maxd;
  }
