(** Symbolic resource estimation over the subroutine tree.

    The streaming counters (PR 4) made circuit size independent of RAM,
    but they still visit every top-level gate: a flat 10^12-gate
    instance takes 10^12 sink callbacks. This module closes the gap to
    the paper's scalability claim (§5.4) and to the resource-estimation
    literature (arXiv:1412.0625): derive, once, a {e resource vector}
    for each piece of a program — gate counts by kind and class,
    T-count, a depth bound, peak wires — then combine vectors across
    call multiplicities, repetitions, controls and inverses without
    expanding anything. Accumulators are arbitrary-precision ({!Wide}),
    so quoted totals never silently wrap however far the parameters are
    pushed.

    Exactness contract, differentially validated against the exact
    streamed {!Gatecount}/{!Depth} in [test_estimate]:

    - gate counts, T-count and peak wires are {e exact} — [of_circuit]
      equals [Gatecount.summarize] key for key, and [seq]/[repeat]
      preserve that equality (each repetition emits the same gate
      multiset);
    - [depth_bound] is an {e upper bound} on the exact scheduled depth
      ([Depth.depth] of the inlined circuit), equal to the hierarchical
      [Depth.depth] on the same circuit, and exact on flat circuits;
    - [in_base] is exact for counts whenever no controls cross box
      boundaries (ambient controls do not commute with decomposition),
      which the property corpus asserts against
      [Decompose.decompose_generic]; its depth/width are documented
      bounds (max gadget depth / max gadget ancilla overhead). *)

open Quipper

(** Count keys, refined from {!Gatecount.key}: decomposition treats
    quantum and classical controls differently (classical controls are
    never decomposed), so the symbolic estimator keys counts on the full
    control signature and projects down to [Gatecount.key] for
    comparisons and printing. *)
module Xkey : sig
  type t = {
    kind : string;  (** canonical kind, as in {!Gatecount.key} *)
    inverted : bool;
    arity : int;  (** quantum targets *)
    qpos : int;
    qneg : int;  (** quantum controls by sign *)
    cpos : int;
    cneg : int;  (** classical controls by sign *)
    csig : (Wire.ty * bool) list;
        (** the ordered control signature (type, sign) — the four counts
            are its tallies. Order is part of the key because
            multi-control decomposition pairs controls in sequence:
            same-multiset, different-order control lists can decompose
            to different sign-multisets, and [in_base] scales one
            representative's gadget by the key's multiplicity. *)
  }

  val compare : t -> t -> int

  val to_key : t -> Gatecount.key
  (** Forget the quantum/classical split. *)

  val pp : Format.formatter -> t -> unit
end

module Xmap : Map.S with type key = Xkey.t

type t
(** A resource vector: per-kind {!Wide} gate counts, input/output
    arities, peak simultaneously-live wires, and a {!Wide} depth
    bound. *)

(** {1 Deriving vectors} *)

val of_circuit : Circuit.b -> t
(** The vector of a materialized boxed circuit — the symbolic analogue
    of [Gatecount.summarize] plus [Depth.depth], computed by the same
    product-over-the-call-tree recursion (memoized per subroutine and
    ambient-control signature), never by expansion. *)

val sink : unit -> t Sink.t
(** A streaming consumer ({!Circ.run_streaming}): hierarchical like the
    gatecount sink — subroutine call gates cost O(1) amortized, bodies
    are never unboxed. Memory is bounded by distinct gate kinds plus the
    namespace. *)

val of_circ : in_:('b, 'q, 'c) Qdata.t -> ('q -> 'r Circ.t) -> t
(** Run a circuit-producing function through {!sink}. *)

val of_circ_unit : 'r Circ.t -> t

(** {1 Combining vectors}

    The compositional layer (the indexed-monads framing of
    arXiv:2511.22419): algorithm = prologue ; step^n ; epilogue, with
    the step derived once and multiplied symbolically. *)

val seq : t -> t -> t
(** Sequential composition; raises [Invalid_argument] unless the left
    output arity equals the right input arity. Counts and peak are
    exact; depth adds (a bound — chains need not align across the
    seam). *)

val repeat : int -> t -> t
(** [repeat n v]: [n] sequential repetitions of [v] ([n >= 0]; requires
    equal input and output arity). Counts scale exactly by [n] — every
    iteration emits the same gate multiset whatever its wire ids —
    peak is unchanged, depth multiplies (a bound). *)

val inverse : t -> t
(** The vector of the reversed circuit: Init/Term kinds swap, [inv]
    bits flip (except self-inverse kinds), arities swap — exactly
    {!Gatecount.invert_counts} lifted to {!Wide}. *)

val controlled : ?pos:int -> ?neg:int -> t -> t
(** The vector of the same block called under [pos] positive and [neg]
    negative ambient quantum controls: the controls attach to every
    controllable gate (control-neutral inits/terms pass through), as in
    [Gatecount.aggregate] of a controlled call. The control wires
    belong to the enclosing context and are not added to this vector's
    arities or peak; the depth bound degrades to the total gate count
    (controls serialize everything they touch). *)

val in_base : Decompose.base -> t -> t
(** Re-quote the vector in a target gate base by applying
    {!Decompose.expand} once per gate kind as a counts transfer
    function — e.g. the exact Toffoli -> 5 two-qubit-gate Barenco
    factor — exact for counts when no controls cross box boundaries.
    Depth multiplies by the deepest gadget; peak grows by the largest
    gadget ancilla overhead (both sound bounds). *)

(** {1 Reading vectors} *)

val in_arity : t -> int
val out_arity : t -> int

val peak_wires : t -> int
(** "Qubits in circuit": peak simultaneously-live wires. *)

val depth_bound : t -> Wide.t

val total : t -> Wide.t
(** Total gates, inits/terms/measures included ("Total gates"). *)

val total_logical : t -> Wide.t
(** Total excluding initialisation/termination/measurement. *)

val t_count : t -> Wide.t
(** Uncontrolled T and T* gates (each costs one magic state). *)

val find_kind : t -> string -> Wide.t
val get : t -> Gatecount.key -> Wide.t

val counts : t -> (Gatecount.key * Wide.t) list
(** Projected counts in {!Gatecount.Key} order. *)

val xcounts : t -> (Xkey.t * Wide.t) list

val by_class : t -> (Gatecount.klass * Wide.t) list
(** Counts rolled up by {!Gatecount.class_of_key}, every class listed. *)

val equal : t -> t -> bool
(** Same counts, arities, peak and depth (representative gates are
    ignored — they are an implementation detail of [in_base]). *)

val agrees : t -> Gatecount.summary -> bool
(** Bit-identical to an exact summary: projected counts equal key for
    key, and total/inputs/outputs/qubits match. The differential
    acceptance check of the whole module. *)

val pp_summary : Format.formatter -> t -> unit
(** The [Gatecount.pp_summary] block (same field order, counts printed
    in full decimal however wide) followed by the symbolic-only lines:
    depth bound, T-count, logical total, by-class rollup. *)
