(** Arbitrary-precision naturals: little-endian limbs in base 10^9.

    Base 10^9 keeps every limb-by-limb product plus carry strictly under
    2^62, so all arithmetic stays in native ints, and decimal printing
    is one [%09d] per limb. The representation is canonical: no trailing
    zero limbs, and zero is the empty array — which makes structural
    [compare] on the arrays usable after a length check. *)

type t = int array (* little-endian, base [limb_base], no trailing zeros *)

let limb_base = 1_000_000_000

let zero : t = [||]
let one : t = [| 1 |]

let is_zero (t : t) = Array.length t = 0

let of_int n : t =
  if n < 0 then invalid_arg "Wide.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs acc n = if n = 0 then acc else limbs (n mod limb_base :: acc) (n / limb_base) in
    let l = limbs [] n in
    Array.of_list (List.rev l)
  end

let to_int_opt (t : t) : int option =
  (* fold from the most significant limb, watching for overflow *)
  let exception Too_big in
  try
    Some
      (Array.fold_right
         (fun limb acc ->
           if acc > (max_int - limb) / limb_base then raise Too_big
           else (acc * limb_base) + limb)
         t 0)
  with Too_big -> None

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0
let equal_int t n = n >= 0 && equal t (of_int n)
let max_ a b = if compare a b >= 0 then a else b

let normalize (a : int array) : t =
  let l = ref (Array.length a) in
  while !l > 0 && a.(!l - 1) = 0 do
    decr l
  done;
  if !l = Array.length a then a else Array.sub a 0 !l

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s mod limb_base;
    carry := s / limb_base
  done;
  normalize r

let succ t = add t one

let mul (a : t) (b : t) : t =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- v mod limb_base;
        carry := v / limb_base
      done;
      (* the final carry can exceed one limb only transiently; propagate *)
      let k = ref (i + lb) in
      while !carry > 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v mod limb_base;
        carry := v / limb_base;
        incr k
      done
    done;
    normalize r
  end

let mul_int (t : t) n : t =
  if n < 0 then invalid_arg "Wide.mul_int: negative"
  else mul t (of_int n)

let to_string (t : t) =
  let l = Array.length t in
  if l = 0 then "0"
  else begin
    let b = Buffer.create (l * 9) in
    Buffer.add_string b (string_of_int t.(l - 1));
    for i = l - 2 downto 0 do
      Buffer.add_string b (Printf.sprintf "%09d" t.(i))
    done;
    Buffer.contents b
  end

let pp ppf t = Format.pp_print_string ppf (to_string t)
