(** Arbitrary-precision non-negative integers for resource accumulators.

    The paper's headline instances (3x10^13 gates, §5.4) fit OCaml's
    63-bit native ints, but the symbolic estimator exists precisely to
    quote instances orders of magnitude past that — products over the
    call tree overflow native ints long before they overflow patience.
    This is a dependency-free (no Zarith) natural-number type: little-
    endian limbs in base 10^9, so every limb product fits a native int
    and decimal printing is a per-limb [%09d]. Addition, multiplication
    and comparison are all the estimator needs; there is deliberately no
    subtraction — resource counts never go down. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int_opt : t -> int option
(** [Some n] iff the value fits a native int exactly. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val equal_int : t -> int -> bool
val compare : t -> t -> int
val max_ : t -> t -> t

val add : t -> t -> t
val mul : t -> t -> t

val mul_int : t -> int -> t
(** [mul_int t n] with [n >= 0]; raises [Invalid_argument] otherwise. *)

val succ : t -> t

val to_string : t -> string
(** Plain decimal, no separators — prints byte-identical to
    [string_of_int] wherever the value fits an int. *)

val pp : Format.formatter -> t -> unit
