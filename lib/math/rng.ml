(** Deterministic pseudo-random number generation.

    Simulation of quantum measurement is probabilistic (Born rule), but tests
    and benchmarks must be reproducible, so every measurement in the
    simulators draws from an explicitly-seeded generator. We implement
    splitmix64, which is tiny, fast, and has well-understood statistical
    quality — more than enough for sampling measurement outcomes. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform int in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let mask =
    let rec go m = if m >= bound - 1 then m else go ((m lsl 1) lor 1) in
    go 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* ------------------------------------------------------------------ *)
(* Seed splitting.

   Trial-based noisy simulation needs one independent stream per trial,
   all derived from a single master seed so a whole experiment replays
   from one number. Deriving child state by a splitmix64 mix of
   (state, index) decorrelates the children from the master and from
   each other — the same construction splitmix64 itself uses to split. *)

let of_int64 state = { state }

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative stream index";
  let tmp =
    { state = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) }
  in
  { state = next_int64 tmp }

let derive master i =
  if i < 0 then invalid_arg "Rng.derive: negative stream index";
  let tmp = split (create master) i in
  Int64.to_int (Int64.shift_right_logical (next_int64 tmp) 2)

(* ------------------------------------------------------------------ *)
(* Lane pools: many streams, unboxed.

   The Pauli-frame engine samples noise per trial lane — hundreds of
   millions of draws per campaign. [t] keeps its state in a mutable
   record field, which boxes every splitmix64 step; a pool keeps lane
   states in an int64 bigarray, whose loads and stores ocamlopt compiles
   unboxed, and each batched operation below is straight-line local
   int64 arithmetic — no allocation per draw. Every lane replays exactly
   the stream the scalar [t] with the same starting state produces:
   word results are bit-identical to per-lane [float]/[int] calls. *)

type pool = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let pool n : pool = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout (max n 1)
let pool_seed (p : pool) i (t : t) = Bigarray.Array1.set p i t.state
let pool_get (p : pool) i : t = { state = Bigarray.Array1.get p i }

let pool_bernoulli (p : pool) ~n ~(prob : float) : int =
  let w = ref 0 in
  for i = 0 to n - 1 do
    (* one splitmix64 step + [float] conversion, manually inlined so the
       int64 intermediates stay in registers *)
    let s1 = Int64.add (Bigarray.Array1.unsafe_get p i) 0x9E3779B97F4A7C15L in
    Bigarray.Array1.unsafe_set p i s1;
    let z0 =
      Int64.mul (Int64.logxor s1 (Int64.shift_right_logical s1 30)) 0xBF58476D1CE4E5B9L
    in
    let z1 =
      Int64.mul (Int64.logxor z0 (Int64.shift_right_logical z0 27)) 0x94D049BB133111EBL
    in
    let z2 = Int64.logxor z1 (Int64.shift_right_logical z1 31) in
    let f =
      Int64.to_float (Int64.shift_right_logical z2 11) *. (1.0 /. 9007199254740992.0)
    in
    if f < prob then w := !w lor (1 lsl i)
  done;
  !w

let pool_pauli_mix (p : pool) ~n ~(mask : int) : int * int =
  let xw = ref 0 and zw = ref 0 in
  for i = 0 to n - 1 do
    if mask land (1 lsl i) <> 0 then begin
      (* [int _ 3]: mask 3, reject 3 — replayed draw for draw *)
      let d = ref (-1) in
      while !d < 0 do
        let s1 = Int64.add (Bigarray.Array1.unsafe_get p i) 0x9E3779B97F4A7C15L in
        Bigarray.Array1.unsafe_set p i s1;
        let z0 =
          Int64.mul
            (Int64.logxor s1 (Int64.shift_right_logical s1 30))
            0xBF58476D1CE4E5B9L
        in
        let z1 =
          Int64.mul
            (Int64.logxor z0 (Int64.shift_right_logical z0 27))
            0x94D049BB133111EBL
        in
        let v = Int64.to_int (Int64.logxor z1 (Int64.shift_right_logical z1 31)) land 3 in
        if v < 3 then d := v
      done;
      (match !d with
      | 0 -> xw := !xw lor (1 lsl i)
      | 1 ->
          xw := !xw lor (1 lsl i);
          zw := !zw lor (1 lsl i)
      | _ -> zw := !zw lor (1 lsl i))
    end
  done;
  (!xw, !zw)
