(** Deterministic pseudo-random number generation.

    Simulation of quantum measurement is probabilistic (Born rule), but tests
    and benchmarks must be reproducible, so every measurement in the
    simulators draws from an explicitly-seeded generator. We implement
    splitmix64, which is tiny, fast, and has well-understood statistical
    quality — more than enough for sampling measurement outcomes. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform int in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let mask =
    let rec go m = if m >= bound - 1 then m else go ((m lsl 1) lor 1) in
    go 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* ------------------------------------------------------------------ *)
(* Seed splitting.

   Trial-based noisy simulation needs one independent stream per trial,
   all derived from a single master seed so a whole experiment replays
   from one number. Deriving child state by a splitmix64 mix of
   (state, index) decorrelates the children from the master and from
   each other — the same construction splitmix64 itself uses to split. *)

let of_int64 state = { state }

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative stream index";
  let tmp =
    { state = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) }
  in
  { state = next_int64 tmp }

let derive master i =
  if i < 0 then invalid_arg "Rng.derive: negative stream index";
  let tmp = split (create master) i in
  Int64.to_int (Int64.shift_right_logical (next_int64 tmp) 2)
