(** Deterministic pseudo-random numbers (splitmix64).

    Quantum measurement is probabilistic, but tests and benchmarks must be
    reproducible, so every measurement in the simulators draws from an
    explicitly-seeded generator. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound); rejection-sampled, no modulo bias. *)

val bool : t -> bool

val of_int64 : int64 -> t
(** A generator starting from a raw 64-bit state. *)

val split : t -> int -> t
(** [split t i] is an independent generator for stream [i], derived from
    [t]'s current state without advancing [t]. Distinct indices give
    decorrelated streams (splitmix64's own splitting construction). *)

val derive : int -> int -> int
(** [derive master i] is the [i]-th child seed of [master]: the pure
    seed-level form of {!split}, for APIs that take integer seeds. The
    noisy simulators use it to give every trial of an experiment its own
    reproducible stream. *)

(** {2 Lane pools}

    Batched draws over many independent streams, allocation-free per
    draw — the sampling backbone of the Pauli-frame engine. Lane [i] of
    a pool replays exactly the stream a scalar {!t} with the same state
    would produce. *)

type pool

val pool : int -> pool
(** A pool of [n] lanes (states uninitialized: seed each lane). *)

val pool_seed : pool -> int -> t -> unit
(** Install [t]'s current state as lane [i]'s stream. *)

val pool_get : pool -> int -> t
(** A scalar generator continuing lane [i]'s stream (copy; the lane is
    not advanced). *)

val pool_bernoulli : pool -> n:int -> prob:float -> int
(** One [{!float} < prob] draw on each of lanes [0..n-1] (n <= word
    size); bit [i] of the result is lane [i]'s outcome. *)

val pool_pauli_mix : pool -> n:int -> mask:int -> int * int
(** One [{!int} _ 3] draw on each lane whose bit is set in [mask],
    mapped 0/1/2 to X/Y/Z: returns packed (x, z) Pauli component words.
    Lanes outside [mask] draw nothing. *)
