(** Deterministic pseudo-random numbers (splitmix64).

    Quantum measurement is probabilistic, but tests and benchmarks must be
    reproducible, so every measurement in the simulators draws from an
    explicitly-seeded generator. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound); rejection-sampled, no modulo bias. *)

val bool : t -> bool

val of_int64 : int64 -> t
(** A generator starting from a raw 64-bit state. *)

val split : t -> int -> t
(** [split t i] is an independent generator for stream [i], derived from
    [t]'s current state without advancing [t]. Distinct indices give
    decorrelated streams (splitmix64's own splitting construction). *)

val derive : int -> int -> int
(** [derive master i] is the [i]-th child seed of [master]: the pure
    seed-level form of {!split}, for APIs that take integer seeds. The
    noisy simulators use it to give every trial of an experiment its own
    reproducible stream. *)
