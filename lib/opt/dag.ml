(** Per-wire gate-adjacency graph: a doubly linked list threaded through
    the gates of each wire. See the interface for the contract. *)

open Quipper

type t = {
  gates : Gate.t option array;  (** [None] = removed (comments stay [Some]) *)
  comment : bool array;
  node_wires : Wire.t list array;
  next : (int * Wire.t, int) Hashtbl.t;
  prev : (int * Wire.t, int) Hashtbl.t;
  inputs : Wire.endpoint list;
  outputs : Wire.endpoint list;
  mutable dirty : bool;
}

let distinct_wires g =
  List.sort_uniq compare
    (List.map (fun (e : Wire.endpoint) -> e.Wire.wire) (Gate.wires g))

let of_circuit (c : Circuit.t) : t =
  let n = Array.length c.Circuit.gates in
  let d =
    {
      gates = Array.map Option.some c.Circuit.gates;
      comment = Array.map Gate.is_comment c.Circuit.gates;
      node_wires = Array.make n [];
      next = Hashtbl.create (4 * n);
      prev = Hashtbl.create (4 * n);
      inputs = c.Circuit.inputs;
      outputs = c.Circuit.outputs;
      dirty = false;
    }
  in
  let last : (Wire.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i g ->
      if not d.comment.(i) then begin
        let ws = distinct_wires g in
        d.node_wires.(i) <- ws;
        List.iter
          (fun w ->
            (match Hashtbl.find_opt last w with
            | Some p ->
                Hashtbl.replace d.next (p, w) i;
                Hashtbl.replace d.prev (i, w) p
            | None -> ());
            Hashtbl.replace last w i)
          ws
      end)
    c.Circuit.gates;
  d

let size d = Array.length d.gates

let gate d i = if d.comment.(i) then None else d.gates.(i)

let wires d i = d.node_wires.(i)

let next_on_wire d i w = Hashtbl.find_opt d.next (i, w)
let prev_on_wire d i w = Hashtbl.find_opt d.prev (i, w)

let remove d i =
  match d.gates.(i) with
  | None -> ()
  | Some _ when d.comment.(i) -> invalid_arg "Dag.remove: comment node"
  | Some _ ->
      List.iter
        (fun w ->
          let p = Hashtbl.find_opt d.prev (i, w)
          and n = Hashtbl.find_opt d.next (i, w) in
          (match (p, n) with
          | Some p, Some n ->
              Hashtbl.replace d.next (p, w) n;
              Hashtbl.replace d.prev (n, w) p
          | Some p, None -> Hashtbl.remove d.next (p, w)
          | None, Some n -> Hashtbl.remove d.prev (n, w)
          | None, None -> ());
          Hashtbl.remove d.next (i, w);
          Hashtbl.remove d.prev (i, w))
        d.node_wires.(i);
      d.gates.(i) <- None;
      d.node_wires.(i) <- [];
      d.dirty <- true

let replace d i g =
  match d.gates.(i) with
  | None -> invalid_arg "Dag.replace: removed node"
  | Some _ when d.comment.(i) -> invalid_arg "Dag.replace: comment node"
  | Some _ ->
      if distinct_wires g <> d.node_wires.(i) then
        invalid_arg "Dag.replace: wire set differs";
      d.gates.(i) <- Some g;
      d.dirty <- true

let changed d = d.dirty

let to_circuit d : Circuit.t =
  let out = Vec.create () in
  Array.iter (function Some g -> Vec.push out g | None -> ()) d.gates;
  { Circuit.inputs = d.inputs; gates = Vec.to_array out; outputs = d.outputs }
