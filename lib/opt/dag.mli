(** Per-wire gate-adjacency graph over a flat circuit.

    The gate array of a {!Quipper.Circuit.t} is one global order; a
    rewrite that only looks at list-adjacent gates misses every pair
    separated by gates on other wires. This structure threads a doubly
    linked list through the gates of each wire, so a rewrite can ask
    "what is the next gate that touches any wire of this one?" and walk
    forward past provably-commuting neighbours in O(1) per step.

    Node ids are the original gate-array indices; rewrites never reorder,
    they only {!remove} nodes and {!replace} gates in place (with a gate
    on the same wire set), so id order remains a valid emission order and
    {!to_circuit} is a single pass. Comments are kept out of the wire
    lists — they are transparent to rewriting — but are preserved at
    their original positions in the output. *)

open Quipper

type t

val of_circuit : Circuit.t -> t

val to_circuit : t -> Circuit.t
(** Alive nodes (and comments) in id order, with the original arity. *)

val size : t -> int
(** Number of node slots (= original gate count, comments included). *)

val gate : t -> int -> Gate.t option
(** The gate at a node; [None] for removed nodes and comments. *)

val wires : t -> int -> Wire.t list
(** Distinct wires the node's gate touches (empty once removed). *)

val next_on_wire : t -> int -> Wire.t -> int option
(** The next alive non-comment node after this one on the given wire. *)

val prev_on_wire : t -> int -> Wire.t -> int option

val remove : t -> int -> unit
(** Unlink the node from every wire list. Idempotent. *)

val replace : t -> int -> Gate.t -> unit
(** Swap the node's gate for one touching exactly the same wire set
    (e.g. a fused rotation, or a control with flipped polarity); raises
    [Invalid_argument] if the wire set differs or the node is removed. *)

val changed : t -> bool
(** Has any {!remove} or {!replace} happened since construction? *)
