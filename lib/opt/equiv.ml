open Quipper
module Backend = Quipper_sim.Backend

type mode = Classical | Statevector

type verdict =
  | Equivalent of { mode : mode; inputs_checked : int }
  | Not_equivalent of { input : bool list; detail : string }
  | Unchecked of string

let classical_gate = function
  | Gate.Gate { name = "not" | "X" | "swap"; _ } -> true
  | Gate.Init _ | Gate.Term _ | Gate.Discard _ | Gate.Measure _ | Gate.Cgate _
  | Gate.Subroutine _ | Gate.Comment _ ->
      true
  | Gate.Gate _ | Gate.Rot _ | Gate.Phase _ -> false

let classical_only (b : Circuit.b) =
  let ok (c : Circuit.t) = Array.for_all classical_gate c.Circuit.gates in
  ok b.Circuit.main
  && Circuit.Namespace.for_all (fun _ (s : Circuit.subroutine) -> ok s.Circuit.circ) b.Circuit.subs

let bits_of_int n v = List.init n (fun i -> (v lsr i) land 1 = 1)

let inputs_to_try ~max_inputs ~seed n =
  if n <= 16 && 1 lsl n <= max_inputs then List.init (1 lsl n) (bits_of_int n)
  else begin
    let rng = Quipper_math.Rng.create seed in
    List.init max_inputs (fun _ ->
        List.init n (fun _ -> Quipper_math.Rng.int rng 2 = 1))
  end

let pp_input ppf bits =
  List.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) bits

let find_counterexample inputs differs =
  let rec go checked = function
    | [] -> Ok checked
    | ins :: rest -> (
        match differs ins with
        | None -> go (checked + 1) rest
        | Some detail -> Error (ins, detail))
  in
  go 0 inputs

let check ?(eps = 1e-9) ?(max_sv_qubits = 20) ?(max_inputs = 64) ?(seed = 1)
    (a : Circuit.b) (b : Circuit.b) : verdict =
  let tys (c : Circuit.b) =
    List.map (fun (e : Wire.endpoint) -> e.Wire.ty) c.Circuit.main.Circuit.inputs
  in
  if tys a <> tys b then
    Not_equivalent { input = []; detail = "input arity differs" }
  else begin
    let n = List.length a.Circuit.main.Circuit.inputs in
    let inputs = inputs_to_try ~max_inputs ~seed n in
    let run mode differs =
      match find_counterexample inputs differs with
      | Ok checked -> Equivalent { mode; inputs_checked = checked }
      | Error (input, detail) -> Not_equivalent { input; detail }
      | exception Errors.Error r -> Unchecked (Errors.to_string r)
    in
    if classical_only a && classical_only b then
      run Classical (fun ins ->
          let oa = Backend.run_and_measure (module Backend.Classical) ~seed a ins
          and ob = Backend.run_and_measure (module Backend.Classical) ~seed b ins in
          if oa = ob then None else Some "classical outputs differ")
    else
      let qa = Gatecount.peak_wires a and qb = Gatecount.peak_wires b in
      if max qa qb > max_sv_qubits then
        Unchecked
          (Printf.sprintf "%d live qubits exceed the statevector bound %d"
             (max qa qb) max_sv_qubits)
      else
        run Statevector (fun ins ->
            let va = Quipper_sim.Statevector.output_vector ~seed a ins
            and vb = Quipper_sim.Statevector.output_vector ~seed b ins in
            if Backend.equal_up_to_phase ~eps va vb then None
            else Some "amplitudes differ beyond a global phase")
  end

let equivalent = function Equivalent _ -> true | _ -> false

let pp ppf = function
  | Equivalent { mode; inputs_checked } ->
      Format.fprintf ppf "equivalent (%s, %d inputs)"
        (match mode with Classical -> "classical" | Statevector -> "statevector")
        inputs_checked
  | Not_equivalent { input; detail } ->
      Format.fprintf ppf "NOT equivalent on input %a: %s" pp_input input detail
  | Unchecked why -> Format.fprintf ppf "unchecked: %s" why
