(** Translation validation: check that an optimised circuit means the
    same thing as the original, through the {!Quipper_sim.Backend} API.

    Reversible/classical circuit pairs are compared bit-for-bit on the
    classical backend (cheap, any size); everything else is compared by
    statevector amplitudes up to a global phase, which caps the circuits
    at [max_sv_qubits] live qubits. Basis inputs are enumerated
    exhaustively when [2^arity <= max_inputs] and sampled otherwise. *)

open Quipper

type mode = Classical | Statevector

type verdict =
  | Equivalent of { mode : mode; inputs_checked : int }
  | Not_equivalent of { input : bool list; detail : string }
  | Unchecked of string
      (** Too big for the statevector bound, or the simulation itself
          failed (unknown user gate, violated termination assertion). *)

val classical_only : Circuit.b -> bool
(** Does every gate (in the main circuit and all boxed subcircuits) fall
    in the classical backend's gate set? *)

val check :
  ?eps:float ->
  ?max_sv_qubits:int ->
  ?max_inputs:int ->
  ?seed:int ->
  Circuit.b ->
  Circuit.b ->
  verdict
(** [check original optimised]. Defaults: [eps = 1e-9],
    [max_sv_qubits = 20], [max_inputs = 64], [seed = 1]. *)

val equivalent : verdict -> bool
(** [true] only for [Equivalent _]. *)

val pp : Format.formatter -> verdict -> unit
