open Quipper

type pass = { pname : string; descr : string; run : Circuit.t -> Circuit.t }

let builtin =
  [
    {
      pname = "constants";
      descr = "propagate classical constants from Init0/Init1; drop or kill controls";
      run = Rewrite.propagate_constants;
    };
    {
      pname = "flip-controls";
      descr = "X.C(U).X = C'(U): absorb NOT pairs into control polarities";
      run = (fun c -> Rewrite.flip_controls c);
    };
    {
      pname = "cancel";
      descr = "cancel inverse gate pairs across commuting neighbours";
      run = (fun c -> Rewrite.cancel c);
    };
    {
      pname = "fuse";
      descr = "fuse rotations: Rz(a).Rz(b) = Rz(a+b), T.T = S, S.S = Z";
      run = (fun c -> Rewrite.fuse c);
    };
  ]

let default_pipeline =
  List.map
    (fun n -> List.find (fun p -> p.pname = n) builtin)
    [ "constants"; "flip-controls"; "cancel"; "fuse" ]

let find_pass name =
  match List.find_opt (fun p -> p.pname = name) builtin with
  | Some p -> p
  | None ->
      Errors.invalidf "unknown optimisation pass %S (known: %s)" name
        (String.concat ", " (List.map (fun p -> p.pname) builtin))

let pipeline_of_names names = List.map find_pass names

type level = {
  lname : string;
  lgates_before : int;
  lgates_after : int;
  lseconds : float;
}

type stat = {
  spass : string;
  round : int;
  gates_before : int;
  gates_after : int;
  depth_before : int;
  depth_after : int;
  seconds : float;
  levels : level list;
}

(* flat logical gate count of one level's body — NOT expanded through
   call multiplicities, because each level's body is rewritten exactly
   once per pass regardless of how often it is called *)
let flat_logical (c : Circuit.t) =
  Array.fold_left
    (fun n g -> if Gate.is_comment g then n else n + 1)
    0 c.Circuit.gates

(* [Transform.map_circuits p.run], but timing and counting each level
   (main + every box body) separately. The headline [stat] fields keep
   the hierarchy-EXPANDED gate counts (body gates times call
   multiplicity) — useful as "work the circuit represents" — but
   attributing wall time against those would conflate a box rewritten
   once with the thousands of calls replaying it; [levels] reports the
   flat per-level counts the pass actually visited, and their times. *)
let timed_map_circuits run (b : Circuit.b) =
  let levels = ref [] in
  let apply lname c =
    let lgates_before = flat_logical c in
    let t0 = Unix.gettimeofday () in
    let c' = run c in
    let lseconds = Unix.gettimeofday () -. t0 in
    levels :=
      { lname; lgates_before; lgates_after = flat_logical c'; lseconds }
      :: !levels;
    c'
  in
  let main = apply "main" b.Circuit.main in
  let subs =
    Circuit.Namespace.mapi
      (fun name (s : Circuit.subroutine) ->
        { s with Circuit.circ = apply name s.Circuit.circ })
      b.Circuit.subs
  in
  ({ b with Circuit.main; subs }, List.rev !levels)

let optimize ?(passes = default_pipeline) ?(max_rounds = 10) (b : Circuit.b) =
  let stats = ref [] in
  let measure b = (Gatecount.total_logical (Gatecount.aggregate b), Depth.depth b) in
  let rec rounds r b =
    if r > max_rounds then b
    else
      let changed = ref false in
      let b' =
        List.fold_left
          (fun b p ->
            let gates_before, depth_before = measure b in
            let b', levels = timed_map_circuits p.run b in
            let seconds =
              List.fold_left (fun acc l -> acc +. l.lseconds) 0. levels
            in
            let gates_after, depth_after = measure b' in
            stats :=
              {
                spass = p.pname;
                round = r;
                gates_before;
                gates_after;
                depth_before;
                depth_after;
                seconds;
                levels;
              }
              :: !stats;
            if b' <> b then changed := true;
            b')
          b passes
      in
      if !changed then rounds (r + 1) b' else b'
  in
  let b' = rounds 1 b in
  (b', List.rev !stats)

let pp_stats ppf stats =
  Format.fprintf ppf "%-14s %5s %12s %12s %8s %7s %7s %9s@\n" "pass" "round"
    "gates before" "gates after" "removed" "depth" "depth'" "time";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-14s %5d %12d %12d %8d %7d %7d %8.1fms@\n" s.spass
        s.round s.gates_before s.gates_after
        (s.gates_before - s.gates_after)
        s.depth_before s.depth_after (1000. *. s.seconds);
      match s.levels with
      | [] | [ _ ] -> () (* unboxed: the one level is the headline row *)
      | levels ->
          List.iter
            (fun l ->
              Format.fprintf ppf "  %-12s %5s %12d %12d %8d %7s %7s %8.1fms@\n"
                l.lname "" l.lgates_before l.lgates_after
                (l.lgates_before - l.lgates_after)
                "" "" (1000. *. l.lseconds))
            levels)
    stats

let optimize_and_report ?(verbose = false) ppf (b : Circuit.b) =
  let before = Gatecount.summarize b in
  let depth_before = Depth.depth b in
  let b', stats = optimize b in
  let after = Gatecount.summarize b' in
  let depth_after = Depth.depth b' in
  Format.fprintf ppf "Before optimisation:@\n%a@\n" Gatecount.pp_summary before;
  if verbose then pp_stats ppf stats;
  Format.fprintf ppf "After optimisation:@\n%a@\n" Gatecount.pp_summary after;
  Format.fprintf ppf "Optimizer: removed %d of %d logical gates; depth %d -> %d@."
    (before.Gatecount.total_logical - after.Gatecount.total_logical)
    before.Gatecount.total_logical depth_before depth_after;
  b'
