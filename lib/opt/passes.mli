(** The pass manager: named peephole passes, configurable pipelines, a
    fixpoint driver, and per-pass statistics.

    Passes run over flat circuits; {!optimize} applies them hierarchically
    (main circuit and every boxed subroutine body) via
    {!Quipper.Transform.map_circuits}, repeating the whole pipeline until
    a round changes nothing or [max_rounds] is hit. *)

open Quipper

type pass = {
  pname : string;  (** name used on the command line and in statistics *)
  descr : string;
  run : Circuit.t -> Circuit.t;
}

val builtin : pass list
(** All named passes: ["constants"], ["flip-controls"], ["cancel"],
    ["fuse"]. *)

val default_pipeline : pass list
(** [constants; flip-controls; cancel; fuse] — constant propagation first
    so dropped controls expose X sandwiches, then cancellation, then
    fusion on whatever rotations remain adjacent-up-to-commutation. *)

val find_pass : string -> pass
(** Look up a builtin pass by name; raises {!Quipper.Errors.Error} with
    the known names on an unknown one. *)

val pipeline_of_names : string list -> pass list

type level = {
  lname : string;  (** ["main"] or a subroutine name *)
  lgates_before : int;  (** flat logical gates of this level's body *)
  lgates_after : int;
  lseconds : float;  (** wall time rewriting this one body *)
}
(** One hierarchy level of one pass application. A pass rewrites each
    box body exactly once however many times it is called, so wall time
    belongs to levels with {e flat} gate counts — against the
    hierarchy-expanded counts in {!stat} a once-rewritten body would be
    charged per call site. *)

type stat = {
  spass : string;  (** pass name *)
  round : int;  (** fixpoint round, starting at 1 *)
  gates_before : int;  (** {!Quipper.Gatecount.total_logical} before *)
  gates_after : int;
  depth_before : int;
  depth_after : int;
  seconds : float;  (** wall time of this pass application (sum of levels) *)
  levels : level list;  (** per-level breakdown: main first, then boxes *)
}

val optimize :
  ?passes:pass list -> ?max_rounds:int -> Circuit.b -> Circuit.b * stat list
(** Run the pipeline hierarchically to a fixpoint (at most [max_rounds]
    rounds, default 10). Statistics come back in application order, one
    entry per pass per round. *)

val pp_stats : Format.formatter -> stat list -> unit
(** A table of per-pass statistics: gates and depth before/after, gates
    removed, wall time. *)

val optimize_and_report : ?verbose:bool -> Format.formatter -> Circuit.b -> Circuit.b
(** The command-line [-O] entry point: run the default pipeline, print
    before/after {!Quipper.Gatecount.pp_summary} blocks (with the
    {!pp_stats} table in between when [verbose]) and a one-line
    ["Optimizer: removed N of M logical gates; depth a -> b"] summary,
    and return the optimised circuit. *)
