(** Peephole rewrites over the per-wire adjacency {!Dag}. Every rewrite
    is phase-exact (safe under added controls, hence inside controllable
    boxed subcircuits) and preserves the circuit arity. *)

open Quipper

let default_lookahead = 32

(* ------------------------------------------------------------------ *)
(* The commuting walk                                                  *)

(* From node [i], visit in order every later gate touching any wire of
   [i]'s gate, as long as [visit] keeps answering [`Advance] (the caller
   answers [`Advance] only for gates that provably commute with [i]'s, so
   reaching node [j] means [i]'s gate can be moved adjacent to [j]'s).
   Bounded by [lookahead] steps. *)
let walk d i ~lookahead visit =
  let cursors : (Wire.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun w ->
      match Dag.next_on_wire d i w with
      | Some j -> Hashtbl.replace cursors w j
      | None -> ())
    (Dag.wires d i);
  let steps = ref 0 in
  let rec go () =
    if Hashtbl.length cursors > 0 && !steps < lookahead then begin
      incr steps;
      let j = Hashtbl.fold (fun _ j acc -> min j acc) cursors max_int in
      match visit j (Option.get (Dag.gate d j)) with
      | `Stop -> ()
      | `Advance ->
          let ws =
            Hashtbl.fold (fun w j' acc -> if j' = j then w :: acc else acc) cursors []
          in
          List.iter
            (fun w ->
              match Dag.next_on_wire d j w with
              | Some k -> Hashtbl.replace cursors w k
              | None -> Hashtbl.remove cursors w)
            ws;
          go ()
    end
  in
  go ()

let finish d c = if Dag.changed d then Dag.to_circuit d else c

(* ------------------------------------------------------------------ *)
(* Inverse cancellation across commuting neighbours                    *)

let cancel ?(lookahead = default_lookahead) (c : Circuit.t) : Circuit.t =
  let d = Dag.of_circuit c in
  for i = 0 to Dag.size d - 1 do
    match Dag.gate d i with
    | None -> ()
    | Some g ->
        walk d i ~lookahead (fun j gj ->
            if Transform.gates_cancel g gj then begin
              Dag.remove d i;
              Dag.remove d j;
              `Stop
            end
            else if Gate.commutes g gj then `Advance
            else `Stop)
  done;
  finish d c

(* ------------------------------------------------------------------ *)
(* Rotation fusion across commuting neighbours                         *)

(* Fusion partners are all diagonal with identical targets and controls,
   so the fused gate commutes with exactly what the original did — it is
   sound to leave it at the earlier position. *)
let fuse ?(lookahead = default_lookahead) (c : Circuit.t) : Circuit.t =
  let d = Dag.of_circuit c in
  for i = 0 to Dag.size d - 1 do
    match Dag.gate d i with
    | None -> ()
    | Some g ->
        walk d i ~lookahead (fun j gj ->
            match Gate.fusion g gj with
            | Some fused ->
                Dag.remove d j;
                if Gate.is_identity fused then Dag.remove d i
                else Dag.replace d i fused;
                `Stop
            | None -> if Gate.commutes g gj then `Advance else `Stop)
  done;
  finish d c

(* ------------------------------------------------------------------ *)
(* NOT-conjugation: X · Λ(U) · X  =  Λ'(U)                             *)

let is_plain_x = function
  | Gate.Gate { name = "not" | "X"; targets = [ _ ]; controls = []; _ } -> true
  | _ -> false

(* [w] appears in the gate's control list and nowhere else. *)
let uses_only_as_control g w =
  List.exists (fun (c : Gate.control) -> c.cwire = w) (Gate.controls g)
  &&
  match g with
  | Gate.Gate { targets; _ } | Gate.Rot { targets; _ } -> not (List.mem w targets)
  | Gate.Phase _ -> true
  | Gate.Subroutine { inputs; outputs; _ } ->
      not (List.mem w inputs || List.mem w outputs)
  | _ -> false

let flip_control_on w g =
  let flip (c : Gate.control) =
    if c.cwire = w then { c with Gate.positive = not c.positive } else c
  in
  match g with
  | Gate.Gate r -> Gate.Gate { r with controls = List.map flip r.controls }
  | Gate.Rot r -> Gate.Rot { r with controls = List.map flip r.controls }
  | Gate.Phase r -> Gate.Phase { r with controls = List.map flip r.controls }
  | Gate.Subroutine r -> Gate.Subroutine { r with controls = List.map flip r.controls }
  | g -> g

let flip_controls ?(lookahead = default_lookahead) (c : Circuit.t) : Circuit.t =
  let d = Dag.of_circuit c in
  for i = 0 to Dag.size d - 1 do
    match Dag.gate d i with
    | Some g when is_plain_x g ->
        let w = List.hd (Gate.targets g) in
        (* walk [w]'s chain alone: gates using [w] only as a control pass
           the X through with a polarity flip; a second plain X closes
           the sandwich *)
        let rec scan j sandwiched steps =
          if steps <= lookahead then
            match Dag.gate d j with
            | None -> ()
            | Some h when is_plain_x h ->
                List.iter
                  (fun k ->
                    Dag.replace d k (flip_control_on w (Option.get (Dag.gate d k))))
                  sandwiched;
                Dag.remove d i;
                Dag.remove d j
            | Some h when uses_only_as_control h w -> (
                match Dag.next_on_wire d j w with
                | Some j' -> scan j' (j :: sandwiched) (steps + 1)
                | None -> ())
            | Some _ -> ()
        in
        (match Dag.next_on_wire d i w with Some j -> scan j [] 0 | None -> ())
    | _ -> ()
  done;
  finish d c

(* ------------------------------------------------------------------ *)
(* Classical constant propagation                                      *)

let eval_cgate name (ins : bool list) =
  match (name, ins) with
  | "not", [ a ] -> Some (not a)
  | "and", _ -> Some (List.for_all Fun.id ins)
  | "or", _ -> Some (List.exists Fun.id ins)
  | "xor", _ -> Some (List.fold_left ( <> ) false ins)
  | _ -> None

(* The transfer function is factored out per gate so the streaming
   optimizer ([Stream_opt]) can run the identical analysis on an
   unbounded gate stream: [cp] is the known-value map, [cp_step]
   processes one gate and says what to do with it. *)

type cp = (Wire.t, bool) Hashtbl.t

let cp_create () : cp = Hashtbl.create 32

let cp_step (known : cp) (g : Gate.t) : [ `Keep of Gate.t * int | `Drop ] =
  let forget w = Hashtbl.remove known w in
  (* split a control list by what the known-value map says about it *)
  let resolve_controls controls =
    let dead = ref false in
    let dropped = ref 0 in
    let kept =
      List.filter
        (fun (c : Gate.control) ->
          match Hashtbl.find_opt known c.Gate.cwire with
          | Some v when v = c.Gate.positive ->
              incr dropped;
              false (* always fires: drop the control *)
          | Some _ ->
              dead := true;
              false
          | None -> true)
        controls
    in
    (kept, !dead, !dropped)
  in
  let with_controls g kept =
    match g with
    | Gate.Gate r -> Gate.Gate { r with controls = kept }
    | Gate.Rot r -> Gate.Rot { r with controls = kept }
    | Gate.Phase r -> Gate.Phase { r with controls = kept }
    | Gate.Subroutine r -> Gate.Subroutine { r with controls = kept }
    | g -> g
  in
  match g with
  | Gate.Init { value; wire; _ } ->
      Hashtbl.replace known wire value;
      `Keep (g, 0)
  | Gate.Term { wire; _ } | Gate.Discard { wire; _ } ->
      forget wire;
      `Keep (g, 0)
  | Gate.Measure _ ->
      (* a known wire is in a basis state: measuring preserves the
         value, the wire merely turns classical *)
      `Keep (g, 0)
  | Gate.Cgate { name; out = o; ins } ->
      (match
         List.map (fun w -> Hashtbl.find_opt known w) ins
         |> List.fold_left
              (fun acc v ->
                match (acc, v) with Some l, Some x -> Some (x :: l) | _ -> None)
              (Some [])
       with
      | Some vals -> (
          match eval_cgate name (List.rev vals) with
          | Some v -> Hashtbl.replace known o v
          | None -> forget o)
      | None -> forget o);
      `Keep (g, 0)
  | Gate.Comment _ -> `Keep (g, 0)
  | Gate.Gate _ | Gate.Rot _ | Gate.Phase _ | Gate.Subroutine _ -> (
      let kept, dead, dropped = resolve_controls (Gate.controls g) in
      if dead then
        match g with
        | Gate.Subroutine { inputs; outputs; _ } when inputs <> outputs ->
            (* the call never fires, but deleting it would orphan its
               output wire ids; keep it untouched *)
            List.iter forget inputs;
            List.iter forget outputs;
            `Keep (g, dropped)
        | Gate.Subroutine _ | Gate.Gate _ | Gate.Rot _ | Gate.Phase _ ->
            (* never fires and targets = outputs: delete *)
            `Drop
        | _ -> assert false
      else
        let g = with_controls g kept in
        match g with
        | Gate.Gate { name = "not" | "X" | "Y"; targets = [ w ]; controls = []; _ }
          ->
            (match Hashtbl.find_opt known w with
            | Some v -> Hashtbl.replace known w (not v)
            | None -> ());
            `Keep (g, dropped)
        | Gate.Gate { name = "swap"; targets = [ a; b ]; controls = []; _ } -> (
            match (Hashtbl.find_opt known a, Hashtbl.find_opt known b) with
            | Some va, Some vb when va = vb ->
                (* swapping two wires in the same basis state is the
                   identity: delete *)
                `Drop
            | ka, kb ->
                (match ka with Some v -> Hashtbl.replace known b v | None -> forget b);
                (match kb with Some v -> Hashtbl.replace known a v | None -> forget a);
                `Keep (g, dropped))
        | Gate.Subroutine { inputs; outputs; _ } ->
            List.iter forget inputs;
            List.iter forget outputs;
            `Keep (g, dropped)
        | g when Gate.is_diagonal g ->
            (* a diagonal gate fixes every basis value *)
            `Keep (g, dropped)
        | g ->
            List.iter forget (Gate.targets g);
            `Keep (g, dropped))

let propagate_constants (c : Circuit.t) : Circuit.t =
  let known = cp_create () in
  let out = Vec.create () in
  let changed = ref false in
  Array.iter
    (fun g ->
      match cp_step known g with
      | `Drop -> changed := true
      | `Keep (g', dropped) ->
          if dropped > 0 then changed := true;
          Vec.push out g')
    c.Circuit.gates;
  if !changed then { c with Circuit.gates = Vec.to_array out } else c
