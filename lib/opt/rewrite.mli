(** Peephole rewrites over the per-wire gate-adjacency {!Dag}.

    Every rewrite here is {e phase-exact} — it preserves the circuit's
    unitary (on the subspace asserted by initialisations and assertive
    terminations, paper §4.2.2) including global phase, so all of them
    are safe inside boxed subcircuits that may be called under controls.
    All preserve the circuit's input/output arity, so they compose with
    {!Quipper.Transform.map_circuits} for hierarchical application.

    Each function is one bounded pass, not a fixpoint: the pass manager
    ({!Passes}) iterates pipelines until nothing changes. *)

open Quipper

val default_lookahead : int
(** How many commuting neighbours a walk will step past (32). *)

val cancel : ?lookahead:int -> Circuit.t -> Circuit.t
(** Inverse cancellation across commuting neighbours: for each gate, walk
    forward over the gates touching its wires, stepping past those that
    provably commute ({!Quipper.Gate.commutes}); if the walk reaches the
    gate's inverse ({!Quipper.Transform.gates_cancel}), remove both.
    Subsumes the seed's adjacent-only cancellation, and — because the
    walk runs on per-wire adjacency — also eliminates [Init]/[Term] and
    [Term]/[Init] pairs separated by gates on other wires (dead
    initialisation elimination). *)

val fuse : ?lookahead:int -> Circuit.t -> Circuit.t
(** Rotation fusion across commuting neighbours: [Rz(a)·Rz(b) = Rz(a+b)]
    (likewise [R]/[Ph], [exp(-i%Z)] and global phases), [T·T = S],
    [S·S = Z] ({!Quipper.Gate.fusion}). A fusion to a zero-angle rotation
    removes both gates. *)

val flip_controls : ?lookahead:int -> Circuit.t -> Circuit.t
(** The NOT-conjugation rule: [X·Λ(U)·X = Λ'(U)] where the sandwiched
    gates use the X'ed wire only as a control, and [Λ'] is [Λ] with that
    control's polarity flipped. Removes both X gates; the QCL-style
    baseline generator's set/unset NOT pairs around controlled gates melt
    under this rule. *)

val is_plain_x : Gate.t -> bool
(** An uncontrolled single-target [not]/[X] — the conjugating gate of the
    {!flip_controls} rule. *)

val uses_only_as_control : Gate.t -> Wire.t -> bool
(** The wire appears in the gate's control list and nowhere else, so an X
    on that wire passes through with a polarity flip. *)

val flip_control_on : Wire.t -> Gate.t -> Gate.t
(** Flip the polarity of every control on the given wire. *)

type cp
(** Constant-propagation state: the per-wire known-basis-value map. The
    transfer function is exposed so the streaming optimizer can run the
    same analysis over an unbounded gate stream. *)

val cp_create : unit -> cp

val cp_step : cp -> Gate.t -> [ `Keep of Gate.t * int | `Drop ]
(** Process one gate in stream order: [`Drop] deletes it (a control
    provably contradicts a known value, or a swap of known-equal wires);
    [`Keep (g', n)] emits [g'] — [g] with [n] provably-satisfied controls
    removed. Mutates the state. [propagate_constants] is a fold of this
    over the gate array. *)

val propagate_constants : Circuit.t -> Circuit.t
(** Classical constant propagation from [Init0]/[Init1] (and classical
    [Cgate] evaluation): a control on a wire known to hold the control's
    polarity is dropped; a control known to contradict it deletes the
    gate (subroutine calls only when they are in-place, i.e. outputs =
    inputs — deleting a renaming call would orphan its output wire ids);
    a [swap] of two known-equal wires is deleted. Known
    values flow through X/Y flips, diagonal gates, measurements and
    classical logic, and die at H-like gates and subroutine calls. *)
