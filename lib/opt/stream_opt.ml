(** Streaming peephole optimisation over a bounded look-behind window.

    The window is a FIFO of entries plus a per-wire index: [last] maps
    each wire to the newest live entry touching it, and every entry
    remembers, per wire, the entry that was newest when it arrived
    ([prev]) — the same per-wire adjacency {!Dag} builds eagerly, grown
    incrementally and only backward. An arriving gate walks this
    adjacency toward older entries exactly like {!Rewrite.walk} walks
    forward: step past provable commuters, act on a cancellation or
    fusion partner, stop at anything else.

    Rewrites mutate entries in place ([g = None] marks removal), so the
    emission order of surviving gates is the arrival order — retirement
    pops the FIFO head. Retirement is therefore monotone in [seq]: once
    an entry is retired, so is everything older, which makes two
    conservative short-cuts sound: a backward walk reaching a retired
    entry stops (everything beyond is out of reach anyway), and retired
    entries drop their [prev] links (bounding memory at O(window)).

    Constant propagation runs at arrival, before the walks. Arrival
    order equals emission order, and every rewrite is semantics-exact,
    so the transfer function sees a stream equivalent to what is
    emitted — the same pipeline order ({i constants} first) as
    {!Passes.default_pipeline}. *)

open Quipper

type stats = {
  mutable seen : int;
  mutable emitted : int;
  mutable cancelled : int;
  mutable fused : int;
  mutable flipped : int;
  mutable const_controls : int;
  mutable const_deleted : int;
  mutable boxes_optimized : int;
  mutable box_hits : int;
  mutable box_replayed : int;
      (** bodies served by per-angle replay of a skeleton-keyed memo *)
}

let stats_create () =
  {
    seen = 0;
    emitted = 0;
    cancelled = 0;
    fused = 0;
    flipped = 0;
    const_controls = 0;
    const_deleted = 0;
    boxes_optimized = 0;
    box_hits = 0;
    box_replayed = 0;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "stream-opt: %d gates in, %d out; cancelled %d pairs, fused %d, flipped \
     %d X-sandwiches; constants: %d controls dropped, %d gates deleted; \
     boxes: %d optimized, %d cache hits, %d angle-replayed"
    st.seen st.emitted st.cancelled st.fused st.flipped st.const_controls
    st.const_deleted st.boxes_optimized st.box_hits st.box_replayed

let default_window = 256

(* ------------------------------------------------------------------ *)
(* The window                                                          *)

type entry = {
  seq : int;
  mutable g : Gate.t option;  (** [None]: removed by a rewrite *)
  mutable retired : bool;
  ws : Wire.t list;  (** wires at insertion (rewrites never change them) *)
  mask : int;
      (** support bitmask (bit [w mod 62] per wire): a cheap commutation
          pre-test — disjoint masks prove disjoint supports *)
  mutable diag : bool;
      (** cached [Gate.is_diagonal] of [g]; two diagonal gates always
          commute, skipping the allocating [Gate.commutes] walk *)
  mutable site : int option;
      (** input angle-site index ([Rot]/[Phase] arrival order), for the
          box-body replay memo's output provenance *)
  mutable prev : (Wire.t * entry) list;
      (** per wire, the newest older entry on it at insertion time *)
  mutable next : (Wire.t * entry) list;
      (** per wire, the direct successor, once one arrives *)
  mutable queued : bool;  (** already on the re-examination worklist *)
}

type win = {
  window : int;
  lookahead : int;
  st : stats;
  emit : Gate.t -> int option -> unit;
      (** surviving gate plus its input angle-site provenance *)
  q : entry Queue.t;
  last : (Wire.t, entry) Hashtbl.t;
  cp : Rewrite.cp;
  todo : entry Queue.t;
      (** re-examination worklist: the streaming stand-in for the
          materialized fixpoint — a removal may unblock pairs that were
          separated by the removed gate, so the removed entry's nearest
          live successors get their walks retried, cascading *)
  mutable nseq : int;
  mutable angle_sensitive : bool;
      (** an angle-dependent rewrite fired: a [Rot] cancellation tests
          angle equality, a [Rot]/[Phase] fusion sums angles (and may
          drop the zero-angle result) — once any of those happens, the
          rewritten stream is only valid at these exact angles *)
}

let win_create ~window ~lookahead ~st emit =
  {
    window;
    lookahead;
    st;
    emit;
    q = Queue.create ();
    last = Hashtbl.create 64;
    cp = Rewrite.cp_create ();
    todo = Queue.create ();
    nseq = 0;
    angle_sensitive = false;
  }

(* comments are transparent to the wire chains (as in [Dag]): they hold
   a queue slot so printing order survives, but never obstruct a walk *)
let wires_of (g : Gate.t) =
  match g with
  | Gate.Comment _ -> []
  | g ->
      List.sort_uniq Int.compare
        (List.map (fun (e : Wire.endpoint) -> e.Wire.wire) (Gate.wires g))

let retire_one w =
  let e = Queue.pop w.q in
  (match e.g with
  | Some g ->
      w.emit g e.site;
      if not (Gate.is_comment g) then w.st.emitted <- w.st.emitted + 1
  | None -> ());
  e.retired <- true;
  e.prev <- [];
  e.next <- [];
  List.iter
    (fun wi ->
      match Hashtbl.find_opt w.last wi with
      | Some e' when e' == e -> Hashtbl.remove w.last wi
      | _ -> ())
    e.ws

let support_mask ws =
  List.fold_left (fun m wi -> m lor (1 lsl ((wi land max_int) mod 62))) 0 ws

let insert w (g : Gate.t) : entry =
  let ws = wires_of g in
  let e =
    {
      seq = w.nseq;
      g = Some g;
      retired = false;
      ws;
      mask = support_mask ws;
      diag = Gate.is_diagonal g;
      site = None;
      prev = [];
      next = [];
      queued = false;
    }
  in
  w.nseq <- w.nseq + 1;
  e.prev <-
    List.filter_map
      (fun wi -> Option.map (fun p -> (wi, p)) (Hashtbl.find_opt w.last wi))
      ws;
  List.iter (fun (wi, p) -> p.next <- (wi, e) :: p.next) e.prev;
  List.iter (fun wi -> Hashtbl.replace w.last wi e) ws;
  Queue.push e w.q;
  while Queue.length w.q > w.window do
    retire_one w
  done;
  e

let prev_on (e : entry) (wi : Wire.t) =
  Option.map snd (List.find_opt (fun ((w' : int), _) -> w' = wi) e.prev)

let next_on (e : entry) (wi : Wire.t) =
  Option.map snd (List.find_opt (fun ((w' : int), _) -> w' = wi) e.next)

(* A removal may unblock walks the removed gate obstructed — and not
   just its immediate neighbour's: a stalled multi-wire walk stops the
   moment ONE wire's next gate fails to commute, so any later entry
   sharing a wire with the removed gate may now get further. Schedule
   every live successor on the removed entry's wires for a fresh walk
   (successors are never retired while [e] is in the window —
   retirement is FIFO). This is the streaming counterpart of [Passes]'s
   fixpoint rounds: cascading, but local to where something changed and
   bounded by the window. *)
let retrigger w (e : entry) =
  List.iter
    (fun wi ->
      let rec push n =
        match next_on n wi with
        | None -> ()
        | Some n' ->
            (match n'.g with
            | Some _ when not n'.queued ->
                n'.queued <- true;
                Queue.push n' w.todo
            | _ -> ());
            push n'
      in
      push e)
    e.ws

let remove w (e : entry) =
  e.g <- None;
  retrigger w e

(* The backward commuting walk for [e] at its own position: nearest
   preceding live entry on any of its wires first ([Rewrite.walk]
   mirrored, toward older gates). Removed entries are skipped for free;
   a retired entry ends the walk — retirement is FIFO, so everything
   beyond it is out of reach anyway. *)
let match_entry w (e : entry) =
  match e.g with
  | None -> ()
  | Some g ->
      (* cursors: per wire of [e], the oldest entry the walk has reached
         on that wire — a gate touches 1-3 wires, so a small assoc list
         beats a hash table on allocation *)
      let cursors = ref e.prev in
      let advance_past x =
        cursors :=
          List.filter_map
            (fun ((wi, x') as c) ->
              if x' == x then
                match prev_on x wi with
                | Some p -> Some (wi, p)
                | None -> None
              else Some c)
            !cursors
      in
      let steps = ref 0 in
      let rec go () =
        match !cursors with
        | [] -> ()
        | (_, c0) :: rest ->
          let x =
            List.fold_left
              (fun (acc : entry) (_, x) -> if x.seq > acc.seq then x else acc)
              c0 rest
          in
          if x.retired then ()
          else
            match x.g with
            | None ->
                advance_past x;
                go ()
            | Some h ->
                if !steps >= w.lookahead then ()
                else begin
                  incr steps;
                  if Transform.gates_cancel h g then begin
                    w.st.cancelled <- w.st.cancelled + 1;
                    if Gate.has_angle h || Gate.has_angle g then
                      w.angle_sensitive <- true;
                    remove w x;
                    remove w e
                  end
                  else
                    match Gate.fusion h g with
                    | Some f ->
                        (* fusion partners commute with exactly what [h]
                           did: sound to leave the result at the earlier
                           position, as [Rewrite.fuse] does *)
                        w.st.fused <- w.st.fused + 1;
                        if Gate.has_angle h || Gate.has_angle g then
                          w.angle_sensitive <- true;
                        remove w e;
                        if Gate.is_identity f then remove w x
                        else begin
                          x.g <- Some f;
                          x.diag <- Gate.is_diagonal f;
                          retrigger w x
                        end
                    | None ->
                        (* cheap pre-test first: disjoint support masks
                           prove disjoint wires, and two diagonal gates
                           always commute — both are exactly the first
                           branches of [Gate.commutes], minus its
                           per-call wire-list allocation and walk *)
                        if
                          x.mask land e.mask = 0
                          || (x.diag && e.diag)
                          || Gate.commutes h g
                        then begin
                          advance_past x;
                          go ()
                        end
              end
      in
      go ()

(* The NOT-conjugation sandwich, scanned backward on the X'ed wire
   alone ([Rewrite.flip_controls] mirrored): gates using the wire only
   as a control collect; an older plain X closes the sandwich — flip
   the collected polarities in place, remove both X's. Tried before the
   generic walk because a control on the wire blocks commutation, so
   the walk could never reach the partner. *)
let flip_entry w (e : entry) =
  match e.g with
  | Some g when Rewrite.is_plain_x g -> (
      let wi = List.hd (Gate.targets g) in
      let rec scan cur sandwiched steps =
        match cur with
        | None -> false
        | Some x ->
            if x.retired then false
            else (
              match x.g with
              | None -> scan (prev_on x wi) sandwiched steps
              | Some h ->
                  if steps > w.lookahead then false
                  else if Rewrite.is_plain_x h then begin
                    List.iter
                      (fun x' ->
                        match x'.g with
                        | Some hg ->
                            x'.g <- Some (Rewrite.flip_control_on wi hg)
                        | None -> ())
                      sandwiched;
                    w.st.flipped <- w.st.flipped + 1;
                    remove w x;
                    remove w e;
                    true
                  end
                  else if Rewrite.uses_only_as_control h wi then
                    scan (prev_on x wi) (x :: sandwiched) (steps + 1)
                  else false)
      in
      scan (prev_on e wi) [] 0)
  | _ -> false

let examine w (e : entry) =
  match e.g with
  | None -> ()
  | Some g ->
      if not (Rewrite.is_plain_x g && flip_entry w e) then match_entry w e

let drain w =
  while not (Queue.is_empty w.todo) do
    let e = Queue.pop w.todo in
    e.queued <- false;
    if not e.retired then examine w e
  done

let on_gate ?site w (g : Gate.t) =
  match g with
  | Gate.Comment _ -> ignore (insert w g)
  | g -> (
      w.st.seen <- w.st.seen + 1;
      match Rewrite.cp_step w.cp g with
      | `Drop -> w.st.const_deleted <- w.st.const_deleted + 1
      | `Keep (g, dropped) ->
          w.st.const_controls <- w.st.const_controls + dropped;
          let e = insert w g in
          e.site <- site;
          examine w e;
          drain w)

let flush w =
  while not (Queue.is_empty w.q) do
    retire_one w
  done

(* ------------------------------------------------------------------ *)
(* Box bodies                                                          *)

(* One body, through a private window (fresh wire chains, fresh
   constant-propagation state), into an array. Input [Rot]/[Phase]
   gates are numbered in arrival order ([Circuit.angles_t] order); each
   surviving gate remembers which input site it came from, and
   [angle_sensitive] reports whether any rewrite decision read an angle
   value. When it did not, the result is valid as a {e template}: the
   same body at different angles optimizes to the same gate sequence
   with the new angles substituted at the recorded sites. *)
let optimize_gates_tagged ~window ~lookahead ~st (gates : Gate.t array) =
  let out = Vec.create () in
  let w =
    win_create ~window ~lookahead ~st (fun g site -> Vec.push out (g, site))
  in
  let nsite = ref 0 in
  Array.iter
    (fun g ->
      if Gate.has_angle g then begin
        let i = !nsite in
        incr nsite;
        on_gate ~site:i w g
      end
      else on_gate w g)
    gates;
  flush w;
  let pairs = Vec.to_array out in
  (Array.map fst pairs, Array.map snd pairs, w.angle_sensitive)

let optimize_gates ~window ~lookahead ~st (gates : Gate.t array) =
  let gs, _, _ = optimize_gates_tagged ~window ~lookahead ~st gates in
  gs

(* ------------------------------------------------------------------ *)
(* Skeleton-keyed body memo                                            *)

(* A parameter sweep optimizes the same box bodies at many angle
   vectors; the per-sink [optimized] table (exact resolved hash) misses
   on every point. This shareable memo keys on the {e skeleton} hash
   ([Circuit.hash_skeleton_t], angle-blind) instead: an
   angle-insensitive body optimizes once and replays per point by pure
   angle substitution at the recorded sites; a body where an
   angle-dependent rewrite fired is pinned [Msensitive] and always
   re-optimizes, so results never depend on cache warmth. *)

type memo_entry =
  | Msensitive
  | Mreplay of { gates : Gate.t array; sites : int option array }

type memo = {
  mtbl : (int64, memo_entry) Hashtbl.t;
  mlock : Mutex.t;
}

let memo () = { mtbl = Hashtbl.create 64; mlock = Mutex.create () }

let memo_find m h =
  Mutex.lock m.mlock;
  let r = Hashtbl.find_opt m.mtbl h in
  Mutex.unlock m.mlock;
  r

let memo_add m h e =
  Mutex.lock m.mlock;
  (* keep-first on a race: either racer's entry is equivalent (replay
     entries substitute all sites; sensitive entries are sensitive for
     every body of the skeleton) *)
  if not (Hashtbl.mem m.mtbl h) then Hashtbl.add m.mtbl h e;
  Mutex.unlock m.mlock

let replay_body ~(v : float array) (gates : Gate.t array)
    (sites : int option array) : Gate.t array =
  Array.mapi
    (fun j g ->
      match sites.(j) with
      | Some i -> Gate.with_angle g v.(i)
      | None -> g)
    gates

(* ------------------------------------------------------------------ *)
(* The sink transformer                                                *)

let sink_one ~window ~lookahead ~st ?memo (inner : 'r Sink.t) : 'r Sink.t =
  let w = win_create ~window ~lookahead ~st (fun g _ -> inner.Sink.on_gate g) in
  (* original definitions, for resolved structural hashing — the same
     memoization discipline as [Sink.unbox] and [Fuse]'s box cache:
     keyed on the resolved hash, redefinitions miss instead of alias *)
  let defs : (string, Circuit.subroutine) Hashtbl.t = Hashtbl.create 16 in
  let hashes : (string, int64) Hashtbl.t = Hashtbl.create 16 in
  let skel_hashes : (string, int64) Hashtbl.t = Hashtbl.create 16 in
  let resolved_hash ~skel cache name =
    let rec go n =
      match Hashtbl.find_opt cache n with
      | Some h -> h
      | None ->
          Hashtbl.add cache n 0L;
          let h =
            match Hashtbl.find_opt defs n with
            | None -> 0L
            | Some (s : Circuit.subroutine) ->
                if skel then
                  Circuit.hash_skeleton_t
                    ~resolve:(fun m -> Some (go m))
                    s.Circuit.circ
                else
                  Circuit.hash_t ~resolve:(fun m -> Some (go m)) s.Circuit.circ
          in
          Hashtbl.replace cache n h;
          h
    in
    go name
  in
  let body_hash name = resolved_hash ~skel:false hashes name in
  let skel_hash name = resolved_hash ~skel:true skel_hashes name in
  let optimized : (int64, Gate.t array) Hashtbl.t = Hashtbl.create 16 in
  (* Optimize one body, consulting the shareable skeleton memo first:
     replay angle-insensitive templates by substitution, re-optimize
     (and record) otherwise. *)
  let optimize_body name (sub : Circuit.subroutine) =
    let gates = sub.Circuit.circ.Circuit.gates in
    match memo with
    | None ->
        st.boxes_optimized <- st.boxes_optimized + 1;
        optimize_gates ~window ~lookahead ~st gates
    | Some m -> (
        let sh = skel_hash name in
        match memo_find m sh with
        | Some (Mreplay { gates = tpl; sites }) ->
            st.box_replayed <- st.box_replayed + 1;
            replay_body ~v:(Circuit.angles_t sub.Circuit.circ) tpl sites
        | Some Msensitive ->
            st.boxes_optimized <- st.boxes_optimized + 1;
            optimize_gates ~window ~lookahead ~st gates
        | None ->
            let gs, sites, sensitive =
              optimize_gates_tagged ~window ~lookahead ~st gates
            in
            st.boxes_optimized <- st.boxes_optimized + 1;
            memo_add m sh
              (if sensitive then Msensitive else Mreplay { gates = gs; sites });
            gs)
  in
  {
    Sink.on_inputs = inner.Sink.on_inputs;
    on_gate = (fun g -> on_gate w g);
    on_subroutine_enter = inner.Sink.on_subroutine_enter;
    on_subroutine_exit =
      (fun name (sub : Circuit.subroutine) ->
        Hashtbl.replace defs name sub;
        (* this name's hash — and that of any box calling it — changes *)
        Hashtbl.reset hashes;
        Hashtbl.reset skel_hashes;
        let h = body_hash name in
        let gates' =
          match Hashtbl.find_opt optimized h with
          | Some gs ->
              st.box_hits <- st.box_hits + 1;
              gs
          | None ->
              let gs = optimize_body name sub in
              Hashtbl.add optimized h gs;
              gs
        in
        (* every rule is phase-exact, so the rewritten body is valid
           under added controls and inversion of its call sites; the
           interface endpoints are untouched *)
        inner.Sink.on_subroutine_exit name
          { sub with Circuit.circ = { sub.Circuit.circ with Circuit.gates = gates' } });
    finish =
      (fun outs ->
        flush w;
        inner.Sink.finish outs);
  }

let default_rounds = 4

(* One window pass interleaves all rules but commits its constant
   propagation and its greedy matches in arrival order; the materialized
   fixpoint instead lets each round's pass see the previous round's
   removals (cancel an H·H pair, and the next constants pass propagates
   straight through where the H used to be). Stacking stages recovers
   exactly that: stage k's arrival stream is stage k-1's emission
   stream, so its analyses run over the already-rewritten circuit —
   k rounds of the fixpoint at O(k * window) memory. On the paper's BWT
   and TF circuits 3 stages reach the materialized fixpoint. *)
let sink ?(rounds = default_rounds) ?(window = default_window)
    ?(lookahead = Rewrite.default_lookahead) ?stats ?memo (inner : 'r Sink.t) :
    'r Sink.t =
  let st = match stats with Some s -> s | None -> stats_create () in
  let rec stack k inner =
    if k <= 0 then inner
    else stack (k - 1) (sink_one ~window ~lookahead ~st ?memo inner)
  in
  stack rounds inner

let optimize_b ?rounds ?window ?lookahead ?stats ?memo (b : Circuit.b) :
    Circuit.b =
  Sink.drive b (sink ?rounds ?window ?lookahead ?stats ?memo (Sink.circuit ()))
