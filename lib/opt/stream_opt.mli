(** Streaming peephole optimisation: the {!Rewrite} rules recast as a
    ['r Sink.t -> 'r Sink.t] transformer.

    The materialized optimizer ({!Passes}) needs the whole [Circuit.t]
    in memory, but the interesting circuits stream (64M+ gates, PR 4).
    [sink inner] interposes a bounded per-wire look-behind window
    between the gate stream and [inner]: each arriving gate first runs
    the constant-propagation transfer function ({!Rewrite.cp_step}),
    then tries the NOT-conjugation sandwich on its wire, then walks
    backward over the window — stepping past provable commuters
    ({!Quipper.Gate.commutes}) — looking for an inverse to cancel
    ({!Quipper.Transform.gates_cancel}) or a rotation to fuse
    ({!Quipper.Gate.fusion}). Unmatched gates append; the oldest window
    entry retires to [inner] when the window overflows (the same
    pending-block discipline [Fuse]'s scheduler uses), and the window
    flushes at [finish]. Memory is O(window), independent of circuit
    size.

    Every rule is phase-exact, so box bodies are optimized too: each
    [on_subroutine_exit] definition is rewritten once through a private
    window — memoized on the resolved structural {!Quipper.Circuit.hash},
    the same discipline as [Fuse]'s compiled-program cache and
    {!Quipper.Sink.unbox} — and the optimized definition is forwarded
    downstream. Call gates stay in the main window, where call/uncall
    pairs cancel and calls otherwise act as commutation barriers.

    The transformer never reorders surviving gates (rewrites happen in
    place in the window), so composing into {!Quipper.Sink.printer}
    keeps a parseable, deterministic text stream, and composing into
    {!Quipper.Sink.gatecount}/[depth] reports optimized figures. *)

open Quipper

type stats = {
  mutable seen : int;  (** logical gates that entered a window *)
  mutable emitted : int;  (** logical gates that left one *)
  mutable cancelled : int;  (** inverse pairs removed (2 gates each) *)
  mutable fused : int;  (** fusion events (each removes ≥1 gate) *)
  mutable flipped : int;  (** X-sandwiches absorbed (2 gates each) *)
  mutable const_controls : int;  (** provably-satisfied controls dropped *)
  mutable const_deleted : int;  (** gates with contradicted controls deleted *)
  mutable boxes_optimized : int;  (** box bodies rewritten *)
  mutable box_hits : int;  (** box bodies reused from the hash cache *)
  mutable box_replayed : int;
      (** box bodies served by per-angle replay of a skeleton memo *)
}
(** Per-rule counters, mirroring {!Passes}'s per-pass statistics. Box
    bodies share the counters of the sink that owns them. *)

val stats_create : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One-line summary of the counters. *)

val default_window : int
(** Retirement pressure: how many gates the look-behind window holds
    before the oldest is forced downstream (256). *)

val default_rounds : int
(** How many window stages [sink] stacks (4). One stage commits its
    analyses in arrival order; each further stage re-runs the rules
    over the previous stage's emission stream, the streaming
    counterpart of {!Passes.optimize}'s fixpoint rounds. On the
    paper's BWT and TF circuits the default stack reproduces the
    materialized fixpoint counts exactly. *)

type memo
(** A shareable box-body cache keyed on the {e skeleton} hash
    ({!Quipper.Circuit.hash_skeleton_t} — structure modulo rotation
    angles). Where the per-sink exact-hash cache misses on every point
    of a parameter sweep, this memo recognises the recurring skeleton:
    an angle-{e insensitive} body (no rewrite decision read an angle —
    no rotation cancellation or fusion fired) is optimized once and
    replayed per point by substituting the point's angles at the
    recorded surviving sites; a body where an angle-dependent rewrite
    fired is pinned sensitive and always re-optimizes. Either way the
    output for a given body is independent of cache warmth. The memo is
    mutex-protected and may be shared across sinks and domains. *)

val memo : unit -> memo
(** A fresh empty shareable skeleton memo. *)

val sink :
  ?rounds:int ->
  ?window:int ->
  ?lookahead:int ->
  ?stats:stats ->
  ?memo:memo ->
  'r Sink.t ->
  'r Sink.t
(** [sink inner] optimizes the event stream into [inner]. [rounds]
    stacks that many window stages ({!default_rounds}; memory is
    O(rounds * window)); [window] bounds per-stage look-behind
    ({!default_window}); [lookahead] bounds how many live entries a
    backward walk visits ({!Rewrite.default_lookahead}); pass [stats]
    to read the per-rule counters after [finish] — counters accumulate
    across all stages and box bodies, so [seen]/[emitted] are per-stage
    sums, not circuit sizes. *)

val optimize_b :
  ?rounds:int ->
  ?window:int ->
  ?lookahead:int ->
  ?stats:stats ->
  ?memo:memo ->
  Circuit.b ->
  Circuit.b
(** Run a materialized circuit through the streaming optimizer:
    [Sink.drive b (sink (Sink.circuit ()))]. The window covers the
    whole circuit only if [window] exceeds its gate count; with the
    default window this is the streaming result, not {!Passes.optimize}. *)
