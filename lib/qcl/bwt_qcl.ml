(** The Binary Welded Tree algorithm, generated QCL-style (paper §6,
    "QCL direct" column).

    This is the same algorithm as {!Algo_bwt} — same parameters, same
    oracle semantics, same Figure-1 diffusion — pushed through the
    QCL-style code generator of {!Qcl}: conditions are materialised into
    scratch bits at every use, conditioned blocks control every gate,
    multi-controlled gates expand inline, and scratch is global and never
    terminated. The point of the experiment is precisely that the same
    source-level algorithm costs an order of magnitude more when generated
    this way. *)

open Quipper
open Circ
module Qureg = Quipper_arith.Qureg

(* eager statement sequencing — see the note on [Qcl.iterm] *)
let iterm = Qcl.iterm

type params = Algo_bwt.params = { n : int; s : int; dt : float }

let default_params = Algo_bwt.default_params

(* ------------------------------------------------------------------ *)
(* The oracle, in QCL's pseudo-classical style: one condition
   materialisation per assignment, arguments fanned out. *)

let oracle_forward (h : Qcl.heap) ~(p : params) ~(color : int) (a : Qureg.t)
    (b : Qureg.t) (r : Wire.qubit) : unit Circ.t =
  let m = Algo_bwt.label_width p in
  (* QCL operators receive fanned-out copies of their arguments *)
  let* ac = Qcl.fanout h a in
  let* () =
    match color with
    | 0 | 1 ->
        (* b := 2a + color, one conditioned write per bit *)
        let* () =
          iterm
            (fun i -> Qcl.assign_xor h b.(i + 1) [ ctl ac.(i) ])
            (List.init (m - 1) Fun.id)
        in
        let* () = if color = 1 then qnot_ b.(0) else return () in
        Qcl.assign_xor h r [ ctl_neg ac.(m - 1) ]
    | 2 ->
        let* () =
          iterm
            (fun i -> Qcl.assign_xor h b.(i) [ ctl ac.(i + 1) ])
            (List.init (m - 1) Fun.id)
        in
        (* r := a <> 0 above bit 0: negative-controlled cascade, then not *)
        let* () =
          Qcl.mcnot h r (List.map (fun i -> ctl_neg ac.(i + 1)) (List.init (m - 1) Fun.id))
        in
        qnot_ r
    | _ ->
        (* weld involution: copy, constant xor, three mixing rounds; every
           mixed bit's two-literal condition is materialised separately *)
        let* () =
          iterm (fun i -> Qcl.assign_xor h b.(i) [ ctl ac.(i) ]) (List.init m Fun.id)
        in
        let* () = Qureg.xor_const (Algo_bwt.weld_mask ~m ~color) b in
        let* () =
          iterm
            (fun round ->
              iterm
                (fun i ->
                  let j = (i + 1 + round) mod m and k = (i + 3 + round) mod m in
                  if j <> i && k <> i && j <> k then
                    Qcl.assign_xor h b.(i) [ ctl ac.(j); ctl_neg ac.(k) ]
                  else return ())
                (List.init m Fun.id))
            [ 0; 1; 2 ]
        in
        let* () = Qcl.assign_xor h r [ ctl ac.(m - 1); ctl_neg ac.(m - 2) ] in
        Qcl.assign_xor h r [ ctl_neg ac.(m - 1); ctl ac.(m - 2) ]
  in
  Qcl.unfanout h a ac

(** QCL has no circuit reversal operator usable mid-program: the inverse of
    a pseudo-classical operator is obtained by running the (self-inverse)
    computation again, at full cost. *)
let oracle_backward = oracle_forward

(* ------------------------------------------------------------------ *)
(* The timestep, QCL-style                                             *)

let timestep (h : Qcl.heap) ~(dt : float) (a : Qureg.t) (b : Qureg.t)
    (r : Wire.qubit) : unit Circ.t =
  let m = Array.length a in
  let* zs = Qcl.acquire h 1 in
  let z = List.hd zs in
  let pairs = List.init m Fun.id in
  let* () = iterm (fun i -> gate_W a.(i) b.(i)) pairs in
  let* () =
    iterm (fun i -> Qcl.assign_xor h z [ ctl a.(i); ctl_neg b.(i) ]) pairs
  in
  let* () = Qcl.conditioned_rot h [ ctl_neg r ] (rot_expZt dt z) in
  let* () =
    iterm (fun i -> Qcl.assign_xor h z [ ctl a.(i); ctl_neg b.(i) ]) pairs
  in
  let* () = iterm (fun i -> gate_W_inv a.(i) b.(i)) pairs in
  Qcl.release h zs

(* ------------------------------------------------------------------ *)

(** The whole QCL-style BWT circuit: registers a, b, r are global (as are
    all scratch qubits — nothing is ever assertively terminated, so the
    final circuit's width is the global high-water mark). *)
let whole ~(p : params) : Wire.bit array Circ.t =
  let m = Algo_bwt.label_width p in
  let h = Qcl.new_heap () in
  let* a = Qureg.init ~width:m Algo_bwt.entrance in
  let* b = Qureg.init_zero ~width:m in
  let* r = qinit_bit false in
  let* () =
    iterm
      (fun _step ->
        iterm
          (fun color ->
            let* () = oracle_forward h ~p ~color a b r in
            let* () = timestep h ~dt:p.dt a b r in
            oracle_backward h ~p ~color a b r)
          [ 0; 1; 2; 3 ])
      (List.init p.s Fun.id)
  in
  measure (Qureg.shape m) a

let generate ?(p = default_params) () : Circuit.b =
  let b, _ = Circ.generate_unit (whole ~p) in
  b
