(** A QCL-style code generator: the baseline of the paper's §6
    comparison. Reproduces QCL's documented compilation strategy — global
    unscoped scratch (the "quheap"), condition materialisation per
    statement, no control trimming, X-conjugated negative controls, eager
    multi-control expansion. See DESIGN.md's substitution table. *)

open Quipper

type heap = { mutable free : Wire.qubit list; mutable total : int }
(** The quheap: scratch qubits are acquired in |0>, released back to the
    pool, and never assertively terminated — they stay live to the end of
    the circuit, like QCL's global temporaries. *)

val iterm : ('a -> unit Circ.t) -> 'a list -> unit Circ.t
(** Eager statement sequencing, QCL-style: the whole chain of statement
    closures (and hence every scratch-register claim) is built before the
    first statement executes. Shadows the run-time-incremental
    [Circ.iterm] inside this library — the scratch-reuse pattern, and so
    the section-6 qubit figures, depend on it. *)

val new_heap : unit -> heap
val acquire : heap -> int -> Wire.qubit list Circ.t
val release : heap -> Wire.qubit list -> unit Circ.t

val positivize :
  Gate.control list -> (Gate.control list -> unit Circ.t) -> unit Circ.t
(** QCL has no negative controls: conjugate them with X gates. *)

val mcnot : heap -> Wire.qubit -> Gate.control list -> unit Circ.t
(** Multi-controlled not, QCL-style: X-conjugation plus an inline AND
    cascade over freshly acquired scratch for more than two controls. *)

val assign_xor : heap -> Wire.qubit -> Gate.control list -> unit Circ.t
(** The pseudo-classical XOR-assignment [target ^= AND(conds)]: evaluate
    the right-hand side into a temporary, copy, uncompute — per statement,
    no sharing. *)

val quantum_if : heap -> Gate.control list -> unit Circ.t -> unit Circ.t
(** Materialise the condition into a scratch bit and control every gate
    of the body on it — nothing trimmed. *)

val conditioned_rot : heap -> Gate.control list -> unit Circ.t -> unit Circ.t

val fanout : heap -> Quipper_arith.Qureg.t -> Quipper_arith.Qureg.t Circ.t
(** QCL's pseudo-classical argument passing: operators receive copies. *)

val unfanout : heap -> Quipper_arith.Qureg.t -> Quipper_arith.Qureg.t -> unit Circ.t
