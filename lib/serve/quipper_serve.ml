(** The shot service: batched many-shot execution.

    The generate-once/run-many model (paper §1.2) implies the dominant
    production workload is not one simulation but thousands of shots of
    the same circuit from many clients. The simulators used to pay one
    full build+simulate per shot; this module pays it once per distinct
    request: simulate the circuit to its pre-measurement state on the
    cheapest capable backend (stabilizer tableau for Clifford circuits,
    the fused statevector pipeline otherwise), freeze it through the
    {!Quipper_sim.Backend.S} sampling surface, and draw every shot from
    the frozen copy under its own derived RNG — marginal cost per shot
    near zero, outcomes bit-identical to per-shot re-simulation at equal
    seeds (the sampling law, checked in [test_serve] and asserted by the
    N7 benchmark).

    Prepared states are cached across requests, keyed on
    [(Circuit.hash circuit, inputs)] — the canonical structural hash, so
    two clients submitting structurally-equal circuits share one
    preparation — and every preparation shares one {!Fuse.box_cache},
    so boxed subroutines compile once for the whole service. Batches
    fan across domains in contiguous deterministic chunks: shot [s] of
    request [r] depends only on [Rng.derive r.seed s], never on the
    worker count or which worker served it. *)

open Quipper
module Rng = Quipper_math.Rng
module Backend = Quipper_sim.Backend
module Fuse = Quipper_sim.Fuse
module Statevector = Quipper_sim.Statevector
module Clifford = Quipper_sim.Clifford
module Kernel = Quipper_sim.Kernel
module Stream_opt = Quipper_opt.Stream_opt

type request = {
  circuit : Circuit.b;
  inputs : bool list;
  shots : int;
  seed : int;
}

type reply = {
  outcomes : bool array array;  (** [shots x outputs], arity order *)
  backend : string;  (** backend that served the request *)
  cache_hit : bool;  (** prepared state came from the request cache *)
  sampled : int;  (** shots drawn from the frozen snapshot *)
  resimulated : int;  (** shots that fell back to full re-simulation *)
}

type backend_choice = [ `Auto | `Clifford | `Fused | `Statevector ]

(* A prepared circuit: how to draw one shot from the frozen
   pre-measurement state (when the backend could freeze it) and how to
   run one full end-to-end shot (the fallback, and the reference the
   frozen path must match bit for bit). Entries are immutable and
   domain-shareable. *)
type entry = {
  e_backend : string;
  e_sample : (Rng.t -> bool array) option;
  e_resim : int -> bool array;
}

type t = {
  choice : backend_choice;
  optimize : bool;
  boxes : Fuse.box_cache;
  cache : (int64 * bool list, entry) Hashtbl.t;
  inflight : (int64 * bool list, unit) Hashtbl.t;
      (** keys some worker is currently preparing *)
  lock : Mutex.t;
  cond : Condition.t;  (** signalled when an in-flight preparation settles *)
  mutable hits : int;
  mutable misses : int;
  mutable prepares : int;  (** completed preparations (the expensive runs) *)
}

type stats = { hits : int; misses : int; prepares : int; entries : int }

let create ?(backend : backend_choice = `Auto) ?(optimize = false) () =
  {
    choice = backend;
    optimize;
    boxes = Fuse.box_cache ();
    cache = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    lock = Mutex.create ();
    cond = Condition.create ();
    hits = 0;
    misses = 0;
    prepares = 0;
  }

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      prepares = t.prepares;
      entries = Hashtbl.length t.cache;
    }
  in
  Mutex.unlock t.lock;
  s

let shot_seed req s = Rng.derive req.seed s

(* The seed of the one clean preparation run. Any value works: a
   snapshot only exists when the run consumed no randomness, in which
   case the frozen state is the same whatever the seed. *)
let prep_seed = 1

let bits_of (module B : Backend.S) ?seed circuit inputs =
  Array.of_list (Backend.run_and_measure (module B) ?seed circuit inputs)

let prepare_clifford req outputs =
  let st = Clifford.run_circuit ~seed:prep_seed req.circuit req.inputs in
  {
    e_backend = "clifford";
    e_sample =
      (match Clifford.snapshot st with
      | Some snap ->
          Some (fun rng -> Array.of_list (Clifford.sample_from snap ~rng outputs))
      | None -> None);
    e_resim =
      (fun seed -> bits_of (module Backend.Clifford) ~seed req.circuit req.inputs);
  }

let measure_fused st outputs =
  Array.of_list
    (List.map
       (fun (e : Wire.endpoint) ->
         match e.Wire.ty with
         | Wire.Q -> Fuse.measure st e.Wire.wire
         | Wire.C -> Fuse.read_bit st e.Wire.wire)
       outputs)

let prepare_fused boxes req outputs =
  let st = Fuse.run_circuit ~boxes ~seed:prep_seed req.circuit req.inputs in
  {
    e_backend = "fused";
    e_sample =
      (match Fuse.snapshot st with
      | Some snap ->
          Some
            (fun rng -> Array.of_list (Statevector.sample_from snap ~rng outputs))
      | None -> None);
    e_resim =
      (fun seed ->
        let st = Fuse.run_circuit ~boxes ~seed req.circuit req.inputs in
        measure_fused st outputs);
  }

let prepare_sv req outputs =
  let st = Statevector.run_circuit ~seed:prep_seed req.circuit req.inputs in
  {
    e_backend = "statevector";
    e_sample =
      (match Statevector.snapshot st with
      | Some snap ->
          Some
            (fun rng -> Array.of_list (Statevector.sample_from snap ~rng outputs))
      | None -> None);
    e_resim =
      (fun seed ->
        bits_of (module Backend.Statevector) ~seed req.circuit req.inputs);
  }

let prepare t req =
  (* Optimizing here (not in [submit]) means the rewrite runs once per
     distinct circuit, amortized across every cached request like the
     preparation itself. Both the frozen snapshot and the resimulation
     closures capture the rewritten circuit, so sampled and resimulated
     shots of one reply always come from the same gates. The rewrite
     happens after the cache key is taken, so clients keep addressing
     the service by the circuit they submitted. *)
  let req =
    if t.optimize then { req with circuit = Stream_opt.optimize_b req.circuit }
    else req
  in
  let outputs = (Circuit.inline req.circuit).Circuit.outputs in
  match t.choice with
  | `Clifford -> prepare_clifford req outputs
  | `Fused -> prepare_fused t.boxes req outputs
  | `Statevector -> prepare_sv req outputs
  | `Auto -> (
      (* cheapest capable backend: the polynomial-time tableau where the
         gate set permits, the fused statevector pipeline otherwise *)
      match prepare_clifford req outputs with
      | e -> e
      | exception Errors.Error (Errors.Simulation _) ->
          prepare_fused t.boxes req outputs)

(* Each key is prepared exactly once, however many workers race for it:
   the first worker marks the key in-flight and prepares outside the
   lock (preparation is a full simulation and must not serialize the
   other workers); the rest block on the condition variable until the
   preparation settles and then take the cached entry as a hit. If the
   preparer dies, it clears the in-flight mark and wakes the waiters, so
   one of them retries — a failure never wedges the key. *)
let lookup_or_prepare t req =
  let key = (Circuit.hash req.circuit, req.inputs) in
  Mutex.lock t.lock;
  let rec acquire () =
    match Hashtbl.find_opt t.cache key with
    | Some e ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        `Cached e
    | None ->
        if Hashtbl.mem t.inflight key then begin
          Condition.wait t.cond t.lock;
          acquire ()
        end
        else begin
          t.misses <- t.misses + 1;
          Hashtbl.replace t.inflight key ();
          Mutex.unlock t.lock;
          `Prepare
        end
  in
  match acquire () with
  | `Cached e -> (e, true)
  | `Prepare -> (
      match prepare t req with
      | e ->
          Mutex.lock t.lock;
          Hashtbl.add t.cache key e;
          t.prepares <- t.prepares + 1;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          (e, false)
      | exception exn ->
          Mutex.lock t.lock;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          raise exn)

let submit t req : reply =
  if req.shots < 0 then invalid_arg "Quipper_serve.submit: negative shots";
  let entry, cache_hit = lookup_or_prepare t req in
  let sampled = ref 0 and resimulated = ref 0 in
  let shot s =
    let seed = shot_seed req s in
    match entry.e_sample with
    | Some draw ->
        incr sampled;
        draw (Rng.create seed)
    | None ->
        incr resimulated;
        entry.e_resim seed
  in
  let outcomes = Array.init req.shots shot in
  {
    outcomes;
    backend = entry.e_backend;
    cache_hit;
    sampled = !sampled;
    resimulated = !resimulated;
  }

let submit_batch t (reqs : request list) : (reply, string) result list =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let out = Array.make n (Error "unserved") in
  let serve i =
    out.(i) <-
      (match submit t reqs.(i) with
      | r -> Ok r
      | exception Errors.Error e -> Error (Errors.to_string e)
      | exception e -> Error (Printexc.to_string e))
  in
  let workers = min (max 1 !Kernel.num_domains) n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      serve i
    done
  else begin
    (* contiguous deterministic chunks: reply [i] is a function of
       request [i] alone, so the worker count changes wall-clock only,
       never outcomes *)
    let chunk = (n + workers - 1) / workers in
    let doms =
      List.init workers (fun w ->
          Domain.spawn (fun () ->
              let lo = w * chunk and hi = min n ((w + 1) * chunk) in
              for i = lo to hi - 1 do
                serve i
              done))
    in
    List.iter Domain.join doms
  end;
  Array.to_list out

let naive t req : bool array array =
  (* same rewrite as [prepare], so the sampling-law comparison against
     [submit] stays apples to apples under [optimize] *)
  let req =
    if t.optimize then { req with circuit = Stream_opt.optimize_b req.circuit }
    else req
  in
  let one s =
    let seed = shot_seed req s in
    match t.choice with
    | `Clifford -> bits_of (module Backend.Clifford) ~seed req.circuit req.inputs
    | `Fused -> bits_of (module Backend.Fused) ~seed req.circuit req.inputs
    | `Statevector ->
        bits_of (module Backend.Statevector) ~seed req.circuit req.inputs
    | `Auto -> (
        match bits_of (module Backend.Clifford) ~seed req.circuit req.inputs with
        | bits -> bits
        | exception Errors.Error (Errors.Simulation _) ->
            bits_of (module Backend.Fused) ~seed req.circuit req.inputs)
  in
  Array.init req.shots one

let pp_stats ppf s =
  Fmt.pf ppf "%d hits, %d misses, %d prepares, %d cached circuits" s.hits
    s.misses s.prepares s.entries
