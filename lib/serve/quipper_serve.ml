(** The shot service: batched many-shot execution.

    The generate-once/run-many model (paper §1.2) implies the dominant
    production workload is not one simulation but thousands of shots of
    the same circuit from many clients. The simulators used to pay one
    full build+simulate per shot; this module pays it once per distinct
    request: simulate the circuit to its pre-measurement state on the
    cheapest capable backend (stabilizer tableau for Clifford circuits,
    the fused statevector pipeline otherwise), freeze it through the
    {!Quipper_sim.Backend.S} sampling surface, and draw every shot from
    the frozen copy under its own derived RNG — marginal cost per shot
    near zero, outcomes bit-identical to per-shot re-simulation at equal
    seeds (the sampling law, checked in [test_serve] and asserted by the
    N7 benchmark).

    Prepared states are cached across requests, keyed on
    [(Circuit.hash circuit, inputs)] — the canonical structural hash, so
    two clients submitting structurally-equal circuits share one
    preparation — and every preparation shares one {!Fuse.box_cache},
    so boxed subroutines compile once for the whole service. Both caches
    are LRU-bounded when a capacity is given: a long-lived service under
    a diverse request stream evicts the least-recently-used preparation
    instead of growing without bound. Batches fan across domains in
    contiguous deterministic chunks: shot [s] of request [r] depends
    only on [Rng.derive r.seed s], never on the worker count or which
    worker served it.

    Parameter sweeps — the same circuit skeleton at many rotation-angle
    vectors — get a second cache level keyed on
    [(Circuit.hash_skeleton circuit, inputs)]: the fuser's block program
    is compiled once per skeleton ({!Fuse.compile_template}) and each
    point re-specializes only the rotation/diagonal kernel entries,
    skipping every per-point structural recompilation. Sweep outcomes
    are bit-identical to submitting the angle-substituted circuits one
    by one ({!sweep_requests}); sweeps never populate the per-request
    cache, so a 1024-point sweep cannot evict a hot request entry. *)

open Quipper
module Rng = Quipper_math.Rng
module Backend = Quipper_sim.Backend
module Fuse = Quipper_sim.Fuse
module Statevector = Quipper_sim.Statevector
module Clifford = Quipper_sim.Clifford
module Kernel = Quipper_sim.Kernel
module Stream_opt = Quipper_opt.Stream_opt

type request = {
  circuit : Circuit.b;
  inputs : bool list;
  shots : int;
  seed : int;
}

type sweep = {
  sw_circuit : Circuit.b;
  sw_inputs : bool list;
  sw_points : float array list;
  sw_shots : int;
  sw_seed : int;
}

type reply = {
  outcomes : bool array array;  (** [shots x outputs], arity order *)
  backend : string;  (** backend that served the request *)
  cache_hit : bool;  (** prepared state came from the request cache *)
  sampled : int;  (** shots drawn from the frozen snapshot *)
  resimulated : int;  (** shots that fell back to full re-simulation *)
}

type backend_choice = [ `Auto | `Clifford | `Fused | `Statevector ]

(* A prepared circuit: how to draw one shot from the frozen
   pre-measurement state (when the backend could freeze it) and how to
   run one full end-to-end shot (the fallback, and the reference the
   frozen path must match bit for bit). Entries are immutable and
   domain-shareable. *)
type entry = {
  e_backend : string;
  e_sample : (Rng.t -> bool array) option;
  e_resim : int -> bool array;
}

(* How a skeleton class serves its sweep points. [Tfused] holds the
   angle-generic block program: each point re-specializes only the
   rotation/diagonal kernel entries. [Tshared] is a clifford entry
   valid at {e every} point — the tableau rejects [Rot] by name and
   ignores [Phase] angles entirely, so outcomes cannot depend on the
   angle vector. [Tplain] marks classes with no template path (the
   [`Statevector] backend, [optimize] services, preparation failures):
   each point runs the ordinary per-request preparation. *)
type tentry =
  | Tfused of Fuse.template * Wire.endpoint list
  | Tshared of entry
  | Tplain

(* An LRU slot: [tick] is the owning service's logical clock at last
   use; eviction removes the minimum. A linear min-scan is O(capacity)
   but runs only on insertion into a full cache, where it is dwarfed by
   the preparation that produced the entry. *)
type 'v slot = { v : 'v; mutable tick : int }

type t = {
  choice : backend_choice;
  optimize : bool;
  capacity : int option;  (** request-cache bound; [None] = unbounded *)
  tcapacity : int option;  (** template-cache bound *)
  boxes : Fuse.box_cache;
  memo : Stream_opt.memo;
      (** shared skeleton memo for [optimize] services: box bodies
          optimize once per skeleton and replay per angle vector *)
  cache : (int64 * bool list, entry slot) Hashtbl.t;
  inflight : (int64 * bool list, unit) Hashtbl.t;
      (** keys some worker is currently preparing *)
  tcache : (int64 * bool list, tentry slot) Hashtbl.t;
  t_inflight : (int64 * bool list, unit) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;  (** signalled when an in-flight preparation settles *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable prepares : int;  (** completed preparations (the expensive runs) *)
  mutable evictions : int;
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_evictions : int;
  mutable specialized : int;  (** sweep points served by re-specialization *)
}

type stats = {
  hits : int;
  misses : int;
  prepares : int;
  entries : int;
  evictions : int;
  t_hits : int;
  t_misses : int;
  t_entries : int;
  t_evictions : int;
  specialized : int;
}

let create ?(backend : backend_choice = `Auto) ?(optimize = false) ?capacity
    ?template_capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Quipper_serve.create: capacity < 1"
  | _ -> ());
  (match template_capacity with
  | Some c when c < 1 -> invalid_arg "Quipper_serve.create: template_capacity < 1"
  | _ -> ());
  {
    choice = backend;
    optimize;
    capacity;
    tcapacity = template_capacity;
    boxes = Fuse.box_cache ();
    memo = Stream_opt.memo ();
    cache = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    tcache = Hashtbl.create 8;
    t_inflight = Hashtbl.create 8;
    lock = Mutex.create ();
    cond = Condition.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    prepares = 0;
    evictions = 0;
    t_hits = 0;
    t_misses = 0;
    t_evictions = 0;
    specialized = 0;
  }

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      prepares = t.prepares;
      entries = Hashtbl.length t.cache;
      evictions = t.evictions;
      t_hits = t.t_hits;
      t_misses = t.t_misses;
      t_entries = Hashtbl.length t.tcache;
      t_evictions = t.t_evictions;
      specialized = t.specialized;
    }
  in
  Mutex.unlock t.lock;
  s

(* ------------------------------------------------------------------ *)
(* LRU plumbing (lock held by the caller)                              *)

let bump t =
  t.clock <- t.clock + 1;
  t.clock

let evict_min tbl =
  let victim =
    Hashtbl.fold
      (fun k (s : _ slot) acc ->
        match acc with
        | Some (_, best) when best <= s.tick -> acc
        | _ -> Some (k, s.tick))
      tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove tbl k;
      true
  | None -> false

(* insert under a capacity bound, evicting least-recently-used entries
   first; returns how many were evicted *)
let bounded_add t tbl cap key value =
  let evicted = ref 0 in
  (match cap with
  | Some cap ->
      while Hashtbl.length tbl >= cap && evict_min tbl do
        incr evicted
      done
  | None -> ());
  Hashtbl.replace tbl key { v = value; tick = bump t };
  !evicted

(* ------------------------------------------------------------------ *)
(* Preparation                                                         *)

let shot_seed req s = Rng.derive req.seed s

(* The seed of the one clean preparation run. Any value works: a
   snapshot only exists when the run consumed no randomness, in which
   case the frozen state is the same whatever the seed. *)
let prep_seed = 1

let bits_of (module B : Backend.S) ?seed circuit inputs =
  Array.of_list (Backend.run_and_measure (module B) ?seed circuit inputs)

let prepare_clifford req outputs =
  let st = Clifford.run_circuit ~seed:prep_seed req.circuit req.inputs in
  {
    e_backend = "clifford";
    e_sample =
      (match Clifford.snapshot st with
      | Some snap ->
          Some (fun rng -> Array.of_list (Clifford.sample_from snap ~rng outputs))
      | None -> None);
    e_resim =
      (fun seed -> bits_of (module Backend.Clifford) ~seed req.circuit req.inputs);
  }

let measure_fused st outputs =
  Array.of_list
    (List.map
       (fun (e : Wire.endpoint) ->
         match e.Wire.ty with
         | Wire.Q -> Fuse.measure st e.Wire.wire
         | Wire.C -> Fuse.read_bit st e.Wire.wire)
       outputs)

let prepare_fused boxes req outputs =
  let st = Fuse.run_circuit ~boxes ~seed:prep_seed req.circuit req.inputs in
  {
    e_backend = "fused";
    e_sample =
      (match Fuse.snapshot st with
      | Some snap ->
          Some
            (fun rng -> Array.of_list (Statevector.sample_from snap ~rng outputs))
      | None -> None);
    e_resim =
      (fun seed ->
        let st = Fuse.run_circuit ~boxes ~seed req.circuit req.inputs in
        measure_fused st outputs);
  }

let prepare_sv req outputs =
  let st = Statevector.run_circuit ~seed:prep_seed req.circuit req.inputs in
  {
    e_backend = "statevector";
    e_sample =
      (match Statevector.snapshot st with
      | Some snap ->
          Some
            (fun rng -> Array.of_list (Statevector.sample_from snap ~rng outputs))
      | None -> None);
    e_resim =
      (fun seed ->
        bits_of (module Backend.Statevector) ~seed req.circuit req.inputs);
  }

let prepare t req =
  (* Optimizing here (not in [submit]) means the rewrite runs once per
     distinct circuit, amortized across every cached request like the
     preparation itself. Both the frozen snapshot and the resimulation
     closures capture the rewritten circuit, so sampled and resimulated
     shots of one reply always come from the same gates. The rewrite
     happens after the cache key is taken, so clients keep addressing
     the service by the circuit they submitted. *)
  let req =
    if t.optimize then
      { req with circuit = Stream_opt.optimize_b ~memo:t.memo req.circuit }
    else req
  in
  (* inlining leaves the outer interface untouched, so the output
     endpoints are [main]'s verbatim — no need to build the flat circuit *)
  let outputs = req.circuit.Circuit.main.Circuit.outputs in
  match t.choice with
  | `Clifford -> prepare_clifford req outputs
  | `Fused -> prepare_fused t.boxes req outputs
  | `Statevector -> prepare_sv req outputs
  | `Auto -> (
      (* cheapest capable backend: the polynomial-time tableau where the
         gate set permits, the fused statevector pipeline otherwise *)
      match prepare_clifford req outputs with
      | e -> e
      | exception Errors.Error (Errors.Simulation _) ->
          prepare_fused t.boxes req outputs)

(* Each key is prepared exactly once, however many workers race for it:
   the first worker marks the key in-flight and prepares outside the
   lock (preparation is a full simulation and must not serialize the
   other workers); the rest block on the condition variable until the
   preparation settles and then take the cached entry as a hit. If the
   preparer dies, it clears the in-flight mark and wakes the waiters, so
   one of them retries — a failure never wedges the key. *)
let lookup_or_prepare t req =
  let key = (Circuit.hash req.circuit, req.inputs) in
  Mutex.lock t.lock;
  let rec acquire () =
    match Hashtbl.find_opt t.cache key with
    | Some slot ->
        t.hits <- t.hits + 1;
        slot.tick <- bump t;
        Mutex.unlock t.lock;
        `Cached slot.v
    | None ->
        if Hashtbl.mem t.inflight key then begin
          Condition.wait t.cond t.lock;
          acquire ()
        end
        else begin
          t.misses <- t.misses + 1;
          Hashtbl.replace t.inflight key ();
          Mutex.unlock t.lock;
          `Prepare
        end
  in
  match acquire () with
  | `Cached e -> (e, true)
  | `Prepare -> (
      match prepare t req with
      | e ->
          Mutex.lock t.lock;
          t.evictions <- t.evictions + bounded_add t t.cache t.capacity key e;
          t.prepares <- t.prepares + 1;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          (e, false)
      | exception exn ->
          Mutex.lock t.lock;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          raise exn)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)

(* Draw [shots] outcomes from a prepared entry; [seed] is the owning
   request's, so this is the single definition both [submit] and the
   sweep path share — shot [s] depends on [Rng.derive seed s] alone. *)
let draw_shots (entry : entry) ~shots ~seed ~cache_hit : reply =
  let sampled = ref 0 and resimulated = ref 0 in
  let shot s =
    let sseed = Rng.derive seed s in
    match entry.e_sample with
    | Some draw ->
        incr sampled;
        draw (Rng.create sseed)
    | None ->
        incr resimulated;
        entry.e_resim sseed
  in
  let outcomes = Array.init shots shot in
  {
    outcomes;
    backend = entry.e_backend;
    cache_hit;
    sampled = !sampled;
    resimulated = !resimulated;
  }

let submit t req : reply =
  if req.shots < 0 then invalid_arg "Quipper_serve.submit: negative shots";
  let entry, cache_hit = lookup_or_prepare t req in
  draw_shots entry ~shots:req.shots ~seed:req.seed ~cache_hit

(* Fan [serve 0 .. serve (n-1)] across domains in contiguous
   deterministic chunks: result [i] is a function of item [i] alone, so
   the worker count changes wall-clock only, never outcomes. *)
let fan_out n serve =
  let workers = min (max 1 !Kernel.num_domains) n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      serve i
    done
  else begin
    let chunk = (n + workers - 1) / workers in
    let doms =
      List.init workers (fun w ->
          Domain.spawn (fun () ->
              let lo = w * chunk and hi = min n ((w + 1) * chunk) in
              for i = lo to hi - 1 do
                serve i
              done))
    in
    List.iter Domain.join doms
  end

let submit_batch t (reqs : request list) : (reply, string) result list =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let out = Array.make n (Error "unserved") in
  let serve i =
    out.(i) <-
      (match submit t reqs.(i) with
      | r -> Ok r
      | exception Errors.Error e -> Error (Errors.to_string e)
      | exception e -> Error (Printexc.to_string e))
  in
  fan_out n serve;
  Array.to_list out

(* ------------------------------------------------------------------ *)
(* Parameter sweeps                                                    *)

let sweep_requests (sw : sweep) : request list =
  List.mapi
    (fun i v ->
      {
        circuit = Circuit.subst_angles sw.sw_circuit v;
        inputs = sw.sw_inputs;
        shots = sw.sw_shots;
        seed = Rng.derive sw.sw_seed i;
      })
    sw.sw_points

(* Pick the serving mode for one skeleton class, probing capability at
   the first point's angles (capability is angle-independent on every
   backend: clifford rejects [Rot] by gate name and ignores [Phase]
   angles; the fused pipeline's scheduling never reads an angle). Any
   preparation failure degrades to [Tplain], where each point re-raises
   the same error through the ordinary preparation — contained per
   point, exactly like the equivalent [submit_batch]. *)
let prepare_template t (sw : sweep) (v0 : float array) : tentry =
  let outputs = sw.sw_circuit.Circuit.main.Circuit.outputs in
  let clifford_at v =
    prepare_clifford
      {
        circuit = Circuit.subst_angles sw.sw_circuit v;
        inputs = sw.sw_inputs;
        shots = 0;
        seed = 0;
      }
      outputs
  in
  let fused () =
    Tfused (Fuse.compile_template sw.sw_circuit sw.sw_inputs, outputs)
  in
  if t.optimize then
    (* the optimizer rewrites per angle vector (a rotation can cancel at
       one point and survive at another), so each point must go through
       the ordinary optimize+prepare path; the shared [memo] still
       amortizes the box-body rewrites across points *)
    Tplain
  else
    match t.choice with
    | `Statevector -> Tplain
    | `Clifford -> (
        match clifford_at v0 with e -> Tshared e | exception _ -> Tplain)
    | `Fused -> ( match fused () with te -> te | exception _ -> Tplain)
    | `Auto -> (
        match clifford_at v0 with
        | e -> Tshared e
        | exception Errors.Error (Errors.Simulation _) -> (
            match fused () with te -> te | exception _ -> Tplain)
        | exception _ -> Tplain)

(* Same once-per-key discipline as [lookup_or_prepare], on the template
   cache: skeleton classes compile once however many sweeps race. *)
let lookup_or_prepare_template t (sw : sweep) (v0 : float array) =
  let key = (Circuit.hash_skeleton sw.sw_circuit, sw.sw_inputs) in
  Mutex.lock t.lock;
  let rec acquire () =
    match Hashtbl.find_opt t.tcache key with
    | Some slot ->
        t.t_hits <- t.t_hits + 1;
        slot.tick <- bump t;
        Mutex.unlock t.lock;
        `Cached slot.v
    | None ->
        if Hashtbl.mem t.t_inflight key then begin
          Condition.wait t.cond t.lock;
          acquire ()
        end
        else begin
          t.t_misses <- t.t_misses + 1;
          Hashtbl.replace t.t_inflight key ();
          Mutex.unlock t.lock;
          `Prepare
        end
  in
  match acquire () with
  | `Cached te -> (te, true)
  | `Prepare ->
      (* [prepare_template] never raises (failures degrade to Tplain),
         but keep the key un-wedged against surprises all the same *)
      let te = try prepare_template t sw v0 with exn ->
        Mutex.lock t.lock;
        Hashtbl.remove t.t_inflight key;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        raise exn
      in
      Mutex.lock t.lock;
      t.t_evictions <- t.t_evictions + bounded_add t t.tcache t.tcapacity key te;
      Hashtbl.remove t.t_inflight key;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      (te, false)

(* Serve point [i] of a sweep: bit-identical to
   [submit t (List.nth (sweep_requests sw) i)]. [Tshared] draws from
   the one angle-independent clifford entry; [Tfused] re-specializes
   only the rotation/diagonal kernel entries ([Fuse.run_template] is
   bit-identical to re-running the substituted circuit at equal seeds);
   [Tplain] runs the ordinary preparation on the substituted circuit,
   bypassing the request cache. *)
let serve_point t (sw : sweep) (tent : tentry) ~warm i (v : float array) : reply
    =
  let seed = Rng.derive sw.sw_seed i in
  match tent with
  | Tshared e -> draw_shots e ~shots:sw.sw_shots ~seed ~cache_hit:warm
  | Tfused (tpl, outputs) ->
      let st = Fuse.run_template ~seed:prep_seed tpl v in
      let entry =
        {
          e_backend = "fused";
          e_sample =
            (match Fuse.snapshot st with
            | Some snap ->
                Some
                  (fun rng ->
                    Array.of_list (Statevector.sample_from snap ~rng outputs))
            | None -> None);
          e_resim =
            (fun seed ->
              let st = Fuse.run_template ~seed tpl v in
              measure_fused st outputs);
        }
      in
      Mutex.lock t.lock;
      t.specialized <- t.specialized + 1;
      Mutex.unlock t.lock;
      draw_shots entry ~shots:sw.sw_shots ~seed ~cache_hit:warm
  | Tplain ->
      let req =
        {
          circuit = Circuit.subst_angles sw.sw_circuit v;
          inputs = sw.sw_inputs;
          shots = sw.sw_shots;
          seed;
        }
      in
      let entry = prepare t req in
      Mutex.lock t.lock;
      t.prepares <- t.prepares + 1;
      Mutex.unlock t.lock;
      draw_shots entry ~shots:sw.sw_shots ~seed ~cache_hit:false

let submit_sweep t (sw : sweep) : (reply, string) result list =
  if sw.sw_shots < 0 then
    invalid_arg "Quipper_serve.submit_sweep: negative shots";
  match sw.sw_points with
  | [] -> []
  | v0 :: _ ->
      let points = Array.of_list sw.sw_points in
      let n = Array.length points in
      let tent, warm = lookup_or_prepare_template t sw v0 in
      let out = Array.make n (Error "unserved") in
      let serve i =
        out.(i) <-
          (match serve_point t sw tent ~warm i points.(i) with
          | r -> Ok r
          | exception Errors.Error e -> Error (Errors.to_string e)
          | exception e -> Error (Printexc.to_string e))
      in
      fan_out n serve;
      Array.to_list out

let naive t req : bool array array =
  (* same rewrite as [prepare], so the sampling-law comparison against
     [submit] stays apples to apples under [optimize] *)
  let req =
    if t.optimize then
      { req with circuit = Stream_opt.optimize_b ~memo:t.memo req.circuit }
    else req
  in
  let one s =
    let seed = shot_seed req s in
    match t.choice with
    | `Clifford -> bits_of (module Backend.Clifford) ~seed req.circuit req.inputs
    | `Fused -> bits_of (module Backend.Fused) ~seed req.circuit req.inputs
    | `Statevector ->
        bits_of (module Backend.Statevector) ~seed req.circuit req.inputs
    | `Auto -> (
        match bits_of (module Backend.Clifford) ~seed req.circuit req.inputs with
        | bits -> bits
        | exception Errors.Error (Errors.Simulation _) ->
            bits_of (module Backend.Fused) ~seed req.circuit req.inputs)
  in
  Array.init req.shots one

let pp_stats ppf s =
  Fmt.pf ppf
    "%d hits, %d misses, %d prepares, %d cached circuits, %d evicted; \
     templates: %d hits, %d misses, %d cached, %d evicted, %d points \
     specialized"
    s.hits s.misses s.prepares s.entries s.evictions s.t_hits s.t_misses
    s.t_entries s.t_evictions s.specialized
