(** The shot service: batched many-shot execution under concurrent load.

    Simulate a circuit {e once} to its pre-measurement state, freeze it
    through the {!Quipper_sim.Backend.S} sampling surface, and draw N
    measurement samples from the frozen copy — marginal cost per shot
    near zero, outcomes bit-identical to N independent end-to-end runs
    at equal seeds (the sampling law of [backend.mli], property-checked
    in [test_serve]).

    A service caches prepared states across requests, keyed on
    [(Circuit.hash, inputs)] and LRU-bounded when given a capacity, and
    shares one {!Quipper_sim.Fuse} compiled-box cache across all
    preparations; {!submit_batch} fans independent requests across
    domains in deterministic chunks, so every outcome is a function of
    the request's own seed — never of the worker count.

    {!submit_sweep} serves parameter sweeps — one circuit skeleton at
    many rotation-angle vectors — through a second cache keyed on
    [(Circuit.hash_skeleton, inputs)]: the fuser's block program
    compiles once per skeleton and each point re-specializes only the
    rotation/diagonal kernel entries, with outcomes bit-identical to
    submitting each angle-substituted circuit separately. The CLI front
    end is [bin/shotd.exe]. *)

open Quipper

type request = {
  circuit : Circuit.b;
  inputs : bool list;  (** basis-state inputs, arity order *)
  shots : int;
  seed : int;
      (** shot [s] draws from [Rng.create (Rng.derive seed s)] — the
          whole request replays from this one number *)
}

type sweep = {
  sw_circuit : Circuit.b;
      (** the circuit template; its own angles are the skeleton's
          representative and are substituted away at every point *)
  sw_inputs : bool list;  (** basis-state inputs, arity order *)
  sw_points : float array list;
      (** one angle vector per point, each of length
          [Circuit.num_angles sw_circuit], in {!Circuit.angles} order *)
  sw_shots : int;  (** shots per point *)
  sw_seed : int;
      (** point [i] serves as an independent request at seed
          [Rng.derive sw_seed i] *)
}

type reply = {
  outcomes : bool array array;
      (** [shots x outputs]: measured outputs of each shot, arity order;
          shot [s] is bit-identical to a fresh end-to-end run of the
          circuit at seed [Rng.derive seed s] on the serving backend *)
  backend : string;  (** backend that served the request *)
  cache_hit : bool;
      (** prepared state came from the request cache (for sweep points:
          the skeleton template came from the template cache) *)
  sampled : int;  (** shots drawn from the frozen snapshot *)
  resimulated : int;
      (** shots that fell back to one full re-simulation each (the
          backend declined to snapshot — e.g. mid-circuit measurement
          consumed seeded randomness) *)
}

(** Which backend prepares and serves requests. [`Auto] (default) runs
    the polynomial-time stabilizer tableau where the gate set permits
    and the gate-fusion statevector pipeline otherwise; the rest force
    the choice ([`Fused] and [`Statevector] agree bit for bit on
    classical outcomes, [`Fused] is faster). *)
type backend_choice = [ `Auto | `Clifford | `Fused | `Statevector ]

type t
(** A shot service: request cache + template cache + shared compiled-box
    cache. Safe to share across domains; all internal state is
    mutex-protected. *)

val create :
  ?backend:backend_choice ->
  ?optimize:bool ->
  ?capacity:int ->
  ?template_capacity:int ->
  unit ->
  t
(** [optimize] (default [false]) runs each circuit through the streaming
    peephole optimizer ([Quipper_opt.Stream_opt.optimize_b]) once at
    preparation time, before the backend simulates it — amortized across
    cached requests exactly like the preparation, with one shared
    skeleton memo ([Stream_opt.memo]) replaying box-body rewrites across
    the points of a sweep. Cache keys use the submitted circuit, so
    clients never see the rewrite. Outcomes stay equal in distribution,
    but not bit-for-bit against an unoptimized service at equal seeds:
    fusing rotations perturbs amplitudes at floating-point precision,
    which can flip a borderline sample.

    [capacity] bounds the request cache and [template_capacity] the
    sweep-template cache (both default unbounded; raises
    [Invalid_argument] below 1): past the bound, each insertion first
    evicts the least-recently-used entry — a long-lived service under a
    diverse stream stays at the bound instead of growing forever, at
    worst re-preparing an evicted circuit on its next appearance.
    Eviction never changes outcomes, only the [stats] counters. *)

val submit : t -> request -> reply
(** Serve one request: prepare (or fetch) the frozen pre-measurement
    state, then draw every shot from it. Each distinct key is prepared
    exactly once however many workers race for it: the first marks it
    in-flight and prepares, the rest block until the preparation settles
    and count as cache hits (asserted in [test_serve]). Raises like the
    underlying backend ([Simulation _] on incapable gate sets,
    termination assertions if the circuit trips one during
    preparation); a failed preparation wakes the waiters, one of which
    retries. *)

val submit_batch : t -> request list -> (reply, string) result list
(** Serve independent requests concurrently across up to
    [!Quipper_sim.Kernel.num_domains] domains (deterministic contiguous
    chunking — outcomes are independent of the worker count, {e and} of
    whether [submit] or [submit_batch] served them). Exceptions are
    contained per request: one failing request never loses a batch. *)

val submit_sweep : t -> sweep -> (reply, string) result list
(** Serve every point of a parameter sweep, fanned across domains like
    {!submit_batch}. The angle-independent structure — fuser block
    boundaries, commutation scheduling, wire remaps, box replay
    plumbing — is compiled once per [(Circuit.hash_skeleton, inputs)]
    class ({!Quipper_sim.Fuse.compile_template}) and cached across
    sweeps; each point then re-specializes only the rotation/diagonal
    kernel entries. Clifford-served skeletons share a single prepared
    entry across all points (the tableau ignores [Phase] angles and
    admits no other angle site). Reply [i] is bit-identical to
    [submit t (List.nth (sweep_requests sw) i)] — same outcomes, same
    shot seeds — and errors (arity-mismatched points, incapable
    backends) are contained per point. Sweep points never populate the
    per-request cache, so sweeping cannot evict hot request entries. *)

val sweep_requests : sweep -> request list
(** The equivalent independent requests, one per point: the circuit with
    the point's angles substituted ({!Circuit.subst_angles}), at seed
    [Rng.derive sw_seed i] — the naive path {!submit_sweep} must match
    bit for bit, and the reference the N10 benchmark times it against.
    Raises [Errors.Error] if a point's arity differs from
    [Circuit.num_angles sw_circuit]. *)

val naive : t -> request -> bool array array
(** The per-shot rebuild+resimulate path the service exists to beat:
    shot [s] runs the circuit end to end at seed [Rng.derive seed s],
    nothing cached, nothing frozen. Bit-identical to
    [(submit t req).outcomes] — the acceptance property the N7
    benchmark asserts before timing anything. *)

type stats = {
  hits : int;
  misses : int;
  prepares : int;
  entries : int;  (** distinct prepared circuits resident *)
  evictions : int;  (** request-cache LRU evictions *)
  t_hits : int;  (** sweeps served from a cached skeleton template *)
  t_misses : int;  (** sweeps that compiled their skeleton template *)
  t_entries : int;  (** skeleton templates resident *)
  t_evictions : int;  (** template-cache LRU evictions *)
  specialized : int;
      (** sweep points served by per-angle kernel re-specialization *)
}

val stats : t -> stats
(** Cache counters since [create] ([prepares] = completed preparation
    runs, equal to [misses] minus failed preparations plus sweep points
    prepared outside the request cache — racing workers that blocked on
    an in-flight preparation count as [hits]). *)

val pp_stats : Format.formatter -> stats -> unit
