(** The unified simulator interface.

    Quipper's paper describes a family of [run_*_generic] functions
    (§4.4.5) — classical, stabilizer, and full statevector simulation —
    that share a shape: build a state, feed it gates, measure, read.
    This module makes that shape a first-class contract: {!S} is the
    module type every simulator implements, and {!Classical},
    {!Statevector} and {!Clifford} are its instances as first-class
    modules, so differential tests, noise channels and fault-injection
    campaigns can be written once and pointed at any backend whose gate
    set permits.

    Backends differ in what a final state {e is} — a boolean per wire, a
    stabilizer tableau, an amplitude vector — so cross-run comparison goes
    through {!observation}: each backend renders its state into a
    comparable value, and {!equal_observation} knows the right equivalence
    for each (bit-for-bit for booleans, canonical-form equality for
    tableaux, equality up to one global phase for amplitude vectors). *)

open Quipper

(** What a backend can tell you about a final state. Observations are
    only comparable between runs of the same circuit structure (same
    allocation order), on the same backend. *)
type observation =
  | Obs_bits of (Wire.t * bool) list
      (** classical backend: all live wire values, sorted by wire *)
  | Obs_tableau of string
      (** stabilizer backend: canonical stabilizer generators *)
  | Obs_amplitudes of Quipper_math.Cplx.t array
      (** statevector backend: the amplitude vector in internal order *)

(** Amplitude vectors equal up to a global phase (tolerance [eps] per
    component). *)
let equal_up_to_phase ?(eps = 1e-6) (a : Quipper_math.Cplx.t array)
    (b : Quipper_math.Cplx.t array) =
  let open Quipper_math in
  Array.length a = Array.length b
  &&
  (* reference component: the largest of [a] *)
  let k = ref 0 in
  Array.iteri (fun i x -> if Cplx.norm2 x > Cplx.norm2 a.(!k) then k := i) a;
  let ak = a.(!k) and bk = b.(!k) in
  if Cplx.norm bk < eps then Cplx.norm ak < eps
  else begin
    (* phase factor aligning b to a, unit modulus only if |ak| ~ |bk| *)
    let f = Cplx.smul (1.0 /. Cplx.norm2 bk) (Cplx.mul ak (Cplx.conj bk)) in
    abs_float (Cplx.norm f -. 1.0) < eps
    && Array.for_all2 (fun x y -> Cplx.norm (Cplx.sub x (Cplx.mul f y)) < eps) a b
  end

(** The right equivalence per observation kind; observations of different
    kinds are never equal. *)
let equal_observation ?eps (a : observation) (b : observation) =
  match (a, b) with
  | Obs_bits x, Obs_bits y -> x = y
  | Obs_tableau x, Obs_tableau y -> String.equal x y
  | Obs_amplitudes x, Obs_amplitudes y -> equal_up_to_phase ?eps x y
  | _ -> false

(** The simulator contract. [run_fun] executes a circuit-producing
    function gate by gate as emitted (the QRAM picture, dynamic lifting
    included); [run_circuit] walks an already-generated circuit. Backends
    raise [Errors.Error (Simulation _)] on gates outside their gate set
    and [Termination_assertion _] on violated assertive terminations. *)
module type S = sig
  val name : string

  type state

  val create : ?seed:int -> unit -> state
  val apply_gate : state -> Gate.t -> unit

  val measure : state -> Wire.t -> bool
  (** Measure a live qubit; the wire becomes classical. Deterministic on
      the classical backend; seeded sampling elsewhere. *)

  val read_bit : state -> Wire.t -> bool
  val set_bit : state -> Wire.t -> bool -> unit

  val observe : state -> observation
  (** Render the quantum part of the state for comparison with another
      run of the same circuit structure on this backend. *)

  val run_fun :
    ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r

  val run_circuit : ?seed:int -> Circuit.b -> bool list -> state

  (** {2 Sampling surface}

      Stepping gates and terminal measurement used to be conflated:
      drawing N shots meant N full [run_circuit]s. The snapshot
      entrypoints split them — freeze the pre-measurement state once,
      then draw each shot from the frozen copy under its own RNG.

      The law (checked by the property tests, and what the shot service
      builds on): whenever [snapshot st = Some snap] for the state
      produced by [run_circuit b ins], then for every seed [s],
      [sample_from snap ~rng:(Rng.create s) outs] is bit-identical to
      [run_circuit ~seed:s b ins] followed by measuring/reading [outs]
      in order (i.e. to {!run_and_measure}). Backends certify the
      precondition themselves: [snapshot] returns [None] as soon as the
      run has consumed seeded randomness (a mid-circuit measurement),
      because then the state depends on the seed and no frozen copy
      could speak for other seeds. *)

  type snapshot

  val snapshot : state -> snapshot option
  (** Freeze the pre-measurement state, or [None] when sampling from a
      copy could not reproduce end-to-end runs (randomness already
      consumed, or the backend cannot snapshot). The frozen copy is
      immutable and shareable across domains. *)

  val sample_from :
    snapshot -> rng:Quipper_math.Rng.t -> Wire.endpoint list -> bool list
  (** Draw one shot from a frozen state: measure each [Q] endpoint and
      read each [C] endpoint in order, consuming randomness only
      from [rng]. *)
end

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)

module Statevector :
  S with type state = Statevector.state and type snapshot = Statevector.snapshot = struct
  let name = "statevector"

  type state = Statevector.state

  let create = Statevector.create
  let apply_gate = Statevector.apply_gate
  let measure = Statevector.measure
  let read_bit = Statevector.read_bit
  let set_bit = Statevector.set_bit
  let observe st = Obs_amplitudes (Statevector.amplitudes st)
  let run_fun = Statevector.run_fun
  let run_circuit = Statevector.run_circuit

  type snapshot = Statevector.snapshot

  let snapshot = Statevector.snapshot
  let sample_from = Statevector.sample_from
end

module Clifford :
  S with type state = Clifford.state and type snapshot = Clifford.snapshot = struct
  let name = "clifford"

  type state = Clifford.state

  let create = Clifford.create
  let apply_gate = Clifford.apply_gate
  let measure = Clifford.measure
  let read_bit = Clifford.read_bit
  let set_bit = Clifford.set_bit
  let observe st = Obs_tableau (Clifford.canonical st)
  let run_fun = Clifford.run_fun
  let run_circuit = Clifford.run_circuit

  type snapshot = Clifford.snapshot

  let snapshot = Clifford.snapshot
  let sample_from = Clifford.sample_from
end

module Classical : S with type state = Classical.state = struct
  let name = "classical"

  type state = Classical.state

  let create ?seed:_ () = Classical.create ()
  let apply_gate = Classical.apply_gate

  (* classically, measurement just reads the basis-state value; the wire
     keeps it as its classical value *)
  let measure = Classical.read
  let read_bit = Classical.read
  let set_bit = Classical.write
  let observe st = Obs_bits (Classical.bindings st)

  let run_fun ?seed:_ ~(in_ : ('b, 'q, 'c) Qdata.t) (input : 'b)
      (f : 'q -> 'r Circ.t) : state * 'r =
    let st = Classical.create () in
    let ctx =
      Circ.create_ctx ~boxing:false ~on_emit:(Classical.apply_gate st)
        ~lift:(fun _ w -> Classical.read st w)
        ()
    in
    let ins =
      List.map (fun ty -> { Wire.wire = Circ.alloc_input ctx ty; ty }) in_.Qdata.tys
    in
    List.iter2
      (fun (e : Wire.endpoint) v -> Classical.write st e.Wire.wire v)
      ins (in_.Qdata.bleaves input);
    let x = in_.Qdata.qbuild ins in
    let r = f x ctx in
    (st, r)

  let run_circuit ?seed:_ (b : Circuit.b) (inputs : bool list) : state =
    let flat = Circuit.inline b in
    let st = Classical.create () in
    (if List.length inputs <> List.length flat.Circuit.inputs then
       Errors.raise_ (Shape_mismatch "classical run: input arity"));
    List.iter2
      (fun (e : Wire.endpoint) v -> Classical.write st e.Wire.wire v)
      flat.Circuit.inputs inputs;
    Array.iter (Classical.apply_gate st) flat.Circuit.gates;
    st

  (* deterministic backend: every state snapshots, no randomness ever *)
  type snapshot = (Wire.t * bool) list

  let snapshot st = Some (Classical.bindings st)

  let sample_from snap ~rng:_ (outs : Wire.endpoint list) =
    List.map
      (fun (e : Wire.endpoint) ->
        match List.assoc_opt e.Wire.wire snap with
        | Some v -> v
        | None ->
            Errors.raise_
              (Simulation (Fmt.str "classical: wire %d has no value" e.Wire.wire)))
      outs
end

module Fused :
  S with type state = Fuse.state and type snapshot = Statevector.snapshot = struct
  let name = "fused"

  type state = Fuse.state

  let create ?seed () = Fuse.create ?seed ()
  let apply_gate = Fuse.apply_gate
  let measure = Fuse.measure
  let read_bit = Fuse.read_bit
  let set_bit = Fuse.set_bit
  let observe st = Obs_amplitudes (Fuse.amplitudes st)
  let run_fun ?seed ~in_ input f = Fuse.run_fun ?seed ~in_ input f
  let run_circuit ?seed b inputs = Fuse.run_circuit ?seed b inputs

  (* flush, then snapshot the underlying statevector: fused execution
     reassociates floats, but sampling happens on the flushed state with
     the statevector's own measure path, so the fused law mirrors the
     statevector one on the fused amplitudes *)
  type snapshot = Statevector.snapshot

  let snapshot = Fuse.snapshot
  let sample_from = Statevector.sample_from
end

(* ------------------------------------------------------------------ *)
(* Default sampling derivation                                         *)

(** What a simulator provides before the sampling surface. *)
module type BASE = sig
  val name : string

  type state

  val create : ?seed:int -> unit -> state
  val apply_gate : state -> Gate.t -> unit
  val measure : state -> Wire.t -> bool
  val read_bit : state -> Wire.t -> bool
  val set_bit : state -> Wire.t -> bool -> unit
  val observe : state -> observation

  val run_fun :
    ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r

  val run_circuit : ?seed:int -> Circuit.b -> bool list -> state
end

(** The law-checked default derivation for backends that cannot
    snapshot: [snapshot] always declines, so callers fall back to
    end-to-end re-simulation per shot — which satisfies the sampling
    law vacuously (there is never a [Some snap] to contradict it), and
    which the shot service's resimulation path makes bit-identical to
    the batched path by construction. [snapshot]'s type is empty, so
    [sample_from] is statically unreachable. *)
module Without_snapshot (B : BASE) : S with type state = B.state = struct
  include B

  type snapshot = |

  let snapshot _ = None
  let sample_from (snap : snapshot) ~rng:_ _ = match snap with _ -> .
end

(* ------------------------------------------------------------------ *)

let all : (module S) list =
  [ (module Classical); (module Clifford); (module Statevector); (module Fused) ]

let find name : (module S) =
  match
    List.find_opt (fun (module B : S) -> String.equal B.name name) all
  with
  | Some b -> b
  | None ->
      Errors.raise_ (Simulation (Fmt.str "backend: no simulator named %s" name))

(** Streaming simulation as a {!Quipper.Sink.t}: feed it to
    [Circ.run_streaming] to execute a circuit-producing function against
    any backend without materializing the circuit. Input wires are
    initialized from [inputs] (arity-checked against the declared input
    shape) exactly as [run_circuit] does; subroutine call gates are
    expanded on the fly by [Sink.unbox], so backends never see a
    [Subroutine] gate. [finish] renders the final state with [observe].

    On a box-free circuit the backend receives gate for gate what
    [run_circuit] applies after inlining, in the same allocation order —
    so at equal seeds the observations agree bit for bit. *)
let sink (module B : S) ?seed ~(inputs : bool list) () : observation Sink.t =
  let st = B.create ?seed () in
  Sink.unbox
    (Sink.make
       ~on_inputs:(fun es ->
         (if List.length inputs <> List.length es then
            Errors.raise_ (Shape_mismatch "streaming run: input arity"));
         List.iter2
           (fun (e : Wire.endpoint) v ->
             B.apply_gate st
               (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
           es inputs)
       ~on_gate:(fun g -> B.apply_gate st g)
       ~finish:(fun _ -> B.observe st)
       ())

(** Streaming {e fused} simulation. Unlike {!sink}, subroutine call
    gates are not structurally expanded: definitions are registered with
    the fuser as they complete, and call gates reach {!Fuse.apply_gate}
    intact, so repeated calls replay the memoized compiled block program
    instead of re-expanding the body. *)
let fused_sink ?config ?seed ~(inputs : bool list) () : observation Sink.t =
  let st = Fuse.create ?config ?seed () in
  Sink.make
    ~on_inputs:(fun es ->
      (if List.length inputs <> List.length es then
         Errors.raise_ (Shape_mismatch "streaming run: input arity"));
      List.iter2
        (fun (e : Wire.endpoint) v ->
          Fuse.apply_gate st
            (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
        es inputs)
    ~on_gate:(fun g -> Fuse.apply_gate st g)
    ~on_subroutine_exit:(fun name sub -> Fuse.define st name sub)
    ~finish:(fun _ -> Obs_amplitudes (Fuse.amplitudes st))
    ()

(** Run a circuit and measure every qubit output (classical outputs are
    read), in output-arity order — the common differential-test move,
    written once over the contract. *)
let run_and_measure (module B : S) ?seed (b : Circuit.b) (inputs : bool list) :
    bool list =
  let flat = Circuit.inline b in
  let st = B.run_circuit ?seed b inputs in
  List.map
    (fun (e : Wire.endpoint) ->
      match e.Wire.ty with
      | Wire.Q -> B.measure st e.Wire.wire
      | Wire.C -> B.read_bit st e.Wire.wire)
    flat.Circuit.outputs
