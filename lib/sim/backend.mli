(** The unified simulator interface: the paper's family of
    [run_*_generic] functions (§4.4.5) as one first-class contract.

    {!S} is the module type every simulator implements; {!Classical},
    {!Clifford} and {!Statevector} are its instances. Code that runs
    circuits and compares outcomes — differential tests, noise channels,
    fault-injection campaigns — takes a [(module S)] and works on any
    backend whose gate set permits the circuit.

    Final states are compared through {!observation}: each backend
    renders its state into a comparable value ({!equal_observation}
    applies the right equivalence per kind — exact for booleans and
    canonical tableaux, up-to-global-phase for amplitude vectors). *)

open Quipper

type observation =
  | Obs_bits of (Wire.t * bool) list
      (** classical: all live wire values, sorted by wire *)
  | Obs_tableau of string
      (** stabilizer: canonical generators, see {!Clifford.canonical} *)
  | Obs_amplitudes of Quipper_math.Cplx.t array
      (** statevector: amplitudes in internal qubit order *)

val equal_up_to_phase :
  ?eps:float -> Quipper_math.Cplx.t array -> Quipper_math.Cplx.t array -> bool
(** Amplitude vectors equal up to one global phase factor. *)

val equal_observation : ?eps:float -> observation -> observation -> bool
(** Equality for observations of the same circuit structure on the same
    backend; observations of different kinds are never equal. [eps] only
    affects amplitude comparison. *)

(** The simulator contract. Backends raise
    [Errors.Error (Simulation _)] on gates outside their gate set and
    [Termination_assertion _] on violated assertive terminations. *)
module type S = sig
  val name : string

  type state

  val create : ?seed:int -> unit -> state
  val apply_gate : state -> Gate.t -> unit

  val measure : state -> Wire.t -> bool
  (** Measure a live qubit; the wire becomes classical. Deterministic on
      the classical backend; seeded sampling elsewhere. *)

  val read_bit : state -> Wire.t -> bool
  val set_bit : state -> Wire.t -> bool -> unit

  val observe : state -> observation
  (** Render the quantum part of the state for comparison with another
      run of the same circuit structure on this backend. *)

  val run_fun :
    ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r
  (** Execute a circuit-producing function gate by gate as emitted (the
      QRAM picture, §2.1, dynamic lifting included). *)

  val run_circuit : ?seed:int -> Circuit.b -> bool list -> state
  (** Walk an already-generated (hierarchical) circuit on basis-state
      inputs. *)

  (** {2 Sampling surface}

      Stepping gates and terminal measurement used to be conflated:
      drawing N shots of a circuit meant N full [run_circuit]s. The
      snapshot entrypoints split them — freeze the pre-measurement
      state once, then draw each shot from the frozen copy under its
      own RNG at marginal cost far below a re-simulation. This is the
      surface the shot service ([Quipper_serve]) batches on.

      {b The sampling law} (property-checked in [test_serve], for the
      statevector and clifford backends, at 1 and 2 domains): whenever
      [snapshot st = Some snap] for [st = run_circuit b ins], then for
      every seed [s],
      [sample_from snap ~rng:(Rng.create s) outs] is bit-identical to
      [run_circuit ~seed:s b ins] followed by measuring/reading [outs]
      in order (i.e. to {!run_and_measure} at seed [s]). Backends
      certify the precondition themselves: [snapshot] must return
      [None] once the run has consumed seeded randomness (a mid-circuit
      measurement), because the state then depends on the seed and no
      frozen copy can speak for other seeds. Backends that cannot
      snapshot at all decline every state (see {!Without_snapshot});
      callers then fall back to per-shot re-simulation, which satisfies
      the law by construction. *)

  type snapshot

  val snapshot : state -> snapshot option
  (** Freeze the pre-measurement state, or [None] when sampling from a
      copy could not reproduce end-to-end runs. The frozen copy is
      immutable and shareable across domains. *)

  val sample_from :
    snapshot -> rng:Quipper_math.Rng.t -> Wire.endpoint list -> bool list
  (** Draw one shot from a frozen state: measure each [Q] endpoint and
      read each [C] endpoint in order, consuming randomness only from
      [rng]. *)
end

module Statevector :
  S with type state = Statevector.state and type snapshot = Statevector.snapshot
module Clifford :
  S with type state = Clifford.state and type snapshot = Clifford.snapshot
module Classical : S with type state = Classical.state

module Fused :
  S with type state = Fuse.state and type snapshot = Statevector.snapshot
(** The statevector engine behind the gate-fusion compiler ({!Fuse}):
    adjacent gates merge into dense or diagonal k-qubit blocks, and
    boxed subroutines are compiled once and replayed per call.
    Amplitudes agree with {!Statevector} up to float reassociation;
    classical observations are bit-identical at equal seeds. *)

(** What a simulator provides before the sampling surface — {!S} minus
    [snapshot]/[sample_from]. *)
module type BASE = sig
  val name : string

  type state

  val create : ?seed:int -> unit -> state
  val apply_gate : state -> Gate.t -> unit
  val measure : state -> Wire.t -> bool
  val read_bit : state -> Wire.t -> bool
  val set_bit : state -> Wire.t -> bool -> unit
  val observe : state -> observation

  val run_fun :
    ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r

  val run_circuit : ?seed:int -> Circuit.b -> bool list -> state
end

module Without_snapshot (B : BASE) : S with type state = B.state
(** The default sampling derivation for backends that cannot snapshot:
    [snapshot] declines every state (its snapshot type is empty, so
    [sample_from] is statically unreachable), and callers fall back to
    end-to-end re-simulation per shot — satisfying the sampling law
    vacuously. The property tests drive the shot service over a
    [Without_snapshot]-wrapped statevector to check the fallback path
    produces the same outcomes as the batched path. *)

val all : (module S) list
(** Every backend, cheapest first: classical, clifford, statevector,
    fused. *)

val find : string -> (module S)
(** Look a backend up by {!S.name}; raises [Simulation _] if unknown. *)

val run_and_measure : (module S) -> ?seed:int -> Circuit.b -> bool list -> bool list
(** Run a circuit, then measure every qubit output (classical outputs
    are read), in output-arity order. *)

val sink : (module S) -> ?seed:int -> inputs:bool list -> unit -> observation Sink.t
(** Streaming simulation for [Circ.run_streaming]: initializes the
    declared inputs from [inputs], applies every streamed gate to a
    fresh backend state (subroutine calls expanded on the fly by
    [Sink.unbox]), and [finish]es with [observe]. On a box-free circuit
    this sees gate for gate what [run_circuit] applies after inlining,
    so at equal seeds the observations agree bit for bit. *)

val fused_sink :
  ?config:Fuse.config -> ?seed:int -> inputs:bool list -> unit -> observation Sink.t
(** Streaming fused simulation. Unlike [sink (module Fused)], call gates
    are {e not} structurally expanded: streamed subroutine definitions
    are registered with the fuser, and calls replay the memoized
    compiled block program — the streaming path to the box cache. *)
