(** Classical (boolean) simulation of circuits.

    The paper's [run_classical_generic] (§4.4.5): circuits whose gates act
    classically on computational basis states — not/X with any controls,
    swap, initialisations, assertive terminations, measurements, classical
    logic gates — can be simulated in linear time by tracking one boolean
    per wire. This is "especially useful in testing oracles", and that is
    exactly what our test suite uses it for: every arithmetic and oracle
    circuit is validated against its classical specification on many
    inputs.

    Two interfaces are provided: [run_fun] executes a circuit-producing
    function directly (gates are evaluated as they are emitted — the
    gate-by-gate QRAM picture, with dynamic lifting available since every
    classical value is known), and [run_circuit] walks an already-generated
    flat circuit. *)

open Quipper

type state = { values : (Wire.t, bool) Hashtbl.t }

let create () = { values = Hashtbl.create 64 }

let read st w =
  match Hashtbl.find_opt st.values w with
  | Some v -> v
  | None -> Errors.raise_ (Simulation (Fmt.str "classical: wire %d has no value" w))

let write st w v = Hashtbl.replace st.values w v

let bindings st =
  List.sort compare (Hashtbl.fold (fun w v acc -> (w, v) :: acc) st.values [])

let controls_sat st (cs : Gate.control list) =
  List.for_all (fun (c : Gate.control) -> read st c.cwire = c.positive) cs

(** Execute one gate against the boolean state. Raises on gates with no
    classical action (H, W, rotations, …). *)
let apply_gate st (g : Gate.t) =
  match g with
  | Gate.Gate { name = "not" | "X"; targets = [ t ]; controls; _ } ->
      if controls_sat st controls then write st t (not (read st t))
  | Gate.Gate { name = "swap"; targets = [ a; b ]; controls; _ } ->
      if controls_sat st controls then begin
        let va = read st a and vb = read st b in
        write st a vb;
        write st b va
      end
  | Gate.Gate { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "classical: gate %s is not classical" name))
  | Gate.Rot { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "classical: rotation %s is not classical" name))
  | Gate.Phase _ -> () (* global phase is invisible classically *)
  | Gate.Init { value; wire; _ } -> write st wire value
  | Gate.Term { value; wire; _ } ->
      let v = read st wire in
      if v <> value then
        Errors.raise_ (Termination_assertion { wire; expected = value });
      Hashtbl.remove st.values wire
  | Gate.Discard { wire; _ } -> Hashtbl.remove st.values wire
  | Gate.Measure _ -> () (* value unchanged; the wire just becomes classical *)
  | Gate.Cgate { name; out; ins } ->
      let vs = List.map (read st) ins in
      let v =
        match (name, vs) with
        | "not", [ a ] -> not a
        | "xor", vs -> List.fold_left ( <> ) false vs
        | "and", vs -> List.for_all Fun.id vs
        | "or", vs -> List.exists Fun.id vs
        | _ ->
            Errors.raise_
              (Simulation (Fmt.str "classical: unknown classical gate %s" name))
      in
      write st out v
  | Gate.Subroutine { name; _ } ->
      Errors.raise_
        (Simulation
           (Fmt.str "classical: subroutine call %s (inline the circuit first)" name))
  | Gate.Comment _ -> ()

(* ------------------------------------------------------------------ *)

(** Polymorphic readout of live wire values after a [run_fun]. *)
type readout = { read : 'b 'q 'c. ('b, 'q, 'c) Qdata.t -> 'q -> 'b }

(** Run a circuit-producing function on boolean inputs of shape [in_],
    evaluating every gate as it is emitted. Returns the wire-level result
    plus a [readout] for extracting boolean values of live wires.
    Dynamic lifting works: classical values are always available. *)
let run_fun ~(in_ : ('b, 'q, 'c) Qdata.t) (input : 'b) (f : 'q -> 'r Circ.t) :
    'r * readout =
  let st = create () in
  let ctx =
    Circ.create_ctx ~boxing:false ~on_emit:(apply_gate st)
      ~lift:(fun _ w -> read st w)
      ()
  in
  let ins =
    List.map (fun ty -> { Wire.wire = Circ.alloc_input ctx ty; ty }) in_.Qdata.tys
  in
  List.iter2
    (fun (e : Wire.endpoint) v -> write st e.Wire.wire v)
    ins (in_.Qdata.bleaves input);
  let x = in_.Qdata.qbuild ins in
  let r = f x ctx in
  let readout =
    {
      read =
        (fun (type b2 q2 c2) (w : (b2, q2, c2) Qdata.t) (q : q2) : b2 ->
          w.Qdata.bbuild
            (List.map
               (fun (e : Wire.endpoint) -> read st e.Wire.wire)
               (w.Qdata.qleaves q)));
    }
  in
  (r, readout)

(** Run a classical circuit-producing function as a boolean function: the
    one-liner used all over the oracle tests. *)
let run_oracle ~(in_ : ('b, 'q, 'c) Qdata.t) ~(out : ('b2, 'q2, 'c2) Qdata.t)
    (input : 'b) (f : 'q -> 'q2 Circ.t) : 'b2 =
  let r, ro = run_fun ~in_ input f in
  ro.read out r

(** Walk an already-generated hierarchical circuit on given input booleans
    (in input-arity order); returns the output booleans (in output-arity
    order). *)
let run_circuit (b : Circuit.b) (inputs : bool list) : bool list =
  let flat = Circuit.inline b in
  let st = create () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "classical run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v -> write st e.Wire.wire v)
    flat.Circuit.inputs inputs;
  Array.iter (apply_gate st) flat.Circuit.gates;
  List.map (fun (e : Wire.endpoint) -> read st e.Wire.wire) flat.Circuit.outputs
