(** Classical (boolean) simulation: the paper's [run_classical_generic]
    (§4.4.5). Circuits whose gates act classically on basis states —
    not/X with any controls, swap, init, assertive term, measurement,
    classical logic — simulate in linear time with one boolean per wire.
    "Especially useful in testing oracles": the test suite validates every
    arithmetic and oracle circuit against its classical specification
    through this module. *)

open Quipper

type state

val create : unit -> state
val read : state -> Wire.t -> bool
val write : state -> Wire.t -> bool -> unit

val bindings : state -> (Wire.t * bool) list
(** All live wire values, sorted by wire id — the classical analogue of a
    state observation for the {!Backend} interface. *)

val apply_gate : state -> Gate.t -> unit
(** Raises [Simulation _] on gates with no classical action (H, W,
    rotations) and on subroutine calls (inline first). *)

type readout = { read : 'b 'q 'c. ('b, 'q, 'c) Qdata.t -> 'q -> 'b }
(** Polymorphic readout of live wire values after a {!run_fun}. *)

val run_fun :
  in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> 'r * readout
(** Run a circuit-producing function on boolean inputs, evaluating every
    gate as it is emitted. Dynamic lifting works: classical values are
    always available. *)

val run_oracle :
  in_:('b, 'q, 'c) Qdata.t ->
  out:('b2, 'q2, 'c2) Qdata.t ->
  'b ->
  ('q -> 'q2 Circ.t) ->
  'b2
(** Run a classical circuit-producing function as a boolean function. *)

val run_circuit : Circuit.b -> bool list -> bool list
(** Walk an already-generated (hierarchical) circuit on given input
    booleans; returns the outputs in output-arity order. *)
