(** Stabilizer (Clifford) simulation, after Aaronson–Gottesman's CHP.

    The paper's [run_clifford_generic] (§4.4.5): circuits built from
    Clifford gates (H, S, CNOT, the Paulis, swap, and V = HSH up to phase)
    can be simulated in polynomial time by tracking the stabilizer group of
    the state instead of its amplitudes. Quipper offers this as one of the
    specialised run functions, "especially useful in testing oracles" on
    superposition inputs that the classical simulator cannot handle.

    We keep the standard tableau: for [n] qubits, [2n] rows of X/Z bit
    pairs plus a sign bit; rows [0..n-1] are destabilizers, [n..2n-1]
    stabilizers. Qubits are allocated dynamically: [Init] appends a column
    in state |value>, assertive [Term] verifies that measuring the qubit
    would deterministically give the asserted value (raising
    [Termination_assertion] otherwise) and retires the column. *)

open Quipper

type state = {
  mutable cap : int; (* allocated columns *)
  mutable x : Bytes.t array; (* row-major bit matrices, one byte per bit *)
  mutable z : Bytes.t array;
  mutable r : Bytes.t; (* sign bit per row, length 2*cap *)
  mutable n : int; (* live columns (monotone; retired columns stay) *)
  mutable col : (Wire.t * int) list; (* wire -> column *)
  cenv : (Wire.t, bool) Hashtbl.t;
  rng : Quipper_math.Rng.t;
  mutable rng_touched : bool;
      (* has a random-outcome measurement consumed from [rng]? While
         false, a frozen copy can replay terminal measurements
         bit-identically under any seed — the snapshot law. *)
}

let getb b i = Bytes.get b i <> '\000'
let setb b i v = Bytes.set b i (if v then '\001' else '\000')

let create ?(seed = 1) () =
  {
    cap = 0;
    x = [||];
    z = [||];
    r = Bytes.create 0;
    n = 0;
    col = [];
    cenv = Hashtbl.create 16;
    rng = Quipper_math.Rng.create seed;
    rng_touched = false;
  }

let column st w =
  match List.assoc_opt w st.col with
  | Some c -> c
  | None ->
      Errors.raise_ (Simulation (Fmt.str "clifford: wire %d is not a live qubit" w))

let read_bit st w =
  match Hashtbl.find_opt st.cenv w with
  | Some v -> v
  | None ->
      Errors.raise_ (Simulation (Fmt.str "clifford: wire %d has no classical value" w))

(** Grow capacity to at least [cap'] columns, preserving contents. *)
let grow st cap' =
  if cap' > st.cap then begin
    let cap' = max cap' (max 8 (2 * st.cap)) in
    let rows = 2 * cap' in
    let x = Array.init rows (fun _ -> Bytes.make cap' '\000') in
    let z = Array.init rows (fun _ -> Bytes.make cap' '\000') in
    let r = Bytes.make rows '\000' in
    (* old rows: destabilizers 0..n-1 move to 0.., stabilizers n..2n-1 move
       to cap'.. *)
    for i = 0 to st.n - 1 do
      Bytes.blit st.x.(i) 0 x.(i) 0 st.n;
      Bytes.blit st.z.(i) 0 z.(i) 0 st.n;
      setb r i (getb st.r i);
      Bytes.blit st.x.(st.cap + i) 0 x.(cap' + i) 0 st.n;
      Bytes.blit st.z.(st.cap + i) 0 z.(cap' + i) 0 st.n;
      setb r (cap' + i) (getb st.r (st.cap + i))
    done;
    st.x <- x;
    st.z <- z;
    st.r <- r;
    st.cap <- cap'
  end

(* With the layout above, destabilizer row i lives at index i and
   stabilizer row i at index cap + i. *)
let drow _st i = i
let srow st i = st.cap + i

let add_qubit st (w : Wire.t) (value : bool) =
  grow st (st.n + 1);
  let q = st.n in
  st.n <- st.n + 1;
  (* re-home rows: with capacity-based layout, rows need no move; the new
     qubit's destabilizer is X_q, stabilizer is (-1)^value Z_q *)
  setb st.x.(drow st q) q true;
  setb st.z.(srow st q) q true;
  setb st.r (srow st q) value;
  st.col <- (w, q) :: st.col

(* ------------------------------------------------------------------ *)
(* The CHP update rules                                                *)

let hadamard st q =
  for i = 0 to (2 * st.cap) - 1 do
    let xi = getb st.x.(i) q and zi = getb st.z.(i) q in
    if xi && zi then setb st.r i (not (getb st.r i));
    setb st.x.(i) q zi;
    setb st.z.(i) q xi
  done

let phase_s st q =
  for i = 0 to (2 * st.cap) - 1 do
    let xi = getb st.x.(i) q and zi = getb st.z.(i) q in
    if xi && zi then setb st.r i (not (getb st.r i));
    setb st.z.(i) q (xi <> zi)
  done

let cnot st a b =
  for i = 0 to (2 * st.cap) - 1 do
    let xa = getb st.x.(i) a and za = getb st.z.(i) a in
    let xb = getb st.x.(i) b and zb = getb st.z.(i) b in
    if xa && zb && xb = za then setb st.r i (not (getb st.r i));
    setb st.x.(i) b (xb <> xa);
    setb st.z.(i) a (za <> zb)
  done

let gate_x st q =
  (* X = H Z H = H S S H *)
  hadamard st q; phase_s st q; phase_s st q; hadamard st q

let gate_z st q = phase_s st q; phase_s st q
let gate_y st q = gate_z st q; gate_x st q (* up to global phase *)
let gate_s_inv st q = phase_s st q; phase_s st q; phase_s st q
let gate_v st q = hadamard st q; phase_s st q; hadamard st q (* up to phase *)
let gate_v_inv st q = hadamard st q; gate_s_inv st q; hadamard st q
let swap st a b = cnot st a b; cnot st b a; cnot st a b

(* rowsum (Aaronson-Gottesman): row h += row i, tracking the sign.
   [tracked = false] is for destabilizer targets: a destabilizer times
   its partner stabilizer anticommutes, so the product legitimately
   picks up an [i] factor — but destabilizer signs are never read (CHP
   stores an arbitrary bit there), so the sign is recorded as whatever
   the mod-4 exponent rounds to instead of raising. *)
let rowsum ?(tracked = true) st h i =
  let g x1 z1 x2 z2 =
    (* exponent of i contributed when multiplying Paulis *)
    match (x1, z1) with
    | false, false -> 0
    | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
    | true, false -> if z2 && x2 then 1 else if z2 then -1 else 0
    | false, true -> if x2 && z2 then -1 else if x2 then 1 else 0
  in
  let acc = ref ((if getb st.r h then 2 else 0) + if getb st.r i then 2 else 0) in
  for j = 0 to st.n - 1 do
    acc := !acc + g (getb st.x.(i) j) (getb st.z.(i) j) (getb st.x.(h) j) (getb st.z.(h) j);
    setb st.x.(h) j (getb st.x.(h) j <> getb st.x.(i) j);
    setb st.z.(h) j (getb st.z.(h) j <> getb st.z.(i) j)
  done;
  let m = ((!acc mod 4) + 4) mod 4 in
  if m = 0 then setb st.r h false
  else if m = 2 then setb st.r h true
  else if not tracked then setb st.r h false
  else Errors.raise_ (Simulation "clifford: rowsum produced imaginary sign")

(** Measure column [q]. Returns (outcome, was_deterministic). *)
let measure_col st q : bool * bool =
  (* is some stabilizer row's x bit set at q? *)
  let p = ref (-1) in
  for i = 0 to st.n - 1 do
    if !p < 0 && getb st.x.(srow st i) q then p := i
  done;
  if !p >= 0 then begin
    (* random outcome *)
    let p = !p in
    let sp = srow st p in
    (* every other row with x bit at q gets row p multiplied in *)
    for i = 0 to st.n - 1 do
      let d = drow st i and s = srow st i in
      if d <> sp && getb st.x.(d) q then rowsum ~tracked:false st d sp;
      if s <> sp && getb st.x.(s) q then rowsum st s sp
    done;
    (* destabilizer p := old stabilizer p *)
    let dp = drow st p in
    Bytes.blit st.x.(sp) 0 st.x.(dp) 0 st.n;
    Bytes.blit st.z.(sp) 0 st.z.(dp) 0 st.n;
    setb st.r dp (getb st.r sp);
    (* stabilizer p := +/- Z_q with random sign *)
    Bytes.fill st.x.(sp) 0 st.cap '\000';
    Bytes.fill st.z.(sp) 0 st.cap '\000';
    setb st.z.(sp) q true;
    st.rng_touched <- true;
    let outcome = Quipper_math.Rng.bool st.rng in
    setb st.r sp outcome;
    (outcome, false)
  end
  else begin
    (* deterministic: accumulate into a scratch row *)
    let scratch_x = Bytes.make st.cap '\000' in
    let scratch_z = Bytes.make st.cap '\000' in
    let scratch_r = ref false in
    (* emulate rowsum into scratch *)
    let g x1 z1 x2 z2 =
      match (x1, z1) with
      | false, false -> 0
      | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
      | true, false -> if z2 && x2 then 1 else if z2 then -1 else 0
      | false, true -> if x2 && z2 then -1 else if x2 then 1 else 0
    in
    let addrow i =
      let acc = ref ((if !scratch_r then 2 else 0) + if getb st.r i then 2 else 0) in
      for j = 0 to st.n - 1 do
        acc :=
          !acc + g (getb st.x.(i) j) (getb st.z.(i) j) (getb scratch_x j) (getb scratch_z j);
        setb scratch_x j (getb scratch_x j <> getb st.x.(i) j);
        setb scratch_z j (getb scratch_z j <> getb st.z.(i) j)
      done;
      let m = ((!acc mod 4) + 4) mod 4 in
      scratch_r := m = 2
    in
    for i = 0 to st.n - 1 do
      if getb st.x.(drow st i) q then addrow (srow st i)
    done;
    (!scratch_r, true)
  end

(** Whether measuring column [q] would be deterministic, and if so what
    the outcome is — {e without} mutating the tableau or consuming
    randomness. This is [measure_col]'s deterministic branch, factored
    out so the frame engine can probe eligibility non-destructively. *)
let deterministic_outcome_col st q : bool option =
  let p = ref (-1) in
  for i = 0 to st.n - 1 do
    if !p < 0 && getb st.x.(srow st i) q then p := i
  done;
  if !p >= 0 then None
  else begin
    let scratch_x = Bytes.make st.cap '\000' in
    let scratch_z = Bytes.make st.cap '\000' in
    let scratch_r = ref false in
    let g x1 z1 x2 z2 =
      match (x1, z1) with
      | false, false -> 0
      | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
      | true, false -> if z2 && x2 then 1 else if z2 then -1 else 0
      | false, true -> if x2 && z2 then -1 else if x2 then 1 else 0
    in
    let addrow i =
      let acc = ref ((if !scratch_r then 2 else 0) + if getb st.r i then 2 else 0) in
      for j = 0 to st.n - 1 do
        acc :=
          !acc + g (getb st.x.(i) j) (getb st.z.(i) j) (getb scratch_x j) (getb scratch_z j);
        setb scratch_x j (getb scratch_x j <> getb st.x.(i) j);
        setb scratch_z j (getb scratch_z j <> getb st.z.(i) j)
      done;
      let m = ((!acc mod 4) + 4) mod 4 in
      scratch_r := m = 2
    in
    for i = 0 to st.n - 1 do
      if getb st.x.(drow st i) q then addrow (srow st i)
    done;
    Some !scratch_r
  end

let deterministic_outcome st w = deterministic_outcome_col st (column st w)
let column_of = column

(** Does the Pauli described by [frames] — [(column, x, z)] components,
    sign irrelevant — commute with every stabilizer generator of [st]?
    For a full-rank tableau this decides whether conjugating the state by
    that Pauli leaves the stabilizer group (and hence the state, up to
    global phase) unchanged: the fault is {e masked}. *)
let frame_commutes st (frames : (int * bool * bool) list) : bool =
  let commutes_with_row row =
    List.fold_left
      (fun acc (q, fx, fz) ->
        let acc = if fx && getb st.z.(row) q then not acc else acc in
        if fz && getb st.x.(row) q then not acc else acc)
      false frames
    = false
  in
  let ok = ref true in
  for i = 0 to st.n - 1 do
    if not (commutes_with_row (srow st i)) then ok := false
  done;
  !ok

let retire st w =
  st.col <- List.filter (fun (w', _) -> w' <> w) st.col

let set_bit st w v = Hashtbl.replace st.cenv w v

(** Measure wire [w]: sample (or read off the deterministic outcome),
    retire the column, move the wire to the classical environment. *)
let measure st (w : Wire.t) : bool =
  let q = column st w in
  let outcome, _ = measure_col st q in
  retire st w;
  Hashtbl.replace st.cenv w outcome;
  outcome

(** Canonical form of the stabilizer group, over all allocated columns
    (live and retired): Gauss–Jordan reduction of the stabilizer rows to
    the unique reduced row-echelon basis — X pivots first, then Z pivots —
    with signs tracked by the same Pauli-product bookkeeping as [rowsum].
    Two states of identically-allocated runs describe the same stabilizer
    group iff their canonical strings are equal; this is what lets the
    fault-injection engine compare Clifford states without amplitudes. *)
let canonical st : string =
  let n = st.n in
  let xs = Array.init n (fun i -> Array.init n (fun j -> getb st.x.(srow st i) j)) in
  let zs = Array.init n (fun i -> Array.init n (fun j -> getb st.z.(srow st i) j)) in
  let rs = Array.init n (fun i -> getb st.r (srow st i)) in
  let g x1 z1 x2 z2 =
    match (x1, z1) with
    | false, false -> 0
    | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
    | true, false -> if z2 && x2 then 1 else if z2 then -1 else 0
    | false, true -> if x2 && z2 then -1 else if x2 then 1 else 0
  in
  (* dst := dst * src, in the copied row set *)
  let rowmul dst src =
    let acc = ref ((if rs.(dst) then 2 else 0) + if rs.(src) then 2 else 0) in
    for j = 0 to n - 1 do
      acc := !acc + g xs.(src).(j) zs.(src).(j) xs.(dst).(j) zs.(dst).(j);
      xs.(dst).(j) <- xs.(dst).(j) <> xs.(src).(j);
      zs.(dst).(j) <- zs.(dst).(j) <> zs.(src).(j)
    done;
    rs.(dst) <- ((!acc mod 4) + 4) mod 4 = 2
  in
  let swap_rows i k =
    if i <> k then begin
      let t = xs.(i) in xs.(i) <- xs.(k); xs.(k) <- t;
      let t = zs.(i) in zs.(i) <- zs.(k); zs.(k) <- t;
      let t = rs.(i) in rs.(i) <- rs.(k); rs.(k) <- t
    end
  in
  let rank = ref 0 in
  let reduce sel =
    for j = 0 to n - 1 do
      let pivot = ref (-1) in
      for i = !rank to n - 1 do
        if !pivot < 0 && sel i j then pivot := i
      done;
      if !pivot >= 0 then begin
        swap_rows !rank !pivot;
        for i = 0 to n - 1 do
          if i <> !rank && sel i j then rowmul i !rank
        done;
        incr rank
      end
    done
  in
  reduce (fun i j -> xs.(i).(j));
  reduce (fun i j -> zs.(i).(j));
  let buf = Buffer.create ((n + 2) * n) in
  for i = 0 to n - 1 do
    Buffer.add_char buf (if rs.(i) then '-' else '+');
    for j = 0 to n - 1 do
      Buffer.add_char buf
        (match (xs.(i).(j), zs.(i).(j)) with
        | false, false -> 'I'
        | true, false -> 'X'
        | false, true -> 'Z'
        | true, true -> 'Y')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let resolve_classical_controls st (cs : Gate.control list) =
  (* split classical controls (evaluate) from quantum ones *)
  let sat = ref true in
  let qctl =
    List.filter
      (fun (c : Gate.control) ->
        match c.cty with
        | Wire.C ->
            if read_bit st c.cwire <> c.positive then sat := false;
            false
        | Wire.Q -> true)
      cs
  in
  (!sat, qctl)

let apply_gate st (g : Gate.t) =
  (* name the offending gate AND its wire(s): "clifford: T on wire 3 is
     not a Clifford operation" pinpoints the rejection in a big circuit *)
  let not_clifford ?(wires = []) what =
    let pp_wires ppf = function
      | [] -> ()
      | [ w ] -> Fmt.pf ppf " on wire %d" w
      | ws -> Fmt.pf ppf " on wires %s" (String.concat "," (List.map string_of_int ws))
    in
    Errors.raise_
      (Simulation
         (Fmt.str "clifford: %s%a is not a Clifford operation" what pp_wires wires))
  in
  match g with
  | Gate.Gate { name; inv; targets; controls } -> (
      let sat, qctl = resolve_classical_controls st controls in
      if sat then
        match (name, targets, qctl) with
        | "not", [ t ], [] | "X", [ t ], [] -> gate_x st (column st t)
        | "not", [ t ], [ c ] | "X", [ t ], [ c ] ->
            let cc = column st c.Gate.cwire and ct = column st t in
            if c.Gate.positive then cnot st cc ct
            else begin
              gate_x st cc; cnot st cc ct; gate_x st cc
            end
        | ("not" | "X"), ts, _ -> not_clifford ~wires:ts "multiply-controlled not"
        | "Y", [ t ], [] -> gate_y st (column st t)
        | "Z", [ t ], [] -> gate_z st (column st t)
        | "Z", [ t ], [ c ] when c.Gate.positive ->
            (* CZ = H(t); CNOT; H(t) *)
            let ct = column st t in
            hadamard st ct;
            cnot st (column st c.Gate.cwire) ct;
            hadamard st ct
        | "H", [ t ], [] -> hadamard st (column st t)
        | "S", [ t ], [] ->
            if inv then gate_s_inv st (column st t) else phase_s st (column st t)
        | "V", [ t ], [] ->
            if inv then gate_v_inv st (column st t) else gate_v st (column st t)
        | "swap", [ a; b ], [] -> swap st (column st a) (column st b)
        | (n, ts, _) -> not_clifford ~wires:ts n)
  | Gate.Rot { name; targets; _ } -> not_clifford ~wires:targets name
  | Gate.Phase _ -> () (* global phase: stabilizer state unchanged *)
  | Gate.Init { ty = Wire.Q; value; wire } -> add_qubit st wire value
  | Gate.Init { ty = Wire.C; value; wire } -> Hashtbl.replace st.cenv wire value
  | Gate.Term { ty = Wire.Q; value; wire } ->
      let q = column st wire in
      let outcome, deterministic = measure_col st q in
      if not deterministic then
        Errors.raise_ (Termination_assertion { wire; expected = value })
      else if outcome <> value then
        Errors.raise_ (Termination_assertion { wire; expected = value })
      else retire st wire
  | Gate.Term { ty = Wire.C; value; wire } ->
      if read_bit st wire <> value then
        Errors.raise_ (Termination_assertion { wire; expected = value });
      Hashtbl.remove st.cenv wire
  | Gate.Discard { ty = Wire.Q; wire } ->
      let q = column st wire in
      ignore (measure_col st q);
      retire st wire
  | Gate.Discard { ty = Wire.C; wire } -> Hashtbl.remove st.cenv wire
  | Gate.Measure { wire } -> ignore (measure st wire)
  | Gate.Cgate { name; out; ins } ->
      let vs = List.map (read_bit st) ins in
      let v =
        match (name, vs) with
        | "not", [ a ] -> not a
        | "xor", vs -> List.fold_left ( <> ) false vs
        | "and", vs -> List.for_all Fun.id vs
        | "or", vs -> List.exists Fun.id vs
        | _ -> Errors.raise_ (Simulation (Fmt.str "unknown classical gate %s" name))
      in
      Hashtbl.replace st.cenv out v
  | Gate.Subroutine { name; _ } ->
      Errors.raise_ (Simulation (Fmt.str "clifford: subroutine call %s (inline first)" name))
  | Gate.Comment _ -> ()

(* ------------------------------------------------------------------ *)

(** Execute a circuit-producing function under stabilizer semantics, gate
    by gate, with dynamic lifting available. *)
let run_fun ?seed ~(in_ : ('b, 'q, 'c) Qdata.t) (input : 'b)
    (f : 'q -> 'r Circ.t) : state * 'r =
  let st = create ?seed () in
  let ctx =
    Circ.create_ctx ~boxing:false ~on_emit:(apply_gate st)
      ~lift:(fun _ w -> read_bit st w)
      ()
  in
  let ins =
    List.map (fun ty -> { Wire.wire = Circ.alloc_input ctx ty; ty }) in_.Qdata.tys
  in
  List.iter2
    (fun (e : Wire.endpoint) v ->
      match e.Wire.ty with
      | Wire.Q -> add_qubit st e.Wire.wire v
      | Wire.C -> Hashtbl.replace st.cenv e.Wire.wire v)
    ins (in_.Qdata.bleaves input);
  let x = in_.Qdata.qbuild ins in
  let r = f x ctx in
  (st, r)

(** Measure every leaf of [q] and read the boolean result. *)
let measure_and_read st (w : ('b, 'q, 'c) Qdata.t) (q : 'q) : 'b =
  let bools =
    List.map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with
        | Wire.Q -> measure st e.Wire.wire
        | Wire.C -> read_bit st e.Wire.wire)
      (w.Qdata.qleaves q)
  in
  w.Qdata.bbuild bools

let run_circuit ?seed (b : Circuit.b) (inputs : bool list) : state =
  let flat = Circuit.inline b in
  let st = create ?seed () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "clifford run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      match e.Wire.ty with
      | Wire.Q -> add_qubit st e.Wire.wire v
      | Wire.C -> Hashtbl.replace st.cenv e.Wire.wire v)
    flat.Circuit.inputs inputs;
  Array.iter (apply_gate st) flat.Circuit.gates;
  st

(* ------------------------------------------------------------------ *)
(* Snapshots: frozen pre-measurement tableaux for many-shot sampling   *)

(** A frozen deep copy of a tableau (rows, signs, wire columns,
    classical environment). No RNG: each {!sample_from} call brings its
    own. *)
type snapshot = {
  s_cap : int;
  s_x : Bytes.t array;
  s_z : Bytes.t array;
  s_r : Bytes.t;
  s_n : int;
  s_col : (Wire.t * int) list;
  s_cenv : (Wire.t, bool) Hashtbl.t;
}

let snapshot st : snapshot option =
  if st.rng_touched then None
  else
    Some
      {
        s_cap = st.cap;
        s_x = Array.map Bytes.copy st.x;
        s_z = Array.map Bytes.copy st.z;
        s_r = Bytes.copy st.r;
        s_n = st.n;
        s_col = st.col;
        s_cenv = Hashtbl.copy st.cenv;
      }

let sample_from (snap : snapshot) ~(rng : Quipper_math.Rng.t)
    (outputs : Wire.endpoint list) : bool list =
  (* Working tableau per shot: [measure] then performs the same rowsum
     surgery and (for random outcomes) the same [Rng.bool] draws an
     end-to-end run performs at its outputs, so outcomes are
     bit-identical to [run_circuit] + per-output [measure] at the seed
     [rng] was created from — deterministic outcomes consume no
     randomness in either path. *)
  let st =
    {
      cap = snap.s_cap;
      x = Array.map Bytes.copy snap.s_x;
      z = Array.map Bytes.copy snap.s_z;
      r = Bytes.copy snap.s_r;
      n = snap.s_n;
      col = snap.s_col;
      cenv = Hashtbl.copy snap.s_cenv;
      rng;
      rng_touched = false;
    }
  in
  List.map
    (fun (e : Wire.endpoint) ->
      match e.Wire.ty with
      | Wire.Q -> measure st e.Wire.wire
      | Wire.C -> read_bit st e.Wire.wire)
    outputs
