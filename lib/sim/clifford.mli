(** Stabilizer (Clifford) simulation after Aaronson–Gottesman's CHP: the
    paper's [run_clifford_generic] (§4.4.5). Circuits from H, S, CNOT,
    the Paulis, swap and V simulate in polynomial time; qubits allocate
    dynamically, assertive terminations verify determinism of the
    asserted outcome. *)

open Quipper

type state

val create : ?seed:int -> unit -> state
val read_bit : state -> Wire.t -> bool

val set_bit : state -> Wire.t -> bool -> unit
(** Overwrite a classical wire's value (used by readout noise). *)

val measure : state -> Wire.t -> bool
(** Measure a live qubit: deterministic outcomes are read off the
    tableau (no randomness consumed), random ones sample the seeded
    stream; the wire becomes classical. *)

val canonical : state -> string
(** Unique canonical form of the stabilizer group over all allocated
    columns (Gauss–Jordan reduced generators with signs, one row per
    line). Two identically-allocated runs have equal canonical strings
    iff they are in the same stabilizer state — the Clifford analogue of
    comparing amplitude vectors. *)

val apply_gate : state -> Gate.t -> unit
(** Raises [Simulation _] on non-Clifford gates (T, rotations,
    multiply-controlled gates) and subroutine calls. *)

(** {2 Probes for the Pauli-frame engine} *)

val column_of : state -> Wire.t -> int
(** Tableau column of a live qubit wire. Columns are never reused, so a
    column id captured before measuring/terminating a wire stays valid
    for {!frame_commutes} afterwards. Raises [Simulation _] if the wire
    is not a live qubit. *)

val deterministic_outcome : state -> Wire.t -> bool option
(** [Some v] iff measuring the wire now would deterministically give
    [v]; [None] if the outcome would be random. Mutates nothing and
    consumes no randomness — the frame engine's eligibility probe for
    measurements, discards and terminations. *)

val frame_commutes : state -> (int * bool * bool) list -> bool
(** Does the Pauli with the given [(column, x, z)] components (sign
    ignored) commute with every stabilizer generator? For the full-rank
    tableaux this backend maintains, that is exactly "conjugating the
    state by this Pauli changes nothing up to global phase" — the
    frame engine's masked-fault test. *)

val run_fun :
  ?seed:int -> in_:('b, 'q, 'c) Qdata.t -> 'b -> ('q -> 'r Circ.t) -> state * 'r

val measure_and_read : state -> ('b, 'q, 'c) Qdata.t -> 'q -> 'b
val run_circuit : ?seed:int -> Circuit.b -> bool list -> state

(** {2 Snapshots}

    Many-shot sampling support (the shot service): freeze the
    pre-measurement tableau once, then replay terminal measurements
    from the frozen copy under per-shot RNGs — no rebuild, no
    re-simulation. Same contract as {!Statevector.snapshot}. *)

type snapshot
(** A frozen deep copy of a tableau. Immutable: unaffected by further
    use of the source state, shareable across domains. *)

val snapshot : state -> snapshot option
(** [None] when a random-outcome measurement has already consumed from
    the state's RNG (the state then depends on the seed). While no
    randomness was consumed, for every seed [s],
    [sample_from (snapshot st) ~rng:(Rng.create s) outs] is
    bit-identical to an end-to-end run with [~seed:s] measuring [outs]
    in order. *)

val sample_from :
  snapshot -> rng:Quipper_math.Rng.t -> Wire.endpoint list -> bool list
(** Draw one shot: copy the tableau, measure each [Q] output and read
    each [C] output in order — the same rowsum surgery and RNG draws an
    end-to-end run performs at its outputs. *)
