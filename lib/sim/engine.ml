(** The unified engine-selection knob for fault campaigns.

    {!Noise} and {!Inject} historically each declared their own
    [[ `Auto | `Frame | `Slow ]] and every [bin/] command parsed its
    own spelling of it, with defaults that could drift apart. This
    module is now the single definition: the campaign modules alias
    their [engine] types to {!t} (kept one release for compatibility),
    and every entry point defaults to {!default}, which honours the
    [QUIPPER_ENGINE] environment variable the same way everywhere —
    the engine analogue of [QUIPPER_DOMAINS] in {!Kernel}. *)

type t = [ `Auto | `Frame | `Slow ]

let to_string = function `Auto -> "auto" | `Frame -> "frame" | `Slow -> "slow"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok `Auto
  | "frame" -> Ok `Frame
  | "slow" -> Ok `Slow
  | _ -> Error (Fmt.str "unknown engine %S (expected auto, frame or slow)" s)

let default () =
  match Sys.getenv_opt "QUIPPER_ENGINE" with
  | None -> `Auto
  | Some s -> ( match of_string s with Ok e -> e | Error _ -> `Auto)

let pp ppf e = Fmt.string ppf (to_string e)
