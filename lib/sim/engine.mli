(** The unified engine-selection knob for fault campaigns.

    One definition of the [`Auto]/[`Frame]/[`Slow] choice shared by
    {!Noise}, {!Inject} and every [bin/] command: [`Auto] (the default)
    runs the Pauli-frame engine ({!Frame}) where the circuit is
    eligible and falls back to one-full-simulation-per-attempt;
    [`Frame] and [`Slow] force the choice. Outcomes are bit-identical
    across engines at equal seeds — only throughput differs. *)

type t = [ `Auto | `Frame | `Slow ]

val to_string : t -> string
(** ["auto"], ["frame"] or ["slow"] — the one canonical spelling per
    engine, as accepted by {!of_string} and the [bin/] CLIs. *)

val of_string : string -> (t, string) result
(** Parse an engine name (case-insensitive): exactly the canonical
    spellings of {!to_string}; anything else is an [Error]. *)

val default : unit -> t
(** The default engine every campaign entry point uses: [`Auto], unless
    the environment variable [QUIPPER_ENGINE] holds a recognised
    spelling — the engine analogue of [QUIPPER_DOMAINS] ({!Kernel}),
    so benchmarks and CI pin the choice without code edits. *)

val pp : Format.formatter -> t -> unit
