(** Pauli-frame fault propagation: million-trial noise campaigns without
    re-simulation.

    The slow fault machinery ({!Noise}, {!Inject}) re-runs the whole
    circuit per noisy trial, so a resilience sweep costs
    [trials x base simulation]. This engine exploits the standard
    error-correction observation: when the circuit is Clifford and every
    collapse event is deterministic, a noisy run differs from the clean
    run only by a {e Pauli frame} — one (x, z) bitpair per live qubit
    wire recording which Pauli error is currently riding on it. The
    clean circuit runs {e once} (on the {!Clifford} reference backend);
    each trial's frame is then pushed through the same gate stream by
    conjugation ({!Quipper.Gate.frame_action}), which costs a couple of
    word operations per gate instead of a state-vector update.

    Frames for many trials pack bit-parallel: lane [l] of a machine word
    is trial [l] of a batch, so {!lanes_per_word} trials (63 on 64-bit —
    OCaml native ints keep the arrays unboxed) advance per word
    operation. Fault {e sampling} stays scalar per lane: it must replay
    the slow path's RNG draw sequence exactly ({!Noise.kick} draws
    conditionally and uses rejection sampling), which is what makes
    frame-engine outcomes bit-identical to the slow path at equal seeds
    — the property the differential tests pin.

    Degrading gracefully: conditions that hold for the whole circuit
    (a non-Clifford gate the reference would have to apply, a collapse
    that is not deterministic, a clean run that fails) mark the pass
    {e ineligible} and every lane falls back to the slow path; conditions
    that depend on the noise of one lane (a classically-controlled
    non-Pauli gate whose control diverged in that lane) fall back only
    the affected lanes. Every reason names the gate and wire that forced
    it, mirroring the clifford backend's named rejections.

    A classically-controlled {e Pauli} whose control diverges is the one
    divergence absorbed exactly: applying or skipping a Pauli just
    toggles the frame bits — which is why error-correction circuits
    (measure syndrome, classically-controlled X correction) stay on the
    fast path. *)

open Quipper
module Rng = Quipper_math.Rng

type channels = {
  bit_flip : float;
  phase_flip : float;
  depolarizing : float;
  readout : float;
}

let no_channels =
  { bit_flip = 0.0; phase_flip = 0.0; depolarizing = 0.0; readout = 0.0 }

(* 63 on 64-bit: every bit of a native int is a trial lane, and native
   int arrays stay unboxed (an int64 array would box every element). *)
let lanes_per_word = Sys.int_size

let full_mask width = if width >= Sys.int_size then -1 else (1 lsl width) - 1

type fault = { findex : int; fwire : Wire.t; fx : bool; fz : bool }

type semantics = Tableau | Amplitudes

(* ------------------------------------------------------------------ *)
(* Pass state                                                          *)

type batch = {
  base : int;  (** global lane id of this batch's lane 0 *)
  width : int;  (** lanes in this batch, <= lanes_per_word *)
  pool : Rng.pool;  (** noise mode: per-lane noise streams, unboxed; empty in inject *)
  faults : fault array;  (** inject mode: per-lane fault, ascending findex *)
  mutable cursor : int;  (** inject mode: next fault to fire *)
  mutable live : int;  (** lanes still propagating *)
  mutable det : int;  (** lanes stopped by a termination assertion *)
  mutable fb : int;  (** lanes that must re-run on the slow path *)
  mutable qx : int array;  (** frame x bits, indexed by qubit slot *)
  mutable qz : int array;
  mutable cf : int array;  (** classical value flips, indexed by classical slot *)
  mutable retained : (int * int * int) list;
      (** (tableau column, x word, z word) of measured/discarded wires,
          kept for the inject-mode masked test under [Tableau] semantics *)
}

type mode = M_noise of channels | M_inject of semantics

type pass = {
  mode : mode;
  ref_st : Clifford.state;
  qslot : (Wire.t, int) Hashtbl.t;
  cslot : (Wire.t, int) Hashtbl.t;
  mutable qfree : int list;
  mutable qnext : int;
  mutable cfree : int list;
  mutable cnext : int;
  batches : batch array;
  mutable gate_ix : int;  (** flat index of the gate being processed *)
  mutable ineligible : string option;
  mutable reasons : string list;  (** distinct fallback reasons, newest first *)
}

let note_reason (p : pass) r = if not (List.mem r p.reasons) then p.reasons <- r :: p.reasons

let mark_ineligible (p : pass) r =
  if p.ineligible = None then begin
    p.ineligible <- Some r;
    note_reason p r
  end

let fallback_lanes (p : pass) (b : batch) mask r =
  let mask = mask land b.live in
  if mask <> 0 then begin
    b.fb <- b.fb lor mask;
    b.live <- b.live land lnot mask;
    note_reason p r
  end

(* slot allocation: slots are shared across batches (every batch sees the
   same gate stream, so allocation is in lockstep); each batch only holds
   the per-lane bit words for each slot *)

let grow_arrays (b : batch) qcap ccap =
  let grow a cap =
    if Array.length a >= cap then a
    else begin
      let a' = Array.make (max cap (2 * Array.length a + 8)) 0 in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    end
  in
  b.qx <- grow b.qx qcap;
  b.qz <- grow b.qz qcap;
  b.cf <- grow b.cf ccap

let alloc_q (p : pass) w =
  let s =
    match p.qfree with
    | s :: rest ->
        p.qfree <- rest;
        s
    | [] ->
        let s = p.qnext in
        p.qnext <- s + 1;
        s
  in
  Hashtbl.replace p.qslot w s;
  Array.iter
    (fun b ->
      grow_arrays b p.qnext p.cnext;
      b.qx.(s) <- 0;
      b.qz.(s) <- 0)
    p.batches;
  s

let alloc_c (p : pass) w =
  let s =
    match p.cfree with
    | s :: rest ->
        p.cfree <- rest;
        s
    | [] ->
        let s = p.cnext in
        p.cnext <- s + 1;
        s
  in
  Hashtbl.replace p.cslot w s;
  Array.iter
    (fun b ->
      grow_arrays b p.qnext p.cnext;
      b.cf.(s) <- 0)
    p.batches;
  s

let free_q (p : pass) w =
  match Hashtbl.find_opt p.qslot w with
  | Some s ->
      Hashtbl.remove p.qslot w;
      p.qfree <- s :: p.qfree
  | None -> ()

let free_c (p : pass) w =
  match Hashtbl.find_opt p.cslot w with
  | Some s ->
      Hashtbl.remove p.cslot w;
      p.cfree <- s :: p.cfree
  | None -> ()

let qslot_exn (p : pass) w = Hashtbl.find p.qslot w
let cslot_exn (p : pass) w = Hashtbl.find p.cslot w

(* ------------------------------------------------------------------ *)
(* Conjugation                                                         *)

let conjugate (p : pass) (act : Gate.frame_action) =
  match act with
  | Gate.Frame_id | Gate.Frame_pauli _ -> ()
  | Gate.Frame_h t ->
      let s = qslot_exn p t in
      Array.iter
        (fun b ->
          let x = b.qx.(s) in
          b.qx.(s) <- b.qz.(s);
          b.qz.(s) <- x)
        p.batches
  | Gate.Frame_s t ->
      let s = qslot_exn p t in
      Array.iter (fun b -> b.qz.(s) <- b.qz.(s) lxor b.qx.(s)) p.batches
  | Gate.Frame_v t ->
      let s = qslot_exn p t in
      Array.iter (fun b -> b.qx.(s) <- b.qx.(s) lxor b.qz.(s)) p.batches
  | Gate.Frame_cnot (c, t) ->
      let sc = qslot_exn p c and st = qslot_exn p t in
      Array.iter
        (fun b ->
          b.qx.(st) <- b.qx.(st) lxor b.qx.(sc);
          b.qz.(sc) <- b.qz.(sc) lxor b.qz.(st))
        p.batches
  | Gate.Frame_cz (a, bw) ->
      let sa = qslot_exn p a and sb = qslot_exn p bw in
      Array.iter
        (fun b ->
          b.qz.(sa) <- b.qz.(sa) lxor b.qx.(sb);
          b.qz.(sb) <- b.qz.(sb) lxor b.qx.(sa))
        p.batches
  | Gate.Frame_swap (a, bw) ->
      let sa = qslot_exn p a and sb = qslot_exn p bw in
      Array.iter
        (fun b ->
          let x = b.qx.(sa) in
          b.qx.(sa) <- b.qx.(sb);
          b.qx.(sb) <- x;
          let z = b.qz.(sa) in
          b.qz.(sa) <- b.qz.(sb);
          b.qz.(sb) <- z)
        p.batches

(* ------------------------------------------------------------------ *)
(* Noise sampling: batched over the lane pool ({!Rng.pool_bernoulli}),
   replaying Noise.kick's exact per-lane draw sequence — streams are
   per-lane independent, so batching across lanes cannot change any
   lane's own draws. Draws advance every lane (dead lanes' states are
   junk nobody reads: fallback lanes restart from their seed, detected
   lanes retry at the next round's seed); toggles land on live lanes
   only, as the slow path would. *)

let sample_kicks (p : pass) (g : Gate.t) =
  match p.mode with
  | M_inject _ -> ()
  | M_noise ch ->
      if ch.bit_flip > 0.0 || ch.phase_flip > 0.0 || ch.depolarizing > 0.0 then
        List.iter
          (fun w ->
            let s = qslot_exn p w in
            Array.iter
              (fun b ->
                let xw = ref 0 and zw = ref 0 in
                if ch.bit_flip > 0.0 then
                  xw := Rng.pool_bernoulli b.pool ~n:b.width ~prob:ch.bit_flip;
                if ch.phase_flip > 0.0 then
                  zw := Rng.pool_bernoulli b.pool ~n:b.width ~prob:ch.phase_flip;
                if ch.depolarizing > 0.0 then begin
                  let fired =
                    Rng.pool_bernoulli b.pool ~n:b.width ~prob:ch.depolarizing
                  in
                  let dx, dz = Rng.pool_pauli_mix b.pool ~n:b.width ~mask:fired in
                  xw := !xw lxor dx;
                  zw := !zw lxor dz
                end;
                b.qx.(s) <- b.qx.(s) lxor (!xw land b.live);
                b.qz.(s) <- b.qz.(s) lxor (!zw land b.live))
              p.batches)
          (Faultsite.exposed_wires g)

(** Readout flips for one classical slot: one conditional draw per lane,
    exactly as {!Noise.flip_readout}. *)
let sample_readout (p : pass) s =
  match p.mode with
  | M_inject _ -> ()
  | M_noise ch ->
      if ch.readout > 0.0 then
        Array.iter
          (fun b ->
            let w = Rng.pool_bernoulli b.pool ~n:b.width ~prob:ch.readout in
            b.cf.(s) <- b.cf.(s) lxor (w land b.live))
          p.batches

(* ------------------------------------------------------------------ *)
(* Per-gate step                                                       *)

let ref_apply (p : pass) g =
  match Clifford.apply_gate p.ref_st g with
  | () -> true
  | exception Errors.Error (Errors.Simulation msg) ->
      mark_ineligible p (Fmt.str "frame: clean reference run failed: %s" msg);
      false
  | exception Errors.Error (Errors.Termination_assertion { wire; _ }) ->
      mark_ineligible p
        (Fmt.str "frame: clean reference run trips the termination assertion on wire %d"
           wire);
      false

let fire_faults (p : pass) =
  let i = p.gate_ix in
  Array.iter
    (fun b ->
      while
        b.cursor < Array.length b.faults && b.faults.(b.cursor).findex = i
      do
        let f = b.faults.(b.cursor) in
        let bit = 1 lsl (b.cursor) in
        (match Hashtbl.find_opt p.qslot f.fwire with
        | Some s ->
            if f.fx then b.qx.(s) <- b.qx.(s) lxor bit;
            if f.fz then b.qz.(s) <- b.qz.(s) lxor bit
        | None ->
            fallback_lanes p b bit
              (Fmt.str "frame: fault site wire %d is not a live qubit at gate %d"
                 f.fwire i));
        b.cursor <- b.cursor + 1
      done)
    p.batches

(** Per-batch word of lanes whose classical-control satisfaction differs
    from the reference's, restricted to live lanes. *)
let classical_divergence (p : pass) (b : batch) (ccs : Gate.control list) ~ref_sat =
  if ccs = [] then 0
  else begin
    let sat = ref (-1) in
    List.iter
      (fun (c : Gate.control) ->
        let clean = Clifford.read_bit p.ref_st c.Gate.cwire in
        let value_word = b.cf.(cslot_exn p c.Gate.cwire) lxor (if clean then -1 else 0) in
        let term = if c.Gate.positive then value_word else lnot value_word in
        sat := !sat land term)
      ccs;
    (!sat lxor (if ref_sat then -1 else 0)) land b.live
  end

let on_gate (p : pass) (g : Gate.t) =
  (if p.ineligible = None then
     match g with
     | Gate.Comment _ -> ()
     | Gate.Subroutine { name; _ } ->
         mark_ineligible p (Fmt.str "frame: subroutine call %s (inline first)" name)
     | Gate.Init { ty = Wire.Q; wire; _ } ->
         if ref_apply p g then begin
           ignore (alloc_q p wire);
           sample_kicks p g
         end
     | Gate.Init { ty = Wire.C; wire; _ } ->
         if ref_apply p g then ignore (alloc_c p wire)
     | Gate.Measure { wire } -> (
         match Clifford.deterministic_outcome p.ref_st wire with
         | None ->
             mark_ineligible p
               (Fmt.str
                  "frame: measurement on wire %d is not deterministic in the reference run"
                  wire)
         | Some _ ->
             let col = Clifford.column_of p.ref_st wire in
             if ref_apply p g then begin
               let s = qslot_exn p wire in
               let cs = alloc_c p wire in
               Array.iter
                 (fun b ->
                   b.cf.(cs) <- b.qx.(s);
                   match p.mode with
                   | M_inject _ -> b.retained <- (col, b.qx.(s), b.qz.(s)) :: b.retained
                   | M_noise _ -> ())
                 p.batches;
               free_q p wire;
               sample_readout p cs
             end)
     | Gate.Term { ty = Wire.Q; value; wire } -> (
         match Clifford.deterministic_outcome p.ref_st wire with
         | None ->
             mark_ineligible p
               (Fmt.str
                  "frame: termination of wire %d is not deterministic in the reference run"
                  wire)
         | Some v when v <> value ->
             mark_ineligible p
               (Fmt.str
                  "frame: clean reference run violates the termination assertion on wire %d"
                  wire)
         | Some _ ->
             if ref_apply p g then begin
               let s = qslot_exn p wire in
               Array.iter
                 (fun b ->
                   (* an x component flips the asserted basis value: the
                      assertion fires, the slow path would raise *)
                   let caught = b.live land b.qx.(s) in
                   b.det <- b.det lor caught;
                   b.live <- b.live land lnot caught)
                 p.batches;
               free_q p wire
             end)
     | Gate.Discard { ty = Wire.Q; wire } -> (
         match Clifford.deterministic_outcome p.ref_st wire with
         | None ->
             mark_ineligible p
               (Fmt.str
                  "frame: discard of wire %d is not deterministic in the reference run"
                  wire)
         | Some _ ->
             let col = Clifford.column_of p.ref_st wire in
             if ref_apply p g then begin
               let s = qslot_exn p wire in
               Array.iter
                 (fun b ->
                   match p.mode with
                   | M_inject _ -> b.retained <- (col, b.qx.(s), b.qz.(s)) :: b.retained
                   | M_noise _ -> ())
                 p.batches;
               free_q p wire
             end)
     | Gate.Term { ty = Wire.C; value; wire } ->
         if Clifford.read_bit p.ref_st wire <> value then
           mark_ineligible p
             (Fmt.str
                "frame: clean reference run violates the classical termination on wire %d"
                wire)
         else if ref_apply p g then begin
           let s = cslot_exn p wire in
           Array.iter
             (fun b ->
               let caught = b.live land b.cf.(s) in
               b.det <- b.det lor caught;
               b.live <- b.live land lnot caught)
             p.batches;
           free_c p wire
         end
     | Gate.Discard { ty = Wire.C; wire } ->
         if ref_apply p g then free_c p wire
     | Gate.Cgate { name; out; ins } ->
         let ins_clean = List.map (Clifford.read_bit p.ref_st) ins in
         let in_slots = List.map (cslot_exn p) ins in
         if ref_apply p g then begin
           let out_clean = Clifford.read_bit p.ref_st out in
           let cs = alloc_c p out in
           Array.iter
             (fun b ->
               (* exact bit-parallel evaluation: lane value of input i is
                  clean_i xor flip_i; fold the gate's boolean function over
                  the value words, then turn the result back into flips *)
               let vals =
                 List.map2
                   (fun clean s -> b.cf.(s) lxor (if clean then -1 else 0))
                   ins_clean in_slots
               in
               let out_word =
                 match (name, vals) with
                 | "not", [ v ] -> lnot v
                 | "xor", vs -> List.fold_left ( lxor ) 0 vs
                 | "and", vs -> List.fold_left ( land ) (-1) vs
                 | "or", vs -> List.fold_left ( lor ) 0 vs
                 | _ -> 0 (* unknown names already failed ref_apply *)
               in
               b.cf.(cs) <- out_word lxor (if out_clean then -1 else 0))
             p.batches
         end
     | Gate.Gate _ | Gate.Rot _ | Gate.Phase _ -> (
         let ccs =
           List.filter (fun (c : Gate.control) -> c.Gate.cty = Wire.C) (Gate.controls g)
         in
         let ref_sat =
           List.for_all
             (fun (c : Gate.control) ->
               Clifford.read_bit p.ref_st c.Gate.cwire = c.Gate.positive)
             ccs
         in
         match Gate.frame_action g with
         | Error what ->
             if ref_sat then mark_ineligible p ("frame: " ^ what)
             else
               (* the gate never fires in the reference; only lanes whose
                  classical control diverged would need its conjugation *)
               Array.iter
                 (fun b ->
                   let diff = classical_divergence p b ccs ~ref_sat in
                   fallback_lanes p b diff
                     (Fmt.str "frame: %s behind a diverging classical control" what))
                 p.batches;
             sample_kicks p g
         | Ok act ->
             Array.iter
               (fun b ->
                 let diff = classical_divergence p b ccs ~ref_sat in
                 if diff <> 0 then
                   match act with
                   | Gate.Frame_pauli (t, fx, fz) ->
                       (* applying vs skipping a Pauli differs by that
                          Pauli: diverging lanes just toggle their frame *)
                       let s = qslot_exn p t in
                       if fx then b.qx.(s) <- b.qx.(s) lxor diff;
                       if fz then b.qz.(s) <- b.qz.(s) lxor diff
                   | Gate.Frame_id ->
                       () (* a global phase applied or not: unobservable *)
                   | _ ->
                       fallback_lanes p b diff
                         (Fmt.str
                            "frame: classically-controlled %s diverged under noise"
                            (Gate.to_string g)))
               p.batches;
             if ref_sat then if ref_apply p g then conjugate p act;
             sample_kicks p g));
  (match p.mode with M_inject _ when p.ineligible = None -> fire_faults p | _ -> ());
  p.gate_ix <- p.gate_ix + 1

let on_inputs (p : pass) (inputs : bool list) (es : Wire.endpoint list) =
  if List.length inputs <> List.length es then
    Errors.raise_ (Errors.Shape_mismatch "frame run: input arity");
  List.iter2
    (fun (e : Wire.endpoint) v ->
      if ref_apply p (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire })
      then
        match e.Wire.ty with
        | Wire.Q -> ignore (alloc_q p e.Wire.wire)
        | Wire.C -> ignore (alloc_c p e.Wire.wire))
    es inputs;
  (* input fault sites: index -1, before the first gate *)
  p.gate_ix <- -1;
  (match p.mode with M_inject _ when p.ineligible = None -> fire_faults p | _ -> ());
  p.gate_ix <- 0

(* ------------------------------------------------------------------ *)
(* Pass construction                                                   *)

let make_batches ~lanes ~rng_of ~fault_of =
  let nbatches = (lanes + lanes_per_word - 1) / lanes_per_word in
  Array.init nbatches (fun bi ->
      let base = bi * lanes_per_word in
      let width = min lanes_per_word (lanes - base) in
      {
        base;
        width;
        pool =
          (match rng_of with
          | Some f ->
              let pl = Rng.pool width in
              for l = 0 to width - 1 do
                Rng.pool_seed pl l (f (base + l))
              done;
              pl
          | None -> Rng.pool 0);
        faults =
          (match fault_of with
          | Some f -> Array.init width (fun l -> f (base + l))
          | None -> [||]);
        cursor = 0;
        live = full_mask width;
        det = 0;
        fb = 0;
        qx = [||];
        qz = [||];
        cf = [||];
        retained = [];
      })

let make_pass mode ~lanes ~rng_of ~fault_of =
  {
    mode;
    ref_st = Clifford.create ~seed:1 ();
    qslot = Hashtbl.create 64;
    cslot = Hashtbl.create 64;
    qfree = [];
    qnext = 0;
    cfree = [];
    cnext = 0;
    batches = make_batches ~lanes ~rng_of ~fault_of;
    gate_ix = 0;
    ineligible = None;
    reasons = [];
  }

(* ------------------------------------------------------------------ *)
(* Noise passes                                                        *)

type noise_result = {
  lanes : int;
  outputs : int;
  clean : bool array;  (** clean output bits, arity order; [||] if ineligible *)
  flips : int array array;  (** [batch].(output): lane-packed flip words *)
  detected : int array;  (** per-batch lane masks *)
  fallback : int array;
  ineligible : string option;
  reasons : string list;  (** every distinct fallback reason, oldest first *)
}

let all_fallback (p : pass) ~lanes ~outputs reason =
  {
    lanes;
    outputs;
    clean = [||];
    flips = [||];
    detected = Array.map (fun b -> b.det) p.batches;
    fallback = Array.map (fun b -> full_mask b.width) p.batches;
    ineligible = Some reason;
    reasons = List.rev p.reasons;
  }

let noise_finish (p : pass) ~lanes (outs : Wire.endpoint list) : noise_result =
  let outputs = List.length outs in
  (* probe output determinism first: any random output measurement makes
     the whole pass ineligible (the slow path's sampling cannot be
     replayed from a frame) *)
  if p.ineligible = None then
    List.iter
      (fun (e : Wire.endpoint) ->
        if p.ineligible = None && e.Wire.ty = Wire.Q then
          match Clifford.deterministic_outcome p.ref_st e.Wire.wire with
          | None ->
              mark_ineligible p
                (Fmt.str
                   "frame: output measurement on wire %d is not deterministic in the reference run"
                   e.Wire.wire)
          | Some _ -> ())
      outs;
  match p.ineligible with
  | Some r -> all_fallback p ~lanes ~outputs r
  | None ->
      let clean = Array.make outputs false in
      let flips = Array.map (fun _ -> Array.make outputs 0) p.batches in
      List.iteri
        (fun ix (e : Wire.endpoint) ->
          match e.Wire.ty with
          | Wire.Q ->
              let v =
                match Clifford.deterministic_outcome p.ref_st e.Wire.wire with
                | Some v -> v
                | None -> assert false (* probed above *)
              in
              clean.(ix) <- v;
              let s = qslot_exn p e.Wire.wire in
              Array.iteri (fun bi b -> flips.(bi).(ix) <- b.qx.(s)) p.batches;
              (* final-measurement readout error, one conditional draw per
                 live lane in output order, as Noise.measure_outputs *)
              (match p.mode with
              | M_noise ch when ch.readout > 0.0 ->
                  Array.iteri
                    (fun bi b ->
                      let w = Rng.pool_bernoulli b.pool ~n:b.width ~prob:ch.readout in
                      flips.(bi).(ix) <- flips.(bi).(ix) lxor (w land b.live))
                    p.batches
              | _ -> ())
          | Wire.C ->
              clean.(ix) <- Clifford.read_bit p.ref_st e.Wire.wire;
              let s = cslot_exn p e.Wire.wire in
              Array.iteri (fun bi b -> flips.(bi).(ix) <- b.cf.(s)) p.batches)
        outs;
      {
        lanes;
        outputs;
        clean;
        flips;
        detected = Array.map (fun b -> b.det) p.batches;
        fallback = Array.map (fun b -> b.fb) p.batches;
        ineligible = None;
        reasons = List.rev p.reasons;
      }

type lane_outcome = Lane_bits of bool array | Lane_detected | Lane_fallback

let lane_outcome (r : noise_result) lane : lane_outcome =
  let bi = lane / lanes_per_word and l = lane mod lanes_per_word in
  let bit = 1 lsl l in
  if r.detected.(bi) land bit <> 0 then Lane_detected
  else if r.ineligible <> None || r.fallback.(bi) land bit <> 0 then Lane_fallback
  else
    Lane_bits
      (Array.init r.outputs (fun ix ->
           r.clean.(ix) <> (r.flips.(bi).(ix) land bit <> 0)))

let noise_sink (ch : channels) ~(inputs : bool list) ~(seeds : int array) () :
    noise_result Sink.t =
  let lanes = Array.length seeds in
  let p =
    make_pass (M_noise ch) ~lanes
      ~rng_of:(Some (fun l -> Rng.create (Rng.derive seeds.(l) 1)))
      ~fault_of:None
  in
  Sink.unbox
    (Sink.make
       ~on_inputs:(on_inputs p inputs)
       ~on_gate:(on_gate p)
       ~finish:(noise_finish p ~lanes)
       ())

let noise_pass (ch : channels) (flat : Circuit.t) (inputs : bool list)
    ~(seeds : int array) : noise_result =
  let lanes = Array.length seeds in
  let p =
    make_pass (M_noise ch) ~lanes
      ~rng_of:(Some (fun l -> Rng.create (Rng.derive seeds.(l) 1)))
      ~fault_of:None
  in
  on_inputs p inputs flat.Circuit.inputs;
  Array.iter (on_gate p) flat.Circuit.gates;
  noise_finish p ~lanes flat.Circuit.outputs

(* ------------------------------------------------------------------ *)
(* Inject passes                                                       *)

type inject_outcome = F_detected | F_corrupted | F_masked | F_fallback

type inject_result = {
  fault_outcomes : inject_outcome array;
  inject_ineligible : string option;
  inject_reasons : string list;
}

let inject_pass ~(semantics : semantics) (flat : Circuit.t) (inputs : bool list)
    ~(faults : fault array) : inject_result =
  let lanes = Array.length faults in
  let p =
    make_pass (M_inject semantics) ~lanes ~rng_of:None
      ~fault_of:(Some (fun l -> faults.(l)))
  in
  on_inputs p inputs flat.Circuit.inputs;
  Array.iter (on_gate p) flat.Circuit.gates;
  match p.ineligible with
  | Some r ->
      {
        fault_outcomes = Array.make lanes F_fallback;
        inject_ineligible = Some r;
        inject_reasons = List.rev p.reasons;
      }
  | None ->
      (* the masked test: a surviving lane's residual frame (over live
         columns, plus measured/discarded columns under Tableau
         semantics) leaves the final state unchanged — up to global
         phase — iff it commutes with every stabilizer generator of the
         clean reference; classical output bits must also be unflipped *)
      let live_cols =
        Hashtbl.fold
          (fun w s acc -> (Clifford.column_of p.ref_st w, s) :: acc)
          p.qslot []
      in
      let cout_slots =
        List.filter_map
          (fun (e : Wire.endpoint) ->
            match e.Wire.ty with
            | Wire.C -> Some (cslot_exn p e.Wire.wire)
            | Wire.Q -> None)
          flat.Circuit.outputs
      in
      let outcomes = Array.make lanes F_fallback in
      Array.iter
        (fun b ->
          for l = 0 to b.width - 1 do
            let bit = 1 lsl l in
            let lane = b.base + l in
            if b.det land bit <> 0 then outcomes.(lane) <- F_detected
            else if b.fb land bit <> 0 then outcomes.(lane) <- F_fallback
            else begin
              let comps =
                List.filter_map
                  (fun (col, s) ->
                    let x = b.qx.(s) land bit <> 0 and z = b.qz.(s) land bit <> 0 in
                    if x || z then Some (col, x, z) else None)
                  live_cols
              in
              let comps =
                match semantics with
                | Amplitudes -> comps
                | Tableau ->
                    List.fold_left
                      (fun acc (col, xw, zw) ->
                        let x = xw land bit <> 0 and z = zw land bit <> 0 in
                        if x || z then (col, x, z) :: acc else acc)
                      comps b.retained
              in
              let cflips_clear =
                List.for_all (fun s -> b.cf.(s) land bit = 0) cout_slots
              in
              outcomes.(lane) <-
                (if
                   cflips_clear
                   && (comps = [] || Clifford.frame_commutes p.ref_st comps)
                 then F_masked
                 else F_corrupted)
            end
          done)
        p.batches;
      {
        fault_outcomes = outcomes;
        inject_ineligible = None;
        inject_reasons = List.rev p.reasons;
      }
