(** Pauli-frame fault propagation: the fast engine behind million-trial
    noise campaigns and exhaustive fault-injection sweeps.

    One noiseless reference run (on the {!Clifford} backend) plus, per
    trial, a {e Pauli frame} — an (x, z) bitpair per live qubit wire —
    pushed through the gate stream by conjugation
    ({!Quipper.Gate.frame_action}). Frames pack {!lanes_per_word} trials
    per machine word; fault sampling is scalar per lane so it replays
    the slow path's RNG draw sequence exactly, making outcomes
    bit-identical to {!Noise}/{!Inject} at equal derived seeds.

    Eligibility (otherwise the pass, or just the affected lanes,
    report fallback with the offending gate and wire named):
    - every gate the reference applies is in the clifford backend's set;
    - every measurement, discard and quantum termination is
      deterministic in the reference run (Pauli faults preserve
      determinism, so this extends to every lane);
    - classically-controlled gates whose control diverges under noise
      are only absorbed when the controlled gate is a pure Pauli
      (the error-correction case); anything else falls back lane-wise.

    Entry points are deliberately low-level (flat circuits in, packed
    words out): {!Noise.run_trials_on} and {!Inject.report_on} wrap them
    and handle slow-path fallback. *)

open Quipper

val lanes_per_word : int
(** Trials advanced per word operation: [Sys.int_size] (63 on 64-bit;
    native ints keep the frame arrays unboxed). *)

(** Mirror of {!Noise.config} (defined here to keep this module
    independent of the slow path). *)
type channels = {
  bit_flip : float;
  phase_flip : float;
  depolarizing : float;
  readout : float;
}

val no_channels : channels
(** All probabilities zero: pure propagation (fault injection). *)

(** {1 Noise passes: many trials, sampled faults} *)

type noise_result = {
  lanes : int;
  outputs : int;
  clean : bool array;  (** clean output bits, arity order; [[||]] if ineligible *)
  flips : int array array;  (** [[batch].(output)]: lane-packed output-flip words *)
  detected : int array;  (** per-batch masks: lanes a termination assertion caught *)
  fallback : int array;  (** per-batch masks: lanes needing the slow path *)
  ineligible : string option;
      (** circuit-level fallback: every lane must re-run slow, and why *)
  reasons : string list;  (** every distinct fallback reason, oldest first *)
}

val noise_pass :
  channels -> Circuit.t -> bool list -> seeds:int array -> noise_result
(** One propagation pass over an inlined circuit: lane [l] is a trial
    whose noise stream derives from [seeds.(l)] exactly as
    {!Noise.run_circuit_on} does (child stream [Rng.derive seed 1]),
    so a completed lane's output bits equal what the slow path at that
    seed measures, bit for bit, on any backend. *)

type lane_outcome =
  | Lane_bits of bool array  (** completed: measured output bits, arity order *)
  | Lane_detected  (** a termination assertion caught this lane's faults *)
  | Lane_fallback  (** re-run this lane on the slow path *)

val lane_outcome : noise_result -> int -> lane_outcome
(** Decode one lane of a pass result. *)

val noise_sink :
  channels -> inputs:bool list -> seeds:int array -> unit -> noise_result Sink.t
(** The same pass as a streaming consumer ({!Quipper.Sink.t}, boxed
    subroutines expanded on the fly): memory is O(trials + live wires),
    independent of gate count. Dynamic lifting is not available while
    streaming into a frame pass — a generation function that lifts makes
    the run raise, and the campaign should fall back to the slow path. *)

(** {1 Inject passes: one deterministic Pauli fault per lane} *)

type fault = { findex : int; fwire : Wire.t; fx : bool; fz : bool }
(** A fixed Pauli (x/z components; both = Y) striking wire [fwire] right
    after flat gate [findex] ([-1] = before the first gate), as
    {!Quipper.Faultsite.site} positions faults. *)

(** How the campaign's backend compares final states, which decides what
    a {e masked} fault is: [Tableau] (clifford backend) compares
    canonical stabilizer groups over all allocated columns, so residual
    fault components on measured/discarded columns count; [Amplitudes]
    (statevector) compares live-wire amplitude vectors up to global
    phase, so they do not. *)
type semantics = Tableau | Amplitudes

type inject_outcome = F_detected | F_corrupted | F_masked | F_fallback

type inject_result = {
  fault_outcomes : inject_outcome array;  (** per fault, in input order *)
  inject_ineligible : string option;
  inject_reasons : string list;
}

val inject_pass :
  semantics:semantics ->
  Circuit.t ->
  bool list ->
  faults:fault array ->
  inject_result
(** Classify every fault in one propagation pass: lane [l] carries
    exactly [faults.(l)] (which must be ordered by ascending [findex] —
    {!Quipper.Faultsite.enumerate} order is). Detection mirrors the slow
    path's [Termination_assertion]; the masked test checks that the
    lane's residual frame commutes with every stabilizer generator of
    the clean final state and flips no classical output bit. *)
