(** Gate fusion for dense simulation.

    The statevector engine pays one full sweep over the [2^n] amplitudes
    per gate. For the deep, narrow circuits Quipper produces — long runs
    of T/S/CZ phases, boxed subroutines called thousands of times (§4.3,
    §5) — most of those sweeps move the same cache lines to apply tiny
    operators. This module is a simulation-side compiler that scans the
    gate stream and merges runs of adjacent gates whose combined qubit
    support stays within a small window into one {e block}:

    - a run that stays diagonal collapses into a single diagonal
      multiply over up to [max_diag_support] wires (diagonal entries
      compose pointwise, so the window can be wide — the table has
      [2^k] entries, not [4^k]);
    - a general run becomes one dense [2^k x 2^k] unitary over at most
      [max_support] wires, applied by the gather/scatter kernel
      {!Kernel.kq_generic};
    - a block that ends up holding a single gate is applied through the
      specialised per-gate kernels of {!Statevector} unchanged — a dense
      [k]-qubit kernel costs O([4^k]) flops per [2^k] amplitudes and
      only wins when it carries several gates.

    Non-unitary gates (Init/Term, measurement, discard, classical
    logic), classically-controlled gates and unknown names are
    {e barriers}: the pending block is flushed and the gate applied
    directly, so the observable event order is untouched.

    On top of fusion sits a per-box compilation cache: the first call to
    a boxed subroutine compiles its body (nested calls included) into a
    fused block program over the body's own wires; every later call
    replays the compiled blocks under a wire remap — O(blocks) kernel
    launches instead of O(gates) dispatches — with the call's controls
    attached to each block and resolved at apply time. Control-neutral
    body gates (Init/Term of ancillas) replay unconditionally even when
    a classical control disables the unitary blocks, exactly as
    [Sink.unbox] expands them.

    Fused blocks multiply the same per-gate matrices in a different
    association order, so amplitudes agree with the unfused engine to
    float reassociation (the differential tests budget 1e-9), while
    classical observations — measurement outcomes, classical wires —
    are bit-identical: probability reductions and sampling happen in
    {!Statevector} on the flushed state. *)

open Quipper
module Cplx = Quipper_math.Cplx
module Mat2 = Quipper_math.Mat2

type config = {
  max_support : int;
      (** dense window K: blocks hold at most [2^K x 2^K] matrices *)
  max_diag_support : int;
      (** wider window for purely diagonal runs ([2^k]-entry tables) *)
  cache : bool;  (** compile boxed subroutines once and replay calls *)
}

let default_config = { max_support = 4; max_diag_support = 8; cache = true }

type stats = {
  mutable gates_seen : int;  (** top-level gates fed in (calls count as 1) *)
  mutable gates_fused : int;
      (** source gates absorbed into multi-gate blocks (incl. at box
          compile time) *)
  mutable blocks_applied : int;  (** fused-block kernel launches *)
  mutable singles_applied : int;  (** gates applied through per-gate kernels *)
  mutable boxes_compiled : int;
  mutable calls_replayed : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "gates %d, fused %d, blocks %d, singles %d, boxes compiled %d, calls \
     replayed %d"
    s.gates_seen s.gates_fused s.blocks_applied s.singles_applied
    s.boxes_compiled s.calls_replayed

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

(* A compiled unit. Matrix/table basis-index bit [i] is [wires.(i)];
   [ctrls] are controls resolved at apply time (classical ones can
   disable the whole block — sound for unitary blocks only, which is
   all Bdiag/Bdense ever hold). *)
type block =
  | Bgate of Gate.t  (* apply through the specialised per-gate path *)
  | Bdiag of {
      wires : Wire.t array;
      ctrls : Gate.control list;
      dre : float array; (* 2^k diagonal entries *)
      di : float array;
    }
  | Bdense of {
      wires : Wire.t array;
      ctrls : Gate.control list;
      mre : float array; (* 2^k x 2^k, row-major *)
      mim : float array;
    }

(* ------------------------------------------------------------------ *)
(* Angle sites and re-specialization                                   *)

(* A parameter sweep replays the same block structure at many rotation
   angles. During a {e template} compile every [Rot]/[Phase] gate
   carries its angle-site index in the whole circuit's [Circuit.angles]
   vector (plus a negate flag: [Gate.inverse] on [Phase] bakes a
   negated angle into the gate, so inverse box bodies substitute the
   negated site value). A block that absorbed at least one sited gate
   gets a {e spec}: a closure rebuilding the block bit-identically at a
   new angle vector. Blocks with [None] spec are angle-independent and
   shared across every parameter point. Normal (non-template) runs
   carry no sites, so specs are all [None] and nothing is recorded. *)

type site = (int * bool) option (* (angle index, negate) *)
type gspec = (float array -> Gate.t) option
type bspec = (float array -> block) option

let subst_site (g : Gate.t) i neg (v : float array) : Gate.t =
  let a = if neg then -.v.(i) else v.(i) in
  match g with
  | Gate.Rot r -> Gate.Rot { r with angle = a }
  | Gate.Phase p -> Gate.Phase { p with angle = a }
  | g -> g

let gspec_of (g : Gate.t) (site : site) : gspec =
  match site with
  | None -> None
  | Some (i, neg) -> Some (fun v -> subst_site g i neg v)

let bspec_of_gate (gs : gspec) : bspec =
  match gs with None -> None | Some f -> Some (fun v -> Bgate (f v))

(* A boxed subroutine compiled to blocks over its body wires. *)
type program = {
  blocks : (block * bspec) array;
  p_in : Wire.endpoint list; (* formals, forward direction *)
  p_out : Wire.endpoint list;
}

(* ------------------------------------------------------------------ *)
(* The pending block under construction                                *)

(* What was absorbed, kept so that flush can change its mind: a fused
   sweep pays O(2^k) work per amplitude, so when the accumulated run is
   too short to amortize that, the original items replay individually
   through the specialised kernels instead. *)
type item = Igate of Gate.t * gspec | Iblock of block * bspec

type pending = {
  mutable wires : Wire.t array; (* local bit j <-> wires.(j) *)
  mutable diag : bool;
  mutable dre : float array; (* 2^k when diag, else empty *)
  mutable di : float array;
  mutable mre : float array; (* 4^k when dense, else empty *)
  mutable mim : float array;
  mutable srcgates : int;
  mutable items : item list; (* reversed absorption order *)
  mutable has_angle : bool; (* some absorbed item carries a spec *)
}

let pk p = Array.length p.wires

let local p w =
  let n = Array.length p.wires in
  let rec go i = if i >= n then -1 else if p.wires.(i) = w then i else go (i + 1) in
  go 0

(* Extend the support by one wire (new highest local bit): a diagonal
   table duplicates, a dense matrix becomes I (x) M. *)
let append_wire p w =
  let k = pk p in
  let m = (1 lsl k) - 1 in
  p.wires <- Array.append p.wires [| w |];
  if p.diag then begin
    p.dre <- Array.init (2 lsl k) (fun l -> p.dre.(l land m));
    p.di <- Array.init (2 lsl k) (fun l -> p.di.(l land m))
  end
  else begin
    let d = 1 lsl k in
    let d2 = 2 * d in
    let mre = Array.make (d2 * d2) 0.0 and mim = Array.make (d2 * d2) 0.0 in
    for r = 0 to d2 - 1 do
      for c = 0 to d2 - 1 do
        if r lsr k = c lsr k then begin
          mre.((r * d2) + c) <- p.mre.(((r land m) * d) + (c land m));
          mim.((r * d2) + c) <- p.mim.(((r land m) * d) + (c land m))
        end
      done
    done;
    p.mre <- mre;
    p.mim <- mim
  end

let ensure_wires p ws = List.iter (fun w -> if local p w < 0 then append_wire p w) ws

(* diagonal -> dense, in place *)
let promote p =
  if p.diag then begin
    let d = 1 lsl pk p in
    let mre = Array.make (d * d) 0.0 and mim = Array.make (d * d) 0.0 in
    for l = 0 to d - 1 do
      mre.((l * d) + l) <- p.dre.(l);
      mim.((l * d) + l) <- p.di.(l)
    done;
    p.mre <- mre;
    p.mim <- mim;
    p.dre <- [||];
    p.di <- [||];
    p.diag <- false
  end

(* ------------------------------------------------------------------ *)
(* Absorbing operators into the pending block.

   An op is an operator over [m] of the block's wires: [obits.(i)] is
   the local bit mask of op-basis-index bit [i], and (lcmask, lcwant)
   are the op's own controls as local masks (control wires are part of
   the support). Absorbing multiplies the op onto the block from the
   left (the op acts after everything already absorbed). *)

let op_offsets (obits : int array) =
  let m = Array.length obits in
  Array.init (1 lsl m) (fun s ->
      let o = ref 0 in
      for i = 0 to m - 1 do
        if s land (1 lsl i) <> 0 then o := !o lor obits.(i)
      done;
      !o)

let sub_index (obits : int array) idx =
  let s = ref 0 in
  Array.iteri (fun i b -> if idx land b <> 0 then s := !s lor (1 lsl i)) obits;
  !s

let absorb_diag_into_diag p ~obits ~lcmask ~lcwant ~dr ~dm =
  let d = 1 lsl pk p in
  for l = 0 to d - 1 do
    if l land lcmask = lcwant then begin
      let s = sub_index obits l in
      let ar = dr.(s) and ai = dm.(s) in
      let xr = p.dre.(l) and xi = p.di.(l) in
      p.dre.(l) <- (ar *. xr) -. (ai *. xi);
      p.di.(l) <- (ar *. xi) +. (ai *. xr)
    end
  done

let absorb_diag_into_dense p ~obits ~lcmask ~lcwant ~dr ~dm =
  let d = 1 lsl pk p in
  for r = 0 to d - 1 do
    if r land lcmask = lcwant then begin
      let s = sub_index obits r in
      let ar = dr.(s) and ai = dm.(s) in
      for c = 0 to d - 1 do
        let xr = p.mre.((r * d) + c) and xi = p.mim.((r * d) + c) in
        p.mre.((r * d) + c) <- (ar *. xr) -. (ai *. xi);
        p.mim.((r * d) + c) <- (ar *. xi) +. (ai *. xr)
      done
    end
  done

(* Left-multiply the pending matrix column by column: gather each
   column's [2^m] entries along the op bits, apply the op matrix,
   scatter. Rows failing the op's controls are untouched (identity). *)
let absorb_dense_into_dense p ~obits ~lcmask ~lcwant ~ore ~oim =
  promote p;
  let d = 1 lsl pk p in
  let m = Array.length obits in
  let od = 1 lsl m in
  let offs = op_offsets obits in
  let su = Array.fold_left ( lor ) 0 obits in
  let ur = Array.make od 0.0 and ui = Array.make od 0.0 in
  for c = 0 to d - 1 do
    for r = 0 to d - 1 do
      if r land su = 0 && r land lcmask = lcwant then begin
        for s = 0 to od - 1 do
          let row = r lor offs.(s) in
          ur.(s) <- p.mre.((row * d) + c);
          ui.(s) <- p.mim.((row * d) + c)
        done;
        for s' = 0 to od - 1 do
          let orow = s' * od in
          let ar = ref 0.0 and ai = ref 0.0 in
          for s = 0 to od - 1 do
            let er = ore.(orow + s) and ei = oim.(orow + s) in
            ar := !ar +. ((er *. ur.(s)) -. (ei *. ui.(s)));
            ai := !ai +. ((er *. ui.(s)) +. (ei *. ur.(s)))
          done;
          let row = r lor offs.(s') in
          p.mre.((row * d) + c) <- !ar;
          p.mim.((row * d) + c) <- !ai
        done
      end
    done
  done

(* Local (mask, want) of an all-quantum control list whose wires are
   already in the support. *)
let local_controls p (cs : Gate.control list) =
  List.fold_left
    (fun (m, w) (c : Gate.control) ->
      let b = 1 lsl local p c.cwire in
      (m lor b, if c.positive then w lor b else w))
    (0, 0) cs

let mat_to_floats (m : Mat2.t) =
  let od = Mat2.dim m in
  let ore = Array.make (od * od) 0.0 and oim = Array.make (od * od) 0.0 in
  for r = 0 to od - 1 do
    for c = 0 to od - 1 do
      let e = Mat2.get m r c in
      ore.((r * od) + c) <- Cplx.re e;
      oim.((r * od) + c) <- Cplx.im e
    done
  done;
  (ore, oim)

(* Absorb a fusible gate (unitary, known matrix, all-quantum controls,
   support already in the pending wires). Gate targets [t1..tm] follow
   the |t1..tm> matrix convention: t1 is the HIGH op bit. *)
let absorb_gate p (g : Gate.t) =
  let lcmask, lcwant = local_controls p (Gate.controls g) in
  if Gate.is_diagonal g then
    match g with
    | Gate.Phase { angle; _ } ->
        let dr = [| cos angle |] and dm = [| sin angle |] in
        if p.diag then absorb_diag_into_diag p ~obits:[||] ~lcmask ~lcwant ~dr ~dm
        else absorb_diag_into_dense p ~obits:[||] ~lcmask ~lcwant ~dr ~dm
    | _ ->
        let m = Option.get (Statevector.gate_unitary g) in
        let t = List.hd (Gate.targets g) in
        let obits = [| 1 lsl local p t |] in
        let d0 = Mat2.get m 0 0 and d1 = Mat2.get m 1 1 in
        let dr = [| Cplx.re d0; Cplx.re d1 |]
        and dm = [| Cplx.im d0; Cplx.im d1 |] in
        if p.diag then absorb_diag_into_diag p ~obits ~lcmask ~lcwant ~dr ~dm
        else absorb_diag_into_dense p ~obits ~lcmask ~lcwant ~dr ~dm
  else begin
    let m = Option.get (Statevector.gate_unitary g) in
    let ts = Gate.targets g in
    let nt = List.length ts in
    let obits = Array.make nt 0 in
    List.iteri (fun i w -> obits.(nt - 1 - i) <- 1 lsl local p w) ts;
    let ore, oim = mat_to_floats m in
    absorb_dense_into_dense p ~obits ~lcmask ~lcwant ~ore ~oim
  end

(* Absorb a compiled block (block convention: op bit i = wires.(i)). *)
let absorb_block p (b : block) =
  match b with
  | Bgate _ -> assert false
  | Bdiag { wires; ctrls; dre; di } ->
      let lcmask, lcwant = local_controls p ctrls in
      let obits = Array.map (fun w -> 1 lsl local p w) wires in
      if p.diag then
        absorb_diag_into_diag p ~obits ~lcmask ~lcwant ~dr:dre ~dm:di
      else absorb_diag_into_dense p ~obits ~lcmask ~lcwant ~dr:dre ~dm:di
  | Bdense { wires; ctrls; mre; mim } ->
      let lcmask, lcwant = local_controls p ctrls in
      let obits = Array.map (fun w -> 1 lsl local p w) wires in
      absorb_dense_into_dense p ~obits ~lcmask ~lcwant ~ore:mre ~oim:mim

(* ------------------------------------------------------------------ *)
(* The fuser: greedy window policy                                     *)

type fuser = {
  cfg : config;
  emit : block -> bspec -> unit;
  stats : stats;
  mutable pending : pending option;
}

let all_quantum cs = List.for_all (fun (c : Gate.control) -> c.cty = Wire.Q) cs

let qctrl_wires cs =
  List.filter_map
    (fun (c : Gate.control) ->
      match c.cty with Wire.Q -> Some c.cwire | Wire.C -> None)
    cs

let gate_support (g : Gate.t) = Gate.targets g @ qctrl_wires (Gate.controls g)

(* Fusible: unitary, all controls quantum, matrix semantics known.
   Everything else — including classically-controlled unitaries, whose
   firing depends on the classical environment — is a barrier. *)
let fusible (g : Gate.t) =
  match g with
  | Gate.Phase { controls; _ } -> all_quantum controls
  | Gate.Gate _ | Gate.Rot _ ->
      all_quantum (Gate.controls g) && Statevector.gate_unitary g <> None
  | _ -> false

let fresh_pending ws =
  let wires = Array.of_list ws in
  let d = 1 lsl Array.length wires in
  {
    wires;
    diag = true;
    dre = Array.make d 1.0;
    di = Array.make d 0.0;
    mre = [||];
    mim = [||];
    srcgates = 0;
    items = [];
    has_angle = false;
  }

(* Rebuild a fused block at a new angle vector: re-absorb the recorded
   items, specialized, into a fresh pending over the block's {e final}
   support. Bit-identical to the original incremental-growth absorption:
   local bit positions never move once assigned (wires only append), a
   duplicated diagonal table multiplies duplicated inputs to equal
   products, a dense [I (x) M] extension applies equal float ops
   blockwise (off-block entries stay exactly [0.0]), and promotion fires
   at the same item because gate/block kinds are angle-independent. *)
let respec ~diag ~wires ~(items : item list) (v : float array) : block =
  let d = 1 lsl Array.length wires in
  let p =
    {
      wires;
      diag = true;
      dre = Array.make d 1.0;
      di = Array.make d 0.0;
      mre = [||];
      mim = [||];
      srcgates = 0;
      items = [];
      has_angle = false;
    }
  in
  List.iter
    (fun it ->
      match it with
      | Igate (g, gs) ->
          absorb_gate p (match gs with Some f -> f v | None -> g)
      | Iblock (b, sp) ->
          absorb_block p (match sp with Some f -> f v | None -> b))
    items;
  if diag then Bdiag { wires; ctrls = []; dre = p.dre; di = p.di }
  else begin
    promote p;
    Bdense { wires; ctrls = []; mre = p.mre; mim = p.mim }
  end

(* Cost of applying one item, in units of one uncontrolled X sweep
   (~1 ms per 2^20 amplitudes on the reference machine). The constants
   are measured, not derived: the specialised kernels iterate
   compressed subspaces in contiguous runs, so a controlled gate is
   {e cheaper} than an uncontrolled one, while the fused kernels pay
   gather/scatter indirection — a dense k-wire block costs about
   [2.6 * 2^k] sweeps (unrolled k <= 2 bodies are cheaper) and a fused
   diagonal about 3.3 sweeps at any width. Fusion is emitted only when
   the fused form beats replaying the absorbed items one by one. *)
let dense_cost k =
  match k with
  | 0 | 1 -> 3.5
  | 2 -> 7.0
  | 3 -> 22.5
  | 4 -> 41.0
  | k -> 2.6 *. float_of_int (1 lsl k)

let diag_cost = 3.3

let gate_cost (g : Gate.t) =
  match g with
  | Gate.Phase _ -> 0.7
  | _ -> (
      match Gate.fast_class g with
      | Gate.Fast_h | Gate.Fast_w -> 1.5
      | Gate.Fast_generic -> 2.5
      | Gate.Fast_swap -> 0.7
      | _ -> 0.8)

let item_cost = function
  | Igate (g, _) | Iblock (Bgate g, _) -> gate_cost g
  | Iblock (Bdiag _, _) -> diag_cost
  | Iblock (Bdense { wires; _ }, _) -> dense_cost (Array.length wires)

let emit_item fz = function
  | Igate (g, gs) -> fz.emit (Bgate g) (bspec_of_gate gs)
  | Iblock (b, sp) -> fz.emit b sp

(* Flush the pending block: emit the fused form when it is estimated
   cheaper than replaying the absorbed items one by one, otherwise emit
   the items unchanged (the absorption work is wasted, but that is
   generation-side arithmetic on tiny matrices, not a statevector
   sweep). A single plain item always replays as itself. *)
let flush fz =
  match fz.pending with
  | None -> ()
  | Some p -> (
      fz.pending <- None;
      match p.items with
      | [ it ] -> emit_item fz it
      | items ->
          let unfused = List.fold_left (fun a it -> a +. item_cost it) 0.0 items in
          let fused = if p.diag then diag_cost else dense_cost (pk p) in
          if fused < unfused then begin
            fz.stats.gates_fused <- fz.stats.gates_fused + p.srcgates;
            let sp : bspec =
              if not p.has_angle then None
              else
                let diag = p.diag
                and wires = p.wires
                and items = List.rev items in
                Some (fun v -> respec ~diag ~wires ~items v)
            in
            if p.diag then
              fz.emit
                (Bdiag { wires = p.wires; ctrls = []; dre = p.dre; di = p.di })
                sp
            else
              fz.emit
                (Bdense { wires = p.wires; ctrls = []; mre = p.mre; mim = p.mim })
                sp
          end
          else List.iter (emit_item fz) (List.rev items))

(* Union cardinality of the pending support with [ws] (distinct). *)
let union_size p ws =
  Array.length p.wires + List.length (List.filter (fun w -> local p w < 0) ws)

(* Does an operator with non-diagonal part on [targets] and support
   [support] commute with the accumulated pending operator? Against a
   diagonal pending block, any diagonal operator commutes (diagonals
   commute pointwise), and so does a non-diagonal operator whose
   targets avoid the pending support — quantum controls are Z-basis
   projectors, themselves diagonal, so a control on a pending wire is
   harmless. Against a dense pending block only full support
   disjointness is safe. Commuting gates are emitted {e past} the
   pending block instead of flushing it: the observable state is
   unchanged (the operators commute exactly; float reassociation is
   within the tests' 1e-9 budget), and runs survive interleaved
   traffic on other wires — the phase-folding effect that makes
   diagonal fusion pay on realistic circuit mixes. *)
let commutes_past p ~diag ~targets ~support =
  if p.diag then diag || List.for_all (fun w -> local p w < 0) targets
  else List.for_all (fun w -> local p w < 0) support

(* With a single pending slot, a dense block that commutes-past
   everything disjoint would starve diagonal runs elsewhere on the
   register: each diagonal gate slips past one at a time and never
   opens its own window. So a dense pending that has not yet
   accumulated enough work to beat its 2^k kernel — flushing it
   replays the items unchanged, so nothing is lost — yields the slot
   to an arriving disjoint diagonal gate. A dense block that is
   already profitable keeps the slot, and stray diagonal traffic
   commutes past it as before. *)
let yields_to_diag p ~diag ~fully_disjoint =
  (not p.diag) && diag && fully_disjoint
  &&
  match p.items with
  | [ _ ] -> true
  | items ->
      List.fold_left (fun a it -> a +. item_cost it) 0.0 items
      <= dense_cost (pk p)

let rec push_gate fz (gs : gspec) (g : Gate.t) =
  let ws = gate_support g in
  let diag = Gate.is_diagonal g in
  match fz.pending with
  | None ->
      let cap = if diag then fz.cfg.max_diag_support else fz.cfg.max_support in
      if List.length ws > cap then fz.emit (Bgate g) (bspec_of_gate gs)
      else begin
        let p = fresh_pending ws in
        absorb_gate p g;
        p.srcgates <- 1;
        p.items <- [ Igate (g, gs) ];
        p.has_angle <- Option.is_some gs;
        fz.pending <- Some p
      end
  | Some p ->
      (* Policy: absorb when the gate extends the current block kind in
         place — diagonal into diagonal (the wide window), or anything
         overlapping a dense block within the dense window. A
         non-diagonal gate never promotes a diagonal block (promotion
         trades a ~3-sweep diagonal for a 2^k-weight dense matrix), and
         a gate fully disjoint from a dense block is kept out of it
         (merging disjoint supports multiplies cost for no gain); both
         are emitted past the block when they commute with it, else the
         block flushes and the gate restarts the window. *)
      let u = union_size p ws in
      let may_absorb =
        if p.diag then diag && u <= fz.cfg.max_diag_support
        else u <= fz.cfg.max_support
      in
      let fully_disjoint = List.for_all (fun w -> local p w < 0) ws in
      if may_absorb && (p.diag || not fully_disjoint) then begin
        ensure_wires p ws;
        absorb_gate p g;
        p.srcgates <- p.srcgates + 1;
        p.items <- Igate (g, gs) :: p.items;
        if Option.is_some gs then p.has_angle <- true
      end
      else if
        (not (yields_to_diag p ~diag ~fully_disjoint))
        && commutes_past p ~diag ~targets:(Gate.targets g) ~support:ws
      then fz.emit (Bgate g) (bspec_of_gate gs)
      else begin
        flush fz;
        push_gate fz gs g
      end

(* Feed a replayed block through the fuser, so small compiled blocks
   merge with their surroundings; blocks that cannot be absorbed (too
   wide, classical controls) flush and apply as-is. *)
let rec push_block fz (sp : bspec) (b : block) =
  match b with
  | Bgate g ->
      if fusible g then
        let gs : gspec =
          match sp with
          | None -> None
          | Some f ->
              Some
                (fun v ->
                  match f v with Bgate g' -> g' | _ -> assert false)
        in
        push_gate fz gs g
      else begin
        flush fz;
        fz.emit (Bgate g) sp
      end
  | Bdiag { wires; ctrls; _ } | Bdense { wires; ctrls; _ } -> (
      let diag = match b with Bdiag _ -> true | _ -> false in
      if not (all_quantum ctrls) then begin
        flush fz;
        fz.emit b sp
      end
      else
        let ws = Array.to_list wires @ qctrl_wires ctrls in
        match fz.pending with
        | None ->
            let cap =
              if diag then fz.cfg.max_diag_support else fz.cfg.max_support
            in
            if List.length ws > cap then fz.emit b sp
            else begin
              let p = fresh_pending ws in
              absorb_block p b;
              p.srcgates <- 1;
              p.items <- [ Iblock (b, sp) ];
              p.has_angle <- Option.is_some sp;
              fz.pending <- Some p
            end
        | Some p ->
            let u = union_size p ws in
            let may_absorb =
              if p.diag then diag && u <= fz.cfg.max_diag_support
              else u <= fz.cfg.max_support
            in
            let fully_disjoint = List.for_all (fun w -> local p w < 0) ws in
            if may_absorb && (p.diag || not fully_disjoint) then begin
              ensure_wires p ws;
              absorb_block p b;
              p.srcgates <- p.srcgates + 1;
              p.items <- Iblock (b, sp) :: p.items;
              if Option.is_some sp then p.has_angle <- true
            end
            else if
              (not (yields_to_diag p ~diag ~fully_disjoint))
              && commutes_past p ~diag ~targets:(Array.to_list wires)
                   ~support:ws
            then fz.emit b sp
            else begin
              flush fz;
              push_block fz sp b
            end)

(* ------------------------------------------------------------------ *)
(* Simulation state                                                    *)

(* Compiled box programs, keyed (name, inv, body hash). The structural
   hash — box-aware via [Circuit.hash_t]'s resolve hook — is part of the
   key so that same-named boxes with different bodies can never alias:
   redefining a name simply stops hitting the old entries, and a cache
   shared between states (the shot service hands one cache to every
   worker) stays sound even when two clients define different boxes
   under the same name. The mutex guards table access only; compilation
   runs outside it (a recursive [compiled_program] would deadlock
   otherwise), so two domains may race to compile the same program —
   both results are identical and the second insert is a no-op. *)
type box_cache = {
  tbl : (string * bool * int64, program) Hashtbl.t;
  lock : Mutex.t;
}

let box_cache () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

type state = {
  sv : Statevector.state;
  cfg : config;
  st_stats : stats;
  defs : (string, Circuit.subroutine) Hashtbl.t;
  hashes : (string, int64) Hashtbl.t; (* resolved body-hash memo *)
  compiled : box_cache;
  fresh : int ref; (* internal wires of replayed calls, negative *)
  fz : fuser; (* top-level fuser, emitting straight into [sv] *)
  sites_boxes : (string, site array) Hashtbl.t;
      (* template compiles only: per box name, the angle site of each
         forward body gate (aligned with the body's gate array) *)
}

let apply_block st (b : block) =
  match b with
  | Bgate g ->
      st.st_stats.singles_applied <- st.st_stats.singles_applied + 1;
      Statevector.apply_gate st.sv g
  | Bdiag { wires; ctrls; dre; di } -> (
      match Statevector.resolve_controls st.sv ctrls with
      | None -> ()
      | Some (cmask, cwant) ->
          st.st_stats.blocks_applied <- st.st_stats.blocks_applied + 1;
          let bits =
            Array.map (fun w -> 1 lsl Statevector.qubit_index st.sv w) wires
          in
          Statevector.apply_kernel st.sv (fun ~re ~im ~size ->
              Kernel.kq_diag ~re ~im ~size ~bits ~cmask ~cwant ~dre ~di))
  | Bdense { wires; ctrls; mre; mim } -> (
      match Statevector.resolve_controls st.sv ctrls with
      | None -> ()
      | Some (cmask, cwant) ->
          st.st_stats.blocks_applied <- st.st_stats.blocks_applied + 1;
          let bits =
            Array.map (fun w -> 1 lsl Statevector.qubit_index st.sv w) wires
          in
          Statevector.apply_kernel st.sv (fun ~re ~im ~size ->
              Kernel.kq_generic ~re ~im ~size ~bits ~cmask ~cwant ~mre ~mim))

let create ?(config = default_config) ?boxes ?seed () =
  let stats =
    {
      gates_seen = 0;
      gates_fused = 0;
      blocks_applied = 0;
      singles_applied = 0;
      boxes_compiled = 0;
      calls_replayed = 0;
    }
  in
  let rec st =
    {
      sv = Statevector.create ?seed ();
      cfg = config;
      st_stats = stats;
      defs = Hashtbl.create 16;
      hashes = Hashtbl.create 16;
      compiled = (match boxes with Some c -> c | None -> box_cache ());
      fresh = ref (-1);
      fz =
        {
          cfg = config;
          emit = (fun b _ -> apply_block st b);
          stats;
          pending = None;
        };
      sites_boxes = Hashtbl.create 1;
    }
  in
  st

let define st name (sub : Circuit.subroutine) =
  Hashtbl.replace st.defs name sub;
  (* A redefinition changes this name's body hash — and the hash of any
     box whose body calls it — so the memo resets wholesale. Compiled
     programs need no explicit invalidation: their cache keys carry the
     body hash, so the old entries simply stop being looked up. *)
  Hashtbl.reset st.hashes

let body_hash st name : int64 =
  (* Box-aware hash of [name]'s current definition, resolving nested
     calls against this state's [defs] (memoized until the next
     [define]). A name with no definition hashes to zero: the later
     [find_def] raises where the seed code did. *)
  let rec go n =
    match Hashtbl.find_opt st.hashes n with
    | Some h -> h
    | None ->
        Hashtbl.add st.hashes n 0L;
        let h =
          match Hashtbl.find_opt st.defs n with
          | None -> 0L
          | Some (s : Circuit.subroutine) ->
              Circuit.hash_t ~resolve:(fun m -> Some (go m)) s.Circuit.circ
        in
        Hashtbl.replace st.hashes n h;
        h
  in
  go name

let find_def st name =
  match Hashtbl.find_opt st.defs name with
  | Some s -> s
  | None -> Errors.raise_ (Unknown_subroutine name)

(* Reversed, inverted, comment-free body for inverse calls — the same
   expansion as [Sink.unbox]/[Circuit.inline]. *)
let body_of (circ : Circuit.t) inv =
  if inv then
    Array.of_list
      (Array.fold_left
         (fun acc g -> if Gate.is_comment g then acc else Gate.inverse g :: acc)
         [] circ.Circuit.gates)
  else circ.Circuit.gates

let remap_block rename (extra : Gate.control list) (b : block) : block =
  match b with
  | Bgate g -> Bgate (Gate.add_controls extra (Gate.rename rename g))
  | Bdiag r ->
      Bdiag
        {
          r with
          wires = Array.map rename r.wires;
          ctrls = List.map (Gate.rename_control rename) r.ctrls @ extra;
        }
  | Bdense r ->
      Bdense
        {
          r with
          wires = Array.map rename r.wires;
          ctrls = List.map (Gate.rename_control rename) r.ctrls @ extra;
        }

(* Feed one gate into a fuser ([fz] is the top-level fuser during
   simulation, an accumulator during box compilation — the same code
   path, so compiled programs fuse exactly as streaming does). [site]
   is the gate's angle-site tag, [None] outside template compiles. *)
let rec feed_site st fz (site : site) (g : Gate.t) =
  match g with
  | Gate.Comment _ -> ()
  | Gate.Subroutine { name; inv; inputs; outputs; controls } ->
      if st.cfg.cache then replay st fz ~name ~inv ~inputs ~outputs ~controls
      else expand st fz ~name ~inv ~inputs ~outputs ~controls
  | g when fusible g -> push_gate fz (gspec_of g site) g
  | g ->
      (* Barrier: measurement, Init/Term, classical logic, classically
         controlled or unknown gates. Most flush the pending block, but
         an Init/Term on a wire outside the pending support — the
         paper's ancilla churn — is a channel on disjoint wires and
         commutes with the accumulated operator exactly, as does purely
         classical bookkeeping; those are emitted past the block so the
         run survives compute/uncompute sandwiches. Measurement and
         Discard sample the RNG against ordered probability sums and
         classically-controlled gates read the classical environment:
         both stay hard barriers so observations stay bit-identical. *)
      let commutes =
        match fz.pending with
        | None -> true
        | Some p -> (
            match g with
            | Gate.Init { ty = Wire.Q; wire; _ }
            | Gate.Term { ty = Wire.Q; wire; _ } ->
                local p wire < 0
            | Gate.Init { ty = Wire.C; _ }
            | Gate.Term { ty = Wire.C; _ }
            | Gate.Discard { ty = Wire.C; _ }
            | Gate.Cgate _ ->
                true
            | _ -> false)
      in
      if not commutes then flush fz;
      (* classically-controlled [Rot]/[Phase] are barriers but still
         angle-bearing: their site survives as a single-gate spec *)
      fz.emit (Bgate g) (bspec_of_gate (gspec_of g site))

(* Replay a compiled program under a wire remap: formals map to the
   call's actual wires, internals to fresh negative ids; the call's
   controls attach to every block. Specs compose with the remap: the
   rename map is fully populated by this (eager) replay, and specs only
   run after compilation completes, so the closure reads a frozen
   table. *)
and replay st fz ~name ~inv ~inputs ~outputs ~controls =
  let prog = compiled_program st ~name ~inv in
  st.st_stats.calls_replayed <- st.st_stats.calls_replayed + 1;
  let map = Hashtbl.create 16 in
  List.iter2
    (fun (e : Wire.endpoint) a -> Hashtbl.replace map e.Wire.wire a)
    prog.p_in inputs;
  List.iter2
    (fun (e : Wire.endpoint) a -> Hashtbl.replace map e.Wire.wire a)
    prog.p_out outputs;
  let rename w =
    match Hashtbl.find_opt map w with
    | Some w' -> w'
    | None ->
        let w' = !(st.fresh) in
        decr st.fresh;
        Hashtbl.replace map w w';
        w'
  in
  Array.iter
    (fun (b, sp) ->
      let sp' =
        match sp with
        | None -> None
        | Some f -> Some (fun v -> remap_block rename controls (f v))
      in
      push_block fz sp' (remap_block rename controls b))
    prog.blocks

(* Cache off: structural expansion (what [Sink.unbox] does), still
   fusing across the call boundary. *)
and expand st fz ~name ~inv ~inputs ~outputs ~controls =
  let { Circuit.circ; _ } = find_def st name in
  let body = body_of circ inv in
  let d_in = if inv then circ.Circuit.outputs else circ.Circuit.inputs in
  let d_out = if inv then circ.Circuit.inputs else circ.Circuit.outputs in
  let map = Hashtbl.create 16 in
  List.iter2
    (fun (e : Wire.endpoint) a -> Hashtbl.replace map e.Wire.wire a)
    d_in inputs;
  List.iter2
    (fun (e : Wire.endpoint) a -> Hashtbl.replace map e.Wire.wire a)
    d_out outputs;
  let rename w =
    match Hashtbl.find_opt map w with
    | Some w' -> w'
    | None ->
        let w' = !(st.fresh) in
        decr st.fresh;
        Hashtbl.replace map w w';
        w'
  in
  Array.iter
    (fun g ->
      feed_site st fz None (Gate.add_controls controls (Gate.rename rename g)))
    body

(* Compile a box body to a block program, memoized per
   (name, inv, body hash). Nested calls replay their own compiled
   programs into this one, so a call tree compiles bottom-up into flat
   block sequences. *)
and compiled_program st ~name ~inv : program =
  let key = (name, inv, body_hash st name) in
  let cached =
    Mutex.lock st.compiled.lock;
    let p = Hashtbl.find_opt st.compiled.tbl key in
    Mutex.unlock st.compiled.lock;
    p
  in
  match cached with
  | Some p -> p
  | None ->
      let { Circuit.circ; _ } = find_def st name in
      let body = body_of circ inv in
      (* align the body's angle sites with [body_of]'s expansion:
         forward bodies use the recorded row as-is; inverse bodies drop
         comments, reverse, and toggle the negate flag on [Phase] sites
         ([Gate.inverse] bakes the negated angle into the gate) *)
      let sites =
        match Hashtbl.find_opt st.sites_boxes name with
        | None -> None
        | Some fwd when not inv -> Some fwd
        | Some fwd ->
            let acc = ref [] in
            Array.iteri
              (fun i g ->
                if not (Gate.is_comment g) then begin
                  let s =
                    match (g, fwd.(i)) with
                    | Gate.Phase _, Some (j, neg) -> Some (j, not neg)
                    | _, s -> s
                  in
                  acc := s :: !acc
                end)
              circ.Circuit.gates;
            Some (Array.of_list !acc)
      in
      let acc = ref [] in
      let cfz =
        {
          cfg = st.cfg;
          emit = (fun b sp -> acc := (b, sp) :: !acc);
          stats = st.st_stats;
          pending = None;
        }
      in
      Array.iteri
        (fun i g ->
          let site =
            match sites with None -> None | Some arr -> arr.(i)
          in
          feed_site st cfz site g)
        body;
      flush cfz;
      let prog =
        {
          blocks = Array.of_list (List.rev !acc);
          p_in = (if inv then circ.Circuit.outputs else circ.Circuit.inputs);
          p_out = (if inv then circ.Circuit.inputs else circ.Circuit.outputs);
        }
      in
      st.st_stats.boxes_compiled <- st.st_stats.boxes_compiled + 1;
      Mutex.lock st.compiled.lock;
      let prog =
        (* a racing domain may have inserted first; keep its program so
           every worker replays the same physical blocks *)
        match Hashtbl.find_opt st.compiled.tbl key with
        | Some p -> p
        | None ->
            Hashtbl.replace st.compiled.tbl key prog;
            prog
      in
      Mutex.unlock st.compiled.lock;
      prog

(* ------------------------------------------------------------------ *)
(* Public surface                                                      *)

let apply_gate st (g : Gate.t) =
  st.st_stats.gates_seen <- st.st_stats.gates_seen + 1;
  feed_site st st.fz None g

let flush_pending st = flush st.fz

let measure st w =
  flush st.fz;
  Statevector.measure st.sv w

let read_bit st w = Statevector.read_bit st.sv w
let set_bit st w v = Statevector.set_bit st.sv w v

let amplitudes st =
  flush st.fz;
  Statevector.amplitudes st.sv

let prob_one st w =
  flush st.fz;
  Statevector.prob_one st.sv w

let num_qubits st = Statevector.num_qubits st.sv
let qubit_index st w = Statevector.qubit_index st.sv w

let statevector st =
  flush st.fz;
  st.sv

let snapshot st =
  flush st.fz;
  Statevector.snapshot st.sv

let stats st = st.st_stats

let run_fun ?config ?seed ~(in_ : ('b, 'q, 'c) Qdata.t) (input : 'b)
    (f : 'q -> 'r Circ.t) : state * 'r =
  let st = create ?config ?seed () in
  let ctx =
    Circ.create_ctx ~boxing:false ~on_emit:(apply_gate st)
      ~lift:(fun _ w -> read_bit st w)
      ()
  in
  let ins =
    List.map (fun ty -> { Wire.wire = Circ.alloc_input ctx ty; ty }) in_.Qdata.tys
  in
  List.iter2
    (fun (e : Wire.endpoint) v ->
      apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    ins (in_.Qdata.bleaves input);
  let x = in_.Qdata.qbuild ins in
  let r = f x ctx in
  flush st.fz;
  (st, r)

let measure_and_read st (w : ('b, 'q, 'c) Qdata.t) (q : 'q) : 'b =
  flush st.fz;
  Statevector.measure_and_read st.sv w q

let run_circuit ?config ?boxes ?seed (b : Circuit.b) (inputs : bool list) :
    state =
  let st = create ?config ?boxes ?seed () in
  List.iter
    (fun name -> define st name (Circuit.Namespace.find name b.Circuit.subs))
    b.Circuit.sub_order;
  (if List.length inputs <> List.length b.Circuit.main.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "fused run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    b.Circuit.main.Circuit.inputs inputs;
  Array.iter (apply_gate st) b.Circuit.main.Circuit.gates;
  flush st.fz;
  st

(* ------------------------------------------------------------------ *)
(* Templates: compile once, re-specialize per parameter point          *)

type template = {
  t_blocks : (block * bspec) array; (* whole-run block trace, in order *)
  t_nsites : int; (* length of the expected angle vector *)
}

let template_sites t = t.t_nsites

let template_fused_blocks t =
  Array.fold_left
    (fun n (b, _) -> match b with Bgate _ -> n | _ -> n + 1)
    0 t.t_blocks

let template_specialized_blocks t =
  Array.fold_left
    (fun n (_, sp) -> if Option.is_some sp then n + 1 else n)
    0 t.t_blocks

let compile_template ?(config = default_config) (b : Circuit.b)
    (inputs : bool list) : template =
  (* Box replay is what makes specs carry whole-circuit site indices;
     a [cache = false] expansion would silently bake template angles
     into unsited blocks, so force it on. The compilation cache is
     private to this template: its programs carry this circuit's site
     numbering and must not leak into shared caches. *)
  let config = { config with cache = true } in
  let st = create ~config () in
  List.iter
    (fun name -> define st name (Circuit.Namespace.find name b.Circuit.subs))
    b.Circuit.sub_order;
  (if List.length inputs <> List.length b.Circuit.main.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "template: input arity"));
  (* whole-circuit angle-site numbering, in [Circuit.angles] order:
     main gates first, then each box body in [sub_order] *)
  let ctr = ref 0 in
  let site_row (c : Circuit.t) : site array =
    Array.map
      (fun g ->
        match g with
        | Gate.Rot _ | Gate.Phase _ ->
            let i = !ctr in
            incr ctr;
            Some (i, false)
        | _ -> None)
      c.Circuit.gates
  in
  let main_sites = site_row b.Circuit.main in
  List.iter
    (fun name ->
      let s = Circuit.Namespace.find name b.Circuit.subs in
      Hashtbl.replace st.sites_boxes name (site_row s.Circuit.circ))
    b.Circuit.sub_order;
  let acc = ref [] in
  let cfz =
    {
      cfg = config;
      emit = (fun blk sp -> acc := (blk, sp) :: !acc);
      stats = st.st_stats;
      pending = None;
    }
  in
  List.iter2
    (fun (e : Wire.endpoint) v ->
      feed_site st cfz None
        (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    b.Circuit.main.Circuit.inputs inputs;
  Array.iteri
    (fun i g -> feed_site st cfz main_sites.(i) g)
    b.Circuit.main.Circuit.gates;
  flush cfz;
  { t_blocks = Array.of_list (List.rev !acc); t_nsites = !ctr }

let specialize (t : template) (v : float array) : block array =
  if Array.length v <> t.t_nsites then
    Errors.invalidf "template: expected %d angles, got %d" t.t_nsites
      (Array.length v);
  Array.map (fun (b, sp) -> match sp with None -> b | Some f -> f v) t.t_blocks

let run_template ?config ?seed (t : template) (v : float array) : state =
  (* The recorded trace already ends in a flush, so applying the
     specialized blocks in order reproduces exactly the [apply_block]
     sequence (and hence the statevector and RNG stream) that
     [run_circuit (Circuit.subst_angles b v) inputs] performs. *)
  let st = create ?config ?seed () in
  let blocks = specialize t v in
  Array.iter (fun blk -> apply_block st blk) blocks;
  st
