(** Gate-fusion compiler for dense simulation.

    Scans the gate stream and merges runs of adjacent gates whose
    combined qubit support fits a small window into single fused
    blocks — one dense [2^k x 2^k] unitary (applied by
    {!Kernel.kq_generic}) or, for runs that stay diagonal, one diagonal
    table over a wider window (applied by {!Kernel.kq_diag}) — so a
    whole run costs one sweep over the [2^n] amplitudes instead of one
    sweep per gate. Blocks that end up holding a single gate fall back
    to the specialised per-gate kernels unchanged.

    Boxed subroutines are additionally {e compiled once} per
    (name, inverse-flag, structural body hash): the body (nested calls
    included) is fused
    into a block program over the body's own wires, and every later
    call replays the compiled blocks under a wire remap with the call's
    controls attached — the box-call analogue of the paper's reusable
    subroutine definitions (§4.3).

    Fusion reassociates the floating-point operations of the gate
    product, so amplitudes agree with the unfused {!Statevector} engine
    up to float reassociation error (tests budget 1e-9). Classical
    observations are bit-identical: measurements and assertions run in
    {!Statevector} on the flushed state, with the same sequential
    probability reductions and the same RNG stream.

    Scheduling is commutation-aware: gates that provably commute with
    the pending block — diagonal gates against a diagonal block,
    anything whose support avoids the block, [Init]/[Term] of
    off-support ancillas — are emitted past it instead of cutting the
    run, and a measured cost model emits the fused form only when it
    beats replaying the absorbed gates through their specialised
    kernels. Measurements, discards, classically-controlled gates and
    unknown names remain hard barriers — the pending block is flushed
    and the gate applied directly, preserving the observable event
    order. *)

open Quipper

type config = {
  max_support : int;
      (** Dense fusion window K (default 4): fused unitaries span at
          most K wires, counting control wires folded into a block. *)
  max_diag_support : int;
      (** Window for purely diagonal runs (default 8). Diagonal tables
          have [2^k] entries and cost O(1) extra work per amplitude
          regardless of [k], so the window can be much wider. *)
  cache : bool;
      (** Compile each boxed subroutine once and replay calls (default
          true). When false, calls are expanded structurally like
          [Sink.unbox], still fusing across the call boundary. *)
}

val default_config : config

type stats = {
  mutable gates_seen : int;
      (** top-level gates fed in (a subroutine call counts as one) *)
  mutable gates_fused : int;
      (** source gates absorbed into multi-gate blocks, including at
          box-compile time *)
  mutable blocks_applied : int;  (** fused-block kernel launches *)
  mutable singles_applied : int;
      (** gates applied through the per-gate kernels *)
  mutable boxes_compiled : int;  (** distinct (name, inv, hash) compilations *)
  mutable calls_replayed : int;  (** calls served from the cache *)
}

val pp_stats : Format.formatter -> stats -> unit

type state

type box_cache
(** A cache of compiled box programs, keyed
    [(name, inverse-flag, structural body hash)] — the hash is
    {!Circuit.hash_t} with nested calls resolved, so same-named boxes
    with different bodies can never alias. The cache is
    mutex-protected and may be shared between states running on
    different domains (the shot service hands one cache to every
    worker); compilation happens outside the lock, so a race compiles
    twice and keeps the first insert. *)

val box_cache : unit -> box_cache
(** A fresh empty shareable cache. *)

val create : ?config:config -> ?boxes:box_cache -> ?seed:int -> unit -> state
(** [boxes] shares a compiled-program cache with other states; by
    default each state gets a private one. *)

val define : state -> string -> Circuit.subroutine -> unit
(** Register a boxed subroutine definition. Redefinition is handled by
    construction: compiled programs are keyed by body hash, so a new
    body simply stops hitting the old entries. *)

val apply_gate : state -> Gate.t -> unit
(** Feed one gate (possibly a subroutine call) into the fuser. *)

val flush_pending : state -> unit
(** Apply any pending partially-built block now. Reads below flush
    implicitly; this is for callers driving the state directly. *)

val measure : state -> Wire.t -> bool
val read_bit : state -> Wire.t -> bool
val set_bit : state -> Wire.t -> bool -> unit
val amplitudes : state -> Quipper_math.Cplx.t array
val prob_one : state -> Wire.t -> float
val num_qubits : state -> int
val qubit_index : state -> Wire.t -> int

val statevector : state -> Statevector.state
(** The underlying engine, flushed — for differential tests. *)

val snapshot : state -> Statevector.snapshot option
(** Flush, then snapshot the underlying statevector (see
    {!Statevector.snapshot}); sampling from it goes through
    {!Statevector.sample_from}. *)

val stats : state -> stats

val run_fun :
  ?config:config ->
  ?seed:int ->
  in_:('b, 'q, 'c) Qdata.t ->
  'b ->
  ('q -> 'r Circ.t) ->
  state * 'r
(** Fused analogue of {!Statevector.run_fun}: execute a circuit-producing
    function gate by gate as emitted (boxing disabled — the stream is
    flat, so this exercises pure fusion; run generated circuits through
    {!run_circuit} to exercise the box cache). *)

val measure_and_read : state -> ('b, 'q, 'c) Qdata.t -> 'q -> 'b

val run_circuit :
  ?config:config -> ?boxes:box_cache -> ?seed:int -> Circuit.b -> bool list -> state
(** Run a generated hierarchical circuit on basis-state inputs,
    compiling and replaying its boxed subroutines ([boxes] shares the
    compiled programs across runs — the shot service's warm path). *)

(** {2 Parameter-sweep templates}

    A parameterized circuit family — one skeleton instantiated at many
    rotation angles — recompiles everything the fuser decides
    {e structurally} (block boundaries, commutation scheduling, wire
    remaps, dense/diagonal classification, box replay plumbing) on
    every point, even though none of those decisions depend on the
    angles. [compile_template] runs the whole fusion pipeline once and
    records the emitted block trace, with each angle-dependent block
    carrying a re-specialization closure; [run_template] then serves a
    new parameter point by substituting only the rotation/diagonal
    kernel entries.

    Re-specialization is {e bit-identical} to a from-scratch
    [run_circuit (Circuit.subst_angles b v) inputs] at the same seed:
    block rebuild replays the recorded absorption arithmetic over the
    block's final support (pointwise-equal float operations), all
    scheduling decisions are angle-independent, and the apply order is
    the recorded order — so amplitudes, measurement outcomes and the
    RNG stream all coincide exactly, not merely within a float
    tolerance. *)

type template
(** A compiled angle-generic block program for one
    [(Circuit.hash_skeleton, inputs)] class. *)

val compile_template :
  ?config:config -> Circuit.b -> bool list -> template
(** Compile circuit + basis inputs into a reusable template. The box
    cache used is private (compiled programs carry this circuit's
    angle-site numbering); [config.cache] is forced on. The angle
    vector expected by {!run_template} follows {!Circuit.angles} order
    and the template was built at the circuit's own angles, so
    [run_template t (Circuit.angles b)] reproduces the original
    circuit. *)

val template_sites : template -> int
(** Expected angle-vector length ([= Circuit.num_angles] of the source). *)

val template_fused_blocks : template -> int
(** Number of fused (non-single-gate) blocks in the trace. *)

val template_specialized_blocks : template -> int
(** Number of blocks that are angle-dependent (re-specialized per
    point); the remainder are shared verbatim across every point. *)

val run_template : ?config:config -> ?seed:int -> template -> float array -> state
(** Apply the template's blocks, re-specialized at the given angle
    vector, to a fresh state. Raises if the vector length differs from
    {!template_sites}. [config] only affects bookkeeping of the fresh
    state (the trace is already compiled); [seed] seeds its RNG exactly
    as [run_circuit]'s. *)
