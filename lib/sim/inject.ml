(** Single-fault Pauli injection and outcome classification.

    The extended circuit model's assertive terminations ("-|0", §4.2.2)
    are a programmer {e claim} that uncomputation succeeded, and the
    simulators are the only thing that checks it. This engine measures
    how much protection that checking buys: enumerate every fault site of
    a circuit ({!Quipper.Faultsite}, recursing through boxed
    subroutines), inject a single Pauli at each, re-run, and classify:

    - {e detected}: a [Termination_assertion] fired — the fault flipped a
      wire whose asserted termination the simulator checks;
    - {e corrupted}: the run completed but the output state differs —
      silent wrong answer, the dangerous class;
    - {e masked}: the output state is unchanged (e.g. a Z on a wire in a
      basis state, or a flip that later logic cancels).

    Campaigns are generic over a {!Backend.S}: the injected Paulis are
    Clifford operations, so circuits within the stabilizer gate set can
    run their campaign on the polynomial-time Clifford backend — states
    are then compared by canonical stabilizer form instead of amplitude
    vectors. On the statevector backend, states are compared as full
    amplitude vectors up to global phase (plus classical outputs), so
    phase damage that would be observable by any further interference
    counts as corruption. Clean and faulty runs share one seed, so any
    measurements draw identically and the comparison isolates the
    fault's effect. *)

open Quipper

type pauli = X | Y | Z

let pauli_name = function X -> "X" | Y -> "Y" | Z -> "Z"
let all_paulis = [ X; Y; Z ]

type outcome = Detected | Corrupted | Masked | Errored of string

let outcome_name = function
  | Detected -> "detected"
  | Corrupted -> "corrupted"
  | Masked -> "masked"
  | Errored _ -> "errored"

type finding = { site : Faultsite.site; fault : pauli; outcome : outcome }

type report = {
  gates : int;  (** gate count of the inlined circuit *)
  sites : int;
  faults : int;
  detected : int;
  corrupted : int;
  masked : int;
  errored : int;
      (** slow-path classifications that raised something other than
          [Termination_assertion]; recorded so one bad fault never loses
          an exhaustive sweep *)
  frame_faults : int;  (** faults classified by the Pauli-frame engine *)
  slow_faults : int;  (** faults classified by full re-simulation *)
  fallback_reasons : string list;
      (** why frame lanes (or the whole campaign) fell back, each naming
          the offending gate/wire *)
  findings : finding list;
}

(* ------------------------------------------------------------------ *)

let apply_pauli (type s) (module B : Backend.S with type state = s) (st : s) p w =
  B.apply_gate st
    (Gate.Gate { name = pauli_name p; inv = false; targets = [ w ]; controls = [] })

(** Execute the inlined [flat] circuit, optionally striking [pauli] on
    [wire] right after gate [index] ([-1] = before the first gate). *)
let execute_on (type s) (module B : Backend.S with type state = s) ~seed
    (flat : Circuit.t) (inputs : bool list)
    ~(inject : (int * Wire.t * pauli) option) : s =
  let st = B.create ~seed () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "fault injection: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      B.apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    flat.Circuit.inputs inputs;
  (match inject with Some (-1, w, p) -> apply_pauli (module B) st p w | _ -> ());
  Array.iteri
    (fun i g ->
      B.apply_gate st g;
      match inject with
      | Some (j, w, p) when j = i -> apply_pauli (module B) st p w
      | _ -> ())
    flat.Circuit.gates;
  st

(** The observable content of a final state: the backend's observation of
    the quantum part plus the classical output bits. *)
let signature_on (type s) (module B : Backend.S with type state = s)
    (flat : Circuit.t) (st : s) : Backend.observation * bool list =
  let cbits =
    List.filter_map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with
        | Wire.C -> Some (B.read_bit st e.Wire.wire)
        | Wire.Q -> None)
      flat.Circuit.outputs
  in
  (B.observe st, cbits)

let equal_up_to_phase = Backend.equal_up_to_phase

let classify_on (module B : Backend.S) ~seed flat inputs ~clean
    (site : Faultsite.site) (p : pauli) : outcome =
  match
    execute_on (module B) ~seed flat inputs
      ~inject:(Some (site.Faultsite.index, site.Faultsite.wire, p))
  with
  | exception Errors.Error (Errors.Termination_assertion _) -> Detected
  | exception Errors.Error e -> Errored (Errors.to_string e)
  | exception e -> Errored (Printexc.to_string e)
  | st ->
      let obs, cbits = signature_on (module B) flat st in
      let clean_obs, clean_cbits = clean in
      if cbits = clean_cbits && Backend.equal_observation obs clean_obs then Masked
      else Corrupted

(** A prepared campaign over one circuit: the circuit is inlined once,
    sites enumerated once, and — the expensive part — the clean
    reference run (and its final-state signature) computed at most once,
    lazily, however many faults are classified against it. *)
type campaign = {
  cflat : Circuit.t;
  csites : Faultsite.site list;
  cclassify : Faultsite.site -> pauli -> outcome;
}

let campaign_on (module B : Backend.S) ?(seed = 1) (b : Circuit.b)
    (inputs : bool list) : campaign =
  let cflat, prov = Circuit.inline_provenance b in
  let csites = Faultsite.enumerate_flat ~flat:cflat ~prov in
  let clean =
    lazy
      (signature_on (module B) cflat
         (execute_on (module B) ~seed cflat inputs ~inject:None))
  in
  {
    cflat;
    csites;
    cclassify =
      (fun site p ->
        classify_on (module B) ~seed cflat inputs ~clean:(Lazy.force clean) site p);
  }

let run_site_on (module B : Backend.S) ?(seed = 1) (b : Circuit.b)
    (inputs : bool list) (site : Faultsite.site) (p : pauli) : outcome =
  let c = campaign_on (module B) ~seed b inputs in
  c.cclassify site p

let frame_fault (site : Faultsite.site) (p : pauli) : Frame.fault =
  let fx, fz = match p with X -> (true, false) | Y -> (true, true) | Z -> (false, true) in
  { Frame.findex = site.Faultsite.index; fwire = site.Faultsite.wire; fx; fz }

(** Exhaustive single-fault campaign: every site × every Pauli in
    [paulis]. With [engine] [`Auto] (default) or [`Frame], all faults are
    classified in one Pauli-frame propagation pass ({!Frame.inject_pass})
    when the circuit is eligible — one lane per fault instead of one full
    re-simulation per fault — with per-lane slow-path fallback; the
    masked test matches the backend's state-comparison semantics
    (canonical tableau vs amplitudes up to phase), so the classification
    is bit-identical to [`Slow]. *)
let report_on (module B : Backend.S) ?(seed = 1) ?(paulis = all_paulis)
    ?(engine : Engine.t = Engine.default ()) (b : Circuit.b) (inputs : bool list) :
    report =
  let c = campaign_on (module B) ~seed b inputs in
  let site_paulis =
    List.concat_map (fun site -> List.map (fun p -> (site, p)) paulis) c.csites
  in
  let semantics =
    match engine with
    | `Slow -> None
    | `Frame | `Auto -> (
        (* which masked-fault semantics does this backend's state
           comparison imply? Bit-observation backends (classical) have
           neither — they take the slow path. *)
        match B.observe (B.create ~seed:1 ()) with
        | Backend.Obs_tableau _ -> Some Frame.Tableau
        | Backend.Obs_amplitudes _ -> Some Frame.Amplitudes
        | Backend.Obs_bits _ -> None)
  in
  let frame_n = ref 0 and slow_n = ref 0 in
  let reasons = ref [] in
  let note r = if not (List.mem r !reasons) then reasons := r :: !reasons in
  let findings =
    match semantics with
    | Some sem when site_paulis <> [] ->
        let faults = Array.of_list (List.map (fun (s, p) -> frame_fault s p) site_paulis) in
        let ir = Frame.inject_pass ~semantics:sem c.cflat inputs ~faults in
        List.iter note ir.Frame.inject_reasons;
        (match ir.Frame.inject_ineligible with Some r -> note r | None -> ());
        List.mapi
          (fun i (site, p) ->
            let outcome =
              match ir.Frame.fault_outcomes.(i) with
              | Frame.F_detected ->
                  incr frame_n;
                  Detected
              | Frame.F_corrupted ->
                  incr frame_n;
                  Corrupted
              | Frame.F_masked ->
                  incr frame_n;
                  Masked
              | Frame.F_fallback ->
                  incr slow_n;
                  c.cclassify site p
            in
            { site; fault = p; outcome })
          site_paulis
    | _ ->
        (match (engine, semantics) with
        | `Frame, None ->
            note
              (Printf.sprintf
                 "frame: backend %s observes classical bits only; campaign ran on the slow path"
                 B.name)
        | _ -> ());
        List.map
          (fun (site, p) ->
            incr slow_n;
            { site; fault = p; outcome = c.cclassify site p })
          site_paulis
  in
  let count o =
    List.fold_left (fun acc f -> if f.outcome = o then acc + 1 else acc) 0 findings
  in
  {
    gates = Array.length c.cflat.Circuit.gates;
    sites = List.length c.csites;
    faults = List.length findings;
    detected = count Detected;
    corrupted = count Corrupted;
    masked = count Masked;
    errored =
      List.fold_left
        (fun acc f -> match f.outcome with Errored _ -> acc + 1 | _ -> acc)
        0 findings;
    frame_faults = !frame_n;
    slow_faults = !slow_n;
    fallback_reasons = List.rev !reasons;
    findings;
  }

(* The historical statevector-fixed entry points. *)

let run_site ?(seed = 1) (b : Circuit.b) (inputs : bool list)
    (site : Faultsite.site) (p : pauli) : outcome =
  run_site_on (module Backend.Statevector) ~seed b inputs site p

let report ?(seed = 1) ?(paulis = all_paulis) ?engine (b : Circuit.b)
    (inputs : bool list) : report =
  report_on (module Backend.Statevector) ~seed ~paulis ?engine b inputs

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp_report ppf r =
  Fmt.pf ppf "fault injection: %d sites x %d paulis = %d faults over %d gates@."
    r.sites
    (if r.sites = 0 then 0 else r.faults / r.sites)
    r.faults r.gates;
  Fmt.pf ppf "  detected  %5d (%5.1f%%)  Termination_assertion fired@." r.detected
    (pct r.detected r.faults);
  Fmt.pf ppf "  corrupted %5d (%5.1f%%)  silent wrong output@." r.corrupted
    (pct r.corrupted r.faults);
  Fmt.pf ppf "  masked    %5d (%5.1f%%)  output unchanged@." r.masked
    (pct r.masked r.faults);
  if r.errored > 0 then
    Fmt.pf ppf "  errored   %5d (%5.1f%%)  classification raised@." r.errored
      (pct r.errored r.faults);
  Fmt.pf ppf "  engine: %d faults via pauli frames, %d via re-simulation@."
    r.frame_faults r.slow_faults;
  List.iter (fun reason -> Fmt.pf ppf "  fallback: %s@." reason) r.fallback_reasons
