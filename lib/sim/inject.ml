(** Single-fault Pauli injection and outcome classification.

    The extended circuit model's assertive terminations ("-|0", §4.2.2)
    are a programmer {e claim} that uncomputation succeeded, and the
    simulators are the only thing that checks it. This engine measures
    how much protection that checking buys: enumerate every fault site of
    a circuit ({!Quipper.Faultsite}, recursing through boxed
    subroutines), inject a single Pauli at each, re-run, and classify:

    - {e detected}: a [Termination_assertion] fired — the fault flipped a
      wire whose asserted termination the simulator checks;
    - {e corrupted}: the run completed but the output state differs —
      silent wrong answer, the dangerous class;
    - {e masked}: the output state is unchanged (e.g. a Z on a wire in a
      basis state, or a flip that later logic cancels).

    Campaigns are generic over a {!Backend.S}: the injected Paulis are
    Clifford operations, so circuits within the stabilizer gate set can
    run their campaign on the polynomial-time Clifford backend — states
    are then compared by canonical stabilizer form instead of amplitude
    vectors. On the statevector backend, states are compared as full
    amplitude vectors up to global phase (plus classical outputs), so
    phase damage that would be observable by any further interference
    counts as corruption. Clean and faulty runs share one seed, so any
    measurements draw identically and the comparison isolates the
    fault's effect. *)

open Quipper

type pauli = X | Y | Z

let pauli_name = function X -> "X" | Y -> "Y" | Z -> "Z"
let all_paulis = [ X; Y; Z ]

type outcome = Detected | Corrupted | Masked

let outcome_name = function
  | Detected -> "detected"
  | Corrupted -> "corrupted"
  | Masked -> "masked"

type finding = { site : Faultsite.site; fault : pauli; outcome : outcome }

type report = {
  gates : int;  (** gate count of the inlined circuit *)
  sites : int;
  faults : int;
  detected : int;
  corrupted : int;
  masked : int;
  findings : finding list;
}

(* ------------------------------------------------------------------ *)

let apply_pauli (type s) (module B : Backend.S with type state = s) (st : s) p w =
  B.apply_gate st
    (Gate.Gate { name = pauli_name p; inv = false; targets = [ w ]; controls = [] })

(** Execute the inlined [flat] circuit, optionally striking [pauli] on
    [wire] right after gate [index] ([-1] = before the first gate). *)
let execute_on (type s) (module B : Backend.S with type state = s) ~seed
    (flat : Circuit.t) (inputs : bool list)
    ~(inject : (int * Wire.t * pauli) option) : s =
  let st = B.create ~seed () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "fault injection: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      B.apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    flat.Circuit.inputs inputs;
  (match inject with Some (-1, w, p) -> apply_pauli (module B) st p w | _ -> ());
  Array.iteri
    (fun i g ->
      B.apply_gate st g;
      match inject with
      | Some (j, w, p) when j = i -> apply_pauli (module B) st p w
      | _ -> ())
    flat.Circuit.gates;
  st

(** The observable content of a final state: the backend's observation of
    the quantum part plus the classical output bits. *)
let signature_on (type s) (module B : Backend.S with type state = s)
    (flat : Circuit.t) (st : s) : Backend.observation * bool list =
  let cbits =
    List.filter_map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with
        | Wire.C -> Some (B.read_bit st e.Wire.wire)
        | Wire.Q -> None)
      flat.Circuit.outputs
  in
  (B.observe st, cbits)

let equal_up_to_phase = Backend.equal_up_to_phase

let classify_on (module B : Backend.S) ~seed flat inputs ~clean
    (site : Faultsite.site) (p : pauli) : outcome =
  match
    execute_on (module B) ~seed flat inputs
      ~inject:(Some (site.Faultsite.index, site.Faultsite.wire, p))
  with
  | exception Errors.Error (Errors.Termination_assertion _) -> Detected
  | st ->
      let obs, cbits = signature_on (module B) flat st in
      let clean_obs, clean_cbits = clean in
      if cbits = clean_cbits && Backend.equal_observation obs clean_obs then Masked
      else Corrupted

let run_site_on (module B : Backend.S) ?(seed = 1) (b : Circuit.b)
    (inputs : bool list) (site : Faultsite.site) (p : pauli) : outcome =
  let flat = Circuit.inline b in
  let clean =
    signature_on (module B) flat (execute_on (module B) ~seed flat inputs ~inject:None)
  in
  classify_on (module B) ~seed flat inputs ~clean site p

(** Exhaustive single-fault campaign: every site × every Pauli in
    [paulis]. *)
let report_on (module B : Backend.S) ?(seed = 1) ?(paulis = all_paulis)
    (b : Circuit.b) (inputs : bool list) : report =
  let flat = Circuit.inline b in
  let sites = Faultsite.enumerate b in
  let clean =
    signature_on (module B) flat (execute_on (module B) ~seed flat inputs ~inject:None)
  in
  let findings =
    List.concat_map
      (fun site ->
        List.map
          (fun p ->
            { site;
              fault = p;
              outcome = classify_on (module B) ~seed flat inputs ~clean site p })
          paulis)
      sites
  in
  let count o =
    List.fold_left (fun acc f -> if f.outcome = o then acc + 1 else acc) 0 findings
  in
  {
    gates = Array.length flat.Circuit.gates;
    sites = List.length sites;
    faults = List.length findings;
    detected = count Detected;
    corrupted = count Corrupted;
    masked = count Masked;
    findings;
  }

(* The historical statevector-fixed entry points. *)

let run_site ?(seed = 1) (b : Circuit.b) (inputs : bool list)
    (site : Faultsite.site) (p : pauli) : outcome =
  run_site_on (module Backend.Statevector) ~seed b inputs site p

let report ?(seed = 1) ?(paulis = all_paulis) (b : Circuit.b) (inputs : bool list) :
    report =
  report_on (module Backend.Statevector) ~seed ~paulis b inputs

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp_report ppf r =
  Fmt.pf ppf "fault injection: %d sites x %d paulis = %d faults over %d gates@."
    r.sites
    (if r.sites = 0 then 0 else r.faults / r.sites)
    r.faults r.gates;
  Fmt.pf ppf "  detected  %5d (%5.1f%%)  Termination_assertion fired@." r.detected
    (pct r.detected r.faults);
  Fmt.pf ppf "  corrupted %5d (%5.1f%%)  silent wrong output@." r.corrupted
    (pct r.corrupted r.faults);
  Fmt.pf ppf "  masked    %5d (%5.1f%%)  output unchanged@." r.masked
    (pct r.masked r.faults)
