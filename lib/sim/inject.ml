(** Single-fault Pauli injection and outcome classification.

    The extended circuit model's assertive terminations ("-|0", §4.2.2)
    are a programmer {e claim} that uncomputation succeeded, and the
    simulators are the only thing that checks it. This engine measures
    how much protection that checking buys: enumerate every fault site of
    a circuit ({!Quipper.Faultsite}, recursing through boxed
    subroutines), inject a single Pauli at each, re-run, and classify:

    - {e detected}: a [Termination_assertion] fired — the fault flipped a
      wire whose asserted termination the simulator checks;
    - {e corrupted}: the run completed but the output state differs —
      silent wrong answer, the dangerous class;
    - {e masked}: the output state is unchanged (e.g. a Z on a wire in a
      basis state, or a flip that later logic cancels).

    States are compared as full amplitude vectors up to global phase
    (plus classical outputs), so phase damage that would be observable by
    any further interference counts as corruption. Clean and faulty runs
    share one seed, so any measurements draw identically and the
    comparison isolates the fault's effect. *)

open Quipper
module Sv = Statevector

type pauli = X | Y | Z

let pauli_name = function X -> "X" | Y -> "Y" | Z -> "Z"
let all_paulis = [ X; Y; Z ]

type outcome = Detected | Corrupted | Masked

let outcome_name = function
  | Detected -> "detected"
  | Corrupted -> "corrupted"
  | Masked -> "masked"

type finding = { site : Faultsite.site; fault : pauli; outcome : outcome }

type report = {
  gates : int;  (** gate count of the inlined circuit *)
  sites : int;
  faults : int;
  detected : int;
  corrupted : int;
  masked : int;
  findings : finding list;
}

(* ------------------------------------------------------------------ *)

let apply_pauli st p w =
  Sv.apply_gate st
    (Gate.Gate { name = pauli_name p; inv = false; targets = [ w ]; controls = [] })

(** Execute the inlined [flat] circuit, optionally striking [pauli] on
    [wire] right after gate [index] ([-1] = before the first gate). *)
let execute ~seed (flat : Circuit.t) (inputs : bool list)
    ~(inject : (int * Wire.t * pauli) option) : Sv.state =
  let st = Sv.create ~seed () in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "fault injection: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      Sv.apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    flat.Circuit.inputs inputs;
  (match inject with Some (-1, w, p) -> apply_pauli st p w | _ -> ());
  Array.iteri
    (fun i g ->
      Sv.apply_gate st g;
      match inject with
      | Some (j, w, p) when j = i -> apply_pauli st p w
      | _ -> ())
    flat.Circuit.gates;
  st

(** The observable content of a final state: the amplitude vector plus
    the classical output bits. *)
let signature (flat : Circuit.t) (st : Sv.state) =
  let cbits =
    List.filter_map
      (fun (e : Wire.endpoint) ->
        match e.Wire.ty with
        | Wire.C -> Some (Sv.read_bit st e.Wire.wire)
        | Wire.Q -> None)
      flat.Circuit.outputs
  in
  (Sv.amplitudes st, cbits)

(** Amplitude vectors equal up to a global phase (tolerance [eps] per
    component). *)
let equal_up_to_phase ?(eps = 1e-6) (a : Quipper_math.Cplx.t array)
    (b : Quipper_math.Cplx.t array) =
  let open Quipper_math in
  Array.length a = Array.length b
  &&
  (* reference component: the largest of [a] *)
  let k = ref 0 in
  Array.iteri (fun i x -> if Cplx.norm2 x > Cplx.norm2 a.(!k) then k := i) a;
  let ak = a.(!k) and bk = b.(!k) in
  if Cplx.norm bk < eps then Cplx.norm ak < eps
  else begin
    (* phase factor aligning b to a, unit modulus only if |ak| ~ |bk| *)
    let f = Cplx.smul (1.0 /. Cplx.norm2 bk) (Cplx.mul ak (Cplx.conj bk)) in
    abs_float (Cplx.norm f -. 1.0) < eps
    && Array.for_all2 (fun x y -> Cplx.norm (Cplx.sub x (Cplx.mul f y)) < eps) a b
  end

let classify ~seed flat inputs ~clean (site : Faultsite.site) (p : pauli) : outcome =
  match execute ~seed flat inputs ~inject:(Some (site.Faultsite.index, site.Faultsite.wire, p)) with
  | exception Errors.Error (Errors.Termination_assertion _) -> Detected
  | st ->
      let amps, cbits = signature flat st in
      let clean_amps, clean_cbits = clean in
      if cbits = clean_cbits && equal_up_to_phase amps clean_amps then Masked
      else Corrupted

let run_site ?(seed = 1) (b : Circuit.b) (inputs : bool list) (site : Faultsite.site)
    (p : pauli) : outcome =
  let flat = Circuit.inline b in
  let clean = signature flat (execute ~seed flat inputs ~inject:None) in
  classify ~seed flat inputs ~clean site p

(** Exhaustive single-fault campaign: every site × every Pauli in
    [paulis]. *)
let report ?(seed = 1) ?(paulis = all_paulis) (b : Circuit.b) (inputs : bool list) :
    report =
  let flat = Circuit.inline b in
  let sites = Faultsite.enumerate b in
  let clean = signature flat (execute ~seed flat inputs ~inject:None) in
  let findings =
    List.concat_map
      (fun site ->
        List.map
          (fun p -> { site; fault = p; outcome = classify ~seed flat inputs ~clean site p })
          paulis)
      sites
  in
  let count o =
    List.fold_left (fun acc f -> if f.outcome = o then acc + 1 else acc) 0 findings
  in
  {
    gates = Array.length flat.Circuit.gates;
    sites = List.length sites;
    faults = List.length findings;
    detected = count Detected;
    corrupted = count Corrupted;
    masked = count Masked;
    findings;
  }

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp_report ppf r =
  Fmt.pf ppf "fault injection: %d sites x %d paulis = %d faults over %d gates@."
    r.sites
    (if r.sites = 0 then 0 else r.faults / r.sites)
    r.faults r.gates;
  Fmt.pf ppf "  detected  %5d (%5.1f%%)  Termination_assertion fired@." r.detected
    (pct r.detected r.faults);
  Fmt.pf ppf "  corrupted %5d (%5.1f%%)  silent wrong output@." r.corrupted
    (pct r.corrupted r.faults);
  Fmt.pf ppf "  masked    %5d (%5.1f%%)  output unchanged@." r.masked
    (pct r.masked r.faults)
