(** Single-fault Pauli injection: enumerate every fault site of a circuit
    ({!Quipper.Faultsite}), inject X/Y/Z at each, re-run, and classify
    the outcome — measuring how much protection assertive termination
    (paper §4.2.2) actually buys.

    Campaigns are generic over a {!Backend.S} (the [_on] functions);
    injected Paulis are Clifford operations, so stabilizer-gate-set
    circuits can run campaigns on the polynomial-time Clifford backend,
    with states compared by canonical stabilizer form. The historical
    names are fixed to the statevector backend and behave exactly as
    before. *)

open Quipper

type pauli = X | Y | Z

val pauli_name : pauli -> string
val all_paulis : pauli list

type outcome =
  | Detected  (** a [Termination_assertion] fired during the faulty run *)
  | Corrupted  (** completed, but the output state differs: silent damage *)
  | Masked  (** output state unchanged (up to global phase) *)
  | Errored of string
      (** the faulty run raised something other than
          [Termination_assertion]; recorded and skipped so one bad fault
          never loses an exhaustive sweep *)

val outcome_name : outcome -> string

type finding = { site : Faultsite.site; fault : pauli; outcome : outcome }

type report = {
  gates : int;
  sites : int;
  faults : int;
  detected : int;
  corrupted : int;
  masked : int;
  errored : int;  (** slow-path classifications that raised; see {!outcome} *)
  frame_faults : int;  (** faults classified by the Pauli-frame engine *)
  slow_faults : int;  (** faults classified by full re-simulation *)
  fallback_reasons : string list;
      (** why frame lanes (or the whole campaign) fell back, each naming
          the offending gate/wire *)
  findings : finding list;
}

val equal_up_to_phase :
  ?eps:float -> Quipper_math.Cplx.t array -> Quipper_math.Cplx.t array -> bool
(** Amplitude vectors equal up to one global phase factor. *)

val run_site_on :
  (module Backend.S) ->
  ?seed:int ->
  Circuit.b ->
  bool list ->
  Faultsite.site ->
  pauli ->
  outcome
(** Inject one fault at one site on the given backend and classify it
    against the clean run (same seed, so measurements draw identically). *)

val report_on :
  (module Backend.S) ->
  ?seed:int ->
  ?paulis:pauli list ->
  ?engine:Engine.t ->
  Circuit.b ->
  bool list ->
  report
(** Exhaustive single-fault campaign on the given backend, over every
    site and every Pauli in [paulis] (default all three). The circuit is
    inlined and its clean reference run computed once per campaign, not
    once per fault. *)

val run_site : ?seed:int -> Circuit.b -> bool list -> Faultsite.site -> pauli -> outcome
(** {!run_site_on} fixed to the statevector backend. *)

val report :
  ?seed:int -> ?paulis:pauli list -> ?engine:Engine.t -> Circuit.b -> bool list -> report
(** {!report_on} fixed to the statevector backend. *)

val pp_report : Format.formatter -> report -> unit
