(** Single-fault Pauli injection: enumerate every fault site of a circuit
    ({!Quipper.Faultsite}), inject X/Y/Z at each, re-run on the
    statevector simulator, and classify the outcome — measuring how much
    protection assertive termination (paper §4.2.2) actually buys. *)

open Quipper

type pauli = X | Y | Z

val pauli_name : pauli -> string
val all_paulis : pauli list

type outcome =
  | Detected  (** a [Termination_assertion] fired during the faulty run *)
  | Corrupted  (** completed, but the output state differs: silent damage *)
  | Masked  (** output state unchanged (up to global phase) *)

val outcome_name : outcome -> string

type finding = { site : Faultsite.site; fault : pauli; outcome : outcome }

type report = {
  gates : int;
  sites : int;
  faults : int;
  detected : int;
  corrupted : int;
  masked : int;
  findings : finding list;
}

val equal_up_to_phase :
  ?eps:float -> Quipper_math.Cplx.t array -> Quipper_math.Cplx.t array -> bool
(** Amplitude vectors equal up to one global phase factor. *)

val run_site : ?seed:int -> Circuit.b -> bool list -> Faultsite.site -> pauli -> outcome
(** Inject one fault at one site and classify it against the clean run
    (same seed, so measurements draw identically). *)

val report : ?seed:int -> ?paulis:pauli list -> Circuit.b -> bool list -> report
(** Exhaustive single-fault campaign over every site and every Pauli in
    [paulis] (default all three). *)

val pp_report : Format.formatter -> report -> unit
