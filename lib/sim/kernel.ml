(** In-place statevector kernels.

    The hot loops of the dense simulator, specialised per gate class
    ({!Quipper.Gate.fast_class}): X/CNOT/Toffoli are index swaps, the
    diagonal family (Z, S, T, R/Ph, Rz, exp(-i%Z), controlled phase) is
    a phase multiply, and only H and W pay a butterfly. Controls are
    folded into one precomputed (mask, want) pair per gate —
    uncontrolled gates run a check-free loop, a single control is folded
    into the iteration itself (quarter space, no per-index test), and
    only multi-control gates check the mask once per index.

    Every kernel writes the same floating-point results, bit for bit,
    as the generic 2x2/4x4 matrix path of the seed engine (kept in
    {!Reference}): term orderings mirror the matrix inner products with
    the known-zero products dropped, which never changes a non-zero
    result. Pure moves are multiplied by [1.0] — the identity on every
    IEEE value including -0.0, infinities and denormals — which forces
    the moved floats into arithmetic context so the whole chain unboxes
    without flambda (a bare array-to-array move boxes two words per
    float and runs ~4x slower). The differential and property tests
    rely on the bit-exactness.

    Iteration is by {e runs}: the compressed index space (target bit
    deleted) decomposes into maximal runs of contiguous full indices, so
    the inner loops are sequential array sweeps with no per-index bit
    surgery, over [Array.unsafe_*] (indices are in range by
    construction: [expand j < size] for [j < size/2], and callers
    guarantee [size <= Array.length re]). Two more non-flambda rules
    shape the code: loop bodies are top-level functions (free variables
    of an inline closure are re-fetched through the environment inside
    the loop; function parameters live in registers), and [min]/[max]
    never appear in a hot loop (unspecialised they are the polymorphic
    comparison, an out-of-line call).

    Kernels operate on the first [size] elements of the (re, im) pair of
    unboxed float arrays; the arrays may be longer (capacity-managed by
    {!Statevector}). Above {!threshold} amplitudes, elementwise kernels
    chunk their compressed index space across [num_domains] OCaml 5
    [Domain]s. Chunking is deterministic and elementwise, so results do
    not depend on the domain count; reductions that feed sampling
    (measurement probabilities) are sequential by design — ordered float
    summation, and hence every sampled outcome, is identical on any
    machine. *)

(* A positive integer from the environment; anything else (unset, junk,
   zero, negative) falls through to the default. *)
let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> Some v
      | _ -> None)

let num_domains =
  ref
    (match env_int "QUIPPER_DOMAINS" with
    | Some d -> d
    | None -> max 1 (Domain.recommended_domain_count ()))

let threshold =
  ref (match env_int "QUIPPER_PAR_THRESHOLD" with Some t -> t | None -> 1 lsl 19)
(** Minimum number of amplitudes before a kernel fans out across
    domains; below it, spawn overhead dominates. *)

(** [par_range n f] runs [f lo hi] over a partition of [0, n), in
    parallel when worthwhile. [f] must touch disjoint state per index. *)
let par_range n (f : int -> int -> unit) =
  let d = !num_domains in
  if d <= 1 || n < !threshold then f 0 n
  else begin
    let chunk = n / d in
    let workers =
      Array.init (d - 1) (fun k ->
          Domain.spawn (fun () -> f (k * chunk) ((k + 1) * chunk)))
    in
    f ((d - 1) * chunk) n;
    Array.iter Domain.join workers
  end

(* Expand a compressed index [j] (over the subspace where the target bit
   is 0) to the full index: insert a 0 bit at position [p], where
   [lowmask = (1 lsl p) - 1]. *)
let[@inline] expand j lowmask =
  ((j land lnot lowmask) lsl 1) lor (j land lowmask)

(* ------------------------------------------------------------------ *)
(* Pair kernels. Each chunk body walks [lo, hi) of compressed indices
   run by run; within a run the full index is contiguous. The [0]
   suffix marks the uncontrolled body, [1] the single-control body
   (both the target bit and the control bit deleted from the index
   space — the nested [expand] is valid because within a run only the
   bits below the lower deleted bit vary, so the outer insertion point
   never shifts), and [m] the multi-control body with the per-index
   mask check. *)

let kx0 ~re ~im ~bit ~lowmask lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    let fin = base + (run_end - !j) - 1 in
    for i0 = base to fin do
      let i1 = i0 lor bit in
      let xr = Array.unsafe_get re i0 *. 1.0
      and xi = Array.unsafe_get im i0 *. 1.0 in
      Array.unsafe_set re i0 (Array.unsafe_get re i1 *. 1.0);
      Array.unsafe_set im i0 (Array.unsafe_get im i1 *. 1.0);
      Array.unsafe_set re i1 xr;
      Array.unsafe_set im i1 xi
    done;
    j := run_end
  done

let kx1 ~re ~im ~bit ~lm ~hm ~cwant lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lm) + 1 in if e < hi then e else hi in
    let base = expand (expand !j lm) hm lor cwant in
    let fin = base + (run_end - !j) - 1 in
    for i0 = base to fin do
      let i1 = i0 lor bit in
      let xr = Array.unsafe_get re i0 *. 1.0
      and xi = Array.unsafe_get im i0 *. 1.0 in
      Array.unsafe_set re i0 (Array.unsafe_get re i1 *. 1.0);
      Array.unsafe_set im i0 (Array.unsafe_get im i1 *. 1.0);
      Array.unsafe_set re i1 xr;
      Array.unsafe_set im i1 xi
    done;
    j := run_end
  done

let kxm ~re ~im ~bit ~lowmask ~cmask ~cwant lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    for k = 0 to run_end - !j - 1 do
      let i0 = base + k in
      if i0 land cmask = cwant then begin
        let i1 = i0 lor bit in
        let xr = Array.unsafe_get re i0 *. 1.0
        and xi = Array.unsafe_get im i0 *. 1.0 in
        Array.unsafe_set re i0 (Array.unsafe_get re i1 *. 1.0);
        Array.unsafe_set im i0 (Array.unsafe_get im i1 *. 1.0);
        Array.unsafe_set re i1 xr;
        Array.unsafe_set im i1 xi
      end
    done;
    j := run_end
  done

(** X / CNOT / Toffoli: swap each pair. *)
let kx ~re ~im ~size ~bit ~cmask ~cwant =
  let lowmask = bit - 1 in
  if cmask = 0 then par_range (size / 2) (kx0 ~re ~im ~bit ~lowmask)
  else if cmask land (cmask - 1) = 0 then begin
    let bl = if bit < cmask then bit else cmask in
    let bh = if bit < cmask then cmask else bit in
    par_range (size / 4) (kx1 ~re ~im ~bit ~lm:(bl - 1) ~hm:(bh - 1) ~cwant)
  end
  else par_range (size / 2) (kxm ~re ~im ~bit ~lowmask ~cmask ~cwant)

let ky0 ~re ~im ~bit ~lowmask lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    let fin = base + (run_end - !j) - 1 in
    for i0 = base to fin do
      let i1 = i0 lor bit in
      let xr = Array.unsafe_get re i0 *. 1.0
      and xi = Array.unsafe_get im i0 in
      Array.unsafe_set re i0 (Array.unsafe_get im i1 *. 1.0);
      Array.unsafe_set im i0 (-.Array.unsafe_get re i1);
      Array.unsafe_set re i1 (-.xi);
      Array.unsafe_set im i1 xr
    done;
    j := run_end
  done

let kym ~re ~im ~bit ~lowmask ~cmask ~cwant lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    for k = 0 to run_end - !j - 1 do
      let i0 = base + k in
      if i0 land cmask = cwant then begin
        let i1 = i0 lor bit in
        let xr = Array.unsafe_get re i0 *. 1.0
        and xi = Array.unsafe_get im i0 in
        Array.unsafe_set re i0 (Array.unsafe_get im i1 *. 1.0);
        Array.unsafe_set im i0 (-.Array.unsafe_get re i1);
        Array.unsafe_set re i1 (-.xi);
        Array.unsafe_set im i1 xr
      end
    done;
    j := run_end
  done

(** Y: amp0' = -i * amp1, amp1' = i * amp0. *)
let ky ~re ~im ~size ~bit ~cmask ~cwant =
  let lowmask = bit - 1 in
  if cmask = 0 then par_range (size / 2) (ky0 ~re ~im ~bit ~lowmask)
  else par_range (size / 2) (kym ~re ~im ~bit ~lowmask ~cmask ~cwant)

let kh0 ~re ~im ~bit ~lowmask ~r lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    let fin = base + (run_end - !j) - 1 in
    for i0 = base to fin do
      let i1 = i0 lor bit in
      let xr = Array.unsafe_get re i0 and xi = Array.unsafe_get im i0 in
      let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
      Array.unsafe_set re i0 ((r *. xr) +. (r *. yr));
      Array.unsafe_set im i0 ((r *. xi) +. (r *. yi));
      Array.unsafe_set re i1 ((r *. xr) -. (r *. yr));
      Array.unsafe_set im i1 ((r *. xi) -. (r *. yi))
    done;
    j := run_end
  done

let khm ~re ~im ~bit ~lowmask ~r ~cmask ~cwant lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    for k = 0 to run_end - !j - 1 do
      let i0 = base + k in
      if i0 land cmask = cwant then begin
        let i1 = i0 lor bit in
        let xr = Array.unsafe_get re i0 and xi = Array.unsafe_get im i0 in
        let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
        Array.unsafe_set re i0 ((r *. xr) +. (r *. yr));
        Array.unsafe_set im i0 ((r *. xi) +. (r *. yi));
        Array.unsafe_set re i1 ((r *. xr) -. (r *. yr));
        Array.unsafe_set im i1 ((r *. xi) -. (r *. yi))
      end
    done;
    j := run_end
  done

(** H: the butterfly (x, y) -> (r x + r y, r x - r y), r = 1/sqrt 2.
    Term order mirrors the generic path's inner product exactly. *)
let kh ~re ~im ~size ~bit ~cmask ~cwant =
  let r = 1.0 /. sqrt 2.0 in
  let lowmask = bit - 1 in
  if cmask = 0 then par_range (size / 2) (kh0 ~re ~im ~bit ~lowmask ~r)
  else par_range (size / 2) (khm ~re ~im ~bit ~lowmask ~r ~cmask ~cwant)

let kdiag1_0 ~re ~im ~bit ~lowmask ~d1_re ~d1_im lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask lor bit in
    let fin = base + (run_end - !j) - 1 in
    for i1 = base to fin do
      let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
      Array.unsafe_set re i1 ((d1_re *. yr) -. (d1_im *. yi));
      Array.unsafe_set im i1 ((d1_re *. yi) +. (d1_im *. yr))
    done;
    j := run_end
  done

let kdiag1_1 ~re ~im ~bit ~lm ~hm ~cwant ~d1_re ~d1_im lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lm) + 1 in if e < hi then e else hi in
    let base = expand (expand !j lm) hm lor cwant lor bit in
    let fin = base + (run_end - !j) - 1 in
    for i1 = base to fin do
      let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
      Array.unsafe_set re i1 ((d1_re *. yr) -. (d1_im *. yi));
      Array.unsafe_set im i1 ((d1_re *. yi) +. (d1_im *. yr))
    done;
    j := run_end
  done

let kdiag1_m ~re ~im ~bit ~lowmask ~cmask ~cwant ~d1_re ~d1_im lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    (* the target bit is never a control, so checking the mask on [i1]
       is the same as on [i0] *)
    let base = expand !j lowmask lor bit in
    for k = 0 to run_end - !j - 1 do
      let i1 = base + k in
      if i1 land cmask = cwant then begin
        let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
        Array.unsafe_set re i1 ((d1_re *. yr) -. (d1_im *. yi));
        Array.unsafe_set im i1 ((d1_re *. yi) +. (d1_im *. yr))
      end
    done;
    j := run_end
  done

(** diag(d0, d1) with d0 = 1: multiply only the bit-set half. Covers Z,
    S, T, R/Ph and the controlled-phase family. *)
let kdiag1 ~re ~im ~size ~bit ~cmask ~cwant ~d1_re ~d1_im =
  let lowmask = bit - 1 in
  if cmask = 0 then
    par_range (size / 2) (kdiag1_0 ~re ~im ~bit ~lowmask ~d1_re ~d1_im)
  else if cmask land (cmask - 1) = 0 then begin
    let bl = if bit < cmask then bit else cmask in
    let bh = if bit < cmask then cmask else bit in
    par_range (size / 4)
      (kdiag1_1 ~re ~im ~bit ~lm:(bl - 1) ~hm:(bh - 1) ~cwant ~d1_re ~d1_im)
  end
  else
    par_range (size / 2)
      (kdiag1_m ~re ~im ~bit ~lowmask ~cmask ~cwant ~d1_re ~d1_im)

let kdiag_0 ~re ~im ~bit ~lowmask ~d0_re ~d0_im ~d1_re ~d1_im lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    let fin = base + (run_end - !j) - 1 in
    for i0 = base to fin do
      let i1 = i0 lor bit in
      let xr = Array.unsafe_get re i0 and xi = Array.unsafe_get im i0 in
      let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
      Array.unsafe_set re i0 ((d0_re *. xr) -. (d0_im *. xi));
      Array.unsafe_set im i0 ((d0_re *. xi) +. (d0_im *. xr));
      Array.unsafe_set re i1 ((d1_re *. yr) -. (d1_im *. yi));
      Array.unsafe_set im i1 ((d1_re *. yi) +. (d1_im *. yr))
    done;
    j := run_end
  done

let kdiag_m ~re ~im ~bit ~lowmask ~cmask ~cwant ~d0_re ~d0_im ~d1_re ~d1_im
    lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    for k = 0 to run_end - !j - 1 do
      let i0 = base + k in
      if i0 land cmask = cwant then begin
        let i1 = i0 lor bit in
        let xr = Array.unsafe_get re i0 and xi = Array.unsafe_get im i0 in
        let yr = Array.unsafe_get re i1 and yi = Array.unsafe_get im i1 in
        Array.unsafe_set re i0 ((d0_re *. xr) -. (d0_im *. xi));
        Array.unsafe_set im i0 ((d0_re *. xi) +. (d0_im *. xr));
        Array.unsafe_set re i1 ((d1_re *. yr) -. (d1_im *. yi));
        Array.unsafe_set im i1 ((d1_re *. yi) +. (d1_im *. yr))
      end
    done;
    j := run_end
  done

(** General diagonal diag(d0, d1): Rz and exp(-i%Z). *)
let kdiag ~re ~im ~size ~bit ~cmask ~cwant ~d0_re ~d0_im ~d1_re ~d1_im =
  if d0_re = 1.0 && d0_im = 0.0 then
    kdiag1 ~re ~im ~size ~bit ~cmask ~cwant ~d1_re ~d1_im
  else
    let lowmask = bit - 1 in
    if cmask = 0 then
      par_range (size / 2)
        (kdiag_0 ~re ~im ~bit ~lowmask ~d0_re ~d0_im ~d1_re ~d1_im)
    else
      par_range (size / 2)
        (kdiag_m ~re ~im ~bit ~lowmask ~cmask ~cwant ~d0_re ~d0_im ~d1_re
           ~d1_im)

let kphase_chunk ~re ~im ~cmask ~cwant ~pr ~pi lo hi =
  for i = lo to hi - 1 do
    if i land cmask = cwant then begin
      let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
      Array.unsafe_set re i ((pr *. xr) -. (pi *. xi));
      Array.unsafe_set im i ((pr *. xi) +. (pi *. xr))
    end
  done

(** Global phase e^{i angle} on every index satisfying the controls. *)
let kphase ~re ~im ~size ~cmask ~cwant ~angle =
  let pr = cos angle and pi = sin angle in
  par_range size (kphase_chunk ~re ~im ~cmask ~cwant ~pr ~pi)

(* ------------------------------------------------------------------ *)
(* Sequential reductions                                               *)

(** Ascending-order sum of |amp|^2 over the half where the target [bit]
    is set ([want = true]) or clear: the same additions in the same
    order as a full ascending scan that skips the other half — the
    reductions the seed engine performs, at half the iterations. Always
    sequential: summation order must never depend on the domain count
    (sampled outcomes hang off these sums). The accumulator lives in a
    1-element float array (a [float ref] would box on every store) and
    round-trips through it once per 4 elements, not once per element;
    the additions themselves stay strictly in seed order. *)
let sum_norm2_half ~re ~im ~size ~bit ~want =
  let lowmask = bit - 1 in
  let half = size / 2 in
  let acc = [| 0.0 |] in
  let j = ref 0 in
  while !j < half do
    let run_end = let e = (!j lor lowmask) + 1 in if e < half then e else half in
    let base =
      let b = expand !j lowmask in
      if want then b lor bit else b
    in
    let len = run_end - !j in
    let k = ref 0 in
    while !k + 4 <= len do
      let i = base + !k in
      let a = Array.unsafe_get acc 0 in
      let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
      let a = a +. ((xr *. xr) +. (xi *. xi)) in
      let xr = Array.unsafe_get re (i + 1) and xi = Array.unsafe_get im (i + 1) in
      let a = a +. ((xr *. xr) +. (xi *. xi)) in
      let xr = Array.unsafe_get re (i + 2) and xi = Array.unsafe_get im (i + 2) in
      let a = a +. ((xr *. xr) +. (xi *. xi)) in
      let xr = Array.unsafe_get re (i + 3) and xi = Array.unsafe_get im (i + 3) in
      let a = a +. ((xr *. xr) +. (xi *. xi)) in
      Array.unsafe_set acc 0 a;
      k := !k + 4
    done;
    while !k < len do
      let i = base + !k in
      let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
      Array.unsafe_set acc 0
        (Array.unsafe_get acc 0 +. ((xr *. xr) +. (xi *. xi)));
      incr k
    done;
    j := run_end
  done;
  acc.(0)

(** Same reduction with four independent accumulator lanes, combined at
    the end. NOT the seed's summation order — only for sums whose value
    feeds a coarse comparison (the Term assertion's 1e-9 threshold) and
    never reaches amplitudes or sampling: reordering moves the result
    by ulps, which a threshold orders of magnitude from both legitimate
    outcomes cannot see. The independent lanes break the serial
    float-add dependency chain that bounds the ordered version. *)
let sum_norm2_half_unord ~re ~im ~size ~bit ~want =
  let lowmask = bit - 1 in
  let half = size / 2 in
  let acc = [| 0.0; 0.0; 0.0; 0.0 |] in
  let j = ref 0 in
  while !j < half do
    let run_end = let e = (!j lor lowmask) + 1 in if e < half then e else half in
    let base =
      let b = expand !j lowmask in
      if want then b lor bit else b
    in
    let len = run_end - !j in
    let k = ref 0 in
    while !k + 4 <= len do
      let i = base + !k in
      let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
      Array.unsafe_set acc 0
        (Array.unsafe_get acc 0 +. ((xr *. xr) +. (xi *. xi)));
      let xr = Array.unsafe_get re (i + 1) and xi = Array.unsafe_get im (i + 1) in
      Array.unsafe_set acc 1
        (Array.unsafe_get acc 1 +. ((xr *. xr) +. (xi *. xi)));
      let xr = Array.unsafe_get re (i + 2) and xi = Array.unsafe_get im (i + 2) in
      Array.unsafe_set acc 2
        (Array.unsafe_get acc 2 +. ((xr *. xr) +. (xi *. xi)));
      let xr = Array.unsafe_get re (i + 3) and xi = Array.unsafe_get im (i + 3) in
      Array.unsafe_set acc 3
        (Array.unsafe_get acc 3 +. ((xr *. xr) +. (xi *. xi)));
      k := !k + 4
    done;
    while !k < len do
      let i = base + !k in
      let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
      Array.unsafe_set acc 0
        (Array.unsafe_get acc 0 +. ((xr *. xr) +. (xi *. xi)));
      incr k
    done;
    j := run_end
  done;
  acc.(0) +. acc.(1) +. acc.(2) +. acc.(3)

(* ------------------------------------------------------------------ *)
(* Two-qubit kernels                                                   *)

let kswap_chunk ~re ~im ~ba ~bb ~cmask ~cwant lo hi =
  for i = lo to hi - 1 do
    if i land ba <> 0 && i land bb = 0 && i land cmask = cwant then begin
      let j = i lxor ba lxor bb in
      let xr = Array.unsafe_get re i *. 1.0
      and xi = Array.unsafe_get im i *. 1.0 in
      Array.unsafe_set re i (Array.unsafe_get re j *. 1.0);
      Array.unsafe_set im i (Array.unsafe_get im j *. 1.0);
      Array.unsafe_set re j xr;
      Array.unsafe_set im j xi
    end
  done

(** swap (with any controls): exchange amplitudes across the bit pair. *)
let kswap ~re ~im ~size ~ba ~bb ~cmask ~cwant =
  par_range size (kswap_chunk ~re ~im ~ba ~bb ~cmask ~cwant)

let kw_chunk ~re ~im ~ba ~bb ~cmask ~cwant ~r lo hi =
  for i = lo to hi - 1 do
    (* i is the |01> index of its quadruple: a clear, b set *)
    if i land ba = 0 && i land bb <> 0 && i land cmask = cwant then begin
      let j = i lxor ba lxor bb in
      let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
      let yr = Array.unsafe_get re j and yi = Array.unsafe_get im j in
      Array.unsafe_set re i ((r *. xr) +. (r *. yr));
      Array.unsafe_set im i ((r *. xi) +. (r *. yi));
      Array.unsafe_set re j ((r *. xr) -. (r *. yr));
      Array.unsafe_set im j ((r *. xi) -. (r *. yi))
    end
  done

(** W: H on the odd-parity subspace span(|01>, |10>), identity on |00>
    and |11>. [ba] is the first wire's (high) bit. *)
let kw ~re ~im ~size ~ba ~bb ~cmask ~cwant =
  let r = 1.0 /. sqrt 2.0 in
  par_range size (kw_chunk ~re ~im ~ba ~bb ~cmask ~cwant ~r)

(* ------------------------------------------------------------------ *)
(* Generic fallbacks (unrecognised unitaries)                          *)

let k1_chunk ~re ~im ~bit ~lowmask ~cmask ~cwant ~a_re ~a_im ~b_re ~b_im ~c_re
    ~c_im ~d_re ~d_im lo hi =
  let j = ref lo in
  while !j < hi do
    let run_end = let e = (!j lor lowmask) + 1 in if e < hi then e else hi in
    let base = expand !j lowmask in
    for k = 0 to run_end - !j - 1 do
      let i0 = base + k in
      if i0 land cmask = cwant then begin
        let i1 = i0 lor bit in
        let x_re = Array.unsafe_get re i0 and x_im = Array.unsafe_get im i0 in
        let y_re = Array.unsafe_get re i1 and y_im = Array.unsafe_get im i1 in
        Array.unsafe_set re i0
          ((a_re *. x_re) -. (a_im *. x_im) +. (b_re *. y_re) -. (b_im *. y_im));
        Array.unsafe_set im i0
          ((a_re *. x_im) +. (a_im *. x_re) +. (b_re *. y_im) +. (b_im *. y_re));
        Array.unsafe_set re i1
          ((c_re *. x_re) -. (c_im *. x_im) +. (d_re *. y_re) -. (d_im *. y_im));
        Array.unsafe_set im i1
          ((c_re *. x_im) +. (c_im *. x_re) +. (d_re *. y_im) +. (d_im *. y_re))
      end
    done;
    j := run_end
  done

(** Generic single-qubit matrix application — the fallback for gates
    without a specialised kernel (V, Rx, user matrices). *)
let k1_generic ~re ~im ~size ~bit ~cmask ~cwant (m : Quipper_math.Mat2.t) =
  let open Quipper_math in
  let a = Mat2.get m 0 0 and b = Mat2.get m 0 1 in
  let c = Mat2.get m 1 0 and d = Mat2.get m 1 1 in
  let lowmask = bit - 1 in
  par_range (size / 2)
    (k1_chunk ~re ~im ~bit ~lowmask ~cmask ~cwant ~a_re:(Cplx.re a)
       ~a_im:(Cplx.im a) ~b_re:(Cplx.re b) ~b_im:(Cplx.im b) ~c_re:(Cplx.re c)
       ~c_im:(Cplx.im c) ~d_re:(Cplx.re d) ~d_im:(Cplx.im d))

(* ------------------------------------------------------------------ *)
(* Fused k-qubit kernels (gate fusion, {!Fuse})                        *)

(* Expand a compressed index [j] (all [k] support bits deleted) to the
   full index: insert a 0 bit at each deleted position. [masks] must be
   the support bits sorted ascending — each insertion only shifts bits
   at or above its own position, so ascending insertions never disturb
   one another. *)
let[@inline] kq_expand j (masks : int array) k =
  let base = ref j in
  for b = 0 to k - 1 do
    let low = Array.unsafe_get masks b - 1 in
    base := ((!base land lnot low) lsl 1) lor (!base land low)
  done;
  !base

let kq_chunk ~re ~im ~sorted ~offs ~mre ~mim ~dim ~k ~cmask ~cwant lo hi =
  (* per-chunk scratch: gather/apply/scatter buffers, allocated once per
     domain, not per index *)
  let vr = Array.make dim 0.0 and vi = Array.make dim 0.0 in
  let acc = Array.make 2 0.0 in
  for j = lo to hi - 1 do
    let base = kq_expand j sorted k in
    if base land cmask = cwant then begin
      for l = 0 to dim - 1 do
        let i = base lor Array.unsafe_get offs l in
        Array.unsafe_set vr l (Array.unsafe_get re i *. 1.0);
        Array.unsafe_set vi l (Array.unsafe_get im i *. 1.0)
      done;
      for r = 0 to dim - 1 do
        let row = r * dim in
        Array.unsafe_set acc 0 0.0;
        Array.unsafe_set acc 1 0.0;
        for c = 0 to dim - 1 do
          let er = Array.unsafe_get mre (row + c)
          and ei = Array.unsafe_get mim (row + c) in
          let xr = Array.unsafe_get vr c and xi = Array.unsafe_get vi c in
          Array.unsafe_set acc 0
            (Array.unsafe_get acc 0 +. ((er *. xr) -. (ei *. xi)));
          Array.unsafe_set acc 1
            (Array.unsafe_get acc 1 +. ((er *. xi) +. (ei *. xr)))
        done;
        let i = base lor Array.unsafe_get offs r in
        Array.unsafe_set re i (Array.unsafe_get acc 0 *. 1.0);
        Array.unsafe_set im i (Array.unsafe_get acc 1 *. 1.0)
      done
    end
  done

(* Unrolled 1-wire body: the 2x2 matrix lives in 8 scalar parameters,
   the quadruple of amplitude components in registers — no scratch
   arrays, no inner loops. Term order matches the generic body's
   accumulation (products grouped (er xr - ei xi), summed left to
   right), so results agree to the same reassociation the fusion tests
   budget. *)
let kq_chunk1 ~re ~im ~sorted ~b0 ~m00r ~m00i ~m01r ~m01i ~m10r ~m10i ~m11r
    ~m11i ~k ~cmask ~cwant lo hi =
  for j = lo to hi - 1 do
    let i0 = kq_expand j sorted k in
    if i0 land cmask = cwant then begin
      let i1 = i0 lor b0 in
      let x0r = Array.unsafe_get re i0 and x0i = Array.unsafe_get im i0 in
      let x1r = Array.unsafe_get re i1 and x1i = Array.unsafe_get im i1 in
      Array.unsafe_set re i0
        (((m00r *. x0r) -. (m00i *. x0i)) +. ((m01r *. x1r) -. (m01i *. x1i)));
      Array.unsafe_set im i0
        (((m00r *. x0i) +. (m00i *. x0r)) +. ((m01r *. x1i) +. (m01i *. x1r)));
      Array.unsafe_set re i1
        (((m10r *. x0r) -. (m10i *. x0i)) +. ((m11r *. x1r) -. (m11i *. x1i)));
      Array.unsafe_set im i1
        (((m10r *. x0i) +. (m10i *. x0r)) +. ((m11r *. x1i) +. (m11i *. x1r)))
    end
  done

(* Unrolled 2-wire body: gather the 4 amplitudes into locals, compute
   each output row as an explicit 4-term complex dot product, write
   back. The 4x4 matrix is read through [unsafe_get] — 32 entries stay
   cache-hot across the whole sweep. *)
let kq_chunk2 ~re ~im ~sorted ~o1 ~o2 ~o3 ~mre ~mim ~k ~cmask ~cwant lo hi =
  for j = lo to hi - 1 do
    let i0 = kq_expand j sorted k in
    if i0 land cmask = cwant then begin
      let i1 = i0 lor o1 and i2 = i0 lor o2 and i3 = i0 lor o3 in
      let x0r = Array.unsafe_get re i0 and x0i = Array.unsafe_get im i0 in
      let x1r = Array.unsafe_get re i1 and x1i = Array.unsafe_get im i1 in
      let x2r = Array.unsafe_get re i2 and x2i = Array.unsafe_get im i2 in
      let x3r = Array.unsafe_get re i3 and x3i = Array.unsafe_get im i3 in
      let row = 0 in
      let e0r = Array.unsafe_get mre (row + 0) and e0i = Array.unsafe_get mim (row + 0) in
      let e1r = Array.unsafe_get mre (row + 1) and e1i = Array.unsafe_get mim (row + 1) in
      let e2r = Array.unsafe_get mre (row + 2) and e2i = Array.unsafe_get mim (row + 2) in
      let e3r = Array.unsafe_get mre (row + 3) and e3i = Array.unsafe_get mim (row + 3) in
      let y0r =
        ((e0r *. x0r) -. (e0i *. x0i)) +. ((e1r *. x1r) -. (e1i *. x1i))
        +. ((e2r *. x2r) -. (e2i *. x2i)) +. ((e3r *. x3r) -. (e3i *. x3i))
      and y0i =
        ((e0r *. x0i) +. (e0i *. x0r)) +. ((e1r *. x1i) +. (e1i *. x1r))
        +. ((e2r *. x2i) +. (e2i *. x2r)) +. ((e3r *. x3i) +. (e3i *. x3r))
      in
      let row = 4 in
      let e0r = Array.unsafe_get mre (row + 0) and e0i = Array.unsafe_get mim (row + 0) in
      let e1r = Array.unsafe_get mre (row + 1) and e1i = Array.unsafe_get mim (row + 1) in
      let e2r = Array.unsafe_get mre (row + 2) and e2i = Array.unsafe_get mim (row + 2) in
      let e3r = Array.unsafe_get mre (row + 3) and e3i = Array.unsafe_get mim (row + 3) in
      let y1r =
        ((e0r *. x0r) -. (e0i *. x0i)) +. ((e1r *. x1r) -. (e1i *. x1i))
        +. ((e2r *. x2r) -. (e2i *. x2i)) +. ((e3r *. x3r) -. (e3i *. x3i))
      and y1i =
        ((e0r *. x0i) +. (e0i *. x0r)) +. ((e1r *. x1i) +. (e1i *. x1r))
        +. ((e2r *. x2i) +. (e2i *. x2r)) +. ((e3r *. x3i) +. (e3i *. x3r))
      in
      let row = 8 in
      let e0r = Array.unsafe_get mre (row + 0) and e0i = Array.unsafe_get mim (row + 0) in
      let e1r = Array.unsafe_get mre (row + 1) and e1i = Array.unsafe_get mim (row + 1) in
      let e2r = Array.unsafe_get mre (row + 2) and e2i = Array.unsafe_get mim (row + 2) in
      let e3r = Array.unsafe_get mre (row + 3) and e3i = Array.unsafe_get mim (row + 3) in
      let y2r =
        ((e0r *. x0r) -. (e0i *. x0i)) +. ((e1r *. x1r) -. (e1i *. x1i))
        +. ((e2r *. x2r) -. (e2i *. x2i)) +. ((e3r *. x3r) -. (e3i *. x3i))
      and y2i =
        ((e0r *. x0i) +. (e0i *. x0r)) +. ((e1r *. x1i) +. (e1i *. x1r))
        +. ((e2r *. x2i) +. (e2i *. x2r)) +. ((e3r *. x3i) +. (e3i *. x3r))
      in
      let row = 12 in
      let e0r = Array.unsafe_get mre (row + 0) and e0i = Array.unsafe_get mim (row + 0) in
      let e1r = Array.unsafe_get mre (row + 1) and e1i = Array.unsafe_get mim (row + 1) in
      let e2r = Array.unsafe_get mre (row + 2) and e2i = Array.unsafe_get mim (row + 2) in
      let e3r = Array.unsafe_get mre (row + 3) and e3i = Array.unsafe_get mim (row + 3) in
      let y3r =
        ((e0r *. x0r) -. (e0i *. x0i)) +. ((e1r *. x1r) -. (e1i *. x1i))
        +. ((e2r *. x2r) -. (e2i *. x2i)) +. ((e3r *. x3r) -. (e3i *. x3i))
      and y3i =
        ((e0r *. x0i) +. (e0i *. x0r)) +. ((e1r *. x1i) +. (e1i *. x1r))
        +. ((e2r *. x2i) +. (e2i *. x2r)) +. ((e3r *. x3i) +. (e3i *. x3r))
      in
      Array.unsafe_set re i0 y0r;
      Array.unsafe_set im i0 y0i;
      Array.unsafe_set re i1 y1r;
      Array.unsafe_set im i1 y1i;
      Array.unsafe_set re i2 y2r;
      Array.unsafe_set im i2 y2i;
      Array.unsafe_set re i3 y3r;
      Array.unsafe_set im i3 y3i
    end
  done

(** Dense k-qubit matrix application: gather the [2^k] amplitudes of
    each compressed index, multiply by the row-major [2^k x 2^k] matrix
    (mre, mim), scatter back. Bit [i] of the matrix's basis index is
    [bits.(i)] (in any order; sorting for the index expansion is
    internal). The apply loop reads only the gathered scratch, so each
    output row can be written as soon as it is computed. Controls are a
    (mask, want) pair over full-index bits, disjoint from [bits].
    The common narrow blocks (k = 1, 2) run fully unrolled bodies with
    no scratch arrays — they are what makes small dense fusions cheaper
    than replaying their gates. *)
let kq_generic ~re ~im ~size ~(bits : int array) ~cmask ~cwant ~mre ~mim =
  let k = Array.length bits in
  let dim = 1 lsl k in
  let sorted = Array.copy bits in
  Array.sort compare sorted;
  let offs =
    Array.init dim (fun l ->
        let o = ref 0 in
        for b = 0 to k - 1 do
          if l land (1 lsl b) <> 0 then o := !o lor bits.(b)
        done;
        !o)
  in
  if k = 1 then
    par_range (size lsr 1)
      (kq_chunk1 ~re ~im ~sorted ~b0:bits.(0) ~m00r:mre.(0) ~m00i:mim.(0)
         ~m01r:mre.(1) ~m01i:mim.(1) ~m10r:mre.(2) ~m10i:mim.(2) ~m11r:mre.(3)
         ~m11i:mim.(3) ~k ~cmask ~cwant)
  else if k = 2 then
    par_range (size lsr 2)
      (kq_chunk2 ~re ~im ~sorted ~o1:offs.(1) ~o2:offs.(2) ~o3:offs.(3) ~mre
         ~mim ~k ~cmask ~cwant)
  else
    par_range (size lsr k)
      (kq_chunk ~re ~im ~sorted ~offs ~mre ~mim ~dim ~k ~cmask ~cwant)

let kq_diag_chunk ~re ~im ~sorted ~offs ~dre ~di ~dim ~k ~cmask ~cwant lo hi =
  for j = lo to hi - 1 do
    let base = kq_expand j sorted k in
    if base land cmask = cwant then
      for l = 0 to dim - 1 do
        let i = base lor Array.unsafe_get offs l in
        let dr = Array.unsafe_get dre l and dm = Array.unsafe_get di l in
        let xr = Array.unsafe_get re i and xi = Array.unsafe_get im i in
        Array.unsafe_set re i ((dr *. xr) -. (dm *. xi));
        Array.unsafe_set im i ((dr *. xi) +. (dm *. xr))
      done
  done

(** Fused k-qubit diagonal: one sweep multiplying each amplitude by the
    diagonal entry selected by its [k] support bits — the collapsed form
    of a whole run of diagonal gates. Bit [i] of the [2^k]-entry table
    (dre, di) is [bits.(i)]. Iteration is by compressed base (all
    support bits deleted) with a precomputed offset per table entry, so
    the per-amplitude work is one table index, not a [k]-step bit
    extraction. Controls are checked once per group: control bits are
    disjoint from the support, so they are constant across a group. *)
let kq_diag ~re ~im ~size ~(bits : int array) ~cmask ~cwant ~dre ~di =
  let k = Array.length bits in
  let dim = 1 lsl k in
  let sorted = Array.copy bits in
  Array.sort compare sorted;
  let offs =
    Array.init dim (fun l ->
        let o = ref 0 in
        for b = 0 to k - 1 do
          if l land (1 lsl b) <> 0 then o := !o lor bits.(b)
        done;
        !o)
  in
  par_range (size lsr k)
    (kq_diag_chunk ~re ~im ~sorted ~offs ~dre ~di ~dim ~k ~cmask ~cwant)

(** Generic two-qubit matrix application, basis order |ab> with [ba] the
    high bit. *)
let k2_generic ~re ~im ~size ~ba ~bb ~cmask ~cwant (m : Quipper_math.Mat2.t) =
  let open Quipper_math in
  par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        if i land ba = 0 && i land bb = 0 && i land cmask = cwant then begin
          let idx = [| i; i lor bb; i lor ba; i lor ba lor bb |] in
          let xr = Array.map (fun j -> re.(j)) idx in
          let xi = Array.map (fun j -> im.(j)) idx in
          for r = 0 to 3 do
            let acc_re = ref 0.0 and acc_im = ref 0.0 in
            for c = 0 to 3 do
              let e = Mat2.get m r c in
              let er = Cplx.re e and ei = Cplx.im e in
              acc_re := !acc_re +. (er *. xr.(c)) -. (ei *. xi.(c));
              acc_im := !acc_im +. (er *. xi.(c)) +. (ei *. xr.(c))
            done;
            re.(idx.(r)) <- !acc_re;
            im.(idx.(r)) <- !acc_im
          done
        end
      done)
