(** In-place statevector kernels: the specialised hot loops behind
    {!Statevector}, dispatched via {!Quipper.Gate.fast_class}.

    X/CNOT/Toffoli are index swaps, the diagonal family (Z, S, T, R/Ph,
    Rz, exp(-i%Z), controlled phase) is a phase multiply, H and W are
    the only butterflies. Controls arrive pre-folded as one
    (mask, want) pair — one [land] per index. All kernels operate on
    the first [size] elements of a (re, im) pair of unboxed float
    arrays (the arrays may be longer — capacity is managed by the
    caller) and produce results bit-identical to the generic matrix
    path of the {!Reference} engine.

    Elementwise kernels partition their index space across OCaml 5
    [Domain]s when [size] reaches {!threshold}; the partition is
    deterministic and elementwise, so results are independent of the
    domain count. *)

val num_domains : int ref
(** Domains used by large kernels; defaults to
    [Domain.recommended_domain_count ()], overridden at startup by the
    environment variable [QUIPPER_DOMAINS] when it holds a positive
    integer (benchmarks and CI pin parallelism this way without code
    edits). Set to 1 to force the sequential path. *)

val threshold : int ref
(** Minimum amplitude count before kernels fan out across domains;
    defaults to [2^19], overridden at startup by the environment
    variable [QUIPPER_PAR_THRESHOLD] when it holds a positive integer. *)

val par_range : int -> (int -> int -> unit) -> unit
(** [par_range n f] runs [f lo hi] over a partition of [0, n), in
    parallel above the threshold. [f] must touch disjoint state per
    index. *)

val kx :
  re:float array -> im:float array -> size:int -> bit:int -> cmask:int ->
  cwant:int -> unit

val ky :
  re:float array -> im:float array -> size:int -> bit:int -> cmask:int ->
  cwant:int -> unit

val kh :
  re:float array -> im:float array -> size:int -> bit:int -> cmask:int ->
  cwant:int -> unit

val kdiag :
  re:float array -> im:float array -> size:int -> bit:int -> cmask:int ->
  cwant:int -> d0_re:float -> d0_im:float -> d1_re:float -> d1_im:float -> unit
(** Multiply the target-clear/-set halves by d0/d1; takes the half-space
    fast path when d0 = 1. *)

val kphase :
  re:float array -> im:float array -> size:int -> cmask:int -> cwant:int ->
  angle:float -> unit

val sum_norm2_half :
  re:float array -> im:float array -> size:int -> bit:int -> want:bool -> float
(** Sum of |amp|^2 over the half where [bit] is set ([want = true]) or
    clear, ascending — the same float additions in the same order as a
    full ascending scan that skips the other half, so bit-identical to
    the seed engine's probability reductions. Always sequential. *)

val sum_norm2_half_unord :
  re:float array -> im:float array -> size:int -> bit:int -> want:bool -> float
(** Like {!sum_norm2_half} but with independent accumulator lanes — a
    different (but machine-independent) summation order, ulps away from
    the ordered result. Only for sums compared against coarse
    thresholds (the Term assertion), never for anything that feeds
    amplitudes or sampling. *)

val kswap :
  re:float array -> im:float array -> size:int -> ba:int -> bb:int ->
  cmask:int -> cwant:int -> unit

val kw :
  re:float array -> im:float array -> size:int -> ba:int -> bb:int ->
  cmask:int -> cwant:int -> unit
(** The BWT W gate: a butterfly on the odd-parity subspace; [ba] is the
    first wire's (high) bit. *)

val k1_generic :
  re:float array -> im:float array -> size:int -> bit:int -> cmask:int ->
  cwant:int -> Quipper_math.Mat2.t -> unit
(** Fallback: full 2x2 complex matrix application. *)

val k2_generic :
  re:float array -> im:float array -> size:int -> ba:int -> bb:int ->
  cmask:int -> cwant:int -> Quipper_math.Mat2.t -> unit
(** Fallback: full 4x4 complex matrix application, basis order |ab>
    with [ba] the high bit. *)

val kq_generic :
  re:float array -> im:float array -> size:int -> bits:int array ->
  cmask:int -> cwant:int -> mre:float array -> mim:float array -> unit
(** Fused dense k-qubit block ({!Fuse}): gather the [2^k] amplitudes of
    each compressed index, multiply by the row-major [2^k x 2^k] complex
    matrix [(mre, mim)], scatter back. [bits.(i)] is the full-index bit
    of basis-index bit [i]; [bits] need not be sorted. The control
    (mask, want) pair must be disjoint from [bits]. One sweep costs
    O([4^k]) flops per [2^k] amplitudes, so this pays off only for
    blocks holding several gates — single gates keep their specialised
    kernels. *)

val kq_diag :
  re:float array -> im:float array -> size:int -> bits:int array ->
  cmask:int -> cwant:int -> dre:float array -> di:float array -> unit
(** Fused k-qubit diagonal block: one full sweep multiplying each
    amplitude by the [2^k]-entry table [(dre, di)] indexed by its
    support bits — a whole run of diagonal gates for the price of one
    diagonal sweep. Same [bits]/controls conventions as
    {!kq_generic}. *)
