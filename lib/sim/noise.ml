(** Noise channels over the simulation backends.

    The clean simulators check the extended circuit model's promises
    (assertive termination, §4.2.2) only on clean runs. This module
    deliberately breaks that idyll: configurable per-gate/per-wire noise
    channels — bit flip, phase flip, depolarizing, measurement readout
    error — applied during execution, every random choice drawn from a
    {!Quipper_math.Rng} stream derived from one master seed so that every
    noisy run replays exactly.

    Channel semantics, applied after each gate to every qubit wire the
    gate touched that is still live (see {!Quipper.Faultsite.exposed_wires}):
    - [bit_flip p]: X with probability p;
    - [phase_flip p]: Z with probability p;
    - [depolarizing p]: with probability p, one of X/Y/Z uniformly;
    - [readout p]: each measurement's recorded outcome flips with
      probability p (the collapse itself is faithful — only the classical
      record lies, as real readout errors do).

    Noisy execution is generic over a {!Backend.S}: the Pauli kicks are
    Clifford operations, so campaigns run on the stabilizer backend too
    where the circuit's own gates permit. The historical entry points
    ([run_circuit], [run_and_measure], [run_trials]) remain, fixed to the
    statevector backend, and behave bit-identically to before.

    Seed discipline: the backend's own measurement stream uses the given
    seed unchanged, so a configuration with all probabilities zero is
    {e bit-identical} to the plain backend run; noise decisions draw from
    the derived child stream [Rng.derive seed 1]. *)

open Quipper
module Sv = Statevector
module Rng = Quipper_math.Rng

type config = {
  bit_flip : float;
  phase_flip : float;
  depolarizing : float;
  readout : float;
}

let none = { bit_flip = 0.0; phase_flip = 0.0; depolarizing = 0.0; readout = 0.0 }
let bit_flip p = { none with bit_flip = p }
let phase_flip p = { none with phase_flip = p }
let depolarizing p = { none with depolarizing = p }
let readout p = { none with readout = p }

let is_noiseless c =
  c.bit_flip = 0.0 && c.phase_flip = 0.0 && c.depolarizing = 0.0 && c.readout = 0.0

let pp_config ppf c =
  Fmt.pf ppf "{bit_flip=%g; phase_flip=%g; depolarizing=%g; readout=%g}" c.bit_flip
    c.phase_flip c.depolarizing c.readout

(* ------------------------------------------------------------------ *)
(* Noisy execution, generic over the backend                           *)

let pauli (type s) (module B : Backend.S with type state = s) (st : s) name w =
  B.apply_gate st
    (Gate.Gate { name; inv = false; targets = [ w ]; controls = [] })

(* One noise "kick" on wire [w]: each enabled channel fires
   independently. Zero-probability channels draw nothing, keeping the
   stream (and hence any enabled channel's decisions) independent of
   which other channels are configured off. *)
let kick (type s) (module B : Backend.S with type state = s) rng cfg (st : s) w =
  if cfg.bit_flip > 0.0 && Rng.float rng < cfg.bit_flip then pauli (module B) st "X" w;
  if cfg.phase_flip > 0.0 && Rng.float rng < cfg.phase_flip then pauli (module B) st "Z" w;
  if cfg.depolarizing > 0.0 && Rng.float rng < cfg.depolarizing then
    pauli (module B) st (match Rng.int rng 3 with 0 -> "X" | 1 -> "Y" | _ -> "Z") w

let flip_readout (type s) (module B : Backend.S with type state = s) rng cfg (st : s) w =
  if cfg.readout > 0.0 && Rng.float rng < cfg.readout then
    B.set_bit st w (not (B.read_bit st w))

let step (type s) (module B : Backend.S with type state = s) rng cfg (st : s)
    (g : Gate.t) =
  match g with
  | Gate.Measure { wire } ->
      B.apply_gate st g;
      flip_readout (module B) rng cfg st wire
  | g ->
      B.apply_gate st g;
      List.iter (kick (module B) rng cfg st) (Faultsite.exposed_wires g)

(** Run the inlined [flat] circuit noisily; returns the state and the
    noise stream (still needed for readout errors on final measurements). *)
let exec_on (type s) (module B : Backend.S with type state = s) ~seed cfg
    (flat : Circuit.t) (inputs : bool list) : s * Rng.t =
  let st = B.create ~seed () in
  let rng = Rng.create (Rng.derive seed 1) in
  (if List.length inputs <> List.length flat.Circuit.inputs then
     Errors.raise_ (Shape_mismatch "noisy run: input arity"));
  List.iter2
    (fun (e : Wire.endpoint) v ->
      B.apply_gate st (Gate.Init { ty = e.Wire.ty; value = v; wire = e.Wire.wire }))
    flat.Circuit.inputs inputs;
  Array.iter (step (module B) rng cfg st) flat.Circuit.gates;
  (st, rng)

let run_circuit_on (type s) (module B : Backend.S with type state = s) ?(seed = 1)
    cfg (b : Circuit.b) (inputs : bool list) : s =
  fst (exec_on (module B) ~seed cfg (Circuit.inline b) inputs)

let measure_outputs (type s) (module B : Backend.S with type state = s) rng cfg
    (st : s) (flat : Circuit.t) : bool list =
  List.map
    (fun (e : Wire.endpoint) ->
      match e.Wire.ty with
      | Wire.Q ->
          let v = B.measure st e.Wire.wire in
          if cfg.readout > 0.0 && Rng.float rng < cfg.readout then not v else v
      | Wire.C -> B.read_bit st e.Wire.wire)
    flat.Circuit.outputs

let run_and_measure_on (module B : Backend.S) ?(seed = 1) cfg (b : Circuit.b)
    (inputs : bool list) : bool list =
  let flat = Circuit.inline b in
  let st, rng = exec_on (module B) ~seed cfg flat inputs in
  measure_outputs (module B) rng cfg st flat

(* The historical statevector-fixed entry points. *)

let run_circuit ?(seed = 1) cfg (b : Circuit.b) (inputs : bool list) : Sv.state =
  run_circuit_on (module Backend.Statevector) ~seed cfg b inputs

let run_and_measure ?(seed = 1) cfg (b : Circuit.b) (inputs : bool list) : bool list =
  run_and_measure_on (module Backend.Statevector) ~seed cfg b inputs

(* ------------------------------------------------------------------ *)
(* Trial-based resilient running                                       *)

type trial_outcome =
  | Success of int  (** right answer after this many attempts *)
  | Wrong of int  (** completed, silently wrong, after this many attempts *)
  | Gave_up  (** every allowed attempt ended in a detected failure *)

type stats = {
  trials : int;
  successes : int;
  wrong : int;
  gave_up : int;
  attempts : int;  (** total attempts across all trials *)
  detected_failures : int;
      (** attempts aborted by a [Termination_assertion] — the noise
          tripped an uncomputation claim, and the run knew it failed *)
  outcomes : trial_outcome array;  (** per-trial, for determinism checks *)
}

let success_rate s =
  if s.trials = 0 then 0.0 else float_of_int s.successes /. float_of_int s.trials

let pp_stats ppf s =
  Fmt.pf ppf
    "%d/%d trials succeeded (%.1f%%), %d wrong, %d gave up; %d attempts, %d detected failures"
    s.successes s.trials (100.0 *. success_rate s) s.wrong s.gave_up s.attempts
    s.detected_failures

(** [run_trials_on backend ~trials ~max_failures cfg b inputs ~expected]:
    run the circuit noisily [trials] times, each trial drawing its seeds
    from [Rng.derive master_seed] so the whole experiment replays from one
    number. An attempt whose noise trips an assertive termination is a
    {e detected} failure and is retried (up to [max_failures] retries per
    trial) — the runtime analogue of "the assertion told us the run went
    wrong, so run it again". Attempts that complete are compared against
    [expected]; silent corruption is counted, not retried (nothing at run
    time can see it — that asymmetry is the point of the experiment). *)
let run_trials_on (module B : Backend.S) ?(master_seed = 1) ~trials ~max_failures
    cfg (b : Circuit.b)
    (inputs : bool list) ~(expected : bool list) : stats =
  if trials <= 0 then invalid_arg "Noise.run_trials: trials must be positive";
  if max_failures < 0 then invalid_arg "Noise.run_trials: negative max_failures";
  let flat = Circuit.inline b in
  let attempts = ref 0 and detected = ref 0 in
  let one_trial t =
    let rec go a =
      if a > max_failures then Gave_up
      else begin
        incr attempts;
        let seed = Rng.derive master_seed ((t * (max_failures + 1)) + a + 2) in
        match
          let st, rng = exec_on (module B) ~seed cfg flat inputs in
          measure_outputs (module B) rng cfg st flat
        with
        | bits -> if bits = expected then Success (a + 1) else Wrong (a + 1)
        | exception Errors.Error (Errors.Termination_assertion _) ->
            incr detected;
            go (a + 1)
      end
    in
    go 0
  in
  let outcomes = Array.init trials one_trial in
  let count f = Array.fold_left (fun acc o -> if f o then acc + 1 else acc) 0 outcomes in
  {
    trials;
    successes = count (function Success _ -> true | _ -> false);
    wrong = count (function Wrong _ -> true | _ -> false);
    gave_up = count (function Gave_up -> true | _ -> false);
    attempts = !attempts;
    detected_failures = !detected;
    outcomes;
  }

let run_trials ?(master_seed = 1) ~trials ~max_failures cfg (b : Circuit.b)
    (inputs : bool list) ~(expected : bool list) : stats =
  run_trials_on (module Backend.Statevector) ~master_seed ~trials ~max_failures cfg b
    inputs ~expected
